//===- examples/gauss_symbolic.cpp - Figure 5 walkthrough ----------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Reproduces the paper's Figure 5 interactively: the Gaussian-elimination
// loop on a (CYCLIC,CYCLIC) distribution over a symbolic P1 x P2 grid.
// Prints the primitive sets, the active-virtual-processor sets the
// equations derive, and then compiles and runs the full elimination.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Comm.h"
#include "core/Compiler.h"
#include "core/Partition.h"

#include <cstdio>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

int main() {
  // The Figure 5 fragment: update reads the pivot row A(PIVOT, j).
  Program P("gauss-fig5");
  P.addParam("PIVOT");
  P.addProcs("PA", {Program::procDimSym("P1"), Program::procDimSym("P2")});
  P.addTemplate("T", {range(1, 100), range(1, 100)});
  P.addArray("A", {range(1, 100), range(1, 100)});
  P.addAlign({"A", "T", {alignDim(0), alignDim(1)}});
  P.addDistribute({"T", "PA", {distCyclic(), distCyclic()}});
  ComputeNest Nest;
  Nest.Name = "update";
  Nest.Loops = {loop("i", AffineExpr("PIVOT") + 1, 100),
                loop("j", AffineExpr("PIVOT") + 1, 100)};
  Statement S;
  S.Write = ref("A", {"i", "j"});
  S.Reads = {ref("A", {"PIVOT", "j"})};
  Nest.Stmts = {S};

  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  std::printf("== Figure 5: active virtual processors ==\n");
  std::printf("layout (VP model; each template cell is a VP):\n  %s\n\n",
              L.Map.simplify().toString().c_str());

  CPInfo CP = computeCP(MB, Nest, S);
  std::printf("CPMap:\n  %s\n\n", CP.CPMap.simplify().toString().c_str());

  CommEventInput E;
  E.Array = "A";
  E.LoopVars = {"i", "j"};
  E.Refs.push_back({CP.CPMap, false, MB.refMap(Nest, S.Reads[0]), false});
  CommSets CS = computeCommSets(MB, E);
  auto Clean = [](const Relation &R) {
    return R.normalizeExists().simplify().coalesce().toString();
  };
  std::printf("busyVPSet        = %s\n", Clean(CS.BusyVPSet).c_str());
  std::printf("activeSendVPSet  = %s\n",
              Clean(CS.ActiveSendVPSet).c_str());
  std::printf("activeRecvVPSet  = %s\n\n",
              Clean(CS.ActiveRecvVPSet).c_str());
  std::printf("(only the VPs owning pivot-row elements send; every busy VP "
              "receives — Figure 5(c).)\n\n");

  std::printf("== Running the full elimination (N=24) ==\n");
  AppInstance App = makeGauss(24);
  auto Compiled = compileProgram(*App.Prog);
  for (auto Shape : {std::vector<int64_t>{1, 1}, {2, 2}, {3, 2}}) {
    RunConfig RC;
    RC.ProcExtents = {{App.ProcArrayName, Shape}};
    Interpreter I(Compiled->Program, RC);
    App.Setup(I);
    RunResult RR = I.run();
    std::string Err;
    bool OK = RR.Valid && App.Check(I, Err);
    std::printf("grid %lldx%lld: %llu messages, result %s\n",
                (long long)Shape[0], (long long)Shape[1],
                (unsigned long long)RR.Messages, OK ? "ok" : Err.c_str());
  }
  return 0;
}
