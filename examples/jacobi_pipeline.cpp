//===- examples/jacobi_pipeline.cpp - Whole-compiler walkthrough ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Compiles the JACOBI benchmark end to end, prints the generated SPMD node
// program (partitioned loops, pack/send/recv/unpack loops), runs it on the
// simulated machine for several processor grids, and verifies the numerics
// against a serial reference.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"

#include <cstdio>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::spmd;

int main() {
  AppInstance App = makeJacobi(32, 3);
  std::printf("== Compiling %s (4-point stencil, (BLOCK,BLOCK), symbolic "
              "processor grid) ==\n",
              App.Name.c_str());
  auto Compiled = compileProgram(*App.Prog);
  std::printf("compile time: %.3fs; %u communication events; "
              "%u nests split (Figure 4)\n\n",
              Compiled->Timers.seconds(phase::Total),
              Compiled->NumCommEvents, Compiled->NumSplitNests);

  std::printf("== Generated SPMD node program ==\n%s\n",
              Compiled->Program.print().c_str());

  std::printf("== Executing on the simulated machine ==\n");
  std::printf("%8s %12s %10s %10s %8s\n", "grid", "time(s)", "messages",
              "bytes", "check");
  for (auto Shape : {std::vector<int64_t>{1, 1}, {2, 1}, {2, 2}, {2, 4}}) {
    RunConfig RC;
    RC.ProcExtents = {{App.ProcArrayName, Shape}};
    Interpreter I(Compiled->Program, RC);
    App.Setup(I);
    RunResult RR = I.run();
    std::string Err;
    bool OK = RR.Valid && App.Check(I, Err);
    std::printf("%4lldx%-3lld %12.5f %10llu %10llu %8s\n",
                (long long)Shape[0], (long long)Shape[1], RR.ElapsedSeconds,
                (unsigned long long)RR.Messages,
                (unsigned long long)RR.Bytes, OK ? "ok" : "FAIL");
    if (!OK)
      std::printf("   %s\n",
                  !RR.Valid && !RR.Violations.empty()
                      ? RR.Violations[0].c_str()
                      : Err.c_str());
  }
  std::printf("\nThe same compiled program ran on every grid: the number of "
              "processors stayed\nsymbolic through compilation (Section 4's "
              "virtual-processor model).\n");
  return 0;
}
