//===- examples/quickstart.cpp - The integer-set framework in 5 minutes --===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Walks through the library bottom-up: parse integer sets and mappings,
// run the core operations the paper's equations use, generate a loop nest
// from a set, and execute it.
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGen.h"
#include "pset/Relation.h"

#include <cstdio>

using namespace dhpf;

int main() {
  std::printf("== 1. Sets and mappings (Presburger, exact) ==\n");
  // A block data layout: processor p owns elements [25p+1, 25p+25].
  Relation Layout = parseRelation(
      "{ [p] -> [a] : 25p + 1 <= a <= 25p + 25 && 1 <= a <= 100 && "
      "0 <= p <= 3 }");
  // A reference map: iteration i reads element i+1.
  Relation RefMap = parseRelation("[N] -> { [i] -> [a] : a = i + 1 && "
                                  "1 <= i <= N }");
  std::printf("Layout  = %s\n", Layout.toString().c_str());
  std::printf("RefMap  = %s\n\n", RefMap.toString().c_str());

  std::printf("== 2. The paper's equations are one-liners ==\n");
  // Which iterations does processor p execute under ON_HOME A(i+1)?
  Relation CPMap = Layout.composeWith(RefMap.inverse());
  std::printf("CPMap   = (Layout o RefMap^-1)\n        = %s\n",
              CPMap.simplify().toString().c_str());
  // What does processor 2 own? (apply a mapping to a set)
  Relation P2 = parseRelation("{ [p] : p = 2 }");
  std::printf("Layout(p=2) = %s\n\n",
              Layout.apply(P2).simplify().toString().c_str());

  std::printf("== 3. Non-convex sets, strides, subtraction ==\n");
  Relation Evens = parseRelation(
      "{ [i] : 0 <= i <= 20 && exists(a : i = 2a) }");
  Relation Box = parseRelation("{ [i] : 0 <= i <= 20 }");
  Relation Odds = Box.subtract(Evens);
  std::printf("box - evens = %s\n", Odds.simplify().toString().c_str());
  std::printf("is {0..20} convex? %s;  box minus middle convex? %s\n\n",
              Box.isConvexProven() ? "yes" : "no",
              Box.subtract(parseRelation("{ [i] : 5 <= i <= 9 }"))
                      .isConvexProven()
                  ? "yes"
                  : "no");

  std::printf("== 4. Code generation: sets become loop nests ==\n");
  Relation Iters = parseRelation(
      "[m,N] -> { [i,j] : 1 <= i <= N && i <= j <= N && "
      "25m + 1 <= i <= 25m + 25 }");
  cg::VarTable Vars;
  cg::CodeGen CG(Vars);
  cg::AstPtr Nest = CG.codegenSet(Iters, {"i", "j"}, 0, "body(i,j)");
  std::printf("%s\n", cg::printAst(*Nest).c_str());

  std::printf("== 5. ...and run (m = 1, N = 60): ==\n");
  std::vector<int64_t> Env(Vars.size(), 0);
  Env[Vars.lookup("m")] = 1;
  Env[Vars.lookup("N")] = 60;
  uint64_t Count = cg::execute(*Nest, Env, [](int, const std::vector<int64_t> &) {});
  std::printf("executed %llu iterations (expected: sum over i in [26,50] "
              "of (60-i+1) = %d)\n",
              (unsigned long long)Count, 25 * 61 - (26 + 50) * 25 / 2);
  return 0;
}
