//===- examples/figure2_walkthrough.cpp - The paper's Figure 2, live -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Constructs and prints the primitive sets and mappings of the paper's
// Figure 2 from the example HPF fragment:
//
//   real A(0:99,100), B(100,100)
//   processors P(4)
//   template T(100,100)
//   align A(i,j) with T(i+1,j)
//   align B(i,j) with T(*,i)
//   distribute T(*,block) onto P
//   do i = 1, N
//     do j = 2, N+1
//       A(i,j) = B(j-1,i)        ! ON_HOME B(j-1,i)
//
//===----------------------------------------------------------------------===//

#include "core/Partition.h"
#include "hpf/Maps.h"

#include <cstdio>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

int main() {
  Program P("figure2");
  P.addParam("N");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 100), range(1, 100)});
  P.addArray("A", {range(0, 99), range(1, 100)});
  P.addArray("B", {range(1, 100), range(1, 100)});
  P.addAlign({"A", "T", {alignDim(0, 1, 1), alignDim(1)}});
  P.addAlign({"B", "T", {alignStar(), alignDim(0)}});
  P.addDistribute({"T", "P", {distStar(), distBlock()}});

  ComputeNest Nest;
  Nest.Name = "main";
  Nest.Loops = {loop("i", 1, "N"), loop("j", 2, AffineExpr("N") + 1)};
  Statement S;
  S.Write = ref("A", {"i", "j"});
  S.Reads = {ref("B", {AffineExpr("j") - 1, "i"})};
  S.OnHome = {ref("B", {AffineExpr("j") - 1, "i"})};
  Nest.Stmts = {S};

  MapBuilder MB(P);
  std::printf("== Figure 2: primitive sets and mappings ==\n\n");
  std::printf("proc     = %s\n\n", MB.procSet("P").toString().c_str());
  std::printf("Layout_A = %s\n\n",
              MB.layout("A").Map.simplify().toString().c_str());
  std::printf("Layout_B = %s\n\n",
              MB.layout("B").Map.simplify().toString().c_str());
  std::printf("loop     = %s\n\n", MB.loopSet(Nest).toString().c_str());
  std::printf("CPRef    = %s\n\n",
              MB.refMap(Nest, S.OnHome[0]).toString().c_str());

  CPInfo CP = computeCP(MB, Nest, S);
  std::printf("CPMap    = Layout_B o CPRef^-1, restricted to loop:\n");
  std::printf("           %s\n\n", CP.CPMap.simplify().toString().c_str());
  std::printf("(compare: the paper's Figure 2 gives\n"
              "  {[p] -> [l1,l2] : 1 <= l1 <= min(N,100) &&\n"
              "   max(2, 25p+2) <= l2 <= min(N+1, 101, 25p+26)}.)\n");
  return 0;
}
