//===- tests/obs_test.cpp - Observability subsystem unit tests -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The metrics registry and trace buffer under concurrency and at the edge
// cases the instrumented layers rely on:
//
//   - counters incremented from a ThreadPool sum exactly (relaxed atomics
//     lose nothing);
//   - histogram bucket edges are inclusive upper bounds, with overflow;
//   - TraceSpan nesting produces properly contained complete events;
//   - emitted Chrome JSON parses structurally, every event is a complete
//     ('X') or instant ('i') or metadata ('M') record, and the merged
//     multi-lane document keeps the lanes apart.
//
// In the DHPF_OBS=OFF build the same tests assert the probes are no-ops —
// which is itself the zero-overhead-when-disabled contract.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace dhpf;
using namespace dhpf::obs;

namespace {

//===----------------------------------------------------------------------===//
// A minimal structural JSON validator (no parser dependency): verifies
// balanced braces/brackets outside strings and legal string escapes.
//===----------------------------------------------------------------------===//

bool structurallyValidJson(const std::string &S) {
  int Depth = 0;
  bool InStr = false, Esc = false;
  for (char C : S) {
    if (InStr) {
      if (Esc)
        Esc = false;
      else if (C == '\\')
        Esc = true;
      else if (C == '"')
        InStr = false;
      else if (static_cast<unsigned char>(C) < 0x20)
        return false; // raw control character inside a string
      continue;
    }
    switch (C) {
    case '"':
      InStr = true;
      break;
    case '{':
    case '[':
      ++Depth;
      break;
    case '}':
    case ']':
      if (--Depth < 0)
        return false;
      break;
    default:
      break;
    }
  }
  return Depth == 0 && !InStr;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterConcurrentIncrementsSumExactly) {
  MetricsRegistry R;
  Counter *C = R.counter("test.concurrent");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerTask = 10000;
  ThreadPool Pool(Threads);
  Pool.parallelFor(Threads * 4, [&](size_t) {
    for (uint64_t I = 0; I != PerTask; ++I)
      C->inc();
  });
  if (compiledIn())
    EXPECT_EQ(C->value(), Threads * 4 * PerTask);
  else
    EXPECT_EQ(C->value(), 0u); // probes compiled out
}

TEST(Metrics, RegistryReturnsStablePointers) {
  MetricsRegistry R;
  Counter *A = R.counter("a");
  Gauge *G = R.gauge("g");
  for (int I = 0; I != 100; ++I)
    R.counter("pad." + std::to_string(I));
  EXPECT_EQ(R.counter("a"), A);
  EXPECT_EQ(R.gauge("g"), G);
  A->inc(3);
  G->set(-7);
  if (compiledIn()) {
    EXPECT_EQ(R.counter("a")->value(), 3u);
    EXPECT_EQ(R.gauge("g")->value(), -7);
  }
}

TEST(Metrics, HistogramBucketEdgesInclusive) {
  MetricsRegistry R;
  Histogram *H = R.histogram("h", {10, 100, 1000});
  H->observe(0);    // <= 10
  H->observe(10);   // <= 10 (inclusive upper bound)
  H->observe(11);   // <= 100
  H->observe(100);  // <= 100
  H->observe(101);  // <= 1000
  H->observe(1000); // <= 1000
  H->observe(1001); // overflow
  if (!compiledIn()) {
    EXPECT_EQ(H->total(), 0u);
    return;
  }
  EXPECT_EQ(H->bucket(0), 2u);
  EXPECT_EQ(H->bucket(1), 2u);
  EXPECT_EQ(H->bucket(2), 2u);
  EXPECT_EQ(H->bucket(3), 1u); // overflow bucket
  EXPECT_EQ(H->total(), 7u);
  EXPECT_EQ(H->sum(), 0 + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST(Metrics, HistogramConcurrentObservationsSumExactly) {
  MetricsRegistry R;
  Histogram *H = R.histogram("hc", {8, 64});
  ThreadPool Pool(4);
  Pool.parallelFor(16, [&](size_t I) {
    for (int K = 0; K != 1000; ++K)
      H->observe(static_cast<int64_t>(I % 3) * 50); // 0, 50, 100
  });
  if (!compiledIn()) {
    EXPECT_EQ(H->total(), 0u);
    return;
  }
  EXPECT_EQ(H->total(), 16000u);
  // I%3==0 → 6 of 16 tasks observe 0 (bucket <=8); I%3==1 → 5 tasks at 50
  // (bucket <=64); I%3==2 → 5 tasks at 100 (overflow).
  EXPECT_EQ(H->bucket(0), 6000u);
  EXPECT_EQ(H->bucket(1), 5000u);
  EXPECT_EQ(H->bucket(2), 5000u);
}

TEST(Metrics, ReportsAreValidAndSorted) {
  MetricsRegistry R;
  R.counter("z.last")->inc(5);
  R.counter("a.first")->inc(1);
  R.gauge("m.gauge")->set(-3);
  R.histogram("m.hist", {4, 16})->observe(5);
  std::string Text = R.reportText();
  std::string Json = R.reportJson();
  EXPECT_TRUE(structurallyValidJson(Json)) << Json;
  // Map iteration order: names appear sorted in the text report.
  size_t PA = Text.find("a.first");
  size_t PZ = Text.find("z.last");
  ASSERT_NE(PA, std::string::npos);
  ASSERT_NE(PZ, std::string::npos);
  EXPECT_LT(PA, PZ);
  if (compiledIn()) {
    EXPECT_NE(Text.find("a.first 1"), std::string::npos) << Text;
    EXPECT_NE(Text.find("m.gauge -3"), std::string::npos) << Text;
  }
}

TEST(Metrics, ResetAllZeroes) {
  MetricsRegistry R;
  R.counter("c")->inc(9);
  R.gauge("g")->set(4);
  R.histogram("h", {10})->observe(3);
  R.resetAll();
  EXPECT_EQ(R.counter("c")->value(), 0u);
  EXPECT_EQ(R.gauge("g")->value(), 0);
  EXPECT_EQ(R.histogram("h", {10})->total(), 0u);
}

//===----------------------------------------------------------------------===//
// TraceBuffer + TraceSpan
//===----------------------------------------------------------------------===//

TEST(Trace, SpanRecordsNothingWhenInactive) {
  TraceBuffer B;
  { TraceSpan S(&B, "idle", "test"); }
  EXPECT_EQ(B.eventCount(), 0u);
  { TraceSpan S(nullptr, "null-buffer", "test"); } // must not crash
}

TEST(Trace, NestedSpansAreContained) {
  TraceBuffer B;
  B.start();
  {
    TraceSpan Outer(&B, "outer", "test");
    {
      TraceSpan Inner(&B, "inner", "test");
    }
  }
  if (!compiledIn()) {
    EXPECT_EQ(B.eventCount(), 0u);
    return;
  }
  std::vector<TraceEvent> Evs = B.snapshot();
  ASSERT_EQ(Evs.size(), 2u);
  // Spans close inner-first (RAII order).
  EXPECT_EQ(Evs[0].Name, "inner");
  EXPECT_EQ(Evs[1].Name, "outer");
  EXPECT_EQ(Evs[0].Ph, 'X');
  EXPECT_EQ(Evs[1].Ph, 'X');
  // Containment: outer starts no later and ends no earlier than inner.
  EXPECT_LE(Evs[1].TsUs, Evs[0].TsUs);
  EXPECT_GE(Evs[1].TsUs + Evs[1].DurUs, Evs[0].TsUs + Evs[0].DurUs);
}

TEST(Trace, InstantAndArgsSurviveJsonRoundTrip) {
  TraceBuffer B;
  B.setLane(3, "lane \"three\"\n"); // name needing escapes
  B.start();
  B.instant("fault", "net", "\"rank\": 2, \"action\": \"drop\"");
  {
    TraceSpan S(&B, "span with \"quotes\"", "cat", "\"k\": 1");
  }
  std::string Doc = B.chromeJson();
  EXPECT_TRUE(structurallyValidJson(Doc)) << Doc;
  if (compiledIn()) {
    EXPECT_NE(Doc.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(Doc.find("\"rank\": 2"), std::string::npos);
    EXPECT_NE(Doc.find("\"pid\": 3"), std::string::npos);
  }
}

TEST(Trace, ChromeJsonEventsBalancedAndTyped) {
  TraceBuffer B;
  B.start();
  for (int I = 0; I != 10; ++I) {
    TraceSpan S(&B, "op" + std::to_string(I), "test");
  }
  B.instant("mark", "test");
  std::string Doc = B.chromeJson();
  ASSERT_TRUE(structurallyValidJson(Doc)) << Doc;
  // Count the event phases: every record is 'M', or a complete 'X' (with
  // dur), or an instant 'i'. B/E pairs are never emitted, so a
  // well-formed doc needs no matching pass beyond this.
  size_t NX = 0, NI = 0, NM = 0, Pos = 0;
  while ((Pos = Doc.find("\"ph\": \"", Pos)) != std::string::npos) {
    char P = Doc[Pos + 7];
    if (P == 'X')
      ++NX;
    else if (P == 'i')
      ++NI;
    else if (P == 'M')
      ++NM;
    else
      ADD_FAILURE() << "unexpected phase '" << P << "'";
    ++Pos;
  }
  EXPECT_EQ(NM, 1u); // the lane metadata record
  if (compiledIn()) {
    EXPECT_EQ(NX, 10u);
    EXPECT_EQ(NI, 1u);
    // Every complete event carries a duration field.
    size_t NDur = 0;
    for (Pos = 0; (Pos = Doc.find("\"dur\": ", Pos)) != std::string::npos;
         ++Pos)
      ++NDur;
    EXPECT_EQ(NDur, NX);
  } else {
    EXPECT_EQ(NX, 0u);
    EXPECT_EQ(NI, 0u);
  }
}

TEST(Trace, StopFreezesBuffer) {
  TraceBuffer B;
  B.start();
  { TraceSpan S(&B, "before", "test"); }
  B.stop();
  { TraceSpan S(&B, "after", "test"); }
  B.instant("after-instant", "test");
  EXPECT_EQ(B.eventCount(), compiledIn() ? 1u : 0u);
}

TEST(Trace, ThreadIdsAreStablePerThread) {
  uint32_t A = threadId();
  EXPECT_EQ(threadId(), A);
  setThreadId(42);
  EXPECT_EQ(threadId(), 42u);
  setThreadId(A); // restore: other tests in this thread reuse the id
}

//===----------------------------------------------------------------------===//
// Cross-lane merge
//===----------------------------------------------------------------------===//

TEST(Trace, MergePreservesLanesAndEvents) {
  TraceBuffer Driver, R0, R1;
  Driver.setLane(0, "driver");
  R0.setLane(1, "rank 0");
  R1.setLane(2, "rank 1");
  for (TraceBuffer *B : {&Driver, &R0, &R1})
    B->start();
  { TraceSpan S(&Driver, "compile", "compile"); }
  { TraceSpan S(&R0, "send", "rt.comm"); }
  { TraceSpan S(&R1, "recv", "rt.comm"); }
  { TraceSpan S(&R1, "send", "rt.comm"); }

  std::string Merged = mergeChromeTraces(
      {Driver.chromeJson(), R0.chromeJson(), R1.chromeJson()});
  ASSERT_TRUE(structurallyValidJson(Merged)) << Merged;
  // All three lanes present.
  EXPECT_NE(Merged.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(Merged.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(Merged.find("\"pid\": 2"), std::string::npos);
  if (compiledIn()) {
    size_t NSend = 0;
    for (size_t Pos = 0;
         (Pos = Merged.find("\"name\": \"send\"", Pos)) != std::string::npos;
         ++Pos)
      ++NSend;
    EXPECT_EQ(NSend, 2u);
  }
}

TEST(Trace, MergeSkipsEmptyAndMalformedDocs) {
  TraceBuffer B;
  B.setLane(5, "only");
  B.start();
  { TraceSpan S(&B, "solo", "test"); }
  std::string Merged = mergeChromeTraces(
      {"", "not json at all", "{\"noTraceEvents\": []}", B.chromeJson()});
  EXPECT_TRUE(structurallyValidJson(Merged)) << Merged;
  EXPECT_NE(Merged.find("\"pid\": 5"), std::string::npos);
}

TEST(Trace, MergeOfNothingIsValidEmptyDoc) {
  std::string Merged = mergeChromeTraces({});
  EXPECT_TRUE(structurallyValidJson(Merged)) << Merged;
  EXPECT_NE(Merged.find("\"traceEvents\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The compile-time switch
//===----------------------------------------------------------------------===//

TEST(ObsSwitch, CompiledInMatchesBuildDefinition) {
#if DHPF_OBS_ENABLED
  EXPECT_TRUE(compiledIn());
#else
  EXPECT_FALSE(compiledIn());
  // The OFF build's probes must be free: no events, no counts.
  MetricsRegistry R;
  R.counter("x")->inc(100);
  EXPECT_EQ(R.counter("x")->value(), 0u);
  TraceBuffer B;
  B.start();
  EXPECT_FALSE(B.active());
#endif
}

} // namespace
