//===- tests/obs_diff_test.cpp - Tracing must not perturb results --------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The observability layer's cardinal rule: probes observe, they never
// steer. Compiling and running every Figure 7 application with the global
// trace buffer active must produce bit-identical results to the untraced
// run — the same printed SPMD program, the same final array bits, the
// same message/byte/statement counters and simulated time — under the
// tree engine and under the bytecode engine at 1 and 4 execution threads.
//
// In a DHPF_OBS=OFF build start() is inert and both runs are untraced;
// the diff then documents that an *attempt* to enable tracing changes
// nothing, which is exactly the zero-overhead contract.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::spmd;

namespace {

/// Everything a compile+run can observe, down to the bit.
struct Observed {
  std::string SpmdText; ///< printed SPMD program from the compile
  std::map<std::string, std::vector<double>> ArrayValues;
  double ElapsedSeconds = 0;
  uint64_t Messages = 0;
  uint64_t Bytes = 0;
  uint64_t StmtInstances = 0;
  bool Valid = true;
  AccumMap FinalAccums;
};

/// One full compile + run of a freshly made app instance, with the global
/// trace buffer either recording or idle for the whole pipeline.
Observed runOnce(AppInstance (*Make)(), const std::vector<int64_t> &Shape,
                 EngineKind Engine, unsigned Threads, bool Tracing) {
  obs::TraceBuffer &GB = obs::TraceBuffer::global();
  GB.clear();
  if (Tracing)
    GB.start();
  else
    GB.stop();

  AppInstance App = Make();
  auto Compiled = compileProgram(*App.Prog);
  EXPECT_TRUE(Compiled) << App.Name;

  Observed O;
  if (!Compiled)
    return O;
  O.SpmdText = Compiled->Program.print();

  RunConfig RC;
  RC.ProcExtents = {{App.ProcArrayName, Shape}};
  RC.Engine = Engine;
  RC.ExecThreads = Threads;
  Interpreter I(Compiled->Program, RC);
  App.Setup(I);
  RunResult RR = I.run();

  for (const auto &[Name, Decl] : App.Prog->arrays()) {
    (void)Decl;
    O.ArrayValues[Name] = I.array(Name).values();
  }
  O.ElapsedSeconds = RR.ElapsedSeconds;
  O.Messages = RR.Messages;
  O.Bytes = RR.Bytes;
  O.StmtInstances = RR.StmtInstances;
  O.Valid = RR.Valid;
  O.FinalAccums = RR.FinalAccums;

  if (Tracing && obs::compiledIn())
    EXPECT_GT(GB.eventCount(), 0u)
        << App.Name << ": traced run recorded no events";
  GB.stop();
  GB.clear();
  return O;
}

void expectBitIdentical(const Observed &Off, const Observed &On,
                        const std::string &Config) {
  EXPECT_EQ(Off.SpmdText, On.SpmdText) << Config << ": SPMD text differs";
  ASSERT_EQ(Off.ArrayValues.size(), On.ArrayValues.size()) << Config;
  for (const auto &[Name, Vals] : Off.ArrayValues) {
    auto It = On.ArrayValues.find(Name);
    ASSERT_NE(It, On.ArrayValues.end()) << Name << " (" << Config << ")";
    ASSERT_EQ(Vals.size(), It->second.size()) << Name << " (" << Config
                                              << ")";
    EXPECT_EQ(0, std::memcmp(Vals.data(), It->second.data(),
                             Vals.size() * sizeof(double)))
        << "array " << Name << " not bit-identical (" << Config << ")";
  }
  EXPECT_EQ(0, std::memcmp(&Off.ElapsedSeconds, &On.ElapsedSeconds,
                           sizeof(double)))
      << Config;
  EXPECT_EQ(Off.Messages, On.Messages) << Config;
  EXPECT_EQ(Off.Bytes, On.Bytes) << Config;
  EXPECT_EQ(Off.StmtInstances, On.StmtInstances) << Config;
  EXPECT_EQ(Off.Valid, On.Valid) << Config;
  ASSERT_EQ(Off.FinalAccums.size(), On.FinalAccums.size()) << Config;
  for (const auto &[Name, V] : Off.FinalAccums) {
    auto It = On.FinalAccums.find(Name);
    ASSERT_NE(It, On.FinalAccums.end()) << Name << " (" << Config << ")";
    EXPECT_EQ(0, std::memcmp(&V, &It->second, sizeof(double)))
        << "accumulator " << Name << " (" << Config << ")";
  }
}

void diffApp(AppInstance (*Make)(), const std::vector<int64_t> &Shape) {
  struct EngineConfig {
    EngineKind Engine;
    unsigned Threads;
    const char *Label;
  };
  const EngineConfig Configs[] = {
      {EngineKind::Tree, 1, "tree"},
      {EngineKind::Bytecode, 1, "bytecode/1-thread"},
      {EngineKind::Bytecode, 4, "bytecode/4-thread"},
  };
  for (const EngineConfig &C : Configs) {
    Observed Off = runOnce(Make, Shape, C.Engine, C.Threads, false);
    Observed On = runOnce(Make, Shape, C.Engine, C.Threads, true);
    EXPECT_TRUE(Off.Valid) << C.Label;
    expectBitIdentical(Off, On, C.Label);
  }
}

AppInstance makeJacobiApp() { return makeJacobi(12, 2); }
AppInstance makeTomcatvApp() { return makeTomcatv(12, 2); }
AppInstance makeErlebacherApp() { return makeErlebacher(8, 2); }
AppInstance makeGaussApp() { return makeGauss(10); }

TEST(ObsDiff, Jacobi) { diffApp(makeJacobiApp, {2, 2}); }
TEST(ObsDiff, Tomcatv) { diffApp(makeTomcatvApp, {4}); }
TEST(ObsDiff, Erlebacher) { diffApp(makeErlebacherApp, {4}); }
TEST(ObsDiff, Gauss) { diffApp(makeGaussApp, {2, 2}); }

} // namespace
