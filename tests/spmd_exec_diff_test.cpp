//===- tests/spmd_exec_diff_test.cpp - Tree vs bytecode differential -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The bytecode engine (ExecPlan.h) and the native engine (compiled C
// kernels over the same plans) must be observationally identical to the
// tree-walking interpreter: bit-identical array state, identical message
// traffic and simulated times, identical accumulators — for every Figure 7
// application, and independent of the number of execution threads. The
// native legs are skipped (with a note) when no C compiler answers the
// kernel cache's probe.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"
#include "spmd/KernelCache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <iostream>
#include <map>
#include <vector>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::spmd;

namespace {

/// Everything a run can observe: final array bits, simulated machine
/// totals, accumulators, and validity.
struct Observed {
  std::map<std::string, std::vector<double>> ArrayValues;
  double ElapsedSeconds = 0;
  uint64_t Messages = 0;
  uint64_t Bytes = 0;
  uint64_t StmtInstances = 0;
  bool Valid = true;
  std::vector<std::string> Violations;
  AccumMap FinalAccums;
  unsigned InPlaceRuntimeUpgrades = 0;
};

Observed runOnce(const CompileOutput &Compiled, const AppInstance &App,
                 const std::vector<int64_t> &ProcShape, EngineKind Engine,
                 unsigned Threads) {
  RunConfig RC;
  RC.ProcExtents = {{App.ProcArrayName, ProcShape}};
  RC.Engine = Engine;
  RC.ExecThreads = Threads;
  Interpreter I(Compiled.Program, RC);
  App.Setup(I);
  RunResult RR = I.run();

  Observed O;
  for (const auto &[Name, Decl] : App.Prog->arrays())
    O.ArrayValues[Name] = I.array(Name).values();
  O.ElapsedSeconds = RR.ElapsedSeconds;
  O.Messages = RR.Messages;
  O.Bytes = RR.Bytes;
  O.StmtInstances = RR.StmtInstances;
  O.Valid = RR.Valid;
  O.Violations = RR.Violations;
  O.FinalAccums = RR.FinalAccums;
  O.InPlaceRuntimeUpgrades = RR.InPlaceRuntimeUpgrades;
  return O;
}

/// Bitwise comparison of doubles: engines must agree exactly, not just
/// within tolerance.
void expectBitIdentical(const std::vector<double> &A,
                        const std::vector<double> &B, const std::string &What,
                        const std::string &Config) {
  ASSERT_EQ(A.size(), B.size()) << What << " size (" << Config << ")";
  if (!A.empty() &&
      std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) != 0) {
    for (size_t I = 0; I != A.size(); ++I)
      if (std::memcmp(&A[I], &B[I], sizeof(double)) != 0) {
        ADD_FAILURE() << What << " differs at flat index " << I << ": "
                      << A[I] << " vs " << B[I] << " (" << Config << ")";
        return;
      }
  }
}

void expectSame(const Observed &Tree, const Observed &Byte,
                const std::string &Config) {
  ASSERT_EQ(Tree.ArrayValues.size(), Byte.ArrayValues.size()) << Config;
  for (const auto &[Name, Vals] : Tree.ArrayValues) {
    auto It = Byte.ArrayValues.find(Name);
    ASSERT_NE(It, Byte.ArrayValues.end()) << Name << " (" << Config << ")";
    expectBitIdentical(Vals, It->second, "array " + Name, Config);
  }
  // Simulated time is a deterministic function of the event sequence; the
  // engines must agree on every bit of it.
  expectBitIdentical({Tree.ElapsedSeconds}, {Byte.ElapsedSeconds},
                     "ElapsedSeconds", Config);
  EXPECT_EQ(Tree.Messages, Byte.Messages) << Config;
  EXPECT_EQ(Tree.Bytes, Byte.Bytes) << Config;
  EXPECT_EQ(Tree.StmtInstances, Byte.StmtInstances) << Config;
  EXPECT_EQ(Tree.Valid, Byte.Valid) << Config;
  EXPECT_EQ(Tree.Violations, Byte.Violations) << Config;
  EXPECT_EQ(Tree.InPlaceRuntimeUpgrades, Byte.InPlaceRuntimeUpgrades)
      << Config;
  ASSERT_EQ(Tree.FinalAccums.size(), Byte.FinalAccums.size()) << Config;
  for (const auto &[Name, V] : Tree.FinalAccums) {
    auto It = Byte.FinalAccums.find(Name);
    ASSERT_NE(It, Byte.FinalAccums.end()) << Name << " (" << Config << ")";
    expectBitIdentical({V}, {It->second}, "accumulator " + Name, Config);
  }
}

/// Runs \p App under tree, then under bytecode and native with 1 and 4
/// execution threads; every observable must match the tree oracle exactly.
void diffApp(AppInstance App, const std::vector<int64_t> &ProcShape) {
  auto Compiled = compileProgram(*App.Prog);
  ASSERT_TRUE(Compiled) << App.Name;

  Observed Tree = runOnce(*Compiled, App, ProcShape, EngineKind::Tree, 1);
  EXPECT_TRUE(Tree.Valid) << App.Name;

  for (unsigned Threads : {1u, 4u}) {
    SCOPED_TRACE(App.Name);
    Observed Byte =
        runOnce(*Compiled, App, ProcShape, EngineKind::Bytecode, Threads);
    expectSame(Tree, Byte,
               App.Name + " bytecode/" + std::to_string(Threads) +
                   "-thread");
  }

  if (spmd::native::KernelCache::global().compilerAvailable()) {
    for (unsigned Threads : {1u, 4u}) {
      SCOPED_TRACE(App.Name);
      Observed Nat =
          runOnce(*Compiled, App, ProcShape, EngineKind::Native, Threads);
      expectSame(Tree, Nat,
                 App.Name + " native/" + std::to_string(Threads) +
                     "-thread");
    }
  } else {
    std::cout << "[   NOTE   ] no usable C compiler; native-engine legs "
                 "skipped for "
              << App.Name << "\n";
  }

  // The serial-reference check must also pass under the bytecode engine.
  if (App.Check) {
    RunConfig RC;
    RC.ProcExtents = {{App.ProcArrayName, ProcShape}};
    RC.Engine = EngineKind::Bytecode;
    RC.ExecThreads = 4;
    Interpreter I(Compiled->Program, RC);
    App.Setup(I);
    RunResult RR = I.run();
    EXPECT_TRUE(RR.Valid) << App.Name;
    std::string Err;
    EXPECT_TRUE(App.Check(I, Err)) << App.Name << ": " << Err;
  }
}

TEST(SpmdExecDiff, Jacobi) { diffApp(makeJacobi(16, 3), {2, 2}); }

TEST(SpmdExecDiff, Tomcatv) { diffApp(makeTomcatv(18, 3), {4}); }

TEST(SpmdExecDiff, Erlebacher) { diffApp(makeErlebacher(10, 2), {4}); }

TEST(SpmdExecDiff, Gauss) { diffApp(makeGauss(12), {2, 2}); }

// A single-processor run exercises the no-communication fast paths.
TEST(SpmdExecDiff, JacobiOneProc) { diffApp(makeJacobi(12, 2), {1, 1}); }

// An odd processor count exercises ragged block boundaries.
TEST(SpmdExecDiff, GaussRagged) { diffApp(makeGauss(12), {2, 3}); }

} // namespace
