//===- tests/placement_test.cpp - Placement cost-model property tests -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The placement subsystem's central property: because the TrafficMatrix
/// estimator replays execSend's comm-set enumeration exactly, its
/// predicted message/byte totals must equal the measured RunResult
/// counters — the stated tolerance is zero — for every Figure 7 app at
/// P in {2, 4, 8}, on the registry's shape and on every candidate shape
/// the search enumerates. On top of that sits the acceptance claim: the
/// shape `dhpfc place` picks costs no more measured bytes than the
/// hand-picked registry shape for at least two of the apps.
///
//===----------------------------------------------------------------------===//

#include "apps/Registry.h"
#include "core/Compiler.h"
#include "placement/Placement.h"
#include "spmd/Interp.h"

#include "gtest/gtest.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace dhpf;

namespace {

struct CompiledApp {
  apps::AppInstance App;
  const apps::RegistryEntry *Reg;
  std::unique_ptr<core::CompileOutput> Compiled;
};

std::vector<CompiledApp> &compiledApps() {
  static std::vector<CompiledApp> Apps = [] {
    std::vector<CompiledApp> Out;
    for (const apps::RegistryEntry &E : apps::appRegistry()) {
      CompiledApp CA;
      CA.App = E.MakeCanonical();
      CA.Reg = &E;
      CA.Compiled = core::compileProgram(*CA.App.Prog);
      Out.push_back(std::move(CA));
    }
    return Out;
  }();
  return Apps;
}

/// Measured counters for one shape binding via the in-process engine.
spmd::RunResult measure(const CompiledApp &CA,
                        const std::vector<int64_t> &Shape) {
  spmd::RunConfig RC;
  RC.ProcExtents[CA.App.ProcArrayName] = Shape;
  spmd::Interpreter I(CA.Compiled->Program, RC);
  CA.App.Setup(I);
  return I.run();
}

placement::TrafficMatrix estimate(const CompiledApp &CA,
                                  const std::vector<int64_t> &Shape) {
  spmd::RunConfig RC;
  RC.ProcExtents[CA.App.ProcArrayName] = Shape;
  RC.CheckValidity = false;
  return placement::estimateTraffic(CA.Compiled->Program, RC);
}

//===----------------------------------------------------------------------===//
// Estimated == measured, exactly, on every app / P / candidate shape
//===----------------------------------------------------------------------===//

TEST(PlacementEstimate, MatchesMeasuredCountersOnRegistryShapes) {
  for (const CompiledApp &CA : compiledApps()) {
    for (int64_t P : {2, 4, 8}) {
      std::vector<int64_t> Shape = CA.Reg->ProcShape(P);
      if (Shape.empty())
        continue; // app cannot lay P on its grid
      placement::TrafficMatrix TM = estimate(CA, Shape);
      spmd::RunResult RR = measure(CA, Shape);
      ASSERT_TRUE(RR.Valid) << CA.Reg->Name;
      EXPECT_EQ(TM.totalMessages(), RR.Messages)
          << CA.Reg->Name << " P=" << P;
      EXPECT_EQ(TM.totalBytes(), RR.Bytes) << CA.Reg->Name << " P=" << P;
    }
  }
}

TEST(PlacementEstimate, MatchesMeasuredOnEverySearchCandidate) {
  for (const CompiledApp &CA : compiledApps()) {
    std::vector<placement::Candidate> Cands = placement::searchShapes(
        CA.Compiled->Program, 8, {}, placement::MachineCost());
    ASSERT_FALSE(Cands.empty()) << CA.Reg->Name;
    for (const placement::Candidate &C : Cands) {
      spmd::RunResult RR = measure(CA, C.Shape);
      ASSERT_TRUE(RR.Valid) << CA.Reg->Name;
      EXPECT_EQ(C.Traffic.totalMessages(), RR.Messages) << CA.Reg->Name;
      EXPECT_EQ(C.Traffic.totalBytes(), RR.Bytes) << CA.Reg->Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Search behavior
//===----------------------------------------------------------------------===//

TEST(PlacementSearch, DeterministicAndSortedByCost) {
  for (const CompiledApp &CA : compiledApps()) {
    std::vector<placement::Candidate> A = placement::searchShapes(
        CA.Compiled->Program, 8, {}, placement::MachineCost());
    std::vector<placement::Candidate> B = placement::searchShapes(
        CA.Compiled->Program, 8, {}, placement::MachineCost());
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I].Shape, B[I].Shape);
      if (I)
        EXPECT_LE(A[I - 1].Cost, A[I].Cost);
    }
  }
}

TEST(PlacementSearch, ImpossibleCountsYieldNoShape) {
  // 7 is prime: apps with a fixed x symbolic grid dimension of extent 2
  // cannot lay it out; 1-D symbolic grids can (7x trivially divides).
  for (const CompiledApp &CA : compiledApps()) {
    std::vector<int64_t> Best =
        placement::bestShape(CA.Compiled->Program, 7, {});
    std::vector<placement::Candidate> Cands = placement::searchShapes(
        CA.Compiled->Program, 7, {}, placement::MachineCost());
    EXPECT_EQ(Best.empty(), Cands.empty()) << CA.Reg->Name;
    if (!Best.empty()) {
      int64_t Total = 1;
      for (int64_t E : Best)
        Total *= E;
      EXPECT_EQ(Total, 7) << CA.Reg->Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Acceptance: placed bytes <= registry bytes for at least two apps
//===----------------------------------------------------------------------===//

TEST(PlacementAcceptance, PlacedShapeBytesNoWorseThanRegistryForTwoApps) {
  unsigned NoWorse = 0;
  for (const CompiledApp &CA : compiledApps()) {
    std::vector<int64_t> RegShape = CA.Reg->ProcShape(8);
    std::vector<int64_t> Placed =
        placement::bestShape(CA.Compiled->Program, 8, {});
    if (RegShape.empty() || Placed.empty())
      continue;
    uint64_t RegBytes = measure(CA, RegShape).Bytes;
    uint64_t PlacedBytes = measure(CA, Placed).Bytes;
    NoWorse += PlacedBytes <= RegBytes;
  }
  EXPECT_GE(NoWorse, 2u);
}

} // namespace
