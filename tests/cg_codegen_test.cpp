//===- tests/cg_codegen_test.cpp - Loop generation from sets -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Property: executing the generated loop nest enumerates exactly the points
// of the input set (checked against the pset membership oracle), in
// lexicographic order, with statements in order for equal tuples.
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace dhpf;
using namespace dhpf::cg;

namespace {

using Point = std::vector<int64_t>;

/// Runs the generated AST and returns (leafId, tuple) visits in order.
std::vector<std::pair<int, Point>>
run(const AstPtr &Tree, VarTable &Vars,
    const std::vector<std::string> &LoopVars,
    const std::map<std::string, int64_t> &Params = {}) {
  std::vector<int64_t> Env(Vars.size(), 0);
  for (auto &[Name, V] : Params)
    Env[Vars.lookup(Name)] = V;
  std::vector<unsigned> Slots;
  for (const std::string &LV : LoopVars)
    Slots.push_back(Vars.lookup(LV));
  std::vector<std::pair<int, Point>> Visits;
  execute(*Tree, Env, [&](int Leaf, const std::vector<int64_t> &E) {
    Point P;
    for (unsigned S : Slots)
      P.push_back(E[S]);
    Visits.emplace_back(Leaf, P);
  });
  return Visits;
}

/// Brute-force points of a set over a box.
std::set<Point> oracle(const Relation &S, int64_t Lo, int64_t Hi,
                       const std::vector<int64_t> &ParamVals = {}) {
  unsigned K = S.numOut();
  std::set<Point> Pts;
  Point P(K, Lo);
  for (;;) {
    if (S.contains(P, ParamVals))
      Pts.insert(P);
    unsigned D = 0;
    while (D < K && ++P[D] > Hi) {
      P[D] = Lo;
      ++D;
    }
    if (D == K)
      break;
  }
  return Pts;
}

void expectEnumerates(const std::string &SetText,
                      const std::vector<std::string> &LoopVars, int64_t Lo,
                      int64_t Hi,
                      const std::map<std::string, int64_t> &Params = {}) {
  Relation S = parseRelation(SetText);
  VarTable Vars;
  for (auto &[Name, V] : Params) {
    (void)V;
    Vars.slot(Name);
  }
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegenSet(S, LoopVars);
  auto Visits = run(Tree, Vars, LoopVars, Params);
  // No duplicates, lexicographically ordered.
  for (unsigned I = 1; I < Visits.size(); ++I)
    EXPECT_LT(Visits[I - 1].second, Visits[I].second)
        << SetText << " visit " << I;
  std::set<Point> Got;
  for (auto &[Id, P] : Visits) {
    (void)Id;
    Got.insert(P);
  }
  std::vector<int64_t> ParamVals;
  for (const std::string &PN : S.space().params()) {
    auto It = Params.find(PN);
    ASSERT_TRUE(It != Params.end()) << "missing parameter " << PN;
    ParamVals.push_back(It->second);
  }
  EXPECT_EQ(Got, oracle(S, Lo, Hi, ParamVals)) << SetText;
}

TEST(CodeGen, SimpleBox) {
  expectEnumerates("{ [i] : 1 <= i <= 8 }", {"i"}, -5, 15);
  expectEnumerates("{ [i,j] : 1 <= i <= 4 && i <= j <= 6 }", {"i", "j"}, -3,
                   10);
}

TEST(CodeGen, TriangularAndCoefficients) {
  expectEnumerates("{ [i,j] : 0 <= i <= 6 && 2j <= i && 0 <= j }", {"i", "j"},
                   -3, 10);
  expectEnumerates("{ [i,j] : 1 <= i <= 9 && 3j = i }", {"i", "j"}, -3, 12);
}

TEST(CodeGen, Strides) {
  expectEnumerates("{ [i] : 0 <= i <= 20 && exists(a : i = 2a) }", {"i"}, -5,
                   25);
  expectEnumerates("{ [i] : 1 <= i <= 20 && exists(a : i = 3a + 2) }", {"i"},
                   -5, 25);
  // Stride on the inner dimension with an outer-dependent residue.
  expectEnumerates(
      "{ [i,j] : 0 <= i <= 4 && i <= j <= 12 && exists(a : j = 2a + i) }",
      {"i", "j"}, -3, 15);
}

TEST(CodeGen, StrideLoopUsed) {
  Relation S =
      parseRelation("{ [i] : 0 <= i <= 20 && exists(a : i = 4a + 1) }");
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegenSet(S, {"i"});
  // The nest must use a step-4 loop, not a mod guard.
  ASSERT_EQ(Tree->K, AstNode::Kind::Loop);
  EXPECT_TRUE(Tree->Step.isConst(4));
}

TEST(CodeGen, UnionSet) {
  expectEnumerates("{ [i] : 0 <= i <= 3 or 6 <= i <= 9 }", {"i"}, -3, 12);
  expectEnumerates("{ [i,j] : 0 <= i <= 2 && 0 <= j <= 2 or "
                   "1 <= i <= 4 && 5 <= j <= 6 }",
                   {"i", "j"}, -3, 9);
  // The cross-level mixing trap: two conjuncts whose i-ranges overlap but
  // whose j constraints differ.
  expectEnumerates("{ [i,j] : 0 <= i <= 5 && j = 0 or "
                   "3 <= i <= 8 && j = 1 }",
                   {"i", "j"}, -2, 10);
}

TEST(CodeGen, Parametric) {
  expectEnumerates("[N] -> { [i] : 1 <= i <= N }", {"i"}, -3, 20,
                   {{"N", 7}});
  expectEnumerates("[N,p] -> { [i] : 25p + 1 <= i <= 25p + 25 && "
                   "1 <= i <= N }",
                   {"i"}, -3, 60, {{"N", 40}, {"p", 1}});
}

TEST(CodeGen, ParametricStride) {
  // Cyclic-distribution style: i ≡ p (mod 4), the Section 4 VP loop shape.
  expectEnumerates("[p] -> { [i] : 0 <= i <= 19 && exists(a : i = 4a + p) }",
                   {"i"}, -4, 24, {{"p", 2}});
}

TEST(CodeGen, MultiStatementInterleaving) {
  // Two statements over different ranges of a shared loop; equal tuples must
  // run in statement order.
  Relation S1 = parseRelation("{ [i] : 0 <= i <= 5 }");
  Relation S2 = parseRelation("{ [i] : 3 <= i <= 8 }");
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegen({{1, "S1", S1}, {2, "S2", S2}}, {"i"});
  auto Visits = run(Tree, Vars, {"i"});
  std::vector<std::pair<int, Point>> Expect;
  for (int64_t I = 0; I <= 8; ++I) {
    if (I <= 5)
      Expect.push_back({1, {I}});
    if (I >= 3)
      Expect.push_back({2, {I}});
  }
  EXPECT_EQ(Visits, Expect);
}

TEST(CodeGen, MultiStatement2D) {
  Relation S1 = parseRelation("{ [i,j] : 1 <= i <= 3 && 1 <= j <= 3 }");
  Relation S2 = parseRelation("{ [i,j] : 2 <= i <= 4 && 2 <= j <= 2 }");
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegen({{1, "A", S1}, {2, "B", S2}}, {"i", "j"});
  auto Visits = run(Tree, Vars, {"i", "j"});
  // Check totals and interleaving invariant: visits sorted by (tuple, id).
  std::vector<std::pair<Point, int>> Keyed;
  for (auto &[Id, P] : Visits)
    Keyed.push_back({P, Id});
  EXPECT_TRUE(std::is_sorted(Keyed.begin(), Keyed.end()));
  unsigned N1 = 0, N2 = 0;
  for (auto &[Id, P] : Visits) {
    (void)P;
    (Id == 1 ? N1 : N2)++;
  }
  EXPECT_EQ(N1, 9u);
  EXPECT_EQ(N2, 3u);
}

TEST(CodeGen, KnownPrunesParamGuard) {
  Relation S = parseRelation("[N] -> { [i] : 1 <= i <= N && N >= 1 }");
  Relation Known = parseRelation("[N] -> { [] : N >= 1 }");
  VarTable V1, V2;
  CodeGen CG1(V1), CG2(V2);
  AstPtr WithKnown = CG1.codegenSet(S, {"i"}, 0, "", &Known);
  AstPtr Without = CG2.codegenSet(S, {"i"});
  // With Known, the N >= 1 condition must be pruned: tree root is the loop.
  EXPECT_EQ(WithKnown->K, AstNode::Kind::Loop);
  EXPECT_EQ(Without->K, AstNode::Kind::If);
}

TEST(CodeGen, EmptySet) {
  Relation S = parseRelation("{ [i] : false }");
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegenSet(S, {"i"});
  auto Visits = run(Tree, Vars, {"i"});
  EXPECT_TRUE(Visits.empty());
}

TEST(CodeGen, PrintedFormLooksLikeFortran) {
  Relation S = parseRelation(
      "[N] -> { [i,j] : 1 <= i <= N && i <= j <= N }");
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegenSet(S, {"i", "j"}, 7, "A(i,j) = B(j,i)");
  std::string Text = printAst(*Tree);
  EXPECT_NE(Text.find("do i = "), std::string::npos);
  EXPECT_NE(Text.find("do j = "), std::string::npos);
  EXPECT_NE(Text.find("A(i,j) = B(j,i)"), std::string::npos);
  EXPECT_NE(Text.find("enddo"), std::string::npos);
}

TEST(ExprTest, EvalAndSimplify) {
  VarTable Vars;
  unsigned X = Vars.slot("x");
  Expr E = Expr::add(Expr::mul(Expr::var(X, "x"), 3), Expr::constant(4));
  std::vector<int64_t> Env = {5};
  EXPECT_EQ(E.eval(Env), 19);
  EXPECT_EQ(Expr::add(Expr::constant(2), Expr::constant(3)).constVal(), 5);
  EXPECT_TRUE(Expr::mul(Expr::var(X, "x"), 0).isConst(0));
  Expr M = Expr::min({Expr::var(X, "x"), Expr::var(X, "x")});
  EXPECT_EQ(M.kind(), Expr::Kind::Var);
  EXPECT_EQ(Expr::floorDiv(Expr::constant(-7), 2).constVal(), -4);
  EXPECT_EQ(Expr::ceilDiv(Expr::constant(-7), 2).constVal(), -3);
  EXPECT_EQ(Expr::mod(Expr::constant(-7), 3).constVal(), 2);
}

} // namespace
