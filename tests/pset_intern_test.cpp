//===- tests/pset_intern_test.cpp - Hash-consed conjunct arena tests -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The intern table is purely an accelerator: it must collapse exactly the
// structures the structural fingerprint collapses, hand back one stable
// pointer per canonical form (including under concurrent interning from
// the analysis pool), and keep Relation::fingerprint() — the memoized,
// intern-backed path — numerically identical to the original structural
// walk pset::fingerprint(Relation).
//
//===----------------------------------------------------------------------===//

#include "pset/Fingerprint.h"
#include "pset/Intern.h"
#include "pset/Relation.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace dhpf;

namespace {

/// First conjunct of a parsed set, by value.
Conjunct firstConjunct(const std::string &Text) {
  Relation R = parseRelation(Text);
  const std::vector<Conjunct> &Cs = std::as_const(R).conjuncts();
  EXPECT_FALSE(Cs.empty()) << Text;
  return Cs.front();
}

const pset::InternedConjunct *internOf(const std::string &Text) {
  Conjunct C = firstConjunct(Text);
  return pset::InternTable::global().intern(C);
}

} // namespace

// Re-parsing identical text must resolve to the identical arena entry.
TEST(PsetIntern, SameTextSamePointer) {
  const pset::InternedConjunct *A = internOf("{ [i] : 1 <= i <= 5 }");
  const pset::InternedConjunct *B = internOf("{ [i] : 1 <= i <= 5 }");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->FP, B->FP);
  EXPECT_EQ(A->Id, B->Id);
}

// Tuple-variable and existential names live in the Space, not the
// conjunct, so generated sets that differ only in the names they picked
// (parser-generated existentials included) intern to the same entry.
TEST(PsetIntern, NamesDoNotSplitEntries) {
  EXPECT_EQ(internOf("{ [i] : 1 <= i <= 5 }"),
            internOf("{ [x] : 1 <= x <= 5 }"));
  EXPECT_EQ(internOf("{ [i] : 0 <= i <= 10 && exists(a : i = 2a) }"),
            internOf("{ [j] : 0 <= j <= 10 && exists(q : j = 2q) }"));
}

// Row order, common row factors, and equality orientation are canonical-
// form details: all four spellings below describe one structure.
TEST(PsetIntern, CanonicalFormCollapsesSpellings) {
  const pset::InternedConjunct *A =
      internOf("{ [i,j] : 1 <= i <= 5 && i = j }");
  EXPECT_EQ(A, internOf("{ [i,j] : i = j && 1 <= i <= 5 }"));
  EXPECT_EQ(A, internOf("{ [i,j] : j = i && 1 <= i <= 5 }"));
  EXPECT_EQ(A, internOf("{ [i,j] : 2 <= 2i <= 10 && 3i = 3j }"));
}

TEST(PsetIntern, DistinctStructuresDistinctEntries) {
  const pset::InternedConjunct *A = internOf("{ [i] : 1 <= i <= 5 }");
  const pset::InternedConjunct *B = internOf("{ [i] : 1 <= i <= 6 }");
  const pset::InternedConjunct *C = internOf("{ [i] : exists(a : i = 2a) }");
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(B, C);
  EXPECT_NE(A->FP, B->FP);
}

// The canonical form must agree with the structural fingerprint: hashing
// is idempotent over canonicalization, and the stored FP is exactly the
// old structural hash of the original conjunct.
TEST(PsetIntern, FingerprintAgreesWithStructuralPath) {
  const char *Texts[] = {
      "{ [i] : 1 <= i <= 5 }",
      "{ [i,j] : 0 <= 2i < j && j <= 6 }",
      "{ [i] : 0 <= i <= 10 && exists(a : i = 2a) }",
      "{ [i,j] : 4 <= 2i + 2j <= 8 && i >= 0 }",
  };
  for (const char *T : Texts) {
    Conjunct C = firstConjunct(T);
    Conjunct Canon = pset::canonicalConjunct(C);
    EXPECT_EQ(pset::fingerprint(Canon), pset::fingerprint(C)) << T;
    const pset::InternedConjunct *E = pset::InternTable::global().intern(C);
    EXPECT_EQ(E->FP, pset::fingerprint(C)) << T;
    // Canonicalization is a fixpoint: interning the canonical form lands
    // on the same entry.
    EXPECT_EQ(E, pset::InternTable::global().intern(Canon)) << T;
  }
}

// Relation::fingerprint() (memoized, intern-backed) must equal the free
// structural walk — for parsed relations, for operation results, and
// after mutation through the non-const accessor (memo invalidation).
TEST(PsetIntern, RelationFingerprintMatchesFreeFunction) {
  Relation A = parseRelation("{ [i] : 1 <= i <= 9 or 20 <= i <= 30 }");
  Relation B = parseRelation("{ [i] : exists(a : i = 2a) }");
  EXPECT_EQ(A.fingerprint(), pset::fingerprint(A));
  EXPECT_EQ(B.fingerprint(), pset::fingerprint(B));

  Relation I = A.intersect(B);
  Relation S = A.subtract(B).simplify();
  Relation U = A.unionWith(B);
  EXPECT_EQ(I.fingerprint(), pset::fingerprint(I));
  EXPECT_EQ(S.fingerprint(), pset::fingerprint(S));
  EXPECT_EQ(U.fingerprint(), pset::fingerprint(U));

  // Copies carry the memo; the copy still answers correctly.
  Relation Copy = I;
  EXPECT_EQ(Copy.fingerprint(), pset::fingerprint(I));

  // Mutation through the non-const accessor invalidates the memo.
  uint64_t Before = A.fingerprint();
  A.conjuncts().pop_back();
  EXPECT_EQ(A.fingerprint(), pset::fingerprint(A));
  EXPECT_NE(A.fingerprint(), Before);
}

// Arena pointers must be stable and unique under concurrent interning:
// many threads hammering the same structure family must all observe one
// pointer per structure, and those pointers must survive later growth.
TEST(PsetIntern, ConcurrentInternIsStable) {
  std::vector<Conjunct> Family;
  for (int K = 0; K != 24; ++K)
    Family.push_back(firstConjunct("{ [i,j] : " + std::to_string(K) +
                                   " <= i <= " + std::to_string(K + 7) +
                                   " && j = 2i + " + std::to_string(K % 5) +
                                   " }"));

  constexpr unsigned NumThreads = 8;
  std::vector<std::vector<const pset::InternedConjunct *>> Seen(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      std::vector<const pset::InternedConjunct *> Ptrs(Family.size());
      for (int Rep = 0; Rep != 50; ++Rep)
        for (size_t K = 0; K != Family.size(); ++K) {
          // Vary the visit order per thread so shards interleave.
          size_t Idx = (K * (T + 1) + Rep) % Family.size();
          const pset::InternedConjunct *P =
              pset::InternTable::global().intern(Family[Idx]);
          if (Ptrs[Idx] == nullptr)
            Ptrs[Idx] = P;
          else
            EXPECT_EQ(Ptrs[Idx], P);
        }
      Seen[T] = std::move(Ptrs);
    });
  for (std::thread &T : Threads)
    T.join();

  for (unsigned T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Seen[0], Seen[T]);
  // Pointers stay valid after further arena growth.
  for (int K = 1000; K != 1100; ++K)
    pset::InternTable::global().intern(
        firstConjunct("{ [i] : i = " + std::to_string(K) + " }"));
  for (size_t K = 0; K != Family.size(); ++K) {
    EXPECT_EQ(Seen[0][K], pset::InternTable::global().intern(Family[K]));
    EXPECT_EQ(Seen[0][K]->FP, pset::fingerprint(Family[K]));
  }
}

// The counters that feed obs metrics and the bench JSON: lookups grow by
// one per intern() call, hits only when the entry already existed, and
// the entry count is the number of distinct canonical forms.
TEST(PsetIntern, StatsCountLookupsHitsEntries) {
  pset::InternStats S0 = pset::InternTable::global().stats();
  Conjunct Fresh = firstConjunct("{ [i,j,k] : i + 2j + 3k = 777 && i >= 4 }");
  pset::InternTable::global().intern(Fresh);
  pset::InternTable::global().intern(Fresh);
  pset::InternTable::global().intern(Fresh);
  pset::InternStats S1 = pset::InternTable::global().stats();
  pset::InternStats D = S1 - S0;
  EXPECT_EQ(D.Lookups, 3u);
  EXPECT_EQ(D.Hits, 2u);
  EXPECT_EQ(S1.Entries, S0.Entries + 1);
  EXPECT_GT(S1.Rows, S0.Rows);
  EXPECT_EQ(S1.Entries, pset::InternTable::global().size());
}
