//===- tests/serialize_degenerate_test.cpp - Degenerate serialization ----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization round-trip and execution fixpoints for degenerate
/// programs the Figure 7 benchmarks never produce — zero communication
/// events, empty iteration sets, single-processor grids — plus the
/// truncated-file behavior: every prefix of a valid .spmd must be rejected
/// with a file:line:col diagnostic, never a crash or an assert.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "hpf/HpfParser.h"
#include "rt/Session.h"
#include "spmd/Interp.h"
#include "spmd/Serialize.h"
#include "support/Diag.h"

#include "gtest/gtest.h"

#include <string>

using namespace dhpf;

namespace {

const char *NoCommSrc = R"(program nocomm
processors PR(2, 2)
template T(1:8, 1:8)
array A(1:8, 1:8) align (a0,a1) with T(a0,a1)
array B(1:8, 1:8) align (a0,a1) with T(a0,a1)
distribute T(block, block) onto PR

procedure main
  timeloop t = 1, 2
    nest copy
      do i = 1, 8
      do j = 1, 8
      B(i,j) = A(i,j) sem 0
    endnest
  endloop
endprocedure
)";

const char *EmptyIterSrc = R"(program emptyiter
processors PR(*P)
template T(1:8)
array A(1:8) align (a0) with T(a0)
distribute T(block) onto PR

procedure main
  timeloop t = 1, 1
    nest empty
      do i = 6, 5
      A(i) = A(i-1) sem 0
    endnest
  endloop
endprocedure
)";

const char *OneProcSrc = R"(program oneproc
processors PR(1)
template T(1:6)
array A(1:6) align (a0) with T(a0)
distribute T(block) onto PR

procedure main
  timeloop t = 1, 2
    nest shift
      do i = 2, 6
      A(i) = A(i-1) sem 0
    endnest
    reduce sum acc
  endloop
endprocedure
)";

std::unique_ptr<core::CompileOutput>
compileSource(const char *Src, std::unique_ptr<hpf::Program> &ProgOut) {
  DiagnosticEngine Diags;
  auto Parsed = hpf::parseHpfProgram(Src, Diags, "<test>");
  EXPECT_TRUE(Parsed) << Diags.str();
  if (!Parsed)
    return nullptr;
  ProgOut = Parsed.take();
  auto Out = core::compileProgram(*ProgOut);
  EXPECT_TRUE(Out);
  return Out;
}

/// serialize -> parse -> serialize must be a fixpoint, and the reparsed
/// program must execute identically (via the generic session semantics).
void checkFixpointAndRun(const char *Src, int64_t NumProcs,
                         uint64_t ExpectMessages, uint64_t ExpectStmts) {
  std::unique_ptr<hpf::Program> Prog;
  auto Out = compileSource(Src, Prog);
  ASSERT_TRUE(Out);
  std::string Text = spmd::serializeSpmdProgram(Out->Program);

  DiagnosticEngine Diags;
  auto Reparsed = spmd::parseSpmdProgram(Text, Diags, "<roundtrip>");
  ASSERT_TRUE(Reparsed) << Diags.str();
  EXPECT_EQ(Text, spmd::serializeSpmdProgram(*Reparsed));

  for (spmd::SpmdProgram *SP : {&Out->Program, Reparsed.get()}) {
    rt::SessionOptions SO;
    SO.NumProcs = NumProcs;
    std::string Err;
    auto S = rt::resolveSession(*SP, SO, Err);
    ASSERT_TRUE(S) << Err;
    for (spmd::EngineKind E :
         {spmd::EngineKind::Tree, spmd::EngineKind::Bytecode}) {
      spmd::RunConfig RC = S->Config;
      RC.Engine = E;
      spmd::Interpreter I(*SP, RC);
      S->setup(*SP, I);
      spmd::RunResult R = I.run();
      EXPECT_TRUE(R.Valid);
      EXPECT_EQ(R.Messages, ExpectMessages);
      EXPECT_EQ(R.StmtInstances, ExpectStmts);
    }
  }
}

TEST(SerializeDegenerate, ZeroCommEvents) {
  std::unique_ptr<hpf::Program> Prog;
  auto Out = compileSource(NoCommSrc, Prog);
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->NumCommEvents, 0u);
  checkFixpointAndRun(NoCommSrc, 4, 0, 2 * 8 * 8);
}

TEST(SerializeDegenerate, EmptyIterationSets) {
  checkFixpointAndRun(EmptyIterSrc, 4, 0, 0);
}

TEST(SerializeDegenerate, SingleProcessorShape) {
  checkFixpointAndRun(OneProcSrc, 1, 0, 2 * 5);
}

TEST(SerializeDegenerate, EmptyFileDiagnosed) {
  DiagnosticEngine Diags;
  EXPECT_EQ(nullptr, spmd::parseSpmdProgram("", Diags, "empty.spmd"));
  EXPECT_NE(Diags.str().find("empty.spmd:1:"), std::string::npos)
      << Diags.str();
}

/// Every strict prefix of a valid serialized program must be rejected
/// with a diagnostic carrying the file name and a line number — never an
/// assert, crash, or silent acceptance.
TEST(SerializeDegenerate, EveryTruncationDiagnosedWithFileLine) {
  std::unique_ptr<hpf::Program> Prog;
  auto Out = compileSource(OneProcSrc, Prog);
  ASSERT_TRUE(Out);
  std::string Text = spmd::serializeSpmdProgram(Out->Program);
  ASSERT_GT(Text.size(), 100u);
  // Stop short of the closing bytes: a prefix holding the complete final
  // s-expression minus only trailing whitespace is a valid program.
  for (size_t Len = 0; Len + 2 < Text.size(); Len += 7) {
    DiagnosticEngine Diags;
    auto P = spmd::parseSpmdProgram(Text.substr(0, Len), Diags,
                                    "trunc.spmd");
    EXPECT_EQ(nullptr, P) << "prefix of " << Len << " bytes accepted";
    ASSERT_FALSE(Diags.empty()) << "no diagnostic at " << Len << " bytes";
    // file:line:col prefix
    EXPECT_EQ(Diags.str().rfind("trunc.spmd:", 0), 0u)
        << "at " << Len << " bytes: " << Diags.str();
  }
}

/// Garbage after a valid program is also a diagnostic, not an assert.
TEST(SerializeDegenerate, TrailingGarbageDiagnosed) {
  std::unique_ptr<hpf::Program> Prog;
  auto Out = compileSource(OneProcSrc, Prog);
  ASSERT_TRUE(Out);
  std::string Text = spmd::serializeSpmdProgram(Out->Program) + "\n(junk)";
  DiagnosticEngine Diags;
  EXPECT_EQ(nullptr, spmd::parseSpmdProgram(Text, Diags, "tail.spmd"));
  EXPECT_FALSE(Diags.empty());
}

} // namespace
