//===- tests/inplace_test.cpp - In-place communication (Section 3.3) -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/InPlace.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::core;

namespace {

Relation box10x10() {
  return parseRelation("{ [i,j] : 1 <= i <= 10 && 1 <= j <= 10 }");
}

TEST(InPlace, FullColumnIsContiguous) {
  // A column of a column-major array: full extent in dim 0, single index
  // in dim 1.
  Relation C = parseRelation("{ [i,j] : 1 <= i <= 10 && j = 3 }");
  InPlaceResult R = analyzeInPlace(C, box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::Contiguous);
  EXPECT_EQ(R.SplitDim, 1);
}

TEST(InPlace, RowIsNotContiguous) {
  Relation C = parseRelation("{ [i,j] : i = 3 && 1 <= j <= 10 }");
  InPlaceResult R = analyzeInPlace(C, box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::NotContiguous);
}

TEST(InPlace, PartialColumnIsContiguous) {
  Relation C = parseRelation("{ [i,j] : 4 <= i <= 7 && j = 2 }");
  InPlaceResult R = analyzeInPlace(C, box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::Contiguous);
  EXPECT_EQ(R.SplitDim, 0);
}

TEST(InPlace, MultiColumnBlockIsContiguous) {
  // Full columns j in [3,5]: contiguous (dims 0 full, dim 1 convex, none
  // after).
  Relation C = parseRelation("{ [i,j] : 1 <= i <= 10 && 3 <= j <= 5 }");
  InPlaceResult R = analyzeInPlace(C, box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::Contiguous);
}

TEST(InPlace, PartialPlaneIsNot) {
  // Partial range in dim 0 with several j values: not contiguous.
  Relation C = parseRelation("{ [i,j] : 2 <= i <= 9 && 3 <= j <= 5 }");
  InPlaceResult R = analyzeInPlace(C, box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::NotContiguous);
}

TEST(InPlace, GappedColumnIsNot) {
  // Disjunction binds the whole clause in the parser; build the gapped
  // column as an explicit union.
  Relation C1 = parseRelation("{ [i,j] : 1 <= i <= 3 && j = 2 }");
  Relation C2 = parseRelation("{ [i,j] : 6 <= i <= 10 && j = 2 }");
  InPlaceResult R = analyzeInPlace(C1.unionWith(C2), box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::NotContiguous);
}

TEST(InPlace, WholeArrayAndEmpty) {
  EXPECT_EQ(analyzeInPlace(box10x10(), box10x10()).Verdict,
            InPlaceVerdict::Contiguous);
  Relation Empty = parseRelation("{ [i,j] : false }");
  EXPECT_EQ(analyzeInPlace(Empty, box10x10()).Verdict,
            InPlaceVerdict::Contiguous);
}

TEST(InPlace, ParametricSingletonProven) {
  // A column at a symbolic position m: provable for all m.
  Relation C = parseRelation("[m] -> { [i,j] : 1 <= i <= 10 && j = m }");
  InPlaceResult R = analyzeInPlace(C, box10x10());
  EXPECT_EQ(R.Verdict, InPlaceVerdict::Contiguous);
}

TEST(InPlace, ThreeDimFace) {
  // A(:, :, k): contiguous. A(:, k, :): not.
  Relation Arr = parseRelation(
      "{ [i,j,k] : 1 <= i <= 4 && 1 <= j <= 4 && 1 <= k <= 4 }");
  Relation Face = parseRelation(
      "{ [i,j,k] : 1 <= i <= 4 && 1 <= j <= 4 && k = 2 }");
  EXPECT_EQ(analyzeInPlace(Face, Arr).Verdict, InPlaceVerdict::Contiguous);
  Relation Mid = parseRelation(
      "{ [i,j,k] : 1 <= i <= 4 && j = 2 && 1 <= k <= 4 }");
  EXPECT_EQ(analyzeInPlace(Mid, Arr).Verdict, InPlaceVerdict::NotContiguous);
}

TEST(InPlace, RuntimeCheckPath) {
  // Convexity depends on the parameter M: undecidable symbolically, decided
  // exactly by the synthesized runtime check.
  Relation C1 = parseRelation("[M] -> { [i] : 1 <= i <= M }");
  Relation C2 = parseRelation("[M] -> { [i] : M + 2 <= i <= 8 }");
  Relation C = C1.unionWith(C2);
  Relation Arr = parseRelation("{ [i] : 1 <= i <= 10 }");
  InPlaceResult R = analyzeInPlace(C, Arr);
  EXPECT_EQ(R.Verdict, InPlaceVerdict::RuntimeCheck);
  // M = 8: the second conjunct is empty, C = [1,8] is convex.
  EXPECT_TRUE(checkInPlaceAtRuntime(R, {{"M", 8}}));
  // M = 3: C = [1,3] u [5,8] has a gap.
  EXPECT_FALSE(checkInPlaceAtRuntime(R, {{"M", 3}}));
}

} // namespace
