//===- tests/spmd_violation_test.cpp - Validity-check coverage -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The interpreter is also the verifier of the communication analysis: a
// processor may only read elements it owns or has received, and every
// message must match the receiver's expectation sets. These tests compile a
// correct stencil, then *break* the compiled program — strip receives,
// strip sends, deliver twice, inflate the receiver's expectation — and
// check that each violation path fires, with identical diagnostics from the
// tree and bytecode engines.
//
// Broken programs may read elements whose values depend on execution order,
// so these runs pin ExecThreads = 1 (the determinism contract only covers
// valid programs at higher thread counts; see DESIGN.md Section 7).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "spmd/Interp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

namespace {

/// 1-D two-array stencil on 4 processors: A(i) = B(i-1) + B(i+1).
Program stencilProgram() {
  Program P("stencil1d");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 16)});
  P.addArray("A", {range(1, 16)});
  P.addArray("B", {range(1, 16)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addAlign({"B", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distBlock()}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "stencil";
  N.Loops = {loop("i", 2, 15)};
  Statement S;
  S.Write = ref("A", {"i"});
  S.Reads = {ref("B", {AffineExpr("i") - 1}), ref("B", {AffineExpr("i") + 1})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);
  return P;
}

RunResult runBroken(const SpmdProgram &SP, EngineKind Engine) {
  RunConfig RC;
  RC.ProcExtents = {{"P", {4}}};
  RC.Engine = Engine;
  RC.ExecThreads = 1; // broken programs are only deterministic sequentially
  Interpreter I(SP, RC);
  I.setSemantics(0, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &) {
    return R[0] + R[1];
  });
  I.initArray("B", [](const std::vector<int64_t> &Idx) {
    return double(Idx[0] * Idx[0]);
  });
  return I.run();
}

bool anyContains(const std::vector<std::string> &Msgs,
                 const std::string &Needle) {
  for (const std::string &M : Msgs)
    if (M.find(Needle) != std::string::npos)
      return true;
  return false;
}

/// Applies \p Mutate to a freshly compiled stencil, runs it under both
/// engines, asserts identical diagnostics, and returns the violations.
std::vector<std::string>
runMutated(const std::function<void(SpmdProgram &)> &Mutate) {
  Program P = stencilProgram();
  auto Compiled = compileProgram(P);
  EXPECT_TRUE(Compiled);
  Mutate(Compiled->Program);

  RunResult Tree = runBroken(Compiled->Program, EngineKind::Tree);
  RunResult Byte = runBroken(Compiled->Program, EngineKind::Bytecode);
  EXPECT_FALSE(Tree.Valid);
  EXPECT_FALSE(Byte.Valid);
  EXPECT_EQ(Tree.Violations, Byte.Violations);
  EXPECT_EQ(Tree.Messages, Byte.Messages);
  EXPECT_EQ(Tree.Bytes, Byte.Bytes);
  EXPECT_EQ(Tree.StmtInstances, Byte.StmtInstances);
  return Tree.Violations;
}

/// Removes every node of kind \p K from the program tree.
void stripNodes(SpmdNode &N, SpmdNode::Kind K) {
  auto &C = N.Children;
  C.erase(std::remove_if(C.begin(), C.end(),
                         [K](const std::unique_ptr<SpmdNode> &Ch) {
                           return Ch->K == K;
                         }),
          C.end());
  for (auto &Ch : C)
    stripNodes(*Ch, K);
}

/// Duplicates every node of kind \p K in place (the copy runs right after
/// the original).
void duplicateNodes(SpmdNode &N, SpmdNode::Kind K) {
  auto &C = N.Children;
  for (size_t I = 0; I < C.size(); ++I) {
    if (C[I]->K == K) {
      auto Copy = SpmdNode::make(K);
      Copy->EventId = C[I]->EventId;
      C.insert(C.begin() + I + 1, std::move(Copy));
      ++I; // skip the copy
    } else {
      duplicateNodes(*C[I], K);
    }
  }
}

/// Extends the upper bound of every innermost loop (loops whose body holds
/// no further loop) by one iteration.
void widenInnermostLoops(cg::AstNode &N) {
  bool HasLoopChild = false;
  for (const cg::AstPtr &Ch : N.Children) {
    widenInnermostLoops(*Ch);
    std::function<bool(const cg::AstNode &)> containsLoop =
        [&](const cg::AstNode &M) {
          if (M.K == cg::AstNode::Kind::Loop)
            return true;
          for (const cg::AstPtr &C : M.Children)
            if (containsLoop(*C))
              return true;
          return false;
        };
    if (containsLoop(*Ch))
      HasLoopChild = true;
  }
  if (N.K == cg::AstNode::Kind::Loop && !HasLoopChild)
    N.UB = cg::Expr::add(N.UB, cg::Expr::constant(1));
}

// Reads of non-local elements with the receive removed: the validity check
// must flag every such read, and the undelivered sends must be reported.
TEST(SpmdViolation, MissingRecvBeforeNonLocalRead) {
  std::vector<std::string> V = runMutated([](SpmdProgram &SP) {
    stripNodes(*SP.Root, SpmdNode::Kind::Recv);
  });
  EXPECT_TRUE(anyContains(V, "read unreceived element")) << testing::PrintToString(V);
  EXPECT_TRUE(anyContains(V, "unconsumed messages remain"))
      << testing::PrintToString(V);
}

// Receives with the matching send removed: every expectation is an
// un-sent message.
TEST(SpmdViolation, MissingSend) {
  std::vector<std::string> V = runMutated([](SpmdProgram &SP) {
    stripNodes(*SP.Root, SpmdNode::Kind::Send);
  });
  EXPECT_TRUE(anyContains(V, "that was never sent"))
      << testing::PrintToString(V);
}

// Double delivery: each message sent twice, consumed once — the duplicate
// payloads must be detected as unconsumed.
TEST(SpmdViolation, DoubleDelivery) {
  std::vector<std::string> V = runMutated([](SpmdProgram &SP) {
    duplicateNodes(*SP.Root, SpmdNode::Kind::Send);
  });
  EXPECT_TRUE(anyContains(V, "unconsumed messages remain"))
      << testing::PrintToString(V);
}

// Unexpected message contents: the receiver's expectation loops are widened
// by one element, so every arriving message is smaller than expected and
// misses an element.
TEST(SpmdViolation, UnexpectedMessageContents) {
  std::vector<std::string> V = runMutated([](SpmdProgram &SP) {
    for (CommEvent &Ev : SP.Events)
      if (Ev.RecvLoops)
        widenInnermostLoops(*Ev.RecvLoops);
  });
  EXPECT_TRUE(anyContains(V, "message size mismatch"))
      << testing::PrintToString(V);
  EXPECT_TRUE(anyContains(V, "expected element missing from message"))
      << testing::PrintToString(V);
}

// The unbroken program stays clean under both engines (control).
TEST(SpmdViolation, IntactProgramIsValid) {
  Program P = stencilProgram();
  auto Compiled = compileProgram(P);
  ASSERT_TRUE(Compiled);
  for (EngineKind E : {EngineKind::Tree, EngineKind::Bytecode}) {
    RunResult RR = runBroken(Compiled->Program, E);
    EXPECT_TRUE(RR.Valid) << testing::PrintToString(RR.Violations);
  }
}

} // namespace
