//===- tests/pset_property_test.cpp - Randomized set-algebra properties --===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Property-based testing of the Presburger engine: random sets (boxes,
// slopes, strides, unions) are pushed through the algebra and every result
// is compared pointwise against a brute-force oracle over a bounding box.
// Each parameterized instance uses a different deterministic seed, so the
// suite sweeps a few hundred distinct random instances.
//
//===----------------------------------------------------------------------===//

#include "pset/Relation.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace dhpf;

namespace {

using Point = std::vector<int64_t>;

constexpr int64_t BoxLo = -6, BoxHi = 9;

/// Deterministic random generator of small conjuncts/sets over K dims.
class RandomSets {
public:
  RandomSets(unsigned Seed, unsigned K) : Rng(Seed), K(K) {}

  /// A random set: 1-3 conjuncts, each 1-4 constraints, possibly a stride.
  Relation set() {
    std::vector<std::string> Dims;
    for (unsigned I = 0; I != K; ++I)
      Dims.push_back("d" + std::to_string(I));
    Relation R(Space::set(Dims));
    unsigned NumConj = 1 + Rng() % 3;
    for (unsigned C = 0; C != NumConj; ++C) {
      Conjunct &Cj = R.addConjunct();
      // Bounding box so everything stays within the oracle range.
      for (unsigned D = 0; D != K; ++D) {
        int64_t Lo = rint(BoxLo, BoxHi), Hi = rint(Lo, BoxHi);
        Cj.addConstraint({{Cj.outCol(D), 1}}, -Lo, false);
        Cj.addConstraint({{Cj.outCol(D), -1}}, Hi, false);
      }
      unsigned Extra = Rng() % 3;
      for (unsigned X = 0; X != Extra; ++X) {
        // A random slope constraint a*d0 + b*d1 + c (>=|=) 0.
        std::vector<std::pair<unsigned, int64_t>> Terms;
        for (unsigned D = 0; D != K; ++D) {
          int64_t Coef = rint(-2, 2);
          if (Coef != 0)
            Terms.push_back({Cj.outCol(D), Coef});
        }
        if (Terms.empty())
          continue;
        Cj.addConstraint(Terms, rint(-4, 4), Rng() % 4 == 0);
      }
      if (Rng() % 3 == 0) {
        // A stride: exists e : d_k = s*e + r.
        unsigned D = Rng() % K;
        int64_t S = 2 + Rng() % 3, Rm = Rng() % S;
        unsigned E = Cj.addExistVar();
        Cj.addConstraint({{Cj.outCol(D), 1}, {E, -S}}, -Rm, true);
      }
    }
    return R;
  }

  int64_t rint(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(Rng() % (Hi - Lo + 1));
  }

private:
  std::mt19937 Rng;
  unsigned K;
};

std::set<Point> pointsOf(const Relation &S) {
  unsigned K = S.numOut();
  std::set<Point> Pts;
  Point P(K, BoxLo - 1);
  for (;;) {
    if (S.contains(P))
      Pts.insert(P);
    unsigned D = 0;
    while (D < K && ++P[D] > BoxHi + 1) {
      P[D] = BoxLo - 1;
      ++D;
    }
    if (D == K)
      break;
  }
  return Pts;
}

std::set<Point> setUnion(const std::set<Point> &A, const std::set<Point> &B) {
  std::set<Point> R = A;
  R.insert(B.begin(), B.end());
  return R;
}
std::set<Point> setInter(const std::set<Point> &A, const std::set<Point> &B) {
  std::set<Point> R;
  for (const Point &P : A)
    if (B.count(P))
      R.insert(P);
  return R;
}
std::set<Point> setMinus(const std::set<Point> &A, const std::set<Point> &B) {
  std::set<Point> R;
  for (const Point &P : A)
    if (!B.count(P))
      R.insert(P);
  return R;
}

class PsetAlgebra : public ::testing::TestWithParam<unsigned> {};

TEST_P(PsetAlgebra, BooleanOpsMatchOracle1D) {
  RandomSets Gen(GetParam() * 7919 + 1, 1);
  Relation A = Gen.set(), B = Gen.set();
  auto PA = pointsOf(A), PB = pointsOf(B);
  EXPECT_EQ(pointsOf(A.unionWith(B)), setUnion(PA, PB));
  EXPECT_EQ(pointsOf(A.intersect(B)), setInter(PA, PB));
  EXPECT_EQ(pointsOf(A.subtract(B)), setMinus(PA, PB));
  EXPECT_EQ(pointsOf(B.subtract(A)), setMinus(PB, PA));
}

TEST_P(PsetAlgebra, BooleanOpsMatchOracle2D) {
  RandomSets Gen(GetParam() * 104729 + 13, 2);
  Relation A = Gen.set(), B = Gen.set();
  auto PA = pointsOf(A), PB = pointsOf(B);
  EXPECT_EQ(pointsOf(A.unionWith(B)), setUnion(PA, PB));
  EXPECT_EQ(pointsOf(A.intersect(B)), setInter(PA, PB));
  EXPECT_EQ(pointsOf(A.subtract(B)), setMinus(PA, PB));
}

TEST_P(PsetAlgebra, SimplifyAndCoalescePreserveSemantics) {
  RandomSets Gen(GetParam() * 31337 + 5, 2);
  Relation A = Gen.set();
  auto PA = pointsOf(A);
  EXPECT_EQ(pointsOf(A.simplify()), PA);
  EXPECT_EQ(pointsOf(A.coalesce()), PA);
  EXPECT_EQ(pointsOf(A.normalizeExists()), PA);
}

TEST_P(PsetAlgebra, SubtractIdentities) {
  RandomSets Gen(GetParam() * 999331 + 7, 1);
  Relation A = Gen.set(), B = Gen.set();
  // (A - B) and (A ∩ B) partition A.
  Relation Diff = A.subtract(B), Inter = A.intersect(B);
  EXPECT_TRUE(Diff.unionWith(Inter).isEqualTo(A));
  EXPECT_TRUE(Diff.intersect(Inter).isEmpty());
  // A - A is empty; A - empty is A.
  EXPECT_TRUE(A.subtract(A).isEmpty());
  EXPECT_TRUE(A.subtract(Relation::empty(A.space())).isEqualTo(A));
}

TEST_P(PsetAlgebra, SubsetReflexivityAndHull) {
  RandomSets Gen(GetParam() * 271 + 3, 2);
  Relation A = Gen.set();
  EXPECT_TRUE(A.isSubsetOf(A));
  Relation H = A.simpleHull();
  EXPECT_TRUE(A.isSubsetOf(H)) << A.toString();
  // The hull of a convex-proven set equals the set.
  if (A.isConvexProven())
    EXPECT_TRUE(H.isSubsetOf(A));
}

TEST_P(PsetAlgebra, ProjectionSoundAndExact) {
  RandomSets Gen(GetParam() * 52361 + 11, 2);
  Relation A = Gen.set();
  Relation P0 = A.projectOntoDim(0);
  auto PA = pointsOf(A);
  std::set<Point> Expect;
  for (const Point &P : PA)
    Expect.insert({P[0]});
  // Oracle over dimension 0 only.
  std::set<Point> Got;
  for (int64_t V = BoxLo - 1; V <= BoxHi + 1; ++V)
    if (P0.contains({V}))
      Got.insert({V});
  EXPECT_EQ(Got, Expect);
}

TEST_P(PsetAlgebra, EmptinessAgreesWithOracle) {
  RandomSets Gen(GetParam() * 7 + 77, 2);
  Relation A = Gen.set().intersect(Gen.set());
  EXPECT_EQ(A.isEmpty(), pointsOf(A).empty());
}

TEST_P(PsetAlgebra, RoundTripThroughPrinter) {
  RandomSets Gen(GetParam() * 131 + 17, 2);
  Relation A = Gen.set();
  Relation B = parseRelation(A.toString());
  EXPECT_TRUE(A.isEqualTo(B)) << A.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsetAlgebra, ::testing::Range(0u, 25u));

//===----------------------------------------------------------------------===
// Relation-algebra properties on mappings.
//===----------------------------------------------------------------------===

class MapAlgebra : public ::testing::TestWithParam<unsigned> {};

/// A random affine-ish mapping [i] -> [j] with bounded domain.
Relation randomMap(unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto R = [&](int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(Rng() % (Hi - Lo + 1));
  };
  int64_t A = R(-2, 2), B = R(-3, 3), Lo = R(BoxLo, 0), Hi = R(0, BoxHi);
  Relation M(Space::map({"i"}, {"j"}));
  Conjunct &C = M.addConjunct();
  // j = A*i + B, Lo <= i <= Hi.
  C.addConstraint({{C.outCol(0), 1}, {C.inCol(0), -A}}, -B, true);
  C.addConstraint({{C.inCol(0), 1}}, -Lo, false);
  C.addConstraint({{C.inCol(0), -1}}, Hi, false);
  return M;
}

TEST_P(MapAlgebra, ComposeMatchesOracle) {
  Relation F = randomMap(GetParam() * 37 + 1);
  Relation G = randomMap(GetParam() * 41 + 2);
  Relation FG = F.composeWith(G);
  for (int64_t I = BoxLo; I <= BoxHi; ++I)
    for (int64_t K = 3 * BoxLo; K <= 3 * BoxHi; ++K) {
      bool Expect = false;
      for (int64_t J = 3 * BoxLo; J <= 3 * BoxHi && !Expect; ++J)
        Expect = F.contains({J}, {}, {I}) && G.contains({K}, {}, {J});
      EXPECT_EQ(FG.contains({K}, {}, {I}), Expect)
          << "i=" << I << " k=" << K;
    }
}

TEST_P(MapAlgebra, DomainRangeInverseConsistency) {
  Relation F = randomMap(GetParam() * 53 + 5);
  EXPECT_TRUE(F.domain().isEqualTo(F.inverse().range()));
  EXPECT_TRUE(F.range().isEqualTo(F.inverse().domain()));
  EXPECT_TRUE(F.inverse().inverse().isEqualTo(F));
}

TEST_P(MapAlgebra, ApplyEqualsRangeOfRestrict) {
  Relation F = randomMap(GetParam() * 61 + 9);
  Relation S = parseRelation("{ [i] : -2 <= i <= 4 }");
  EXPECT_TRUE(F.apply(S).isEqualTo(F.restrictDomain(S).range()));
}

TEST_P(MapAlgebra, AsSetPreservesPairs) {
  Relation F = randomMap(GetParam() * 71 + 3);
  Relation S = F.asSet();
  for (int64_t I = BoxLo; I <= BoxHi; ++I)
    for (int64_t J = 3 * BoxLo; J <= 3 * BoxHi; ++J)
      EXPECT_EQ(F.contains({J}, {}, {I}), S.contains({I, J}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapAlgebra, ::testing::Range(0u, 20u));

} // namespace
