//===- tests/pset_cache_test.cpp - Cache/fast-path differential tests ----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The performance layer (fingerprinted operation cache, bounding-box
// cheap rejects, fingerprint short-circuits) must be invisible except for
// speed. Two families of evidence:
//
//   1. Differential set algebra: random relations pushed through every
//      cached operation with the cache+fast paths enabled and disabled;
//      results must be semantically equal (verdicts computed uncached).
//   2. Compiler determinism: JACOBI / TOMCATV / GAUSS compiled
//      sequentially and with a multi-threaded analysis pool must print
//      byte-identical SPMD programs, and cached compiles must still pass
//      the apps' numeric checks.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"
#include "pset/Fingerprint.h"
#include "pset/OpCache.h"
#include "pset/Relation.h"

#include <gtest/gtest.h>

#include <random>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;

namespace {

/// RAII guard: forces the global cache on or off, restores on exit, and
/// clears stored entries on both edges so tests are order-independent.
class CacheSwitch {
public:
  explicit CacheSwitch(bool On) : Saved(pset::OpCache::global().enabled()) {
    pset::OpCache::global().clear();
    pset::OpCache::global().setEnabled(On);
  }
  ~CacheSwitch() {
    pset::OpCache::global().clear();
    pset::OpCache::global().setEnabled(Saved);
  }

private:
  bool Saved;
};

/// Deterministic random set generator (same shape as pset_property_test:
/// unions of small boxes with slope constraints and strides).
class RandomSets {
public:
  RandomSets(unsigned Seed, unsigned K) : Rng(Seed), K(K) {}

  Relation set() {
    std::vector<std::string> Dims;
    for (unsigned I = 0; I != K; ++I)
      Dims.push_back("d" + std::to_string(I));
    Relation R(Space::set(Dims));
    unsigned NumConj = 1 + Rng() % 3;
    for (unsigned C = 0; C != NumConj; ++C) {
      Conjunct &Cj = R.addConjunct();
      for (unsigned D = 0; D != K; ++D) {
        int64_t Lo = rint(-6, 9), Hi = rint(Lo, 9);
        Cj.addConstraint({{Cj.outCol(D), 1}}, -Lo, false);
        Cj.addConstraint({{Cj.outCol(D), -1}}, Hi, false);
      }
      unsigned Extra = Rng() % 3;
      for (unsigned X = 0; X != Extra; ++X) {
        std::vector<std::pair<unsigned, int64_t>> Terms;
        for (unsigned D = 0; D != K; ++D) {
          int64_t Coef = rint(-2, 2);
          if (Coef != 0)
            Terms.push_back({Cj.outCol(D), Coef});
        }
        if (Terms.empty())
          continue;
        Cj.addConstraint(Terms, rint(-4, 4), Rng() % 4 == 0);
      }
      if (Rng() % 3 == 0) {
        unsigned D = Rng() % K;
        int64_t S = 2 + Rng() % 3, Rm = Rng() % S;
        unsigned E = Cj.addExistVar();
        Cj.addConstraint({{Cj.outCol(D), 1}, {E, -S}}, -Rm, true);
      }
    }
    return R;
  }

  int64_t rint(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(Rng() % (Hi - Lo + 1));
  }

private:
  std::mt19937 Rng;
  unsigned K;
};

/// Semantic equality judged with the performance layer off, so the oracle
/// never depends on the machinery under test.
bool semanticallyEqual(const Relation &A, const Relation &B) {
  CacheSwitch Off(false);
  return A.isEqualTo(B);
}

//===----------------------------------------------------------------------===
// Fingerprint properties.
//===----------------------------------------------------------------------===

TEST(Fingerprint, RowOrderInsensitive) {
  Relation A = parseRelation("{ [i,j] : 0 <= i <= 9 and 1 <= j <= i }");
  Relation B(A.space());
  // Same constraints, inserted in a different order.
  Conjunct &C = B.addConjunct();
  C.addConstraint({{C.outCol(1), -1}, {C.outCol(0), 1}}, 0, false); // j <= i
  C.addConstraint({{C.outCol(1), 1}}, -1, false);                   // j >= 1
  C.addConstraint({{C.outCol(0), -1}}, 9, false);                   // i <= 9
  C.addConstraint({{C.outCol(0), 1}}, 0, false);                    // i >= 0
  EXPECT_EQ(pset::fingerprint(A), pset::fingerprint(B));
}

TEST(Fingerprint, ScaledConstraintsCollide) {
  // 2i <= 10 normalizes to i <= 5; the fingerprints must agree.
  Relation A = parseRelation("{ [i] : 0 <= i and 2*i <= 10 }");
  Relation B = parseRelation("{ [i] : 0 <= i and i <= 5 }");
  EXPECT_EQ(pset::fingerprint(A), pset::fingerprint(B));
}

TEST(Fingerprint, DistinguishesConstants) {
  Relation A = parseRelation("{ [i] : 0 <= i <= 5 }");
  Relation B = parseRelation("{ [i] : 0 <= i <= 6 }");
  EXPECT_NE(pset::fingerprint(A), pset::fingerprint(B));
}

TEST(Fingerprint, DistinguishesSpaceNames) {
  // Identical constraint matrices over differently-named spaces must not
  // collide: cached results carry their names into code generation.
  Relation A = parseRelation("{ [i] : 0 <= i <= 5 }");
  Relation B = parseRelation("{ [j] : 0 <= j <= 5 }");
  EXPECT_NE(pset::fingerprint(A), pset::fingerprint(B));
}

TEST(Fingerprint, BBoxProvesEmptiness) {
  Relation A = parseRelation("{ [i] : 4 <= i and i <= 2 }");
  ASSERT_EQ(A.conjuncts().size(), 1u);
  EXPECT_TRUE(pset::bboxOf(A.conjuncts()[0]).ProvenEmpty);
  Relation B = parseRelation("{ [i] : 2*i = 5 }");
  ASSERT_EQ(B.conjuncts().size(), 1u);
  EXPECT_TRUE(pset::bboxOf(B.conjuncts()[0]).ProvenEmpty);
}

TEST(Fingerprint, BBoxDisjointness) {
  Relation A = parseRelation("{ [i] : 0 <= i <= 3 }");
  Relation B = parseRelation("{ [i] : 5 <= i <= 9 }");
  Relation C = parseRelation("{ [i] : 2 <= i <= 7 }");
  pset::BBox BA = pset::bboxOf(A.conjuncts()[0]);
  pset::BBox BB = pset::bboxOf(B.conjuncts()[0]);
  pset::BBox BC = pset::bboxOf(C.conjuncts()[0]);
  EXPECT_TRUE(pset::bboxDisjoint(BA, BB));
  EXPECT_FALSE(pset::bboxDisjoint(BA, BC));
  EXPECT_FALSE(pset::bboxDisjoint(BB, BC));
}

//===----------------------------------------------------------------------===
// Differential algebra: cached vs. uncached.
//===----------------------------------------------------------------------===

class CacheDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheDifferential, SetOpsMatchUncached2D) {
  RandomSets GenOn(GetParam() * 7919 + 101, 2);
  RandomSets GenOff(GetParam() * 7919 + 101, 2);

  Relation InterOn, DiffOn, SimpOn, CoalOn;
  bool EmptyOn, SubsetOn, EqualOn;
  {
    CacheSwitch On(true);
    Relation A = GenOn.set(), B = GenOn.set();
    InterOn = A.intersect(B);
    DiffOn = A.subtract(B);
    SimpOn = A.simplify();
    CoalOn = A.coalesce();
    EmptyOn = InterOn.isEmpty();
    SubsetOn = A.isSubsetOf(B);
    EqualOn = A.isEqualTo(B);
    // Replaying the same operations must hit the cache and return
    // structurally identical relations.
    EXPECT_EQ(A.intersect(B).toString(), InterOn.toString());
    EXPECT_EQ(A.subtract(B).toString(), DiffOn.toString());
  }

  CacheSwitch Off(false);
  Relation A = GenOff.set(), B = GenOff.set();
  EXPECT_TRUE(A.intersect(B).isEqualTo(InterOn));
  EXPECT_TRUE(A.subtract(B).isEqualTo(DiffOn));
  EXPECT_TRUE(A.simplify().isEqualTo(SimpOn));
  EXPECT_TRUE(A.coalesce().isEqualTo(CoalOn));
  EXPECT_EQ(A.intersect(B).isEmpty(), EmptyOn);
  EXPECT_EQ(A.isSubsetOf(B), SubsetOn);
  EXPECT_EQ(A.isEqualTo(B), EqualOn);
}

TEST_P(CacheDifferential, ComposeMatchesUncached) {
  auto MakeMap = [](unsigned Seed) {
    std::mt19937 Rng(Seed);
    auto R = [&](int64_t Lo, int64_t Hi) {
      return Lo + static_cast<int64_t>(Rng() % (Hi - Lo + 1));
    };
    int64_t A = R(-2, 2), B = R(-3, 3), Lo = R(-6, 0), Hi = R(0, 9);
    Relation M(Space::map({"i"}, {"j"}));
    Conjunct &C = M.addConjunct();
    C.addConstraint({{C.outCol(0), 1}, {C.inCol(0), -A}}, -B, true);
    C.addConstraint({{C.inCol(0), 1}}, -Lo, false);
    C.addConstraint({{C.inCol(0), -1}}, Hi, false);
    return M;
  };
  Relation F = MakeMap(GetParam() * 37 + 1);
  Relation G = MakeMap(GetParam() * 41 + 2);
  Relation On, Off;
  {
    CacheSwitch S(true);
    On = F.composeWith(G);
  }
  {
    CacheSwitch S(false);
    Off = F.composeWith(G);
  }
  EXPECT_TRUE(semanticallyEqual(On, Off));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheDifferential, ::testing::Range(0u, 25u));

//===----------------------------------------------------------------------===
// Cache mechanics: counters, LRU eviction, the enable switch.
//===----------------------------------------------------------------------===

TEST(OpCacheMechanics, HitsAndMisses) {
  CacheSwitch On(true); // cleared on entry: counts below are exact
  pset::OpCache &C = pset::OpCache::global();
  Relation A = parseRelation("{ [i,j] : 0 <= i <= 20 and 0 <= j <= i }");
  Relation B = parseRelation("{ [i,j] : 5 <= i <= 30 and 2 <= j <= 25 }");
  pset::CacheStats S0 = C.stats();
  Relation R1 = A.intersect(B);
  pset::CacheStats D1 = C.stats() - S0;
  // Cold cache: the first intersect can hit nothing, and records exactly
  // one top-level miss (its Compute body uses only fast paths, never a
  // second cached op on identical fingerprints).
  EXPECT_EQ(D1.Hits, 0u);
  EXPECT_EQ(D1.Misses, 1u);
  // Replay: one lookup, one hit, zero misses — the hit short-circuits
  // every internal operation.
  pset::CacheStats S1 = C.stats();
  Relation R2 = A.intersect(B);
  pset::CacheStats D2 = C.stats() - S1;
  EXPECT_EQ(D2.Hits, 1u);
  EXPECT_EQ(D2.Misses, 0u);
  EXPECT_TRUE(R1.isEqualTo(R2));
}

TEST(OpCacheMechanics, ExactCountersDirectApi) {
  // A private instance: no global state, every count pinned exactly.
  pset::OpCache C(1024);
  Relation R = parseRelation("{ [i] : 0 <= i <= 3 }");
  Relation Out;
  EXPECT_FALSE(C.lookup(pset::Op::Simplify, 1, 2, Out)); // miss 1
  C.insert(pset::Op::Simplify, 1, 2, R);
  EXPECT_TRUE(C.lookup(pset::Op::Simplify, 1, 2, Out)); // hit 1
  EXPECT_TRUE(C.lookup(pset::Op::Simplify, 1, 2, Out)); // hit 2
  EXPECT_FALSE(C.lookup(pset::Op::Coalesce, 1, 2, Out)); // op in key: miss 2
  EXPECT_FALSE(C.lookup(pset::Op::Simplify, 1, 3, Out)); // rhs in key: miss 3
  bool BV = false;
  EXPECT_FALSE(C.lookupBool(pset::Op::IsEmpty, 7, BV)); // miss 4
  C.insertBool(pset::Op::IsEmpty, 7, true);
  EXPECT_TRUE(C.lookupBool(pset::Op::IsEmpty, 7, BV)); // hit 3
  EXPECT_TRUE(BV);
  pset::CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 4u);
  EXPECT_EQ(S.Evictions, 0u);
  // Per-shard traffic must sum exactly to the global counters, and the
  // two resident entries must be accounted for.
  uint64_t H = 0, M = 0, E = 0, N = 0;
  for (const pset::OpCache::ShardStats &PS : C.perShardStats()) {
    H += PS.Hits;
    M += PS.Misses;
    E += PS.Evictions;
    N += PS.Entries;
  }
  EXPECT_EQ(H, 3u);
  EXPECT_EQ(M, 4u);
  EXPECT_EQ(E, 0u);
  EXPECT_EQ(N, 2u);
}

TEST(OpCacheMechanics, ClearKeepsCounters) {
  pset::OpCache C(1024);
  Relation R = parseRelation("{ [i] : 0 <= i <= 3 }");
  Relation Out;
  C.insert(pset::Op::Simplify, 1, 2, R);
  EXPECT_TRUE(C.lookup(pset::Op::Simplify, 1, 2, Out));
  C.clear();
  // Entries gone, counters cumulative — exactly one post-clear miss.
  EXPECT_FALSE(C.lookup(pset::Op::Simplify, 1, 2, Out));
  pset::CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  uint64_t N = 0;
  for (const pset::OpCache::ShardStats &PS : C.perShardStats())
    N += PS.Entries;
  EXPECT_EQ(N, 0u);
}

TEST(OpCacheMechanics, DisabledCacheRecordsNothing) {
  CacheSwitch Off(false);
  pset::OpCache &C = pset::OpCache::global();
  Relation A = parseRelation("{ [i] : 0 <= i <= 20 }");
  pset::CacheStats S0 = C.stats();
  (void)A.simplify();
  (void)A.simplify();
  pset::CacheStats D = C.stats() - S0;
  EXPECT_EQ(D.Hits, 0u);
  EXPECT_EQ(D.Misses, 0u);
}

TEST(OpCacheMechanics, LRUEvicts) {
  pset::OpCache Small(16); // 16 entries over 16 shards: 1 per shard
  Relation R = parseRelation("{ [i] : 0 <= i <= 1 }");
  for (uint64_t K = 0; K != 64; ++K)
    Small.insert(pset::Op::Simplify, K * 0x9e3779b97f4a7c15ULL, 0, R);
  EXPECT_GT(Small.stats().Evictions, 0u);
}

//===----------------------------------------------------------------------===
// Compiler determinism: sequential vs. parallel analysis.
//===----------------------------------------------------------------------===

struct CompileResult {
  std::string Printed;
  unsigned Events;
  unsigned Splits;
};

CompileResult compileApp(const AppInstance &App, bool Parallel,
                         unsigned Threads) {
  CompilerOptions Opts;
  Opts.ParallelAnalysis = Parallel;
  Opts.AnalysisThreads = Threads;
  auto Out = compileProgram(*App.Prog, Opts);
  return {Out->Program.print(), Out->NumCommEvents, Out->NumSplitNests};
}

class ParallelDeterminism : public ::testing::TestWithParam<const char *> {
protected:
  static AppInstance makeApp(const std::string &Name) {
    if (Name == "jacobi")
      return makeJacobi(12, 2);
    if (Name == "tomcatv")
      return makeTomcatv(10, 2);
    return makeGauss(10);
  }
};

TEST_P(ParallelDeterminism, PoolMatchesSequentialCached) {
  CacheSwitch On(true);
  AppInstance App = makeApp(GetParam());
  CompileResult Seq = compileApp(App, false, 0);
  for (unsigned Threads : {2u, 4u, 7u}) {
    CompileResult Par = compileApp(App, true, Threads);
    EXPECT_EQ(Par.Printed, Seq.Printed) << "threads=" << Threads;
    EXPECT_EQ(Par.Events, Seq.Events);
    EXPECT_EQ(Par.Splits, Seq.Splits);
  }
}

TEST_P(ParallelDeterminism, PoolMatchesSequentialUncached) {
  CacheSwitch Off(false);
  AppInstance App = makeApp(GetParam());
  CompileResult Seq = compileApp(App, false, 0);
  CompileResult Par = compileApp(App, true, 4);
  EXPECT_EQ(Par.Printed, Seq.Printed);
}

INSTANTIATE_TEST_SUITE_P(Apps, ParallelDeterminism,
                         ::testing::Values("jacobi", "tomcatv", "gauss"));

/// The cached+parallel compile must still produce numerically correct
/// programs (the fast paths may restructure sets, so compare semantics by
/// running the program, not by printing it).
TEST(CacheNumerics, CachedParallelJacobiValidates) {
  CacheSwitch On(true);
  AppInstance App = makeJacobi(12, 2);
  CompilerOptions Opts;
  Opts.ParallelAnalysis = true;
  Opts.AnalysisThreads = 4;
  auto Out = compileProgram(*App.Prog, Opts);
  spmd::RunConfig RC;
  RC.ProcExtents = {{App.ProcArrayName, {2, 2}}};
  spmd::Interpreter I(Out->Program, RC);
  App.Setup(I);
  spmd::RunResult RR = I.run();
  ASSERT_TRUE(RR.Valid);
  std::string Err;
  EXPECT_TRUE(App.Check(I, Err)) << Err;
}

} // namespace
