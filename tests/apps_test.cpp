//===- tests/apps_test.cpp - Benchmark applications end to end -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Compiles each benchmark application and executes it on several processor
// configurations, validating the numerical results against the serial
// references and the interpreter's communication checks.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::spmd;

namespace {

void runApp(AppInstance App,
            const std::vector<std::vector<int64_t>> &ProcConfigs,
            CompilerOptions Opts = {}) {
  auto Compiled = compileProgram(*App.Prog, Opts);
  for (const std::vector<int64_t> &Shape : ProcConfigs) {
    RunConfig RC;
    RC.ProcExtents = {{App.ProcArrayName, Shape}};
    Interpreter I(Compiled->Program, RC);
    App.Setup(I);
    RunResult RR = I.run();
    std::string Cfg;
    for (int64_t S : Shape)
      Cfg += std::to_string(S) + "x";
    for (const std::string &V : RR.Violations)
      ADD_FAILURE() << App.Name << " [" << Cfg << "]: " << V;
    EXPECT_TRUE(RR.Valid) << App.Name << " " << Cfg;
    if (App.Check) {
      std::string Err;
      EXPECT_TRUE(App.Check(I, Err)) << App.Name << " [" << Cfg << "]: "
                                     << Err;
    }
  }
}

TEST(Apps, JacobiSmall) {
  runApp(makeJacobi(16, 3), {{2, 1}, {2, 2}, {2, 4}});
}

TEST(Apps, JacobiNoOptimizations) {
  CompilerOptions Opts;
  Opts.LoopSplitting = false;
  Opts.Coalescing = false;
  Opts.InPlaceAnalysis = false;
  runApp(makeJacobi(16, 2), {{2, 2}}, Opts);
}

TEST(Apps, TomcatvSmall) {
  runApp(makeTomcatv(18, 3), {{1}, {2}, {4}});
}

TEST(Apps, ErlebacherSmall) {
  runApp(makeErlebacher(10, 2), {{1}, {2}, {4}});
}

TEST(Apps, GaussSmall) {
  runApp(makeGauss(12), {{1, 1}, {2, 2}, {2, 3}});
}

TEST(Apps, SpLikeSmallRuns) {
  // A handful of procedures end-to-end: validity only (no serial check).
  runApp(makeSpLike(5, /*SymbolicProcs=*/true, /*N=*/8), {{2, 2}});
}

TEST(Apps, SpLikeFixedCompiles) {
  AppInstance App = makeSpLike(10, /*SymbolicProcs=*/false, /*N=*/8);
  auto Compiled = compileProgram(*App.Prog);
  EXPECT_GT(Compiled->NumCommEvents, 0u);
  EXPECT_GT(Compiled->Timers.seconds(phase::Total), 0.0);
}

} // namespace
