//===- tests/spmd_print_test.cpp - Generated-program structure tests -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Structural checks on compiled SPMD programs: schedules (Figure 4(b)
// ordering under loop splitting; send-before-recv otherwise), the printed
// node program, VP loop wrapping for cyclic distributions, and the
// generated-code optimizer's effect.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::spmd;

namespace {

/// Collects the item kinds of the first sequential level under a node.
void collectKinds(const SpmdNode &N, std::vector<SpmdNode::Kind> &Out) {
  for (const auto &C : N.Children) {
    Out.push_back(C->K);
    if (C->K == SpmdNode::Kind::Seq || C->K == SpmdNode::Kind::TimeLoop)
      collectKinds(*C, Out);
  }
}

TEST(SpmdStructure, SplitScheduleFollowsFigure4b) {
  // Stencil with splitting: Send must precede the local compute, Recv must
  // follow it, and the non-local compute comes last.
  AppInstance App = makeJacobi(16, 1);
  auto C = compileProgram(*App.Prog);
  std::vector<SpmdNode::Kind> Kinds;
  collectKinds(*C->Program.Root, Kinds);
  std::vector<int> SendAt, RecvAt, ComputeAt;
  for (unsigned I = 0; I != Kinds.size(); ++I) {
    if (Kinds[I] == SpmdNode::Kind::Send)
      SendAt.push_back(I);
    if (Kinds[I] == SpmdNode::Kind::Recv)
      RecvAt.push_back(I);
    if (Kinds[I] == SpmdNode::Kind::Compute)
      ComputeAt.push_back(I);
  }
  ASSERT_FALSE(SendAt.empty());
  ASSERT_FALSE(RecvAt.empty());
  ASSERT_GE(ComputeAt.size(), 2u); // local section + non-local section
  EXPECT_LT(SendAt.front(), ComputeAt.front()); // send before local
  EXPECT_GT(RecvAt.front(), ComputeAt.front()); // recv after local
  EXPECT_GT(ComputeAt.back(), RecvAt.front());  // non-local after recv
}

TEST(SpmdStructure, NoSplitScheduleIsSendRecvCompute) {
  AppInstance App = makeJacobi(16, 1);
  CompilerOptions O;
  O.LoopSplitting = false;
  auto C = compileProgram(*App.Prog, O);
  std::vector<SpmdNode::Kind> Kinds;
  collectKinds(*C->Program.Root, Kinds);
  std::vector<SpmdNode::Kind> Filtered;
  for (SpmdNode::Kind K : Kinds)
    if (K == SpmdNode::Kind::Send || K == SpmdNode::Kind::Recv ||
        K == SpmdNode::Kind::Compute)
      Filtered.push_back(K);
  // Per nest: Send*, Recv*, Compute. The jacobi time step has two nests
  // plus a reduction; just check the first three items' pattern.
  ASSERT_GE(Filtered.size(), 3u);
  EXPECT_EQ(Filtered[0], SpmdNode::Kind::Send);
  EXPECT_EQ(Filtered[1], SpmdNode::Kind::Recv);
  EXPECT_EQ(Filtered[2], SpmdNode::Kind::Compute);
}

TEST(SpmdStructure, PrintedProgramMentionsEverything) {
  AppInstance App = makeJacobi(12, 1);
  auto C = compileProgram(*App.Prog);
  std::string Text = C->Program.print();
  EXPECT_NE(Text.find("SPMD node program"), std::string::npos);
  EXPECT_NE(Text.find("pack & send U"), std::string::npos);
  EXPECT_NE(Text.find("recv & unpack U"), std::string::npos);
  EXPECT_NE(Text.find("allreduce(max) of resid"), std::string::npos);
  EXPECT_NE(Text.find("do t = 1, 1"), std::string::npos);
  EXPECT_NE(Text.find("enddo"), std::string::npos);
}

TEST(SpmdStructure, CyclicSymbolicGetsStridedVPLoops) {
  // Gauss on (CYCLIC,CYCLIC): compute loops must be wrapped in VP loops
  // whose step is the (symbolic) processor extent.
  AppInstance App = makeGauss(16);
  auto C = compileProgram(*App.Prog);
  std::string Text = C->Program.print();
  // The VP loop over mv0 advances by the symbolic extent P1.
  EXPECT_NE(Text.find("do mv0 = "), std::string::npos) << Text;
  EXPECT_NE(Text.find(", P1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("do mv1 = "), std::string::npos);
}

TEST(SpmdStructure, OptimizerRemovesNodes) {
  AppInstance App = makeJacobi(16, 1);
  auto C = compileProgram(*App.Prog);
  // The cleanup pass should find at least something across a whole
  // compilation (constant-folded guards, empty branches).
  EXPECT_GE(C->NodesRemovedByOpt, 0u);
  // And compile stats exist for the Table 1 rows that must be non-zero.
  EXPECT_GT(C->Timers.seconds(phase::Total), 0.0);
  EXPECT_GT(C->Timers.seconds(phase::MMCodegen), 0.0);
  EXPECT_GT(C->Timers.seconds(phase::CommEquations), 0.0);
}

TEST(SpmdStructure, PipelinePlacementCreatesInnerTimeLoop) {
  AppInstance App = makeErlebacher(8, 1);
  auto C = compileProgram(*App.Prog);
  std::string Text = C->Program.print();
  // The ztri nest's communication lives inside the J0 placement loop.
  EXPECT_NE(Text.find("do J0 = "), std::string::npos) << Text;
}

} // namespace
