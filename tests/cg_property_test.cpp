//===- tests/cg_property_test.cpp - Randomized code-generation sweeps ----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Property: for random sets (including unions and strides), executing the
// generated loop nest visits exactly the set's points, in lexicographic
// order, with no duplicates — both for the shared-nest Codegen and for the
// per-conjunct variant (modulo duplicates across overlapping conjuncts,
// which that variant permits by contract).
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGen.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace dhpf;
using namespace dhpf::cg;

namespace {

using Point = std::vector<int64_t>;

constexpr int64_t Lo = -5, Hi = 8;

Relation randomSet(unsigned Seed, unsigned K) {
  std::mt19937 Rng(Seed);
  auto R = [&](int64_t A, int64_t B) {
    return A + static_cast<int64_t>(Rng() % (B - A + 1));
  };
  std::vector<std::string> Dims;
  for (unsigned I = 0; I != K; ++I)
    Dims.push_back("x" + std::to_string(I));
  Relation Rel(Space::set(Dims));
  unsigned NumConj = 1 + Rng() % 3;
  for (unsigned CI = 0; CI != NumConj; ++CI) {
    Conjunct &C = Rel.addConjunct();
    for (unsigned D = 0; D != K; ++D) {
      int64_t L = R(Lo, Hi), H = R(L, Hi);
      C.addConstraint({{C.outCol(D), 1}}, -L, false);
      C.addConstraint({{C.outCol(D), -1}}, H, false);
    }
    if (Rng() % 3 == 0 && K >= 2) {
      // Diagonal constraint x0 <= x1 + c.
      C.addConstraint({{C.outCol(0), -1}, {C.outCol(1), 1}}, R(-2, 3),
                      false);
    }
    if (Rng() % 3 == 0) {
      unsigned D = Rng() % K;
      int64_t S = 2 + Rng() % 3;
      unsigned E = C.addExistVar();
      C.addConstraint({{C.outCol(D), 1}, {E, -S}}, -R(0, S - 1), true);
    }
  }
  return Rel;
}

std::set<Point> oracle(const Relation &S) {
  unsigned K = S.numOut();
  std::set<Point> Pts;
  Point P(K, Lo - 1);
  for (;;) {
    if (S.contains(P))
      Pts.insert(P);
    unsigned D = 0;
    while (D < K && ++P[D] > Hi + 1) {
      P[D] = Lo - 1;
      ++D;
    }
    if (D == K)
      break;
  }
  return Pts;
}

std::vector<Point> runNest(const AstPtr &Tree, VarTable &Vars, unsigned K) {
  std::vector<int64_t> Env(Vars.size(), 0);
  std::vector<unsigned> Slots;
  for (unsigned I = 0; I != K; ++I)
    Slots.push_back(Vars.lookup("x" + std::to_string(I)));
  std::vector<Point> Visits;
  execute(*Tree, Env, [&](int, const std::vector<int64_t> &E) {
    Point P;
    for (unsigned S : Slots)
      P.push_back(E[S]);
    Visits.push_back(P);
  });
  return Visits;
}

class CodegenSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodegenSweep, SharedNest1D) {
  Relation S = randomSet(GetParam() * 61 + 2, 1);
  VarTable Vars;
  CodeGen CG(Vars);
  auto Visits = runNest(CG.codegenSet(S, {"x0"}), Vars, 1);
  for (unsigned I = 1; I < Visits.size(); ++I)
    EXPECT_LT(Visits[I - 1], Visits[I]);
  EXPECT_EQ(std::set<Point>(Visits.begin(), Visits.end()), oracle(S))
      << S.toString();
  EXPECT_EQ(Visits.size(), oracle(S).size()) << "duplicate visits";
}

TEST_P(CodegenSweep, SharedNest2D) {
  Relation S = randomSet(GetParam() * 97 + 5, 2);
  VarTable Vars;
  CodeGen CG(Vars);
  auto Visits = runNest(CG.codegenSet(S, {"x0", "x1"}), Vars, 2);
  for (unsigned I = 1; I < Visits.size(); ++I)
    EXPECT_LT(Visits[I - 1], Visits[I]);
  EXPECT_EQ(std::set<Point>(Visits.begin(), Visits.end()), oracle(S))
      << S.toString();
  EXPECT_EQ(Visits.size(), oracle(S).size()) << "duplicate visits";
}

TEST_P(CodegenSweep, SharedNest3D) {
  Relation S = randomSet(GetParam() * 193 + 7, 3);
  VarTable Vars;
  CodeGen CG(Vars);
  auto Visits = runNest(CG.codegenSet(S, {"x0", "x1", "x2"}), Vars, 3);
  EXPECT_EQ(std::set<Point>(Visits.begin(), Visits.end()), oracle(S))
      << S.toString();
}

TEST_P(CodegenSweep, PerConjunctCoversExactlyTheUnion) {
  Relation S = randomSet(GetParam() * 37 + 11, 2);
  VarTable Vars;
  CodeGen CG(Vars);
  auto Visits =
      runNest(CG.codegenSetPerConjunct(S, {"x0", "x1"}), Vars, 2);
  // May visit points multiple times (overlapping conjuncts) but the set of
  // visited points must be exactly the union.
  EXPECT_EQ(std::set<Point>(Visits.begin(), Visits.end()), oracle(S))
      << S.toString();
}

TEST_P(CodegenSweep, OptimizeAstPreservesSemantics) {
  Relation S = randomSet(GetParam() * 149 + 3, 2);
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegenSet(S, {"x0", "x1"});
  AstPtr Opt = Tree; // shared structure; re-generate for an honest copy
  {
    VarTable V2 = Vars;
    (void)V2;
  }
  optimizeAst(Opt);
  auto Visits = runNest(Opt, Vars, 2);
  EXPECT_EQ(std::set<Point>(Visits.begin(), Visits.end()), oracle(S));
}

TEST_P(CodegenSweep, TwoStatementInterleavingInvariant) {
  Relation A = randomSet(GetParam() * 211 + 1, 2);
  Relation B = randomSet(GetParam() * 223 + 9, 2);
  VarTable Vars;
  CodeGen CG(Vars);
  AstPtr Tree = CG.codegen({{1, "A", A}, {2, "B", B}}, {"x0", "x1"});
  std::vector<int64_t> Env(Vars.size(), 0);
  std::vector<unsigned> Slots = {Vars.lookup("x0"), Vars.lookup("x1")};
  std::vector<std::pair<Point, int>> Keyed;
  execute(*Tree, Env, [&](int Id, const std::vector<int64_t> &E) {
    Keyed.push_back({{E[Slots[0]], E[Slots[1]]}, Id});
  });
  // Lexicographic over (tuple, statement id): the Codegen contract.
  EXPECT_TRUE(std::is_sorted(Keyed.begin(), Keyed.end()));
  std::set<Point> GotA, GotB;
  for (auto &[P, Id] : Keyed)
    (Id == 1 ? GotA : GotB).insert(P);
  EXPECT_EQ(GotA, oracle(A)) << A.toString();
  EXPECT_EQ(GotB, oracle(B)) << B.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenSweep, ::testing::Range(0u, 20u));

} // namespace
