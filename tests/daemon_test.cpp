//===- tests/daemon_test.cpp - Compiler daemon end-to-end tests ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// An in-process rt::Daemon on a temp socket, driven through the same
// client helpers `dhpfc --server=` uses. The contracts:
//
//   - a daemon compile returns byte-identical .spmd text to a local
//     service compile of the same request (the daemon adds no semantics);
//   - N concurrent clients posting the same request fingerprint collapse
//     to ONE compile (CompilesStarted +1, Requests +N);
//   - a daemon-side run renders the same wall-clock-free summary as a
//     local run of the same program;
//   - a malformed request draws an error reply and leaves both the
//     connection and the daemon serving;
//   - stop() persists the OpCache and a new daemon starts warm from it;
//   - KernelCache::sweepStale reclaims tmp files of dead writers only.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/CompilerService.h"
#include "hpf/HpfPrinter.h"
#include "pset/OpCache.h"
#include "rt/Daemon.h"
#include "spmd/KernelCache.h"
#include "spmd/Serialize.h"
#include "support/Diag.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::rt;

namespace {

std::string tempPath(const std::string &Stem) {
  return "/tmp/" + Stem + "." + std::to_string(::getpid());
}

/// An in-process daemon for one test, torn down on scope exit.
class ScopedDaemon {
public:
  explicit ScopedDaemon(const std::string &CacheFile = "") {
    Opts.SocketPath = tempPath("dhpf_daemon_test.sock");
    Opts.CacheFile = CacheFile;
    Opts.Quiet = true;
    D.reset(new Daemon(Opts));
    D->start();
  }
  ~ScopedDaemon() { D->stop(); }

  Daemon &daemon() { return *D; }
  std::unique_ptr<net::MsgStream> connect() {
    return net::connectClient(Opts.SocketPath);
  }

private:
  DaemonOptions Opts;
  std::unique_ptr<Daemon> D;
};

std::string appSource(apps::AppInstance (*Make)(int64_t, int64_t), int64_t N,
                      int64_t Steps) {
  return hpf::printHpfProgram(*Make(N, Steps).Prog);
}

TEST(DaemonCompile, ByteIdenticalToLocalService) {
  ScopedDaemon SD;
  std::string Source = appSource(apps::makeJacobi, 14, 2);
  CompilerOptions CO;

  CompileRequest R;
  R.Name = "<daemon_test>";
  R.Source = Source;
  R.Opts = CO;
  R.BypassArtifactCache = true;
  std::shared_ptr<const CompileArtifact> Local =
      CompilerService::global().compile(R);
  ASSERT_TRUE(Local->Ok) << Local->DiagText;

  std::unique_ptr<net::MsgStream> S = SD.connect();
  DaemonCompileResult Remote =
      daemonCompile(*S, "<daemon_test>", Source, CO, /*Fresh=*/true);
  ASSERT_TRUE(Remote.Ok) << Remote.DiagText;
  EXPECT_EQ(Remote.Spmd, Local->Spmd);
  EXPECT_EQ(Remote.ProgName, Local->ProgName);
  EXPECT_EQ(Remote.Fingerprint, Local->Fingerprint);
}

TEST(DaemonCompile, ConcurrentSameFingerprintDedupsToOneCompile) {
  ScopedDaemon SD;
  // A source no other test compiles, so neither the artifact cache nor an
  // in-flight entry predates this test.
  std::string Source = appSource(apps::makeJacobi, 17, 3);
  CompilerOptions CO;
  ServiceStats Before = CompilerService::global().stats();

  const unsigned N = 8;
  std::vector<std::thread> Ts;
  std::vector<std::string> Spmd(N);
  std::vector<std::string> Errs(N);
  for (unsigned I = 0; I != N; ++I)
    Ts.emplace_back([&, I] {
      try {
        std::unique_ptr<net::MsgStream> S = SD.connect();
        DaemonCompileResult R = daemonCompile(*S, "<dedup>", Source, CO);
        if (!R.Ok)
          Errs[I] = "compile failed: " + R.DiagText;
        Spmd[I] = R.Spmd;
      } catch (const std::exception &E) {
        Errs[I] = E.what();
      }
    });
  for (std::thread &T : Ts)
    T.join();
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Errs[I], "") << "client " << I;

  ServiceStats After = CompilerService::global().stats();
  EXPECT_EQ(After.Requests - Before.Requests, N);
  // All N clients were served by exactly one compiler run; the other N-1
  // either joined it in flight or replayed the finished artifact.
  EXPECT_EQ(After.CompilesStarted - Before.CompilesStarted, 1u);
  EXPECT_EQ(After.DedupedInFlight - Before.DedupedInFlight +
                (After.ArtifactHits - Before.ArtifactHits),
            N - 1);
  for (unsigned I = 1; I != N; ++I)
    EXPECT_EQ(Spmd[I], Spmd[0]) << "client " << I;
}

TEST(DaemonRun, SummaryMatchesLocalRun) {
  ScopedDaemon SD;
  std::string Source = appSource(apps::makeJacobi, 12, 2);
  std::unique_ptr<net::MsgStream> S = SD.connect();
  DaemonCompileResult C = daemonCompile(*S, "<run>", Source, CompilerOptions());
  ASSERT_TRUE(C.Ok) << C.DiagText;

  SessionOptions SO;
  SO.NumProcs = 4;
  DaemonRunResult Remote = daemonRun(*S, C.Spmd, SO, /*Check=*/true);
  ASSERT_TRUE(Remote.Ok) << Remote.Error;

  DiagnosticEngine Diags;
  Expected<std::unique_ptr<spmd::SpmdProgram>> Parsed =
      spmd::parseSpmdProgram(C.Spmd, Diags, "<run>");
  ASSERT_TRUE(bool(Parsed)) << Diags.str();
  std::unique_ptr<spmd::SpmdProgram> SP = std::move(Parsed).take();
  std::string Local, Err;
  ASSERT_TRUE(runForSummary(*SP, SO, /*Check=*/true, Local, Err)) << Err;

  // Wall-clock-free summaries: equal strings <=> bit-identical runs.
  EXPECT_EQ(Remote.Summary, Local);
  EXPECT_NE(Remote.Summary.find("valid 1\n"), std::string::npos)
      << Remote.Summary;
}

TEST(DaemonFault, MalformedRequestKeepsDaemonServing) {
  ScopedDaemon SD;
  std::unique_ptr<net::MsgStream> S = SD.connect();
  // A compile request with no source blob: the daemon must reply with an
  // error frame, not drop the connection or die.
  S->send(MsgCompileReq, "kv name broken\n");
  uint64_t Tag = 0;
  std::string Payload;
  ASSERT_TRUE(S->recv(Tag, Payload));
  EXPECT_EQ(Tag, uint64_t(MsgErrResp));
  EXPECT_NE(Payload.find("source"), std::string::npos) << Payload;
  // Same connection still serves requests...
  daemonPing(*S);
  // ...and a real compile still works on a fresh connection.
  std::unique_ptr<net::MsgStream> S2 = SD.connect();
  DaemonCompileResult R = daemonCompile(
      *S2, "<after>", appSource(apps::makeJacobi, 10, 1), CompilerOptions());
  EXPECT_TRUE(R.Ok) << R.DiagText;
}

TEST(DaemonPersist, ColdDaemonStartsWarmFromSavedCache) {
  std::string CacheFile = tempPath("dhpf_daemon_test.cache");
  {
    ScopedDaemon SD(CacheFile);
    std::unique_ptr<net::MsgStream> S = SD.connect();
    DaemonCompileResult R =
        daemonCompile(*S, "<persist>", appSource(apps::makeJacobi, 13, 2),
                      CompilerOptions(), /*Fresh=*/true);
    ASSERT_TRUE(R.Ok) << R.DiagText;
    // ~ScopedDaemon -> stop() -> cache saved.
  }
  ASSERT_GT(pset::OpCache::global().entryCount(), 0u);
  pset::OpCache::global().clear();
  {
    ScopedDaemon SD(CacheFile);
    EXPECT_GT(pset::OpCache::global().entryCount(), 0u)
        << "daemon start() did not reload " << CacheFile;
  }
  ::unlink(CacheFile.c_str());
}

//===----------------------------------------------------------------------===//
// KernelCache stale-tmp sweeping
//===----------------------------------------------------------------------===//

void touch(const std::string &Path) {
  std::ofstream(Path.c_str()) << "x";
}

bool exists(const std::string &Path) {
  return ::access(Path.c_str(), F_OK) == 0;
}

TEST(KernelCacheSweep, ReclaimsDeadWritersTmpFilesOnly) {
  char Buf[] = "/tmp/dhpf_sweep_test_XXXXXX";
  ASSERT_NE(mkdtemp(Buf), nullptr);
  std::string Dir = Buf;

  // A pid that is certainly dead: fork a child that exits immediately and
  // reap it.
  pid_t Dead = ::fork();
  ASSERT_GE(Dead, 0);
  if (Dead == 0)
    ::_exit(0);
  ASSERT_EQ(::waitpid(Dead, nullptr, 0), Dead);

  std::string DeadTmp = Dir + "/dhpf-abc.so.tmp" + std::to_string(Dead);
  std::string DeadErr = Dir + "/dhpf-abc.cc.err" + std::to_string(Dead);
  std::string LiveTmp =
      Dir + "/dhpf-def.so.tmp" + std::to_string(::getpid());
  std::string Final = Dir + "/dhpf-abc.so";
  std::string Foreign = Dir + "/other.tmp" + std::to_string(Dead);
  touch(DeadTmp);
  touch(DeadErr);
  touch(LiveTmp);
  touch(Final);
  touch(Foreign);

  unsigned Swept = spmd::native::KernelCache::sweepStale(Dir);
  EXPECT_EQ(Swept, 2u);
  EXPECT_FALSE(exists(DeadTmp)) << "dead writer's .tmp kept";
  EXPECT_FALSE(exists(DeadErr)) << "dead writer's .err kept";
  EXPECT_TRUE(exists(LiveTmp)) << "live writer's .tmp swept";
  EXPECT_TRUE(exists(Final)) << "finished artifact swept";
  EXPECT_TRUE(exists(Foreign)) << "non-dhpf file swept";

  ::unlink(LiveTmp.c_str());
  ::unlink(Final.c_str());
  ::unlink(Foreign.c_str());
  ::rmdir(Dir.c_str());
}

} // namespace
