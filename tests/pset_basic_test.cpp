//===- tests/pset_basic_test.cpp - Core Presburger engine tests ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Validates the set engine against a brute-force membership oracle: every
// operation result is compared pointwise over a bounding box, so these tests
// check exact integer semantics (including dark-shadow/splinter projection).
//
//===----------------------------------------------------------------------===//

#include "pset/Relation.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace dhpf;

namespace {

using Point = std::vector<int64_t>;

/// Enumerates the points of a (parameter-free or bound) set over the box
/// [Lo, Hi]^rank by membership queries.
std::set<Point> pointsOf(const Relation &S, int64_t Lo, int64_t Hi,
                         const std::vector<int64_t> &ParamVals = {}) {
  EXPECT_TRUE(S.isSet());
  unsigned K = S.numOut();
  std::set<Point> Pts;
  Point P(K, Lo);
  for (;;) {
    if (S.contains(P, ParamVals))
      Pts.insert(P);
    unsigned D = 0;
    while (D < K && ++P[D] > Hi) {
      P[D] = Lo;
      ++D;
    }
    if (D == K)
      break;
  }
  return Pts;
}

TEST(PsetParse, SimpleInterval) {
  Relation S = parseRelation("{ [i] : 1 <= i <= 5 }");
  EXPECT_EQ(S.numOut(), 1u);
  EXPECT_FALSE(S.isEmpty());
  auto Pts = pointsOf(S, -10, 10);
  EXPECT_EQ(Pts.size(), 5u);
  EXPECT_TRUE(Pts.count({1}));
  EXPECT_TRUE(Pts.count({5}));
  EXPECT_FALSE(Pts.count({0}));
  EXPECT_FALSE(Pts.count({6}));
}

TEST(PsetParse, ChainAndCoefficients) {
  Relation S = parseRelation("{ [i,j] : 0 <= 2i < j && j <= 6 }");
  auto Pts = pointsOf(S, -8, 8);
  std::set<Point> Expect;
  for (int64_t I = -8; I <= 8; ++I)
    for (int64_t J = -8; J <= 8; ++J)
      if (0 <= 2 * I && 2 * I < J && J <= 6)
        Expect.insert({I, J});
  EXPECT_EQ(Pts, Expect);
}

TEST(PsetParse, Universe) {
  Relation S = parseRelation("{ [i] }");
  EXPECT_FALSE(S.isEmpty());
  EXPECT_TRUE(S.contains({1234}));
}

TEST(PsetParse, FalseIsEmpty) {
  Relation S = parseRelation("{ [i] : false }");
  EXPECT_TRUE(S.isEmpty());
}

TEST(PsetParse, Disjunction) {
  Relation S = parseRelation("{ [i] : 1 <= i <= 3 or 7 <= i <= 8 }");
  auto Pts = pointsOf(S, 0, 10);
  EXPECT_EQ(Pts.size(), 5u);
  EXPECT_TRUE(S.contains({7}));
  EXPECT_FALSE(S.contains({5}));
}

TEST(PsetParse, ExistsStride) {
  // Even numbers in [0, 10].
  Relation S = parseRelation("{ [i] : 0 <= i <= 10 && exists(a : i = 2a) }");
  auto Pts = pointsOf(S, -2, 12);
  EXPECT_EQ(Pts.size(), 6u);
  for (auto &P : Pts)
    EXPECT_EQ(P[0] % 2, 0);
}

TEST(PsetParse, Parameters) {
  Relation S = parseRelation("[N] -> { [i] : 1 <= i <= N }");
  EXPECT_EQ(S.numParams(), 1u);
  EXPECT_TRUE(S.contains({3}, {5}));
  EXPECT_FALSE(S.contains({6}, {5}));
  // Auto-registered parameter without prefix.
  Relation T = parseRelation("{ [i] : 1 <= i <= M }");
  EXPECT_EQ(T.numParams(), 1u);
}

TEST(PsetEmptiness, GcdInfeasible) {
  // 2i = 2j + 1 has no integer solution.
  Relation S = parseRelation("{ [i,j] : 2i = 2j + 1 }");
  EXPECT_TRUE(S.isEmpty());
}

TEST(PsetEmptiness, Contradiction) {
  Relation S = parseRelation("{ [i] : i >= 5 && i <= 4 }");
  EXPECT_TRUE(S.isEmpty());
}

TEST(PsetEmptiness, TightIntegerGap) {
  // 2 <= 3i <= 4 forces i = 1 (3i = 3). Satisfiable.
  Relation S = parseRelation("{ [i] : 2 <= 3i && 3i <= 4 }");
  EXPECT_FALSE(S.isEmpty());
  EXPECT_TRUE(S.contains({1}));
  // 4 <= 3i <= 5 has no integer solution (omega dark shadow case).
  Relation T = parseRelation("{ [i] : 4 <= 3i && 3i <= 5 }");
  EXPECT_TRUE(T.isEmpty());
}

TEST(PsetEmptiness, StrideConflict) {
  // i even and i odd simultaneously.
  Relation S = parseRelation(
      "{ [i] : exists(a : i = 2a) && exists(b : i = 2b + 1) }");
  EXPECT_TRUE(S.isEmpty());
}

TEST(PsetOps, IntersectMatchesOracle) {
  Relation A = parseRelation("{ [i,j] : 0 <= i <= 6 && 0 <= j <= 6 }");
  Relation B = parseRelation("{ [i,j] : i <= j && 2 <= j <= 9 }");
  Relation C = A.intersect(B);
  auto Pts = pointsOf(C, -2, 11);
  std::set<Point> Expect;
  for (auto &P : pointsOf(A, -2, 11))
    if (B.contains(P))
      Expect.insert(P);
  EXPECT_EQ(Pts, Expect);
}

TEST(PsetOps, UnionMatchesOracle) {
  Relation A = parseRelation("{ [i] : 0 <= i <= 3 }");
  Relation B = parseRelation("{ [i] : 2 <= i <= 8 }");
  auto Pts = pointsOf(A.unionWith(B), -3, 12);
  EXPECT_EQ(Pts.size(), 9u);
}

TEST(PsetOps, SubtractMatchesOracle) {
  Relation A = parseRelation("{ [i,j] : 0 <= i <= 5 && 0 <= j <= 5 }");
  Relation B = parseRelation("{ [i,j] : 1 <= i <= 4 && 2 <= j <= 3 }");
  Relation C = A.subtract(B);
  auto Pts = pointsOf(C, -2, 7);
  std::set<Point> Expect;
  for (auto &P : pointsOf(A, -2, 7))
    if (!B.contains(P))
      Expect.insert(P);
  EXPECT_EQ(Pts, Expect);
}

TEST(PsetOps, SubtractStride) {
  // Box minus evens = odds.
  Relation A = parseRelation("{ [i] : 0 <= i <= 10 }");
  Relation B = parseRelation("{ [i] : exists(a : i = 2a) }");
  Relation C = A.subtract(B);
  auto Pts = pointsOf(C, -2, 12);
  EXPECT_EQ(Pts.size(), 5u);
  for (auto &P : Pts)
    EXPECT_EQ((P[0] % 2 + 2) % 2, 1);
}

TEST(PsetOps, SubtractStrideFromStride) {
  // Evens minus multiples of four: i ≡ 2 (mod 4).
  Relation A = parseRelation(
      "{ [i] : 0 <= i <= 20 && exists(a : i = 2a) }");
  Relation B = parseRelation("{ [i] : exists(b : i = 4b) }");
  Relation C = A.subtract(B);
  for (int64_t I = -2; I <= 22; ++I) {
    bool Expect = I >= 0 && I <= 20 && I % 2 == 0 && I % 4 != 0;
    EXPECT_EQ(C.contains({I}), Expect) << "i=" << I;
  }
}

TEST(PsetOps, SubtractFromStride) {
  // Multiples of three minus a middle box.
  Relation A = parseRelation(
      "{ [i] : 0 <= i <= 30 && exists(a : i = 3a) }");
  Relation B = parseRelation("{ [i] : 7 <= i <= 14 }");
  Relation C = A.subtract(B);
  for (int64_t I = -2; I <= 32; ++I) {
    bool Expect = I >= 0 && I <= 30 && I % 3 == 0 && !(I >= 7 && I <= 14);
    EXPECT_EQ(C.contains({I}), Expect) << "i=" << I;
  }
}

TEST(PsetOps, SubtractWithEqualities) {
  Relation A = parseRelation("{ [i,j] : 0 <= i <= 4 && 0 <= j <= 4 }");
  Relation B = parseRelation("{ [i,j] : i = j }");
  Relation C = A.subtract(B);
  auto Pts = pointsOf(C, -1, 5);
  EXPECT_EQ(Pts.size(), 20u);
  EXPECT_FALSE(C.contains({2, 2}));
  EXPECT_TRUE(C.contains({2, 3}));
}

TEST(PsetOps, SubsetAndEquality) {
  Relation A = parseRelation("{ [i] : 2 <= i <= 4 }");
  Relation B = parseRelation("{ [i] : 0 <= i <= 9 }");
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  Relation B2 = parseRelation("{ [i] : 0 <= i <= 4 or 4 <= i <= 9 }");
  EXPECT_TRUE(B.isEqualTo(B2));
}

TEST(PsetOps, ProjectionExactness) {
  // { i : exists a : 3a <= i <= 3a + 1 } - integers whose residue mod 3 is
  // 0 or 1. Projection of a must be exact (splinter case: coefficients > 1
  // on both sides after rewriting). Check pointwise.
  Relation S = parseRelation(
      "{ [i] : 0 <= i <= 20 && exists(a : 3a <= i && i <= 3a + 1) }");
  Relation Flat = S.normalizeExists();
  for (int64_t I = 0; I <= 20; ++I) {
    bool Expect = (I % 3) != 2;
    EXPECT_EQ(S.contains({I}), Expect) << "i=" << I;
    EXPECT_EQ(Flat.contains({I}), Expect) << "flat i=" << I;
  }
}

TEST(PsetMaps, ComposeAndApply) {
  // F: i -> i+1 on [0,9]; G: j -> 2j. (F;G): i -> 2(i+1).
  Relation F = parseRelation("{ [i] -> [j] : j = i + 1 && 0 <= i <= 9 }");
  Relation G = parseRelation("{ [j] -> [k] : k = 2j }");
  Relation FG = F.composeWith(G);
  EXPECT_TRUE(FG.contains(/*Out=*/{8}, {}, /*In=*/{3}));
  EXPECT_FALSE(FG.contains({9}, {}, {3}));
  Relation S = parseRelation("{ [i] : 2 <= i <= 4 }");
  Relation Img = FG.apply(S);
  auto Pts = pointsOf(Img, 0, 30);
  std::set<Point> Expect = {{6}, {8}, {10}};
  EXPECT_EQ(Pts, Expect);
}

TEST(PsetMaps, DomainRangeInverse) {
  Relation F = parseRelation(
      "{ [i] -> [j] : j = i + 2 && 0 <= i <= 5 && j <= 6 }");
  auto D = pointsOf(F.domain(), -3, 10);
  auto R = pointsOf(F.range(), -3, 10);
  std::set<Point> ExpD = {{0}, {1}, {2}, {3}, {4}};
  std::set<Point> ExpR = {{2}, {3}, {4}, {5}, {6}};
  EXPECT_EQ(D, ExpD);
  EXPECT_EQ(R, ExpR);
  Relation Inv = F.inverse();
  EXPECT_TRUE(Inv.contains(/*Out=*/{1}, {}, /*In=*/{3}));
}

TEST(PsetMaps, RestrictDomainRange) {
  Relation F = parseRelation("{ [i] -> [j] : j = i && 0 <= i <= 9 }");
  Relation S = parseRelation("{ [i] : 3 <= i <= 4 }");
  Relation T = parseRelation("{ [j] : 4 <= j <= 9 }");
  Relation RD = F.restrictDomain(S);
  Relation RR = F.restrictRange(T);
  EXPECT_TRUE(RD.contains({3}, {}, {3}));
  EXPECT_FALSE(RD.contains({5}, {}, {5}));
  EXPECT_TRUE(RR.contains({5}, {}, {5}));
  EXPECT_FALSE(RR.contains({3}, {}, {3}));
}

TEST(PsetMaps, ParametricCompose) {
  // Block layout: proc p owns [25p+1, 25p+25]; ref map i -> i-1.
  Relation Layout = parseRelation(
      "{ [p] -> [a] : 25p + 1 <= a <= 25p + 25 && 0 <= p <= 3 }");
  Relation S = parseRelation("{ [p] : p = 2 }");
  auto Owned = pointsOf(Layout.apply(S), 0, 120);
  EXPECT_EQ(Owned.size(), 25u);
  EXPECT_TRUE(Owned.count({51}));
  EXPECT_TRUE(Owned.count({75}));
  EXPECT_FALSE(Owned.count({76}));
}

TEST(PsetStructure, BindParams) {
  Relation S = parseRelation("[N] -> { [i] : 1 <= i <= N }");
  Relation S5 = S.bindParams({{"N", 5}});
  EXPECT_EQ(S5.numParams(), 0u);
  EXPECT_EQ(pointsOf(S5, -2, 10).size(), 5u);
}

TEST(PsetStructure, BindDomainToParams) {
  Relation Layout = parseRelation(
      "{ [p] -> [a] : 10p + 1 <= a <= 10p + 10 }");
  Relation Mine = Layout.bindDomainToParams({"m"});
  EXPECT_TRUE(Mine.isSet());
  EXPECT_EQ(Mine.numParams(), 1u);
  // With m = 2 the owned section is [21, 30].
  EXPECT_TRUE(Mine.contains({21}, {2}));
  EXPECT_TRUE(Mine.contains({30}, {2}));
  EXPECT_FALSE(Mine.contains({31}, {2}));
}

TEST(PsetStructure, ProjectOntoDim) {
  Relation S = parseRelation("{ [i,j] : 1 <= i <= 3 && 5 <= j <= 9 }");
  auto P0 = pointsOf(S.projectOntoDim(0), 0, 12);
  auto P1 = pointsOf(S.projectOntoDim(1), 0, 12);
  EXPECT_EQ(P0.size(), 3u);
  EXPECT_EQ(P1.size(), 5u);
  EXPECT_TRUE(P1.count({7}));
}

TEST(PsetHull, ConvexAndNot) {
  Relation Convex = parseRelation("{ [i] : 0 <= i <= 9 }");
  EXPECT_TRUE(Convex.isConvexProven());
  Relation Gap = parseRelation("{ [i] : 0 <= i <= 3 or 6 <= i <= 9 }");
  EXPECT_FALSE(Gap.isConvexProven());
  Relation Overlap = parseRelation("{ [i] : 0 <= i <= 5 or 3 <= i <= 9 }");
  EXPECT_TRUE(Overlap.isConvexProven());
}

TEST(PsetHull, SimpleHullContainsUnion) {
  Relation S = parseRelation("{ [i,j] : 0 <= i <= 2 && 0 <= j <= 2 or "
                             "4 <= i <= 6 && 0 <= j <= 2 }");
  Relation H = S.simpleHull();
  EXPECT_TRUE(S.isSubsetOf(H));
  // j bounds are common to both conjuncts and must survive in the hull.
  EXPECT_FALSE(H.contains({1, 3}));
}

TEST(PsetSingleton, Tests) {
  EXPECT_TRUE(parseRelation("{ [i] : i = 7 }").isSingletonProven());
  EXPECT_FALSE(parseRelation("{ [i] : 0 <= i <= 1 }").isSingletonProven());
  EXPECT_TRUE(parseRelation("{ [i] : false }").isSingletonProven());
  // Parametric singleton: one point per m.
  EXPECT_TRUE(
      parseRelation("[m] -> { [i] : i = m + 3 }").isSingletonProven());
  // Parametric non-singleton.
  EXPECT_FALSE(
      parseRelation("[m] -> { [i] : m <= i <= m + 1 }").isSingletonProven());
}

TEST(PsetPrint, RoundTrip) {
  const char *Cases[] = {
      "{ [i] : 1 <= i <= 5 }",
      "[N] -> { [i,j] : 1 <= i <= N && 0 <= 2j <= i }",
      "{ [i] -> [j] : j = i + 1 && 0 <= i <= 9 }",
      "{ [i] : 0 <= i <= 10 && exists(a : i = 2a) }",
      "{ [i] : 1 <= i <= 3 or 7 <= i <= 8 }",
  };
  for (const char *Text : Cases) {
    Relation A = parseRelation(Text);
    Relation B = parseRelation(A.toString());
    EXPECT_TRUE(A.isEqualTo(B)) << Text << " vs " << A.toString();
  }
}

TEST(PsetSimplify, RemovesRedundancy) {
  Relation S = parseRelation(
      "{ [i] : 0 <= i <= 9 && i <= 20 && 2i <= 40 && i >= -5 }");
  Relation Simp = S.simplify();
  ASSERT_EQ(Simp.conjuncts().size(), 1u);
  EXPECT_EQ(Simp.conjuncts()[0].rows().size(), 2u);
  EXPECT_TRUE(Simp.isEqualTo(S));
}

TEST(PsetSimplify, CoalesceSubsumed) {
  Relation S = parseRelation("{ [i] : 0 <= i <= 9 or 2 <= i <= 5 }");
  Relation C = S.coalesce();
  EXPECT_EQ(C.conjuncts().size(), 1u);
  EXPECT_TRUE(C.isEqualTo(S));
}

} // namespace
