//===- tests/opcache_persist_test.cpp - OpCache serialize/reload tests ---===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The daemon's warm-start story rests on one property: a reloaded
// set-operation cache is indistinguishable from the live cache that wrote
// it. The tests pin that down three ways:
//
//   1. Fixpoint: serialize -> clear -> deserialize -> serialize produces
//      byte-identical text (entries, order, and recency all survive).
//   2. Hit-equivalence: a warm recompile against a reloaded cache scores
//      exactly the same hit/miss deltas as a warm recompile against the
//      live cache that was serialized.
//   3. Rejection: malformed or version-mismatched images are diagnosed
//      and load nothing (all-or-nothing).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/CompilerService.h"
#include "hpf/HpfPrinter.h"
#include "pset/OpCache.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace dhpf;
using namespace dhpf::core;

namespace {

pset::OpCache &cache() { return pset::OpCache::global(); }

/// Compiles \p Source through the service with the artifact cache
/// bypassed, so every call exercises the OpCache, and returns the
/// hit/miss deltas of that one compile.
pset::CacheStats compileOnce(const std::string &Source) {
  pset::CacheStats Before = cache().stats();
  CompileRequest R;
  R.Name = "<opcache_persist_test>";
  R.Source = Source;
  R.BypassArtifactCache = true;
  std::shared_ptr<const CompileArtifact> A =
      CompilerService::global().compile(R);
  EXPECT_TRUE(A->Ok) << A->DiagText;
  return cache().stats() - Before;
}

std::string serializeToString() {
  std::ostringstream OS;
  cache().serialize(OS);
  return OS.str();
}

TEST(OpCachePersist, SerializeReloadFixpoint) {
  cache().clear();
  std::string Source = hpf::printHpfProgram(*apps::makeJacobi(12, 2).Prog);
  compileOnce(Source);
  ASSERT_GT(cache().entryCount(), 0u);

  std::string Image = serializeToString();
  size_t Entries = cache().entryCount();
  cache().clear();
  ASSERT_EQ(cache().entryCount(), 0u);

  std::istringstream In(Image);
  std::string Err;
  ASSERT_TRUE(cache().deserialize(In, &Err)) << Err;
  EXPECT_EQ(cache().entryCount(), Entries);
  // Entries, shard placement, and recency order all survived: the reloaded
  // cache serializes to the exact bytes it was loaded from.
  EXPECT_EQ(serializeToString(), Image);
  cache().clear();
}

TEST(OpCachePersist, ReloadedCacheScoresLikeLiveCache) {
  cache().clear();
  std::string Source = hpf::printHpfProgram(*apps::makeTomcatv(10, 2).Prog);
  compileOnce(Source); // populate

  // Warm recompile against the live cache.
  pset::CacheStats Live = compileOnce(Source);
  EXPECT_GT(Live.Hits, 0u);

  // Save the cache as it stood after that warm compile, reload it into an
  // empty cache, and recompile: the deltas must match exactly — the
  // reloaded cache answers precisely the lookups the live one did.
  std::string Image = serializeToString();
  cache().clear();
  std::istringstream In(Image);
  std::string Err;
  ASSERT_TRUE(cache().deserialize(In, &Err)) << Err;

  pset::CacheStats Reloaded = compileOnce(Source);
  EXPECT_EQ(Reloaded.Hits, Live.Hits);
  EXPECT_EQ(Reloaded.Misses, Live.Misses);
  cache().clear();
}

TEST(OpCachePersist, MalformedImagesRejectedWholesale) {
  cache().clear();
  std::string Source = hpf::printHpfProgram(*apps::makeGauss(8).Prog);
  compileOnce(Source);
  size_t Entries = cache().entryCount();
  ASSERT_GT(Entries, 0u);
  std::string Good = serializeToString();

  const char *Bad[] = {
      "",                                  // empty
      "not-a-cache at all",                // wrong tag
      "dhpf-opcache v2 0\n",               // future version
      "dhpf-opcache v1 3\nrel 0 1 2 5\n",  // truncated entry
      "dhpf-opcache v1 1\nrel 99 1 2 1\nX\n", // unknown op
  };
  for (const char *Image : Bad) {
    std::istringstream In(Image);
    std::string Err;
    EXPECT_FALSE(cache().deserialize(In, &Err)) << "accepted: " << Image;
    EXPECT_NE(Err, "");
    // A failed load is all-or-nothing: the resident cache is untouched.
    EXPECT_EQ(cache().entryCount(), Entries);
    EXPECT_EQ(serializeToString(), Good);
  }
  cache().clear();
}

/// Counters are load-invariant: deserializing never scores hits or misses.
TEST(OpCachePersist, LoadDoesNotTouchCounters) {
  cache().clear();
  std::string Source = hpf::printHpfProgram(*apps::makeJacobi(10, 1).Prog);
  compileOnce(Source);
  std::string Image = serializeToString();
  pset::CacheStats Before = cache().stats();
  cache().clear();
  std::istringstream In(Image);
  std::string Err;
  ASSERT_TRUE(cache().deserialize(In, &Err)) << Err;
  pset::CacheStats After = cache().stats();
  EXPECT_EQ(After.Hits, Before.Hits);
  EXPECT_EQ(After.Misses, Before.Misses);
  cache().clear();
}

} // namespace
