//===- tests/sim_machine_test.cpp - Machine model unit tests -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Unit tests for the simulated message-passing machine (clock advancement,
// blocking-receive semantics, FIFO message matching, reductions) and the
// phase-timer registry behind the Table 1 report.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::sim;

namespace {

MachineParams testParams() {
  MachineParams P;
  P.Alpha = 100e-6;
  P.SendOverhead = 10e-6;
  P.BetaPerByte = 1e-6; // exaggerated so transfer time is visible
  P.SecPerWork = 1e-6;
  P.PackPerByte = 1e-6;
  return P;
}

TEST(Machine, ComputeAdvancesOneClock) {
  Machine M(4, testParams());
  M.addCompute(2, 50);
  EXPECT_DOUBLE_EQ(M.clock(2), 50e-6);
  EXPECT_DOUBLE_EQ(M.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(M.elapsed(), 50e-6);
}

TEST(Machine, BlockingRecvWaitsForTransit) {
  Machine M(2, testParams());
  // Sender posts at t=0: pays pack (8us) + overhead (10us); the payload
  // lands at sender-clock + alpha + bytes*beta = 18 + 100 + 8 = 126us.
  M.send(0, 1, /*Tag=*/7, /*Bytes=*/8, /*PackBytes=*/8);
  EXPECT_DOUBLE_EQ(M.clock(0), 18e-6);
  M.recv(0, 1, 7, /*UnpackBytes=*/8);
  EXPECT_DOUBLE_EQ(M.clock(1), 126e-6 + 8e-6); // wait + unpack
  EXPECT_TRUE(M.allMessagesConsumed());
}

TEST(Machine, LateReceiverDoesNotWait) {
  Machine M(2, testParams());
  M.send(0, 1, 7, 8, 8);
  M.addCompute(1, 1000); // receiver is busy for 1ms >> transit
  M.recv(0, 1, 7, 0);
  EXPECT_DOUBLE_EQ(M.clock(1), 1000e-6); // message already there
}

TEST(Machine, InPlaceSkipsCopies) {
  Machine M(2, testParams());
  M.send(0, 1, 1, 1024, /*PackBytes=*/0); // in-place: no pack copy
  EXPECT_DOUBLE_EQ(M.clock(0), 10e-6);    // only the injection overhead
}

TEST(Machine, FifoMatchingPerChannel) {
  Machine M(2, testParams());
  M.send(0, 1, 3, 8, 0);
  M.addCompute(0, 500);
  M.send(0, 1, 3, 8, 0); // second message on the same (src,dst,tag)
  M.recv(0, 1, 3, 0);    // matches the first (earlier availability)
  double T1 = M.clock(1);
  M.recv(0, 1, 3, 0); // matches the second
  EXPECT_GT(M.clock(1), T1);
  EXPECT_TRUE(M.allMessagesConsumed());
}

TEST(Machine, DistinctTagsAreIndependent) {
  Machine M(3, testParams());
  M.send(0, 2, 1, 8, 0);
  M.send(1, 2, 2, 8, 0);
  EXPECT_FALSE(M.allMessagesConsumed());
  M.recv(1, 2, 2, 0);
  M.recv(0, 2, 1, 0);
  EXPECT_TRUE(M.allMessagesConsumed());
}

TEST(Machine, AllReduceSynchronizesAndCharges) {
  Machine M(4, testParams());
  M.addCompute(3, 700);
  M.allReduce(8);
  // Everyone lands at max-clock + 2*log2(4)*(alpha + 8*beta).
  double Expect = 700e-6 + 4 * (100e-6 + 8e-6);
  for (unsigned P = 0; P != 4; ++P)
    EXPECT_DOUBLE_EQ(M.clock(P), Expect);
}

TEST(Machine, SingleProcReduceIsFree) {
  Machine M(1, testParams());
  M.addCompute(0, 10);
  M.allReduce(8);
  EXPECT_DOUBLE_EQ(M.clock(0), 10e-6);
}

TEST(Machine, CountersAccumulate) {
  Machine M(2, testParams());
  M.send(0, 1, 1, 100, 0);
  M.send(1, 0, 1, 50, 0);
  EXPECT_EQ(M.totalMessages(), 2u);
  EXPECT_EQ(M.totalBytes(), 150u);
}

TEST(Timers, AccumulateAndCount) {
  PhaseTimers T;
  T.add("phase a", 1.5);
  T.add("phase a", 0.5);
  T.add("phase b", 3.0);
  EXPECT_DOUBLE_EQ(T.seconds("phase a"), 2.0);
  EXPECT_EQ(T.count("phase a"), 2u);
  EXPECT_DOUBLE_EQ(T.seconds("missing"), 0.0);
  ASSERT_EQ(T.entries().size(), 2u);
  EXPECT_EQ(T.entries()[0].Name, "phase a"); // first-seen order
}

TEST(Timers, ScopeChargesElapsed) {
  PhaseTimers T;
  {
    PhaseTimers::Scope S(T, "scoped");
    volatile long long X = 0;
    for (int I = 0; I != 100000; ++I)
      X = X + I;
    (void)X;
  }
  EXPECT_GT(T.seconds("scoped"), 0.0);
  EXPECT_EQ(T.count("scoped"), 1u);
}

TEST(Timers, MergeCombines) {
  PhaseTimers A, B;
  A.add("x", 1.0);
  B.add("x", 2.0);
  B.add("y", 5.0);
  A.merge(B);
  EXPECT_DOUBLE_EQ(A.seconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(A.seconds("y"), 5.0);
  EXPECT_EQ(A.count("x"), 2u);
}

} // namespace
