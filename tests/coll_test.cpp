//===- tests/coll_test.cpp - Reduction collective unit tests --------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collective library's two contracts, checked over the loopback mesh:
///
///  1. Bit-identicality: every algorithm returns exactly the bits of the
///     canonical identity-seeded rank-order combine, for sums chosen so
///     that any other combine order produces different bits.
///  2. Schedule shape: the physical per-rank frame counts match the
///     advertised schedules — naive bottlenecks rank 0 at 2(P-1) while
///     recursive doubling and the binomial tree cut the maximum to
///     2·ceil(lg P), the asymptotic win the benchmarks gate on.
///
//===----------------------------------------------------------------------===//

#include "coll/Collective.h"
#include "net/Loopback.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

using namespace dhpf;
using namespace dhpf::coll;

namespace {

/// The canonical combine every engine implements: identity seeded, then
/// contributions folded in rank order 0..P-1.
double refCombine(const std::vector<double> &C, Op O) {
  double V = O == Op::Sum ? 0.0 : -std::numeric_limits<double>::infinity();
  for (double X : C)
    V = O == Op::Sum ? V + X : std::max(V, X);
  return V;
}

/// Contributions of wildly mixed magnitude and sign: summing these in any
/// order other than 0..P-1 yields different low-order bits, so an
/// algorithm that combined along its data path would be caught.
std::vector<double> spikyContributions(unsigned NP) {
  std::vector<double> C(NP);
  for (unsigned R = 0; R != NP; ++R)
    C[R] = std::sin(1.7 * R + 0.3) *
           std::pow(10.0, static_cast<int>(R % 7) - 3);
  return C;
}

struct RankOutcome {
  std::vector<double> Results; ///< one per collective instance
  CollStats St;
  std::string Err;
};

/// All NP ranks run \p Instances successive allreduces of \p C under
/// algorithm \p A over a loopback mesh, one fresh tag per instance.
std::vector<RankOutcome> runAllreduce(Algo A, unsigned NP,
                                      const std::vector<double> &C, Op O,
                                      unsigned Instances = 1) {
  net::LoopbackMesh Mesh(NP);
  std::vector<RankOutcome> Out(NP);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != NP; ++R)
    Ts.emplace_back([&, R] {
      try {
        auto T = Mesh.transport(R);
        std::unique_ptr<Collective> Coll = makeCollective(A, NP);
        for (unsigned I = 0; I != Instances; ++I)
          Out[R].Results.push_back(
              Coll->allreduce(*T, C[R], O, 1000 + I, Out[R].St));
      } catch (const std::exception &E) {
        Out[R].Err = E.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  return Out;
}

void expectBitEqual(double A, double B, const std::string &What) {
  EXPECT_EQ(std::memcmp(&A, &B, sizeof(double)), 0)
      << What << ": " << A << " vs " << B;
}

const Algo AllAlgos[] = {Algo::Naive, Algo::Ring, Algo::Rdbl, Algo::Tree};

//===----------------------------------------------------------------------===//
// Algorithm selection
//===----------------------------------------------------------------------===//

TEST(CollAlgo, ParseRoundTripsEveryName) {
  for (Algo A : {Algo::Naive, Algo::Ring, Algo::Rdbl, Algo::Tree, Algo::Auto})
    EXPECT_EQ(parseAlgo(algoName(A)), A);
}

TEST(CollAlgo, ParseRejectsTypos) {
  for (const char *Bad : {"", "Naive", "ringg", "rd", "butterfly"})
    EXPECT_THROW(parseAlgo(Bad), net::TransportError) << Bad;
}

TEST(CollAlgo, EnvDefaultsToAuto) {
  const char *Old = getenv("DHPF_COLL");
  std::string Saved = Old ? Old : "";
  unsetenv("DHPF_COLL");
  EXPECT_EQ(algoFromEnv(), Algo::Auto);
  setenv("DHPF_COLL", "ring", 1);
  EXPECT_EQ(algoFromEnv(), Algo::Ring);
  if (Old)
    setenv("DHPF_COLL", Saved.c_str(), 1);
  else
    unsetenv("DHPF_COLL");
}

TEST(CollAlgo, AutoResolvesByMeshSize) {
  EXPECT_EQ(resolveAlgo(Algo::Auto, 1), Algo::Naive);
  EXPECT_EQ(resolveAlgo(Algo::Auto, 2), Algo::Naive);
  EXPECT_EQ(resolveAlgo(Algo::Auto, 4), Algo::Rdbl);
  EXPECT_EQ(resolveAlgo(Algo::Auto, 8), Algo::Rdbl);
  EXPECT_EQ(resolveAlgo(Algo::Ring, 8), Algo::Ring);
}

//===----------------------------------------------------------------------===//
// Bit-identical results on every algorithm, every mesh size
//===----------------------------------------------------------------------===//

TEST(CollBits, AllAlgorithmsMatchRankOrderCombine) {
  for (unsigned NP : {1u, 2u, 3u, 4u, 5u, 8u}) {
    std::vector<double> C = spikyContributions(NP);
    for (Op O : {Op::Sum, Op::Max}) {
      double Ref = refCombine(C, O);
      for (Algo A : AllAlgos) {
        std::vector<RankOutcome> Out = runAllreduce(A, NP, C, O);
        for (unsigned R = 0; R != NP; ++R) {
          std::string What = std::string(algoName(A)) + " P=" +
                             std::to_string(NP) + " rank " +
                             std::to_string(R);
          EXPECT_EQ(Out[R].Err, "") << What;
          ASSERT_EQ(Out[R].Results.size(), 1u) << What;
          expectBitEqual(Out[R].Results[0], Ref, What);
        }
      }
    }
  }
}

TEST(CollBits, SuccessiveInstancesStayOrderedAtNonPowerOfTwo) {
  // Several back-to-back collectives on a non-power-of-two mesh: the
  // extra-rank folding in rdbl and the uneven tree must not let one
  // instance's frames bleed into the next (fresh tag per instance).
  const unsigned NP = 6, Instances = 5;
  std::vector<double> C = spikyContributions(NP);
  double Ref = refCombine(C, Op::Sum);
  for (Algo A : AllAlgos) {
    std::vector<RankOutcome> Out =
        runAllreduce(A, NP, C, Op::Sum, Instances);
    for (unsigned R = 0; R != NP; ++R) {
      EXPECT_EQ(Out[R].Err, "") << algoName(A);
      ASSERT_EQ(Out[R].Results.size(), Instances);
      for (double V : Out[R].Results)
        expectBitEqual(V, Ref, std::string(algoName(A)) + " rank " +
                                   std::to_string(R));
    }
  }
}

//===----------------------------------------------------------------------===//
// Physical schedules: the counters prove the asymptotic claim
//===----------------------------------------------------------------------===//

uint64_t maxRankMessages(const std::vector<RankOutcome> &Out) {
  uint64_t Max = 0;
  for (const RankOutcome &O : Out)
    Max = std::max(Max, O.St.Messages);
  return Max;
}

TEST(CollSchedule, MaxPerRankFramesMatchTheAdvertisedCounts) {
  const unsigned NP = 8; // 2(P-1) = 14, 2·lg P = 6
  std::vector<double> C = spikyContributions(NP);
  struct {
    Algo A;
    uint64_t Expect;
  } Cases[] = {{Algo::Naive, 14}, {Algo::Ring, 14}, {Algo::Rdbl, 6},
               {Algo::Tree, 6}};
  for (const auto &[A, Expect] : Cases) {
    std::vector<RankOutcome> Out = runAllreduce(A, NP, C, Op::Sum);
    for (const RankOutcome &O : Out)
      EXPECT_EQ(O.Err, "") << algoName(A);
    EXPECT_EQ(maxRankMessages(Out), Expect) << algoName(A);
  }
}

TEST(CollSchedule, RingIsUniformNaiveBottlenecksRankZero) {
  const unsigned NP = 8;
  std::vector<double> C = spikyContributions(NP);
  std::vector<RankOutcome> Naive = runAllreduce(Algo::Naive, NP, C, Op::Sum);
  EXPECT_EQ(Naive[0].St.Messages, 14u);
  for (unsigned R = 1; R != NP; ++R)
    EXPECT_EQ(Naive[R].St.Messages, 2u) << "rank " << R;
  std::vector<RankOutcome> Ring = runAllreduce(Algo::Ring, NP, C, Op::Sum);
  for (unsigned R = 0; R != NP; ++R)
    EXPECT_EQ(Ring[R].St.Messages, 14u) << "rank " << R;
}

TEST(CollSchedule, LogSchedulesBeatNaiveBottleneckAtP8) {
  // The acceptance claim: recursive doubling measurably cuts the
  // bottleneck rank's frame count against naive gather/broadcast at P>=8.
  const unsigned NP = 8;
  std::vector<double> C = spikyContributions(NP);
  uint64_t NaiveMax = maxRankMessages(runAllreduce(Algo::Naive, NP, C, Op::Sum));
  uint64_t RdblMax = maxRankMessages(runAllreduce(Algo::Rdbl, NP, C, Op::Sum));
  uint64_t TreeMax = maxRankMessages(runAllreduce(Algo::Tree, NP, C, Op::Sum));
  EXPECT_LT(RdblMax, NaiveMax);
  EXPECT_LT(TreeMax, NaiveMax);
}

//===----------------------------------------------------------------------===//
// Binomial gather / broadcast primitives
//===----------------------------------------------------------------------===//

TEST(CollPrimitives, GatherThenBroadcastRoundTrips) {
  const unsigned NP = 6;
  net::LoopbackMesh Mesh(NP);
  std::vector<std::string> Errs(NP);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != NP; ++R)
    Ts.emplace_back([&, R] {
      try {
        auto T = Mesh.transport(R);
        CollStats St;
        uint8_t Own[4] = {static_cast<uint8_t>(R), 0xaa, 0xbb,
                          static_cast<uint8_t>(R * 3)};
        std::vector<std::vector<uint8_t>> All =
            gatherBinomial(*T, 500, Own, sizeof(Own), St);
        if (R == 0) {
          ASSERT_EQ(All.size(), NP);
          for (unsigned Q = 0; Q != NP; ++Q) {
            ASSERT_EQ(All[Q].size(), sizeof(Own));
            EXPECT_EQ(All[Q][0], Q);
            EXPECT_EQ(All[Q][3], static_cast<uint8_t>(Q * 3));
          }
        } else {
          EXPECT_TRUE(All.empty());
        }
        // Broadcast rank 0's concatenation back out; every rank must see
        // identical bytes.
        std::vector<uint8_t> Buf;
        if (R == 0)
          for (const auto &P : All)
            Buf.insert(Buf.end(), P.begin(), P.end());
        bcastBinomial(*T, 501, Buf, St);
        ASSERT_EQ(Buf.size(), NP * sizeof(Own));
        for (unsigned Q = 0; Q != NP; ++Q)
          EXPECT_EQ(Buf[Q * sizeof(Own)], Q);
        EXPECT_GT(St.Messages, 0u);
      } catch (const std::exception &E) {
        Errs[R] = E.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  for (unsigned R = 0; R != NP; ++R)
    EXPECT_EQ(Errs[R], "") << "rank " << R;
}

} // namespace
