//===- tests/rt_exec_test.cpp - Distributed rank runtime tests -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distributed runtime's core claim: P cooperating RankEngines — over
/// the loopback mesh AND over real Unix sockets — produce results
/// bit-identical to the in-process engines, for all four Figure 7
/// benchmarks at P in {1, 4}. The comparison goes through the full result
/// pipeline (dump -> serialize -> parse -> merge), so the rank-dump text
/// format is covered by the same assertions. Fault-injected runs must die
/// with a named-rank diagnostic under the watchdog, never hang.
///
//===----------------------------------------------------------------------===//

#include "apps/Registry.h"
#include "core/Compiler.h"
#include "net/Loopback.h"
#include "net/Socket.h"
#include "obs/Trace.h"
#include "rt/RankEngine.h"
#include "rt/RankResult.h"
#include "spmd/Interp.h"

#include "gtest/gtest.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace dhpf;

namespace {

struct Subject {
  apps::AppInstance App;
  std::vector<int64_t> Shape1; ///< P=1 processor-array extents
  std::vector<int64_t> Shape4; ///< P=4 processor-array extents
};

std::vector<Subject> subjects() {
  std::vector<Subject> S;
  S.push_back({apps::makeJacobi(8, 2), {1, 1}, {2, 2}});
  S.push_back({apps::makeTomcatv(10, 2), {1}, {4}});
  S.push_back({apps::makeErlebacher(8, 2), {1}, {4}});
  S.push_back({apps::makeGauss(8), {1, 1}, {2, 2}});
  return S;
}

enum class Mesh { Loopback, Socket };

/// Runs \p SP distributed on \p Mesh with one thread per rank, pushes every
/// rank's result through the dump text round trip, and merges. Any rank
/// error fails the test.
rt::MergedRun runDistributed(const spmd::SpmdProgram &SP,
                             const apps::AppInstance &App,
                             const spmd::RunConfig &RC, Mesh Kind) {
  spmd::ProgramLayout L = spmd::resolveLayout(SP, RC);
  unsigned NP = L.NumProcs;

  std::string Dir;
  std::unique_ptr<net::LoopbackMesh> Loop;
  if (Kind == Mesh::Loopback) {
    Loop = std::make_unique<net::LoopbackMesh>(NP);
  } else {
    char Buf[] = "/tmp/dhpf_rt_test_XXXXXX";
    const char *D = mkdtemp(Buf);
    EXPECT_NE(D, nullptr);
    Dir = D ? D : "";
  }

  std::vector<std::string> Dumps(NP), Errs(NP);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != NP; ++R)
    Ts.emplace_back([&, R] {
      try {
        std::unique_ptr<net::Transport> T;
        if (Kind == Mesh::Loopback) {
          T = Loop->transport(R);
        } else {
          net::SocketOptions Opts;
          Opts.MeshDir = Dir;
          T = net::connectSocketMesh(R, NP, Opts);
        }
        rt::RankConfig RCfg;
        RCfg.Run = RC;
        RCfg.Rank = R;
        rt::RankEngine E(SP, RCfg, *T);
        App.Setup(E);
        spmd::RunResult RR = E.run();
        Dumps[R] = rt::serializeRankDump(rt::dumpRank(E, RR, T->stats()));
      } catch (const std::exception &Ex) {
        Errs[R] = Ex.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  if (!Dir.empty()) {
    for (unsigned R = 0; R != NP; ++R)
      unlink((Dir + "/rank" + std::to_string(R) + ".sock").c_str());
    rmdir(Dir.c_str());
  }

  rt::MergedRun Merged;
  for (unsigned R = 0; R != NP; ++R)
    EXPECT_EQ(Errs[R], "") << "rank " << R;
  std::vector<rt::RankDump> Parsed;
  for (unsigned R = 0; R != NP; ++R) {
    rt::RankDump D;
    std::string Err;
    EXPECT_TRUE(rt::parseRankDump(Dumps[R], D, Err)) << Err;
    Parsed.push_back(std::move(D));
  }
  std::string Err;
  EXPECT_TRUE(rt::mergeRankDumps(SP, RC, Parsed, Merged, Err)) << Err;
  return Merged;
}

void expectBitIdentical(const rt::MergedRun &Dist,
                        const spmd::RunResult &Ref,
                        const spmd::Interpreter &I) {
  EXPECT_EQ(Dist.R.Messages, Ref.Messages);
  EXPECT_EQ(Dist.R.Bytes, Ref.Bytes);
  EXPECT_EQ(Dist.R.StmtInstances, Ref.StmtInstances);
  EXPECT_EQ(Dist.R.SpanCopies, Ref.SpanCopies);
  EXPECT_EQ(Dist.R.PackedCopies, Ref.PackedCopies);
  EXPECT_EQ(Dist.R.InPlaceRuntimeUpgrades, Ref.InPlaceRuntimeUpgrades);
  EXPECT_EQ(Dist.R.Valid, Ref.Valid);
  ASSERT_EQ(Dist.R.FinalAccums.size(), Ref.FinalAccums.size());
  for (const auto &[Name, V] : Ref.FinalAccums) {
    auto It = Dist.R.FinalAccums.find(Name);
    ASSERT_NE(It, Dist.R.FinalAccums.end()) << Name;
    EXPECT_EQ(0, std::memcmp(&It->second, &V, sizeof(double))) << Name;
  }
  for (const auto &[Name, A] : Dist.Arrays) {
    const spmd::ArrayStore &B = I.array(Name);
    ASSERT_EQ(A.size(), B.size()) << Name;
    EXPECT_EQ(0, std::memcmp(A.values().data(), B.values().data(),
                             A.size() * sizeof(double)))
        << Name;
  }
}

void checkApp(const Subject &S, const std::vector<int64_t> &Shape) {
  auto Compiled = core::compileProgram(*S.App.Prog);
  ASSERT_TRUE(Compiled);
  const spmd::SpmdProgram &SP = Compiled->Program;

  spmd::RunConfig RC;
  RC.ProcExtents[S.App.ProcArrayName] = Shape;

  spmd::Interpreter I(SP, RC);
  S.App.Setup(I);
  spmd::RunResult Ref = I.run();
  ASSERT_TRUE(Ref.Valid);

  rt::MergedRun Loop = runDistributed(SP, S.App, RC, Mesh::Loopback);
  expectBitIdentical(Loop, Ref, I);

  rt::MergedRun Sock = runDistributed(SP, S.App, RC, Mesh::Socket);
  expectBitIdentical(Sock, Ref, I);

  // Loopback and socket must also agree with each other on the merged
  // counters (they already both equal Ref; this documents the oracle).
  EXPECT_EQ(Loop.R.Messages, Sock.R.Messages);
  EXPECT_EQ(Loop.R.Bytes, Sock.R.Bytes);
}

TEST(RtExec, JacobiP1) { checkApp(subjects()[0], subjects()[0].Shape1); }
TEST(RtExec, JacobiP4) { checkApp(subjects()[0], subjects()[0].Shape4); }
TEST(RtExec, TomcatvP1) { checkApp(subjects()[1], subjects()[1].Shape1); }
TEST(RtExec, TomcatvP4) { checkApp(subjects()[1], subjects()[1].Shape4); }
TEST(RtExec, ErlebacherP1) { checkApp(subjects()[2], subjects()[2].Shape1); }
TEST(RtExec, ErlebacherP4) { checkApp(subjects()[2], subjects()[2].Shape4); }
TEST(RtExec, GaussP1) { checkApp(subjects()[3], subjects()[3].Shape1); }
TEST(RtExec, GaussP4) { checkApp(subjects()[3], subjects()[3].Shape4); }

/// Every collective algorithm must leave the distributed run bit-identical
/// to the in-process engine at P=8 — the algorithms differ only in their
/// physical frame schedule, which the merged CollStats counters expose:
/// recursive doubling must cut the bottleneck rank's frame count against
/// the naive gather/broadcast.
TEST(RtExec, CollectiveAlgorithmsBitIdenticalAtP8) {
  Subject S = std::move(subjects()[0]); // jacobi on a 2x4 mesh
  auto Compiled = core::compileProgram(*S.App.Prog);
  ASSERT_TRUE(Compiled);
  const spmd::SpmdProgram &SP = Compiled->Program;
  spmd::RunConfig RC;
  RC.ProcExtents[S.App.ProcArrayName] = {2, 4};

  spmd::Interpreter I(SP, RC);
  S.App.Setup(I);
  spmd::RunResult Ref = I.run();
  ASSERT_TRUE(Ref.Valid);

  std::map<std::string, uint64_t> MaxRankFrames;
  for (const char *Algo : {"naive", "ring", "rdbl", "tree"}) {
    setenv("DHPF_COLL", Algo, 1);
    rt::MergedRun Loop = runDistributed(SP, S.App, RC, Mesh::Loopback);
    expectBitIdentical(Loop, Ref, I);
    rt::MergedRun Sock = runDistributed(SP, S.App, RC, Mesh::Socket);
    expectBitIdentical(Sock, Ref, I);
    // The physical schedule is a property of the algorithm, not the
    // transport it runs over.
    EXPECT_EQ(Loop.R.CollMessages, Sock.R.CollMessages) << Algo;
    EXPECT_EQ(Loop.R.CollBytes, Sock.R.CollBytes) << Algo;
    EXPECT_EQ(Loop.MaxRankCollMessages, Sock.MaxRankCollMessages) << Algo;
    EXPECT_GT(Loop.R.CollMessages, 0u) << Algo;
    MaxRankFrames[Algo] = Loop.MaxRankCollMessages;
  }
  unsetenv("DHPF_COLL");
  EXPECT_LT(MaxRankFrames["rdbl"], MaxRankFrames["naive"]);
  EXPECT_LT(MaxRankFrames["tree"], MaxRankFrames["naive"]);
}

/// Rank-dump parser: malformed dumps are line-numbered errors, and a dump
/// cut off mid-array is flagged as a likely mid-dump death.
TEST(RtDump, ParserDiagnosesTruncation) {
  rt::RankDump D;
  std::string Err;
  EXPECT_FALSE(rt::parseRankDump("", D, Err));
  EXPECT_NE(Err.find("missing rankdump header"), std::string::npos) << Err;

  std::string NoEnd = "rankdump 0 2\nvalid 1\n";
  EXPECT_FALSE(rt::parseRankDump(NoEnd, D, Err));
  EXPECT_NE(Err.find("mid-dump"), std::string::npos) << Err;

  std::string CutArray =
      "rankdump 0 2\nvalid 1\narray U 3\ne 0 0000000000000000\n";
  EXPECT_FALSE(rt::parseRankDump(CutArray, D, Err));
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;

  std::string BadLine = "rankdump 0 2\nwhatisthis 5\n";
  EXPECT_FALSE(rt::parseRankDump(BadLine, D, Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

/// Per-rank trace buffers wired through RankConfig::Trace: the engine
/// emits one "send" complete event at exactly the sites that bump
/// RunResult::Messages, so per-rank send-span counts equal the per-rank
/// message counters, the merged timeline's total equals the summed
/// counter, and all four rank lanes survive the merge. With DHPF_OBS=OFF
/// the same run records nothing at all.
TEST(RtExec, TraceSendEventsMatchMessageCounters) {
  Subject S = std::move(subjects()[0]); // jacobi on a 2x2 mesh
  auto Compiled = core::compileProgram(*S.App.Prog);
  ASSERT_TRUE(Compiled);
  const spmd::SpmdProgram &SP = Compiled->Program;
  spmd::RunConfig RC;
  RC.ProcExtents[S.App.ProcArrayName] = {2, 2};

  net::LoopbackMesh Mesh(4);
  obs::TraceBuffer Bufs[4];
  uint64_t Msgs[4] = {};
  std::vector<std::string> Errs(4);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != 4; ++R)
    Ts.emplace_back([&, R] {
      try {
        Bufs[R].setLane(R + 1, "rank " + std::to_string(R));
        Bufs[R].start();
        auto T = Mesh.transport(R);
        rt::RankConfig RCfg;
        RCfg.Run = RC;
        RCfg.Rank = R;
        RCfg.Trace = &Bufs[R];
        rt::RankEngine E(SP, RCfg, *T);
        S.App.Setup(E);
        Msgs[R] = E.run().Messages;
      } catch (const std::exception &Ex) {
        Errs[R] = Ex.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  for (unsigned R = 0; R != 4; ++R)
    ASSERT_EQ(Errs[R], "") << "rank " << R;

  if (!obs::compiledIn()) {
    for (const obs::TraceBuffer &B : Bufs)
      EXPECT_EQ(B.eventCount(), 0u);
    return;
  }

  uint64_t TotalSends = 0, TotalRecvs = 0, TotalMsgs = 0;
  for (unsigned R = 0; R != 4; ++R) {
    uint64_t Sends = 0;
    for (const obs::TraceEvent &E : Bufs[R].snapshot()) {
      Sends += E.Name == "send" && E.Ph == 'X';
      TotalRecvs += E.Name == "recv" && E.Ph == 'X';
    }
    EXPECT_EQ(Sends, Msgs[R]) << "rank " << R;
    TotalSends += Sends;
    TotalMsgs += Msgs[R];
  }
  EXPECT_GT(TotalSends, 0u);
  EXPECT_GT(TotalRecvs, 0u);
  EXPECT_EQ(TotalSends, TotalMsgs);

  // The stitched timeline: one valid document, every rank's lane labeled,
  // and event counts preserved by the merge.
  std::vector<std::string> Docs;
  for (const obs::TraceBuffer &B : Bufs)
    Docs.push_back(B.chromeJson());
  std::string Merged = obs::mergeChromeTraces(Docs);
  for (unsigned R = 0; R != 4; ++R)
    EXPECT_NE(Merged.find("\"name\": \"rank " + std::to_string(R) + "\""),
              std::string::npos)
        << "lane for rank " << R << " missing from merged trace";
  uint64_t MergedSends = 0;
  for (size_t Pos = 0;
       (Pos = Merged.find("\"name\": \"send\"", Pos)) != std::string::npos;
       ++Pos)
    ++MergedSends;
  EXPECT_EQ(MergedSends, TotalSends);
}

/// Fault-injected distributed run: some rank must die with a named-rank
/// TransportError, and the whole mesh must wind down within the watchdog —
/// this test hanging IS the failure mode it guards against. The injected
/// fault must also land in the trace as an instant event naming the
/// offending rank and the action.
TEST(RtExec, FaultInjectionDiagnosesNeverHangs) {
  setenv("DHPF_NET_FAULT", "corrupt=1,seed=11,after=0", 1);
  setenv("DHPF_NET_TIMEOUT_MS", "2000", 1);
  obs::TraceBuffer &GB = obs::TraceBuffer::global();
  GB.clear();
  GB.start();
  auto T0 = std::chrono::steady_clock::now();

  Subject S = std::move(subjects()[0]); // jacobi
  auto Compiled = core::compileProgram(*S.App.Prog);
  ASSERT_TRUE(Compiled);
  const spmd::SpmdProgram &SP = Compiled->Program;
  spmd::RunConfig RC;
  RC.ProcExtents[S.App.ProcArrayName] = {2, 2};

  net::LoopbackMesh Mesh(4);
  std::vector<std::string> Errs(4);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != 4; ++R)
    Ts.emplace_back([&, R] {
      try {
        auto T = Mesh.transport(R);
        rt::RankConfig RCfg;
        RCfg.Run = RC;
        RCfg.Rank = R;
        rt::RankEngine E(SP, RCfg, *T);
        S.App.Setup(E);
        E.run();
      } catch (const net::TransportError &Ex) {
        Errs[R] = Ex.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  unsetenv("DHPF_NET_FAULT");
  unsetenv("DHPF_NET_TIMEOUT_MS");
  GB.stop();

  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  EXPECT_LT(Secs, 30.0) << "mesh did not wind down under the watchdog";
  bool AnyNamed = false;
  for (const std::string &E : Errs)
    AnyNamed |= E.find("rank") != std::string::npos;
  EXPECT_TRUE(AnyNamed) << "no rank reported a named-peer diagnostic";

  if (obs::compiledIn()) {
    // The transport recorded the injection itself: an instant "fault"
    // event whose args name the offending rank and the action taken.
    bool FaultSeen = false;
    for (const obs::TraceEvent &E : GB.snapshot()) {
      if (E.Name != "fault" || E.Ph != 'i')
        continue;
      FaultSeen = true;
      EXPECT_NE(E.Args.find("\"rank\": "), std::string::npos) << E.Args;
      EXPECT_NE(E.Args.find("\"action\": \"corrupt\""), std::string::npos)
          << E.Args;
    }
    EXPECT_TRUE(FaultSeen) << "no fault instant event in the trace";
  }
  GB.clear();
}

} // namespace
