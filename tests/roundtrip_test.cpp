//===- tests/roundtrip_test.cpp - Serialization round-trip properties ----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The round-trip properties behind the dhpfc file pipeline, over the four
/// Figure 7 benchmarks:
///
///   1. HPF text: builder program -> print -> reparse -> reprint is a
///      fixpoint, and recompiling the reparsed program produces a
///      bit-identical serialized SPMD program.
///   2. SPMD text: serialize -> parse -> serialize is a fixpoint.
///   3. Execution: the program reconstructed from its serialized form runs
///      bit-identically to the directly compiled one (same simulated
///      clock, messages, bytes, accumulators, and array bits) on both
///      engines.
///
//===----------------------------------------------------------------------===//

#include "apps/Registry.h"
#include "core/Compiler.h"
#include "core/InPlace.h"
#include "hpf/HpfParser.h"
#include "hpf/HpfPrinter.h"
#include "pset/Relation.h"
#include "spmd/Interp.h"
#include "spmd/Serialize.h"

#include "gtest/gtest.h"

#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace dhpf;

namespace {

struct Subject {
  apps::AppInstance App;
  std::vector<int64_t> ProcShape;
};

std::vector<Subject> subjects() {
  std::vector<Subject> S;
  S.push_back({apps::makeJacobi(8, 2), {2, 2}});
  S.push_back({apps::makeTomcatv(10, 2), {2}});
  S.push_back({apps::makeErlebacher(8, 2), {2}});
  S.push_back({apps::makeGauss(8), {2, 2}});
  return S;
}

struct RunSnapshot {
  spmd::RunResult Result;
  std::map<std::string, std::vector<double>> Arrays;
};

RunSnapshot runOnce(const spmd::SpmdProgram &SP, const apps::AppInstance &App,
                    const std::vector<int64_t> &Shape,
                    spmd::EngineKind Engine) {
  spmd::RunConfig RC;
  RC.ProcExtents[App.ProcArrayName] = Shape;
  RC.Engine = Engine;
  spmd::Interpreter I(SP, RC);
  App.Setup(I);
  RunSnapshot Snap;
  Snap.Result = I.run();
  EXPECT_TRUE(Snap.Result.Valid);
  for (const auto &A : SP.Source->arrays())
    Snap.Arrays[A.first] = I.array(A.first).values();
  return Snap;
}

void expectBitIdentical(const RunSnapshot &A, const RunSnapshot &B) {
  EXPECT_EQ(A.Result.Messages, B.Result.Messages);
  EXPECT_EQ(A.Result.Bytes, B.Result.Bytes);
  EXPECT_EQ(A.Result.StmtInstances, B.Result.StmtInstances);
  EXPECT_EQ(A.Result.ElapsedSeconds, B.Result.ElapsedSeconds);
  EXPECT_EQ(A.Result.FinalAccums.size(), B.Result.FinalAccums.size());
  for (const auto &Acc : A.Result.FinalAccums) {
    auto It = B.Result.FinalAccums.find(Acc.first);
    ASSERT_NE(It, B.Result.FinalAccums.end()) << Acc.first;
    EXPECT_EQ(0, std::memcmp(&Acc.second, &It->second, sizeof(double)))
        << "accumulator " << Acc.first;
  }
  ASSERT_EQ(A.Arrays.size(), B.Arrays.size());
  for (const auto &Arr : A.Arrays) {
    auto It = B.Arrays.find(Arr.first);
    ASSERT_NE(It, B.Arrays.end()) << Arr.first;
    ASSERT_EQ(Arr.second.size(), It->second.size()) << Arr.first;
    EXPECT_EQ(0, std::memcmp(Arr.second.data(), It->second.data(),
                             Arr.second.size() * sizeof(double)))
        << "array " << Arr.first;
  }
}

TEST(RoundTrip, HpfPrintReparseReprintIsFixpoint) {
  for (const Subject &S : subjects()) {
    std::string Text = hpf::printHpfProgram(*S.App.Prog);
    DiagnosticEngine Diags;
    auto Reparsed = hpf::parseHpfProgram(Text, Diags, S.App.Name + ".hpf");
    ASSERT_TRUE(static_cast<bool>(Reparsed)) << S.App.Name << "\n"
                                             << Diags.str();
    EXPECT_FALSE(Diags.hasErrors());
    EXPECT_EQ(Text, hpf::printHpfProgram(**Reparsed)) << S.App.Name;
  }
}

TEST(RoundTrip, RecompiledReparsedProgramSerializesIdentically) {
  for (const Subject &S : subjects()) {
    auto Direct = core::compileProgram(*S.App.Prog);
    ASSERT_TRUE(Direct);
    std::string DirectText = spmd::serializeSpmdProgram(Direct->Program);

    DiagnosticEngine Diags;
    auto Reparsed = hpf::parseHpfProgram(hpf::printHpfProgram(*S.App.Prog),
                                         Diags, S.App.Name + ".hpf");
    ASSERT_TRUE(static_cast<bool>(Reparsed)) << Diags.str();
    auto FromText = core::compileProgram(**Reparsed);
    ASSERT_TRUE(FromText);
    EXPECT_EQ(DirectText, spmd::serializeSpmdProgram(FromText->Program))
        << S.App.Name;
  }
}

TEST(RoundTrip, SerializeParseSerializeIsFixpoint) {
  for (const Subject &S : subjects()) {
    auto Out = core::compileProgram(*S.App.Prog);
    ASSERT_TRUE(Out);
    std::string Text = spmd::serializeSpmdProgram(Out->Program);
    DiagnosticEngine Diags;
    auto Parsed = spmd::parseSpmdProgram(Text, Diags, S.App.Name + ".spmd");
    ASSERT_TRUE(Parsed) << S.App.Name << "\n" << Diags.str();
    EXPECT_FALSE(Diags.hasErrors());
    EXPECT_EQ(Text, spmd::serializeSpmdProgram(*Parsed)) << S.App.Name;
  }
}

TEST(RoundTrip, ParsedProgramRunsBitIdentically) {
  for (const Subject &S : subjects()) {
    auto Out = core::compileProgram(*S.App.Prog);
    ASSERT_TRUE(Out);
    DiagnosticEngine Diags;
    auto Parsed = spmd::parseSpmdProgram(
        spmd::serializeSpmdProgram(Out->Program), Diags, S.App.Name);
    ASSERT_TRUE(Parsed) << Diags.str();
    // The serialized form cannot carry the analysis-library function
    // pointer; the file consumer (dhpfc) wires it back the same way.
    Parsed->InPlaceRuntimeCheck = &core::checkInPlaceAtRuntime;

    for (spmd::EngineKind E :
         {spmd::EngineKind::Tree, spmd::EngineKind::Bytecode}) {
      RunSnapshot Direct = runOnce(Out->Program, S.App, S.ProcShape, E);
      RunSnapshot FromText = runOnce(*Parsed, S.App, S.ProcShape, E);
      expectBitIdentical(Direct, FromText);
      std::string Err;
      if (S.App.Check) {
        spmd::RunConfig RC;
        RC.ProcExtents[S.App.ProcArrayName] = S.ProcShape;
        RC.Engine = E;
        spmd::Interpreter I(*Parsed, RC);
        S.App.Setup(I);
        ASSERT_TRUE(I.run().Valid);
        EXPECT_TRUE(S.App.Check(I, Err)) << S.App.Name << ": " << Err;
      }
    }
  }
}

TEST(RoundTrip, RelationTextWithGeneratedNamesReparses) {
  // Compiler-generated parameters contain '$' (block sizes like B$T$0);
  // the set parser must accept toString() output for the embedded
  // relations of the .spmd format.
  Relation R = parseRelation(
      "[B$T$0,mv0] -> { [a0] : a0 >= mv0 && B$T$0 + mv0 >= a0 + 1 }");
  DiagnosticEngine Diags;
  auto Again = parseRelation(R.toString(), Diags);
  ASSERT_TRUE(static_cast<bool>(Again)) << Diags.str();
  EXPECT_EQ(R.toString(), Again->toString());
}

} // namespace
