//===- tests/e2e_compile_run_test.cpp - Compile-and-execute tests --------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// End-to-end: mini-HPF programs are compiled by the set-based compiler and
// executed on the simulated message-passing machine. The interpreter
// verifies that processors only read owned or received data and that every
// message matches the receiver's expectation; the tests additionally check
// the numerical results against serial references. This exercises the whole
// pipeline: CPMap, Figure 3 communication sets, loop splitting, code
// generation, the VP model for symbolic processor counts, and the
// simulator.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "spmd/Interp.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

namespace {

/// 1-D two-array stencil: A(i) = B(i-1) + B(i+1), i in [2, 15].
Program stencilProgram(bool SymbolicProcs) {
  Program P("stencil1d");
  if (SymbolicProcs)
    P.addProcs("P", {Program::procDimSym("NP")});
  else
    P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 16)});
  P.addArray("A", {range(1, 16)});
  P.addArray("B", {range(1, 16)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addAlign({"B", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distBlock()}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "stencil";
  N.Loops = {loop("i", 2, 15)};
  Statement S;
  S.Write = ref("A", {"i"});
  S.Reads = {ref("B", {AffineExpr("i") - 1}), ref("B", {AffineExpr("i") + 1})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);
  return P;
}

void runStencil(const Program &P, CompilerOptions Opts,
                const std::map<std::string, std::vector<int64_t>> &Procs) {
  auto Compiled = compileProgram(P, Opts);
  RunConfig RC;
  RC.ProcExtents = Procs;
  Interpreter I(Compiled->Program, RC);
  I.setSemantics(0, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &) {
    return R[0] + R[1];
  });
  I.initArray("B", [](const std::vector<int64_t> &Idx) {
    return double(Idx[0] * Idx[0]);
  });
  RunResult RR = I.run();
  for (const std::string &V : RR.Violations)
    ADD_FAILURE() << V;
  EXPECT_TRUE(RR.Valid);
  EXPECT_EQ(RR.StmtInstances, 14u);
  const ArrayStore &A = I.array("A");
  for (int64_t Idx = 2; Idx <= 15; ++Idx) {
    double Expect = double((Idx - 1) * (Idx - 1) + (Idx + 1) * (Idx + 1));
    EXPECT_DOUBLE_EQ(A.at(A.flatten({Idx})), Expect) << "i=" << Idx;
  }
  EXPECT_GT(RR.Messages, 0u); // boundary exchange happened
}

TEST(EndToEnd, Stencil1DBlockFixed) {
  runStencil(stencilProgram(false), {}, {{"P", {4}}});
}

TEST(EndToEnd, Stencil1DNoSplitting) {
  CompilerOptions Opts;
  Opts.LoopSplitting = false;
  runStencil(stencilProgram(false), Opts, {{"P", {4}}});
}

TEST(EndToEnd, Stencil1DNoCoalescing) {
  CompilerOptions Opts;
  Opts.Coalescing = false;
  runStencil(stencilProgram(false), Opts, {{"P", {4}}});
}

TEST(EndToEnd, Stencil1DSymbolicProcs) {
  // Compile once for an unknown number of processors (VP block model),
  // execute with 4 and with 2.
  Program P = stencilProgram(true);
  auto Compiled = compileProgram(P);
  for (int64_t NP : {1, 2, 4}) {
    RunConfig RC;
    RC.ProcExtents = {{"P", {NP}}};
    Interpreter I(Compiled->Program, RC);
    I.setSemantics(0, [](const std::vector<double> &R,
                         const std::vector<int64_t> &, AccumMap &) {
      return R[0] + R[1];
    });
    I.initArray("B", [](const std::vector<int64_t> &Idx) {
      return double(Idx[0]);
    });
    RunResult RR = I.run();
    for (const std::string &V : RR.Violations)
      ADD_FAILURE() << "NP=" << NP << ": " << V;
    const ArrayStore &A = I.array("A");
    for (int64_t Idx = 2; Idx <= 15; ++Idx)
      EXPECT_DOUBLE_EQ(A.at(A.flatten({Idx})), 2.0 * Idx)
          << "NP=" << NP << " i=" << Idx;
  }
}

TEST(EndToEnd, Stencil1DCyclicSymbolic) {
  // CYCLIC distribution with a symbolic processor count: exercises the
  // cyclic VP model with Figure 6's strided VP loops.
  Program P("stencilcyc");
  P.addProcs("P", {Program::procDimSym("NP")});
  P.addTemplate("T", {range(1, 16)});
  P.addArray("A", {range(1, 16)});
  P.addArray("B", {range(1, 16)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addAlign({"B", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distCyclic()}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "stencil";
  N.Loops = {loop("i", 2, 15)};
  Statement S;
  S.Write = ref("A", {"i"});
  S.Reads = {ref("B", {AffineExpr("i") - 1}),
             ref("B", {AffineExpr("i") + 1})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);

  auto Compiled = compileProgram(P);
  for (int64_t NP : {1, 2, 3, 4}) {
    RunConfig RC;
    RC.ProcExtents = {{"P", {NP}}};
    Interpreter I(Compiled->Program, RC);
    I.setSemantics(0, [](const std::vector<double> &R,
                         const std::vector<int64_t> &, AccumMap &) {
      return R[0] + R[1];
    });
    I.initArray("B", [](const std::vector<int64_t> &Idx) {
      return double(3 * Idx[0] + 1);
    });
    RunResult RR = I.run();
    for (const std::string &V : RR.Violations)
      ADD_FAILURE() << "NP=" << NP << ": " << V;
    const ArrayStore &A = I.array("A");
    for (int64_t Idx = 2; Idx <= 15; ++Idx)
      EXPECT_DOUBLE_EQ(A.at(A.flatten({Idx})), double(6 * Idx + 2))
          << "NP=" << NP << " i=" << Idx;
  }
}

TEST(EndToEnd, Jacobi2DBlockBlock) {
  // One Jacobi sweep on (BLOCK,BLOCK) over 2x2 processors.
  Program P("jacobi2d");
  P.addProcs("PR", {Program::procDim(2), Program::procDim(2)});
  P.addTemplate("T", {range(1, 12), range(1, 12)});
  P.addArray("U", {range(1, 12), range(1, 12)});
  P.addArray("V", {range(1, 12), range(1, 12)});
  P.addAlign({"U", "T", {alignDim(0), alignDim(1)}});
  P.addAlign({"V", "T", {alignDim(0), alignDim(1)}});
  P.addDistribute({"T", "PR", {distBlock(), distBlock()}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "sweep";
  N.Loops = {loop("i", 2, 11), loop("j", 2, 11)};
  Statement S;
  S.Write = ref("V", {"i", "j"});
  S.Reads = {ref("U", {AffineExpr("i") - 1, "j"}),
             ref("U", {AffineExpr("i") + 1, "j"}),
             ref("U", {"i", AffineExpr("j") - 1}),
             ref("U", {"i", AffineExpr("j") + 1})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);

  auto Compiled = compileProgram(P);
  EXPECT_GT(Compiled->NumCommEvents, 0u);
  RunConfig RC;
  Interpreter I(Compiled->Program, RC);
  I.setSemantics(0, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &) {
    return 0.25 * (R[0] + R[1] + R[2] + R[3]);
  });
  auto Init = [](const std::vector<int64_t> &Idx) {
    return double(Idx[0] * 100 + Idx[1]);
  };
  I.initArray("U", Init);
  RunResult RR = I.run();
  for (const std::string &V : RR.Violations)
    ADD_FAILURE() << V;
  EXPECT_TRUE(RR.Valid);
  const ArrayStore &V = I.array("V");
  for (int64_t Ii = 2; Ii <= 11; ++Ii)
    for (int64_t Jj = 2; Jj <= 11; ++Jj) {
      double Expect = 0.25 * (Init({Ii - 1, Jj}) + Init({Ii + 1, Jj}) +
                              Init({Ii, Jj - 1}) + Init({Ii, Jj + 1}));
      EXPECT_DOUBLE_EQ(V.at(V.flatten({Ii, Jj})), Expect)
          << Ii << "," << Jj;
    }
}

TEST(EndToEnd, TimeLoopWithReduction) {
  // Iterated relaxation with a convergence reduction: u(i) <- avg of
  // neighbours; diff accumulated per proc and max-reduced.
  Program P("relax");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 16)});
  P.addArray("U", {range(1, 16)});
  P.addArray("V", {range(1, 16)});
  P.addAlign({"U", "T", {alignDim(0)}});
  P.addAlign({"V", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distBlock()}});
  Procedure &Proc = P.addProcedure("main");
  Phase &Loop0 = P.addSeqLoop(Proc, "t", 3);
  {
    ComputeNest N;
    N.Name = "avg";
    N.Loops = {loop("i", 2, 15)};
    Statement S;
    S.Write = ref("V", {"i"});
    S.Reads = {ref("U", {AffineExpr("i") - 1}),
               ref("U", {AffineExpr("i") + 1}), ref("U", {"i"})};
    S.SemanticsId = 0;
    N.Stmts = {S};
    P.addNestIn(Loop0, N);
  }
  {
    ComputeNest N;
    N.Name = "copyback";
    N.Loops = {loop("i", 2, 15)};
    Statement S;
    S.Write = ref("U", {"i"});
    S.Reads = {ref("V", {"i"})};
    S.SemanticsId = 1;
    N.Stmts = {S};
    P.addNestIn(Loop0, N);
  }
  Reduction R;
  R.O = Reduction::Op::Max;
  R.Name = "diff";
  P.addReductionIn(Loop0, R);

  auto Compiled = compileProgram(P);
  RunConfig RC;
  Interpreter I(Compiled->Program, RC);
  I.setSemantics(0, [](const std::vector<double> &Rd,
                       const std::vector<int64_t> &, AccumMap &Acc) {
    double NewV = (Rd[0] + Rd[1] + Rd[2]) / 3.0;
    Acc["diff"] = std::max(Acc["diff"], std::abs(NewV - Rd[2]));
    return NewV;
  });
  I.setSemantics(1, [](const std::vector<double> &Rd,
                       const std::vector<int64_t> &, AccumMap &) {
    return Rd[0];
  });
  I.initArray("U", [](const std::vector<int64_t> &Idx) {
    return Idx[0] == 8 ? 16.0 : 0.0;
  });
  RunResult RR = I.run();
  for (const std::string &V : RR.Violations)
    ADD_FAILURE() << V;
  EXPECT_TRUE(RR.Valid);

  // Serial reference.
  std::vector<double> U(17, 0.0), V(17, 0.0);
  U[8] = 16.0;
  for (int T = 0; T != 3; ++T) {
    for (int Ii = 2; Ii <= 15; ++Ii)
      V[Ii] = (U[Ii - 1] + U[Ii + 1] + U[Ii]) / 3.0;
    for (int Ii = 2; Ii <= 15; ++Ii)
      U[Ii] = V[Ii];
  }
  const ArrayStore &AU = I.array("U");
  for (int64_t Ii = 2; Ii <= 15; ++Ii)
    EXPECT_NEAR(AU.at(AU.flatten({Ii})), U[Ii], 1e-12) << "i=" << Ii;
  EXPECT_GT(RR.FinalAccums.at("diff"), 0.0);
}

TEST(EndToEnd, NonOwnerComputesWriteComm) {
  // ON_HOME B(i-1): iteration i runs on B(i-1)'s owner; writes to A(i)
  // cross block boundaries and must be communicated to A's owner.
  Program P("nonowner");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 16)});
  P.addArray("A", {range(1, 16)});
  P.addArray("B", {range(1, 16)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addAlign({"B", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distBlock()}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "shift";
  N.Loops = {loop("i", 2, 16)};
  Statement S;
  S.Write = ref("A", {"i"});
  S.Reads = {ref("B", {AffineExpr("i") - 1})};
  S.OnHome = {ref("B", {AffineExpr("i") - 1})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);

  auto Compiled = compileProgram(P);
  RunConfig RC;
  Interpreter I(Compiled->Program, RC);
  I.setSemantics(0, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &) {
    return 2.0 * R[0];
  });
  I.initArray("B",
              [](const std::vector<int64_t> &Idx) { return double(Idx[0]); });
  RunResult RR = I.run();
  for (const std::string &V : RR.Violations)
    ADD_FAILURE() << V;
  EXPECT_TRUE(RR.Valid);
  const ArrayStore &A = I.array("A");
  for (int64_t Ii = 2; Ii <= 16; ++Ii)
    EXPECT_DOUBLE_EQ(A.at(A.flatten({Ii})), 2.0 * (Ii - 1)) << Ii;
  EXPECT_GT(RR.Messages, 0u);
}

TEST(EndToEnd, PipelinedPlacement) {
  // A recurrence along i: A(i,j) = A(i-1,j) + B(i,j) with (BLOCK,*) rows.
  // Communication cannot be vectorized out of the i loop (VectorizeLevel =
  // 1): messages flow inside the sequential i loop (a pipeline).
  Program P("pipe");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 8), range(1, 8)});
  P.addArray("A", {range(1, 8), range(1, 8)});
  P.addArray("B", {range(1, 8), range(1, 8)});
  P.addAlign({"A", "T", {alignDim(0), alignDim(1)}});
  P.addAlign({"B", "T", {alignDim(0), alignDim(1)}});
  P.addDistribute({"T", "P", {distBlock(), distStar()}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "sweep";
  N.Loops = {loop("i", 2, 8), loop("j", 1, 8)};
  N.VectorizeLevel = 1; // the i-carried dependence blocks hoisting
  Statement S;
  S.Write = ref("A", {"i", "j"});
  S.Reads = {ref("A", {AffineExpr("i") - 1, "j"}), ref("B", {"i", "j"})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);

  auto Compiled = compileProgram(P);
  RunConfig RC;
  Interpreter I(Compiled->Program, RC);
  I.setSemantics(0, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &) {
    return R[0] + R[1];
  });
  I.initArray("A", [](const std::vector<int64_t> &Idx) {
    return Idx[0] == 1 ? double(Idx[1]) : 0.0;
  });
  I.initArray("B", [](const std::vector<int64_t> &) { return 1.0; });
  RunResult RR = I.run();
  for (const std::string &V : RR.Violations)
    ADD_FAILURE() << V;
  EXPECT_TRUE(RR.Valid);
  // A(i,j) = j + (i-1).
  const ArrayStore &A = I.array("A");
  for (int64_t Ii = 2; Ii <= 8; ++Ii)
    for (int64_t Jj = 1; Jj <= 8; ++Jj)
      EXPECT_DOUBLE_EQ(A.at(A.flatten({Ii, Jj})), double(Jj + Ii - 1))
          << Ii << "," << Jj;
}

} // namespace
