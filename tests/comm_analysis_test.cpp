//===- tests/comm_analysis_test.cpp - Figure 3/4/5 analyses --------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Validates the communication-set equations (Figure 3), loop splitting
// (Figure 4), and computation partitioning on a 1-D block-distributed
// stencil:
//
//   processors P(4); template T(16); A, B identity-aligned; BLOCK
//   do i = 2, 15 : A(i) = B(i-1) + B(i+1)   (owner-computes)
//
// Processor p owns [4p+1, 4p+4]; it must send its boundary elements to its
// neighbors and receive theirs.
//
//===----------------------------------------------------------------------===//

#include "core/Comm.h"
#include "core/LoopSplit.h"
#include "core/Partition.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

namespace {

struct Stencil1D {
  Program P{"stencil1d"};
  ComputeNest Nest;
  MapBuilder MB{P};

  Stencil1D() {
    P.addProcs("P", {Program::procDim(4)});
    P.addTemplate("T", {range(1, 16)});
    P.addArray("A", {range(1, 16)});
    P.addArray("B", {range(1, 16)});
    P.addAlign({"A", "T", {alignDim(0)}});
    P.addAlign({"B", "T", {alignDim(0)}});
    P.addDistribute({"T", "P", {distBlock(), }});
    Nest.Name = "stencil";
    Nest.Loops = {loop("i", 2, 15)};
    Statement S;
    S.Write = ref("A", {"i"});
    S.Reads = {ref("B", {AffineExpr("i") - 1}),
               ref("B", {AffineExpr("i") + 1})};
    Nest.Stmts = {S};
  }
};

/// Evaluates membership of a parameterized set/map where the only
/// parameters are mv0 = M (plus none others).
bool containsWithM(const Relation &R, int64_t M, std::vector<int64_t> Out,
                   std::vector<int64_t> In = {}) {
  std::vector<int64_t> Params;
  for (const std::string &P : R.space().params()) {
    assert(P == myDimParam(0) && "unexpected parameter");
    (void)P;
    Params.push_back(M);
  }
  return R.contains(Out, Params, In);
}

TEST(Partition, OwnerComputesCPMap) {
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  EXPECT_FALSE(CP.Replicated);
  EXPECT_EQ(CP.ProcName, "P");
  // Processor 1 owns A[5..8] and executes exactly those iterations.
  for (int64_t I = 2; I <= 15; ++I)
    EXPECT_EQ(CP.CPMap.contains({I}, {}, {1}), I >= 5 && I <= 8) << I;
  // Processor 0 executes i in [2,4] only (i=1 is outside the loop).
  EXPECT_TRUE(CP.CPMap.contains({2}, {}, {0}));
  EXPECT_FALSE(CP.CPMap.contains({1}, {}, {0}));
}

TEST(Partition, CpIterSet) {
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  Relation Iters = cpIterSet(T.MB, T.Nest, CP);
  EXPECT_TRUE(containsWithM(Iters, 1, {5}));
  EXPECT_TRUE(containsWithM(Iters, 1, {8}));
  EXPECT_FALSE(containsWithM(Iters, 1, {9}));
  EXPECT_FALSE(containsWithM(Iters, 0, {1}));
  EXPECT_TRUE(containsWithM(Iters, 3, {15}));
}

TEST(Partition, GroupStatements) {
  Stencil1D T;
  CPInfo CP1 = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  CPInfo CP2 = CP1;
  std::vector<CPInfo> CPs = {CP1, CP2};
  auto G = groupStatements(CPs);
  EXPECT_EQ(G[0], G[1]);
  CPInfo Rep;
  Rep.Replicated = true;
  CPs.push_back(Rep);
  G = groupStatements(CPs);
  EXPECT_NE(G[1], G[2]);
}

CommEventInput stencilEvent(Stencil1D &T, const CPInfo &CP) {
  CommEventInput E;
  E.Array = "B";
  E.LoopVars = {"i"};
  E.PlacementLevel = 0; // fully vectorized out of the i loop
  for (const Reference &R : T.Nest.Stmts[0].Reads) {
    CommRef CR;
    CR.CPMap = CP.CPMap;
    CR.RefMap = T.MB.refMap(T.Nest, R);
    CR.IsWrite = false;
    E.Refs.push_back(std::move(CR));
  }
  return E;
}

TEST(CommAnalysis, StencilSendRecvSets) {
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  CommSets CS = computeCommSets(T.MB, stencilEvent(T, CP));

  // m = 1 owns B[5..8]. It must send B(5) to p0 (which reads it at i=4 via
  // B(i+1)) and B(8) to p2 (read at i=9 via B(i-1)).
  EXPECT_TRUE(containsWithM(CS.SendCommMap, 1, {5}, {0}));
  EXPECT_TRUE(containsWithM(CS.SendCommMap, 1, {8}, {2}));
  EXPECT_FALSE(containsWithM(CS.SendCommMap, 1, {6}, {0}));
  EXPECT_FALSE(containsWithM(CS.SendCommMap, 1, {5}, {2}));
  // No self-communication.
  EXPECT_FALSE(containsWithM(CS.SendCommMap, 1, {5}, {1}));
  // m = 1 receives B(4) from p0 and B(9) from p2.
  EXPECT_TRUE(containsWithM(CS.RecvCommMap, 1, {4}, {0}));
  EXPECT_TRUE(containsWithM(CS.RecvCommMap, 1, {9}, {2}));
  EXPECT_FALSE(containsWithM(CS.RecvCommMap, 1, {4}, {2}));
  EXPECT_FALSE(containsWithM(CS.RecvCommMap, 1, {8}, {0}));
  // Edge processors: p0 receives only from p1; p3 sends only to p2.
  EXPECT_TRUE(containsWithM(CS.RecvCommMap, 0, {5}, {1}));
  EXPECT_FALSE(containsWithM(CS.RecvCommMap, 0, {1}, {3}));
  EXPECT_TRUE(containsWithM(CS.SendCommMap, 3, {13}, {2}));
}

TEST(CommAnalysis, SendRecvAreDuals) {
  // Send(m -> q, a) must equal Recv(q <- m, a): swap roles via parameter
  // renaming is awkward, so check pointwise over all pairs.
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  CommSets CS = computeCommSets(T.MB, stencilEvent(T, CP));
  for (int64_t M = 0; M < 4; ++M)
    for (int64_t Q = 0; Q < 4; ++Q)
      for (int64_t A = 1; A <= 16; ++A)
        EXPECT_EQ(containsWithM(CS.SendCommMap, M, {A}, {Q}),
                  containsWithM(CS.RecvCommMap, Q, {A}, {M}))
            << "m=" << M << " q=" << Q << " a=" << A;
}

TEST(CommAnalysis, VectorizationPlacement) {
  // Placing communication inside the i loop (PlacementLevel = 1) yields
  // per-iteration sets parameterized by J0.
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  CommEventInput E = stencilEvent(T, CP);
  E.PlacementLevel = 1;
  CommSets CS = computeCommSets(T.MB, E);
  // At iteration J0 = 9 (executed by p2), p1 must send B(8).
  const Relation &S = CS.SendCommMap;
  std::vector<int64_t> Params;
  for (const std::string &P : S.space().params()) {
    if (P == myDimParam(0))
      Params.push_back(1);
    else if (P == placementParam(0))
      Params.push_back(9);
    else
      FAIL() << "unexpected parameter " << P;
  }
  EXPECT_TRUE(S.contains({8}, Params, {2}));
  EXPECT_FALSE(S.contains({5}, Params, {0}));
}

TEST(CommAnalysis, WriteCommunication) {
  // Non-owner-computes: ON_HOME B(i-1) makes the write A(i) non-local at
  // block boundaries; the writer must send the value to A's owner.
  Stencil1D T;
  Statement &S = T.Nest.Stmts[0];
  S.OnHome = {ref("B", {AffineExpr("i") - 1})};
  CPInfo CP = computeCP(T.MB, T.Nest, S);
  CommEventInput E;
  E.Array = "A";
  E.LoopVars = {"i"};
  CommRef CR;
  CR.CPMap = CP.CPMap;
  CR.RefMap = T.MB.refMap(T.Nest, S.Write);
  CR.IsWrite = true;
  E.Refs.push_back(CR);
  CommSets CS = computeCommSets(T.MB, E);
  // With ON_HOME B(i-1), iteration i runs on the owner of B(i-1); i = 4p+5
  // (the first iteration of p+1's block... actually i-1 = 4p+4 boundary):
  // p executes i = 4p+5 whose write A(4p+5) is owned by p+1.
  EXPECT_TRUE(containsWithM(CS.SendCommMap, 0, {5}, {1}));
  EXPECT_TRUE(containsWithM(CS.RecvCommMap, 1, {5}, {0}));
  EXPECT_FALSE(containsWithM(CS.SendCommMap, 0, {4}, {1}));
}

TEST(LoopSplitTest, StencilSections) {
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  Relation Iters = cpIterSet(T.MB, T.Nest, CP);
  Relation LayoutMine = [&] {
    LayoutResult L = T.MB.layout("B");
    return L.Map.bindDomainToParams({myDimParam(0)});
  }();
  std::vector<SplitRef> Refs;
  for (const Reference &R : T.Nest.Stmts[0].Reads)
    Refs.push_back({T.MB.refMap(T.Nest, R), LayoutMine, /*IsWrite=*/false});
  SplitSets SS = computeLoopSplit(Iters, Refs);
  // m = 1 executes [5,8]; i=5 reads B(4) (p0's), i=8 reads B(9) (p2's).
  EXPECT_TRUE(containsWithM(SS.LocalIters, 1, {6}));
  EXPECT_TRUE(containsWithM(SS.LocalIters, 1, {7}));
  EXPECT_FALSE(containsWithM(SS.LocalIters, 1, {5}));
  EXPECT_TRUE(containsWithM(SS.NLROIters, 1, {5}));
  EXPECT_TRUE(containsWithM(SS.NLROIters, 1, {8}));
  EXPECT_TRUE(SS.NLWOIters.isEmpty());
  EXPECT_TRUE(SS.NLRWIters.isEmpty());
  EXPECT_TRUE(SS.NLRWEmpty);
  // Sections partition cpIterSet.
  Relation All = SS.LocalIters.unionWith(SS.NLROIters)
                     .unionWith(SS.NLWOIters)
                     .unionWith(SS.NLRWIters);
  EXPECT_TRUE(All.isEqualTo(Iters));
  EXPECT_TRUE(SS.LocalIters.intersect(SS.NLROIters).isEmpty());
}

TEST(ActiveVP, StencilBusySet) {
  Stencil1D T;
  CPInfo CP = computeCP(T.MB, T.Nest, T.Nest.Stmts[0]);
  CommSets CS = computeCommSets(T.MB, stencilEvent(T, CP));
  // All four processors are busy and active (stencil reaches everyone).
  for (int64_t P = 0; P < 4; ++P) {
    EXPECT_TRUE(CS.BusyVPSet.contains({P}));
    EXPECT_TRUE(CS.ActiveSendVPSet.contains({P}));
    EXPECT_TRUE(CS.ActiveRecvVPSet.contains({P}));
  }
}

} // namespace
