//===- tests/spmd_native_test.cpp - Native engine unit tests --------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Three concerns of the native backend, smallest scope first:
//
//  1. Expression semantics across engines: one table of integer
//     expressions evaluated on negative operands and INT64 boundaries by
//     the tree oracle (cg::Expr), by compiled bytecode (bc::Prog), and —
//     when a C compiler is present — by the C text emitExprC generates,
//     compiled and dlopen'd through the kernel cache. Floor/ceil division
//     and floorMod are exactly where naive C codegen diverges from the
//     generated code's mathematical semantics, so every engine evaluates
//     every (expression, input) cell of the same table.
//
//  2. Bytecode compilation structure: run-constant folding collapses fully
//     bound expressions to a literal, and power-of-two divisions become
//     shift/mask opcodes while non-pow2 constants keep the checked forms.
//
//  3. Kernel-cache accounting: a warm run compiles nothing — the second
//     identical native run is served entirely from cache (hits move,
//     misses and compile invocations do not).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"
#include "obs/Metrics.h"
#include "spmd/Bytecode.h"
#include "spmd/KernelCache.h"
#include "spmd/NativeGen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

using namespace dhpf;
using namespace dhpf::spmd;

namespace {

constexpr int64_t I64Min = INT64_MIN;
constexpr int64_t I64Max = INT64_MAX;

/// One expression over variables x (slot 0) and y (slot 1), with the
/// input pairs every engine must agree on.
struct ExprCase {
  const char *Name;
  std::function<cg::Expr(cg::Expr X, cg::Expr Y)> Build;
  std::vector<std::pair<int64_t, int64_t>> Inputs;
};

cg::Expr makeX() { return cg::Expr::var(0, "x"); }
cg::Expr makeY() { return cg::Expr::var(1, "y"); }

/// The shared table. Inputs stay within the engines' defined domain: the
/// bytecode interpreter's checked adds assert on wraparound, so the
/// CeilDiv rows stop K-1 short of INT64_MAX and the affine row keeps its
/// products in range — everything else runs the full boundary set.
const std::vector<ExprCase> &exprTable() {
  static const std::vector<ExprCase> Table = {
      {"floordiv_pow2",
       [](cg::Expr X, cg::Expr) { return cg::Expr::floorDiv(X, 8); },
       {{I64Min, 0}, {I64Min + 1, 0}, {-17, 0}, {-9, 0}, {-8, 0}, {-7, 0},
        {-1, 0}, {0, 0}, {1, 0}, {7, 0}, {8, 0}, {9, 0}, {I64Max, 0}}},
      {"ceildiv_pow2",
       [](cg::Expr X, cg::Expr) { return cg::Expr::ceilDiv(X, 8); },
       {{I64Min, 0}, {-17, 0}, {-8, 0}, {-7, 0}, {-1, 0}, {0, 0}, {1, 0},
        {7, 0}, {8, 0}, {9, 0}, {I64Max - 7, 0}}},
      {"mod_pow2",
       [](cg::Expr X, cg::Expr) { return cg::Expr::mod(X, 8); },
       {{I64Min, 0}, {-9, 0}, {-8, 0}, {-7, 0}, {-1, 0}, {0, 0}, {1, 0},
        {7, 0}, {8, 0}, {I64Max, 0}}},
      {"floordiv_k7",
       [](cg::Expr X, cg::Expr) { return cg::Expr::floorDiv(X, 7); },
       {{I64Min, 0}, {-15, 0}, {-7, 0}, {-1, 0}, {0, 0}, {6, 0}, {7, 0},
        {I64Max, 0}}},
      {"ceildiv_k7",
       [](cg::Expr X, cg::Expr) { return cg::Expr::ceilDiv(X, 7); },
       {{I64Min, 0}, {-15, 0}, {-7, 0}, {-1, 0}, {0, 0}, {6, 0}, {7, 0},
        {I64Max, 0}}},
      {"mod_k7",
       [](cg::Expr X, cg::Expr) { return cg::Expr::mod(X, 7); },
       {{I64Min, 0}, {-8, 0}, {-7, 0}, {-1, 0}, {0, 0}, {6, 0}, {7, 0},
        {I64Max, 0}}},
      {"floordiv_expr",
       [](cg::Expr X, cg::Expr Y) { return cg::Expr::floorDivExpr(X, Y); },
       {{I64Min, 3}, {-7, 3}, {-1, 3}, {0, 3}, {7, 3}, {I64Max, 3},
        {-1, I64Max}, {I64Min, I64Max}}},
      {"mod_expr",
       [](cg::Expr X, cg::Expr Y) { return cg::Expr::modExpr(X, Y); },
       {{I64Min, 3}, {-7, 3}, {-1, 3}, {0, 3}, {7, 3}, {I64Max, 3},
        {-1, I64Max}, {I64Min, I64Max}}},
      {"min_max",
       [](cg::Expr X, cg::Expr Y) {
         return cg::Expr::max({cg::Expr::min({X, Y}), cg::Expr::constant(-4)});
       },
       {{I64Min, I64Max}, {I64Max, I64Min}, {-4, -4}, {-5, 3}, {3, -5},
        {0, 0}}},
      {"affine_negative",
       [](cg::Expr X, cg::Expr Y) {
         return cg::Expr::add(cg::Expr::mul(X, -3), cg::Expr::sub(Y, X));
       },
       {{-1000, 1000}, {1000, -1000}, {0, 0}, {-1, 1}, {1, -1},
        {123456789, -987654321}}},
  };
  return Table;
}

int64_t oracleEval(const ExprCase &C, int64_t X, int64_t Y) {
  std::vector<int64_t> Env = {X, Y};
  return C.Build(makeX(), makeY()).eval(Env);
}

TEST(NativeExpr, BytecodeMatchesTreeOracle) {
  for (const ExprCase &C : exprTable()) {
    bc::Prog P = bc::compileExpr(C.Build(makeX(), makeY()), {});
    std::vector<int64_t> Stack(P.depth() + 1, 0);
    for (auto [X, Y] : C.Inputs) {
      int64_t Regs[2] = {X, Y};
      EXPECT_EQ(P.eval(Regs, Stack.data()), oracleEval(C, X, Y))
          << C.Name << "(" << X << ", " << Y << ")";
    }
  }
}

// Compiling with every slot bound must fold each table expression to a
// single literal equal to the oracle value — including the negative and
// boundary inputs, where naive truncating folds would differ.
TEST(NativeExpr, FullyBoundExpressionsFoldToConstants) {
  for (const ExprCase &C : exprTable()) {
    for (auto [X, Y] : C.Inputs) {
      bc::Prog P =
          bc::compileExpr(C.Build(makeX(), makeY()), {{0, X}, {1, Y}});
      ASSERT_TRUE(P.isConst())
          << C.Name << "(" << X << ", " << Y << ") did not fold";
      EXPECT_EQ(P.constVal(), oracleEval(C, X, Y))
          << C.Name << "(" << X << ", " << Y << ")";
    }
  }
}

bool hasOp(const bc::Prog &P, bc::Op O) {
  for (const bc::Insn &I : P.Code)
    if (I.O == O)
      return true;
  return false;
}

// Power-of-two divisors strength-reduce to shift/mask opcodes; non-pow2
// divisors must keep the checked floor/ceil/mod forms (an arithmetic
// shift is only floor division when the divisor is a power of two).
TEST(NativeExpr, Pow2StrengthReductionSelectsShiftOpcodes) {
  bc::SlotConsts None;
  auto Compile = [&](cg::Expr E) { return bc::compileExpr(E, None); };

  EXPECT_TRUE(hasOp(Compile(cg::Expr::floorDiv(makeX(), 8)),
                    bc::Op::FloorDivPow2));
  EXPECT_TRUE(
      hasOp(Compile(cg::Expr::ceilDiv(makeX(), 8)), bc::Op::CeilDivPow2));
  EXPECT_TRUE(hasOp(Compile(cg::Expr::mod(makeX(), 8)), bc::Op::ModPow2));

  EXPECT_TRUE(
      hasOp(Compile(cg::Expr::floorDiv(makeX(), 7)), bc::Op::FloorDivK));
  EXPECT_FALSE(hasOp(Compile(cg::Expr::floorDiv(makeX(), 7)),
                     bc::Op::FloorDivPow2));
  EXPECT_TRUE(
      hasOp(Compile(cg::Expr::ceilDiv(makeX(), 7)), bc::Op::CeilDivK));
  EXPECT_TRUE(hasOp(Compile(cg::Expr::mod(makeX(), 7)), bc::Op::ModK));
  EXPECT_FALSE(hasOp(Compile(cg::Expr::mod(makeX(), 7)), bc::Op::ModPow2));
}

// The same table through the C emitter: every case becomes a branch of one
// generated function, compiled by the system compiler and dlopen'd. The
// compiled code must agree with the tree oracle cell for cell.
TEST(NativeExpr, EmittedCMatchesTreeOracle) {
  native::KernelCache &KC = native::KernelCache::global();
  if (!KC.compilerAvailable())
    GTEST_SKIP() << "no usable C compiler ('"
                 << native::KernelCache::compilerCommand() << "')";

  const std::vector<ExprCase> &Table = exprTable();
  std::string TU = "#include <stdint.h>\n\n" + native::helperPreamble();
  TU += "\nint64_t dhpf_eval_case(int64_t i, const int64_t *R) {\n"
        "  switch (i) {\n";
  for (size_t I = 0; I != Table.size(); ++I) {
    bc::Prog P = bc::compileExpr(Table[I].Build(makeX(), makeY()), {});
    TU += "  case " + std::to_string(I) + ": return " +
          native::emitExprC(P, "R") + ";\n";
  }
  TU += "  }\n  return 0;\n}\n";

  std::string Err;
  void *Sym = KC.loadRaw(TU, "dhpf_eval_case", &Err);
  ASSERT_NE(Sym, nullptr) << Err;
  auto *Eval = reinterpret_cast<int64_t (*)(int64_t, const int64_t *)>(Sym);

  for (size_t I = 0; I != Table.size(); ++I) {
    const ExprCase &C = Table[I];
    for (auto [X, Y] : C.Inputs) {
      int64_t Regs[2] = {X, Y};
      EXPECT_EQ(Eval(static_cast<int64_t>(I), Regs), oracleEval(C, X, Y))
          << C.Name << "(" << X << ", " << Y << ")";
    }
  }
}

uint64_t counterVal(const char *Name) {
  return obs::MetricsRegistry::global().counter(Name)->value();
}

// A warm cache serves repeat runs without invoking the compiler at all:
// the second identical native run adds exactly one cache hit (one plan)
// and zero misses/compiles. Runs with the disk layer off so the test is
// hermetic — the in-memory module map alone must provide the warm path.
TEST(KernelCache, WarmRunCompilesNothing) {
  native::KernelCache &KC = native::KernelCache::global();
  if (!KC.compilerAvailable())
    GTEST_SKIP() << "no usable C compiler ('"
                 << native::KernelCache::compilerCommand() << "')";
  if (!obs::compiledIn())
    GTEST_SKIP() << "observability compiled out; no counters to check";

  ::setenv("DHPF_KERNEL_CACHE", "off", 1);

  apps::AppInstance App = apps::makeJacobi(12, 2);
  auto Compiled = core::compileProgram(*App.Prog);
  ASSERT_TRUE(Compiled);

  auto RunNative = [&]() {
    RunConfig RC;
    RC.ProcExtents = {{App.ProcArrayName, {2, 2}}};
    RC.Engine = EngineKind::Native;
    RC.ExecThreads = 1;
    Interpreter I(Compiled->Program, RC);
    App.Setup(I);
    RunResult RR = I.run();
    EXPECT_TRUE(RR.Valid);
  };

  uint64_t Fallbacks0 = counterVal("spmd.native.fallbacks");
  RunNative(); // cold in this process: may miss and compile
  ASSERT_EQ(counterVal("spmd.native.fallbacks"), Fallbacks0)
      << "native engine fell back to bytecode despite a usable compiler";

  uint64_t Hits1 = counterVal("spmd.kernel.cache.hits");
  uint64_t Misses1 = counterVal("spmd.kernel.cache.misses");
  uint64_t Compiles1 = counterVal("spmd.kernel.compile.invocations");

  RunNative(); // warm: one plan, one hit, nothing compiled

  EXPECT_EQ(counterVal("spmd.kernel.cache.hits"), Hits1 + 1);
  EXPECT_EQ(counterVal("spmd.kernel.cache.misses"), Misses1);
  EXPECT_EQ(counterVal("spmd.kernel.compile.invocations"), Compiles1);

  ::unsetenv("DHPF_KERNEL_CACHE");
}

} // namespace
