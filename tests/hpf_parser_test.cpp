//===- tests/hpf_parser_test.cpp - Textual mini-HPF front end ------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The front end must produce programs equivalent to builder-API ones: the
// jacobi text below is compiled and executed, and its results must match
// the serial reference, exercising parser -> IR -> analyses -> SPMD -> sim.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "hpf/HpfParser.h"
#include "spmd/Interp.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

namespace {

const char *JacobiText = R"hpf(
! A 4-point stencil with a convergence reduction (the Figure 7(c) code).
program jacobi_text
processors PR(*PV, *PH)
template T(1:16, 1:16)
array U(1:16, 1:16) align (i,j) with T(i,j)
array V(1:16, 1:16) align (i,j) with T(i,j)
distribute T(block, block) onto PR

procedure main
  timeloop t = 1, 2
    nest sweep
      do i = 2, 15
      do j = 2, 15
      V(i,j) = U(i-1,j) U(i+1,j) U(i,j-1) U(i,j+1) cost 6 sem 0
    endnest
    nest copyback
      do i = 2, 15
      do j = 2, 15
      U(i,j) = V(i,j) sem 1
    endnest
    reduce max resid
  endloop
endprocedure
)hpf";

TEST(HpfParser, Declarations) {
  auto P = parseHpfProgram(JacobiText);
  EXPECT_EQ(P->name(), "jacobi_text");
  const ProcArray &PA = P->procArray("PR");
  ASSERT_EQ(PA.rank(), 2u);
  EXPECT_TRUE(PA.Dims[0].isSymbolic());
  EXPECT_EQ(PA.Dims[0].Symbol, "PV");
  EXPECT_EQ(P->array("U").rank(), 2u);
  ASSERT_NE(P->alignOf("U"), nullptr);
  EXPECT_EQ(P->alignOf("U")->TemplateName, "T");
  const Distribute &D = P->distributeOf("T");
  EXPECT_EQ(D.ProcName, "PR");
  ASSERT_EQ(D.Specs.size(), 2u);
  EXPECT_EQ(D.Specs[0].K, DistSpec::Kind::Block);
  ASSERT_EQ(P->procedures().size(), 1u);
  const Phase &Time = P->procedures()[0].Phases.at(0);
  EXPECT_EQ(Time.K, Phase::Kind::SeqLoop);
  EXPECT_EQ(Time.SeqCount, 2);
  ASSERT_EQ(Time.Body.size(), 3u);
  EXPECT_EQ(Time.Body[0].K, Phase::Kind::Nest);
  EXPECT_EQ(Time.Body[0].Nest.Stmts.size(), 1u);
  EXPECT_EQ(Time.Body[0].Nest.Stmts[0].Reads.size(), 4u);
  EXPECT_EQ(Time.Body[0].Nest.Stmts[0].Cost, 6.0);
  EXPECT_EQ(Time.Body[2].K, Phase::Kind::Reduce);
  EXPECT_EQ(Time.Body[2].Reduce.O, Reduction::Op::Max);
}

TEST(HpfParser, AffineSubscripts) {
  auto P = parseHpfProgram(
      "program t\n"
      "processors P(4)\n"
      "template T(1:20)\n"
      "array A(0:19) align (i) with T(2*i+1)\n"
      "array B(1:20)\n"
      "distribute T(cyclic(3)) onto P\n"
      "procedure main\n"
      "  nest n vectorize 1\n"
      "    do i = 2, 19\n"
      "    A(i) = A(i-1) B(2*i-3) onhome A(i-1) sem 0\n"
      "  endnest\n"
      "endprocedure\n");
  const Align *Al = P->alignOf("A");
  ASSERT_NE(Al, nullptr);
  ASSERT_EQ(Al->Terms.size(), 1u);
  EXPECT_EQ(Al->Terms[0].Stride, 2);
  EXPECT_EQ(Al->Terms[0].Offset, 1);
  EXPECT_EQ(P->distributeOf("T").Specs[0].K, DistSpec::Kind::CyclicK);
  EXPECT_EQ(P->distributeOf("T").Specs[0].BlockK, 3);
  const ComputeNest &N = P->procedures()[0].Phases[0].Nest;
  EXPECT_EQ(N.VectorizeLevel, 1u);
  ASSERT_EQ(N.Stmts[0].Reads.size(), 2u);
  // B(2*i-3): coefficient 2 on i, constant -3.
  const AffineExpr &Sub = N.Stmts[0].Reads[1].Subs[0];
  ASSERT_EQ(Sub.Terms.size(), 1u);
  EXPECT_EQ(Sub.Terms[0].second, 2);
  EXPECT_EQ(Sub.K, -3);
  ASSERT_EQ(N.Stmts[0].OnHome.size(), 1u);
}

TEST(HpfParser, ParsedProgramCompilesAndRuns) {
  auto P = parseHpfProgram(JacobiText);
  auto Compiled = compileProgram(*P);
  RunConfig RC;
  RC.ProcExtents = {{"PR", {2, 2}}};
  Interpreter I(Compiled->Program, RC);
  I.setSemantics(0, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &Acc) {
    double V = 0.25 * (R[0] + R[1] + R[2] + R[3]);
    Acc["resid"] = std::max(Acc["resid"], V);
    return V;
  });
  I.setSemantics(1, [](const std::vector<double> &R,
                       const std::vector<int64_t> &, AccumMap &) {
    return R[0];
  });
  auto Init = [](const std::vector<int64_t> &Idx) {
    return double(Idx[0] * 16 + Idx[1]);
  };
  I.initArray("U", Init);
  RunResult RR = I.run();
  for (const std::string &V : RR.Violations)
    ADD_FAILURE() << V;
  EXPECT_TRUE(RR.Valid);

  // Serial reference for 2 steps of the sweep/copyback pair.
  std::vector<std::vector<double>> U(17, std::vector<double>(17)), V = U;
  for (int64_t Ii = 1; Ii <= 16; ++Ii)
    for (int64_t Jj = 1; Jj <= 16; ++Jj)
      U[Ii][Jj] = Init({Ii, Jj});
  for (int T = 0; T != 2; ++T) {
    for (int64_t Ii = 2; Ii <= 15; ++Ii)
      for (int64_t Jj = 2; Jj <= 15; ++Jj)
        V[Ii][Jj] = 0.25 * (U[Ii - 1][Jj] + U[Ii + 1][Jj] + U[Ii][Jj - 1] +
                            U[Ii][Jj + 1]);
    for (int64_t Ii = 2; Ii <= 15; ++Ii)
      for (int64_t Jj = 2; Jj <= 15; ++Jj)
        U[Ii][Jj] = V[Ii][Jj];
  }
  const ArrayStore &AU = I.array("U");
  for (int64_t Ii = 1; Ii <= 16; ++Ii)
    for (int64_t Jj = 1; Jj <= 16; ++Jj)
      EXPECT_NEAR(AU.at(AU.flatten({Ii, Jj})), U[Ii][Jj], 1e-12)
          << Ii << "," << Jj;
}

TEST(HpfParser, NestedTimeloops) {
  auto P = parseHpfProgram("program t\n"
                           "processors P(2)\n"
                           "template T(1:8)\n"
                           "array A(1:8) align (i) with T(i)\n"
                           "array B(1:8) align (i) with T(i)\n"
                           "distribute T(block) onto P\n"
                           "procedure main\n"
                           "  timeloop t = 1, 3\n"
                           "    timeloop u = 1, 2\n"
                           "      nest n\n"
                           "        do i = 1, 8\n"
                           "        A(i) = B(i) sem 0\n"
                           "      endnest\n"
                           "    endloop\n"
                           "    reduce sum s\n"
                           "  endloop\n"
                           "endprocedure\n");
  const Phase &Outer = P->procedures()[0].Phases[0];
  ASSERT_EQ(Outer.Body.size(), 2u);
  EXPECT_EQ(Outer.Body[0].K, Phase::Kind::SeqLoop);
  EXPECT_EQ(Outer.Body[0].SeqCount, 2);
  EXPECT_EQ(Outer.Body[1].K, Phase::Kind::Reduce);
}

} // namespace
