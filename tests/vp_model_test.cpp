//===- tests/vp_model_test.cpp - Figure 5 active virtual processors ------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Reproduces Figure 5: the Gaussian-elimination loop on a (CYCLIC,CYCLIC)
// distribution over a symbolic P1 x P2 processor array. Virtual processors
// are template cells; the equations must find that only the VPs owning the
// pivot row need to send, while every busy VP receives.
//
//   do i = PIVOT+1, 100 ; do j = PIVOT+1, 100   ! ON_HOME A(i,j)
//     A(i,j) = ... + A(PIVOT, j)
//
//===----------------------------------------------------------------------===//

#include "core/Comm.h"
#include "core/Partition.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

namespace {

struct Gauss {
  Program P{"gauss"};
  ComputeNest Nest;
  MapBuilder MB{P};

  Gauss() {
    P.addParam("PIVOT");
    P.addProcs("PA", {Program::procDimSym("P1"), Program::procDimSym("P2")});
    P.addTemplate("T", {range(1, 100), range(1, 100)});
    P.addArray("A", {range(1, 100), range(1, 100)});
    P.addAlign({"A", "T", {alignDim(0), alignDim(1)}});
    P.addDistribute({"T", "PA", {distCyclic(), distCyclic()}});
    Nest.Name = "update";
    Nest.Loops = {loop("i", AffineExpr("PIVOT") + 1, 100),
                  loop("j", AffineExpr("PIVOT") + 1, 100)};
    Statement S;
    S.Write = ref("A", {"i", "j"});
    S.Reads = {ref("A", {"PIVOT", "j"})};
    Nest.Stmts = {S};
  }
};

/// Membership helper: binds PIVOT and ignores other params (none expected).
bool containsPivot(const Relation &R, int64_t Pivot,
                   std::vector<int64_t> Out) {
  std::vector<int64_t> Params;
  for (const std::string &P : R.space().params()) {
    EXPECT_EQ(P, "PIVOT") << "unexpected parameter " << P;
    Params.push_back(Pivot);
  }
  return R.contains(Out, Params);
}

TEST(Figure5, LayoutIsVirtual) {
  Gauss G;
  LayoutResult L = G.MB.layout("A");
  EXPECT_TRUE(L.anyVirtual());
  ASSERT_EQ(L.Dims.size(), 2u);
  EXPECT_TRUE(L.Dims[0].Virtualized);
  EXPECT_TRUE(L.Dims[1].Virtualized);
  // VP (v1,v2) owns exactly element (v1,v2).
  EXPECT_TRUE(L.Map.contains({7, 9}, {}, {7, 9}));
  EXPECT_FALSE(L.Map.contains({7, 9}, {}, {7, 8}));
}

TEST(Figure5, CPMapOnVirtualProcessors) {
  Gauss G;
  CPInfo CP = computeCP(G.MB, G.Nest, G.Nest.Stmts[0]);
  EXPECT_FALSE(CP.Replicated);
  // CPMap = {[v1,v2] -> [i,j] : i = v1, j = v2, PIVOT < v1,v2 <= 100}
  // (plus the template bounds 1 <= v, which Figure 5 leaves implicit).
  Relation Expect = parseRelation(
      "[PIVOT] -> { [v1,v2] -> [i,j] : i = v1 && j = v2 && "
      "PIVOT + 1 <= v1 <= 100 && PIVOT + 1 <= v2 <= 100 && "
      "1 <= v1 && 1 <= v2 }");
  EXPECT_TRUE(CP.CPMap.isEqualTo(Expect))
      << "got " << CP.CPMap.simplify().toString();
}

TEST(Figure5, ActiveVPSets) {
  Gauss G;
  CPInfo CP = computeCP(G.MB, G.Nest, G.Nest.Stmts[0]);
  CommEventInput E;
  E.Array = "A";
  E.LoopVars = {"i", "j"};
  CommRef CR;
  CR.CPMap = CP.CPMap;
  CR.RefMap = G.MB.refMap(G.Nest, G.Nest.Stmts[0].Reads[0]);
  CR.IsWrite = false;
  E.Refs.push_back(CR);
  CommSets CS = computeCommSets(G.MB, E);

  // busyVPSet = {[v1,v2] : PIVOT < v1,v2 <= 100} (Figure 5(c), plus the
  // implicit template bounds 1 <= v).
  Relation BusyExpect = parseRelation(
      "[PIVOT] -> { [v1,v2] : PIVOT + 1 <= v1 <= 100 && "
      "PIVOT + 1 <= v2 <= 100 && 1 <= v1 && 1 <= v2 }");
  EXPECT_TRUE(CS.BusyVPSet.isEqualTo(BusyExpect))
      << "got " << CS.BusyVPSet.toString();

  // activeSendVPSet = {[v1,v2] : v1 = PIVOT && PIVOT < v2 <= 100}: only
  // the VPs owning pivot-row elements send.
  Relation SendExpect = parseRelation(
      "[PIVOT] -> { [v1,v2] : v1 = PIVOT && 1 <= v1 && "
      "PIVOT + 1 <= v2 <= 100 && 1 <= v2 }");
  EXPECT_TRUE(CS.ActiveSendVPSet.isEqualTo(SendExpect))
      << "got " << CS.ActiveSendVPSet.toString();

  // activeRecvVPSet = busyVPSet.
  EXPECT_TRUE(CS.ActiveRecvVPSet.isEqualTo(CS.BusyVPSet))
      << "got " << CS.ActiveRecvVPSet.toString();

  // Spot checks with PIVOT = 10.
  EXPECT_TRUE(containsPivot(CS.ActiveSendVPSet, 10, {10, 42}));
  EXPECT_FALSE(containsPivot(CS.ActiveSendVPSet, 10, {11, 42}));
  EXPECT_TRUE(containsPivot(CS.ActiveRecvVPSet, 10, {11, 42}));
  EXPECT_FALSE(containsPivot(CS.ActiveRecvVPSet, 10, {10, 42}));
}

TEST(Figure5, NLDataAccessed) {
  Gauss G;
  CPInfo CP = computeCP(G.MB, G.Nest, G.Nest.Stmts[0]);
  CommEventInput E;
  E.Array = "A";
  E.LoopVars = {"i", "j"};
  E.Refs.push_back({CP.CPMap, false,
                    G.MB.refMap(G.Nest, G.Nest.Stmts[0].Reads[0]), false});
  CommSets CS = computeCommSets(G.MB, E);
  // NLDataAccessed_read = {[v1,v2] -> [PIVOT, v2] : PIVOT < v1,v2 <= 100}
  // (plus the implicit template bounds on the VPs; the accessed element
  // itself is not re-bounded — RefMap carries no array bounds, as in the
  // paper's Figure 2).
  Relation Expect = parseRelation(
      "[PIVOT] -> { [v1,v2] -> [a1,a2] : a1 = PIVOT && a2 = v2 && "
      "PIVOT + 1 <= v1 <= 100 && 1 <= v1 && "
      "PIVOT + 1 <= v2 <= 100 && 1 <= v2 }");
  EXPECT_TRUE(CS.NLDataAccessedRead.isEqualTo(Expect))
      << "got " << CS.NLDataAccessedRead.simplify().toString();
}

} // namespace
