//===- tests/hpf_layout_test.cpp - Figure 2 primitive sets and maps ------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Reproduces the paper's Figure 2 exactly: the primitive sets and mappings
// (proc, Layout_A, Layout_B, loop, RefMap, CPMap) constructed for the
// example HPF fragment:
//
//   real A(0:99,100), B(100,100)
//   processors P(4)
//   template T(100,100)
//   align A(i,j) with T(i+1,j)
//   align B(i,j) with T(*,i)
//   distribute T(*,block) onto P
//   do i = 1, N
//     do j = 2, N+1
//       A(i,j) = B(j-1,i)    ! ON_HOME B(j-1,i)
//
//===----------------------------------------------------------------------===//

#include "hpf/Maps.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::hpf;

namespace {

/// Builds the Figure 2 example program.
Program figure2() {
  Program P("figure2");
  P.addParam("N");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 100), range(1, 100)});
  P.addArray("A", {range(0, 99), range(1, 100)});
  P.addArray("B", {range(1, 100), range(1, 100)});
  P.addAlign({"A", "T", {alignDim(0, 1, 1), alignDim(1)}});
  P.addAlign({"B", "T", {alignStar(), alignDim(0)}});
  P.addDistribute({"T", "P", {distStar(), distBlock()}});
  return P;
}

ComputeNest figure2Nest() {
  ComputeNest N;
  N.Name = "main";
  N.Loops = {loop("i", 1, "N"), loop("j", 2, AffineExpr("N") + 1)};
  Statement S;
  S.Write = ref("A", {"i", "j"});
  S.Reads = {ref("B", {AffineExpr("j") - 1, "i"})};
  S.OnHome = {ref("B", {AffineExpr("j") - 1, "i"})};
  N.Stmts = {S};
  return N;
}

TEST(Figure2, ProcSet) {
  Program P = figure2();
  MapBuilder MB(P);
  Relation Proc = MB.procSet("P");
  EXPECT_TRUE(Proc.isEqualTo(parseRelation("{ [p] : 0 <= p <= 3 }")));
}

TEST(Figure2, LayoutA) {
  Program P = figure2();
  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  EXPECT_FALSE(L.anyVirtual());
  EXPECT_EQ(L.ProcName, "P");
  Relation Expect = parseRelation(
      "{ [p] -> [a1,a2] : 0 <= a1 <= 99 && 25p + 1 <= a2 <= 25p + 25 && "
      "1 <= a2 <= 100 && 0 <= p <= 3 }");
  EXPECT_TRUE(L.Map.isEqualTo(Expect))
      << "got: " << L.Map.simplify().toString();
}

TEST(Figure2, LayoutB) {
  Program P = figure2();
  MapBuilder MB(P);
  LayoutResult L = MB.layout("B");
  Relation Expect = parseRelation(
      "{ [p] -> [b1,b2] : 25p + 1 <= b1 <= 25p + 25 && 1 <= b1 <= 100 && "
      "1 <= b2 <= 100 && 0 <= p <= 3 }");
  EXPECT_TRUE(L.Map.isEqualTo(Expect))
      << "got: " << L.Map.simplify().toString();
}

TEST(Figure2, LoopSet) {
  Program P = figure2();
  MapBuilder MB(P);
  Relation Loop = MB.loopSet(figure2Nest());
  Relation Expect = parseRelation(
      "[N] -> { [i,j] : 1 <= i <= N && 2 <= j <= N + 1 }");
  EXPECT_TRUE(Loop.isEqualTo(Expect));
}

TEST(Figure2, RefMap) {
  Program P = figure2();
  MapBuilder MB(P);
  ComputeNest N = figure2Nest();
  Relation RM = MB.refMap(N, N.Stmts[0].Reads[0]);
  Relation Expect =
      parseRelation("{ [i,j] -> [b1,b2] : b1 = j - 1 && b2 = i }");
  EXPECT_TRUE(RM.isEqualTo(Expect));
}

TEST(Figure2, CPMap) {
  // CPMap = (Layout_B o CPRef^-1) restricted in range to the loop set.
  Program P = figure2();
  MapBuilder MB(P);
  ComputeNest N = figure2Nest();
  Relation Layout = MB.layout("B").Map;
  Relation RM = MB.refMap(N, N.Stmts[0].OnHome[0]);
  Relation CPMap =
      Layout.composeWith(RM.inverse()).restrictRange(MB.loopSet(N));
  Relation Expect = parseRelation(
      "[N] -> { [p] -> [l1,l2] : 1 <= l1 <= N && l1 <= 100 && "
      "2 <= l2 && 25p + 2 <= l2 && l2 <= N + 1 && l2 <= 101 && "
      "l2 <= 25p + 26 && 0 <= p <= 3 }");
  EXPECT_TRUE(CPMap.isEqualTo(Expect))
      << "got: " << CPMap.simplify().toString();
}

TEST(Layouts, CyclicFixed) {
  Program P("cyc");
  P.addProcs("P", {Program::procDim(4)});
  P.addTemplate("T", {range(1, 16)});
  P.addArray("A", {range(1, 16)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distCyclic()}});
  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  EXPECT_FALSE(L.anyVirtual());
  // Element a is owned by processor (a-1) mod 4.
  for (int64_t A = 1; A <= 16; ++A)
    for (int64_t Pr = 0; Pr < 4; ++Pr)
      EXPECT_EQ(L.Map.contains({A}, {}, {Pr}), (A - 1) % 4 == Pr)
          << "a=" << A << " p=" << Pr;
}

TEST(Layouts, CyclicKFixed) {
  Program P("cyck");
  P.addProcs("P", {Program::procDim(3)});
  P.addTemplate("T", {range(1, 18)});
  P.addArray("A", {range(1, 18)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distCyclicK(2)}});
  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  for (int64_t A = 1; A <= 18; ++A)
    for (int64_t Pr = 0; Pr < 3; ++Pr)
      EXPECT_EQ(L.Map.contains({A}, {}, {Pr}), ((A - 1) / 2) % 3 == Pr)
          << "a=" << A << " p=" << Pr;
}

TEST(Layouts, BlockSymbolicUsesVPModel) {
  Program P("sym");
  P.addParam("N");
  P.addProcs("P", {Program::procDimSym("NP")});
  P.addTemplate("T", {range(1, "N")});
  P.addArray("A", {range(1, "N")});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distBlock()}});
  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  EXPECT_TRUE(L.anyVirtual());
  ASSERT_EQ(L.Dims.size(), 1u);
  EXPECT_EQ(L.Dims[0].Kind, DistSpec::Kind::Block);
  EXPECT_TRUE(L.Dims[0].Virtualized);
  // With N = 20 and B = 5 (i.e. 4 processors), VP v owns [v, v+4].
  std::string B = MapBuilder::blockParamName("T", 0);
  int NIdx = L.Map.space().paramIndex("N");
  int BIdx = L.Map.space().paramIndex(B);
  ASSERT_GE(NIdx, 0);
  ASSERT_GE(BIdx, 0);
  std::vector<int64_t> Params(L.Map.numParams(), 0);
  Params[NIdx] = 20;
  Params[BIdx] = 5;
  EXPECT_TRUE(L.Map.contains({6}, Params, {6}));  // v=6 owns 6..10
  EXPECT_TRUE(L.Map.contains({10}, Params, {6}));
  EXPECT_FALSE(L.Map.contains({11}, Params, {6}));
  // Physical processor 1's VP is v = B*1 + 1 = 6.
}

TEST(Layouts, CyclicSymbolicVP) {
  Program P("symc");
  P.addProcs("P", {Program::procDimSym("NP")});
  P.addTemplate("T", {range(1, 12)});
  P.addArray("A", {range(1, 12)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distCyclic()}});
  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  EXPECT_TRUE(L.anyVirtual());
  // Every template cell is its own VP: v owns exactly {v}.
  std::vector<int64_t> Params(L.Map.numParams(), 4);
  EXPECT_TRUE(L.Map.contains({7}, Params, {7}));
  EXPECT_FALSE(L.Map.contains({8}, Params, {7}));
}

TEST(Layouts, ReplicatedArray) {
  Program P("rep");
  P.addArray("S", {range(1, 10)});
  MapBuilder MB(P);
  LayoutResult L = MB.layout("S");
  EXPECT_TRUE(L.ProcName.empty());
  EXPECT_EQ(L.Map.numIn(), 0u);
  EXPECT_TRUE(L.Map.contains({5}));
  EXPECT_FALSE(L.Map.contains({11}));
}

TEST(Layouts, LayoutBindings) {
  Program P("bind");
  P.addParam("N");
  P.addProcs("P", {Program::procDimSym("NP")});
  P.addTemplate("T", {range(1, "N")});
  P.addArray("A", {range(1, "N")});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distBlock()}});
  MapBuilder MB(P);
  auto Bind = MB.layoutBindings({{"N", 103}}, {{"P", {4}}});
  EXPECT_EQ(Bind.at("NP"), 4);
  EXPECT_EQ(Bind.at(MapBuilder::blockParamName("T", 0)), 26);
}

TEST(Layouts, TwoDimBlockBlock) {
  // The JACOBI configuration: (BLOCK,BLOCK) on a 2x2 grid of 4 procs.
  Program P("bb");
  P.addProcs("PR", {Program::procDim(2), Program::procDim(2)});
  P.addTemplate("T", {range(1, 8), range(1, 8)});
  P.addArray("A", {range(1, 8), range(1, 8)});
  P.addAlign({"A", "T", {alignDim(0), alignDim(1)}});
  P.addDistribute({"T", "PR", {distBlock(), distBlock()}});
  MapBuilder MB(P);
  LayoutResult L = MB.layout("A");
  EXPECT_FALSE(L.anyVirtual());
  for (int64_t I = 1; I <= 8; ++I)
    for (int64_t J = 1; J <= 8; ++J) {
      int64_t OwnerP0 = (I - 1) / 4, OwnerP1 = (J - 1) / 4;
      for (int64_t P0 = 0; P0 < 2; ++P0)
        for (int64_t P1 = 0; P1 < 2; ++P1)
          EXPECT_EQ(L.Map.contains({I, J}, {}, {P0, P1}),
                    P0 == OwnerP0 && P1 == OwnerP1);
    }
}

} // namespace
