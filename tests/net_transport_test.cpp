//===- tests/net_transport_test.cpp - Transport layer unit tests ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The net layer's contracts, each checked on BOTH backends through one
/// shared test body wherever the behavior must match (the loopback mesh is
/// the differential oracle for the socket mesh): framing round trip,
/// tag-matched FIFO delivery, scatter/gather posts, fault injection
/// (corrupt / drop / duplicate frames produce named-rank diagnostics,
/// never hangs), and peer-death detection.
///
//===----------------------------------------------------------------------===//

#include "net/Loopback.h"
#include "net/Net.h"
#include "net/Socket.h"
#include "net/Tcp.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace dhpf;
using namespace dhpf::net;

namespace {

/// Scoped environment variable override.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    const char *Old = getenv(Name);
    if (Old)
      Saved = Old;
    Had = Old != nullptr;
    setenv(Name, Value, 1);
  }
  ~ScopedEnv() {
    if (Had)
      setenv(Name.c_str(), Saved.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }

private:
  std::string Name, Saved;
  bool Had = false;
};

std::string tempMeshDir() {
  char Buf[] = "/tmp/dhpf_net_test_XXXXXX";
  const char *D = mkdtemp(Buf);
  EXPECT_NE(D, nullptr);
  return D ? D : "";
}

void removeMeshDir(const std::string &Dir, unsigned NP) {
  for (unsigned R = 0; R != NP; ++R)
    unlink((Dir + "/rank" + std::to_string(R) + ".sock").c_str());
  rmdir(Dir.c_str());
}

/// Runs \p Body once per rank, each rank on its own thread with its own
/// transport. Returns each rank's exception message ("" = none).
using RankBody = std::function<void(Transport &)>;

std::vector<std::string> runLoopbackRanks(unsigned NP, const RankBody &Body) {
  LoopbackMesh Mesh(NP);
  std::vector<std::string> Errs(NP);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != NP; ++R)
    Ts.emplace_back([&, R] {
      try {
        auto T = Mesh.transport(R);
        Body(*T);
      } catch (const std::exception &E) {
        Errs[R] = E.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  return Errs;
}

std::vector<std::string> runSocketRanks(unsigned NP, const RankBody &Body) {
  std::string Dir = tempMeshDir();
  std::vector<std::string> Errs(NP);
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != NP; ++R)
    Ts.emplace_back([&, R] {
      try {
        SocketOptions Opts;
        Opts.MeshDir = Dir;
        auto T = connectSocketMesh(R, NP, Opts);
        Body(*T);
      } catch (const std::exception &E) {
        Errs[R] = E.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  removeMeshDir(Dir, NP);
  return Errs;
}

std::vector<std::string> runTcpRanks(unsigned NP, const RankBody &Body) {
  std::string Dir = tempMeshDir();
  std::string SpecPath = Dir + "/hosts.spec";
  std::vector<std::string> Errs(NP);
  try {
    writeLocalRankSpec(SpecPath, NP);
  } catch (const std::exception &E) {
    Errs[0] = E.what();
    rmdir(Dir.c_str());
    return Errs;
  }
  std::vector<std::thread> Ts;
  for (unsigned R = 0; R != NP; ++R)
    Ts.emplace_back([&, R] {
      try {
        TcpOptions Opts;
        Opts.HostsPath = SpecPath;
        auto T = connectTcpMesh(R, NP, Opts);
        Body(*T);
      } catch (const std::exception &E) {
        Errs[R] = E.what();
      }
    });
  for (auto &T : Ts)
    T.join();
  unlink(SpecPath.c_str());
  rmdir(Dir.c_str());
  return Errs;
}

void expectClean(const std::vector<std::string> &Errs) {
  for (size_t R = 0; R != Errs.size(); ++R)
    EXPECT_EQ(Errs[R], "") << "rank " << R;
}

void post1(Transport &T, unsigned Dst, uint64_t Tag,
           const std::vector<uint8_t> &Payload) {
  ByteSpan S{Payload.data(), Payload.size()};
  T.post(Dst, Tag, &S, 1);
}

//===----------------------------------------------------------------------===//
// Framing primitives
//===----------------------------------------------------------------------===//

TEST(NetFrame, HeaderRoundTrip) {
  FrameHeader H;
  H.PayloadLen = 12345;
  H.Src = 3;
  H.Dst = 7;
  H.Tag = (1ull << 40) + 17;
  H.Seq = 99;
  H.Checksum = 0xdeadbeefcafef00dull;
  uint8_t Buf[FrameHeaderBytes];
  encodeHeader(H, Buf);
  FrameHeader G = decodeHeader(Buf);
  EXPECT_EQ(G.Magic, FrameMagic);
  EXPECT_EQ(G.PayloadLen, H.PayloadLen);
  EXPECT_EQ(G.Src, H.Src);
  EXPECT_EQ(G.Dst, H.Dst);
  EXPECT_EQ(G.Tag, H.Tag);
  EXPECT_EQ(G.Seq, H.Seq);
  EXPECT_EQ(G.Checksum, H.Checksum);
}

TEST(NetFrame, ChecksumAccumulatesOverParts) {
  const char *Data = "the section is contiguous";
  size_t Len = std::strlen(Data);
  uint64_t Whole = fnv1aAccum(fnv1aInit(), Data, Len);
  for (size_t Split = 0; Split <= Len; ++Split) {
    uint64_t H = fnv1aAccum(fnv1aInit(), Data, Split);
    H = fnv1aAccum(H, Data + Split, Len - Split);
    EXPECT_EQ(H, Whole);
  }
  EXPECT_NE(fnv1aAccum(fnv1aInit(), "ab", 2),
            fnv1aAccum(fnv1aInit(), "ba", 2));
}

TEST(NetFault, ParseRejectsGarbage) {
  EXPECT_THROW(FaultInjector::parse("bogus=1", 0), TransportError);
  EXPECT_THROW(FaultInjector::parse("drop", 0), TransportError);
  EXPECT_THROW(FaultInjector::parse("drop=x", 0), TransportError);
  EXPECT_NO_THROW(FaultInjector::parse("drop=0.5,seed=7,after=2", 0));
  EXPECT_FALSE(FaultInjector::parse("", 0).enabled());
}

TEST(NetFault, DeterministicPerSeedAndRank) {
  auto Stream = [](unsigned Rank, uint64_t Seed) {
    FaultInjector F = FaultInjector::parse(
        "drop=0.3,dup=0.2,corrupt=0.1,seed=" + std::to_string(Seed), Rank);
    std::vector<int> S;
    for (int I = 0; I != 64; ++I)
      S.push_back(static_cast<int>(F.next()));
    return S;
  };
  EXPECT_EQ(Stream(0, 1), Stream(0, 1));
  EXPECT_NE(Stream(0, 1), Stream(1, 1));
  EXPECT_NE(Stream(0, 1), Stream(0, 2));
}

//===----------------------------------------------------------------------===//
// Shared backend contracts
//===----------------------------------------------------------------------===//

/// Ring exchange: rank r sends to r+1, receives from r-1, with two tags
/// posted out of recv order and multi-part payloads.
RankBody ringBody(unsigned NP) {
  return [NP](Transport &T) {
    unsigned R = T.rank();
    unsigned Next = (R + 1) % NP, Prev = (R + NP - 1) % NP;
    std::vector<uint8_t> A(64), B(17);
    for (size_t I = 0; I != A.size(); ++I)
      A[I] = static_cast<uint8_t>(R * 3 + I);
    for (size_t I = 0; I != B.size(); ++I)
      B[I] = static_cast<uint8_t>(R * 7 + I);
    // Multi-part post: payloads reassemble across span boundaries.
    ByteSpan Parts[2] = {{A.data(), 40}, {A.data() + 40, A.size() - 40}};
    T.post(Next, /*Tag=*/5, Parts, 2);
    post1(T, Next, /*Tag=*/9, B);

    // Receive in the opposite tag order to exercise tag matching.
    std::vector<uint8_t> GotB = T.recv(Prev, 9);
    std::vector<uint8_t> GotA = T.recv(Prev, 5);
    ASSERT_EQ(GotA.size(), A.size());
    ASSERT_EQ(GotB.size(), B.size());
    for (size_t I = 0; I != GotA.size(); ++I)
      EXPECT_EQ(GotA[I], static_cast<uint8_t>(Prev * 3 + I));
    for (size_t I = 0; I != GotB.size(); ++I)
      EXPECT_EQ(GotB[I], static_cast<uint8_t>(Prev * 7 + I));
    T.flush();
    EXPECT_FALSE(T.hasUndelivered());
  };
}

TEST(NetLoopback, RingExchange) { expectClean(runLoopbackRanks(4, ringBody(4))); }
TEST(NetSocket, RingExchange) { expectClean(runSocketRanks(4, ringBody(4))); }
TEST(NetTcp, RingExchange) { expectClean(runTcpRanks(4, ringBody(4))); }

/// Same-tag messages must arrive in posting order (per-stream FIFO).
RankBody fifoBody() {
  return [](Transport &T) {
    if (T.rank() == 0) {
      for (uint8_t I = 0; I != 20; ++I)
        post1(T, 1, 3, {I});
      T.flush();
    } else {
      for (uint8_t I = 0; I != 20; ++I) {
        std::vector<uint8_t> Got = T.recv(0, 3);
        ASSERT_EQ(Got.size(), 1u);
        EXPECT_EQ(Got[0], I);
      }
    }
  };
}

TEST(NetLoopback, FifoPerStream) { expectClean(runLoopbackRanks(2, fifoBody())); }
TEST(NetSocket, FifoPerStream) { expectClean(runSocketRanks(2, fifoBody())); }
TEST(NetTcp, FifoPerStream) { expectClean(runTcpRanks(2, fifoBody())); }

/// Large multi-frame traffic through the nonblocking buffering path: the
/// kernel cannot take 4 MB immediately, so progress()/flush() must drain.
RankBody bulkBody() {
  return [](Transport &T) {
    const size_t N = 1 << 22;
    if (T.rank() == 0) {
      std::vector<uint8_t> Big(N);
      for (size_t I = 0; I != N; ++I)
        Big[I] = static_cast<uint8_t>(I * 2654435761u >> 13);
      post1(T, 1, 1, Big);
      // The span is reusable immediately: clobber it post-return.
      std::fill(Big.begin(), Big.end(), 0xee);
      T.flush();
    } else {
      std::vector<uint8_t> Got = T.recv(0, 1);
      ASSERT_EQ(Got.size(), N);
      for (size_t I = 0; I < N; I += 4097)
        ASSERT_EQ(Got[I], static_cast<uint8_t>(I * 2654435761u >> 13));
    }
  };
}

TEST(NetLoopback, BulkTransferSpanReusable) {
  expectClean(runLoopbackRanks(2, bulkBody()));
}
TEST(NetSocket, BulkTransferSpanReusable) {
  expectClean(runSocketRanks(2, bulkBody()));
}
TEST(NetTcp, BulkTransferSpanReusable) {
  expectClean(runTcpRanks(2, bulkBody()));
}

//===----------------------------------------------------------------------===//
// Fault injection: every corruption becomes a named-rank diagnostic,
// bounded by the watchdog — never a hang. Identical on both backends.
//===----------------------------------------------------------------------===//

/// Rank 0 posts one frame to rank 1 and holds until told its peer saw the
/// fault; rank 1's recv must throw.
void checkFaultDiagnosed(const char *Fault, const char *ExpectWord,
                         std::vector<std::string> (*Run)(unsigned,
                                                         const RankBody &)) {
  ScopedEnv F("DHPF_NET_FAULT", Fault);
  ScopedEnv W("DHPF_NET_TIMEOUT_MS", "1500");
  std::vector<std::string> Errs = Run(2, [](Transport &T) {
    if (T.rank() == 0) {
      std::vector<uint8_t> P{1, 2, 3, 4};
      post1(T, 1, 7, P);
      post1(T, 1, 8, P);
      T.flush();
      // Keep this side alive so the failure below is the injected fault,
      // not a peer-death race.
      try {
        T.recv(1, 99);
      } catch (const TransportError &) {
      }
    } else {
      T.recv(0, 7);
      T.recv(0, 8);
    }
  });
  EXPECT_NE(Errs[1], "");
  EXPECT_NE(Errs[1].find("rank"), std::string::npos) << Errs[1];
  EXPECT_NE(Errs[1].find(ExpectWord), std::string::npos) << Errs[1];
}

TEST(NetFaultInjection, CorruptLoopback) {
  checkFaultDiagnosed("corrupt=1,seed=1", "checksum", runLoopbackRanks);
}
TEST(NetFaultInjection, CorruptSocket) {
  checkFaultDiagnosed("corrupt=1,seed=1", "checksum", runSocketRanks);
}
TEST(NetFaultInjection, DuplicateLoopback) {
  checkFaultDiagnosed("dup=1,seed=2", "duplicated", runLoopbackRanks);
}
TEST(NetFaultInjection, DuplicateSocket) {
  checkFaultDiagnosed("dup=1,seed=2", "duplicated", runSocketRanks);
}
TEST(NetFaultInjection, CorruptTcp) {
  checkFaultDiagnosed("corrupt=1,seed=1", "checksum", runTcpRanks);
}
TEST(NetFaultInjection, DuplicateTcp) {
  checkFaultDiagnosed("dup=1,seed=2", "duplicated", runTcpRanks);
}
TEST(NetFaultInjection, DropLoopback) {
  // A dropped frame surfaces as a sequence gap (a later frame arrives) or
  // a watchdog timeout (nothing after it) — both diagnosed, never a hang.
  ScopedEnv F("DHPF_NET_FAULT", "drop=1,seed=3");
  ScopedEnv W("DHPF_NET_TIMEOUT_MS", "400");
  std::vector<std::string> Errs = runLoopbackRanks(2, [](Transport &T) {
    if (T.rank() == 0) {
      std::vector<uint8_t> P{9};
      post1(T, 1, 7, P);
      T.flush();
      try {
        T.recv(1, 99);
      } catch (const TransportError &) {
      }
    } else {
      T.recv(0, 7);
    }
  });
  EXPECT_NE(Errs[1], "");
  EXPECT_NE(Errs[1].find("rank 0"), std::string::npos) << Errs[1];
}
TEST(NetFaultInjection, TruncateSocket) {
  // Truncation desynchronizes the byte stream; the receiver diagnoses a
  // bad magic / length or times out — bounded either way.
  ScopedEnv F("DHPF_NET_FAULT", "trunc=1,seed=4");
  ScopedEnv W("DHPF_NET_TIMEOUT_MS", "400");
  std::vector<std::string> Errs = runSocketRanks(2, [](Transport &T) {
    if (T.rank() == 0) {
      std::vector<uint8_t> P(64, 0xab);
      post1(T, 1, 7, P);
      T.flush();
      try {
        T.recv(1, 99);
      } catch (const TransportError &) {
      }
    } else {
      T.recv(0, 7);
    }
  });
  EXPECT_NE(Errs[1], "");
  EXPECT_NE(Errs[1].find("rank"), std::string::npos) << Errs[1];
}

//===----------------------------------------------------------------------===//
// Peer death
//===----------------------------------------------------------------------===//

/// Rank 1 exits immediately; rank 0's recv must fail quickly, naming the
/// dead rank — not hang until the watchdog would have fired anyway.
void checkPeerDeath(std::vector<std::string> (*Run)(unsigned,
                                                    const RankBody &)) {
  ScopedEnv W("DHPF_NET_TIMEOUT_MS", "5000");
  std::vector<std::string> Errs = Run(2, [](Transport &T) {
    if (T.rank() == 0)
      T.recv(1, 7); // never sent
  });
  EXPECT_EQ(Errs[1], "");
  EXPECT_NE(Errs[0], "");
  EXPECT_NE(Errs[0].find("rank 1"), std::string::npos) << Errs[0];
}

TEST(NetPeerDeath, Loopback) { checkPeerDeath(runLoopbackRanks); }
TEST(NetPeerDeath, Socket) { checkPeerDeath(runSocketRanks); }
TEST(NetPeerDeath, Tcp) { checkPeerDeath(runTcpRanks); }

TEST(NetFaultInjection, TruncateTcp) {
  // Same stream-desynchronization contract as the Unix-socket backend.
  ScopedEnv F("DHPF_NET_FAULT", "trunc=1,seed=4");
  ScopedEnv W("DHPF_NET_TIMEOUT_MS", "400");
  std::vector<std::string> Errs = runTcpRanks(2, [](Transport &T) {
    if (T.rank() == 0) {
      std::vector<uint8_t> P(64, 0xab);
      post1(T, 1, 7, P);
      T.flush();
      try {
        T.recv(1, 99);
      } catch (const TransportError &) {
      }
    } else {
      T.recv(0, 7);
    }
  });
  EXPECT_NE(Errs[1], "");
  EXPECT_NE(Errs[1].find("rank"), std::string::npos) << Errs[1];
}

//===----------------------------------------------------------------------===//
// TCP rank-spec parsing
//===----------------------------------------------------------------------===//

TEST(NetTcpSpec, ParsesHostsCommentsAndWhitespace) {
  std::vector<HostPort> S = parseRankSpec("# header comment\n"
                                          "  node0:5000  # rank 0\n"
                                          "\n"
                                          "10.0.0.7:5001\t\n"
                                          "node2.example.com:65535\n",
                                          "test");
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0].Host, "node0");
  EXPECT_EQ(S[0].Port, 5000);
  EXPECT_EQ(S[1].Host, "10.0.0.7");
  EXPECT_EQ(S[1].Port, 5001);
  EXPECT_EQ(S[2].Host, "node2.example.com");
  EXPECT_EQ(S[2].Port, 65535);
}

TEST(NetTcpSpec, MalformedLinesDiagnosedByLine) {
  const char *Bad[] = {"nodeport\n", ":5000\n", "node:\n", "node:0\n",
                       "node:70000\n", "node:12x\n", "# only comments\n"};
  for (const char *Text : Bad) {
    try {
      parseRankSpec(Text, "spec.txt");
      FAIL() << "accepted: " << Text;
    } catch (const TransportError &E) {
      EXPECT_NE(std::string(E.what()).find("spec.txt"), std::string::npos)
          << E.what();
    }
  }
}

TEST(NetTcpSpec, LocalSpecReservesDistinctPorts) {
  std::string Dir = tempMeshDir();
  std::string Path = Dir + "/hosts.spec";
  std::vector<HostPort> Spec = writeLocalRankSpec(Path, 6);
  ASSERT_EQ(Spec.size(), 6u);
  std::set<uint16_t> Ports;
  for (const HostPort &HP : Spec) {
    EXPECT_EQ(HP.Host, "127.0.0.1");
    Ports.insert(HP.Port);
  }
  EXPECT_EQ(Ports.size(), 6u);
  // The file round-trips through the parser to the same endpoints.
  std::vector<HostPort> Read = loadRankSpec(Path);
  ASSERT_EQ(Read.size(), Spec.size());
  for (size_t I = 0; I != Spec.size(); ++I) {
    EXPECT_EQ(Read[I].Host, Spec[I].Host);
    EXPECT_EQ(Read[I].Port, Spec[I].Port);
  }
  unlink(Path.c_str());
  rmdir(Dir.c_str());
}

TEST(NetTcpSpec, MeshRejectsWrongRankCount) {
  std::string Dir = tempMeshDir();
  std::string Path = Dir + "/hosts.spec";
  writeLocalRankSpec(Path, 2);
  try {
    TcpOptions Opts;
    Opts.HostsPath = Path;
    connectTcpMesh(0, 4, Opts);
    FAIL() << "2-endpoint spec accepted for a 4-rank mesh";
  } catch (const TransportError &E) {
    EXPECT_NE(std::string(E.what()).find("4-rank"), std::string::npos)
        << E.what();
  }
  unlink(Path.c_str());
  rmdir(Dir.c_str());
}

//===----------------------------------------------------------------------===//
// Environment timeout parsing
//===----------------------------------------------------------------------===//

TEST(NetEnvMs, UnsetAndEmptyUseDefault) {
  {
    ScopedEnv E("DHPF_NET_TIMEOUT_MS", "");
    unsetenv("DHPF_NET_TIMEOUT_MS");
    EXPECT_EQ(envMs("DHPF_NET_TIMEOUT_MS", 1234), 1234);
  }
  ScopedEnv E("DHPF_NET_TIMEOUT_MS", "");
  EXPECT_EQ(envMs("DHPF_NET_TIMEOUT_MS", 1234), 1234);
}

TEST(NetEnvMs, ValidValueParsed) {
  ScopedEnv E("DHPF_NET_CONNECT_MS", "2500");
  EXPECT_EQ(envMs("DHPF_NET_CONNECT_MS", 1), 2500);
}

/// A malformed timeout must be a named error, never a silent fallback to
/// the default (a typo must not quietly change deadlines).
TEST(NetEnvMs, MalformedValuesDiagnosedByName) {
  const char *Bad[] = {"abc", "10x", "1.5", "-3", "0", "99999999999999999"};
  for (const char *V : Bad) {
    ScopedEnv E("DHPF_NET_TIMEOUT_MS", V);
    try {
      envMs("DHPF_NET_TIMEOUT_MS", 1000);
      FAIL() << "value '" << V << "' accepted";
    } catch (const TransportError &Err) {
      EXPECT_NE(std::string(Err.what()).find("DHPF_NET_TIMEOUT_MS"),
                std::string::npos)
          << Err.what();
    }
  }
}

} // namespace
