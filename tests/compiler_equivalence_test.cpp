//===- tests/compiler_equivalence_test.cpp - Option-independence ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// The strongest integration property: every combination of compiler
// options (loop splitting, coalescing, the Section 5 formulation, in-place
// analysis) must produce an SPMD program with *identical numerics* on
// every processor grid — the optimizations may only change schedules and
// costs, never results. Also covers distributions the other end-to-end
// tests leave out (CYCLIC(k), mixed fixed/symbolic grids).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "core/Compiler.h"

#include <gtest/gtest.h>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::core;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

namespace {

/// Runs one compiled program and returns the final contents of \p Array.
std::vector<double> finalArray(const SpmdProgram &SP, const AppInstance &App,
                               const std::vector<int64_t> &Shape,
                               const std::string &Array, bool &Valid) {
  RunConfig RC;
  RC.ProcExtents = {{App.ProcArrayName, Shape}};
  Interpreter I(SP, RC);
  App.Setup(I);
  RunResult RR = I.run();
  Valid = RR.Valid;
  const ArrayStore &A = I.array(Array);
  std::vector<double> Out(A.size());
  for (size_t F = 0; F != A.size(); ++F)
    Out[F] = A.at(F);
  return Out;
}

struct OptCase {
  const char *Name;
  CompilerOptions Opts;
};

std::vector<OptCase> optionMatrix() {
  std::vector<OptCase> Cases;
  Cases.push_back({"default", {}});
  CompilerOptions O;
  O.LoopSplitting = false;
  Cases.push_back({"no-split", O});
  O = {};
  O.Coalescing = false;
  Cases.push_back({"no-coalesce", O});
  O = {};
  O.CombinedFormulation = false;
  Cases.push_back({"per-ref", O});
  O = {};
  O.InPlaceAnalysis = false;
  Cases.push_back({"no-inplace", O});
  O = {};
  O.LoopSplitting = false;
  O.Coalescing = false;
  O.CombinedFormulation = false;
  O.InPlaceAnalysis = false;
  Cases.push_back({"all-off", O});
  return Cases;
}

void expectAllOptionsAgree(const std::function<AppInstance()> &Make,
                           const std::string &Array,
                           const std::vector<std::vector<int64_t>> &Shapes) {
  AppInstance Ref = Make();
  auto RefCompiled = compileProgram(*Ref.Prog);
  for (const std::vector<int64_t> &Shape : Shapes) {
    bool Valid = true;
    std::vector<double> Expect =
        finalArray(RefCompiled->Program, Ref, Shape, Array, Valid);
    EXPECT_TRUE(Valid);
    for (const OptCase &OC : optionMatrix()) {
      AppInstance App = Make();
      auto Compiled = compileProgram(*App.Prog, OC.Opts);
      bool V = true;
      std::vector<double> Got =
          finalArray(Compiled->Program, App, Shape, Array, V);
      EXPECT_TRUE(V) << OC.Name;
      ASSERT_EQ(Got.size(), Expect.size());
      for (size_t F = 0; F != Got.size(); ++F)
        ASSERT_DOUBLE_EQ(Got[F], Expect[F])
            << OC.Name << " diverges at flat index " << F;
    }
  }
}

TEST(CompilerEquivalence, JacobiAcrossOptionMatrix) {
  expectAllOptionsAgree([] { return makeJacobi(12, 2); }, "U",
                        {{2, 2}, {1, 3}});
}

TEST(CompilerEquivalence, GaussAcrossOptionMatrix) {
  expectAllOptionsAgree([] { return makeGauss(10); }, "A", {{2, 2}});
}

TEST(CompilerEquivalence, ErlebacherAcrossOptionMatrix) {
  expectAllOptionsAgree([] { return makeErlebacher(6, 1); }, "D",
                        {{2}, {3}});
}

//===----------------------------------------------------------------------===
// CYCLIC(k) end to end (fixed and symbolic processor counts).
//===----------------------------------------------------------------------===

Program cyclicKStencil(bool Symbolic, int64_t K) {
  Program P("cyck");
  if (Symbolic)
    P.addProcs("P", {Program::procDimSym("NP")});
  else
    P.addProcs("P", {Program::procDim(3)});
  P.addTemplate("T", {range(1, 24)});
  P.addArray("A", {range(1, 24)});
  P.addArray("B", {range(1, 24)});
  P.addAlign({"A", "T", {alignDim(0)}});
  P.addAlign({"B", "T", {alignDim(0)}});
  P.addDistribute({"T", "P", {distCyclicK(K)}});
  Procedure &Proc = P.addProcedure("main");
  ComputeNest N;
  N.Name = "stencil";
  N.Loops = {loop("i", 2, 23)};
  Statement S;
  S.Write = ref("A", {"i"});
  S.Reads = {ref("B", {AffineExpr("i") - 1}),
             ref("B", {AffineExpr("i") + 1})};
  S.SemanticsId = 0;
  N.Stmts = {S};
  P.addNest(Proc, N);
  return P;
}

void runCyclicK(bool Symbolic, int64_t K,
                const std::vector<int64_t> &Procs) {
  Program P = cyclicKStencil(Symbolic, K);
  auto Compiled = compileProgram(P);
  for (int64_t NP : Procs) {
    RunConfig RC;
    RC.ProcExtents = {{"P", {NP}}};
    Interpreter I(Compiled->Program, RC);
    I.setSemantics(0, [](const std::vector<double> &R,
                         const std::vector<int64_t> &, AccumMap &) {
      return R[0] * 10.0 + R[1];
    });
    I.initArray("B", [](const std::vector<int64_t> &Idx) {
      return double(Idx[0]);
    });
    RunResult RR = I.run();
    for (const std::string &V : RR.Violations)
      ADD_FAILURE() << "k=" << K << " NP=" << NP << ": " << V;
    const ArrayStore &A = I.array("A");
    for (int64_t Ii = 2; Ii <= 23; ++Ii)
      EXPECT_DOUBLE_EQ(A.at(A.flatten({Ii})),
                       10.0 * (Ii - 1) + (Ii + 1))
          << "k=" << K << " NP=" << NP << " i=" << Ii;
  }
}

TEST(CyclicK, FixedProcs) { runCyclicK(false, 2, {3}); }
TEST(CyclicK, SymbolicProcsK2) { runCyclicK(true, 2, {1, 2, 3}); }
TEST(CyclicK, SymbolicProcsK3) { runCyclicK(true, 3, {2, 4}); }

//===----------------------------------------------------------------------===
// Compile-once-run-anywhere: the Section 4 headline property.
//===----------------------------------------------------------------------===

TEST(SymbolicProcs, OneProgramManyGrids) {
  AppInstance App = makeJacobi(16, 2);
  auto Compiled = compileProgram(*App.Prog);
  std::vector<double> Ref;
  for (auto Shape : {std::vector<int64_t>{1, 1}, {1, 2}, {2, 2}, {2, 3},
                     {4, 2}}) {
    bool Valid = true;
    std::vector<double> Got =
        finalArray(Compiled->Program, App, Shape, "U", Valid);
    EXPECT_TRUE(Valid);
    if (Ref.empty()) {
      Ref = Got;
      continue;
    }
    ASSERT_EQ(Got.size(), Ref.size());
    for (size_t F = 0; F != Got.size(); ++F)
      ASSERT_DOUBLE_EQ(Got[F], Ref[F])
          << "grid-dependent result at " << F;
  }
}

} // namespace
