//===- tests/malformed_input_test.cpp - Bad-input rejection corpus -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A corpus of malformed inputs for every textual front end — mini-HPF
/// programs, set/relation text, and serialized SPMD programs. Each case
/// must be rejected with an error diagnostic on the expected line, without
/// crashing and without asserting, so the behavior is identical in Debug
/// and Release builds (this file is part of the Release CI job). A
/// malformed input must never silently produce a program.
///
//===----------------------------------------------------------------------===//

#include "core/CompilerDriver.h"
#include "hpf/HpfParser.h"
#include "pset/Relation.h"
#include "spmd/Serialize.h"
#include "support/Diag.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace dhpf;

namespace {

/// One corpus entry: the input text and the 1-based line the first error
/// diagnostic must point at (0 = any line, for whole-input conditions).
struct BadCase {
  const char *Name;
  std::string Text;
  unsigned Line;
};

void expectErrorAtLine(const DiagnosticEngine &Diags, unsigned Line,
                       const char *Name) {
  ASSERT_TRUE(Diags.hasErrors()) << Name << ": accepted malformed input";
  if (Line == 0)
    return;
  for (const Diagnostic &D : Diags.diagnostics()) {
    if (D.S != Severity::Error)
      continue;
    EXPECT_EQ(Line, D.Loc.Line) << Name << ": first error at wrong line: "
                                << D.str();
    return;
  }
}

TEST(MalformedInput, HpfParseErrors) {
  const std::vector<BadCase> Cases = {
      {"unknown keyword", "program p\nfrobnicate x\n", 2},
      {"unterminated bounds", "program p\narray A(1:bad\n", 2},
      {"missing program name", "program\n", 1},
      {"bad processors extent", "program p\nprocessors P(zero)\n", 2},
      {"unknown distribution kind",
       "program p\nprocessors P(4)\ntemplate T(1:8)\n"
       "distribute T(diagonal) onto P\n",
       4},
      {"align without with",
       "program p\narray A(1:8) align (i) T(i)\n", 2},
      {"statement outside nest",
       "program p\narray A(1:8)\nprocedure main\nA(1) = A(2)\n", 4},
      {"do outside nest",
       "program p\nprocedure main\ndo i = 2, 7\n", 3},
      {"malformed do bounds",
       "program p\narray A(1:8)\nprocedure main\nnest n\ndo i = 2,\n"
       "A(i) = A(i)\nendnest\nendprocedure\n",
       5},
      {"overflowing literal",
       "program p\narray A(1:9999999999999999999)\n", 2},
      {"unterminated nest",
       "program p\narray A(1:8)\nprocedure main\nnest n\ndo i = 2, 7\n"
       "A(i) = A(i)\n",
       0},
      {"bad reduce op",
       "program p\nprocedure main\nreduce median r\nendprocedure\n", 3},
      {"endnest without nest",
       "program p\nprocedure main\nendnest\n", 3},
      {"missing program line", "array A(1:8)\n", 0},
  };
  for (const BadCase &C : Cases) {
    DiagnosticEngine Diags;
    auto P = hpf::parseHpfProgram(C.Text, Diags, "bad.hpf");
    EXPECT_FALSE(static_cast<bool>(P)) << C.Name;
    expectErrorAtLine(Diags, C.Line, C.Name);
  }
}

/// Inputs that parse but are semantically malformed: the driver's
/// validation rejects them (so `dhpfc compile` fails with a diagnostic
/// instead of tripping an assert — or silently miscompiling in Release).
TEST(MalformedInput, HpfValidationErrors) {
  const std::vector<const char *> Cases = {
      // undeclared array read inside a nest
      "program p\narray A(1:8)\nprocedure main\nnest n\ndo i = 2, 7\n"
      "B(i) = A(i)\nendnest\nendprocedure\n",
      // subscript arity mismatch
      "program p\narray A(1:8)\nprocedure main\nnest n\ndo i = 2, 7\n"
      "A(i,i) = A(i)\nendnest\nendprocedure\n",
      // duplicate loop variable in one nest
      "program p\narray A(1:8,1:8)\nprocedure main\nnest n\ndo i = 2, 7\n"
      "do i = 2, 7\nA(i,i) = A(i,i)\nendnest\nendprocedure\n",
      // align to an undeclared template
      "program p\narray A(1:8) align (i) with T(i)\n",
      // distribute an undeclared template
      "program p\nprocessors P(4)\ndistribute T(block) onto P\n",
      // distribute onto an undeclared processor array
      "program p\ntemplate T(1:8)\ndistribute T(block) onto P\n",
      // distribution arity mismatch
      "program p\nprocessors P(4)\ntemplate T(1:8)\n"
      "distribute T(block, block) onto P\n",
  };
  for (const char *Text : Cases) {
    DiagnosticEngine Diags;
    auto P = hpf::parseHpfProgram(Text, Diags, "bad.hpf");
    ASSERT_TRUE(static_cast<bool>(P)) << Text << "\n" << Diags.str();
    EXPECT_FALSE(core::validateProgram(**P, Diags)) << Text;
    EXPECT_TRUE(Diags.hasErrors()) << Text;
  }
}

TEST(MalformedInput, SetText) {
  const std::vector<BadCase> Cases = {
      {"unterminated tuple", "{ [a : a >= 0 }", 1},
      {"missing braces", "[p] -> [i]", 1},
      {"garbage constraint", "{ [i] : i >< 3 }", 1},
      {"unterminated exists", "{ [i] : exists(e : i = e }", 1},
      {"trailing garbage", "{ [i] : i >= 0 } extra", 1},
      {"multiline error on line 2", "{ [i,j] :\n i >= && j >= 0 }", 2},
      {"overflowing coefficient",
       "{ [i] : 9999999999999999999 * i >= 0 }", 1},
  };
  for (const BadCase &C : Cases) {
    DiagnosticEngine Diags;
    auto R = parseRelation(C.Text, Diags, "bad.set");
    EXPECT_FALSE(static_cast<bool>(R)) << C.Name;
    expectErrorAtLine(Diags, C.Line, C.Name);
  }
}

/// A minimal well-formed .spmd skeleton the structural cases perturb.
std::string spmdSkeleton(const std::string &Events, const std::string &Root) {
  return "(spmd 1\n"                                       // line 1
         " (vars \"i\")\n"                                 // line 2
         " (proc \"P\" (vpdim block 0 4 \"\" 2 \"\" 0 1 0))\n" // line 3
         " (myslots 0)\n"                                  // line 4
         " (coordslots 0)\n"                               // line 5
         " (stmts)\n"                                      // line 6
         " (events" + Events + ")\n"                       // line 7
         " (root " + Root + ")\n"                          // line 8
         " (source nil))\n";                               // line 9
}

TEST(MalformedInput, SpmdPrograms) {
  const std::vector<BadCase> Cases = {
      {"empty input", "", 0},
      {"truncated list", "(spmd 1 (vars", 1},
      {"wrong magic", "(program 1)", 1},
      {"unsupported version", "(spmd 2)", 1},
      {"missing sections", "(spmd 1 (vars))", 1},
      {"trailing garbage", spmdSkeleton("", "(seq)") + ")", 10},
      {"duplicate section",
       "(spmd 1 (vars) (vars) (proc \"P\") (myslots) (coordslots) (stmts) "
       "(events) (root (seq)) (source nil))",
       1},
      {"slot out of range", spmdSkeleton("", "(compute \"n\" (loop \"i\" 7 "
                                             "(c 1) (c 4) (c 1) (leaf 0 "
                                             "\"x\")))"),
       8},
      {"leaf id out of range", spmdSkeleton("", "(compute \"n\" (leaf 3 "
                                                "\"x\"))"),
       8},
      {"send names missing event", spmdSkeleton("", "(send 0)"), 8},
      {"nil operand inside add", spmdSkeleton("", "(timeloop \"i\" 0 (+ nil "
                                                  "(c 1)) (c 3) (seq))"),
       8},
      {"zero divisor", spmdSkeleton("", "(timeloop \"i\" 0 (fdiv 0 (c 4)) "
                                        "(c 3) (seq))"),
       8},
      {"bad embedded relation",
       spmdSkeleton(" (event 0 \"A\" (0) (0) 0 (inplace runtime -1 \"{ [i] "
                    ": oops\" nil) (block) (block))",
                    "(seq)"),
       0},
      {"bad embedded source",
       "(spmd 1\n (vars)\n (proc \"P\")\n (myslots)\n (coordslots)\n"
       " (stmts)\n (events)\n (root (seq))\n (source \"program\"))\n",
       0},
      {"unterminated string", "(spmd 1 (vars \"i))", 1},
      {"non-integer slot", "(spmd 1 (vars \"i\") (proc \"P\") (myslots 1.5) "
                           "(coordslots) (stmts) (events) (root (seq)) "
                           "(source nil))",
       1},
  };
  for (const BadCase &C : Cases) {
    DiagnosticEngine Diags;
    auto P = spmd::parseSpmdProgram(C.Text, Diags, "bad.spmd");
    EXPECT_EQ(nullptr, P) << C.Name;
    expectErrorAtLine(Diags, C.Line, C.Name);
  }
}

/// Every corpus entry above must also fail through the abort-free public
/// entry points when diagnostics are collected; none may leave the engine
/// empty (a silent failure would be indistinguishable from success).
TEST(MalformedInput, EveryFailureIsDiagnosed) {
  DiagnosticEngine Diags;
  auto P = hpf::parseHpfProgram("program p\nnonsense\n", Diags);
  EXPECT_FALSE(static_cast<bool>(P));
  EXPECT_FALSE(Diags.empty());
  EXPECT_GE(Diags.errorCount(), 1u);
  // Recovery: both bad lines of a two-error input are reported in one pass.
  Diags.clear();
  auto P2 = hpf::parseHpfProgram("program p\nnonsense\nmore nonsense\n",
                                 Diags);
  EXPECT_FALSE(static_cast<bool>(P2));
  EXPECT_GE(Diags.errorCount(), 2u);
}

} // namespace
