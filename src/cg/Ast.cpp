//===- cg/Ast.cpp - Generated-code AST printing and execution ------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "cg/Ast.h"

#include <sstream>

using namespace dhpf;
using namespace dhpf::cg;

std::string GuardAtom::str() const {
  switch (K) {
  case Kind::NonNeg:
    return E.str() + " >= 0";
  case Kind::Zero:
    return E.str() + " == 0";
  case Kind::ModZero:
    return "mod(" + E.str() + "," + std::to_string(Mod) + ") == 0";
  }
  return "";
}

std::string Guard::str() const {
  if (AnyOf.empty())
    return "true";
  std::ostringstream OS;
  for (unsigned I = 0; I != AnyOf.size(); ++I) {
    if (I)
      OS << " .or. ";
    if (AnyOf.size() > 1)
      OS << '(';
    for (unsigned J = 0; J != AnyOf[I].size(); ++J) {
      if (J)
        OS << " .and. ";
      OS << AnyOf[I][J].str();
    }
    if (AnyOf[I].empty())
      OS << "true";
    if (AnyOf.size() > 1)
      OS << ')';
  }
  return OS.str();
}

namespace {

void printRec(const AstNode &N, unsigned Indent, std::ostringstream &OS) {
  std::string Pad(Indent * 2, ' ');
  switch (N.K) {
  case AstNode::Kind::Block:
    for (const AstPtr &C : N.Children)
      printRec(*C, Indent, OS);
    break;
  case AstNode::Kind::Loop:
    OS << Pad << "do " << N.VarName << " = " << N.LB.str() << ", "
       << N.UB.str();
    if (!N.Step.isConst(1))
      OS << ", " << N.Step.str();
    OS << '\n';
    for (const AstPtr &C : N.Children)
      printRec(*C, Indent + 1, OS);
    OS << Pad << "enddo\n";
    break;
  case AstNode::Kind::If: {
    OS << Pad << "if (";
    for (unsigned I = 0; I != N.AllOf.size(); ++I) {
      if (I)
        OS << " .and. ";
      bool Paren = N.AllOf.size() > 1 && N.AllOf[I].AnyOf.size() > 1;
      OS << (Paren ? "(" : "") << N.AllOf[I].str() << (Paren ? ")" : "");
    }
    if (N.AllOf.empty())
      OS << "true";
    OS << ") then\n";
    for (const AstPtr &C : N.Children)
      printRec(*C, Indent + 1, OS);
    OS << Pad << "endif\n";
    break;
  }
  case AstNode::Kind::Leaf:
    OS << Pad << (N.Label.empty() ? ("S" + std::to_string(N.LeafId))
                                  : N.Label)
       << '\n';
    break;
  }
}

} // namespace

std::string cg::printAst(const AstNode &N, unsigned Indent) {
  std::ostringstream OS;
  printRec(N, Indent, OS);
  return OS.str();
}

namespace {

enum class GuardFold { True, False, Keep };

/// Folds constant atoms within a guard; returns True/False when decided.
GuardFold foldGuard(Guard &G) {
  if (G.AnyOf.empty())
    return GuardFold::True;
  std::vector<std::vector<GuardAtom>> Kept;
  for (auto &Conj : G.AnyOf) {
    std::vector<GuardAtom> Atoms;
    bool ConjFalse = false;
    for (GuardAtom &A : Conj) {
      if (A.E.kind() != Expr::Kind::Const) {
        Atoms.push_back(A);
        continue;
      }
      int64_t V = A.E.constVal();
      bool Holds = A.K == GuardAtom::Kind::NonNeg  ? V >= 0
                   : A.K == GuardAtom::Kind::Zero ? V == 0
                                                  : floorMod(V, A.Mod) == 0;
      if (!Holds) {
        ConjFalse = true;
        break;
      }
      // A constant-true atom: drop it.
    }
    if (ConjFalse)
      continue;
    if (Atoms.empty())
      return GuardFold::True; // one branch is unconditionally true
    Kept.push_back(std::move(Atoms));
  }
  if (Kept.empty())
    return GuardFold::False;
  G.AnyOf = std::move(Kept);
  return GuardFold::Keep;
}

unsigned optimizeRec(AstPtr &N) {
  unsigned Removed = 0;
  // Optimize children first.
  std::vector<AstPtr> NewChildren;
  for (AstPtr &C : N->Children) {
    Removed += optimizeRec(C);
    if (!C) {
      ++Removed;
      continue;
    }
    // Flatten nested blocks.
    if (C->K == AstNode::Kind::Block) {
      if (C->Children.empty()) {
        ++Removed;
        continue;
      }
      for (AstPtr &GC : C->Children)
        NewChildren.push_back(std::move(GC));
      continue;
    }
    NewChildren.push_back(std::move(C));
  }
  N->Children = std::move(NewChildren);

  switch (N->K) {
  case AstNode::Kind::Leaf:
    return Removed;
  case AstNode::Kind::Loop:
    if (N->LB.kind() == Expr::Kind::Const &&
        N->UB.kind() == Expr::Kind::Const &&
        N->LB.constVal() > N->UB.constVal()) {
      N.reset();
      return Removed + 1;
    }
    if (N->Children.empty()) {
      N.reset();
      return Removed + 1;
    }
    return Removed;
  case AstNode::Kind::If: {
    std::vector<Guard> Kept;
    for (Guard &G : N->AllOf) {
      switch (foldGuard(G)) {
      case GuardFold::True:
        break; // dropped
      case GuardFold::False:
        N.reset();
        return Removed + 1;
      case GuardFold::Keep:
        Kept.push_back(std::move(G));
        break;
      }
    }
    if (N->Children.empty()) {
      N.reset();
      return Removed + 1;
    }
    if (Kept.empty()) { // unconditionally true: splice children upward
      N->K = AstNode::Kind::Block;
      N->AllOf.clear();
      return Removed;
    }
    N->AllOf = std::move(Kept);
    return Removed;
  }
  case AstNode::Kind::Block:
    return Removed;
  }
  return Removed;
}

} // namespace

unsigned cg::optimizeAst(AstPtr &Tree) {
  unsigned Removed = optimizeRec(Tree);
  if (!Tree)
    Tree = AstNode::block();
  return Removed;
}

uint64_t cg::execute(
    const AstNode &N, std::vector<int64_t> &Env,
    const std::function<void(int, const std::vector<int64_t> &)> &OnLeaf) {
  switch (N.K) {
  case AstNode::Kind::Block: {
    uint64_t Count = 0;
    for (const AstPtr &C : N.Children)
      Count += execute(*C, Env, OnLeaf);
    return Count;
  }
  case AstNode::Kind::Loop: {
    int64_t Lo = N.LB.eval(Env), Hi = N.UB.eval(Env);
    int64_t Step = N.Step.eval(Env);
    assert(Step > 0 && "loop step must be positive");
    uint64_t Count = 0;
    assert(N.VarSlot < Env.size() && "environment too small for loop var");
    int64_t Saved = Env[N.VarSlot];
    for (int64_t V = Lo; V <= Hi; V += Step) {
      Env[N.VarSlot] = V;
      for (const AstPtr &C : N.Children)
        Count += execute(*C, Env, OnLeaf);
    }
    Env[N.VarSlot] = Saved;
    return Count;
  }
  case AstNode::Kind::If: {
    for (const Guard &G : N.AllOf)
      if (!G.holds(Env))
        return 0;
    uint64_t Count = 0;
    for (const AstPtr &C : N.Children)
      Count += execute(*C, Env, OnLeaf);
    return Count;
  }
  case AstNode::Kind::Leaf:
    OnLeaf(N.LeafId, Env);
    return 1;
  }
  return 0;
}
