//===- cg/Expr.h - Integer expressions for generated code ----------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable integer expression trees used in generated SPMD code: loop
/// bounds (with min/max and integer ceil/floor division), guards, and
/// subscripts. Variables are resolved to environment slots at construction
/// (via VarTable) so interpretation is a fast vector lookup — the same AST
/// is both pretty-printed as pseudo-Fortran and executed by the SPMD
/// interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CG_EXPR_H
#define DHPF_CG_EXPR_H

#include "support/MathExtras.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace dhpf {
namespace cg {

/// Maps variable names to environment slots. One table is shared by a
/// compilation (parameters, processor ids, loop variables); the interpreter
/// allocates one value vector per activation.
class VarTable {
public:
  /// Returns the slot for \p Name, creating it if needed.
  unsigned slot(const std::string &Name) {
    for (unsigned I = 0, E = Names.size(); I != E; ++I)
      if (Names[I] == Name)
        return I;
    Names.push_back(Name);
    return Names.size() - 1;
  }
  /// Returns the slot for \p Name; asserts that it exists.
  unsigned lookup(const std::string &Name) const {
    for (unsigned I = 0, E = Names.size(); I != E; ++I)
      if (Names[I] == Name)
        return I;
    assert(false && "unknown variable");
    return ~0u;
  }
  unsigned size() const { return Names.size(); }
  const std::string &name(unsigned Slot) const { return Names[Slot]; }

private:
  std::vector<std::string> Names;
};

/// An immutable integer expression. Copy is cheap (shared nodes).
class Expr {
public:
  enum class Kind : uint8_t {
    Const,     // K
    Var,       // environment slot
    Add,       // sum of operands
    Mul,       // K * op
    MulE,      // op0 * op1
    FloorDiv,  // floor(op / K), K > 0
    CeilDiv,   // ceil(op / K), K > 0
    Mod,       // op mod K (mathematical, in [0, K)), K > 0
    FloorDivE, // floor(op0 / op1), op1 evaluates > 0
    ModE,      // op0 mod op1 (mathematical), op1 evaluates > 0
    Min,       // min of operands
    Max,       // max of operands
  };

  Expr() = default;

  static Expr constant(int64_t K);
  static Expr var(unsigned Slot, std::string Name);
  static Expr add(Expr A, Expr B);
  static Expr sub(Expr A, Expr B) { return add(A, mul(B, -1)); }
  static Expr mul(Expr A, int64_t K);
  /// Product of two expressions (needed by the virtual-processor code of
  /// Section 4, e.g. B*p with a runtime block size).
  static Expr mulExpr(Expr A, Expr B);
  static Expr floorDiv(Expr A, int64_t K);
  static Expr ceilDiv(Expr A, int64_t K);
  static Expr mod(Expr A, int64_t K);
  /// Division/modulus by a runtime expression (symbolic processor counts).
  static Expr floorDivExpr(Expr A, Expr B);
  static Expr modExpr(Expr A, Expr B);
  static Expr min(std::vector<Expr> Ops);
  static Expr max(std::vector<Expr> Ops);

  bool isValid() const { return N != nullptr; }
  Kind kind() const { return N->K; }
  /// The constant value (Const) or constant operand (Mul/Div/Mod).
  int64_t constVal() const { return N->KVal; }
  unsigned varSlot() const { return N->Slot; }
  const std::vector<Expr> &operands() const { return N->Ops; }

  /// True if this is a constant equal to \p K.
  bool isConst(int64_t K) const {
    return N && N->K == Kind::Const && N->KVal == K;
  }
  /// Structural equality (used to merge identical bounds).
  bool identicalTo(const Expr &O) const;

  /// Evaluates against an environment vector indexed by slot.
  int64_t eval(const std::vector<int64_t> &Env) const;

  /// Renders as readable pseudo-code, e.g. "max(1, 25*p + 1)".
  std::string str() const;

private:
  struct Node {
    Kind K;
    int64_t KVal = 0;
    unsigned Slot = 0;
    std::string Name;
    std::vector<Expr> Ops;
  };
  std::shared_ptr<const Node> N;

  static Expr make(Node NN) {
    Expr E;
    E.N = std::make_shared<const Node>(std::move(NN));
    return E;
  }
};

} // namespace cg
} // namespace dhpf

#endif // DHPF_CG_EXPR_H
