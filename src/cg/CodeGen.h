//===- cg/CodeGen.h - Loop-nest generation from integer sets -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates loop nests that enumerate integer sets: the paper's
/// Codegen(S1..Sv | Known) operation (Appendix B), after Kelly, Pugh and
/// Rosser's multiple-mappings code generation. Given the iteration sets of
/// v statements over a common loop space, it synthesizes a shared loop nest
/// that enumerates the union of tuples in lexicographic order, executing
/// statement j before statement k (j < k) for equal tuples; per-statement
/// membership is enforced by bounds when possible and guards otherwise.
///
/// Differences from full KPR (documented in DESIGN.md): guards that differ
/// across statements are attached to the statements rather than used to
/// split loop ranges, so no code is replicated; the \p Known set prunes
/// parameter-only conditions.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CG_CODEGEN_H
#define DHPF_CG_CODEGEN_H

#include "cg/Ast.h"
#include "pset/Relation.h"

#include <string>
#include <vector>

namespace dhpf {
namespace cg {

/// One statement to be enumerated: its iteration set and identity.
struct StmtInstance {
  int LeafId = 0;
  std::string Label;
  Relation Iters; // a set whose rank equals the loop-variable count
};

struct CodeGenOptions {
  /// Generate strided loops for single-stride dimensions instead of
  /// mod-guards (Section 4's cyclic distributions rely on this).
  bool StrideLoops = true;
  /// Number of levels guards may be hoisted out of (paper Section 5 limits
  /// this to avoid code replication; we record it for the same purpose).
  unsigned GuardLiftLevels = 1;
};

/// Generates loop nests from integer sets. The VarTable assigns environment
/// slots shared with the interpreter: parameters and loop variables are
/// registered by name.
class CodeGen {
public:
  CodeGen(VarTable &Vars, CodeGenOptions Opts = {})
      : Vars(Vars), Opts(Opts) {}

  /// The paper's Codegen(S1..Sv | Known): emits a loop nest over
  /// \p LoopVars enumerating every statement's set in lexicographic order.
  /// \p Known (may be null) is a rank-0 set of parameter constraints
  /// guaranteed true in the enclosing scope; implied conditions are pruned.
  AstPtr codegen(const std::vector<StmtInstance> &Stmts,
                 const std::vector<std::string> &LoopVars,
                 const Relation *Known = nullptr);

  /// Convenience wrapper for a single set.
  AstPtr codegenSet(const Relation &S, const std::vector<std::string> &LoopVars,
                    int LeafId = 0, const std::string &Label = "",
                    const Relation *Known = nullptr);

  /// Generates one loop nest per conjunct of \p S, concatenated in a block
  /// — the strategy the paper's MM-CODEGEN applies to disjunctive sets
  /// ("computes disjoint disjunctive form and then generates separate code
  /// for each of the resulting terms"). Each nest gets exact bounds instead
  /// of a shared hull with membership guards, avoiding hull-sized scans for
  /// sparse unions (communication sets). Tuples in overlapping conjuncts
  /// are visited once per conjunct; callers must tolerate or deduplicate.
  AstPtr codegenSetPerConjunct(const Relation &S,
                               const std::vector<std::string> &LoopVars,
                               int LeafId = 0, const std::string &Label = "",
                               const Relation *Known = nullptr);

  VarTable &vars() { return Vars; }

private:
  VarTable &Vars;
  CodeGenOptions Opts;
};

} // namespace cg
} // namespace dhpf

#endif // DHPF_CG_CODEGEN_H
