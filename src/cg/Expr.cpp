//===- cg/Expr.cpp - Integer expressions for generated code --------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "cg/Expr.h"

#include <algorithm>
#include <sstream>

using namespace dhpf;
using namespace dhpf::cg;

Expr Expr::constant(int64_t K) {
  Node N;
  N.K = Kind::Const;
  N.KVal = K;
  return make(std::move(N));
}

Expr Expr::var(unsigned Slot, std::string Name) {
  Node N;
  N.K = Kind::Var;
  N.Slot = Slot;
  N.Name = std::move(Name);
  return make(std::move(N));
}

Expr Expr::add(Expr A, Expr B) {
  assert(A.isValid() && B.isValid());
  if (A.N->K == Kind::Const && B.N->K == Kind::Const)
    return constant(addOv(A.N->KVal, B.N->KVal));
  if (A.isConst(0))
    return B;
  if (B.isConst(0))
    return A;
  Node N;
  N.K = Kind::Add;
  // Flatten nested sums for readable output.
  if (A.N->K == Kind::Add)
    N.Ops = A.N->Ops;
  else
    N.Ops.push_back(A);
  if (B.N->K == Kind::Add)
    N.Ops.insert(N.Ops.end(), B.N->Ops.begin(), B.N->Ops.end());
  else
    N.Ops.push_back(B);
  // Fold the constant operands together.
  int64_t K = 0;
  std::vector<Expr> Ops;
  for (Expr &Op : N.Ops) {
    if (Op.N->K == Kind::Const)
      K = addOv(K, Op.N->KVal);
    else
      Ops.push_back(Op);
  }
  if (K != 0)
    Ops.push_back(constant(K));
  if (Ops.size() == 1)
    return Ops[0];
  N.Ops = std::move(Ops);
  return make(std::move(N));
}

Expr Expr::mul(Expr A, int64_t K) {
  assert(A.isValid());
  if (K == 0)
    return constant(0);
  if (K == 1)
    return A;
  if (A.N->K == Kind::Const)
    return constant(mulOv(A.N->KVal, K));
  if (A.N->K == Kind::Mul)
    return mul(A.N->Ops[0], mulOv(A.N->KVal, K));
  Node N;
  N.K = Kind::Mul;
  N.KVal = K;
  N.Ops.push_back(std::move(A));
  return make(std::move(N));
}

Expr Expr::mulExpr(Expr A, Expr B) {
  assert(A.isValid() && B.isValid());
  if (A.N->K == Kind::Const)
    return mul(B, A.N->KVal);
  if (B.N->K == Kind::Const)
    return mul(A, B.N->KVal);
  Node N;
  N.K = Kind::MulE;
  N.Ops.push_back(std::move(A));
  N.Ops.push_back(std::move(B));
  return make(std::move(N));
}

Expr Expr::floorDivExpr(Expr A, Expr B) {
  assert(A.isValid() && B.isValid());
  if (B.N->K == Kind::Const)
    return floorDiv(A, B.N->KVal);
  Node N;
  N.K = Kind::FloorDivE;
  N.Ops.push_back(std::move(A));
  N.Ops.push_back(std::move(B));
  return make(std::move(N));
}

Expr Expr::modExpr(Expr A, Expr B) {
  assert(A.isValid() && B.isValid());
  if (B.N->K == Kind::Const)
    return mod(A, B.N->KVal);
  Node N;
  N.K = Kind::ModE;
  N.Ops.push_back(std::move(A));
  N.Ops.push_back(std::move(B));
  return make(std::move(N));
}

Expr Expr::floorDiv(Expr A, int64_t K) {
  assert(K > 0 && "floorDiv expects a positive divisor");
  if (K == 1)
    return A;
  if (A.N->K == Kind::Const)
    return constant(dhpf::floorDiv(A.N->KVal, K));
  Node N;
  N.K = Kind::FloorDiv;
  N.KVal = K;
  N.Ops.push_back(std::move(A));
  return make(std::move(N));
}

Expr Expr::ceilDiv(Expr A, int64_t K) {
  assert(K > 0 && "ceilDiv expects a positive divisor");
  if (K == 1)
    return A;
  if (A.N->K == Kind::Const)
    return constant(dhpf::ceilDiv(A.N->KVal, K));
  Node N;
  N.K = Kind::CeilDiv;
  N.KVal = K;
  N.Ops.push_back(std::move(A));
  return make(std::move(N));
}

Expr Expr::mod(Expr A, int64_t K) {
  assert(K > 0 && "mod expects a positive modulus");
  if (K == 1)
    return constant(0);
  if (A.N->K == Kind::Const)
    return constant(floorMod(A.N->KVal, K));
  Node N;
  N.K = Kind::Mod;
  N.KVal = K;
  N.Ops.push_back(std::move(A));
  return make(std::move(N));
}

Expr Expr::min(std::vector<Expr> Ops) {
  assert(!Ops.empty());
  std::vector<Expr> Flat;
  for (Expr &Op : Ops) {
    if (Op.N->K == Kind::Min)
      Flat.insert(Flat.end(), Op.N->Ops.begin(), Op.N->Ops.end());
    else
      Flat.push_back(std::move(Op));
  }
  // Deduplicate identical operands; fold constants.
  std::vector<Expr> Uniq;
  bool HaveK = false;
  int64_t K = 0;
  for (Expr &Op : Flat) {
    if (Op.N->K == Kind::Const) {
      K = HaveK ? std::min(K, Op.N->KVal) : Op.N->KVal;
      HaveK = true;
      continue;
    }
    bool Dup = false;
    for (const Expr &U : Uniq)
      if (U.identicalTo(Op)) {
        Dup = true;
        break;
      }
    if (!Dup)
      Uniq.push_back(std::move(Op));
  }
  if (HaveK)
    Uniq.push_back(constant(K));
  if (Uniq.size() == 1)
    return Uniq[0];
  Node N;
  N.K = Kind::Min;
  N.Ops = std::move(Uniq);
  return make(std::move(N));
}

Expr Expr::max(std::vector<Expr> Ops) {
  assert(!Ops.empty());
  std::vector<Expr> Flat;
  for (Expr &Op : Ops) {
    if (Op.N->K == Kind::Max)
      Flat.insert(Flat.end(), Op.N->Ops.begin(), Op.N->Ops.end());
    else
      Flat.push_back(std::move(Op));
  }
  std::vector<Expr> Uniq;
  bool HaveK = false;
  int64_t K = 0;
  for (Expr &Op : Flat) {
    if (Op.N->K == Kind::Const) {
      K = HaveK ? std::max(K, Op.N->KVal) : Op.N->KVal;
      HaveK = true;
      continue;
    }
    bool Dup = false;
    for (const Expr &U : Uniq)
      if (U.identicalTo(Op)) {
        Dup = true;
        break;
      }
    if (!Dup)
      Uniq.push_back(std::move(Op));
  }
  if (HaveK)
    Uniq.push_back(constant(K));
  if (Uniq.size() == 1)
    return Uniq[0];
  Node N;
  N.K = Kind::Max;
  N.Ops = std::move(Uniq);
  return make(std::move(N));
}

bool Expr::identicalTo(const Expr &O) const {
  if (N == O.N)
    return true;
  if (!N || !O.N || N->K != O.N->K || N->KVal != O.N->KVal ||
      N->Slot != O.N->Slot || N->Ops.size() != O.N->Ops.size())
    return false;
  for (unsigned I = 0, E = N->Ops.size(); I != E; ++I)
    if (!N->Ops[I].identicalTo(O.N->Ops[I]))
      return false;
  return true;
}

int64_t Expr::eval(const std::vector<int64_t> &Env) const {
  assert(N && "evaluating an invalid expression");
  switch (N->K) {
  case Kind::Const:
    return N->KVal;
  case Kind::Var:
    assert(N->Slot < Env.size() && "environment too small");
    return Env[N->Slot];
  case Kind::Add: {
    int64_t S = 0;
    for (const Expr &Op : N->Ops)
      S = addOv(S, Op.eval(Env));
    return S;
  }
  case Kind::Mul:
    return mulOv(N->KVal, N->Ops[0].eval(Env));
  case Kind::MulE:
    return mulOv(N->Ops[0].eval(Env), N->Ops[1].eval(Env));
  case Kind::FloorDiv:
    return dhpf::floorDiv(N->Ops[0].eval(Env), N->KVal);
  case Kind::CeilDiv:
    return dhpf::ceilDiv(N->Ops[0].eval(Env), N->KVal);
  case Kind::Mod:
    return floorMod(N->Ops[0].eval(Env), N->KVal);
  case Kind::FloorDivE:
    return dhpf::floorDiv(N->Ops[0].eval(Env), N->Ops[1].eval(Env));
  case Kind::ModE:
    return floorMod(N->Ops[0].eval(Env), N->Ops[1].eval(Env));
  case Kind::Min: {
    int64_t V = N->Ops[0].eval(Env);
    for (unsigned I = 1, E = N->Ops.size(); I != E; ++I)
      V = std::min(V, N->Ops[I].eval(Env));
    return V;
  }
  case Kind::Max: {
    int64_t V = N->Ops[0].eval(Env);
    for (unsigned I = 1, E = N->Ops.size(); I != E; ++I)
      V = std::max(V, N->Ops[I].eval(Env));
    return V;
  }
  }
  assert(false && "unknown expression kind");
  return 0;
}

std::string Expr::str() const {
  if (!N)
    return "<invalid>";
  std::ostringstream OS;
  switch (N->K) {
  case Kind::Const:
    OS << N->KVal;
    break;
  case Kind::Var:
    OS << N->Name;
    break;
  case Kind::Add: {
    for (unsigned I = 0, E = N->Ops.size(); I != E; ++I) {
      const Expr &Op = N->Ops[I];
      if (I == 0) {
        OS << Op.str();
        continue;
      }
      // Render "+ -k" and "+ -k*x" as subtraction.
      if (Op.N->K == Kind::Const && Op.N->KVal < 0) {
        OS << " - " << -Op.N->KVal;
        continue;
      }
      if (Op.N->K == Kind::Mul && Op.N->KVal < 0) {
        OS << " - " << mul(Op.N->Ops[0], -Op.N->KVal).str();
        continue;
      }
      OS << " + " << Op.str();
    }
    break;
  }
  case Kind::Mul: {
    bool Paren = N->Ops[0].N->K == Kind::Add;
    OS << N->KVal << '*' << (Paren ? "(" : "") << N->Ops[0].str()
       << (Paren ? ")" : "");
    break;
  }
  case Kind::FloorDiv:
    OS << "floor((" << N->Ops[0].str() << ")/" << N->KVal << ')';
    break;
  case Kind::CeilDiv:
    OS << "ceil((" << N->Ops[0].str() << ")/" << N->KVal << ')';
    break;
  case Kind::Mod:
    OS << "mod(" << N->Ops[0].str() << ',' << N->KVal << ')';
    break;
  case Kind::MulE:
    OS << '(' << N->Ops[0].str() << ")*(" << N->Ops[1].str() << ')';
    break;
  case Kind::FloorDivE:
    OS << "floor((" << N->Ops[0].str() << ")/(" << N->Ops[1].str() << "))";
    break;
  case Kind::ModE:
    OS << "mod(" << N->Ops[0].str() << ',' << N->Ops[1].str() << ')';
    break;
  case Kind::Min:
  case Kind::Max:
    OS << (N->K == Kind::Min ? "min(" : "max(");
    for (unsigned I = 0, E = N->Ops.size(); I != E; ++I)
      OS << (I ? ", " : "") << N->Ops[I].str();
    OS << ')';
    break;
  }
  return OS.str();
}
