//===- cg/CodeGen.cpp - Loop-nest generation from integer sets -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "cg/CodeGen.h"

#include "pset/OmegaTest.h"

#include <utility>

using namespace dhpf;
using namespace dhpf::cg;

namespace {

/// Per-conjunct bound/guard material for one loop level.
struct ConjLevel {
  std::vector<Expr> LBs, UBs;       // bound expressions for the level var
  std::vector<GuardAtom> RowAtoms;  // direct membership atoms (include var)
  std::vector<GuardAtom> ModAtoms;  // stride atoms when stride-loop unused
  bool HasStride = false;
  int64_t Step = 1;
  Expr Residue; // value the level var is congruent to (mod Step)
};

/// Per-statement generation state.
struct StmtState {
  int LeafId;
  std::string Label;
  std::vector<Relation> Lv; // Lv[d]: projection onto dims 0..d
  Guard ParamGuard;         // rank-0 conditions (possibly pruned)
  bool ParamGuardTrue = true;
  std::vector<Guard> Pending; // guards accumulated for the leaf
  /// When the statement's set is a union of conjuncts, per-level guards
  /// could mix constraints of different conjuncts across levels; a single
  /// full-membership DNF guard at the leaf is used instead.
  bool UseFullGuard = false;
  Guard FullGuard;
};

/// Builds the linear expression of row \p R over conjunct \p C, excluding
/// the column \p SkipCol (pass ~0u for none). Existential columns other
/// than \p SkipCol must have zero coefficients.
Expr rowExpr(const Conjunct &C, const Row &R, unsigned SkipCol,
             const std::vector<unsigned> &ParamSlots,
             const std::vector<unsigned> &DimSlots, VarTable &Vars) {
  Expr E = Expr::constant(R.constant());
  for (unsigned P = 0; P != C.numParams(); ++P) {
    unsigned Col = C.paramCol(P);
    if (Col == SkipCol || R.Coef[Col] == 0)
      continue;
    E = Expr::add(E, Expr::mul(Expr::var(ParamSlots[P], Vars.name(ParamSlots[P])),
                               R.Coef[Col]));
  }
  assert(C.numIn() == 0 && "code generation expects sets");
  for (unsigned O = 0; O != C.numOut(); ++O) {
    unsigned Col = C.outCol(O);
    if (Col == SkipCol || R.Coef[Col] == 0)
      continue;
    E = Expr::add(E, Expr::mul(Expr::var(DimSlots[O], Vars.name(DimSlots[O])),
                               R.Coef[Col]));
  }
  for (unsigned X = 0; X != C.numExists(); ++X) {
    unsigned Col = C.existCol(X);
    (void)Col;
    assert((Col == SkipCol || R.Coef[Col] == 0) &&
           "unexpected existential in a code-generation row");
  }
  return E;
}

/// Analyzes conjunct \p C for loop level \p D.
ConjLevel analyzeConj(const Conjunct &C, unsigned D,
                      const std::vector<unsigned> &ParamSlots,
                      const std::vector<unsigned> &DimSlots, VarTable &Vars) {
  ConjLevel Out;
  unsigned DCol = C.outCol(D);
  for (const Row &R : C.rows()) {
    int64_t CD = R.Coef[DCol];
    // Identify a divisibility witness in this row, if any.
    int WitCol = -1;
    for (unsigned X = 0; X != C.numExists(); ++X)
      if (R.Coef[C.existCol(X)] != 0) {
        WitCol = static_cast<int>(C.existCol(X));
        break;
      }
    if (CD == 0) {
      // Not a bound at this level, but still part of the conjunct's
      // membership test (used when this level's set is a union): the row
      // only involves outer dimensions, so it is evaluable here.
      GuardAtom A;
      if (WitCol >= 0) {
        assert(R.IsEq && "witnessed inequality after normalization");
        A.E = rowExpr(C, R, WitCol, ParamSlots, DimSlots, Vars);
        A.K = GuardAtom::Kind::ModZero;
        A.Mod = R.Coef[WitCol] < 0 ? -R.Coef[WitCol] : R.Coef[WitCol];
      } else {
        A.E = rowExpr(C, R, ~0u, ParamSlots, DimSlots, Vars);
        A.K = R.IsEq ? GuardAtom::Kind::Zero : GuardAtom::Kind::NonNeg;
      }
      Out.RowAtoms.push_back(std::move(A));
      continue;
    }
    if (WitCol >= 0) {
      assert(R.IsEq && "witnessed inequality after normalization");
      int64_t S = R.Coef[WitCol] < 0 ? -R.Coef[WitCol] : R.Coef[WitCol];
      // Build the row expression excluding both the level variable and the
      // witness column (rowExpr cannot skip two columns), directly.
      Expr RestNoWit = Expr::constant(R.constant());
      for (unsigned P = 0; P != C.numParams(); ++P) {
        unsigned Col = C.paramCol(P);
        if (R.Coef[Col] != 0)
          RestNoWit = Expr::add(
              RestNoWit, Expr::mul(Expr::var(ParamSlots[P],
                                             Vars.name(ParamSlots[P])),
                                   R.Coef[Col]));
      }
      for (unsigned O = 0; O != C.numOut(); ++O) {
        unsigned Col = C.outCol(O);
        if (Col != DCol && R.Coef[Col] != 0)
          RestNoWit = Expr::add(
              RestNoWit,
              Expr::mul(Expr::var(DimSlots[O], Vars.name(DimSlots[O])),
                        R.Coef[Col]));
      }
      // Constraint: CD*x + RestNoWit ≡ 0 (mod S).
      Expr VarD = Expr::var(DimSlots[D], Vars.name(DimSlots[D]));
      GuardAtom MA;
      MA.E = Expr::add(Expr::mul(VarD, CD), RestNoWit);
      MA.K = GuardAtom::Kind::ModZero;
      MA.Mod = S;
      Out.RowAtoms.push_back(MA);
      if ((CD == 1 || CD == -1) && !Out.HasStride) {
        Out.HasStride = true;
        Out.Step = S;
        // x ≡ -CD * RestNoWit (mod S).
        Out.Residue = Expr::mul(RestNoWit, -CD);
      } else {
        Out.ModAtoms.push_back(MA);
      }
      continue;
    }
    Expr Rest = rowExpr(C, R, /*SkipCol=*/DCol, ParamSlots, DimSlots, Vars);
    // Membership atom including the level variable.
    {
      GuardAtom A;
      Expr VarD = Expr::var(DimSlots[D], Vars.name(DimSlots[D]));
      A.E = Expr::add(Expr::mul(VarD, CD), Rest);
      A.K = R.IsEq ? GuardAtom::Kind::Zero : GuardAtom::Kind::NonNeg;
      Out.RowAtoms.push_back(std::move(A));
    }
    if (R.IsEq) {
      // CD*x + Rest = 0  =>  x = -Rest/CD; with |CD| > 1 the ceil/floor
      // pair leaves an empty range unless the division is exact.
      int64_t A = CD < 0 ? -CD : CD;
      Expr Num = CD < 0 ? Rest : Expr::mul(Rest, -1);
      Out.LBs.push_back(Expr::ceilDiv(Num, A));
      Out.UBs.push_back(Expr::floorDiv(Num, A));
      continue;
    }
    if (CD > 0) {
      // CD*x + Rest >= 0  =>  x >= ceil(-Rest / CD).
      Out.LBs.push_back(Expr::ceilDiv(Expr::mul(Rest, -1), CD));
    } else {
      // -|CD|*x + Rest >= 0  =>  x <= floor(Rest / |CD|).
      Out.UBs.push_back(Expr::floorDiv(Rest, -CD));
    }
  }
  return Out;
}

/// Builds a full-membership guard for \p Norm: a DNF with one branch per
/// conjunct containing an atom for every row (evaluable at the innermost
/// level where all loop variables are bound).
Guard fullMembershipGuard(const Relation &Norm,
                          const std::vector<unsigned> &DimSlots,
                          VarTable &Vars) {
  Guard G;
  std::vector<unsigned> ParamSlots;
  for (const std::string &P : Norm.space().params())
    ParamSlots.push_back(Vars.slot(P));
  for (const Conjunct &C : Norm.conjuncts()) {
    std::vector<GuardAtom> Atoms;
    for (const Row &R : C.rows()) {
      int WitCol = -1;
      for (unsigned X = 0; X != C.numExists(); ++X)
        if (R.Coef[C.existCol(X)] != 0) {
          WitCol = static_cast<int>(C.existCol(X));
          break;
        }
      GuardAtom A;
      if (WitCol >= 0) {
        assert(R.IsEq && "witnessed inequality after normalization");
        int64_t S = R.Coef[WitCol] < 0 ? -R.Coef[WitCol] : R.Coef[WitCol];
        A.E = rowExpr(C, R, WitCol, ParamSlots, DimSlots, Vars);
        A.K = GuardAtom::Kind::ModZero;
        A.Mod = S;
      } else {
        A.E = rowExpr(C, R, ~0u, ParamSlots, DimSlots, Vars);
        A.K = R.IsEq ? GuardAtom::Kind::Zero : GuardAtom::Kind::NonNeg;
      }
      Atoms.push_back(std::move(A));
    }
    G.AnyOf.push_back(std::move(Atoms));
  }
  return G;
}

/// Converts a rank-0 relation into a guard (DNF over its conjuncts).
Guard rank0Guard(const Relation &R, VarTable &Vars) {
  Guard G;
  for (const Conjunct &C : R.conjuncts()) {
    std::vector<unsigned> ParamSlots;
    for (const std::string &P : R.space().params())
      ParamSlots.push_back(Vars.slot(P));
    std::vector<GuardAtom> Atoms;
    bool Unrepresentable = false;
    for (const Row &Rw : C.rows()) {
      int WitCol = -1;
      for (unsigned X = 0; X != C.numExists(); ++X)
        if (Rw.Coef[C.existCol(X)] != 0) {
          WitCol = static_cast<int>(C.existCol(X));
          break;
        }
      if (WitCol >= 0) {
        assert(Rw.IsEq);
        int64_t S =
            Rw.Coef[WitCol] < 0 ? -Rw.Coef[WitCol] : Rw.Coef[WitCol];
        GuardAtom A;
        A.E = rowExpr(C, Rw, WitCol, ParamSlots, {}, Vars);
        A.K = GuardAtom::Kind::ModZero;
        A.Mod = S;
        Atoms.push_back(std::move(A));
        continue;
      }
      GuardAtom A;
      A.E = rowExpr(C, Rw, ~0u, ParamSlots, {}, Vars);
      A.K = Rw.IsEq ? GuardAtom::Kind::Zero : GuardAtom::Kind::NonNeg;
      Atoms.push_back(std::move(A));
    }
    if (!Unrepresentable)
      G.AnyOf.push_back(std::move(Atoms));
  }
  return G;
}

} // namespace

AstPtr CodeGen::codegen(const std::vector<StmtInstance> &Stmts,
                        const std::vector<std::string> &LoopVars,
                        const Relation *Known) {
  unsigned Rank = LoopVars.size();
  std::vector<unsigned> DimSlots;
  for (const std::string &V : LoopVars)
    DimSlots.push_back(Vars.slot(V));

  // Prepare per-statement projections.
  std::vector<StmtState> States;
  for (const StmtInstance &S : Stmts) {
    assert(S.Iters.isSet() && S.Iters.numOut() == Rank &&
           "statement set rank must match the loop variables");
    if (S.Iters.isEmpty())
      continue;
    StmtState St;
    St.LeafId = S.LeafId;
    St.Label = S.Label;
    St.Lv.resize(Rank);
    Relation Norm = S.Iters.normalizeExists().simplify().coalesce();
    if (std::as_const(Norm).conjuncts().size() > 1) {
      // A true union: bounds per level come from the projections below
      // (a hull), and exact membership is enforced by one DNF guard at the
      // leaf. Per-level guards would be unsound: they could mix constraints
      // of different conjuncts across levels.
      St.UseFullGuard = true;
      St.FullGuard = fullMembershipGuard(Norm, DimSlots, Vars);
    }
    if (Rank > 0) {
      St.Lv[Rank - 1] = Norm;
      for (unsigned D = Rank - 1; D > 0; --D)
        St.Lv[D - 1] =
            St.Lv[D].projectOutDims(D, 1).normalizeExists().simplify();
    }
    Relation ParamCond = Rank == 0
                             ? Norm
                             : St.Lv[0].projectOutDims(0, 1)
                                   .normalizeExists()
                                   .simplify();
    // Prune: if Known guarantees the condition, no guard is needed.
    bool Trivial = false;
    if (!std::as_const(ParamCond).conjuncts().empty()) {
      bool AllUniverse = true;
      for (const Conjunct &C : std::as_const(ParamCond).conjuncts())
        if (!C.isUniverse())
          AllUniverse = false;
      Trivial = AllUniverse;
    }
    if (!Trivial && Known && Known->isSubsetOf(ParamCond))
      Trivial = true;
    if (!Trivial && !St.UseFullGuard) {
      St.ParamGuard = rank0Guard(ParamCond, Vars);
      St.ParamGuardTrue = false;
    }
    States.push_back(std::move(St));
  }
  if (States.empty())
    return AstNode::block();

  // Recursive generation over levels.
  std::function<AstPtr(unsigned)> Gen = [&](unsigned D) -> AstPtr {
    if (D == Rank) {
      AstPtr Blk = AstNode::block();
      for (StmtState &St : States) {
        AstPtr Leaf = AstNode::leaf(St.LeafId, St.Label);
        std::vector<Guard> Gs;
        if (!St.ParamGuardTrue && States.size() > 1)
          Gs.push_back(St.ParamGuard);
        if (St.UseFullGuard)
          Gs.push_back(St.FullGuard);
        for (Guard &G : St.Pending)
          Gs.push_back(G);
        if (Gs.empty()) {
          Blk->Children.push_back(std::move(Leaf));
        } else {
          AstPtr If = AstNode::guarded(std::move(Gs));
          If->Children.push_back(std::move(Leaf));
          Blk->Children.push_back(std::move(If));
        }
      }
      return Blk;
    }

    // Analyze every statement at this level.
    struct PerStmt {
      std::vector<ConjLevel> Conjs;
    };
    std::vector<PerStmt> Info(States.size());
    std::vector<Expr> LoopLBs, LoopUBs;
    for (unsigned SI = 0; SI != States.size(); ++SI) {
      const Relation &L = States[SI].Lv[D];
      std::vector<unsigned> ParamSlots;
      for (const std::string &P : L.space().params())
        ParamSlots.push_back(Vars.slot(P));
      std::vector<Expr> StmtLBs, StmtUBs;
      for (const Conjunct &C : L.conjuncts()) {
        ConjLevel CL = analyzeConj(C, D, ParamSlots, DimSlots, Vars);
        assert(!CL.LBs.empty() && !CL.UBs.empty() &&
               "code generation requires bounded iteration sets");
        StmtLBs.push_back(Expr::max(CL.LBs));
        StmtUBs.push_back(Expr::min(CL.UBs));
        Info[SI].Conjs.push_back(std::move(CL));
      }
      LoopLBs.push_back(Expr::min(StmtLBs));
      LoopUBs.push_back(Expr::max(StmtUBs));
    }
    Expr LB = Expr::min(LoopLBs);
    Expr UB = Expr::max(LoopUBs);

    // Stride loop: only in the simple single-statement single-conjunct case
    // (this is the case the virtual-processor loops of Section 4 hit).
    int64_t Step = 1;
    if (Opts.StrideLoops && States.size() == 1 &&
        Info[0].Conjs.size() == 1 && Info[0].Conjs[0].HasStride) {
      const ConjLevel &CL = Info[0].Conjs[0];
      Step = CL.Step;
      // Align LB upward to the residue class: LB' = LB + ((res - LB) mod s).
      LB = Expr::add(LB, Expr::mod(Expr::sub(CL.Residue, LB), Step));
    }

    AstPtr Loop =
        AstNode::loop(LoopVars[D], DimSlots[D], LB, UB, Expr::constant(Step));

    // Build per-statement guards for this level (statements with a full
    // membership guard need none here).
    for (unsigned SI = 0; SI != States.size(); ++SI) {
      if (States[SI].UseFullGuard)
        continue;
      Guard G;
      bool NeedGuard = false;
      const PerStmt &PS = Info[SI];
      if (PS.Conjs.size() == 1) {
        const ConjLevel &CL = PS.Conjs[0];
        std::vector<GuardAtom> Atoms = CL.ModAtoms;
        if (CL.HasStride && !(Step > 1 && States.size() == 1)) {
          // Stride not folded into the loop: keep it as a mod guard.
          GuardAtom A;
          A.E = Expr::sub(Expr::var(DimSlots[D], Vars.name(DimSlots[D])),
                          CL.Residue);
          A.K = GuardAtom::Kind::ModZero;
          A.Mod = CL.Step;
          Atoms.push_back(std::move(A));
        }
        // Shared loop bounds may exceed this statement's own: add its bound
        // atoms unless its bounds are exactly the loop bounds.
        bool SameBounds =
            LoopLBs[SI].identicalTo(LB) && LoopUBs[SI].identicalTo(UB);
        if (!SameBounds)
          for (const GuardAtom &A : CL.RowAtoms)
            if (A.K != GuardAtom::Kind::ModZero)
              Atoms.push_back(A);
        if (!Atoms.empty()) {
          G.AnyOf.push_back(std::move(Atoms));
          NeedGuard = true;
        }
      } else {
        for (const ConjLevel &CL : PS.Conjs)
          G.AnyOf.push_back(CL.RowAtoms);
        NeedGuard = true;
      }
      if (NeedGuard)
        States[SI].Pending.push_back(std::move(G));
    }

    AstPtr Body = Gen(D + 1);
    Loop->Children.push_back(std::move(Body));

    return Loop;
  };

  AstPtr Tree = Gen(0);

  // Single-statement parameter guard wraps the whole nest.
  if (States.size() == 1 && !States[0].ParamGuardTrue) {
    AstPtr If = AstNode::guarded({States[0].ParamGuard});
    If->Children.push_back(std::move(Tree));
    Tree = std::move(If);
  }
  return Tree;
}

AstPtr CodeGen::codegenSet(const Relation &S,
                           const std::vector<std::string> &LoopVars,
                           int LeafId, const std::string &Label,
                           const Relation *Known) {
  StmtInstance SI;
  SI.LeafId = LeafId;
  SI.Label = Label;
  SI.Iters = S;
  return codegen({SI}, LoopVars, Known);
}

AstPtr CodeGen::codegenSetPerConjunct(const Relation &S,
                                      const std::vector<std::string> &LoopVars,
                                      int LeafId, const std::string &Label,
                                      const Relation *Known) {
  Relation Norm = S.normalizeExists().simplify().coalesce();
  if (std::as_const(Norm).conjuncts().size() <= 1)
    return codegenSet(Norm, LoopVars, LeafId, Label, Known);
  AstPtr Blk = AstNode::block();
  for (const Conjunct &C : std::as_const(Norm).conjuncts()) {
    Relation One(Norm.space());
    One.addConjunct(C);
    Blk->Children.push_back(codegenSet(One, LoopVars, LeafId, Label, Known));
  }
  return Blk;
}
