//===- cg/Ast.h - Generated-code AST (loops, guards, leaves) -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST of generated SPMD node code: counted loops with symbolic bounds,
/// guarded blocks, and leaf statements identified by id. The same tree is
/// pretty-printed as pseudo-Fortran (for examples and golden tests) and
/// walked by the interpreter in src/spmd.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CG_AST_H
#define DHPF_CG_AST_H

#include "cg/Expr.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dhpf {
namespace cg {

/// One atomic guard condition over an Expr.
struct GuardAtom {
  Expr E;
  enum class Kind : uint8_t { NonNeg, Zero, ModZero } K = Kind::NonNeg;
  int64_t Mod = 0; // for ModZero: E mod Mod == 0

  bool holds(const std::vector<int64_t> &Env) const {
    int64_t V = E.eval(Env);
    switch (K) {
    case Kind::NonNeg:
      return V >= 0;
    case Kind::Zero:
      return V == 0;
    case Kind::ModZero:
      return floorMod(V, Mod) == 0;
    }
    return false;
  }
  std::string str() const;
};

/// A guard in disjunctive normal form: OR over AnyOf of (AND over atoms).
/// An empty AnyOf means "true".
struct Guard {
  std::vector<std::vector<GuardAtom>> AnyOf;

  bool isTrue() const { return AnyOf.empty(); }
  bool holds(const std::vector<int64_t> &Env) const {
    if (AnyOf.empty())
      return true;
    for (const auto &Conj : AnyOf) {
      bool All = true;
      for (const GuardAtom &A : Conj)
        if (!A.holds(Env)) {
          All = false;
          break;
        }
      if (All)
        return true;
    }
    return false;
  }
  std::string str() const;
};

struct AstNode;
using AstPtr = std::shared_ptr<AstNode>;

/// A node of generated code.
struct AstNode {
  enum class Kind : uint8_t { Block, Loop, If, Leaf };
  Kind K = Kind::Block;

  // Loop: for Var = LB .. UB step Step (Step evaluates > 0; symbolic steps
  // arise in the virtual-processor loops of Section 4).
  std::string VarName;
  unsigned VarSlot = 0;
  Expr LB, UB;
  Expr Step;

  // If: conjunction of guards (each a DNF).
  std::vector<Guard> AllOf;

  // Leaf: statement id plus a printable label.
  int LeafId = -1;
  std::string Label;

  std::vector<AstPtr> Children;

  static AstPtr block() {
    auto N = std::make_shared<AstNode>();
    N->K = Kind::Block;
    return N;
  }
  static AstPtr loop(std::string Var, unsigned Slot, Expr LBE, Expr UBE,
                     Expr StepE = Expr()) {
    auto N = std::make_shared<AstNode>();
    N->K = Kind::Loop;
    N->VarName = std::move(Var);
    N->VarSlot = Slot;
    N->LB = std::move(LBE);
    N->UB = std::move(UBE);
    N->Step = StepE.isValid() ? std::move(StepE) : Expr::constant(1);
    return N;
  }
  static AstPtr guarded(std::vector<Guard> Gs) {
    auto N = std::make_shared<AstNode>();
    N->K = Kind::If;
    N->AllOf = std::move(Gs);
    return N;
  }
  static AstPtr leaf(int Id, std::string LabelText) {
    auto N = std::make_shared<AstNode>();
    N->K = Kind::Leaf;
    N->LeafId = Id;
    N->Label = std::move(LabelText);
    return N;
  }
};

/// Pretty-prints a tree as indented pseudo-Fortran.
std::string printAst(const AstNode &N, unsigned Indent = 0);

/// Walks the tree against \p Env (sized to the VarTable), invoking
/// \p OnLeaf for each executed leaf. \p Env is modified in place for loop
/// variables. Returns the number of leaf executions.
uint64_t execute(const AstNode &N, std::vector<int64_t> &Env,
                 const std::function<void(int, const std::vector<int64_t> &)>
                     &OnLeaf);

/// The "optimization of generated code" pass (paper Table 1's post-pass):
/// folds constant guard atoms, deletes unsatisfiable branches and empty
/// loops/blocks, and flattens nested blocks. Returns the number of nodes
/// removed. \p Tree may become an empty block.
unsigned optimizeAst(AstPtr &Tree);

} // namespace cg
} // namespace dhpf

#endif // DHPF_CG_AST_H
