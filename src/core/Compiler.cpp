//===- core/Compiler.cpp - The dHPF-style compiler driver ----------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/Comm.h"
#include "core/InPlace.h"
#include "core/LoopSplit.h"
#include "core/Partition.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <map>
#include <set>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;
using spmd::CompiledStmt;
using spmd::SpmdNode;
using spmd::SpmdProgram;

bool core::isRectSectionProven(const Relation &S) {
  assert(S.isSet());
  unsigned N = S.numOut();
  if (N <= 1)
    return true;
  // candidate = intersection of per-dimension projections lifted back to
  // rank N; S is a rectangular section iff candidate is a subset of S
  // (the other inclusion always holds).
  Relation Cand = Relation::universe(S.space());
  for (unsigned D = 0; D != N; ++D) {
    Relation Pd = S.projectOntoDim(D);
    Relation Lift(S.space());
    for (const Conjunct &C : Pd.conjuncts()) {
      unsigned NP = Pd.numParams();
      std::vector<int> Map(C.numVars());
      for (unsigned P = 0; P != NP; ++P)
        Map[C.paramCol(P)] = P;
      Map[C.outCol(0)] = NP + D;
      for (unsigned E = 0; E != C.numExists(); ++E)
        Map[C.existCol(E)] = NP + N + E;
      Lift.addConjunct(Conjunct::remap(C, NP, 0, N, C.numExists(), Map));
    }
    Relation Aligned(Space::set(S.space().outNames(), Pd.space().params()));
    for (Conjunct &C : Lift.conjuncts())
      Aligned.addConjunct(std::move(C));
    Cand = Cand.intersect(Aligned);
  }
  return Cand.isSubsetOf(S);
}

namespace {

/// One planned communication event during nest compilation.
struct EventPlan {
  CommEventInput In;
  CommSets CS;
  bool IsWrite = false;
  bool Communicates = false;
  int EventId = -1;
};

/// Everything about one compute nest that can be derived without touching
/// shared compiler state. Produced by Driver::analyzeNest — possibly on a
/// worker thread — and consumed sequentially during emission, so the
/// compiled program is independent of the analysis schedule.
struct NestAnalysis {
  std::vector<CPInfo> CPs;
  std::vector<unsigned> Groups;
  std::vector<Relation> GroupIters; // per group, bound to mv*
  std::vector<EventPlan> Plans;
  Relation BusyVP;
  bool AnyBusy = false;
  bool DoSplit = false;
  SplitSets SS;
  PhaseTimers Timers;
};

class Driver {
public:
  Driver(const Program &P, CompilerOptions Opts)
      : P(P), Opts(Opts), MB(P), Out(std::make_unique<CompileOutput>()) {
    SP = &Out->Program;
    T = &Out->Timers;
    SP->Source = &P;
    // Hand the interpreter the synthesized Section 3.3 runtime check (the
    // spmd library cannot link this analysis code directly).
    SP->InPlaceRuntimeCheck = &checkInPlaceAtRuntime;
  }

  std::unique_ptr<CompileOutput> run();

private:
  const Program &P;
  CompilerOptions Opts;
  MapBuilder MB;
  std::unique_ptr<CompileOutput> Out;
  SpmdProgram *SP;
  PhaseTimers *T;
  bool ProcInfoSet = false;
  /// Per-nest analyses in the order compilePhase visits nests; emission
  /// consumes them through NextNestIdx.
  std::vector<NestAnalysis> NestAnalyses;
  size_t NextNestIdx = 0;

  //===------------------------- small helpers ---------------------------===//

  void noteProcInfo(const CPInfo &CP) {
    if (CP.Replicated)
      return;
    if (!ProcInfoSet) {
      SP->ProcName = CP.ProcName;
      SP->ProcDims = CP.Dims;
      for (unsigned D = 0; D != CP.Dims.size(); ++D) {
        SP->MySlots.push_back(SP->Vars.slot(myDimParam(D)));
        SP->CoordSlots.push_back(SP->Vars.slot("mc" + std::to_string(D)));
      }
      ProcInfoSet = true;
      return;
    }
    assert(SP->ProcName == CP.ProcName &&
           "a program must use a single processor array");
  }

  cg::Expr affineToExpr(const AffineExpr &E,
                        const std::map<std::string, std::string>
                            *Renames = nullptr) {
    cg::Expr R = cg::Expr::constant(E.K);
    for (auto &[Name, Coef] : E.Terms) {
      std::string N = Name;
      if (Renames) {
        auto It = Renames->find(Name);
        if (It != Renames->end())
          N = It->second;
      }
      unsigned S = SP->Vars.slot(N);
      R = cg::Expr::add(R, cg::Expr::mul(cg::Expr::var(S, N), Coef));
    }
    return R;
  }

  /// Codegen wrapper that attributes time to \p Phase and to the MM-codegen
  /// total, then runs the generated-code optimization pass.
  cg::AstPtr timedCodegen(const char *Phase,
                          const std::vector<cg::StmtInstance> &Stmts,
                          const std::vector<std::string> &LoopVars,
                          const Relation *Known = nullptr) {
    cg::AstPtr Ast;
    double Secs;
    {
      auto Start = std::chrono::steady_clock::now();
      cg::CodeGen CG(SP->Vars, Opts.CG);
      Ast = CG.codegen(Stmts, LoopVars, Known);
      Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           Start)
                 .count();
    }
    T->add(Phase, Secs);
    T->add(phase::MMCodegen, Secs);
    {
      PhaseTimers::Scope S(*T, phase::OptGenerated);
      Out->NodesRemovedByOpt += cg::optimizeAst(Ast);
    }
    return Ast;
  }

  /// Like timedCodegen, but one nest per conjunct (used for communication
  /// sets, which are sparse unions; the interpreter deduplicates overlap).
  cg::AstPtr timedCodegenPerConjunct(const char *Phase, const Relation &S,
                                     const std::vector<std::string> &Vars,
                                     const std::string &Label) {
    cg::AstPtr Ast;
    double Secs;
    {
      auto Start = std::chrono::steady_clock::now();
      cg::CodeGen CG(SP->Vars, Opts.CG);
      Ast = CG.codegenSetPerConjunct(S, Vars, 0, Label);
      Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           Start)
                 .count();
    }
    T->add(Phase, Secs);
    T->add(phase::MMCodegen, Secs);
    {
      PhaseTimers::Scope Sc(*T, phase::OptGenerated);
      Out->NodesRemovedByOpt += cg::optimizeAst(Ast);
    }
    return Ast;
  }

  /// Extracts hull bounds of a 1-D set by generating a scan loop for it.
  std::pair<cg::Expr, cg::Expr> bounds1D(const Relation &S) {
    cg::CodeGen CG(SP->Vars, Opts.CG);
    cg::AstPtr Ast = CG.codegenSet(S, {"__bnd"});
    const cg::AstNode *N = Ast.get();
    while (N && N->K != cg::AstNode::Kind::Loop)
      N = N->Children.empty() ? nullptr : N->Children.front().get();
    if (!N)
      return {cg::Expr::constant(1), cg::Expr::constant(0)}; // empty
    return {N->LB, N->UB};
  }

  cg::Expr procExtentExpr(unsigned D) {
    const VPDimInfo &Info = SP->ProcDims[D];
    if (!Info.ProcSym.empty())
      return cg::Expr::var(SP->Vars.slot(Info.ProcSym), Info.ProcSym);
    return cg::Expr::constant(Info.ProcFixed);
  }

  /// Wraps \p Body in virtual-processor loops (Figure 6): for each
  /// cyclic-virtualized dimension, a loop over the VPs of this physical
  /// processor restricted to \p VPSet's hull in that dimension.
  cg::AstPtr wrapVPLoops(cg::AstPtr Body, const Relation &VPSet) {
    if (!ProcInfoSet)
      return Body;
    for (int D = static_cast<int>(SP->ProcDims.size()) - 1; D >= 0; --D) {
      const VPDimInfo &Info = SP->ProcDims[D];
      if (!Info.Virtualized || Info.Kind == DistSpec::Kind::Block)
        continue;
      auto [LB, UB] = bounds1D(VPSet.projectOntoDim(D));
      cg::Expr Coord = cg::Expr::var(SP->CoordSlots[D],
                                     SP->Vars.name(SP->CoordSlots[D]));
      cg::Expr Base, Step;
      if (Info.Kind == DistSpec::Kind::Cyclic) {
        Base = cg::Expr::add(cg::Expr::constant(Info.TmplLo), Coord);
        Step = procExtentExpr(D);
      } else { // CyclicK
        Base = cg::Expr::add(cg::Expr::constant(Info.TmplLo),
                             cg::Expr::mul(Coord, Info.CyclicK));
        Step = cg::Expr::mul(procExtentExpr(D), Info.CyclicK);
      }
      // Smallest v >= LB with v ≡ Base (mod Step):
      //   v0 = LB + ((Base - LB) mod Step).
      cg::Expr Aligned = cg::Expr::add(
          LB, cg::Expr::modExpr(cg::Expr::sub(Base, LB), Step));
      cg::AstPtr Loop = cg::AstNode::loop(
          SP->Vars.name(SP->MySlots[D]), SP->MySlots[D], Aligned, UB, Step);
      Loop->Children.push_back(std::move(Body));
      Body = std::move(Loop);
    }
    return Body;
  }

  /// Figure 6's "do not communicate with fictitious virtual processors",
  /// applied at code-generation time: partner loops over block- and
  /// cyclic(k)-virtualized dimensions advance by the block size, starting
  /// at the first real VP (a block start) at or above the loop's bound.
  void stridePartnerLoops(cg::AstNode &N,
                          const std::vector<unsigned> &PartnerSlots) {
    if (N.K == cg::AstNode::Kind::Loop) {
      for (unsigned D = 0; D != SP->ProcDims.size() &&
                           D != PartnerSlots.size();
           ++D) {
        if (N.VarSlot != PartnerSlots[D])
          continue;
        const VPDimInfo &Info = SP->ProcDims[D];
        if (!Info.Virtualized)
          break;
        cg::Expr Step;
        if (Info.Kind == DistSpec::Kind::Block)
          Step = cg::Expr::var(SP->Vars.slot(Info.BlockParam),
                               Info.BlockParam);
        else if (Info.Kind == DistSpec::Kind::CyclicK)
          Step = cg::Expr::constant(Info.CyclicK);
        else
          break; // cyclic: every template cell is a real VP
        // First block start >= LB: LB + ((TmplLo - LB) mod Step).
        N.LB = cg::Expr::add(
            N.LB, cg::Expr::modExpr(
                      cg::Expr::sub(cg::Expr::constant(Info.TmplLo), N.LB),
                      Step));
        N.Step = Step;
        break;
      }
    }
    for (cg::AstPtr &C : N.Children)
      stridePartnerLoops(*C, PartnerSlots);
  }

  //===--------------------------- statements ----------------------------===//

  int compileStmt(const Statement &S, const ComputeNest &Nest) {
    if (SP->Stmts.size() <= static_cast<size_t>(S.Id))
      SP->Stmts.resize(S.Id + 1);
    CompiledStmt CS;
    CS.Id = S.Id;
    CS.WriteArray = S.Write.Array;
    for (const AffineExpr &E : S.Write.Subs)
      CS.WriteSubs.push_back(affineToExpr(E));
    for (const Reference &R : S.Reads) {
      CompiledStmt::Read Rd;
      Rd.Array = R.Array;
      for (const AffineExpr &E : R.Subs)
        Rd.Subs.push_back(affineToExpr(E));
      CS.Reads.push_back(std::move(Rd));
    }
    CS.Cost = S.Cost;
    CS.SemanticsId = S.SemanticsId;
    CS.Label = Nest.Name + "/S" + std::to_string(S.Id);
    SP->Stmts[S.Id] = std::move(CS);
    return S.Id;
  }

  //===------------------------ communication ----------------------------===//

  /// Builds the compiled event (send/recv loops, contiguity checks) and
  /// registers it; returns its id, or -1 when there is no communication.
  int emitEvent(EventPlan &Plan) {
    const CommSets &CS = Plan.CS;
    // Plan.Communicates was decided during nest analysis: the event
    // communicates iff some processor accesses non-local data.
    if (!Plan.Communicates)
      return -1;

    spmd::CommEvent Ev;
    Ev.Id = SP->Events.size();
    Ev.Array = Plan.In.Array;
    unsigned PR = CS.SendCommMap.numIn();
    unsigned ER = CS.SendCommMap.numOut();
    std::vector<std::string> Vars;
    for (unsigned I = 0; I != PR; ++I) {
      std::string N = "q" + std::to_string(I);
      Vars.push_back(N);
      Ev.PartnerSlots.push_back(SP->Vars.slot(N));
    }
    for (unsigned I = 0; I != ER; ++I) {
      std::string N = "x" + std::to_string(I);
      Vars.push_back(N);
      Ev.ElemSlots.push_back(SP->Vars.slot(N));
    }
    {
      PhaseTimers::Scope S(*T, phase::CommGeneration);
      Ev.SendLoops = timedCodegenPerConjunct(
          phase::CommLoops, CS.SendCommMap.asSet(), Vars, "pack");
      Ev.RecvLoops = timedCodegenPerConjunct(
          phase::CommLoops, CS.RecvCommMap.asSet(), Vars, "unpack");
      if (ProcInfoSet) {
        stridePartnerLoops(*Ev.SendLoops, Ev.PartnerSlots);
        stridePartnerLoops(*Ev.RecvLoops, Ev.PartnerSlots);
      }
      // Restrict to the active virtual processors (Figure 5/6).
      if (!CS.ActiveSendVPSet.conjuncts().empty())
        Ev.SendLoops =
            wrapVPLoops(std::move(Ev.SendLoops), CS.ActiveSendVPSet);
      if (!CS.ActiveRecvVPSet.conjuncts().empty())
        Ev.RecvLoops =
            wrapVPLoops(std::move(Ev.RecvLoops), CS.ActiveRecvVPSet);
    }
    if (Opts.InPlaceAnalysis) {
      // The per-partner message section: partners become parameters.
      std::vector<std::string> QP;
      for (unsigned I = 0; I != PR; ++I)
        QP.push_back("qp" + std::to_string(I));
      Relation PerPartner =
          CS.RecvCommMap.bindDomainToParams(QP).simplify().coalesce();
      {
        PhaseTimers::Scope S(*T, phase::ContigCheck);
        Ev.InPlace =
            analyzeInPlaceSections(PerPartner, MB.dataSet(Plan.In.Array));
        Ev.InPlaceProven = Ev.InPlace.Verdict == InPlaceVerdict::Contiguous;
        if (Ev.InPlaceProven)
          ++Out->NumContiguousProven;
      }
      {
        // Rectangular-section check: like the paper's contiguity test,
        // applied to single-conjunct sections only (cost control).
        PhaseTimers::Scope S(*T, phase::RectCheck);
        if (PerPartner.conjuncts().size() <= 1 &&
            isRectSectionProven(PerPartner))
          ++Out->NumRectSections;
      }
    }
    ++Out->NumCommEvents;
    SP->Events.push_back(std::move(Ev));
    return SP->Events.back().Id;
  }

  //===------------------------- nest analysis ---------------------------===//

  /// Runs every per-nest analysis that does not need shared compiler state:
  /// partitioning, statement grouping, the Figure 3/5 communication
  /// equations, the busy-VP union, and the Figure 4 loop split. Writes only
  /// to the returned NestAnalysis (including its private PhaseTimers), so
  /// independent nests can be analyzed concurrently.
  NestAnalysis analyzeNest(const ComputeNest &Nest) const {
    NestAnalysis NA;
    PhaseTimers &NT = NA.Timers;

    // 1. Computation partitioning.
    {
      PhaseTimers::Scope S(NT, phase::Partitioning);
      for (const Statement &St : Nest.Stmts)
        NA.CPs.push_back(computeCP(MB, Nest, St));
      NA.Groups = groupStatements(NA.CPs);
      unsigned NumGroups = NA.Groups.empty() ? 0 : NA.Groups.back() + 1;
      NA.GroupIters.resize(NumGroups);
      for (unsigned I = 0; I != Nest.Stmts.size(); ++I)
        if (NA.GroupIters[NA.Groups[I]].conjuncts().empty())
          NA.GroupIters[NA.Groups[I]] =
              cpIterSet(MB, Nest, NA.CPs[I]).simplify().coalesce();
    }

    unsigned V = std::min<unsigned>(Nest.VectorizeLevel, Nest.Loops.size());

    // 2. Plan communication events: (array, direction) keyed, coalescing
    // same-direction references when enabled.
    {
      PhaseTimers::Scope S(NT, phase::CommEquations);
      std::map<std::pair<std::string, bool>, unsigned> Index;
      auto AddRef = [&](const std::string &Array, const CommRef &CR,
                        bool IsWrite) {
        std::pair<std::string, bool> Key = {Array, IsWrite};
        if (!Opts.Coalescing ||
            Index.find(Key) == Index.end()) {
          EventPlan EP;
          EP.In.Array = Array;
          EP.In.PlacementLevel = V;
          for (const Loop &L : Nest.Loops)
            EP.In.LoopVars.push_back(L.Var);
          EP.IsWrite = IsWrite;
          if (Opts.Coalescing)
            Index[Key] = NA.Plans.size();
          NA.Plans.push_back(std::move(EP));
          NA.Plans.back().In.Refs.push_back(CR);
          return;
        }
        NA.Plans[Index[Key]].In.Refs.push_back(CR);
      };
      for (unsigned I = 0; I != Nest.Stmts.size(); ++I) {
        const Statement &St = Nest.Stmts[I];
        const CPInfo &CP = NA.CPs[I];
        for (const Reference &R : St.Reads) {
          if (!P.alignOf(R.Array))
            continue; // replicated array: always local
          CommRef CR;
          CR.ReplicatedCP = CP.Replicated;
          if (!CP.Replicated)
            CR.CPMap = CP.CPMap;
          CR.RefMap = MB.refMap(Nest, R);
          CR.IsWrite = false;
          AddRef(R.Array, CR, false);
        }
        // Writes communicate only under non-owner-computes CPs.
        if (!CP.Replicated && !St.OnHome.empty() &&
            P.alignOf(St.Write.Array)) {
          CommRef CR;
          CR.CPMap = CP.CPMap;
          CR.RefMap = MB.refMap(Nest, St.Write);
          CR.IsWrite = true;
          AddRef(St.Write.Array, CR, true);
        }
      }
    }
    // Run the Figure 3 / Figure 5 equations per plan.
    {
      PhaseTimers::Scope S(NT, phase::CommEquations);
      for (EventPlan &EP : NA.Plans)
        EP.CS = computeCommSets(MB, EP.In, Opts.CombinedFormulation);
    }
    // The event communicates iff some processor accesses non-local data.
    // (Testing the Send/Recv maps instead would keep spurious events alive
    // under the VP model, where fictitious virtual processors "access"
    // overlapping intervals.)
    {
      PhaseTimers::Scope S(NT, phase::CommGeneration);
      for (EventPlan &EP : NA.Plans)
        EP.Communicates = !((EP.CS.NLReadData.conjuncts().empty() ||
                             EP.CS.NLReadData.isEmpty()) &&
                            (EP.CS.NLWriteData.conjuncts().empty() ||
                             EP.CS.NLWriteData.isEmpty()));
    }

    // 3. The union of busy VPs across groups (for VP loop wrapping).
    for (const CPInfo &CP : NA.CPs) {
      if (CP.Replicated)
        continue;
      Relation D = CP.CPMap.domain();
      NA.BusyVP = NA.AnyBusy ? NA.BusyVP.unionWith(D) : D;
      NA.AnyBusy = true;
    }
    if (NA.AnyBusy)
      NA.BusyVP = NA.BusyVP.simplify().coalesce();

    // 4. Loop splitting (Figure 4) decision and set computation.
    unsigned NumGroups = NA.Groups.empty() ? 0 : NA.Groups.back() + 1;
    bool AnyLive = false;
    for (const EventPlan &EP : NA.Plans)
      AnyLive |= EP.Communicates;
    bool CanSplit = Opts.LoopSplitting && NumGroups == 1 && AnyLive &&
                    !NA.CPs.empty() && !NA.CPs[0].Replicated && V == 0;
    if (CanSplit) {
      PhaseTimers::Scope S(NT, phase::LoopSplitting);
      std::vector<SplitRef> SRefs;
      std::map<std::string, Relation> MineCache;
      auto LayoutMine = [&](const std::string &Array) {
        auto It = MineCache.find(Array);
        if (It != MineCache.end())
          return It->second;
        LayoutResult L = MB.layout(Array);
        std::vector<std::string> Names;
        for (unsigned D = 0; D != L.Map.numIn(); ++D)
          Names.push_back(myDimParam(D));
        Relation Mine = L.Map.bindDomainToParams(Names);
        MineCache.emplace(Array, Mine);
        return Mine;
      };
      for (const EventPlan &EP : NA.Plans) {
        if (!EP.Communicates)
          continue;
        for (const CommRef &CR : EP.In.Refs)
          SRefs.push_back({CR.RefMap, LayoutMine(EP.In.Array), CR.IsWrite});
      }
      NA.SS = computeLoopSplit(NA.GroupIters[0], SRefs);
      NA.DoSplit = true;
    }
    return NA;
  }

  //===------------------------- nest compilation ------------------------===//

  void compileNest(const ComputeNest &Nest, SpmdNode *Parent) {
    assert(NextNestIdx < NestAnalyses.size() &&
           "nest collection out of sync with compilePhase");
    NestAnalysis &NA = NestAnalyses[NextNestIdx++];
    const std::vector<CPInfo> &CPs = NA.CPs;
    const std::vector<unsigned> &Groups = NA.Groups;
    const std::vector<Relation> &GroupIters = NA.GroupIters;

    for (const CPInfo &CP : CPs)
      noteProcInfo(CP);

    for (const Statement &St : Nest.Stmts)
      compileStmt(St, Nest);

    unsigned V = std::min<unsigned>(Nest.VectorizeLevel, Nest.Loops.size());

    std::vector<EventPlan *> Live;
    for (EventPlan &EP : NA.Plans) {
      EP.EventId = emitEvent(EP);
      if (EP.EventId >= 0)
        Live.push_back(&EP);
    }

    // 3. Placement loops (partial vectorization): communication and the
    // nest body live inside sequential J loops over the outer dimensions.
    SpmdNode *Container = Parent;
    std::map<std::string, std::string> Renames;
    for (unsigned L = 0; L != V; ++L) {
      auto TL = SpmdNode::make(SpmdNode::Kind::TimeLoop);
      TL->SeqVar = placementParam(L);
      TL->SeqSlot = SP->Vars.slot(TL->SeqVar);
      TL->SeqLo = affineToExpr(Nest.Loops[L].Lo, &Renames);
      TL->SeqHi = affineToExpr(Nest.Loops[L].Hi, &Renames);
      Renames[Nest.Loops[L].Var] = placementParam(L);
      SpmdNode *Raw = TL.get();
      Container->Children.push_back(std::move(TL));
      Container = Raw;
    }

    // Restrict statement iteration sets to the placement parameters.
    auto PlaceRestrict = [&](Relation S) {
      for (unsigned L = 0; L != V; ++L)
        S = S.equateOutDimToParam(L, placementParam(L));
      return S;
    };

    std::vector<std::string> LoopVars;
    for (const Loop &L : Nest.Loops)
      LoopVars.push_back(L.Var);

    auto AddCompute = [&](const std::vector<cg::StmtInstance> &SIs,
                          const std::string &Tag) {
      bool AllEmpty = true;
      for (const cg::StmtInstance &SI : SIs)
        if (!SI.Iters.conjuncts().empty() && !SI.Iters.isEmpty())
          AllEmpty = false;
      if (AllEmpty)
        return;
      cg::AstPtr Ast = timedCodegen(phase::BoundsReduction, SIs, LoopVars);
      if (NA.AnyBusy)
        Ast = wrapVPLoops(std::move(Ast), NA.BusyVP);
      auto N = SpmdNode::make(SpmdNode::Kind::Compute);
      N->Loops = std::move(Ast);
      N->NestName = Nest.Name + Tag;
      Container->Children.push_back(std::move(N));
    };
    auto AddComm = [&](SpmdNode::Kind K, int EventId) {
      auto N = SpmdNode::make(K);
      N->EventId = EventId;
      Container->Children.push_back(std::move(N));
    };

    // Loop splitting (Figure 4) or the straightforward schedule. The split
    // sets were computed during analysis; here we only emit the schedule.
    if (NA.DoSplit) {
      const SplitSets &SS = NA.SS;
      ++Out->NumSplitNests;
      auto SectionStmts = [&](const Relation &Sec) {
        std::vector<cg::StmtInstance> R;
        for (const Statement &St : Nest.Stmts)
          R.push_back({St.Id, SP->Stmts[St.Id].Label, Sec});
        return R;
      };
      // Figure 4(b) schedule.
      for (EventPlan *EP : Live)
        if (!EP->IsWrite)
          AddComm(SpmdNode::Kind::Send, EP->EventId);
      AddCompute(SectionStmts(SS.NLWOIters), "/nlwo");
      AddCompute(SectionStmts(SS.LocalIters), "/local");
      for (EventPlan *EP : Live)
        if (!EP->IsWrite)
          AddComm(SpmdNode::Kind::Recv, EP->EventId);
      AddCompute(SectionStmts(SS.NLROIters.unionWith(SS.NLRWIters)),
                 "/nonlocal");
      for (EventPlan *EP : Live)
        if (EP->IsWrite)
          AddComm(SpmdNode::Kind::Send, EP->EventId);
      for (EventPlan *EP : Live)
        if (EP->IsWrite)
          AddComm(SpmdNode::Kind::Recv, EP->EventId);
      return;
    }

    // Straightforward schedule: read comm, compute, write comm.
    for (EventPlan *EP : Live)
      if (!EP->IsWrite)
        AddComm(SpmdNode::Kind::Send, EP->EventId);
    for (EventPlan *EP : Live)
      if (!EP->IsWrite)
        AddComm(SpmdNode::Kind::Recv, EP->EventId);
    std::vector<cg::StmtInstance> SIs;
    for (unsigned I = 0; I != Nest.Stmts.size(); ++I) {
      const Statement &St = Nest.Stmts[I];
      SIs.push_back({St.Id, SP->Stmts[St.Id].Label,
                     PlaceRestrict(GroupIters[Groups[I]])});
    }
    AddCompute(SIs, "");
    for (EventPlan *EP : Live)
      if (EP->IsWrite)
        AddComm(SpmdNode::Kind::Send, EP->EventId);
    for (EventPlan *EP : Live)
      if (EP->IsWrite)
        AddComm(SpmdNode::Kind::Recv, EP->EventId);
  }

  //===----------------------- phases and procedures ---------------------===//

  void compilePhase(const Phase &Ph, SpmdNode *Parent) {
    switch (Ph.K) {
    case Phase::Kind::Nest:
      compileNest(Ph.Nest, Parent);
      break;
    case Phase::Kind::Reduce: {
      auto N = SpmdNode::make(SpmdNode::Kind::Reduce);
      N->RedOp = Ph.Reduce.O == Reduction::Op::Sum
                     ? SpmdNode::ReduceOp::Sum
                     : SpmdNode::ReduceOp::Max;
      N->RedName = Ph.Reduce.Name;
      N->RedBytes = Ph.Reduce.Elems * 8 *
                    (Ph.Reduce.O == Reduction::Op::MaxLoc ? 2 : 1);
      N->RedCost = Ph.Reduce.Cost;
      Parent->Children.push_back(std::move(N));
      break;
    }
    case Phase::Kind::SeqLoop: {
      auto N = SpmdNode::make(SpmdNode::Kind::TimeLoop);
      N->SeqVar = Ph.SeqVar;
      N->SeqSlot = SP->Vars.slot(Ph.SeqVar);
      N->SeqLo = cg::Expr::constant(1);
      N->SeqHi = cg::Expr::constant(Ph.SeqCount);
      SpmdNode *Raw = N.get();
      Parent->Children.push_back(std::move(N));
      for (const Phase &Sub : Ph.Body)
        compilePhase(Sub, Raw);
      break;
    }
    }
  }

public:
  std::unique_ptr<CompileOutput> runImpl() {
    pset::CacheStats CacheBefore = pset::OpCache::global().stats();
    PhaseTimers::Scope Total(*T, phase::Total);
    // Register program parameters up front so slots are stable.
    for (const std::string &Pr : P.params())
      SP->Vars.slot(Pr);

    // "Interprocedural analysis": per-procedure array access summaries.
    {
      PhaseTimers::Scope S(*T, phase::Interproc);
      std::map<std::string, std::set<std::string>> Summary;
      std::function<void(const Phase &, std::set<std::string> &)> Scan =
          [&](const Phase &Ph, std::set<std::string> &Acc) {
            if (Ph.K == Phase::Kind::Nest) {
              for (const Statement &St : Ph.Nest.Stmts) {
                Acc.insert(St.Write.Array);
                for (const Reference &R : St.Reads)
                  Acc.insert(R.Array);
              }
            }
            for (const Phase &Sub : Ph.Body)
              Scan(Sub, Acc);
          };
      for (const Procedure &Proc : P.procedures())
        for (const Phase &Ph : Proc.Phases)
          Scan(Ph, Summary[Proc.Name]);
    }

    // Analyze all compute nests up front. Collection mirrors the order
    // compilePhase visits nests (SeqLoop bodies recursed in place), so
    // emission below consumes NestAnalyses strictly in order. The analyses
    // are independent, so they can run on a thread pool; each task owns a
    // private PhaseTimers merged here in nest order. Phase times then
    // report summed per-nest work, which can exceed the wall-clock total
    // when analysis runs in parallel.
    {
      std::vector<const ComputeNest *> Nests;
      std::function<void(const Phase &)> Collect = [&](const Phase &Ph) {
        if (Ph.K == Phase::Kind::Nest) {
          Nests.push_back(&Ph.Nest);
          return;
        }
        if (Ph.K == Phase::Kind::SeqLoop)
          for (const Phase &Sub : Ph.Body)
            Collect(Sub);
      };
      for (const Procedure &Proc : P.procedures())
        for (const Phase &Ph : Proc.Phases)
          Collect(Ph);

      NestAnalyses.resize(Nests.size());
      unsigned Threads = 1;
      if (Opts.ParallelAnalysis)
        Threads = Opts.AnalysisThreads ? Opts.AnalysisThreads
                                       : ThreadPool::hardwareThreads();
      Out->ThreadsUsed = Threads;
      if (Threads > 1 && Nests.size() > 1) {
        ThreadPool Pool(Threads);
        Pool.parallelFor(Nests.size(), [&](size_t I) {
          NestAnalyses[I] = analyzeNest(*Nests[I]);
        });
      } else {
        for (size_t I = 0; I != Nests.size(); ++I)
          NestAnalyses[I] = analyzeNest(*Nests[I]);
      }
      for (const NestAnalysis &NA : NestAnalyses)
        T->merge(NA.Timers);
    }

    SP->Root = SpmdNode::make(SpmdNode::Kind::Seq);
    for (const Procedure &Proc : P.procedures())
      for (const Phase &Ph : Proc.Phases)
        compilePhase(Ph, SP->Root.get());
    assert(NextNestIdx == NestAnalyses.size() &&
           "emission consumed a different nest set than analysis produced");
    Out->Cache = pset::OpCache::global().stats() - CacheBefore;
    return std::move(Out);
  }
};

} // namespace

std::unique_ptr<CompileOutput> Driver::run() { return runImpl(); }

std::unique_ptr<CompileOutput> core::compileProgram(const Program &P,
                                                    CompilerOptions Opts) {
  Driver D(P, Opts);
  return D.run();
}
