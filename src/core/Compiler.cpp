//===- core/Compiler.cpp - Compatibility entry point ---------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
//
// The compiler proper lives in the pass pipeline (core/CompilerDriver.cpp,
// core/Passes.cpp, core/EmitPass.cpp); this file keeps the historical
// compileProgram entry point as a thin wrapper over the driver, plus the
// rectangular-section query shared by the analysis and its tests.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/CompilerDriver.h"

#include <utility>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

bool core::isRectSectionProven(const Relation &S) {
  assert(S.isSet());
  unsigned N = S.numOut();
  if (N <= 1)
    return true;
  // candidate = intersection of per-dimension projections lifted back to
  // rank N; S is a rectangular section iff candidate is a subset of S
  // (the other inclusion always holds).
  Relation Cand = Relation::universe(S.space());
  for (unsigned D = 0; D != N; ++D) {
    Relation Pd = S.projectOntoDim(D);
    Relation Lift(S.space());
    for (const Conjunct &C : std::as_const(Pd).conjuncts()) {
      unsigned NP = Pd.numParams();
      std::vector<int> Map(C.numVars());
      for (unsigned P = 0; P != NP; ++P)
        Map[C.paramCol(P)] = P;
      Map[C.outCol(0)] = NP + D;
      for (unsigned E = 0; E != C.numExists(); ++E)
        Map[C.existCol(E)] = NP + N + E;
      Lift.addConjunct(Conjunct::remap(C, NP, 0, N, C.numExists(), Map));
    }
    Relation Aligned(Space::set(S.space().outNames(), Pd.space().params()));
    for (Conjunct &C : Lift.conjuncts())
      Aligned.addConjunct(std::move(C));
    Cand = Cand.intersect(Aligned);
  }
  return Cand.isSubsetOf(S);
}

std::unique_ptr<CompileOutput> core::compileProgram(const Program &P,
                                                    CompilerOptions Opts) {
  CompilerDriver D(P, std::move(Opts));
  return D.run();
}
