//===- core/Comm.cpp - Communication analysis (Figures 3 and 5) ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Comm.h"

#include <utility>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

std::string core::placementParam(unsigned Level) {
  return "J" + std::to_string(Level);
}

namespace {

/// Builds { [i0..ik] : i_j = J_j for j < Level } over the loop space: the
/// range restriction realizing equation (1) of Figure 3 (vectorization).
Relation placementSet(const Relation &LoopSpaceTemplate, unsigned Level,
                      const std::vector<std::string> &LoopVars) {
  Relation S = Relation::universe(
      Space::set(LoopSpaceTemplate.space().outNames(),
                 LoopSpaceTemplate.space().params()));
  (void)LoopVars;
  for (unsigned L = 0; L != Level; ++L)
    S = S.equateOutDimToParam(L, placementParam(L));
  return S;
}

/// Cross product { [p..] -> [a..] : P(p) && D(a) } of two sets.
Relation crossMap(const Relation &P, const Relation &D) {
  assert(P.isSet() && D.isSet());
  // Build via relations: P as (0 -> p), inverted to (p -> 0), composed with
  // D as (0 -> a): (p -> 0) ; (0 -> a) = (p -> a).
  return P.inverse().composeWith(D);
}

/// The singleton { [p..] : p_d = mv_d } over \p DomSpace dims.
Relation selfSet(const Relation &Dom) {
  Relation S = Relation::universe(
      Space::set(Dom.space().outNames(), Dom.space().params()));
  for (unsigned D = 0; D != Dom.numOut(); ++D)
    S = S.equateOutDimToParam(D, myDimParam(D));
  return S.intersect(Dom);
}

/// Binds a map's domain to the mv* parameters.
Relation bindToMy(const Relation &Map) {
  std::vector<std::string> Names;
  for (unsigned D = 0; D != Map.numIn(); ++D)
    Names.push_back(myDimParam(D));
  return Map.bindDomainToParams(Names);
}

} // namespace

CommSets core::computeCommSets(const MapBuilder &MB,
                               const CommEventInput &Event,
                               bool CombinedFormulation) {
  if (!CombinedFormulation && Event.Refs.size() > 1) {
    // Ablation: apply the downstream equations per reference and union the
    // outputs at the end (the paper's original, slower formulation).
    CommSets Acc;
    bool First = true;
    for (const CommRef &R : Event.Refs) {
      CommEventInput Single = Event;
      Single.Refs = {R};
      CommSets S = computeCommSets(MB, Single, true);
      if (First) {
        Acc = std::move(S);
        First = false;
        continue;
      }
      auto UnionIf = [](Relation &A, const Relation &B) {
        if (B.conjuncts().empty())
          return;
        A = std::as_const(A).conjuncts().empty() ? B
                                                 : A.unionWith(B).simplify();
      };
      UnionIf(Acc.SendCommMap, S.SendCommMap);
      UnionIf(Acc.RecvCommMap, S.RecvCommMap);
      UnionIf(Acc.DataAccessedRead, S.DataAccessedRead);
      UnionIf(Acc.DataAccessedWrite, S.DataAccessedWrite);
      UnionIf(Acc.NLDataAccessedRead, S.NLDataAccessedRead);
      UnionIf(Acc.NLDataAccessedWrite, S.NLDataAccessedWrite);
      UnionIf(Acc.NLReadData, S.NLReadData);
      UnionIf(Acc.NLWriteData, S.NLWriteData);
      UnionIf(Acc.BusyVPSet, S.BusyVPSet);
      UnionIf(Acc.ActiveSendVPSet, S.ActiveSendVPSet);
      UnionIf(Acc.ActiveRecvVPSet, S.ActiveRecvVPSet);
    }
    return Acc;
  }
  CommSets Out;
  Out.Layout = MB.layout(Event.Array);
  const Relation &Layout = Out.Layout.Map;
  assert(!Out.Layout.ProcName.empty() &&
         "communication analysis needs a distributed array");
  Relation OwnerDom = Layout.domain().simplify();

  // Steps 1-2: DataAccessed_t = U_r CPMap_r^v o RefMap_r.
  bool AnyRead = false, AnyWrite = false;
  Relation BusyVP;
  bool AnyBusy = false;
  for (const CommRef &R : Event.Refs) {
    Relation CPv;
    if (R.ReplicatedCP) {
      // Every owner-domain processor executes the reference.
      Relation LoopDom = R.RefMap.domain();
      Relation Restricted =
          placementSet(LoopDom, Event.PlacementLevel, Event.LoopVars)
              .intersect(LoopDom);
      CPv = crossMap(OwnerDom, Restricted);
    } else {
      Relation LoopDom = R.CPMap.range();
      CPv = R.CPMap.restrictRange(
          placementSet(LoopDom, Event.PlacementLevel, Event.LoopVars));
    }
    Relation Acc = CPv.composeWith(R.RefMap).simplify();
    Relation &Slot = R.IsWrite ? Out.DataAccessedWrite : Out.DataAccessedRead;
    bool &Any = R.IsWrite ? AnyWrite : AnyRead;
    Slot = Any ? Slot.unionWith(Acc) : Acc;
    Any = true;
    // Figure 5: busyVPSet = U_r Domain(CPMap_r).
    Relation Busy = R.ReplicatedCP ? OwnerDom : R.CPMap.domain();
    BusyVP = AnyBusy ? BusyVP.unionWith(Busy) : Busy;
    AnyBusy = true;
  }
  Out.BusyVPSet = BusyVP.simplify().coalesce();

  Relation MyLayoutData = bindToMy(Layout);
  Relation Self = selfSet(OwnerDom);
  Relation Others = OwnerDom.subtract(Self).simplify();

  // Step 3 (the Section 5 formulation: bind to m before subtracting). The
  // read and write forms are equivalent when no array element is owned by
  // more than one processor (the paper's footnote 2); our distributed
  // layouts are single-owner, so the cheaper read form serves both.
  Relation NLRead, NLWrite; // sets of data, parameterized by mv*
  if (AnyRead)
    NLRead = bindToMy(Out.DataAccessedRead).subtract(MyLayoutData).simplify();
  if (AnyWrite)
    NLWrite =
        bindToMy(Out.DataAccessedWrite).subtract(MyLayoutData).simplify();
  Out.NLReadData = NLRead;
  Out.NLWriteData = NLWrite;

  // Unbound NLDataAccessed maps for the Figure 5 equations.
  if (AnyRead)
    Out.NLDataAccessedRead = Out.DataAccessedRead.subtract(Layout).simplify();
  if (AnyWrite)
    Out.NLDataAccessedWrite =
        Out.DataAccessedWrite.subtract(Layout).simplify();

  // Steps 4-5. The NLComm maps need no explicit self-exclusion: the
  // non-local data is by construction not owned by m. The LocalComm maps
  // restrict the accessing-processor domain to the other processors.
  Relation NLCommRead, NLCommWrite, LocalCommRead, LocalCommWrite;
  if (AnyRead) {
    NLCommRead = Layout.restrictRange(NLRead);
    LocalCommRead = Out.DataAccessedRead.restrictRange(MyLayoutData)
                        .restrictDomain(Others);
  }
  if (AnyWrite) {
    NLCommWrite = Layout.restrictRange(NLWrite);
    LocalCommWrite = Out.DataAccessedWrite.restrictRange(MyLayoutData)
                         .restrictDomain(Others);
  }

  // Steps 6-7.
  auto UnionOpt = [](bool HasA, const Relation &A, bool HasB,
                     const Relation &B) {
    if (HasA && HasB)
      return A.unionWith(B);
    return HasA ? A : B;
  };
  if (AnyRead || AnyWrite) {
    Out.SendCommMap =
        UnionOpt(AnyRead, LocalCommRead, AnyWrite, NLCommWrite)
            .simplify()
            .coalesce();
    Out.RecvCommMap =
        UnionOpt(AnyRead, NLCommRead, AnyWrite, LocalCommWrite)
            .simplify()
            .coalesce();
  }

  // Figure 5: active send/receive virtual processors.
  Relation LayoutInv = Layout.inverse();
  Relation ActiveSend, ActiveRecv;
  bool HasSend = false, HasRecv = false;
  if (AnyRead) {
    Relation AllNL = Out.NLDataAccessedRead.apply(Out.BusyVPSet).simplify();
    Relation Owners = LayoutInv.apply(AllNL).simplify();
    Relation Accessors = Out.NLDataAccessedRead.domain().simplify();
    ActiveSend = Owners;
    ActiveRecv = Accessors;
    HasSend = HasRecv = true;
  }
  if (AnyWrite) {
    Relation AllNL = Out.NLDataAccessedWrite.apply(Out.BusyVPSet).simplify();
    Relation Owners = LayoutInv.apply(AllNL).simplify();
    Relation Accessors = Out.NLDataAccessedWrite.domain().simplify();
    ActiveSend = HasSend ? ActiveSend.unionWith(Accessors) : Accessors;
    ActiveRecv = HasRecv ? ActiveRecv.unionWith(Owners) : Owners;
    HasSend = HasRecv = true;
  }
  if (HasSend) {
    Out.ActiveSendVPSet = ActiveSend.simplify().coalesce();
    Out.ActiveRecvVPSet = ActiveRecv.simplify().coalesce();
  }
  return Out;
}
