//===- core/CompilerDriver.h - Pass-pipeline compiler driver -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver that owns a CompileContext and sequences the pass pipeline
///
///   PartitionPass -> CommPass -> SplitPass -> VPPass -> EmitPass
///
/// over it. Construct with an optional DiagnosticEngine to get structural
/// validation of the input program (undeclared arrays, rank mismatches)
/// reported as recoverable diagnostics instead of assertion failures; with
/// diagnostics attached, run() returns null when validation fails.
///
/// Per-pass IR dumps: set CompilerOptions::DumpAfter to a comma-separated
/// list of pass names (or "all") and each named pass renders its state —
/// relations in the set syntax, the SPMD program after emit — to
/// CompilerOptions::DumpStream (stderr when null) right after it runs.
///
/// compileProgram (core/Compiler.h) remains as a thin wrapper over this
/// driver for trusted builder-API input.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_COMPILERDRIVER_H
#define DHPF_CORE_COMPILERDRIVER_H

#include "core/CompileContext.h"

#include <memory>
#include <vector>

namespace dhpf {
namespace core {

class CompilerDriver {
public:
  /// \p Diags, when non-null, receives validation and driver diagnostics
  /// and must outlive the driver.
  CompilerDriver(const hpf::Program &P, CompilerOptions Opts = {},
                 DiagnosticEngine *Diags = nullptr);

  /// Runs the full pipeline. Returns null iff validation failed (only
  /// possible when a DiagnosticEngine was attached; the errors are in it).
  std::unique_ptr<CompileOutput> run();

  /// The pipeline's pass names in order (the values -dump-after accepts).
  static std::vector<std::string> passNames();

private:
  CompileContext Ctx;
  std::unique_ptr<CompileOutput> Out;
};

/// Structural validation of a program (builder- or parser-produced):
/// every referenced array is declared with matching rank, alignments and
/// distributions are well-formed, statement ids are consistent. Reports
/// into \p Diags; returns true when no new errors were added.
bool validateProgram(const hpf::Program &P, DiagnosticEngine &Diags);

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_COMPILERDRIVER_H
