//===- core/Passes.cpp - The per-nest analysis passes --------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
//
// The four analysis stages of the pipeline. Each pass iterates the nests
// through CompileContext::forEachNest — concurrently when a pool is
// configured — and writes only to its nest's NestAnalysis record (including
// its private PhaseTimers), so results are identical for any thread count.
//
//===----------------------------------------------------------------------===//

#include "core/CompileContext.h"

#include "obs/Trace.h"

#include <map>
#include <ostream>
#include <utility>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

void CompileContext::forEachNest(const std::function<void(size_t)> &Fn) {
  if (Pool && Nests.size() > 1) {
    Pool->parallelFor(Nests.size(), Fn);
    return;
  }
  for (size_t I = 0; I != Nests.size(); ++I)
    Fn(I);
}

void Pass::dump(const CompileContext &, std::ostream &OS) const {
  OS << "(pass '" << name() << "' has no printable state)\n";
}

namespace {

unsigned effectiveVectorizeLevel(const ComputeNest &Nest) {
  return std::min<unsigned>(Nest.VectorizeLevel, Nest.Loops.size());
}

//===----------------------------------------------------------------------===//
// PartitionPass: computation partitioning (Section 3.1)
//===----------------------------------------------------------------------===//

class PartitionPass : public Pass {
public:
  const char *name() const override { return "partition"; }

  void run(CompileContext &Ctx) override {
    Ctx.forEachNest([&](size_t I) {
      const ComputeNest &Nest = *Ctx.Nests[I];
      NestAnalysis &NA = Ctx.NestAnalyses[I];
      obs::TraceSpan Span(&obs::TraceBuffer::global(),
                          "partition:" + Nest.Name, "compile.nest");
      PhaseTimers::Scope S(NA.Timers, phase::Partitioning);
      for (const Statement &St : Nest.Stmts)
        NA.CPs.push_back(computeCP(Ctx.MB, Nest, St));
      NA.Groups = groupStatements(NA.CPs);
      unsigned NumGroups = NA.Groups.empty() ? 0 : NA.Groups.back() + 1;
      NA.GroupIters.resize(NumGroups);
      for (unsigned J = 0; J != Nest.Stmts.size(); ++J)
        if (std::as_const(NA.GroupIters[NA.Groups[J]]).conjuncts().empty())
          NA.GroupIters[NA.Groups[J]] =
              cpIterSet(Ctx.MB, Nest, NA.CPs[J]).simplify().coalesce();
    });
  }

  void dump(const CompileContext &Ctx, std::ostream &OS) const override {
    for (size_t I = 0; I != Ctx.Nests.size(); ++I) {
      const NestAnalysis &NA = Ctx.NestAnalyses[I];
      OS << "nest " << Ctx.Nests[I]->Name << ":\n";
      for (size_t J = 0; J != NA.CPs.size(); ++J) {
        OS << "  S" << Ctx.Nests[I]->Stmts[J].Id << " group "
           << NA.Groups[J] << " CP = ";
        if (NA.CPs[J].Replicated)
          OS << "replicated\n";
        else
          OS << NA.CPs[J].CPMap.toString() << "\n";
      }
      for (size_t G = 0; G != NA.GroupIters.size(); ++G)
        OS << "  group " << G
           << " iters = " << NA.GroupIters[G].toString() << "\n";
    }
  }
};

//===----------------------------------------------------------------------===//
// CommPass: the Figure 3 / Figure 5 communication equations
//===----------------------------------------------------------------------===//

class CommPass : public Pass {
public:
  const char *name() const override { return "comm"; }

  void run(CompileContext &Ctx) override {
    Ctx.forEachNest([&](size_t I) {
      const ComputeNest &Nest = *Ctx.Nests[I];
      NestAnalysis &NA = Ctx.NestAnalyses[I];
      obs::TraceSpan Span(&obs::TraceBuffer::global(), "comm:" + Nest.Name,
                          "compile.nest");
      unsigned V = effectiveVectorizeLevel(Nest);

      // Plan communication events: (array, direction) keyed, coalescing
      // same-direction references when enabled.
      {
        PhaseTimers::Scope S(NA.Timers, phase::CommEquations);
        std::map<std::pair<std::string, bool>, unsigned> Index;
        auto AddRef = [&](const std::string &Array, const CommRef &CR,
                          bool IsWrite) {
          std::pair<std::string, bool> Key = {Array, IsWrite};
          if (!Ctx.Opts.Coalescing || Index.find(Key) == Index.end()) {
            EventPlan EP;
            EP.In.Array = Array;
            EP.In.PlacementLevel = V;
            for (const Loop &L : Nest.Loops)
              EP.In.LoopVars.push_back(L.Var);
            EP.IsWrite = IsWrite;
            if (Ctx.Opts.Coalescing)
              Index[Key] = NA.Plans.size();
            NA.Plans.push_back(std::move(EP));
            NA.Plans.back().In.Refs.push_back(CR);
            return;
          }
          NA.Plans[Index[Key]].In.Refs.push_back(CR);
        };
        for (unsigned J = 0; J != Nest.Stmts.size(); ++J) {
          const Statement &St = Nest.Stmts[J];
          const CPInfo &CP = NA.CPs[J];
          for (const Reference &R : St.Reads) {
            if (!Ctx.P.alignOf(R.Array))
              continue; // replicated array: always local
            CommRef CR;
            CR.ReplicatedCP = CP.Replicated;
            if (!CP.Replicated)
              CR.CPMap = CP.CPMap;
            CR.RefMap = Ctx.MB.refMap(Nest, R);
            CR.IsWrite = false;
            AddRef(R.Array, CR, false);
          }
          // Writes communicate only under non-owner-computes CPs.
          if (!CP.Replicated && !St.OnHome.empty() &&
              Ctx.P.alignOf(St.Write.Array)) {
            CommRef CR;
            CR.CPMap = CP.CPMap;
            CR.RefMap = Ctx.MB.refMap(Nest, St.Write);
            CR.IsWrite = true;
            AddRef(St.Write.Array, CR, true);
          }
        }
      }
      // Run the Figure 3 / Figure 5 equations per plan.
      {
        PhaseTimers::Scope S(NA.Timers, phase::CommEquations);
        for (EventPlan &EP : NA.Plans)
          EP.CS = computeCommSets(Ctx.MB, EP.In,
                                  Ctx.Opts.CombinedFormulation);
      }
      // The event communicates iff some processor accesses non-local data.
      // (Testing the Send/Recv maps instead would keep spurious events
      // alive under the VP model, where fictitious virtual processors
      // "access" overlapping intervals.)
      {
        PhaseTimers::Scope S(NA.Timers, phase::CommGeneration);
        for (EventPlan &EP : NA.Plans)
          EP.Communicates =
              !((std::as_const(EP.CS.NLReadData).conjuncts().empty() ||
                 EP.CS.NLReadData.isEmpty()) &&
                (std::as_const(EP.CS.NLWriteData).conjuncts().empty() ||
                 EP.CS.NLWriteData.isEmpty()));
      }
    });
  }

  void dump(const CompileContext &Ctx, std::ostream &OS) const override {
    for (size_t I = 0; I != Ctx.Nests.size(); ++I) {
      const NestAnalysis &NA = Ctx.NestAnalyses[I];
      OS << "nest " << Ctx.Nests[I]->Name << ": " << NA.Plans.size()
         << " planned event(s)\n";
      for (const EventPlan &EP : NA.Plans) {
        OS << "  " << (EP.IsWrite ? "write" : "read") << " " << EP.In.Array
           << " refs=" << EP.In.Refs.size()
           << (EP.Communicates ? "" : " (no communication)") << "\n";
        if (EP.Communicates) {
          OS << "    send = " << EP.CS.SendCommMap.toString() << "\n";
          OS << "    recv = " << EP.CS.RecvCommMap.toString() << "\n";
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// SplitPass: non-local index-set splitting (Figure 4)
//===----------------------------------------------------------------------===//

class SplitPass : public Pass {
public:
  const char *name() const override { return "split"; }

  void run(CompileContext &Ctx) override {
    Ctx.forEachNest([&](size_t I) {
      const ComputeNest &Nest = *Ctx.Nests[I];
      NestAnalysis &NA = Ctx.NestAnalyses[I];
      obs::TraceSpan Span(&obs::TraceBuffer::global(), "split:" + Nest.Name,
                          "compile.nest");
      unsigned V = effectiveVectorizeLevel(Nest);
      unsigned NumGroups = NA.Groups.empty() ? 0 : NA.Groups.back() + 1;
      bool AnyLive = false;
      for (const EventPlan &EP : NA.Plans)
        AnyLive |= EP.Communicates;
      bool CanSplit = Ctx.Opts.LoopSplitting && NumGroups == 1 && AnyLive &&
                      !NA.CPs.empty() && !NA.CPs[0].Replicated && V == 0;
      if (!CanSplit)
        return;
      PhaseTimers::Scope S(NA.Timers, phase::LoopSplitting);
      std::vector<SplitRef> SRefs;
      std::map<std::string, Relation> MineCache;
      auto LayoutMine = [&](const std::string &Array) {
        auto It = MineCache.find(Array);
        if (It != MineCache.end())
          return It->second;
        LayoutResult L = Ctx.MB.layout(Array);
        std::vector<std::string> Names;
        for (unsigned D = 0; D != L.Map.numIn(); ++D)
          Names.push_back(myDimParam(D));
        Relation Mine = L.Map.bindDomainToParams(Names);
        MineCache.emplace(Array, Mine);
        return Mine;
      };
      for (const EventPlan &EP : NA.Plans) {
        if (!EP.Communicates)
          continue;
        for (const CommRef &CR : EP.In.Refs)
          SRefs.push_back({CR.RefMap, LayoutMine(EP.In.Array), CR.IsWrite});
      }
      NA.SS = computeLoopSplit(NA.GroupIters[0], SRefs);
      NA.DoSplit = true;
    });
  }

  void dump(const CompileContext &Ctx, std::ostream &OS) const override {
    for (size_t I = 0; I != Ctx.Nests.size(); ++I) {
      const NestAnalysis &NA = Ctx.NestAnalyses[I];
      OS << "nest " << Ctx.Nests[I]->Name << ": "
         << (NA.DoSplit ? "split" : "not split") << "\n";
      if (!NA.DoSplit)
        continue;
      OS << "  local = " << NA.SS.LocalIters.toString() << "\n";
      OS << "  nlro  = " << NA.SS.NLROIters.toString() << "\n";
      OS << "  nlwo  = " << NA.SS.NLWOIters.toString() << "\n";
      OS << "  nlrw  = " << NA.SS.NLRWIters.toString() << "\n";
    }
  }
};

//===----------------------------------------------------------------------===//
// VPPass: the busy virtual-processor union (Figure 6)
//===----------------------------------------------------------------------===//

class VPPass : public Pass {
public:
  const char *name() const override { return "vp"; }

  void run(CompileContext &Ctx) override {
    Ctx.forEachNest([&](size_t I) {
      NestAnalysis &NA = Ctx.NestAnalyses[I];
      obs::TraceSpan Span(&obs::TraceBuffer::global(),
                          "vp:" + Ctx.Nests[I]->Name, "compile.nest");
      for (const CPInfo &CP : NA.CPs) {
        if (CP.Replicated)
          continue;
        Relation D = CP.CPMap.domain();
        NA.BusyVP = NA.AnyBusy ? NA.BusyVP.unionWith(D) : D;
        NA.AnyBusy = true;
      }
      if (NA.AnyBusy)
        NA.BusyVP = NA.BusyVP.simplify().coalesce();
    });
  }

  void dump(const CompileContext &Ctx, std::ostream &OS) const override {
    for (size_t I = 0; I != Ctx.Nests.size(); ++I) {
      const NestAnalysis &NA = Ctx.NestAnalyses[I];
      OS << "nest " << Ctx.Nests[I]->Name << ": busy VPs = "
         << (NA.AnyBusy ? NA.BusyVP.toString() : "(all replicated)") << "\n";
    }
  }
};

} // namespace

std::unique_ptr<Pass> core::createPartitionPass() {
  return std::make_unique<PartitionPass>();
}
std::unique_ptr<Pass> core::createCommPass() {
  return std::make_unique<CommPass>();
}
std::unique_ptr<Pass> core::createSplitPass() {
  return std::make_unique<SplitPass>();
}
std::unique_ptr<Pass> core::createVPPass() {
  return std::make_unique<VPPass>();
}
