//===- core/CompileContext.h - Shared state of the pass pipeline ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler is structured as an explicit pass pipeline over a shared
/// CompileContext:
///
///   PartitionPass -> CommPass -> SplitPass -> VPPass -> EmitPass
///
/// The four analysis passes fill per-nest NestAnalysis records — each nest
/// independent of the others, so every analysis pass runs its nests on a
/// thread pool — and EmitPass consumes them strictly in program order, so
/// the compiled SPMD program is independent of the analysis schedule. The
/// CompilerDriver (core/CompilerDriver.h) owns the context, sequences the
/// passes, and renders per-pass IR dumps (-dump-after=<pass>).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_COMPILECONTEXT_H
#define DHPF_CORE_COMPILECONTEXT_H

#include "core/Comm.h"
#include "core/Compiler.h"
#include "core/LoopSplit.h"
#include "core/Partition.h"
#include "support/Diag.h"
#include "support/ThreadPool.h"

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

namespace dhpf {
namespace core {

/// One planned communication event during nest compilation.
struct EventPlan {
  CommEventInput In;
  CommSets CS;
  bool IsWrite = false;
  bool Communicates = false;
  int EventId = -1;
};

/// Everything about one compute nest that can be derived without touching
/// shared compiler state. Filled field-by-field by the analysis passes —
/// possibly on worker threads — and consumed sequentially by EmitPass.
struct NestAnalysis {
  // PartitionPass
  std::vector<CPInfo> CPs;
  std::vector<unsigned> Groups;
  std::vector<Relation> GroupIters; // per group, bound to mv*
  // CommPass
  std::vector<EventPlan> Plans;
  // SplitPass
  bool DoSplit = false;
  SplitSets SS;
  // VPPass
  Relation BusyVP;
  bool AnyBusy = false;
  /// Private per-nest timers, merged into the context total in nest order.
  PhaseTimers Timers;
};

/// Everything the passes share. Owned by the CompilerDriver for one
/// compilation.
struct CompileContext {
  const hpf::Program &P;
  CompilerOptions Opts;
  hpf::MapBuilder MB;
  /// Optional diagnostics sink; when null, driver-level validation is
  /// skipped (trusted builder-API input).
  DiagnosticEngine *Diags = nullptr;
  CompileOutput *Out = nullptr;
  spmd::SpmdProgram *SP = nullptr;
  PhaseTimers *T = nullptr;
  /// Compute nests in the order EmitPass visits them (SeqLoop bodies
  /// recursed in place), with their analyses at matching indices.
  std::vector<const hpf::ComputeNest *> Nests;
  std::vector<NestAnalysis> NestAnalyses;
  /// Worker count for the analysis passes (1 = sequential).
  unsigned Threads = 1;
  /// Shared worker pool for the analysis passes (null = sequential).
  std::unique_ptr<ThreadPool> Pool;

  CompileContext(const hpf::Program &P, CompilerOptions Opts)
      : P(P), Opts(std::move(Opts)), MB(P) {}

  /// Runs \p Fn(I) for every nest index, on the context's thread pool when
  /// profitable. Results must not depend on the schedule.
  void forEachNest(const std::function<void(size_t)> &Fn);
};

/// One pipeline stage.
class Pass {
public:
  virtual ~Pass() = default;
  /// The stable name used by -dump-after=<name>.
  virtual const char *name() const = 0;
  virtual void run(CompileContext &Ctx) = 0;
  /// Renders this pass's per-nest results (relations in the set syntax).
  virtual void dump(const CompileContext &Ctx, std::ostream &OS) const;
};

std::unique_ptr<Pass> createPartitionPass();
std::unique_ptr<Pass> createCommPass();
std::unique_ptr<Pass> createSplitPass();
std::unique_ptr<Pass> createVPPass();
std::unique_ptr<Pass> createEmitPass();

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_COMPILECONTEXT_H
