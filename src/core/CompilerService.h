//===- core/CompilerService.h - Long-lived compiler service --------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer of the compiler: one long-lived CompilerService owns
/// every piece of cross-compilation state that previously lived as
/// unrelated process globals — the Presburger operation cache
/// (pset::OpCache), the conjunct intern table (pset::InternTable), the
/// native kernel cache (spmd::native::KernelCache), and the metrics
/// registry — and exposes compilation as a request/artifact API:
///
///   CompileRequest  (source text + options)
///     -> fingerprint
///     -> artifact cache hit | join an in-flight compile | fresh compile
///     -> shared CompileArtifact (serialized .spmd, diagnostics, stats)
///
/// Callers never touch the globals directly; they open a CompileSession —
/// a cheap per-client executor handle that tracks that client's request
/// and hit counts — and compile through it. `dhpfc` is one client of this
/// API; the `dhpfd` daemon is another, serving many concurrent sessions
/// over sockets against the same warm service.
///
/// Three properties the daemon depends on:
///  - identical requests (same source bytes, same options) have the same
///    fingerprint, so N concurrent clients compiling the same program
///    collapse to ONE compile — later arrivals block on the in-flight
///    entry and share the artifact;
///  - artifacts are immutable and shared (shared_ptr<const>), so replies
///    to many clients never copy the .spmd text;
///  - the OpCache can be serialized at shutdown and reloaded at startup,
///    so a cold daemon starts with a warm set-operation cache.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_COMPILERSERVICE_H
#define DHPF_CORE_COMPILERSERVICE_H

#include "core/Compiler.h"

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dhpf {

namespace pset {
class InternTable;
}
namespace spmd {
namespace native {
class KernelCache;
}
} // namespace spmd

namespace core {

/// One compilation request. Identical (Source, Opts) pairs are one unit
/// of work no matter how many clients submit them.
struct CompileRequest {
  /// Display name for diagnostics (a path or a client-chosen label).
  std::string Name = "<request>";
  /// The mini-HPF source text.
  std::string Source;
  CompilerOptions Opts;
  /// Skip the artifact cache and force a fresh compile (benchmarks
  /// measuring warm-OpCache recompilation). Still deduplicates against a
  /// compile already in flight for the same fingerprint.
  bool BypassArtifactCache = false;
};

/// The immutable result of one compilation, shared among every requester.
struct CompileArtifact {
  bool Ok = false;
  uint64_t Fingerprint = 0;
  /// The compiled program's name (hpf::Program::name(); "" when !Ok).
  std::string ProgName;
  /// The serialized SPMD program ("" when !Ok). Byte-identical to what a
  /// batch `dhpfc compile` writes for the same source and options.
  std::string Spmd;
  /// Formatted diagnostics: warnings on success, errors on failure.
  std::string DiagText;
  /// The --stats rendering (renderCompileStats) of the compile.
  std::string StatsText;
  /// Wall-clock seconds of the compile itself (phase::Total).
  double CompileSeconds = 0.0;
  /// Set-operation cache/fast-path activity during this compile.
  pset::CacheStats CacheDelta;
  unsigned ThreadsUsed = 1;
};

/// How a request was satisfied.
enum class Served : uint8_t {
  Fresh,    ///< this request ran the compiler
  InFlight, ///< joined a compile another request had started
  Artifact, ///< replayed a finished artifact from the cache
};

/// Cumulative service counters (process lifetime).
struct ServiceStats {
  uint64_t Requests = 0;
  uint64_t CompilesStarted = 0;
  uint64_t DedupedInFlight = 0;
  uint64_t ArtifactHits = 0;
  uint64_t Errors = 0;
};

class CompilerService;

/// A per-client executor handle: the only way callers compile. Cheap to
/// create, move-only, not thread-safe (one session per client thread —
/// the daemon opens one per connection). Counts this client's traffic and
/// can publish it as svc.client.<name>.* gauges.
class CompileSession {
public:
  CompileSession(CompileSession &&) = default;
  CompileSession &operator=(CompileSession &&) = default;

  std::shared_ptr<const CompileArtifact> compile(const CompileRequest &R,
                                                 Served *How = nullptr);

  const std::string &clientName() const { return Client; }
  uint64_t requests() const { return NumRequests; }
  /// Requests answered without running the compiler (artifact replay or
  /// joining an in-flight compile).
  uint64_t cacheHits() const { return NumHits; }
  double hitRate() const {
    return NumRequests ? double(NumHits) / double(NumRequests) : 0.0;
  }
  /// Mirrors this client's counters into the metrics registry as
  /// svc.client.<name>.{requests,hits,hit_rate_pct} gauges.
  void publishMetrics() const;

private:
  friend class CompilerService;
  CompileSession(CompilerService &S, std::string Client)
      : Svc(&S), Client(std::move(Client)) {}

  CompilerService *Svc;
  std::string Client;
  uint64_t NumRequests = 0;
  uint64_t NumHits = 0;
};

class CompilerService {
public:
  /// The process-global service. All clients in one process — a batch
  /// dhpfc, the daemon's connections, tests — share it, which is exactly
  /// what makes its caches worth owning.
  static CompilerService &global();

  explicit CompilerService(size_t ArtifactCapacity = 128);
  CompilerService(const CompilerService &) = delete;
  CompilerService &operator=(const CompilerService &) = delete;

  /// Opens a per-client executor handle.
  CompileSession openSession(std::string ClientName);

  /// The request fingerprint: FNV-1a over the source bytes and every
  /// semantics-affecting compiler option. This is the dedup key for the
  /// artifact cache and the in-flight table.
  static uint64_t fingerprintRequest(const std::string &Source,
                                     const CompilerOptions &Opts);

  /// Compiles (or replays) one request. Never throws on bad input — a
  /// failed compile is an artifact with Ok=false and the errors in
  /// DiagText. \p How, when non-null, reports how the request was served.
  std::shared_ptr<const CompileArtifact> compile(const CompileRequest &R,
                                                 Served *How = nullptr);

  // Explicit handles to the long-lived state the service owns. These are
  // the process globals of the underlying layers; the service is their
  // single named owner and callers go through it.
  pset::OpCache &opCache();
  pset::InternTable &internTable();
  spmd::native::KernelCache &kernelCache();

  /// Saves / restores the set-operation cache so a cold process starts
  /// warm. Both return false with \p Err set on I/O or format errors.
  bool saveOpCache(const std::string &Path, std::string &Err);
  bool loadOpCache(const std::string &Path, std::string &Err);

  ServiceStats stats() const;
  /// Resident artifacts (bounded by ArtifactCapacity).
  size_t artifactCount() const;
  /// Mirrors service + OpCache counters into the metrics registry
  /// (svc.* and pset.cache.* gauges).
  void publishMetrics();
  /// Drops cached artifacts (the OpCache is cleared separately).
  void clearArtifacts();

private:
  struct InFlight {
    std::condition_variable CV;
    bool Done = false;
    std::shared_ptr<const CompileArtifact> Result;
    unsigned Waiters = 0;
  };

  std::shared_ptr<const CompileArtifact> doCompile(const CompileRequest &R,
                                                   uint64_t FP);
  void rememberLocked(uint64_t FP,
                      const std::shared_ptr<const CompileArtifact> &A);

  mutable std::mutex M;
  size_t ArtifactCapacity;
  /// Front = most recently used.
  std::list<std::pair<uint64_t, std::shared_ptr<const CompileArtifact>>>
      ArtifactLRU;
  std::map<uint64_t, decltype(ArtifactLRU)::iterator> ArtifactMap;
  std::map<uint64_t, std::shared_ptr<InFlight>> InFlightMap;
  ServiceStats Stats;
};

/// Renders the --stats block for one compile (comm-event counts and phase
/// times). Shared by dhpfc's terminal output and the daemon's stats reply
/// so both render identically.
std::string renderCompileStats(const CompileOutput &Out);

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_COMPILERSERVICE_H
