//===- core/InPlace.cpp - In-place communication analysis (Section 3.3) --===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/InPlace.h"

using namespace dhpf;
using namespace dhpf::core;

namespace {

/// Lifts a rank-0 (parameter-only) set onto \p TargetSpace.
Relation liftRank0(const Relation &Ctx, const Space &TargetSpace) {
  Relation R(Space::set(TargetSpace.outNames(), Ctx.space().params()));
  unsigned NP = Ctx.numParams(), ND = TargetSpace.numOut();
  for (const Conjunct &C : Ctx.conjuncts()) {
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != NP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + ND + E;
    R.addConjunct(Conjunct::remap(C, NP, 0, ND, C.numExists(), Map));
  }
  return R;
}

/// Core of the test; exact when the sets are parameter-free, otherwise a
/// sound compile-time approximation (never claims contiguity wrongly).
InPlaceVerdict testContiguity(const Relation &C, const Relation &A,
                              int &SplitDim) {
  unsigned N = C.numOut();
  assert(A.numOut() == N && "rank mismatch");
  bool Exact = C.numParams() == 0 && A.numParams() == 0;
  if (C.isEmpty()) {
    SplitDim = 0;
    return InPlaceVerdict::Contiguous;
  }
  // The parameter context where the section is non-empty: the full-extent
  // comparisons are made relative to it (a parametric message section is
  // vacuously empty for most partner/myid values).
  Relation Ctx = C.projectOutDims(0, N).normalizeExists().simplify();
  // Leftmost-first scan (Fortran column-major: dimension 0 varies fastest)
  // for the first dimension whose projection is not the full extent.
  unsigned K = N;
  for (unsigned I = 0; I != N; ++I) {
    Relation CI = C.projectOntoDim(I);
    Relation AI = A.projectOntoDim(I);
    if (C.numParams() != 0)
      AI = AI.intersect(liftRank0(Ctx, AI.space()));
    if (!CI.isEqualTo(AI)) {
      K = I;
      break;
    }
  }
  if (K == N) { // the whole array: trivially contiguous
    SplitDim = static_cast<int>(N) - 1;
    return InPlaceVerdict::Contiguous;
  }
  SplitDim = static_cast<int>(K);
  // IsConvex(C<k>): isEmpty(simpleHull(C<k>) - C<k>).
  if (!C.projectOntoDim(K).isConvexProven())
    return Exact ? InPlaceVerdict::NotContiguous
                 : InPlaceVerdict::RuntimeCheck;
  // IsSingleton(C<j>) for j > k.
  for (unsigned J = K + 1; J < N; ++J)
    if (!C.projectOntoDim(J).isSingletonProven())
      return Exact ? InPlaceVerdict::NotContiguous
                   : InPlaceVerdict::RuntimeCheck;
  return InPlaceVerdict::Contiguous;
}

} // namespace

InPlaceResult core::analyzeInPlace(const Relation &CommSet,
                                   const Relation &ArraySet) {
  InPlaceResult R;
  R.CommSet = CommSet;
  R.ArraySet = ArraySet;
  R.Verdict = testContiguity(CommSet, ArraySet, R.SplitDim);
  return R;
}

InPlaceResult core::analyzeInPlaceSections(const Relation &CommSet,
                                           const Relation &ArraySet) {
  if (CommSet.conjuncts().size() <= 1)
    return analyzeInPlace(CommSet, ArraySet);
  InPlaceResult R;
  R.CommSet = CommSet;
  R.ArraySet = ArraySet;
  R.Verdict = InPlaceVerdict::Contiguous;
  for (const Conjunct &C : CommSet.conjuncts()) {
    Relation One(CommSet.space());
    One.addConjunct(C);
    InPlaceResult Section = analyzeInPlace(One, ArraySet);
    if (Section.Verdict != InPlaceVerdict::Contiguous) {
      R.Verdict = Section.Verdict;
      break;
    }
  }
  return R;
}

bool core::checkInPlaceAtRuntime(
    const InPlaceResult &R, const std::map<std::string, int64_t> &Bindings) {
  if (R.Verdict == InPlaceVerdict::Contiguous)
    return true;
  if (R.Verdict == InPlaceVerdict::NotContiguous)
    return false;
  // Bind the available parameters; the predicates are then decided exactly
  // when everything is bound (this is the synthesized runtime check of
  // Section 3.3). Parameters absent from \p Bindings — per-partner
  // coordinates (qp*), the representative processor (mv*) — stay symbolic,
  // so the test remains a sound approximation: it claims contiguity only
  // when proven for every value of the unbound parameters.
  std::map<std::string, int64_t> CBind, ABind;
  for (const std::string &P : R.CommSet.space().params()) {
    auto It = Bindings.find(P);
    if (It != Bindings.end())
      CBind[P] = It->second;
  }
  for (const std::string &P : R.ArraySet.space().params()) {
    auto It = Bindings.find(P);
    if (It != Bindings.end())
      ABind[P] = It->second;
  }
  int SplitDim = -1;
  return testContiguity(R.CommSet.bindParams(CBind),
                        R.ArraySet.bindParams(ABind),
                        SplitDim) == InPlaceVerdict::Contiguous;
}
