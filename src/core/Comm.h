//===- core/Comm.h - Communication analysis (paper Figures 3 and 5) ------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's unified communication analysis: given a set of coalesced
/// read/write references to a common array (one *logical communication
/// event*), computes the SendCommMap/RecvCommMap of Figure 3 — the data the
/// representative processor m must exchange with each partner — and the
/// active virtual-processor sets of Figure 5 used to restrict VP loops
/// under symbolic distribution parameters.
///
/// Message vectorization is expressed by the placement level: loops outside
/// the placement stay as parameters (J0, J1, ...) while communication for
/// all deeper iterations is aggregated into one event. Message coalescing
/// is expressed by passing several references in one event: DataAccessed
/// unions them *before* the expensive downstream equations, the
/// formulation Section 5 credits with controlling disjunction growth.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_COMM_H
#define DHPF_CORE_COMM_H

#include "core/Partition.h"
#include "hpf/Maps.h"

#include <string>
#include <vector>

namespace dhpf {
namespace core {

/// One reference participating in a logical communication event.
struct CommRef {
  Relation CPMap;    ///< proc/VP -> iterations (invalid if ReplicatedCP)
  bool ReplicatedCP = false;
  Relation RefMap;   ///< loop -> data
  bool IsWrite = false;
};

/// A logical communication event: coalesced references to one array.
struct CommEventInput {
  std::string Array;
  std::vector<CommRef> Refs;
  /// Number of outer loops the communication is placed inside (vectorized
  /// out of all deeper loops). Outer loop variables become parameters
  /// J0..J{PlacementLevel-1} in the resulting sets.
  unsigned PlacementLevel = 0;
  /// Names of the enclosing loop variables (for the J parameters).
  std::vector<std::string> LoopVars;
};

/// The outputs of Figure 3 (bound to the representative processor, whose
/// per-dimension index is the mv* parameter) and Figure 5.
struct CommSets {
  /// partner -> array elements m must send to that partner.
  Relation SendCommMap;
  /// partner -> array elements m must receive from that partner.
  Relation RecvCommMap;
  /// All data accessed by each processor via the event's reads/writes.
  Relation DataAccessedRead, DataAccessedWrite;
  /// The representative processor's non-local data (step 3, bound to mv*).
  /// Used to decide whether the event communicates at all: under the VP
  /// model the partner maps can be spuriously non-empty (fictitious VPs
  /// "access" data), but the non-local data sets are exact.
  Relation NLReadData, NLWriteData;
  /// Off-processor data referenced by each processor (maps, unbound).
  Relation NLDataAccessedRead, NLDataAccessedWrite;
  /// Figure 5: active virtual processors.
  Relation BusyVPSet, ActiveSendVPSet, ActiveRecvVPSet;
  /// Layout of the event's array.
  hpf::LayoutResult Layout;
};

/// The name of the placement parameter for enclosing loop depth \p Level.
std::string placementParam(unsigned Level);

/// Runs the Figure 3 / Figure 5 equations for one event.
///
/// \p CombinedFormulation selects the Section 5 formulation that unions the
/// DataAccessed maps *before* the downstream equations; when false, the
/// "more intuitive" per-reference form is used (equations 4-7 applied per
/// reference, unioned at the end), which the paper reports producing
/// intermediate sets with many more disjunctive terms.
CommSets computeCommSets(const hpf::MapBuilder &MB,
                         const CommEventInput &Event,
                         bool CombinedFormulation = true);

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_COMM_H
