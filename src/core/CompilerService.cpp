//===- core/CompilerService.cpp - Long-lived compiler service ------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CompilerService.h"

#include "core/CompilerDriver.h"
#include "hpf/HpfParser.h"
#include "obs/Metrics.h"
#include "pset/Intern.h"
#include "spmd/KernelCache.h"
#include "spmd/Serialize.h"
#include "support/Diag.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dhpf;
using namespace dhpf::core;

//===----------------------------------------------------------------------===//
// Stats rendering (shared with dhpfc --stats)
//===----------------------------------------------------------------------===//

std::string core::renderCompileStats(const CompileOutput &Out) {
  std::ostringstream OS;
  OS << "  comm events: " << Out.NumCommEvents << " ("
     << Out.NumContiguousProven << " contiguous, " << Out.NumRectSections
     << " rect sections), split nests: " << Out.NumSplitNests
     << ", analysis threads: " << Out.ThreadsUsed << "\n";
  for (const PhaseTimers::Entry &E : Out.Timers.entries()) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%9.3f ms", E.Seconds * 1e3);
    OS << "  " << Buf << "  " << E.Name << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// CompilerService
//===----------------------------------------------------------------------===//

CompilerService &CompilerService::global() {
  static CompilerService S;
  return S;
}

CompilerService::CompilerService(size_t ArtifactCapacity)
    : ArtifactCapacity(ArtifactCapacity ? ArtifactCapacity : 1) {}

CompileSession CompilerService::openSession(std::string ClientName) {
  return CompileSession(*this, std::move(ClientName));
}

pset::OpCache &CompilerService::opCache() { return pset::OpCache::global(); }

pset::InternTable &CompilerService::internTable() {
  return pset::InternTable::global();
}

spmd::native::KernelCache &CompilerService::kernelCache() {
  return spmd::native::KernelCache::global();
}

uint64_t CompilerService::fingerprintRequest(const std::string &Source,
                                             const CompilerOptions &Opts) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ull;
    }
  };
  Mix(Source.data(), Source.size());
  // Every option that changes the compiled program is part of the request
  // identity. DumpAfter/DumpStream only add side-channel output; thread
  // counts do not change the emitted program (emission is sequential) but
  // are folded in anyway so a request is served with the configuration it
  // asked for.
  unsigned char Flags[6] = {
      Opts.LoopSplitting,   Opts.Coalescing,       Opts.InPlaceAnalysis,
      Opts.CombinedFormulation, Opts.ParallelAnalysis,
      static_cast<unsigned char>(0)};
  Mix(Flags, sizeof(Flags));
  uint32_t Threads = Opts.AnalysisThreads;
  Mix(&Threads, sizeof(Threads));
  if (H == 0)
    H = 0x9e3779b97f4a7c15ull; // 0 is the "no fingerprint" sentinel
  return H;
}

std::shared_ptr<const CompileArtifact>
CompilerService::compile(const CompileRequest &R, Served *How) {
  uint64_t FP = fingerprintRequest(R.Source, R.Opts);
  std::shared_ptr<InFlight> Mine;
  {
    std::unique_lock<std::mutex> Lock(M);
    ++Stats.Requests;
    if (!R.BypassArtifactCache) {
      auto It = ArtifactMap.find(FP);
      if (It != ArtifactMap.end()) {
        ArtifactLRU.splice(ArtifactLRU.begin(), ArtifactLRU, It->second);
        ++Stats.ArtifactHits;
        if (How)
          *How = Served::Artifact;
        return It->second->second;
      }
    }
    auto FIt = InFlightMap.find(FP);
    if (FIt != InFlightMap.end()) {
      // Someone is compiling this exact request right now: join them.
      std::shared_ptr<InFlight> F = FIt->second;
      ++Stats.DedupedInFlight;
      ++F->Waiters;
      F->CV.wait(Lock, [&F] { return F->Done; });
      --F->Waiters;
      if (How)
        *How = Served::InFlight;
      return F->Result;
    }
    Mine = std::make_shared<InFlight>();
    InFlightMap.emplace(FP, Mine);
    ++Stats.CompilesStarted;
  }

  std::shared_ptr<const CompileArtifact> A = doCompile(R, FP);

  {
    std::lock_guard<std::mutex> Lock(M);
    if (!A->Ok)
      ++Stats.Errors;
    else
      rememberLocked(FP, A);
    Mine->Result = A;
    Mine->Done = true;
    InFlightMap.erase(FP);
  }
  Mine->CV.notify_all();
  if (How)
    *How = Served::Fresh;
  return A;
}

std::shared_ptr<const CompileArtifact>
CompilerService::doCompile(const CompileRequest &R, uint64_t FP) {
  auto A = std::make_shared<CompileArtifact>();
  A->Fingerprint = FP;
  DiagnosticEngine Diags;
  Expected<std::unique_ptr<hpf::Program>> Parsed =
      hpf::parseHpfProgram(R.Source, Diags, R.Name);
  if (!Parsed) {
    A->DiagText = Diags.str();
    return A;
  }
  std::unique_ptr<hpf::Program> Prog = std::move(Parsed).take();
  CompilerDriver Driver(*Prog, R.Opts, &Diags);
  std::unique_ptr<CompileOutput> Out = Driver.run();
  A->DiagText = Diags.str();
  if (!Out)
    return A;
  A->Ok = true;
  A->ProgName = Prog->name();
  A->Spmd = spmd::serializeSpmdProgram(Out->Program);
  A->StatsText = renderCompileStats(*Out);
  A->CacheDelta = Out->Cache;
  A->ThreadsUsed = Out->ThreadsUsed;
  A->CompileSeconds = Out->Timers.seconds(phase::Total);
  return A;
}

void CompilerService::rememberLocked(
    uint64_t FP, const std::shared_ptr<const CompileArtifact> &A) {
  auto It = ArtifactMap.find(FP);
  if (It != ArtifactMap.end()) {
    // A bypass compile of a cached fingerprint refreshes the entry.
    It->second->second = A;
    ArtifactLRU.splice(ArtifactLRU.begin(), ArtifactLRU, It->second);
    return;
  }
  ArtifactLRU.emplace_front(FP, A);
  ArtifactMap.emplace(FP, ArtifactLRU.begin());
  while (ArtifactLRU.size() > ArtifactCapacity) {
    ArtifactMap.erase(ArtifactLRU.back().first);
    ArtifactLRU.pop_back();
  }
}

bool CompilerService::saveOpCache(const std::string &Path, std::string &Err) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  opCache().serialize(Out);
  Out.flush();
  if (!Out) {
    Err = "error writing '" + Path + "'";
    return false;
  }
  return true;
}

bool CompilerService::loadOpCache(const std::string &Path, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot open '" + Path + "' for reading";
    return false;
  }
  return opCache().deserialize(In, &Err);
}

ServiceStats CompilerService::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}

size_t CompilerService::artifactCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return ArtifactLRU.size();
}

void CompilerService::clearArtifacts() {
  std::lock_guard<std::mutex> Lock(M);
  ArtifactLRU.clear();
  ArtifactMap.clear();
}

void CompilerService::publishMetrics() {
  if (!obs::compiledIn())
    return;
  ServiceStats S = stats();
  obs::MetricsRegistry &R = obs::MetricsRegistry::global();
  R.gauge("svc.requests")->set(static_cast<int64_t>(S.Requests));
  R.gauge("svc.compiles_started")->set(static_cast<int64_t>(S.CompilesStarted));
  R.gauge("svc.deduped_inflight")->set(static_cast<int64_t>(S.DedupedInFlight));
  R.gauge("svc.artifact_hits")->set(static_cast<int64_t>(S.ArtifactHits));
  R.gauge("svc.errors")->set(static_cast<int64_t>(S.Errors));
  R.gauge("svc.artifacts_resident")->set(static_cast<int64_t>(artifactCount()));
  opCache().publishMetrics();
}

//===----------------------------------------------------------------------===//
// CompileSession
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompileArtifact>
CompileSession::compile(const CompileRequest &R, Served *HowOut) {
  Served How = Served::Fresh;
  std::shared_ptr<const CompileArtifact> A = Svc->compile(R, &How);
  ++NumRequests;
  if (How != Served::Fresh)
    ++NumHits;
  if (HowOut)
    *HowOut = How;
  return A;
}

void CompileSession::publishMetrics() const {
  if (!obs::compiledIn())
    return;
  obs::MetricsRegistry &R = obs::MetricsRegistry::global();
  std::string P = "svc.client." + Client;
  R.gauge(P + ".requests")->set(static_cast<int64_t>(NumRequests));
  R.gauge(P + ".hits")->set(static_cast<int64_t>(NumHits));
  R.gauge(P + ".hit_rate_pct")
      ->set(static_cast<int64_t>(hitRate() * 100.0 + 0.5));
}
