//===- core/LoopSplit.cpp - Non-local index-set splitting (Figure 4) -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopSplit.h"

using namespace dhpf;
using namespace dhpf::core;

SplitSets core::computeLoopSplit(const Relation &CpIterSet,
                                 const std::vector<SplitRef> &Refs) {
  // Figure 4(a), with the Section 5 formulation: intersect the per-
  // reference local iteration sets first, then derive the non-local
  // sections by subtraction (fewer disjunctions than unioning per-
  // reference non-local sets).
  Relation LocalReadIters, LocalWriteIters;
  bool AnyRead = false, AnyWrite = false;
  for (const SplitRef &R : Refs) {
    Relation DataAccessed = R.RefMap.apply(CpIterSet);
    // For reads (and non-replicated layouts generally), localDataAccessed
    // is the intersection with the data m owns.
    Relation LocalData = DataAccessed.intersect(R.LayoutMine).simplify();
    Relation LocalIters =
        R.RefMap.inverse().apply(LocalData).intersect(CpIterSet).simplify();
    // Iterations where the reference touches *no* non-local element: those
    // whose accessed element set is fully local. For single-element affine
    // references (our reference model) local-data preimage suffices.
    Relation &Slot = R.IsWrite ? LocalWriteIters : LocalReadIters;
    bool &Any = R.IsWrite ? AnyWrite : AnyRead;
    Slot = Any ? Slot.intersect(LocalIters) : LocalIters;
    Any = true;
  }

  SplitSets Out;
  Relation NLRead =
      AnyRead ? CpIterSet.subtract(LocalReadIters).simplify()
              : Relation::empty(CpIterSet.space());
  Relation NLWrite =
      AnyWrite ? CpIterSet.subtract(LocalWriteIters).simplify()
               : Relation::empty(CpIterSet.space());
  Out.NLRWIters = NLRead.intersect(NLWrite).simplify().coalesce();
  Out.NLROIters = NLRead.subtract(NLWrite).simplify().coalesce();
  Out.NLWOIters = NLWrite.subtract(NLRead).simplify().coalesce();
  Out.LocalIters = CpIterSet.subtract(NLRead.unionWith(NLWrite))
                       .simplify()
                       .coalesce();
  Out.NLRWEmpty = Out.NLRWIters.isEmpty();
  return Out;
}
