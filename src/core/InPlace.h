//===- core/InPlace.h - In-place communication analysis (Section 3.3) ----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recognizes contiguous communication sets so messages can be sent or
/// received in place (no pack/unpack copy). For a column-major array A of
/// rank n, a communication set C is contiguous iff there is a k such that
/// C spans the full extent of dimensions i < k, is convex (an interval) in
/// dimension k, and is a single index in dimensions j > k:
///
///   exists k : (forall i<k : C<i> = A<i>) && IsConvex(C<k>)
///              && (forall j>k : IsSingleton(C<j>))
///
/// Each predicate reduces to emptiness/satisfiability questions on integer
/// sets (IsConvex via the hull; IsSingleton via a pairwise-equality test),
/// so the same test runs at compile time over symbolic parameters and — by
/// binding the parameters — as the synthesized runtime check (at most n+2
/// predicate evaluations after the leftmost-scan, as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_INPLACE_H
#define DHPF_CORE_INPLACE_H

#include "pset/Relation.h"

#include <map>
#include <string>

namespace dhpf {
namespace core {

enum class InPlaceVerdict {
  Contiguous,    ///< proven contiguous at compile time
  NotContiguous, ///< proven non-contiguous for all parameter values
  RuntimeCheck,  ///< undecided symbolically; evaluate at run time
};

/// The compile-time analysis plus the material for the runtime check.
struct InPlaceResult {
  InPlaceVerdict Verdict = InPlaceVerdict::RuntimeCheck;
  /// The dimension k of the contiguity pattern when proven.
  int SplitDim = -1;
  /// Inputs retained for runtime evaluation.
  Relation CommSet, ArraySet;
};

/// Compile-time test: \p CommSet and \p ArraySet are sets over the array's
/// index space (CommSet may reference parameters such as mv*).
InPlaceResult analyzeInPlace(const Relation &CommSet,
                             const Relation &ArraySet);

/// The per-section variant the compiler uses: the paper applies the
/// compile-time test "only to communication sets with only a single
/// conjunct" and notes the generalization to disjoint disjunctions. For a
/// union, each conjunct is tested individually (cheap single-conjunct
/// proofs); the whole set is reported contiguous only when every section
/// is — sound for the coalesced shift patterns whose sections go to
/// distinct partners, and an approximation (pack-cost modeling only) if
/// same-partner sections ever overlap.
InPlaceResult analyzeInPlaceSections(const Relation &CommSet,
                                     const Relation &ArraySet);

/// The runtime check: the same predicates with the available parameters
/// bound (decided exactly when every parameter is bound). Parameters
/// missing from \p Bindings stay symbolic and the test stays sound —
/// contiguity is claimed only when proven for all their values. Returns
/// true when the transfer is contiguous.
bool checkInPlaceAtRuntime(const InPlaceResult &R,
                           const std::map<std::string, int64_t> &Bindings);

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_INPLACE_H
