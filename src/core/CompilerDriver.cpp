//===- core/CompilerDriver.cpp - Pass-pipeline compiler driver -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CompilerDriver.h"

#include "core/InPlace.h"
#include "obs/Trace.h"

#include <functional>
#include <iostream>
#include <set>
#include <sstream>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

//===----------------------------------------------------------------------===//
// Program validation
//===----------------------------------------------------------------------===//

bool core::validateProgram(const Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  SourceLoc Loc(P.name().empty() ? "<program>" : P.name());
  auto Err = [&](const std::string &Msg) { Diags.error(Loc, Msg); };

  auto CheckRef = [&](const Reference &R, const std::string &Where) {
    auto It = P.arrays().find(R.Array);
    if (It == P.arrays().end()) {
      Err(Where + " references undeclared array '" + R.Array + "'");
      return;
    }
    if (R.Subs.size() != It->second.rank())
      Err(Where + " indexes array '" + R.Array + "' with " +
          std::to_string(R.Subs.size()) + " subscript(s), rank is " +
          std::to_string(It->second.rank()));
  };

  for (const auto &[Name, A] : P.aligns()) {
    if (P.arrays().find(Name) == P.arrays().end())
      Err("align of undeclared array '" + Name + "'");
    auto It = P.templates().find(A.TemplateName);
    if (It == P.templates().end()) {
      Err("array '" + Name + "' aligned with undeclared template '" +
          A.TemplateName + "'");
      continue;
    }
    if (A.Terms.size() != It->second.rank())
      Err("array '" + Name + "' alignment has " +
          std::to_string(A.Terms.size()) + " term(s), template '" +
          A.TemplateName + "' has rank " +
          std::to_string(It->second.rank()));
  }

  for (const auto &[Name, D] : P.distributes()) {
    auto TIt = P.templates().find(Name);
    if (TIt == P.templates().end()) {
      Err("distribute of undeclared template '" + Name + "'");
      continue;
    }
    if (P.procArrays().find(D.ProcName) == P.procArrays().end())
      Err("template '" + Name + "' distributed onto undeclared processor "
          "array '" + D.ProcName + "'");
    if (D.Specs.size() != TIt->second.rank())
      Err("template '" + Name + "' distribution has " +
          std::to_string(D.Specs.size()) + " spec(s), template rank is " +
          std::to_string(TIt->second.rank()));
  }

  std::function<void(const Phase &)> CheckPhase = [&](const Phase &Ph) {
    if (Ph.K == Phase::Kind::Nest) {
      const ComputeNest &Nest = Ph.Nest;
      std::set<std::string> LoopVars;
      for (const Loop &L : Nest.Loops)
        if (!LoopVars.insert(L.Var).second)
          Err("nest '" + Nest.Name + "' repeats loop variable '" + L.Var +
              "'");
      for (const Statement &St : Nest.Stmts) {
        std::string Where = "nest '" + Nest.Name + "' statement S" +
                            std::to_string(St.Id);
        CheckRef(St.Write, Where);
        for (const Reference &R : St.Reads)
          CheckRef(R, Where);
        for (const Reference &R : St.OnHome)
          CheckRef(R, Where + " (onhome)");
      }
    }
    for (const Phase &Sub : Ph.Body)
      CheckPhase(Sub);
  };
  for (const Procedure &Proc : P.procedures())
    for (const Phase &Ph : Proc.Phases)
      CheckPhase(Ph);

  // Every distributed array must trace to a distributed template: the map
  // builder asserts this; report it as a diagnostic first.
  for (const auto &[Name, A] : P.aligns()) {
    (void)Name;
    if (P.templates().find(A.TemplateName) != P.templates().end() &&
        P.distributes().find(A.TemplateName) == P.distributes().end())
      Err("template '" + A.TemplateName + "' is aligned to but never "
          "distributed");
  }

  return Diags.errorCount() == Before;
}

//===----------------------------------------------------------------------===//
// The driver
//===----------------------------------------------------------------------===//

CompilerDriver::CompilerDriver(const Program &P, CompilerOptions Opts,
                               DiagnosticEngine *Diags)
    : Ctx(P, std::move(Opts)), Out(std::make_unique<CompileOutput>()) {
  Ctx.Diags = Diags;
  Ctx.Out = Out.get();
  Ctx.SP = &Out->Program;
  Ctx.T = &Out->Timers;
  Ctx.SP->Source = &P;
  // Hand the interpreter the synthesized Section 3.3 runtime check (the
  // spmd library cannot link this analysis code directly).
  Ctx.SP->InPlaceRuntimeCheck = &checkInPlaceAtRuntime;
}

std::vector<std::string> CompilerDriver::passNames() {
  return {"partition", "comm", "split", "vp", "emit"};
}

namespace {

bool wantDump(const std::string &DumpAfter, const char *PassName) {
  std::istringstream In(DumpAfter);
  std::string Tok;
  while (std::getline(In, Tok, ',')) {
    size_t B = Tok.find_first_not_of(" \t");
    size_t E = Tok.find_last_not_of(" \t");
    if (B == std::string::npos)
      continue;
    std::string Name = Tok.substr(B, E - B + 1);
    if (Name == "all" || Name == PassName)
      return true;
  }
  return false;
}

} // namespace

std::unique_ptr<CompileOutput> CompilerDriver::run() {
  if (Ctx.Diags && !validateProgram(Ctx.P, *Ctx.Diags))
    return nullptr;

  pset::CacheStats CacheBefore = pset::OpCache::global().stats();
  obs::TraceBuffer *TB = &obs::TraceBuffer::global();
  {
    PhaseTimers::Scope Total(*Ctx.T, phase::Total);
    obs::TraceSpan CompileSpan(
        TB, "compile:" + (Ctx.P.name().empty() ? "<program>" : Ctx.P.name()),
        "compile");
    // Register program parameters up front so slots are stable.
    for (const std::string &Pr : Ctx.P.params())
      Ctx.SP->Vars.slot(Pr);

    // "Interprocedural analysis": per-procedure array access summaries.
    {
      PhaseTimers::Scope S(*Ctx.T, phase::Interproc);
      std::map<std::string, std::set<std::string>> Summary;
      std::function<void(const Phase &, std::set<std::string> &)> Scan =
          [&](const Phase &Ph, std::set<std::string> &Acc) {
            if (Ph.K == Phase::Kind::Nest) {
              for (const Statement &St : Ph.Nest.Stmts) {
                Acc.insert(St.Write.Array);
                for (const Reference &R : St.Reads)
                  Acc.insert(R.Array);
              }
            }
            for (const Phase &Sub : Ph.Body)
              Scan(Sub, Acc);
          };
      for (const Procedure &Proc : Ctx.P.procedures())
        for (const Phase &Ph : Proc.Phases)
          Scan(Ph, Summary[Proc.Name]);
    }

    // Collect compute nests in the exact order EmitPass visits them
    // (SeqLoop bodies recursed in place), so emission consumes the
    // analyses strictly in order.
    std::function<void(const Phase &)> Collect = [&](const Phase &Ph) {
      if (Ph.K == Phase::Kind::Nest) {
        Ctx.Nests.push_back(&Ph.Nest);
        return;
      }
      if (Ph.K == Phase::Kind::SeqLoop)
        for (const Phase &Sub : Ph.Body)
          Collect(Sub);
    };
    for (const Procedure &Proc : Ctx.P.procedures())
      for (const Phase &Ph : Proc.Phases)
        Collect(Ph);
    Ctx.NestAnalyses.resize(Ctx.Nests.size());

    Ctx.Threads = 1;
    if (Ctx.Opts.ParallelAnalysis)
      Ctx.Threads = Ctx.Opts.AnalysisThreads ? Ctx.Opts.AnalysisThreads
                                             : ThreadPool::hardwareThreads();
    Out->ThreadsUsed = Ctx.Threads;
    if (Ctx.Threads > 1 && Ctx.Nests.size() > 1)
      Ctx.Pool = std::make_unique<ThreadPool>(Ctx.Threads);

    // The pipeline. The analysis passes write per-nest records (with
    // private timers, merged below in nest order); EmitPass then builds
    // the SPMD program sequentially.
    std::unique_ptr<Pass> Pipeline[] = {createPartitionPass(),
                                        createCommPass(), createSplitPass(),
                                        createVPPass(), createEmitPass()};
    for (std::unique_ptr<Pass> &P : Pipeline) {
      if (P->name() == std::string("emit")) {
        Ctx.Pool.reset(); // analysis is done; emission is sequential
        for (const NestAnalysis &NA : Ctx.NestAnalyses)
          Ctx.T->merge(NA.Timers);
      }
      {
        obs::TraceSpan PassSpan(TB, std::string("pass:") + P->name(),
                                "compile",
                                "\"nests\": " +
                                    std::to_string(Ctx.Nests.size()));
        P->run(Ctx);
      }
      obs::MetricsRegistry::global()
          .counter(std::string("core.pass.") + P->name() + ".runs")
          ->inc();
      if (!Ctx.Opts.DumpAfter.empty() &&
          wantDump(Ctx.Opts.DumpAfter, P->name())) {
        std::ostream &OS =
            Ctx.Opts.DumpStream ? *Ctx.Opts.DumpStream : std::cerr;
        OS << "*** IR dump after " << P->name() << " ***\n";
        P->dump(Ctx, OS);
      }
    }
  }
  Out->Cache = pset::OpCache::global().stats() - CacheBefore;
  return std::move(Out);
}
