//===- core/Partition.h - Computation partitioning (paper Section 3.1) ---===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's general computation partitioning (CP) model: a statement's
/// CP is a union of ON_HOME{A_j(f_j(i))} terms, converted into the explicit
/// mapping  CPMap = U_j (Layout_{A_j} o RefMap_j^-1) ∩_range loop.
/// Statements with no ON_HOME terms follow the owner-computes rule (the
/// write reference). Statement groups — consecutive statements with
/// identical CPs — share one partitioned loop nest.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_PARTITION_H
#define DHPF_CORE_PARTITION_H

#include "hpf/Maps.h"

#include <string>
#include <vector>

namespace dhpf {
namespace core {

/// The computation partitioning of one statement.
struct CPInfo {
  /// True when the statement executes on every processor (ON_HOME of a
  /// replicated array, or a statement with no distributed references).
  bool Replicated = false;
  /// proc/VP tuple -> iterations it executes (valid if !Replicated).
  Relation CPMap;
  /// Layout structure of the owning array (physical/virtual dims).
  std::vector<hpf::VPDimInfo> Dims;
  std::string ProcName;
};

/// Names for the "representative processor" parameters: the domain of a
/// CPMap is bound to parameters mv0, mv1, ... standing for myid's index
/// (or current virtual-processor index) in each layout dimension.
std::string myDimParam(unsigned Dim);

/// Computes the explicit CPMap for one statement of a nest.
CPInfo computeCP(const hpf::MapBuilder &MB, const hpf::ComputeNest &Nest,
                 const hpf::Statement &S);

/// The statement's iteration set on the representative processor:
/// cpIterSet = CPMap({mv}) — a set over the loop space parameterized by
/// the mv* parameters. For replicated CPs this is the whole loop set.
Relation cpIterSet(const hpf::MapBuilder &MB, const hpf::ComputeNest &Nest,
                   const CPInfo &CP);

/// Groups consecutive statements with equal CPMaps (statement groups).
/// Returns the group index of each statement.
std::vector<unsigned> groupStatements(const std::vector<CPInfo> &CPs);

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_PARTITION_H
