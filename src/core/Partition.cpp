//===- core/Partition.cpp - Computation partitioning ---------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Partition.h"

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;

std::string core::myDimParam(unsigned Dim) {
  return "mv" + std::to_string(Dim);
}

CPInfo core::computeCP(const MapBuilder &MB, const ComputeNest &Nest,
                       const Statement &S) {
  CPInfo Info;
  // The CP terms: explicit ON_HOME references, or the write reference
  // (owner-computes rule) when none are given.
  std::vector<Reference> Terms = S.OnHome;
  if (Terms.empty())
    Terms.push_back(S.Write);

  Relation LoopSet = MB.loopSet(Nest);
  bool First = true;
  for (const Reference &R : Terms) {
    LayoutResult L = MB.layout(R.Array);
    if (L.ProcName.empty()) {
      // Replicated owner: the statement runs everywhere. A union with a
      // replicated term replicates the whole statement.
      Info.Replicated = true;
      Info.CPMap = Relation();
      return Info;
    }
    Relation RM = MB.refMap(Nest, R);
    Relation Term = L.Map.composeWith(RM.inverse()).restrictRange(LoopSet);
    if (First) {
      Info.CPMap = std::move(Term);
      Info.Dims = L.Dims;
      Info.ProcName = L.ProcName;
      First = false;
    } else {
      // Paper Section 5: CP terms over different processor arrays cannot
      // be combined into a single mapping; we support one processor array
      // per statement (the common case the paper also optimizes for).
      assert(Info.ProcName == L.ProcName &&
             "CP terms must share one processor array");
      Info.CPMap = Info.CPMap.unionWith(Term);
    }
  }
  return Info;
}

Relation core::cpIterSet(const MapBuilder &MB, const ComputeNest &Nest,
                         const CPInfo &CP) {
  if (CP.Replicated)
    return MB.loopSet(Nest);
  std::vector<std::string> Names;
  for (unsigned D = 0; D != CP.CPMap.numIn(); ++D)
    Names.push_back(myDimParam(D));
  return CP.CPMap.bindDomainToParams(Names);
}

std::vector<unsigned> core::groupStatements(const std::vector<CPInfo> &CPs) {
  std::vector<unsigned> Groups(CPs.size(), 0);
  unsigned Cur = 0;
  for (unsigned I = 1; I < CPs.size(); ++I) {
    const CPInfo &A = CPs[I - 1], &B = CPs[I];
    bool Same = A.Replicated == B.Replicated;
    if (Same && !A.Replicated)
      Same = A.ProcName == B.ProcName &&
             A.CPMap.space().sameDims(B.CPMap.space()) &&
             A.CPMap.isEqualTo(B.CPMap);
    if (!Same)
      ++Cur;
    Groups[I] = Cur;
  }
  return Groups;
}
