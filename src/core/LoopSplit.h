//===- core/LoopSplit.h - Non-local index-set splitting (Figure 4) -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's loop-splitting transformation: the iteration set of a
/// partitioned loop nest (one statement group) is split into the iterations
/// that touch only local data and those that read, write, or read-and-write
/// non-local data. The four sections are scheduled per Figure 4(b) to
/// overlap communication with the local iterations, and references in local
/// sections need no buffer-access checks.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_LOOPSPLIT_H
#define DHPF_CORE_LOOPSPLIT_H

#include "core/Partition.h"
#include "hpf/Maps.h"

#include <vector>

namespace dhpf {
namespace core {

/// One potentially non-local reference of a statement group.
struct SplitRef {
  Relation RefMap; ///< loop -> data
  Relation LayoutMine; ///< data owned by m: Layout({mv}) of its array
  bool IsWrite = false;
};

/// The four iteration sections (all parameterized by mv*).
struct SplitSets {
  Relation LocalIters;  ///< touch only local data
  Relation NLROIters;   ///< read non-local data only
  Relation NLWOIters;   ///< write non-local data only
  Relation NLRWIters;   ///< both
  /// True when NLRW is empty, enabling write-latency overlap as well
  /// (Figure 4(b)'s discussion).
  bool NLRWEmpty = false;
};

/// Computes Figure 4(a)'s sets for one statement group with iteration set
/// \p CpIterSet (already bound to the representative processor).
SplitSets computeLoopSplit(const Relation &CpIterSet,
                           const std::vector<SplitRef> &Refs);

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_LOOPSPLIT_H
