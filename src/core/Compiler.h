//===- core/Compiler.h - The dHPF-style compiler driver ------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver: runs the set-based analyses over a mini-HPF program
/// and produces a compiled SPMD node program. Phases (timed for the Table 1
/// reproduction):
///
///   - interprocedural analysis (array access summaries)
///   - partitioning computation (CPMap construction, statement grouping)
///   - loop splitting (Figure 4)
///   - loop bounds reduction (partitioned-loop code generation)
///   - communication generation (Figure 3 equations, pack/unpack and
///     partner loops, contiguity and rectangular-section checks)
///   - optimization of generated code (AST cleanup post-pass)
///
/// Every code-generation problem goes through the multiple-mappings Codegen
/// operation, whose cumulative time is reported separately (the paper's
/// "mult mappings code generation" row).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_CORE_COMPILER_H
#define DHPF_CORE_COMPILER_H

#include "cg/CodeGen.h"
#include "hpf/Maps.h"
#include "pset/OpCache.h"
#include "spmd/SpmdProgram.h"
#include "support/Timer.h"

#include <iosfwd>
#include <memory>
#include <string>

namespace dhpf {
namespace core {

struct CompilerOptions {
  /// Apply non-local index-set splitting (Figure 4) to overlap
  /// communication with computation and avoid buffer-access checks.
  bool LoopSplitting = true;
  /// Coalesce communication for references to the same array into one
  /// logical event (Figure 3's unified formulation).
  bool Coalescing = true;
  /// Run the Section 3.3 in-place (contiguity) analysis per event.
  bool InPlaceAnalysis = true;
  /// Use the Section 5 formulation that combines DataAccessed before the
  /// per-reference equations (ablation: the naive per-reference form).
  bool CombinedFormulation = true;
  /// Run the per-nest analyses (partitioning, communication equations,
  /// loop splitting) on a thread pool. Emission stays sequential, so the
  /// compiled program is identical for any thread count.
  bool ParallelAnalysis = true;
  /// Worker count for parallel analysis; 0 selects the hardware
  /// concurrency. Ignored when ParallelAnalysis is off.
  unsigned AnalysisThreads = 0;
  /// Comma-separated pass names (or "all") whose state is dumped right
  /// after they run; empty disables dumping. See CompilerDriver.
  std::string DumpAfter;
  /// Destination for -dump-after output; null means stderr.
  std::ostream *DumpStream = nullptr;
  cg::CodeGenOptions CG;
};

/// Phase names used in the timing report (Table 1 rows).
namespace phase {
inline const char *Total = "total compilation";
inline const char *Interproc = "interprocedural analysis";
inline const char *Partitioning = "partitioning computation";
inline const char *LoopSplitting = "loop splitting";
inline const char *BoundsReduction = "loop bounds reduction";
inline const char *CommGeneration = "communication generation";
inline const char *CommEquations = "  comm set equations";
inline const char *CommLoops = "  loops to pack/unpack + partners";
inline const char *ContigCheck = "  check if msg is contiguous";
inline const char *RectCheck = "  check if msg is rect section";
inline const char *OptGenerated = "opt of generated code";
inline const char *MMCodegen = "mult mappings code generation";
} // namespace phase

struct CompileOutput {
  spmd::SpmdProgram Program;
  PhaseTimers Timers;
  unsigned NumCommEvents = 0;
  unsigned NumContiguousProven = 0;
  unsigned NumRectSections = 0;
  unsigned NumSplitNests = 0;
  unsigned NodesRemovedByOpt = 0;
  /// Set-operation cache and fast-path activity during this compile
  /// (delta of the process-wide counters over the run).
  pset::CacheStats Cache;
  /// Number of analysis threads used (1 = sequential).
  unsigned ThreadsUsed = 1;
};

/// True if set \p S provably equals the cross product of its per-dimension
/// projections (a "rectangular section" in the Table 1 row's sense).
bool isRectSectionProven(const Relation &S);

/// Compiles \p P into an SPMD node program.
std::unique_ptr<CompileOutput> compileProgram(const hpf::Program &P,
                                              CompilerOptions Opts = {});

} // namespace core
} // namespace dhpf

#endif // DHPF_CORE_COMPILER_H
