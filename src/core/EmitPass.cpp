//===- core/EmitPass.cpp - SPMD program emission ------------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
//
// The final pipeline stage: walks the program's phases in order, consuming
// the NestAnalysis records the analysis passes produced, and emits the
// compiled SPMD node program (statements, communication events with
// pack/unpack loops and contiguity checks, VP loop wrapping, the Figure
// 4(b) split schedule). Emission is strictly sequential — slot assignment
// and event ids depend on visit order — which is what makes the compiled
// program independent of the analysis thread count.
//
//===----------------------------------------------------------------------===//

#include "core/CompileContext.h"
#include "core/InPlace.h"
#include "obs/Trace.h"

#include <ostream>
#include <utility>

using namespace dhpf;
using namespace dhpf::core;
using namespace dhpf::hpf;
using spmd::CompiledStmt;
using spmd::SpmdNode;
using spmd::SpmdProgram;

namespace {

class EmitPass : public Pass {
public:
  const char *name() const override { return "emit"; }

  void run(CompileContext &Context) override {
    Ctx = &Context;
    SP = Ctx->SP;
    T = Ctx->T;
    SP->Root = SpmdNode::make(SpmdNode::Kind::Seq);
    for (const Procedure &Proc : Ctx->P.procedures())
      for (const Phase &Ph : Proc.Phases)
        compilePhase(Ph, SP->Root.get());
    assert(NextNestIdx == Ctx->NestAnalyses.size() &&
           "emission consumed a different nest set than analysis produced");
  }

  void dump(const CompileContext &Context, std::ostream &OS) const override {
    OS << Context.SP->print();
  }

private:
  CompileContext *Ctx = nullptr;
  SpmdProgram *SP = nullptr;
  PhaseTimers *T = nullptr;
  bool ProcInfoSet = false;
  /// Emission consumes Ctx->NestAnalyses through this cursor, in the order
  /// compilePhase visits nests.
  size_t NextNestIdx = 0;

  //===------------------------- small helpers ---------------------------===//

  void noteProcInfo(const CPInfo &CP) {
    if (CP.Replicated)
      return;
    if (!ProcInfoSet) {
      SP->ProcName = CP.ProcName;
      SP->ProcDims = CP.Dims;
      for (unsigned D = 0; D != CP.Dims.size(); ++D) {
        SP->MySlots.push_back(SP->Vars.slot(myDimParam(D)));
        SP->CoordSlots.push_back(SP->Vars.slot("mc" + std::to_string(D)));
      }
      ProcInfoSet = true;
      return;
    }
    assert(SP->ProcName == CP.ProcName &&
           "a program must use a single processor array");
  }

  cg::Expr affineToExpr(const AffineExpr &E,
                        const std::map<std::string, std::string>
                            *Renames = nullptr) {
    cg::Expr R = cg::Expr::constant(E.K);
    for (auto &[Name, Coef] : E.Terms) {
      std::string N = Name;
      if (Renames) {
        auto It = Renames->find(Name);
        if (It != Renames->end())
          N = It->second;
      }
      unsigned S = SP->Vars.slot(N);
      R = cg::Expr::add(R, cg::Expr::mul(cg::Expr::var(S, N), Coef));
    }
    return R;
  }

  /// Codegen wrapper that attributes time to \p Phase and to the MM-codegen
  /// total, then runs the generated-code optimization pass.
  cg::AstPtr timedCodegen(const char *Phase,
                          const std::vector<cg::StmtInstance> &Stmts,
                          const std::vector<std::string> &LoopVars,
                          const Relation *Known = nullptr) {
    cg::AstPtr Ast;
    double Secs;
    {
      auto Start = std::chrono::steady_clock::now();
      cg::CodeGen CG(SP->Vars, Ctx->Opts.CG);
      Ast = CG.codegen(Stmts, LoopVars, Known);
      Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           Start)
                 .count();
    }
    T->add(Phase, Secs);
    T->add(phase::MMCodegen, Secs);
    {
      PhaseTimers::Scope S(*T, phase::OptGenerated);
      Ctx->Out->NodesRemovedByOpt += cg::optimizeAst(Ast);
    }
    return Ast;
  }

  /// Like timedCodegen, but one nest per conjunct (used for communication
  /// sets, which are sparse unions; the interpreter deduplicates overlap).
  cg::AstPtr timedCodegenPerConjunct(const char *Phase, const Relation &S,
                                     const std::vector<std::string> &Vars,
                                     const std::string &Label) {
    cg::AstPtr Ast;
    double Secs;
    {
      auto Start = std::chrono::steady_clock::now();
      cg::CodeGen CG(SP->Vars, Ctx->Opts.CG);
      Ast = CG.codegenSetPerConjunct(S, Vars, 0, Label);
      Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           Start)
                 .count();
    }
    T->add(Phase, Secs);
    T->add(phase::MMCodegen, Secs);
    {
      PhaseTimers::Scope Sc(*T, phase::OptGenerated);
      Ctx->Out->NodesRemovedByOpt += cg::optimizeAst(Ast);
    }
    return Ast;
  }

  /// Extracts hull bounds of a 1-D set by generating a scan loop for it.
  std::pair<cg::Expr, cg::Expr> bounds1D(const Relation &S) {
    cg::CodeGen CG(SP->Vars, Ctx->Opts.CG);
    cg::AstPtr Ast = CG.codegenSet(S, {"__bnd"});
    const cg::AstNode *N = Ast.get();
    while (N && N->K != cg::AstNode::Kind::Loop)
      N = N->Children.empty() ? nullptr : N->Children.front().get();
    if (!N)
      return {cg::Expr::constant(1), cg::Expr::constant(0)}; // empty
    return {N->LB, N->UB};
  }

  cg::Expr procExtentExpr(unsigned D) {
    const VPDimInfo &Info = SP->ProcDims[D];
    if (!Info.ProcSym.empty())
      return cg::Expr::var(SP->Vars.slot(Info.ProcSym), Info.ProcSym);
    return cg::Expr::constant(Info.ProcFixed);
  }

  /// Wraps \p Body in virtual-processor loops (Figure 6): for each
  /// cyclic-virtualized dimension, a loop over the VPs of this physical
  /// processor restricted to \p VPSet's hull in that dimension.
  cg::AstPtr wrapVPLoops(cg::AstPtr Body, const Relation &VPSet) {
    if (!ProcInfoSet)
      return Body;
    for (int D = static_cast<int>(SP->ProcDims.size()) - 1; D >= 0; --D) {
      const VPDimInfo &Info = SP->ProcDims[D];
      if (!Info.Virtualized || Info.Kind == DistSpec::Kind::Block)
        continue;
      auto [LB, UB] = bounds1D(VPSet.projectOntoDim(D));
      cg::Expr Coord = cg::Expr::var(SP->CoordSlots[D],
                                     SP->Vars.name(SP->CoordSlots[D]));
      cg::Expr Base, Step;
      if (Info.Kind == DistSpec::Kind::Cyclic) {
        Base = cg::Expr::add(cg::Expr::constant(Info.TmplLo), Coord);
        Step = procExtentExpr(D);
      } else { // CyclicK
        Base = cg::Expr::add(cg::Expr::constant(Info.TmplLo),
                             cg::Expr::mul(Coord, Info.CyclicK));
        Step = cg::Expr::mul(procExtentExpr(D), Info.CyclicK);
      }
      // Smallest v >= LB with v ≡ Base (mod Step):
      //   v0 = LB + ((Base - LB) mod Step).
      cg::Expr Aligned = cg::Expr::add(
          LB, cg::Expr::modExpr(cg::Expr::sub(Base, LB), Step));
      cg::AstPtr Loop = cg::AstNode::loop(
          SP->Vars.name(SP->MySlots[D]), SP->MySlots[D], Aligned, UB, Step);
      Loop->Children.push_back(std::move(Body));
      Body = std::move(Loop);
    }
    return Body;
  }

  /// Figure 6's "do not communicate with fictitious virtual processors",
  /// applied at code-generation time: partner loops over block- and
  /// cyclic(k)-virtualized dimensions advance by the block size, starting
  /// at the first real VP (a block start) at or above the loop's bound.
  void stridePartnerLoops(cg::AstNode &N,
                          const std::vector<unsigned> &PartnerSlots) {
    if (N.K == cg::AstNode::Kind::Loop) {
      for (unsigned D = 0; D != SP->ProcDims.size() &&
                           D != PartnerSlots.size();
           ++D) {
        if (N.VarSlot != PartnerSlots[D])
          continue;
        const VPDimInfo &Info = SP->ProcDims[D];
        if (!Info.Virtualized)
          break;
        cg::Expr Step;
        if (Info.Kind == DistSpec::Kind::Block)
          Step = cg::Expr::var(SP->Vars.slot(Info.BlockParam),
                               Info.BlockParam);
        else if (Info.Kind == DistSpec::Kind::CyclicK)
          Step = cg::Expr::constant(Info.CyclicK);
        else
          break; // cyclic: every template cell is a real VP
        // First block start >= LB: LB + ((TmplLo - LB) mod Step).
        N.LB = cg::Expr::add(
            N.LB, cg::Expr::modExpr(
                      cg::Expr::sub(cg::Expr::constant(Info.TmplLo), N.LB),
                      Step));
        N.Step = Step;
        break;
      }
    }
    for (cg::AstPtr &C : N.Children)
      stridePartnerLoops(*C, PartnerSlots);
  }

  //===--------------------------- statements ----------------------------===//

  int compileStmt(const Statement &S, const ComputeNest &Nest) {
    if (SP->Stmts.size() <= static_cast<size_t>(S.Id))
      SP->Stmts.resize(S.Id + 1);
    CompiledStmt CS;
    CS.Id = S.Id;
    CS.WriteArray = S.Write.Array;
    for (const AffineExpr &E : S.Write.Subs)
      CS.WriteSubs.push_back(affineToExpr(E));
    for (const Reference &R : S.Reads) {
      CompiledStmt::Read Rd;
      Rd.Array = R.Array;
      for (const AffineExpr &E : R.Subs)
        Rd.Subs.push_back(affineToExpr(E));
      CS.Reads.push_back(std::move(Rd));
    }
    CS.Cost = S.Cost;
    CS.SemanticsId = S.SemanticsId;
    CS.Label = Nest.Name + "/S" + std::to_string(S.Id);
    SP->Stmts[S.Id] = std::move(CS);
    return S.Id;
  }

  //===------------------------ communication ----------------------------===//

  /// Builds the compiled event (send/recv loops, contiguity checks) and
  /// registers it; returns its id, or -1 when there is no communication.
  int emitEvent(EventPlan &Plan) {
    const CommSets &CS = Plan.CS;
    // Plan.Communicates was decided by CommPass: the event communicates
    // iff some processor accesses non-local data.
    if (!Plan.Communicates)
      return -1;

    spmd::CommEvent Ev;
    Ev.Id = SP->Events.size();
    Ev.Array = Plan.In.Array;
    unsigned PR = CS.SendCommMap.numIn();
    unsigned ER = CS.SendCommMap.numOut();
    std::vector<std::string> Vars;
    for (unsigned I = 0; I != PR; ++I) {
      std::string N = "q" + std::to_string(I);
      Vars.push_back(N);
      Ev.PartnerSlots.push_back(SP->Vars.slot(N));
    }
    for (unsigned I = 0; I != ER; ++I) {
      std::string N = "x" + std::to_string(I);
      Vars.push_back(N);
      Ev.ElemSlots.push_back(SP->Vars.slot(N));
    }
    {
      PhaseTimers::Scope S(*T, phase::CommGeneration);
      Ev.SendLoops = timedCodegenPerConjunct(
          phase::CommLoops, CS.SendCommMap.asSet(), Vars, "pack");
      Ev.RecvLoops = timedCodegenPerConjunct(
          phase::CommLoops, CS.RecvCommMap.asSet(), Vars, "unpack");
      if (ProcInfoSet) {
        stridePartnerLoops(*Ev.SendLoops, Ev.PartnerSlots);
        stridePartnerLoops(*Ev.RecvLoops, Ev.PartnerSlots);
      }
      // Restrict to the active virtual processors (Figure 5/6).
      if (!CS.ActiveSendVPSet.conjuncts().empty())
        Ev.SendLoops =
            wrapVPLoops(std::move(Ev.SendLoops), CS.ActiveSendVPSet);
      if (!CS.ActiveRecvVPSet.conjuncts().empty())
        Ev.RecvLoops =
            wrapVPLoops(std::move(Ev.RecvLoops), CS.ActiveRecvVPSet);
    }
    if (Ctx->Opts.InPlaceAnalysis) {
      // The per-partner message section: partners become parameters.
      std::vector<std::string> QP;
      for (unsigned I = 0; I != PR; ++I)
        QP.push_back("qp" + std::to_string(I));
      Relation PerPartner =
          CS.RecvCommMap.bindDomainToParams(QP).simplify().coalesce();
      {
        PhaseTimers::Scope S(*T, phase::ContigCheck);
        Ev.InPlace = analyzeInPlaceSections(PerPartner,
                                            Ctx->MB.dataSet(Plan.In.Array));
        Ev.InPlaceProven = Ev.InPlace.Verdict == InPlaceVerdict::Contiguous;
        if (Ev.InPlaceProven)
          ++Ctx->Out->NumContiguousProven;
      }
      {
        // Rectangular-section check: like the paper's contiguity test,
        // applied to single-conjunct sections only (cost control).
        PhaseTimers::Scope S(*T, phase::RectCheck);
        if (std::as_const(PerPartner).conjuncts().size() <= 1 &&
            isRectSectionProven(PerPartner))
          ++Ctx->Out->NumRectSections;
      }
    }
    ++Ctx->Out->NumCommEvents;
    SP->Events.push_back(std::move(Ev));
    return SP->Events.back().Id;
  }

  //===------------------------- nest compilation ------------------------===//

  void compileNest(const ComputeNest &Nest, SpmdNode *Parent) {
    assert(NextNestIdx < Ctx->NestAnalyses.size() &&
           "nest collection out of sync with compilePhase");
    obs::TraceSpan Span(&obs::TraceBuffer::global(), "emit:" + Nest.Name,
                        "compile.nest");
    NestAnalysis &NA = Ctx->NestAnalyses[NextNestIdx++];
    const std::vector<CPInfo> &CPs = NA.CPs;
    const std::vector<unsigned> &Groups = NA.Groups;
    const std::vector<Relation> &GroupIters = NA.GroupIters;

    for (const CPInfo &CP : CPs)
      noteProcInfo(CP);

    for (const Statement &St : Nest.Stmts)
      compileStmt(St, Nest);

    unsigned V = std::min<unsigned>(Nest.VectorizeLevel, Nest.Loops.size());

    std::vector<EventPlan *> Live;
    for (EventPlan &EP : NA.Plans) {
      EP.EventId = emitEvent(EP);
      if (EP.EventId >= 0)
        Live.push_back(&EP);
    }

    // Placement loops (partial vectorization): communication and the nest
    // body live inside sequential J loops over the outer dimensions.
    SpmdNode *Container = Parent;
    std::map<std::string, std::string> Renames;
    for (unsigned L = 0; L != V; ++L) {
      auto TL = SpmdNode::make(SpmdNode::Kind::TimeLoop);
      TL->SeqVar = placementParam(L);
      TL->SeqSlot = SP->Vars.slot(TL->SeqVar);
      TL->SeqLo = affineToExpr(Nest.Loops[L].Lo, &Renames);
      TL->SeqHi = affineToExpr(Nest.Loops[L].Hi, &Renames);
      Renames[Nest.Loops[L].Var] = placementParam(L);
      SpmdNode *Raw = TL.get();
      Container->Children.push_back(std::move(TL));
      Container = Raw;
    }

    // Restrict statement iteration sets to the placement parameters.
    auto PlaceRestrict = [&](Relation S) {
      for (unsigned L = 0; L != V; ++L)
        S = S.equateOutDimToParam(L, placementParam(L));
      return S;
    };

    std::vector<std::string> LoopVars;
    for (const Loop &L : Nest.Loops)
      LoopVars.push_back(L.Var);

    auto AddCompute = [&](const std::vector<cg::StmtInstance> &SIs,
                          const std::string &Tag) {
      bool AllEmpty = true;
      for (const cg::StmtInstance &SI : SIs)
        if (!SI.Iters.conjuncts().empty() && !SI.Iters.isEmpty())
          AllEmpty = false;
      if (AllEmpty)
        return;
      cg::AstPtr Ast = timedCodegen(phase::BoundsReduction, SIs, LoopVars);
      if (NA.AnyBusy)
        Ast = wrapVPLoops(std::move(Ast), NA.BusyVP);
      auto N = SpmdNode::make(SpmdNode::Kind::Compute);
      N->Loops = std::move(Ast);
      N->NestName = Nest.Name + Tag;
      Container->Children.push_back(std::move(N));
    };
    auto AddComm = [&](SpmdNode::Kind K, int EventId) {
      auto N = SpmdNode::make(K);
      N->EventId = EventId;
      Container->Children.push_back(std::move(N));
    };

    // Loop splitting (Figure 4) or the straightforward schedule. The split
    // sets were computed by SplitPass; here we only emit the schedule.
    if (NA.DoSplit) {
      const SplitSets &SS = NA.SS;
      ++Ctx->Out->NumSplitNests;
      auto SectionStmts = [&](const Relation &Sec) {
        std::vector<cg::StmtInstance> R;
        for (const Statement &St : Nest.Stmts)
          R.push_back({St.Id, SP->Stmts[St.Id].Label, Sec});
        return R;
      };
      // Figure 4(b) schedule.
      for (EventPlan *EP : Live)
        if (!EP->IsWrite)
          AddComm(SpmdNode::Kind::Send, EP->EventId);
      AddCompute(SectionStmts(SS.NLWOIters), "/nlwo");
      AddCompute(SectionStmts(SS.LocalIters), "/local");
      for (EventPlan *EP : Live)
        if (!EP->IsWrite)
          AddComm(SpmdNode::Kind::Recv, EP->EventId);
      AddCompute(SectionStmts(SS.NLROIters.unionWith(SS.NLRWIters)),
                 "/nonlocal");
      for (EventPlan *EP : Live)
        if (EP->IsWrite)
          AddComm(SpmdNode::Kind::Send, EP->EventId);
      for (EventPlan *EP : Live)
        if (EP->IsWrite)
          AddComm(SpmdNode::Kind::Recv, EP->EventId);
      return;
    }

    // Straightforward schedule: read comm, compute, write comm.
    for (EventPlan *EP : Live)
      if (!EP->IsWrite)
        AddComm(SpmdNode::Kind::Send, EP->EventId);
    for (EventPlan *EP : Live)
      if (!EP->IsWrite)
        AddComm(SpmdNode::Kind::Recv, EP->EventId);
    std::vector<cg::StmtInstance> SIs;
    for (unsigned I = 0; I != Nest.Stmts.size(); ++I) {
      const Statement &St = Nest.Stmts[I];
      SIs.push_back({St.Id, SP->Stmts[St.Id].Label,
                     PlaceRestrict(GroupIters[Groups[I]])});
    }
    AddCompute(SIs, "");
    for (EventPlan *EP : Live)
      if (EP->IsWrite)
        AddComm(SpmdNode::Kind::Send, EP->EventId);
    for (EventPlan *EP : Live)
      if (EP->IsWrite)
        AddComm(SpmdNode::Kind::Recv, EP->EventId);
  }

  //===----------------------- phases and procedures ---------------------===//

  void compilePhase(const Phase &Ph, SpmdNode *Parent) {
    switch (Ph.K) {
    case Phase::Kind::Nest:
      compileNest(Ph.Nest, Parent);
      break;
    case Phase::Kind::Reduce: {
      auto N = SpmdNode::make(SpmdNode::Kind::Reduce);
      N->RedOp = Ph.Reduce.O == Reduction::Op::Sum
                     ? SpmdNode::ReduceOp::Sum
                     : SpmdNode::ReduceOp::Max;
      N->RedName = Ph.Reduce.Name;
      N->RedBytes = Ph.Reduce.Elems * 8 *
                    (Ph.Reduce.O == Reduction::Op::MaxLoc ? 2 : 1);
      N->RedCost = Ph.Reduce.Cost;
      Parent->Children.push_back(std::move(N));
      break;
    }
    case Phase::Kind::SeqLoop: {
      auto N = SpmdNode::make(SpmdNode::Kind::TimeLoop);
      N->SeqVar = Ph.SeqVar;
      N->SeqSlot = SP->Vars.slot(Ph.SeqVar);
      N->SeqLo = cg::Expr::constant(1);
      N->SeqHi = cg::Expr::constant(Ph.SeqCount);
      SpmdNode *Raw = N.get();
      Parent->Children.push_back(std::move(N));
      for (const Phase &Sub : Ph.Body)
        compilePhase(Sub, Raw);
      break;
    }
    }
  }
};

} // namespace

std::unique_ptr<Pass> core::createEmitPass() {
  return std::make_unique<EmitPass>();
}
