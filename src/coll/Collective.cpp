//===- coll/Collective.cpp - Reduction collectives over a Transport -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "coll/Collective.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

using namespace dhpf;
using namespace dhpf::coll;

namespace {

uint64_t bitsOf(double D) {
  uint64_t V;
  std::memcpy(&V, &D, 8);
  return V;
}

double doubleOf(uint64_t V) {
  double D;
  std::memcpy(&D, &V, 8);
  return D;
}

/// The canonical combine every engine shares: identity, then rank order.
double combineByRank(const std::vector<double> &ByRank, Op O) {
  double Acc = O == Op::Max ? -std::numeric_limits<double>::infinity() : 0.0;
  for (double V : ByRank)
    Acc = O == Op::Max ? std::max(Acc, V) : Acc + V;
  return Acc;
}

void post8(net::Transport &T, unsigned Dst, uint64_t Tag, double V,
           CollStats &St) {
  uint64_t Bits = bitsOf(V);
  net::ByteSpan S{&Bits, 8};
  T.post(Dst, Tag, &S, 1);
  ++St.Messages;
  St.Bytes += 8;
}

double recv8(net::Transport &T, unsigned Src, uint64_t Tag, CollStats &St) {
  std::vector<uint8_t> Pay = T.recv(Src, Tag);
  if (Pay.size() != 8)
    throw net::TransportError("rank " + std::to_string(T.rank()) +
                              ": malformed collective contribution from "
                              "rank " +
                              std::to_string(Src));
  ++St.Messages;
  St.Bytes += 8;
  uint64_t Bits;
  std::memcpy(&Bits, Pay.data(), 8);
  return doubleOf(Bits);
}

/// Contribution lists travel as: u32 count, then per entry u32 rank +
/// u64 value bits (little-endian memcpy, matching the frame codec).
void encodeList(const std::vector<std::pair<uint32_t, uint64_t>> &L,
                std::vector<uint8_t> &Out) {
  Out.clear();
  Out.resize(4 + L.size() * 12);
  uint32_t N = static_cast<uint32_t>(L.size());
  std::memcpy(Out.data(), &N, 4);
  uint8_t *P = Out.data() + 4;
  for (const auto &[R, Bits] : L) {
    std::memcpy(P, &R, 4);
    std::memcpy(P + 4, &Bits, 8);
    P += 12;
  }
}

std::vector<std::pair<uint32_t, uint64_t>>
decodeList(const std::vector<uint8_t> &Pay, unsigned Me, unsigned Src) {
  auto Malformed = [&]() -> net::TransportError {
    return net::TransportError("rank " + std::to_string(Me) +
                               ": malformed contribution list from rank " +
                               std::to_string(Src));
  };
  if (Pay.size() < 4)
    throw Malformed();
  uint32_t N;
  std::memcpy(&N, Pay.data(), 4);
  if (Pay.size() != 4 + static_cast<size_t>(N) * 12)
    throw Malformed();
  std::vector<std::pair<uint32_t, uint64_t>> L(N);
  const uint8_t *P = Pay.data() + 4;
  for (uint32_t I = 0; I != N; ++I, P += 12) {
    std::memcpy(&L[I].first, P, 4);
    std::memcpy(&L[I].second, P + 4, 8);
  }
  return L;
}

void postList(net::Transport &T, unsigned Dst, uint64_t Tag,
              const std::vector<std::pair<uint32_t, uint64_t>> &L,
              std::vector<uint8_t> &Scratch, CollStats &St) {
  encodeList(L, Scratch);
  net::ByteSpan S{Scratch.data(), Scratch.size()};
  T.post(Dst, Tag, &S, 1);
  ++St.Messages;
  St.Bytes += Scratch.size();
}

std::vector<std::pair<uint32_t, uint64_t>>
recvList(net::Transport &T, unsigned Src, uint64_t Tag, CollStats &St) {
  std::vector<uint8_t> Pay = T.recv(Src, Tag);
  ++St.Messages;
  St.Bytes += Pay.size();
  return decodeList(Pay, T.rank(), Src);
}

/// Turns a complete contribution list into the rank-indexed vector the
/// canonical combine consumes, validating that every rank appears once.
std::vector<double>
byRank(const std::vector<std::pair<uint32_t, uint64_t>> &Held, unsigned NP,
       unsigned Me) {
  std::vector<double> V(NP);
  std::vector<char> Seen(NP, 0);
  for (const auto &[R, Bits] : Held) {
    if (R >= NP || Seen[R])
      throw net::TransportError("rank " + std::to_string(Me) +
                                ": inconsistent collective contribution "
                                "set (rank " +
                                std::to_string(R) + ")");
    Seen[R] = 1;
    V[R] = doubleOf(Bits);
  }
  for (unsigned R = 0; R != NP; ++R)
    if (!Seen[R])
      throw net::TransportError("rank " + std::to_string(Me) +
                                ": collective missing contribution of "
                                "rank " +
                                std::to_string(R));
  return V;
}

/// Gather through rank 0, combine there, broadcast the result — the
/// historical RankEngine reduction, message for message.
class NaiveColl final : public Collective {
public:
  const char *name() const override { return "naive"; }
  double allreduce(net::Transport &T, double Own, Op O, uint64_t Tag,
                   CollStats &St) override {
    unsigned NP = T.size(), P = T.rank();
    if (NP == 1)
      return combineByRank({Own}, O);
    if (P == 0) {
      std::vector<double> ByRank(NP);
      ByRank[0] = Own;
      for (unsigned Q = 1; Q != NP; ++Q)
        ByRank[Q] = recv8(T, Q, Tag, St);
      double Combined = combineByRank(ByRank, O);
      for (unsigned Q = 1; Q != NP; ++Q)
        post8(T, Q, Tag, Combined, St);
      return Combined;
    }
    post8(T, 0, Tag, Own, St);
    return recv8(T, 0, Tag, St);
  }
};

/// Ring allgather: P-1 rounds, each rank forwarding the contribution it
/// received the previous round. Uniform load — 2(P-1) scalar frames per
/// rank — so no rank is the bottleneck the naive root is.
class RingColl final : public Collective {
public:
  const char *name() const override { return "ring"; }
  double allreduce(net::Transport &T, double Own, Op O, uint64_t Tag,
                   CollStats &St) override {
    unsigned NP = T.size(), P = T.rank();
    if (NP == 1)
      return combineByRank({Own}, O);
    unsigned Next = (P + 1) % NP, Prev = (P + NP - 1) % NP;
    std::vector<double> ByRank(NP);
    ByRank[P] = Own;
    for (unsigned K = 1; K != NP; ++K) {
      // This round moves the contribution that originated K-1 hops back.
      unsigned SendOf = (P + NP - (K - 1)) % NP;
      unsigned RecvOf = (P + NP - K) % NP;
      post8(T, Next, Tag, ByRank[SendOf], St);
      ByRank[RecvOf] = recv8(T, Prev, Tag, St);
    }
    return combineByRank(ByRank, O);
  }
};

/// Recursive doubling over the power-of-two core: lg(M) pairwise
/// exchanges of growing contribution lists; ranks past the largest power
/// of two fold into (and read back from) their core partner.
class RdblColl final : public Collective {
public:
  const char *name() const override { return "rdbl"; }
  double allreduce(net::Transport &T, double Own, Op O, uint64_t Tag,
                   CollStats &St) override {
    unsigned NP = T.size(), P = T.rank();
    if (NP == 1)
      return combineByRank({Own}, O);
    unsigned M = 1;
    while (M * 2 <= NP)
      M *= 2;
    if (P >= M) {
      post8(T, P - M, Tag, Own, St);
      return recv8(T, P - M, Tag, St);
    }
    std::vector<std::pair<uint32_t, uint64_t>> Held;
    Held.push_back({P, bitsOf(Own)});
    if (P + M < NP)
      Held.push_back({P + M, bitsOf(recv8(T, P + M, Tag, St))});
    std::vector<uint8_t> Scratch;
    for (unsigned D = 1; D < M; D *= 2) {
      unsigned Partner = P ^ D;
      postList(T, Partner, Tag, Held, Scratch, St);
      auto Got = recvList(T, Partner, Tag, St);
      Held.insert(Held.end(), Got.begin(), Got.end());
    }
    double Combined = combineByRank(byRank(Held, NP, P), O);
    if (P + M < NP)
      post8(T, P + M, Tag, Combined, St);
    return Combined;
  }
};

/// Binomial gather of contribution lists to rank 0, canonical combine
/// there, binomial broadcast of the result bits.
class TreeColl final : public Collective {
public:
  const char *name() const override { return "tree"; }
  double allreduce(net::Transport &T, double Own, Op O, uint64_t Tag,
                   CollStats &St) override {
    unsigned NP = T.size(), P = T.rank();
    if (NP == 1)
      return combineByRank({Own}, O);
    std::vector<std::pair<uint32_t, uint64_t>> Held;
    Held.push_back({P, bitsOf(Own)});
    std::vector<uint8_t> Scratch;
    for (unsigned Mask = 1; Mask < NP; Mask <<= 1) {
      if (P & Mask) {
        postList(T, P - Mask, Tag, Held, Scratch, St);
        Held.clear();
        break;
      }
      if (P + Mask < NP) {
        auto Got = recvList(T, P + Mask, Tag, St);
        Held.insert(Held.end(), Got.begin(), Got.end());
      }
    }
    double Combined = 0;
    if (P == 0)
      Combined = combineByRank(byRank(Held, NP, P), O);
    // Binomial broadcast of the result bits.
    unsigned Top = 1;
    while (Top < NP)
      Top <<= 1;
    if (P != 0) {
      unsigned Lsb = P & (~P + 1);
      Combined = recv8(T, P - Lsb, Tag, St);
      Top = Lsb;
    }
    for (unsigned D = Top >> 1; D >= 1; D >>= 1) {
      if (P + D < NP && (P & D) == 0 && D < Top)
        post8(T, P + D, Tag, Combined, St);
      if (D == 1)
        break;
    }
    return Combined;
  }
};

} // namespace

Collective::~Collective() = default;

Algo coll::parseAlgo(const std::string &Name) {
  if (Name == "naive")
    return Algo::Naive;
  if (Name == "ring")
    return Algo::Ring;
  if (Name == "rdbl")
    return Algo::Rdbl;
  if (Name == "tree")
    return Algo::Tree;
  if (Name == "auto")
    return Algo::Auto;
  throw net::TransportError("DHPF_COLL: unknown collective \"" + Name +
                            "\" (want naive|ring|rdbl|tree|auto)");
}

Algo coll::algoFromEnv() {
  const char *E = std::getenv("DHPF_COLL");
  if (!E || !*E)
    return Algo::Auto;
  return parseAlgo(E);
}

Algo coll::resolveAlgo(Algo A, unsigned NP) {
  if (A != Algo::Auto)
    return A;
  // Below 4 ranks every schedule degenerates to the same two-or-three
  // frame exchange; rdbl's lg-depth schedule wins from 4 up.
  return NP >= 4 ? Algo::Rdbl : Algo::Naive;
}

const char *coll::algoName(Algo A) {
  switch (A) {
  case Algo::Naive:
    return "naive";
  case Algo::Ring:
    return "ring";
  case Algo::Rdbl:
    return "rdbl";
  case Algo::Tree:
    return "tree";
  case Algo::Auto:
    return "auto";
  }
  return "?";
}

std::unique_ptr<Collective> coll::makeCollective(Algo A, unsigned NP) {
  switch (resolveAlgo(A, NP)) {
  case Algo::Ring:
    return std::make_unique<RingColl>();
  case Algo::Rdbl:
    return std::make_unique<RdblColl>();
  case Algo::Tree:
    return std::make_unique<TreeColl>();
  case Algo::Naive:
  case Algo::Auto:
    break;
  }
  return std::make_unique<NaiveColl>();
}

void coll::bcastBinomial(net::Transport &T, uint64_t Tag,
                         std::vector<uint8_t> &Buf, CollStats &St) {
  unsigned NP = T.size(), P = T.rank();
  if (NP == 1)
    return;
  unsigned Top = 1;
  while (Top < NP)
    Top <<= 1;
  if (P != 0) {
    unsigned Lsb = P & (~P + 1);
    Buf = T.recv(P - Lsb, Tag);
    ++St.Messages;
    St.Bytes += Buf.size();
    Top = Lsb;
  }
  for (unsigned D = Top >> 1; D >= 1; D >>= 1) {
    if (P + D < NP) {
      net::ByteSpan S{Buf.data(), Buf.size()};
      T.post(P + D, Tag, &S, 1);
      ++St.Messages;
      St.Bytes += Buf.size();
    }
    if (D == 1)
      break;
  }
}

std::vector<std::vector<uint8_t>>
coll::gatherBinomial(net::Transport &T, uint64_t Tag, const uint8_t *Own,
                     size_t Len, CollStats &St) {
  unsigned NP = T.size(), P = T.rank();
  // Accumulated (rank, payload) set, encoded u32 rank + Len bytes each.
  std::vector<uint8_t> Held;
  auto Append = [&](uint32_t R, const uint8_t *D) {
    size_t At = Held.size();
    Held.resize(At + 4 + Len);
    std::memcpy(Held.data() + At, &R, 4);
    std::memcpy(Held.data() + At + 4, D, Len);
  };
  Append(P, Own);
  for (unsigned Mask = 1; Mask < NP; Mask <<= 1) {
    if (P & Mask) {
      net::ByteSpan S{Held.data(), Held.size()};
      T.post(P - Mask, Tag, &S, 1);
      ++St.Messages;
      St.Bytes += Held.size();
      return {};
    }
    if (P + Mask < NP) {
      std::vector<uint8_t> Pay = T.recv(P + Mask, Tag);
      ++St.Messages;
      St.Bytes += Pay.size();
      if (Pay.size() % (4 + Len) != 0)
        throw net::TransportError("rank " + std::to_string(P) +
                                  ": malformed gather payload from rank " +
                                  std::to_string(P + Mask));
      Held.insert(Held.end(), Pay.begin(), Pay.end());
    }
  }
  if (P != 0)
    return {};
  std::vector<std::vector<uint8_t>> Out(NP);
  std::vector<char> Seen(NP, 0);
  for (size_t At = 0; At != Held.size(); At += 4 + Len) {
    uint32_t R;
    std::memcpy(&R, Held.data() + At, 4);
    if (R >= NP || Seen[R])
      throw net::TransportError(
          "rank 0: inconsistent gather contribution set");
    Seen[R] = 1;
    Out[R].assign(Held.begin() + At + 4, Held.begin() + At + 4 + Len);
  }
  for (unsigned R = 0; R != NP; ++R)
    if (!Seen[R])
      throw net::TransportError("rank 0: gather missing rank " +
                                std::to_string(R));
  return Out;
}
