//===- coll/Collective.h - Reduction collectives over a Transport ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collective algorithms for the distributed runtime's scalar reductions:
/// naive gather/broadcast through rank 0 (the historical RankEngine path),
/// ring allgather, recursive doubling, and a binomial tree, selected by
/// DHPF_COLL=naive|ring|rdbl|tree|auto.
///
/// Bit-identicality is the design constraint: every engine (and the paper's
/// simulated machine) combines reduction contributions *in rank order
/// 0..P-1 starting from the identity*, and floating-point combining is not
/// associative — a ring or tree that combined partial sums along its data
/// path would produce different bits per algorithm. So every algorithm
/// here moves the *raw per-rank contributions* (an allgather / gather +
/// broadcast pattern) and performs the combine locally in the canonical
/// order. The algorithms therefore differ only in their message schedule —
/// which is exactly what the CollStats counters measure:
///
///   max per-rank messages, P ranks, scalar payloads:
///     naive  2(P-1)        (rank 0 is the bottleneck)
///     ring   2(P-1)        (uniform — a bandwidth algorithm)
///     rdbl   2·ceil(lg P)  (pairwise exchange, contribution lists)
///     tree   2·ceil(lg P)  (binomial gather + binomial broadcast)
///
/// `auto` resolves to rdbl for P >= 4 and naive below (at P <= 3 the
/// schedules coincide or the naive path is strictly smaller).
///
/// The logical RunResult::Messages accounting (P messages per collective,
/// mirroring sim::Machine::allReduce) is unchanged by the algorithm choice;
/// CollStats counts the *physical* frames the chosen schedule actually
/// posts and receives.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_COLL_COLLECTIVE_H
#define DHPF_COLL_COLLECTIVE_H

#include "net/Net.h"

#include <memory>
#include <string>

namespace dhpf {
namespace coll {

enum class Algo : uint8_t { Naive, Ring, Rdbl, Tree, Auto };

/// Parses "naive"|"ring"|"rdbl"|"tree"|"auto"; throws net::TransportError
/// on anything else (a typo must not silently change the schedule).
Algo parseAlgo(const std::string &Name);

/// DHPF_COLL, defaulting to Auto when unset or empty.
Algo algoFromEnv();

/// Resolves Auto for a mesh of \p NP ranks; other values pass through.
Algo resolveAlgo(Algo A, unsigned NP);

const char *algoName(Algo A);

/// The reduction combine operators the SPMD programs use.
enum class Op : uint8_t { Sum, Max };

/// Physical schedule counters for one rank: frames this rank posted and
/// received inside collectives, and their payload bytes.
struct CollStats {
  uint64_t Messages = 0;
  uint64_t Bytes = 0;
};

/// One reduction-collective schedule. Instances are stateless between
/// calls; one per RankEngine. Every call must be made by all NP ranks with
/// the same arguments (tag discipline: the caller allocates one fresh tag
/// per collective instance, same on every rank).
class Collective {
public:
  virtual ~Collective();

  virtual const char *name() const = 0;

  /// Allreduce of one double: returns op(identity, c_0, c_1, ..., c_{P-1})
  /// combined in rank order — bit-identical across algorithms and to the
  /// in-process engines. \p Tag must be unique to this collective instance.
  virtual double allreduce(net::Transport &T, double Own, Op O,
                           uint64_t Tag, CollStats &St) = 0;
};

/// Creates the schedule for \p A (Auto resolved for \p NP ranks).
std::unique_ptr<Collective> makeCollective(Algo A, unsigned NP);

/// Binomial-tree broadcast from rank 0: on rank 0 \p Buf is the payload to
/// send; on other ranks it is replaced by the received payload. Counts the
/// frames this rank moved into \p St.
void bcastBinomial(net::Transport &T, uint64_t Tag,
                   std::vector<uint8_t> &Buf, CollStats &St);

/// Binomial-tree gather to rank 0 of one fixed-size payload per rank.
/// Returns (on rank 0) all P payloads indexed by rank, each \p Len bytes;
/// other ranks return an empty vector. \p Own must be \p Len bytes.
std::vector<std::vector<uint8_t>> gatherBinomial(net::Transport &T,
                                                 uint64_t Tag,
                                                 const uint8_t *Own,
                                                 size_t Len, CollStats &St);

} // namespace coll
} // namespace dhpf

#endif // DHPF_COLL_COLLECTIVE_H
