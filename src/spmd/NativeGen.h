//===- spmd/NativeGen.h - ExecPlan -> C kernel source emitter -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a built ExecPlan to one self-contained C translation unit — the
/// generated node code the paper's multiple-mappings codegen ultimately
/// targets. Each Compute node becomes a C function running its loop nest
/// for one processor rank; each communication event side becomes a
/// (partner, flat-element) enumeration function with the DimPlan
/// virtual-processor mapping folded to constants; each Reduce node becomes
/// a combine body with the engines' exact floating-point order; and the
/// Section 3.3 contiguous pack/unpack helpers ride along. The TU depends
/// only on <stdint.h>/<string.h>/<math.h> plus the DhpfCtx ABI of
/// KernelABI.h, so the system C compiler can build it with no include
/// paths.
///
/// Emission is deterministic: the same plan always produces the same
/// bytes, so the FNV-1a fingerprint of the source doubles as the kernel
/// cache key component (KernelCache adds compiler version and ABI
/// version).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_NATIVEGEN_H
#define DHPF_SPMD_NATIVEGEN_H

#include "spmd/Bytecode.h"

#include <cstdint>
#include <string>

namespace dhpf {
namespace spmd {

struct ExecPlan;

namespace native {

/// One emitted translation unit plus the table shape the loader expects.
struct PlanSource {
  std::string C;            ///< the full .c text
  uint64_t Fingerprint = 0; ///< FNV-1a of C (matches the baked table field)
  int32_t NumCompute = 0;
  int32_t NumEvents = 0;
  int32_t NumReduce = 0;
  unsigned MaxReads = 0; ///< widest statement read arity in the plan
};

/// Emits the complete kernel TU for \p Plan. Requires the plan's nodes to
/// carry NativeComputeId/NativeReduceId (assigned by buildExecPlan).
PlanSource emitPlanSource(const ExecPlan &Plan);

/// C expression text for one compiled bytecode program, reading variable
/// slot s as `Regs[s]`. Shared by the plan emitter and the cross-engine
/// expression tests, so both engines agree on every arithmetic corner
/// (floor/ceil division and floorMod on negative operands, pow2
/// shift/mask forms, INT64 boundaries).
std::string emitExprC(const bc::Prog &P, const std::string &Regs);

/// The static helper preamble (dhpf_fdiv/dhpf_cdiv/dhpf_fmod/min/max and
/// the load/store fast paths) every generated TU — and every test TU using
/// emitExprC — starts with. Mirrors support/MathExtras.h semantics.
std::string helperPreamble();

/// FNV-1a 64-bit over \p S (the fingerprint/cache-key hash).
uint64_t fnv1a64(const std::string &S);

} // namespace native
} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_NATIVEGEN_H
