//===- spmd/SpmdProgram.cpp - Compiled SPMD program printing -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/SpmdProgram.h"

#include <sstream>

using namespace dhpf;
using namespace dhpf::spmd;

namespace {

void printNode(const SpmdNode &N, const SpmdProgram &P, unsigned Indent,
               std::ostringstream &OS) {
  std::string Pad(Indent * 2, ' ');
  switch (N.K) {
  case SpmdNode::Kind::Seq:
    for (const auto &C : N.Children)
      printNode(*C, P, Indent, OS);
    break;
  case SpmdNode::Kind::TimeLoop:
    OS << Pad << "do " << N.SeqVar << " = " << N.SeqLo.str() << ", "
       << N.SeqHi.str() << "   ! sequential\n";
    for (const auto &C : N.Children)
      printNode(*C, P, Indent + 1, OS);
    OS << Pad << "enddo\n";
    break;
  case SpmdNode::Kind::Compute:
    OS << Pad << "! compute " << N.NestName << '\n';
    OS << cg::printAst(*N.Loops, Indent);
    break;
  case SpmdNode::Kind::Send: {
    const CommEvent &Ev = P.Events[N.EventId];
    OS << Pad << "! pack & send " << Ev.Array << " (event " << Ev.Id
       << (Ev.InPlaceProven ? ", in-place" : "") << ")\n";
    OS << cg::printAst(*Ev.SendLoops, Indent);
    break;
  }
  case SpmdNode::Kind::Recv: {
    const CommEvent &Ev = P.Events[N.EventId];
    OS << Pad << "! recv & unpack " << Ev.Array << " (event " << Ev.Id
       << (Ev.InPlaceProven ? ", in-place" : "") << ")\n";
    OS << cg::printAst(*Ev.RecvLoops, Indent);
    break;
  }
  case SpmdNode::Kind::Reduce:
    OS << Pad << "! allreduce("
       << (N.RedOp == SpmdNode::ReduceOp::Max ? "max" : "sum") << ") of "
       << N.RedName << '\n';
    break;
  }
}

} // namespace

std::string SpmdProgram::print() const {
  std::ostringstream OS;
  OS << "! SPMD node program";
  if (Source)
    OS << " for " << Source->name();
  OS << " (myid dims:";
  for (unsigned S : MySlots)
    OS << ' ' << Vars.name(S);
  OS << ")\n";
  if (Root)
    printNode(*Root, *this, 0, OS);
  return OS.str();
}
