//===- spmd/Interp.cpp - SPMD node-program interpreter -------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/Interp.h"

#include "obs/Metrics.h"
#include "spmd/ExecPlan.h"
#include "spmd/Layout.h"
#include "support/MathExtras.h"
#include "support/ThreadPool.h"

#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::hpf;

//===----------------------------------------------------------------------===//
// ArrayStore
//===----------------------------------------------------------------------===//

ArrayStore::ArrayStore(std::vector<int64_t> LoV, std::vector<int64_t> ExtentV,
                       unsigned ElemBytesV)
    : Lo(std::move(LoV)), Extent(std::move(ExtentV)), ElemBytes(ElemBytesV) {
  int64_t N = 1;
  for (int64_t E : Extent) {
    assert(E >= 0 && "negative array extent");
    N = mulOv(N, E);
  }
  Values.assign(N, 0.0);
}

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(const SpmdProgram &ProgIn, RunConfig ConfigIn)
    : Prog(ProgIn), Config(std::move(ConfigIn)),
      Mach(1, Config.Machine) /* resized below */ {
  ProgramLayout L = resolveLayout(Prog, Config);
  ProcShape = L.ProcShape;
  NumProcs = L.NumProcs;
  AllBindings = std::move(L.AllBindings);
  Mach = sim::Machine(NumProcs, Config.Machine);
  setupArrays();
  setupEnvs();
  setupInPlace();
  Overlay.resize(NumProcs);
  Pending.resize(NumProcs);
  Accums.resize(NumProcs);
  EngineKind E = resolveEngine(Config.Engine);
  if (E == EngineKind::Bytecode || E == EngineKind::Native) {
    unsigned T = Config.ExecThreads;
    if (T == 0) {
      if (const char *S = std::getenv("DHPF_SPMD_THREADS")) {
        long V = std::strtol(S, nullptr, 10);
        T = V > 0 ? static_cast<unsigned>(V) : 1;
      } else {
        T = ThreadPool::hardwareThreads();
      }
    }
    Exec = std::make_unique<PlanExecutor>(Prog, *this, T, E);
  }
}

Interpreter::~Interpreter() = default;

EngineKind Interpreter::resolveEngine(EngineKind E) {
  if (E != EngineKind::Auto)
    return E;
  const char *S = std::getenv("DHPF_SPMD_ENGINE");
  if (S && std::strcmp(S, "tree") == 0)
    return EngineKind::Tree;
  if (S && std::strcmp(S, "native") == 0)
    return EngineKind::Native;
  return EngineKind::Bytecode;
}

void Interpreter::setupInPlace() {
  EventInPlace =
      resolveEventInPlace(Prog, {ProcShape, NumProcs, AllBindings},
                          Result.InPlaceRuntimeUpgrades);
}

void Interpreter::setSemantics(int Id, StmtFn Fn) {
  Semantics[Id] = std::move(Fn);
}

void Interpreter::initArray(
    const std::string &Name,
    const std::function<double(const std::vector<int64_t> &)> &Init) {
  ArrayStore &A = Arrays.at(Name);
  std::vector<int64_t> Idx(A.rank());
  for (unsigned D = 0; D != A.rank(); ++D)
    Idx[D] = A.lo(D);
  if (A.size() == 0)
    return;
  for (;;) {
    A.at(A.flatten(Idx)) = Init(Idx);
    unsigned D = 0;
    while (D < A.rank() && ++Idx[D] >= A.lo(D) + A.extent(D)) {
      Idx[D] = A.lo(D);
      ++D;
    }
    if (D == A.rank())
      break;
  }
}

void Interpreter::setupArrays() {
  Arrays =
      buildArrayStores(Prog, Config, {ProcShape, NumProcs, AllBindings});
}

unsigned Interpreter::rankOf(const std::vector<int64_t> &Coords) const {
  return linearRank(ProcShape, Coords);
}

unsigned Interpreter::partnerRank(const std::vector<int64_t> &Partner) const {
  return vpPartnerRank(Prog, ProcShape, AllBindings, Partner);
}

bool Interpreter::isRealVP(const std::vector<int64_t> &Partner) const {
  return vpIsReal(Prog, ProcShape, AllBindings, Partner);
}

void Interpreter::setupEnvs() {
  Env.resize(NumProcs);
  ProgramLayout L{ProcShape, NumProcs, AllBindings};
  for (unsigned P = 0; P != NumProcs; ++P)
    Env[P] = initialEnv(Prog, L, P);
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Interpreter::violation(const std::string &Msg) {
  Result.Valid = false;
  if (Result.Violations.size() < 20)
    Result.Violations.push_back(Msg);
}

double Interpreter::readElem(unsigned P, ArrayStore &A,
                             const std::string &Array, int64_t Flat) {
  if (A.Owner.empty() || A.Owner[Flat] == static_cast<int32_t>(P) ||
      A.Owner[Flat] < 0)
    return A.at(Flat);
  auto &Ov = Overlay[P][Array];
  auto It = Ov.find(Flat);
  if (It != Ov.end())
    return It->second;
  auto &Pd = Pending[P][Array];
  auto It2 = Pd.find(Flat);
  if (It2 != Pd.end())
    return It2->second;
  if (Config.CheckValidity)
    violation("proc " + std::to_string(P) + " read unreceived element " +
              std::to_string(Flat) + " of " + Array);
  return A.at(Flat);
}

void Interpreter::writeElem(unsigned P, ArrayStore &A,
                            const std::string &Array, int64_t Flat,
                            double V) {
  if (A.Owner.empty() || A.Owner[Flat] == static_cast<int32_t>(P) ||
      A.Owner[Flat] < 0) {
    A.at(Flat) = V;
    return;
  }
  Pending[P][Array][Flat] = V;
}

void Interpreter::execCompute(const SpmdNode &N) {
  for (unsigned P = 0; P != NumProcs; ++P) {
    std::vector<int64_t> WIdx;
    std::vector<double> Reads;
    cg::execute(*N.Loops, Env[P],
                [&](int Leaf, const std::vector<int64_t> &E) {
                  const CompiledStmt &S = Prog.Stmts[Leaf];
                  Reads.clear();
                  for (const CompiledStmt::Read &Rd : S.Reads) {
                    ArrayStore &RA = Arrays.at(Rd.Array);
                    std::vector<int64_t> Idx;
                    for (const cg::Expr &Sub : Rd.Subs)
                      Idx.push_back(Sub.eval(E));
                    Reads.push_back(
                        readElem(P, RA, Rd.Array, RA.flatten(Idx)));
                  }
                  auto SemIt = Semantics.find(S.SemanticsId);
                  assert(SemIt != Semantics.end() &&
                         "statement without semantics");
                  double V = SemIt->second(Reads, E, Accums[P]);
                  WIdx.clear();
                  for (const cg::Expr &Sub : S.WriteSubs)
                    WIdx.push_back(Sub.eval(E));
                  ArrayStore &WA = Arrays.at(S.WriteArray);
                  writeElem(P, WA, S.WriteArray, WA.flatten(WIdx), V);
                  Mach.addCompute(P, S.Cost);
                  ++Result.StmtInstances;
                });
  }
}

void Interpreter::execSend(const SpmdNode &N) {
  const CommEvent &Ev = Prog.Events[N.EventId];
  ArrayStore &A = Arrays.at(Ev.Array);
  bool InPlace = EventInPlace[N.EventId] != 0;
  for (unsigned P = 0; P != NumProcs; ++P) {
    auto &Pd = Pending[P][Ev.Array];
    // Ordered per-partner element lists (deduplicated: union conjuncts in
    // the comm sets may overlap).
    std::vector<unsigned> PartnerOrder;
    std::map<unsigned, std::vector<std::pair<int64_t, double>>> Msgs;
    std::map<unsigned, std::set<int64_t>> Seen;
    // Per-partner: did any element come from Pending (a non-local write)?
    // Such a message can never be gathered straight from array storage.
    std::map<unsigned, bool> NonLocal;
    cg::execute(*Ev.SendLoops, Env[P],
                [&](int, const std::vector<int64_t> &E) {
                  std::vector<int64_t> PT, Idx;
                  for (unsigned S : Ev.PartnerSlots)
                    PT.push_back(E[S]);
                  for (unsigned S : Ev.ElemSlots)
                    Idx.push_back(E[S]);
                  if (!isRealVP(PT))
                    return; // fictitious virtual processor
                  unsigned Q = partnerRank(PT);
                  if (Q == P)
                    return; // VP neighbours on the same physical processor
                  int64_t Flat = A.flatten(Idx);
                  if (!Seen[Q].insert(Flat).second)
                    return;
                  if (Msgs.find(Q) == Msgs.end())
                    PartnerOrder.push_back(Q);
                  double V;
                  if (A.Owner.empty() ||
                      A.Owner[Flat] == static_cast<int32_t>(P) ||
                      A.Owner[Flat] < 0) {
                    V = A.at(Flat); // forwarding data I own (read comm)
                  } else {
                    NonLocal[Q] = true;
                    auto It = Pd.find(Flat);
                    if (It == Pd.end()) {
                      violation("proc " + std::to_string(P) +
                                " sends unwritten non-local element of " +
                                Ev.Array);
                      V = A.at(Flat);
                    } else {
                      V = It->second; // transmitting a non-local write
                    }
                  }
                  Msgs[Q].push_back({Flat, V});
                });
    for (unsigned Q : PartnerOrder) {
      auto &Items = Msgs[Q];
      // Section 3.3 message-shape classification, identical in every
      // engine: a contiguous flat span of locally-owned elements can be
      // gathered (and, distributed, posted zero-copy) from array storage.
      const std::set<int64_t> &Fl = Seen[Q];
      bool Contig = *Fl.rbegin() - *Fl.begin() + 1 ==
                    static_cast<int64_t>(Fl.size());
      if (Contig && !NonLocal[Q])
        ++Result.SpanCopies;
      else
        ++Result.PackedCopies;
      uint64_t Bytes = Items.size() * A.elemBytes();
      uint64_t PackBytes = InPlace ? 0 : Bytes;
      Mach.send(P, Q, static_cast<uint64_t>(Ev.Id), Bytes, PackBytes);
      Payloads[{P, Q, Ev.Id}].push(std::move(Items));
    }
  }
}

void Interpreter::execRecv(const SpmdNode &N) {
  const CommEvent &Ev = Prog.Events[N.EventId];
  ArrayStore &A = Arrays.at(Ev.Array);
  bool InPlace = EventInPlace[N.EventId] != 0;
  for (unsigned P = 0; P != NumProcs; ++P) {
    auto &Ov = Overlay[P][Ev.Array];
    std::vector<unsigned> PartnerOrder;
    std::map<unsigned, std::vector<int64_t>> Expect;
    std::map<unsigned, std::set<int64_t>> Seen;
    cg::execute(*Ev.RecvLoops, Env[P],
                [&](int, const std::vector<int64_t> &E) {
                  std::vector<int64_t> PT, Idx;
                  for (unsigned S : Ev.PartnerSlots)
                    PT.push_back(E[S]);
                  for (unsigned S : Ev.ElemSlots)
                    Idx.push_back(E[S]);
                  if (!isRealVP(PT))
                    return; // fictitious virtual processor
                  unsigned Q = partnerRank(PT);
                  if (Q == P)
                    return;
                  int64_t Flat = A.flatten(Idx);
                  if (!Seen[Q].insert(Flat).second)
                    return;
                  if (Expect.find(Q) == Expect.end())
                    PartnerOrder.push_back(Q);
                  Expect[Q].push_back(Flat);
                });
    for (unsigned Q : PartnerOrder) {
      auto &Flats = Expect[Q];
      auto PIt = Payloads.find({Q, P, Ev.Id});
      if (PIt == Payloads.end() || PIt->second.empty()) {
        violation("proc " + std::to_string(P) + " expects a message from " +
                  std::to_string(Q) + " for event " + std::to_string(Ev.Id) +
                  " that was never sent");
        continue;
      }
      std::vector<std::pair<int64_t, double>> Items =
          std::move(PIt->second.front());
      PIt->second.pop();
      if (PIt->second.empty())
        Payloads.erase(PIt);
      Mach.recv(Q, P, static_cast<uint64_t>(Ev.Id),
                InPlace ? 0 : Items.size() * A.elemBytes());
      std::unordered_map<int64_t, double> Got(Items.begin(), Items.end());
      if (Got.size() != Flats.size())
        violation("message size mismatch for event " + std::to_string(Ev.Id) +
                  " (" + std::to_string(Got.size()) + " sent vs " +
                  std::to_string(Flats.size()) + " expected)");
      for (int64_t F : Flats) {
        auto It = Got.find(F);
        if (It == Got.end()) {
          violation("expected element missing from message (event " +
                    std::to_string(Ev.Id) + ")");
          continue;
        }
        if (!A.Owner.empty() && A.Owner[F] == static_cast<int32_t>(P))
          A.at(F) = It->second; // a remote write reaching its owner
        else
          Ov[F] = It->second;
      }
    }
  }
}

void Interpreter::execReduce(const SpmdNode &N) {
  double Combined = N.RedOp == SpmdNode::ReduceOp::Max
                        ? -std::numeric_limits<double>::infinity()
                        : 0.0;
  std::vector<double *> Slot(NumProcs);
  for (unsigned P = 0; P != NumProcs; ++P) {
    double &V = Accums[P][N.RedName];
    Slot[P] = &V;
    Combined = N.RedOp == SpmdNode::ReduceOp::Max ? std::max(Combined, V)
                                                  : Combined + V;
  }
  for (unsigned P = 0; P != NumProcs; ++P)
    *Slot[P] = Combined;
  Mach.allReduce(N.RedBytes);
  Mach.addCompute(0, N.RedCost);
  Result.FinalAccums[N.RedName] = Combined;
}

void Interpreter::execNode(const SpmdNode &N) {
  ++Dispatch[static_cast<size_t>(N.K)];
  switch (N.K) {
  case SpmdNode::Kind::Seq:
    for (const auto &C : N.Children)
      execNode(*C);
    break;
  case SpmdNode::Kind::TimeLoop: {
    int64_t Lo = N.SeqLo.eval(Env[0]), Hi = N.SeqHi.eval(Env[0]);
    for (int64_t V = Lo; V <= Hi; ++V) {
      for (unsigned P = 0; P != NumProcs; ++P)
        Env[P][N.SeqSlot] = V;
      for (const auto &C : N.Children)
        execNode(*C);
    }
    break;
  }
  case SpmdNode::Kind::Compute:
    execCompute(N);
    break;
  case SpmdNode::Kind::Send:
    execSend(N);
    break;
  case SpmdNode::Kind::Recv:
    execRecv(N);
    break;
  case SpmdNode::Kind::Reduce:
    execReduce(N);
    break;
  }
}

RunResult Interpreter::run() {
  if (Exec)
    return Exec->run();
  execNode(*Prog.Root);
  if (!Payloads.empty())
    violation("unconsumed messages remain (send/recv sets are not dual)");
  Result.ElapsedSeconds = Mach.elapsed();
  Result.Messages = Mach.totalMessages();
  Result.Bytes = Mach.totalBytes();
  if (obs::compiledIn()) {
    // Flushed once per run — the dispatch loop itself stays probe-free.
    static const char *KindNames[6] = {"seq",  "time_loop", "compute",
                                       "send", "recv",      "reduce"};
    obs::MetricsRegistry &R = obs::MetricsRegistry::global();
    for (size_t K = 0; K != 6; ++K)
      if (Dispatch[K])
        R.counter(std::string("spmd.tree.dispatch.") + KindNames[K])
            ->inc(Dispatch[K]);
  }
  return Result;
}

const ArrayStore &Interpreter::array(const std::string &Name) const {
  return Arrays.at(Name);
}
