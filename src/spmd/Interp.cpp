//===- spmd/Interp.cpp - SPMD node-program interpreter -------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/Interp.h"

#include "spmd/ExecPlan.h"
#include "support/MathExtras.h"
#include "support/ThreadPool.h"

#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::hpf;

//===----------------------------------------------------------------------===//
// ArrayStore
//===----------------------------------------------------------------------===//

ArrayStore::ArrayStore(std::vector<int64_t> LoV, std::vector<int64_t> ExtentV,
                       unsigned ElemBytesV)
    : Lo(std::move(LoV)), Extent(std::move(ExtentV)), ElemBytes(ElemBytesV) {
  int64_t N = 1;
  for (int64_t E : Extent) {
    assert(E >= 0 && "negative array extent");
    N = mulOv(N, E);
  }
  Values.assign(N, 0.0);
}

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

namespace {

int64_t evalAffine(const AffineExpr &E,
                   const std::map<std::string, int64_t> &Bind) {
  int64_t V = E.K;
  for (auto &[Name, Coef] : E.Terms) {
    auto It = Bind.find(Name);
    assert(It != Bind.end() && "unbound parameter in affine expression");
    V = addOv(V, mulOv(Coef, It->second));
  }
  return V;
}

} // namespace

Interpreter::Interpreter(const SpmdProgram &ProgIn, RunConfig ConfigIn)
    : Prog(ProgIn), Config(std::move(ConfigIn)),
      Mach(1, Config.Machine) /* resized below */ {
  assert(Prog.Source && "compiled program lost its source");
  // Processor shape.
  if (!Prog.ProcName.empty()) {
    const ProcArray &PA = Prog.Source->procArray(Prog.ProcName);
    auto It = Config.ProcExtents.find(Prog.ProcName);
    for (unsigned D = 0; D != PA.rank(); ++D) {
      if (PA.Dims[D].isSymbolic()) {
        assert(It != Config.ProcExtents.end() &&
               "symbolic processor array needs extents at run time");
        ProcShape.push_back(It->second[D]);
      } else {
        ProcShape.push_back(PA.Dims[D].Fixed);
        if (It != Config.ProcExtents.end())
          assert(It->second[D] == PA.Dims[D].Fixed &&
                 "fixed extent overridden inconsistently");
      }
    }
  }
  NumProcs = 1;
  for (int64_t E : ProcShape)
    NumProcs *= E;
  Mach = sim::Machine(NumProcs, Config.Machine);
  AllBindings = MapBuilder(*Prog.Source)
                    .layoutBindings(Config.Params, Config.ProcExtents);
  setupArrays();
  setupEnvs();
  setupInPlace();
  Overlay.resize(NumProcs);
  Pending.resize(NumProcs);
  Accums.resize(NumProcs);
  if (resolveEngine(Config.Engine) == EngineKind::Bytecode) {
    unsigned T = Config.ExecThreads;
    if (T == 0) {
      if (const char *S = std::getenv("DHPF_SPMD_THREADS")) {
        long V = std::strtol(S, nullptr, 10);
        T = V > 0 ? static_cast<unsigned>(V) : 1;
      } else {
        T = ThreadPool::hardwareThreads();
      }
    }
    Exec = std::make_unique<PlanExecutor>(Prog, *this, T);
  }
}

Interpreter::~Interpreter() = default;

EngineKind Interpreter::resolveEngine(EngineKind E) {
  if (E != EngineKind::Auto)
    return E;
  const char *S = std::getenv("DHPF_SPMD_ENGINE");
  if (S && std::strcmp(S, "tree") == 0)
    return EngineKind::Tree;
  return EngineKind::Bytecode;
}

void Interpreter::setupInPlace() {
  EventInPlace.assign(Prog.Events.size(), 0);
  for (unsigned EI = 0; EI != Prog.Events.size(); ++EI) {
    const CommEvent &Ev = Prog.Events[EI];
    bool InPlace = Ev.InPlaceProven;
    // The synthesized Section 3.3 runtime check: an undecided compile-time
    // verdict may become contiguous under this run's concrete bindings.
    // Both engines consult the same flags, so simulated pack costs agree.
    if (!InPlace && Prog.InPlaceRuntimeCheck &&
        Ev.InPlace.Verdict == core::InPlaceVerdict::RuntimeCheck &&
        Prog.InPlaceRuntimeCheck(Ev.InPlace, AllBindings)) {
      InPlace = true;
      ++Result.InPlaceRuntimeUpgrades;
    }
    EventInPlace[EI] = InPlace ? 1 : 0;
  }
}

void Interpreter::setSemantics(int Id, StmtFn Fn) {
  Semantics[Id] = std::move(Fn);
}

void Interpreter::initArray(
    const std::string &Name,
    const std::function<double(const std::vector<int64_t> &)> &Init) {
  ArrayStore &A = Arrays.at(Name);
  std::vector<int64_t> Idx(A.rank());
  for (unsigned D = 0; D != A.rank(); ++D)
    Idx[D] = A.lo(D);
  if (A.size() == 0)
    return;
  for (;;) {
    A.at(A.flatten(Idx)) = Init(Idx);
    unsigned D = 0;
    while (D < A.rank() && ++Idx[D] >= A.lo(D) + A.extent(D)) {
      Idx[D] = A.lo(D);
      ++D;
    }
    if (D == A.rank())
      break;
  }
}

void Interpreter::setupArrays() {
  const Program &P = *Prog.Source;
  const std::map<std::string, int64_t> &All = AllBindings;

  for (const auto &[Name, Decl] : P.arrays()) {
    std::vector<int64_t> Lo, Extent;
    for (const DimRange &R : Decl.Dims) {
      int64_t L = evalAffine(R.Lo, All), H = evalAffine(R.Hi, All);
      Lo.push_back(L);
      Extent.push_back(H - L + 1);
    }
    ArrayStore Store(Lo, Extent, Decl.ElemBytes);

    // Ownership, computed independently of the set framework (direct
    // block/cyclic formulas) so it cross-checks the compiled sets.
    const Align *Al = P.alignOf(Name);
    if (Al) {
      const TemplateDecl &T = P.templateDecl(Al->TemplateName);
      const Distribute &D = P.distributeOf(Al->TemplateName);
      auto ExtIt = Config.ProcExtents.find(D.ProcName);
      const ProcArray &PA = P.procArray(D.ProcName);
      std::vector<int64_t> PExt;
      for (unsigned I = 0; I != PA.rank(); ++I)
        PExt.push_back(PA.Dims[I].isSymbolic() ? ExtIt->second[I]
                                               : PA.Dims[I].Fixed);
      Store.Owner.assign(Store.size(), -1);
      std::vector<int64_t> Idx(Decl.rank());
      for (unsigned DD = 0; DD != Decl.rank(); ++DD)
        Idx[DD] = Lo[DD];
      for (;;) {
        // Owner coordinates along each distributed template dimension.
        int64_t Rank = 0, Mult = 1;
        unsigned PDim = 0;
        bool Known = true;
        for (unsigned TD = 0; TD != T.rank(); ++TD) {
          const DistSpec &Spec = D.Specs[TD];
          if (Spec.K == DistSpec::Kind::Star)
            continue;
          const AlignTerm &AT = Al->Terms[TD];
          assert(AT.K != AlignTerm::Kind::Replicated &&
                 "replicated alignment on a distributed dimension");
          int64_t Tpos = AT.K == AlignTerm::Kind::Constant
                             ? AT.Constant
                             : AT.Stride * Idx[AT.ArrayDim] + AT.Offset;
          int64_t TLo = evalAffine(T.Dims[TD].Lo, All);
          int64_t THi = evalAffine(T.Dims[TD].Hi, All);
          int64_t PN = PExt[PDim];
          int64_t Coord = 0;
          switch (Spec.K) {
          case DistSpec::Kind::Block: {
            int64_t B = ceilDiv(THi - TLo + 1, PN);
            Coord = (Tpos - TLo) / B;
            break;
          }
          case DistSpec::Kind::Cyclic:
            Coord = floorMod(Tpos - TLo, PN);
            break;
          case DistSpec::Kind::CyclicK:
            Coord = floorMod((Tpos - TLo) / Spec.BlockK, PN);
            break;
          case DistSpec::Kind::Star:
            break;
          }
          Rank += Coord * Mult;
          Mult *= PN;
          ++PDim;
        }
        if (Known)
          Store.Owner[Store.flatten(Idx)] = static_cast<int32_t>(Rank);
        unsigned DD = 0;
        while (DD < Decl.rank() && ++Idx[DD] >= Lo[DD] + Extent[DD]) {
          Idx[DD] = Lo[DD];
          ++DD;
        }
        if (DD == Decl.rank())
          break;
      }
    }
    Arrays.emplace(Name, std::move(Store));
  }
}

unsigned Interpreter::rankOf(const std::vector<int64_t> &Coords) const {
  int64_t R = 0, M = 1;
  for (unsigned D = 0; D != Coords.size(); ++D) {
    assert(Coords[D] >= 0 && Coords[D] < ProcShape[D]);
    R += Coords[D] * M;
    M *= ProcShape[D];
  }
  return static_cast<unsigned>(R);
}

unsigned Interpreter::partnerRank(const std::vector<int64_t> &Partner) const {
  std::vector<int64_t> Coords(Partner.size());
  const std::map<std::string, int64_t> &All = AllBindings;
  for (unsigned D = 0; D != Partner.size(); ++D) {
    const VPDimInfo &Info = Prog.ProcDims[D];
    if (!Info.Virtualized) {
      Coords[D] = Partner[D];
      continue;
    }
    switch (Info.Kind) {
    case DistSpec::Kind::Block: {
      int64_t B = All.at(Info.BlockParam);
      Coords[D] = (Partner[D] - Info.TmplLo) / B;
      break;
    }
    case DistSpec::Kind::Cyclic:
      Coords[D] = floorMod(Partner[D] - Info.TmplLo, ProcShape[D]);
      break;
    case DistSpec::Kind::CyclicK:
      Coords[D] =
          floorMod((Partner[D] - Info.TmplLo) / Info.CyclicK, ProcShape[D]);
      break;
    case DistSpec::Kind::Star:
      break;
    }
  }
  return rankOf(Coords);
}

bool Interpreter::isRealVP(const std::vector<int64_t> &Partner) const {
  for (unsigned D = 0; D != Partner.size(); ++D) {
    const VPDimInfo &Info = Prog.ProcDims[D];
    if (!Info.Virtualized)
      continue;
    int64_t Off = Partner[D] - Info.TmplLo;
    switch (Info.Kind) {
    case DistSpec::Kind::Block: {
      int64_t B = AllBindings.at(Info.BlockParam);
      if (floorMod(Off, B) != 0 || Off / B >= ProcShape[D])
        return false; // fictitious: not a block start, or past the array
      break;
    }
    case DistSpec::Kind::Cyclic:
      break; // every template cell is a real VP
    case DistSpec::Kind::CyclicK:
      if (floorMod(Off, Info.CyclicK) != 0)
        return false; // not a block start
      break;
    case DistSpec::Kind::Star:
      break;
    }
  }
  return true;
}

void Interpreter::setupEnvs() {
  const std::map<std::string, int64_t> &All = AllBindings;
  Env.assign(NumProcs, std::vector<int64_t>(Prog.Vars.size(), 0));
  for (unsigned P = 0; P != NumProcs; ++P) {
    // Parameters by name.
    for (unsigned S = 0; S != Prog.Vars.size(); ++S) {
      auto It = All.find(Prog.Vars.name(S));
      if (It != All.end())
        Env[P][S] = It->second;
    }
    // Representative-processor slots (mv*).
    std::vector<int64_t> Coords(ProcShape.size());
    unsigned R = P;
    for (unsigned D = 0; D != ProcShape.size(); ++D) {
      Coords[D] = R % ProcShape[D];
      R /= ProcShape[D];
    }
    for (unsigned D = 0; D != Prog.MySlots.size(); ++D) {
      const VPDimInfo &Info = Prog.ProcDims[D];
      int64_t V = Coords[D];
      if (Info.Virtualized) {
        switch (Info.Kind) {
        case DistSpec::Kind::Block:
          V = All.at(Info.BlockParam) * Coords[D] + Info.TmplLo;
          break;
        case DistSpec::Kind::Cyclic:
          V = Info.TmplLo + Coords[D]; // initial VP; VP loops re-bind
          break;
        case DistSpec::Kind::CyclicK:
          V = Info.TmplLo + Info.CyclicK * Coords[D];
          break;
        case DistSpec::Kind::Star:
          break;
        }
      }
      Env[P][Prog.MySlots[D]] = V;
    }
    for (unsigned D = 0; D != Prog.CoordSlots.size(); ++D)
      Env[P][Prog.CoordSlots[D]] = Coords[D];
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Interpreter::violation(const std::string &Msg) {
  Result.Valid = false;
  if (Result.Violations.size() < 20)
    Result.Violations.push_back(Msg);
}

double Interpreter::readElem(unsigned P, ArrayStore &A,
                             const std::string &Array, int64_t Flat) {
  if (A.Owner.empty() || A.Owner[Flat] == static_cast<int32_t>(P) ||
      A.Owner[Flat] < 0)
    return A.at(Flat);
  auto &Ov = Overlay[P][Array];
  auto It = Ov.find(Flat);
  if (It != Ov.end())
    return It->second;
  auto &Pd = Pending[P][Array];
  auto It2 = Pd.find(Flat);
  if (It2 != Pd.end())
    return It2->second;
  if (Config.CheckValidity)
    violation("proc " + std::to_string(P) + " read unreceived element " +
              std::to_string(Flat) + " of " + Array);
  return A.at(Flat);
}

void Interpreter::writeElem(unsigned P, ArrayStore &A,
                            const std::string &Array, int64_t Flat,
                            double V) {
  if (A.Owner.empty() || A.Owner[Flat] == static_cast<int32_t>(P) ||
      A.Owner[Flat] < 0) {
    A.at(Flat) = V;
    return;
  }
  Pending[P][Array][Flat] = V;
}

void Interpreter::execCompute(const SpmdNode &N) {
  for (unsigned P = 0; P != NumProcs; ++P) {
    std::vector<int64_t> WIdx;
    std::vector<double> Reads;
    cg::execute(*N.Loops, Env[P],
                [&](int Leaf, const std::vector<int64_t> &E) {
                  const CompiledStmt &S = Prog.Stmts[Leaf];
                  Reads.clear();
                  for (const CompiledStmt::Read &Rd : S.Reads) {
                    ArrayStore &RA = Arrays.at(Rd.Array);
                    std::vector<int64_t> Idx;
                    for (const cg::Expr &Sub : Rd.Subs)
                      Idx.push_back(Sub.eval(E));
                    Reads.push_back(
                        readElem(P, RA, Rd.Array, RA.flatten(Idx)));
                  }
                  auto SemIt = Semantics.find(S.SemanticsId);
                  assert(SemIt != Semantics.end() &&
                         "statement without semantics");
                  double V = SemIt->second(Reads, E, Accums[P]);
                  WIdx.clear();
                  for (const cg::Expr &Sub : S.WriteSubs)
                    WIdx.push_back(Sub.eval(E));
                  ArrayStore &WA = Arrays.at(S.WriteArray);
                  writeElem(P, WA, S.WriteArray, WA.flatten(WIdx), V);
                  Mach.addCompute(P, S.Cost);
                  ++Result.StmtInstances;
                });
  }
}

void Interpreter::execSend(const SpmdNode &N) {
  const CommEvent &Ev = Prog.Events[N.EventId];
  ArrayStore &A = Arrays.at(Ev.Array);
  bool InPlace = EventInPlace[N.EventId] != 0;
  for (unsigned P = 0; P != NumProcs; ++P) {
    auto &Pd = Pending[P][Ev.Array];
    // Ordered per-partner element lists (deduplicated: union conjuncts in
    // the comm sets may overlap).
    std::vector<unsigned> PartnerOrder;
    std::map<unsigned, std::vector<std::pair<int64_t, double>>> Msgs;
    std::map<unsigned, std::set<int64_t>> Seen;
    cg::execute(*Ev.SendLoops, Env[P],
                [&](int, const std::vector<int64_t> &E) {
                  std::vector<int64_t> PT, Idx;
                  for (unsigned S : Ev.PartnerSlots)
                    PT.push_back(E[S]);
                  for (unsigned S : Ev.ElemSlots)
                    Idx.push_back(E[S]);
                  if (!isRealVP(PT))
                    return; // fictitious virtual processor
                  unsigned Q = partnerRank(PT);
                  if (Q == P)
                    return; // VP neighbours on the same physical processor
                  int64_t Flat = A.flatten(Idx);
                  if (!Seen[Q].insert(Flat).second)
                    return;
                  if (Msgs.find(Q) == Msgs.end())
                    PartnerOrder.push_back(Q);
                  double V;
                  if (A.Owner.empty() ||
                      A.Owner[Flat] == static_cast<int32_t>(P) ||
                      A.Owner[Flat] < 0) {
                    V = A.at(Flat); // forwarding data I own (read comm)
                  } else {
                    auto It = Pd.find(Flat);
                    if (It == Pd.end()) {
                      violation("proc " + std::to_string(P) +
                                " sends unwritten non-local element of " +
                                Ev.Array);
                      V = A.at(Flat);
                    } else {
                      V = It->second; // transmitting a non-local write
                    }
                  }
                  Msgs[Q].push_back({Flat, V});
                });
    for (unsigned Q : PartnerOrder) {
      auto &Items = Msgs[Q];
      uint64_t Bytes = Items.size() * A.elemBytes();
      uint64_t PackBytes = InPlace ? 0 : Bytes;
      Mach.send(P, Q, static_cast<uint64_t>(Ev.Id), Bytes, PackBytes);
      Payloads[{P, Q, Ev.Id}].push(std::move(Items));
    }
  }
}

void Interpreter::execRecv(const SpmdNode &N) {
  const CommEvent &Ev = Prog.Events[N.EventId];
  ArrayStore &A = Arrays.at(Ev.Array);
  bool InPlace = EventInPlace[N.EventId] != 0;
  for (unsigned P = 0; P != NumProcs; ++P) {
    auto &Ov = Overlay[P][Ev.Array];
    std::vector<unsigned> PartnerOrder;
    std::map<unsigned, std::vector<int64_t>> Expect;
    std::map<unsigned, std::set<int64_t>> Seen;
    cg::execute(*Ev.RecvLoops, Env[P],
                [&](int, const std::vector<int64_t> &E) {
                  std::vector<int64_t> PT, Idx;
                  for (unsigned S : Ev.PartnerSlots)
                    PT.push_back(E[S]);
                  for (unsigned S : Ev.ElemSlots)
                    Idx.push_back(E[S]);
                  if (!isRealVP(PT))
                    return; // fictitious virtual processor
                  unsigned Q = partnerRank(PT);
                  if (Q == P)
                    return;
                  int64_t Flat = A.flatten(Idx);
                  if (!Seen[Q].insert(Flat).second)
                    return;
                  if (Expect.find(Q) == Expect.end())
                    PartnerOrder.push_back(Q);
                  Expect[Q].push_back(Flat);
                });
    for (unsigned Q : PartnerOrder) {
      auto &Flats = Expect[Q];
      auto PIt = Payloads.find({Q, P, Ev.Id});
      if (PIt == Payloads.end() || PIt->second.empty()) {
        violation("proc " + std::to_string(P) + " expects a message from " +
                  std::to_string(Q) + " for event " + std::to_string(Ev.Id) +
                  " that was never sent");
        continue;
      }
      std::vector<std::pair<int64_t, double>> Items =
          std::move(PIt->second.front());
      PIt->second.pop();
      if (PIt->second.empty())
        Payloads.erase(PIt);
      Mach.recv(Q, P, static_cast<uint64_t>(Ev.Id),
                InPlace ? 0 : Items.size() * A.elemBytes());
      std::unordered_map<int64_t, double> Got(Items.begin(), Items.end());
      if (Got.size() != Flats.size())
        violation("message size mismatch for event " + std::to_string(Ev.Id) +
                  " (" + std::to_string(Got.size()) + " sent vs " +
                  std::to_string(Flats.size()) + " expected)");
      for (int64_t F : Flats) {
        auto It = Got.find(F);
        if (It == Got.end()) {
          violation("expected element missing from message (event " +
                    std::to_string(Ev.Id) + ")");
          continue;
        }
        if (!A.Owner.empty() && A.Owner[F] == static_cast<int32_t>(P))
          A.at(F) = It->second; // a remote write reaching its owner
        else
          Ov[F] = It->second;
      }
    }
  }
}

void Interpreter::execReduce(const SpmdNode &N) {
  double Combined = N.RedOp == SpmdNode::ReduceOp::Max
                        ? -std::numeric_limits<double>::infinity()
                        : 0.0;
  std::vector<double *> Slot(NumProcs);
  for (unsigned P = 0; P != NumProcs; ++P) {
    double &V = Accums[P][N.RedName];
    Slot[P] = &V;
    Combined = N.RedOp == SpmdNode::ReduceOp::Max ? std::max(Combined, V)
                                                  : Combined + V;
  }
  for (unsigned P = 0; P != NumProcs; ++P)
    *Slot[P] = Combined;
  Mach.allReduce(N.RedBytes);
  Mach.addCompute(0, N.RedCost);
  Result.FinalAccums[N.RedName] = Combined;
}

void Interpreter::execNode(const SpmdNode &N) {
  switch (N.K) {
  case SpmdNode::Kind::Seq:
    for (const auto &C : N.Children)
      execNode(*C);
    break;
  case SpmdNode::Kind::TimeLoop: {
    int64_t Lo = N.SeqLo.eval(Env[0]), Hi = N.SeqHi.eval(Env[0]);
    for (int64_t V = Lo; V <= Hi; ++V) {
      for (unsigned P = 0; P != NumProcs; ++P)
        Env[P][N.SeqSlot] = V;
      for (const auto &C : N.Children)
        execNode(*C);
    }
    break;
  }
  case SpmdNode::Kind::Compute:
    execCompute(N);
    break;
  case SpmdNode::Kind::Send:
    execSend(N);
    break;
  case SpmdNode::Kind::Recv:
    execRecv(N);
    break;
  case SpmdNode::Kind::Reduce:
    execReduce(N);
    break;
  }
}

RunResult Interpreter::run() {
  if (Exec)
    return Exec->run();
  execNode(*Prog.Root);
  if (!Payloads.empty())
    violation("unconsumed messages remain (send/recv sets are not dual)");
  Result.ElapsedSeconds = Mach.elapsed();
  Result.Messages = Mach.totalMessages();
  Result.Bytes = Mach.totalBytes();
  return Result;
}

const ArrayStore &Interpreter::array(const std::string &Name) const {
  return Arrays.at(Name);
}
