//===- spmd/Layout.h - Rank-independent run setup -------------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The setup every executor of a compiled SPMD program performs before the
/// first statement runs: resolving the processor shape and the full binding
/// environment, building dense array stores with per-element ownership,
/// seeding per-processor variable environments, mapping virtual-processor
/// partner tuples to physical ranks, and deciding the effective per-event
/// in-place flags (compile verdicts plus Section 3.3 runtime upgrades).
///
/// These were private to the in-process Interpreter; the distributed rank
/// runtime (src/rt) executes a single rank in its own OS process and must
/// reach bit-identical decisions, so the logic lives here and both callers
/// share it.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_LAYOUT_H
#define DHPF_SPMD_LAYOUT_H

#include "spmd/Interp.h"
#include "spmd/SpmdProgram.h"

#include <map>
#include <string>
#include <vector>

namespace dhpf {
namespace spmd {

/// Everything about a run that is independent of which rank executes.
struct ProgramLayout {
  std::vector<int64_t> ProcShape; ///< extents of the processor array
  unsigned NumProcs = 1;
  /// Program parameters plus processor extents and block sizes, bound once.
  std::map<std::string, int64_t> AllBindings;
};

/// Resolves the processor shape and full binding environment from a run
/// configuration. Symbolic processor extents must be supplied in
/// Config.ProcExtents.
ProgramLayout resolveLayout(const SpmdProgram &Prog, const RunConfig &Config);

/// Builds every array's dense store, including the per-element Owner map
/// computed from the direct block/cyclic formulas (independent of the set
/// framework, so it cross-checks the compiled sets).
std::map<std::string, ArrayStore>
buildArrayStores(const SpmdProgram &Prog, const RunConfig &Config,
                 const ProgramLayout &L);

/// The initial variable environment of processor \p P: parameters, the
/// representative-processor slots (mv*), and the physical coordinates
/// (mc*).
std::vector<int64_t> initialEnv(const SpmdProgram &Prog,
                                const ProgramLayout &L, unsigned P);

/// Maps physical processor coordinates to a linear rank.
unsigned linearRank(const std::vector<int64_t> &ProcShape,
                    const std::vector<int64_t> &Coords);

/// Maps a partner tuple from a comm loop (physical or VP indices per
/// dimension) to a physical rank. Hot path: takes the shape and bindings
/// directly so callers need not materialize a ProgramLayout.
unsigned vpPartnerRank(const SpmdProgram &Prog,
                       const std::vector<int64_t> &ProcShape,
                       const std::map<std::string, int64_t> &AllBindings,
                       const std::vector<int64_t> &Partner);

/// The runtime check the paper attaches to VP communication code:
/// fictitious virtual processors (block-VP indices that are not block
/// starts, or VPs beyond the physical array) get no messages.
bool vpIsReal(const SpmdProgram &Prog, const std::vector<int64_t> &ProcShape,
              const std::map<std::string, int64_t> &AllBindings,
              const std::vector<int64_t> &Partner);

/// Effective per-event in-place flags: the compile-time verdict plus any
/// Section 3.3 runtime upgrades under this run's bindings. \p Upgrades is
/// incremented once per upgraded event.
std::vector<char> resolveEventInPlace(const SpmdProgram &Prog,
                                      const ProgramLayout &L,
                                      unsigned &Upgrades);

} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_LAYOUT_H
