//===- spmd/SpmdProgram.h - Compiled SPMD node program --------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of the compiler: a single-program-multiple-data node program.
/// Every processor executes the same tree of items; partitioned loop nests
/// (generated from CPMap by the set-based code generation), explicit
/// pack/send and recv/unpack events (generated from SendCommMap and
/// RecvCommMap), global reductions, and sequential time-step loops. The
/// interpreter in Interp.h runs the tree against real array storage on the
/// simulated machine, verifying that every non-local access was actually
/// communicated.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_SPMDPROGRAM_H
#define DHPF_SPMD_SPMDPROGRAM_H

#include "cg/Ast.h"
#include "cg/Expr.h"
#include "core/InPlace.h"
#include "hpf/Maps.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dhpf {
namespace spmd {

/// One compiled statement: subscripts resolved to expressions over the
/// shared variable table. LeafId in compute ASTs indexes these.
struct CompiledStmt {
  int Id = -1;
  std::string WriteArray;
  std::vector<cg::Expr> WriteSubs;
  struct Read {
    std::string Array;
    std::vector<cg::Expr> Subs;
  };
  std::vector<Read> Reads;
  double Cost = 1.0;
  int SemanticsId = -1;
  std::string Label;
};

/// One compiled logical communication event. The loop ASTs enumerate
/// (partner tuple, element tuple) pairs: the leaf environment holds the
/// partner coordinates in PartnerSlots and the element subscripts in
/// ElemSlots.
struct CommEvent {
  int Id = -1;
  std::string Array;
  cg::AstPtr SendLoops; // what I own that each partner needs
  cg::AstPtr RecvLoops; // what each partner owns that I need
  std::vector<unsigned> PartnerSlots;
  std::vector<unsigned> ElemSlots;
  /// Compile-time in-place analysis of the (per-partner) message section.
  core::InPlaceResult InPlace;
  bool InPlaceProven = false;
};

/// A node of the compiled program tree.
struct SpmdNode {
  enum class Kind : uint8_t { Seq, TimeLoop, Compute, Send, Recv, Reduce };
  Kind K = Kind::Seq;

  // TimeLoop: a sequential loop every processor executes identically (a
  // time-step loop, or the placement loop of partially vectorized
  // communication, whose variable is the J* parameter).
  std::string SeqVar;
  unsigned SeqSlot = 0;
  cg::Expr SeqLo, SeqHi;

  // Compute: a generated loop nest whose leaves are CompiledStmt ids.
  cg::AstPtr Loops;
  std::string NestName;

  // Send/Recv: index into SpmdProgram::Events.
  int EventId = -1;

  // Reduce
  enum class ReduceOp : uint8_t { Sum, Max } RedOp = ReduceOp::Sum;
  std::string RedName; ///< accumulator name combined across processors
  uint64_t RedBytes = 8;
  double RedCost = 1.0;

  std::vector<std::unique_ptr<SpmdNode>> Children;

  static std::unique_ptr<SpmdNode> make(Kind K) {
    auto N = std::make_unique<SpmdNode>();
    N->K = K;
    return N;
  }
};

/// The complete compiled program.
struct SpmdProgram {
  const hpf::Program *Source = nullptr;
  /// Set when the program owns its source (a program reconstructed by
  /// parseSpmdProgram); Source points at it. Compiler output leaves this
  /// null and borrows the caller's program.
  std::shared_ptr<const hpf::Program> OwnedSource;
  std::string ProcName; ///< the (single) processor array
  std::vector<hpf::VPDimInfo> ProcDims;
  cg::VarTable Vars;
  std::vector<CompiledStmt> Stmts;   // indexed by leaf id
  std::vector<CommEvent> Events;     // indexed by EventId
  std::unique_ptr<SpmdNode> Root;
  /// mv* variable slot per processor dimension (bound per processor or by
  /// enclosing VP loops).
  std::vector<unsigned> MySlots;
  /// mc* slots: the physical coordinate of the executing processor per
  /// dimension (used by VP loop bounds, Figure 6).
  std::vector<unsigned> CoordSlots;

  /// The Section 3.3 runtime contiguity check, injected by the compiler
  /// driver (this library cannot link the analysis code directly). Given an
  /// event's retained in-place analysis and the run's concrete bindings,
  /// returns true when the transfer is contiguous; null when the producer
  /// supplies no check, in which case undecided verdicts stay packed.
  bool (*InPlaceRuntimeCheck)(const core::InPlaceResult &,
                              const std::map<std::string, int64_t> &) =
      nullptr;

  /// Pretty-prints the node program (loops as pseudo-Fortran).
  std::string print() const;
};

} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_SPMDPROGRAM_H
