//===- spmd/Bytecode.h - Postfix bytecode for generated expressions -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact postfix instruction set for the integer expressions of
/// generated SPMD code. The tree interpreter walks shared_ptr `cg::Expr`
/// nodes for every loop bound, guard and subscript; the bytecode engine
/// compiles each expression once, at plan-build time, into a flat vector of
/// instructions evaluated on a register file (the per-processor environment
/// vector) and a small scratch stack.
///
/// Compilation folds constants aggressively: slots whose values are fixed
/// for the whole run (program parameters, processor extents, the B$ block
/// sizes of the virtual-processor layouts) are resolved through a SlotConsts
/// map, so symbolic block sizes become literal constants. That in turn
/// enables the strength reductions that matter for the block-layout forms of
/// Section 4: floordiv/ceildiv/mod by a power of two become an arithmetic
/// shift or mask, and constant-by-variable products become a single MulK.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_BYTECODE_H
#define DHPF_SPMD_BYTECODE_H

#include "cg/Expr.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dhpf {
namespace spmd {
namespace bc {

enum class Op : uint8_t {
  PushK,        // push K
  PushVar,      // push Regs[A]
  PushVarK,     // push Regs[A] + K (fused leading term of a sum)
  Add,          // pop b, a; push a + b
  AddK,         // top += K
  Mul,          // pop b, a; push a * b
  MulK,         // top *= K
  FloorDivK,    // top = floorDiv(top, K), K > 0
  FloorDivPow2, // top >>= A (arithmetic shift; K == 1 << A)
  CeilDivK,     // top = ceilDiv(top, K), K > 0
  CeilDivPow2,  // top = (top + K - 1) >> A
  ModK,         // top = floorMod(top, K), K > 0
  ModPow2,      // top &= K - 1 (two's-complement floorMod for K == 1 << A)
  FloorDiv,     // pop b, a; push floorDiv(a, b)
  Mod,          // pop b, a; push floorMod(a, b)
  Min,          // pop b, a; push min(a, b)
  Max,          // pop b, a; push max(a, b)
};

struct Insn {
  Op O = Op::PushK;
  uint32_t A = 0; // register slot, or shift amount for the Pow2 forms
  int64_t K = 0;  // immediate
};

/// One compiled expression. Evaluation needs a register file indexed by
/// variable slot and a scratch stack of at least depth() entries.
class Prog {
public:
  int64_t eval(const int64_t *Regs, int64_t *Stack) const;

  bool isConst() const {
    return Code.size() == 1 && Code[0].O == Op::PushK;
  }
  int64_t constVal() const { return Code[0].K; }
  unsigned depth() const { return Depth; }
  const std::vector<Insn> &code() const { return Code; }

  std::vector<Insn> Code;
  unsigned Depth = 0;
};

/// Slots with run-constant values, resolved during compilation.
using SlotConsts = std::unordered_map<unsigned, int64_t>;

/// Compiles \p E, folding every subtree whose leaves are constants or
/// slots present in \p Fixed.
Prog compileExpr(const cg::Expr &E, const SlotConsts &Fixed);

} // namespace bc
} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_BYTECODE_H
