//===- spmd/Serialize.cpp - SPMD program round-trip serialization --------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
//
// Canonical textual form: one s-expression. Atoms are integers, %.17g
// doubles (bit-exact round trip), symbols, and quoted strings (\\ \" \n \t
// \r escapes). Relations are embedded in the set-parser syntax; the source
// program is embedded as mini-HPF text. The reader reports malformed input
// into a DiagnosticEngine with line:col locations and never relies on
// assert() — it behaves identically in Debug and Release builds.
//
//===----------------------------------------------------------------------===//

#include "spmd/Serialize.h"

#include "hpf/HpfParser.h"
#include "hpf/HpfPrinter.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace dhpf;
using namespace dhpf::spmd;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

std::string quoted(const std::string &S) {
  std::string R = "\"";
  for (char C : S) {
    switch (C) {
    case '\\':
      R += "\\\\";
      break;
    case '"':
      R += "\\\"";
      break;
    case '\n':
      R += "\\n";
      break;
    case '\t':
      R += "\\t";
      break;
    case '\r':
      R += "\\r";
      break;
    default:
      R += C;
    }
  }
  R += '"';
  return R;
}

std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

const char *exprOpName(cg::Expr::Kind K) {
  switch (K) {
  case cg::Expr::Kind::Const:
    return "c";
  case cg::Expr::Kind::Var:
    return "v";
  case cg::Expr::Kind::Add:
    return "+";
  case cg::Expr::Kind::Mul:
    return "*";
  case cg::Expr::Kind::MulE:
    return "*e";
  case cg::Expr::Kind::FloorDiv:
    return "fdiv";
  case cg::Expr::Kind::CeilDiv:
    return "cdiv";
  case cg::Expr::Kind::Mod:
    return "mod";
  case cg::Expr::Kind::FloorDivE:
    return "fdive";
  case cg::Expr::Kind::ModE:
    return "mode";
  case cg::Expr::Kind::Min:
    return "min";
  case cg::Expr::Kind::Max:
    return "max";
  }
  return "?";
}

void writeExpr(std::ostream &OS, const cg::Expr &E) {
  if (!E.isValid()) {
    OS << "nil";
    return;
  }
  switch (E.kind()) {
  case cg::Expr::Kind::Const:
    OS << "(c " << E.constVal() << ")";
    return;
  case cg::Expr::Kind::Var:
    OS << "(v " << E.varSlot() << ")";
    return;
  case cg::Expr::Kind::Mul:
  case cg::Expr::Kind::FloorDiv:
  case cg::Expr::Kind::CeilDiv:
  case cg::Expr::Kind::Mod:
    OS << "(" << exprOpName(E.kind()) << " " << E.constVal();
    for (const cg::Expr &Op : E.operands()) {
      OS << " ";
      writeExpr(OS, Op);
    }
    OS << ")";
    return;
  default:
    OS << "(" << exprOpName(E.kind());
    for (const cg::Expr &Op : E.operands()) {
      OS << " ";
      writeExpr(OS, Op);
    }
    OS << ")";
    return;
  }
}

void writeGuard(std::ostream &OS, const cg::Guard &G) {
  OS << "(or";
  for (const auto &Conj : G.AnyOf) {
    OS << " (and";
    for (const cg::GuardAtom &A : Conj) {
      switch (A.K) {
      case cg::GuardAtom::Kind::NonNeg:
        OS << " (nonneg ";
        break;
      case cg::GuardAtom::Kind::Zero:
        OS << " (zero ";
        break;
      case cg::GuardAtom::Kind::ModZero:
        OS << " (modzero " << A.Mod << " ";
        break;
      }
      writeExpr(OS, A.E);
      OS << ")";
    }
    OS << ")";
  }
  OS << ")";
}

void writeAst(std::ostream &OS, const cg::AstNode *N) {
  if (!N) {
    OS << "nil";
    return;
  }
  switch (N->K) {
  case cg::AstNode::Kind::Block:
    OS << "(block";
    for (const cg::AstPtr &C : N->Children) {
      OS << " ";
      writeAst(OS, C.get());
    }
    OS << ")";
    return;
  case cg::AstNode::Kind::Loop:
    OS << "(loop " << quoted(N->VarName) << " " << N->VarSlot << " ";
    writeExpr(OS, N->LB);
    OS << " ";
    writeExpr(OS, N->UB);
    OS << " ";
    writeExpr(OS, N->Step);
    for (const cg::AstPtr &C : N->Children) {
      OS << " ";
      writeAst(OS, C.get());
    }
    OS << ")";
    return;
  case cg::AstNode::Kind::If:
    OS << "(if (guards";
    for (const cg::Guard &G : N->AllOf) {
      OS << " ";
      writeGuard(OS, G);
    }
    OS << ")";
    for (const cg::AstPtr &C : N->Children) {
      OS << " ";
      writeAst(OS, C.get());
    }
    OS << ")";
    return;
  case cg::AstNode::Kind::Leaf:
    OS << "(leaf " << N->LeafId << " " << quoted(N->Label) << ")";
    return;
  }
}

bool isDefaultRelation(const Relation &R) {
  return R.conjuncts().empty() && R.numParams() == 0 && R.numIn() == 0 &&
         R.numOut() == 0;
}

void writeRelation(std::ostream &OS, const Relation &R) {
  if (isDefaultRelation(R))
    OS << "nil";
  else
    OS << quoted(R.toString());
}

const char *vpKindName(hpf::DistSpec::Kind K) {
  switch (K) {
  case hpf::DistSpec::Kind::Star:
    return "star";
  case hpf::DistSpec::Kind::Block:
    return "block";
  case hpf::DistSpec::Kind::Cyclic:
    return "cyclic";
  case hpf::DistSpec::Kind::CyclicK:
    return "cyclick";
  }
  return "?";
}

void writeNode(std::ostream &OS, const SpmdNode *N) {
  if (!N) {
    OS << "nil";
    return;
  }
  switch (N->K) {
  case SpmdNode::Kind::Seq:
    OS << "(seq";
    for (const auto &C : N->Children) {
      OS << "\n    ";
      writeNode(OS, C.get());
    }
    OS << ")";
    return;
  case SpmdNode::Kind::TimeLoop:
    OS << "(timeloop " << quoted(N->SeqVar) << " " << N->SeqSlot << " ";
    writeExpr(OS, N->SeqLo);
    OS << " ";
    writeExpr(OS, N->SeqHi);
    for (const auto &C : N->Children) {
      OS << "\n    ";
      writeNode(OS, C.get());
    }
    OS << ")";
    return;
  case SpmdNode::Kind::Compute:
    OS << "(compute " << quoted(N->NestName) << " ";
    writeAst(OS, N->Loops.get());
    OS << ")";
    return;
  case SpmdNode::Kind::Send:
    OS << "(send " << N->EventId << ")";
    return;
  case SpmdNode::Kind::Recv:
    OS << "(recv " << N->EventId << ")";
    return;
  case SpmdNode::Kind::Reduce:
    OS << "(reduce "
       << (N->RedOp == SpmdNode::ReduceOp::Sum ? "sum" : "max") << " "
       << quoted(N->RedName) << " " << N->RedBytes << " "
       << fmtDouble(N->RedCost) << ")";
    return;
  }
}

} // namespace

std::string spmd::serializeSpmdProgram(const SpmdProgram &P) {
  std::ostringstream OS;
  OS << "(spmd 1\n";

  OS << " (vars";
  for (unsigned I = 0; I != P.Vars.size(); ++I)
    OS << " " << quoted(P.Vars.name(I));
  OS << ")\n";

  OS << " (proc " << quoted(P.ProcName);
  for (const hpf::VPDimInfo &D : P.ProcDims) {
    OS << "\n  (vpdim " << vpKindName(D.Kind) << " " << (D.Virtualized ? 1 : 0)
       << " " << D.ProcFixed << " " << quoted(D.ProcSym) << " "
       << D.BlockFixed << " " << quoted(D.BlockParam) << " " << D.CyclicK
       << " " << D.TmplLo << " " << D.TemplateDim << ")";
  }
  OS << ")\n";

  OS << " (myslots";
  for (unsigned S : P.MySlots)
    OS << " " << S;
  OS << ")\n (coordslots";
  for (unsigned S : P.CoordSlots)
    OS << " " << S;
  OS << ")\n";

  OS << " (stmts";
  for (const CompiledStmt &S : P.Stmts) {
    OS << "\n  (stmt " << S.Id << " " << S.SemanticsId << " "
       << fmtDouble(S.Cost) << " " << quoted(S.Label) << " "
       << quoted(S.WriteArray) << " (";
    for (unsigned I = 0; I != S.WriteSubs.size(); ++I) {
      if (I)
        OS << " ";
      writeExpr(OS, S.WriteSubs[I]);
    }
    OS << ") (";
    for (unsigned R = 0; R != S.Reads.size(); ++R) {
      if (R)
        OS << " ";
      OS << "(read " << quoted(S.Reads[R].Array) << " (";
      for (unsigned I = 0; I != S.Reads[R].Subs.size(); ++I) {
        if (I)
          OS << " ";
        writeExpr(OS, S.Reads[R].Subs[I]);
      }
      OS << "))";
    }
    OS << "))";
  }
  OS << ")\n";

  OS << " (events";
  for (const CommEvent &E : P.Events) {
    OS << "\n  (event " << E.Id << " " << quoted(E.Array) << " (";
    for (unsigned I = 0; I != E.PartnerSlots.size(); ++I)
      OS << (I ? " " : "") << E.PartnerSlots[I];
    OS << ") (";
    for (unsigned I = 0; I != E.ElemSlots.size(); ++I)
      OS << (I ? " " : "") << E.ElemSlots[I];
    OS << ") " << (E.InPlaceProven ? 1 : 0) << "\n   (inplace ";
    switch (E.InPlace.Verdict) {
    case core::InPlaceVerdict::Contiguous:
      OS << "contig";
      break;
    case core::InPlaceVerdict::NotContiguous:
      OS << "notcontig";
      break;
    case core::InPlaceVerdict::RuntimeCheck:
      OS << "runtime";
      break;
    }
    OS << " " << E.InPlace.SplitDim << " ";
    writeRelation(OS, E.InPlace.CommSet);
    OS << " ";
    writeRelation(OS, E.InPlace.ArraySet);
    OS << ")\n   ";
    writeAst(OS, E.SendLoops.get());
    OS << "\n   ";
    writeAst(OS, E.RecvLoops.get());
    OS << ")";
  }
  OS << ")\n";

  OS << " (root\n  ";
  writeNode(OS, P.Root.get());
  OS << ")\n";

  OS << " (source ";
  if (P.Source)
    OS << quoted(hpf::printHpfProgram(*P.Source));
  else
    OS << "nil";
  OS << ")\n)\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

namespace {

/// Internal unwind after a diagnostic was reported.
struct ParseFailure {};

/// One parsed s-expression.
struct SExpr {
  enum class Kind : uint8_t { List, Sym, Int, Float, Str };
  Kind K = Kind::List;
  SourceLoc Loc;
  std::string S;   // Sym / Str
  int64_t I = 0;   // Int
  double F = 0;    // Float
  std::vector<SExpr> Items; // List
};

class Lexer {
public:
  Lexer(const std::string &Text, DiagnosticEngine &Diags,
        const std::string &File)
      : Text(Text), Diags(Diags), File(File) {}

  [[noreturn]] void fail(SourceLoc Loc, const std::string &Msg) {
    Diags.error(std::move(Loc), Msg);
    throw ParseFailure{};
  }
  [[noreturn]] void failHere(const std::string &Msg) { fail(loc(), Msg); }

  SourceLoc loc() const {
    return SourceLoc(File, Line, static_cast<unsigned>(Pos - LineStart + 1));
  }

  SExpr parseTop() {
    SExpr E = parseOne();
    skipWS();
    if (Pos != Text.size())
      failHere("trailing input after s-expression");
    return E;
  }

private:
  const std::string &Text;
  DiagnosticEngine &Diags;
  std::string File;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;

  void skipWS() {
    while (Pos != Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Pos;
        ++Line;
        LineStart = Pos;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == ';') { // comment to end of line
        while (Pos != Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  SExpr parseOne() {
    skipWS();
    if (Pos == Text.size())
      failHere("unexpected end of input");
    SourceLoc L = loc();
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      SExpr E;
      E.K = SExpr::Kind::List;
      E.Loc = L;
      for (;;) {
        skipWS();
        if (Pos == Text.size())
          fail(L, "unterminated list");
        if (Text[Pos] == ')') {
          ++Pos;
          return E;
        }
        E.Items.push_back(parseOne());
      }
    }
    if (C == ')')
      failHere("unmatched ')'");
    if (C == '"')
      return parseString(L);
    return parseAtom(L);
  }

  SExpr parseString(SourceLoc L) {
    ++Pos; // opening quote
    std::string R;
    while (Pos != Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (C == '\\') {
        ++Pos;
        if (Pos == Text.size())
          fail(L, "unterminated string escape");
        char E = Text[Pos];
        switch (E) {
        case 'n':
          R += '\n';
          break;
        case 't':
          R += '\t';
          break;
        case 'r':
          R += '\r';
          break;
        default:
          R += E;
        }
        ++Pos;
        continue;
      }
      if (C == '\n') { // strings may span lines (escaped form preferred)
        ++Line;
        LineStart = Pos + 1;
      }
      R += C;
      ++Pos;
    }
    if (Pos == Text.size())
      fail(L, "unterminated string literal");
    ++Pos; // closing quote
    SExpr E;
    E.K = SExpr::Kind::Str;
    E.Loc = std::move(L);
    E.S = std::move(R);
    return E;
  }

  SExpr parseAtom(SourceLoc L) {
    size_t Start = Pos;
    while (Pos != Text.size()) {
      char C = Text[Pos];
      if (C == '(' || C == ')' || C == '"' || C == ';' || C == ' ' ||
          C == '\t' || C == '\r' || C == '\n')
        break;
      ++Pos;
    }
    std::string Tok = Text.substr(Start, Pos - Start);
    SExpr E;
    E.Loc = std::move(L);
    bool Numeric = std::isdigit(static_cast<unsigned char>(Tok[0])) ||
                   (Tok.size() > 1 && Tok[0] == '-' &&
                    (std::isdigit(static_cast<unsigned char>(Tok[1])) ||
                     Tok[1] == '.')) ||
                   Tok[0] == '.';
    if (!Numeric) {
      E.K = SExpr::Kind::Sym;
      E.S = std::move(Tok);
      return E;
    }
    // Integer unless it contains '.', 'e', or 'E'.
    if (Tok.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      if (errno == ERANGE || End != Tok.c_str() + Tok.size())
        fail(E.Loc, "malformed integer literal '" + Tok + "'");
      E.K = SExpr::Kind::Int;
      E.I = V;
      return E;
    }
    char *End = nullptr;
    double V = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size())
      fail(E.Loc, "malformed number '" + Tok + "'");
    E.K = SExpr::Kind::Float;
    E.F = V;
    return E;
  }
};

/// Decodes the SExpr tree into a SpmdProgram, reporting structural errors
/// at the offending node's location.
class Decoder {
public:
  Decoder(DiagnosticEngine &Diags, const std::string &File)
      : Diags(Diags), File(File) {}

  std::unique_ptr<SpmdProgram> decode(const SExpr &Top) {
    auto P = std::make_unique<SpmdProgram>();
    Prog = P.get();
    if (Top.K != SExpr::Kind::List || Top.Items.empty() ||
        !isSym(Top.Items[0], "spmd"))
      fail(Top.Loc, "expected (spmd <version> ...)");
    if (Top.Items.size() < 2 || Top.Items[1].K != SExpr::Kind::Int ||
        Top.Items[1].I != 1)
      fail(Top.Loc, "unsupported spmd serialization version");

    // Index the sections, then decode in dependency order (vars first:
    // slots give every later expression its names).
    std::map<std::string, const SExpr *> Secs;
    for (size_t I = 2; I != Top.Items.size(); ++I) {
      const SExpr &S = Top.Items[I];
      if (S.K != SExpr::Kind::List || S.Items.empty() ||
          S.Items[0].K != SExpr::Kind::Sym)
        fail(S.Loc, "expected a (section ...) list");
      if (!Secs.emplace(S.Items[0].S, &S).second)
        fail(S.Loc, "duplicate section '" + S.Items[0].S + "'");
    }
    static const char *Required[] = {"vars",       "proc",   "myslots",
                                     "coordslots", "stmts",  "events",
                                     "root",       "source"};
    for (const char *Name : Required)
      if (Secs.find(Name) == Secs.end())
        fail(Top.Loc, std::string("missing section '") + Name + "'");

    decodeVars(*Secs["vars"]);
    decodeProc(*Secs["proc"]);
    Prog->MySlots = decodeSlotList(*Secs["myslots"]);
    Prog->CoordSlots = decodeSlotList(*Secs["coordslots"]);
    decodeStmts(*Secs["stmts"]);
    decodeEvents(*Secs["events"]);
    decodeRoot(*Secs["root"]);
    decodeSource(*Secs["source"]);
    validate(*Secs["root"]);
    return P;
  }

private:
  DiagnosticEngine &Diags;
  std::string File;
  SpmdProgram *Prog = nullptr;

  [[noreturn]] void fail(SourceLoc Loc, const std::string &Msg) {
    Diags.error(std::move(Loc), Msg);
    throw ParseFailure{};
  }

  static bool isSym(const SExpr &E, const char *S) {
    return E.K == SExpr::Kind::Sym && E.S == S;
  }

  int64_t asInt(const SExpr &E) {
    if (E.K != SExpr::Kind::Int)
      fail(E.Loc, "expected an integer");
    return E.I;
  }
  double asDouble(const SExpr &E) {
    if (E.K == SExpr::Kind::Int)
      return static_cast<double>(E.I);
    if (E.K != SExpr::Kind::Float)
      fail(E.Loc, "expected a number");
    return E.F;
  }
  const std::string &asStr(const SExpr &E) {
    if (E.K != SExpr::Kind::Str)
      fail(E.Loc, "expected a quoted string");
    return E.S;
  }
  const SExpr &asList(const SExpr &E, const char *Head, size_t MinItems) {
    if (E.K != SExpr::Kind::List || E.Items.empty() ||
        !isSym(E.Items[0], Head))
      fail(E.Loc, std::string("expected (") + Head + " ...)");
    if (E.Items.size() < MinItems)
      fail(E.Loc, std::string("too few items in (") + Head + " ...)");
    return E;
  }

  unsigned asSlot(const SExpr &E) {
    int64_t V = asInt(E);
    if (V < 0 || static_cast<uint64_t>(V) >= Prog->Vars.size())
      fail(E.Loc, "variable slot " + std::to_string(V) +
                      " out of range (table has " +
                      std::to_string(Prog->Vars.size()) + " entries)");
    return static_cast<unsigned>(V);
  }

  //===---------------------------- sections ----------------------------===//

  void decodeVars(const SExpr &S) {
    for (size_t I = 1; I != S.Items.size(); ++I) {
      const std::string &Name = asStr(S.Items[I]);
      unsigned Slot = Prog->Vars.slot(Name);
      if (Slot != I - 1)
        fail(S.Items[I].Loc, "duplicate variable name '" + Name + "'");
    }
  }

  void decodeProc(const SExpr &S) {
    asList(S, "proc", 2);
    Prog->ProcName = asStr(S.Items[1]);
    for (size_t I = 2; I != S.Items.size(); ++I) {
      const SExpr &D = asList(S.Items[I], "vpdim", 10);
      hpf::VPDimInfo Info;
      const SExpr &KindE = D.Items[1];
      if (isSym(KindE, "star"))
        Info.Kind = hpf::DistSpec::Kind::Star;
      else if (isSym(KindE, "block"))
        Info.Kind = hpf::DistSpec::Kind::Block;
      else if (isSym(KindE, "cyclic"))
        Info.Kind = hpf::DistSpec::Kind::Cyclic;
      else if (isSym(KindE, "cyclick"))
        Info.Kind = hpf::DistSpec::Kind::CyclicK;
      else
        fail(KindE.Loc, "unknown distribution kind");
      Info.Virtualized = asInt(D.Items[2]) != 0;
      Info.ProcFixed = asInt(D.Items[3]);
      Info.ProcSym = asStr(D.Items[4]);
      Info.BlockFixed = asInt(D.Items[5]);
      Info.BlockParam = asStr(D.Items[6]);
      Info.CyclicK = asInt(D.Items[7]);
      Info.TmplLo = asInt(D.Items[8]);
      int64_t TD = asInt(D.Items[9]);
      if (TD < 0)
        fail(D.Items[9].Loc, "negative template dimension");
      Info.TemplateDim = static_cast<unsigned>(TD);
      Prog->ProcDims.push_back(std::move(Info));
    }
  }

  std::vector<unsigned> decodeSlotList(const SExpr &S) {
    std::vector<unsigned> R;
    for (size_t I = 1; I != S.Items.size(); ++I)
      R.push_back(asSlot(S.Items[I]));
    return R;
  }

  void decodeStmts(const SExpr &S) {
    for (size_t I = 1; I != S.Items.size(); ++I) {
      const SExpr &St = asList(S.Items[I], "stmt", 8);
      CompiledStmt CS;
      CS.Id = static_cast<int>(asInt(St.Items[1]));
      CS.SemanticsId = static_cast<int>(asInt(St.Items[2]));
      CS.Cost = asDouble(St.Items[3]);
      CS.Label = asStr(St.Items[4]);
      CS.WriteArray = asStr(St.Items[5]);
      const SExpr &Subs = St.Items[6];
      if (Subs.K != SExpr::Kind::List)
        fail(Subs.Loc, "expected a subscript list");
      for (const SExpr &E : Subs.Items)
        CS.WriteSubs.push_back(decodeExpr(E));
      const SExpr &Reads = St.Items[7];
      if (Reads.K != SExpr::Kind::List)
        fail(Reads.Loc, "expected a read list");
      for (const SExpr &R : Reads.Items) {
        const SExpr &RL = asList(R, "read", 3);
        CompiledStmt::Read Rd;
        Rd.Array = asStr(RL.Items[1]);
        if (RL.Items[2].K != SExpr::Kind::List)
          fail(RL.Items[2].Loc, "expected a subscript list");
        for (const SExpr &E : RL.Items[2].Items)
          Rd.Subs.push_back(decodeExpr(E));
        CS.Reads.push_back(std::move(Rd));
      }
      Prog->Stmts.push_back(std::move(CS));
    }
  }

  void decodeEvents(const SExpr &S) {
    for (size_t I = 1; I != S.Items.size(); ++I) {
      const SExpr &E = asList(S.Items[I], "event", 9);
      CommEvent Ev;
      Ev.Id = static_cast<int>(asInt(E.Items[1]));
      if (Ev.Id != static_cast<int>(I - 1))
        fail(E.Items[1].Loc, "event ids must be dense and in order");
      Ev.Array = asStr(E.Items[2]);
      if (E.Items[3].K != SExpr::Kind::List)
        fail(E.Items[3].Loc, "expected a partner-slot list");
      for (const SExpr &P : E.Items[3].Items)
        Ev.PartnerSlots.push_back(asSlot(P));
      if (E.Items[4].K != SExpr::Kind::List)
        fail(E.Items[4].Loc, "expected an element-slot list");
      for (const SExpr &P : E.Items[4].Items)
        Ev.ElemSlots.push_back(asSlot(P));
      Ev.InPlaceProven = asInt(E.Items[5]) != 0;
      decodeInPlace(E.Items[6], Ev.InPlace);
      Ev.SendLoops = decodeAst(E.Items[7]);
      Ev.RecvLoops = decodeAst(E.Items[8]);
      if (!Ev.SendLoops || !Ev.RecvLoops)
        fail(E.Loc, "event send/recv loops must be present");
      Prog->Events.push_back(std::move(Ev));
    }
  }

  void decodeInPlace(const SExpr &S, core::InPlaceResult &R) {
    const SExpr &L = asList(S, "inplace", 5);
    if (isSym(L.Items[1], "contig"))
      R.Verdict = core::InPlaceVerdict::Contiguous;
    else if (isSym(L.Items[1], "notcontig"))
      R.Verdict = core::InPlaceVerdict::NotContiguous;
    else if (isSym(L.Items[1], "runtime"))
      R.Verdict = core::InPlaceVerdict::RuntimeCheck;
    else
      fail(L.Items[1].Loc, "unknown in-place verdict");
    R.SplitDim = static_cast<int>(asInt(L.Items[2]));
    R.CommSet = decodeRelation(L.Items[3]);
    R.ArraySet = decodeRelation(L.Items[4]);
  }

  Relation decodeRelation(const SExpr &S) {
    if (isSym(S, "nil"))
      return Relation();
    const std::string &Text = asStr(S);
    Expected<Relation> R = parseRelation(Text, Diags, File + ":relation");
    if (!R)
      fail(S.Loc, "malformed embedded relation");
    return R.take();
  }

  //===------------------------ expressions / ASTs -----------------------===//

  cg::Expr decodeExpr(const SExpr &S) {
    if (isSym(S, "nil"))
      return cg::Expr();
    if (S.K != SExpr::Kind::List || S.Items.empty() ||
        S.Items[0].K != SExpr::Kind::Sym)
      fail(S.Loc, "expected an expression");
    const std::string &Op = S.Items[0].S;
    auto Arity = [&](size_t N) {
      if (S.Items.size() != N + 1)
        fail(S.Loc, "operator '" + Op + "' expects " + std::to_string(N) +
                        " operand(s)");
    };
    // Operands inside compound expressions must be valid (nil is only
    // meaningful at positions that model an absent expression).
    auto Operand = [&](size_t I) { return decodeValidExpr(S.Items[I]); };
    auto Rest = [&](size_t From) {
      if (S.Items.size() <= From)
        fail(S.Loc, "operator '" + Op + "' expects at least one operand");
      std::vector<cg::Expr> R;
      for (size_t I = From; I != S.Items.size(); ++I)
        R.push_back(decodeValidExpr(S.Items[I]));
      return R;
    };
    auto PosConst = [&](size_t I) {
      int64_t K = asInt(S.Items[I]);
      if (K <= 0)
        fail(S.Items[I].Loc,
             "operator '" + Op + "' requires a positive constant");
      return K;
    };
    if (Op == "c") {
      Arity(1);
      return cg::Expr::constant(asInt(S.Items[1]));
    }
    if (Op == "v") {
      Arity(1);
      unsigned Slot = asSlot(S.Items[1]);
      return cg::Expr::var(Slot, Prog->Vars.name(Slot));
    }
    if (Op == "+") {
      std::vector<cg::Expr> Ops = Rest(1);
      cg::Expr R = Ops[0];
      for (size_t I = 1; I != Ops.size(); ++I)
        R = cg::Expr::add(R, Ops[I]);
      return R;
    }
    if (Op == "*") {
      Arity(2);
      return cg::Expr::mul(Operand(2), asInt(S.Items[1]));
    }
    if (Op == "*e") {
      Arity(2);
      return cg::Expr::mulExpr(Operand(1), Operand(2));
    }
    if (Op == "fdiv") {
      Arity(2);
      return cg::Expr::floorDiv(Operand(2), PosConst(1));
    }
    if (Op == "cdiv") {
      Arity(2);
      return cg::Expr::ceilDiv(Operand(2), PosConst(1));
    }
    if (Op == "mod") {
      Arity(2);
      return cg::Expr::mod(Operand(2), PosConst(1));
    }
    if (Op == "fdive") {
      Arity(2);
      return cg::Expr::floorDivExpr(Operand(1), Operand(2));
    }
    if (Op == "mode") {
      Arity(2);
      return cg::Expr::modExpr(Operand(1), Operand(2));
    }
    if (Op == "min")
      return cg::Expr::min(Rest(1));
    if (Op == "max")
      return cg::Expr::max(Rest(1));
    fail(S.Items[0].Loc, "unknown expression operator '" + Op + "'");
  }

  cg::Expr decodeValidExpr(const SExpr &S) {
    cg::Expr E = decodeExpr(S);
    if (!E.isValid())
      fail(S.Loc, "expression must not be nil here");
    return E;
  }

  cg::Guard decodeGuard(const SExpr &S) {
    const SExpr &L = asList(S, "or", 1);
    cg::Guard G;
    for (size_t I = 1; I != L.Items.size(); ++I) {
      const SExpr &CL = asList(L.Items[I], "and", 1);
      std::vector<cg::GuardAtom> Conj;
      for (size_t A = 1; A != CL.Items.size(); ++A) {
        const SExpr &AL = CL.Items[A];
        if (AL.K != SExpr::Kind::List || AL.Items.empty() ||
            AL.Items[0].K != SExpr::Kind::Sym)
          fail(AL.Loc, "expected a guard atom");
        cg::GuardAtom At;
        if (isSym(AL.Items[0], "nonneg")) {
          if (AL.Items.size() != 2)
            fail(AL.Loc, "nonneg expects one expression");
          At.K = cg::GuardAtom::Kind::NonNeg;
          At.E = decodeValidExpr(AL.Items[1]);
        } else if (isSym(AL.Items[0], "zero")) {
          if (AL.Items.size() != 2)
            fail(AL.Loc, "zero expects one expression");
          At.K = cg::GuardAtom::Kind::Zero;
          At.E = decodeValidExpr(AL.Items[1]);
        } else if (isSym(AL.Items[0], "modzero")) {
          if (AL.Items.size() != 3)
            fail(AL.Loc, "modzero expects a modulus and an expression");
          At.K = cg::GuardAtom::Kind::ModZero;
          At.Mod = asInt(AL.Items[1]);
          if (At.Mod <= 0)
            fail(AL.Items[1].Loc, "modzero modulus must be positive");
          At.E = decodeValidExpr(AL.Items[2]);
        } else {
          fail(AL.Items[0].Loc, "unknown guard atom kind");
        }
        Conj.push_back(std::move(At));
      }
      G.AnyOf.push_back(std::move(Conj));
    }
    return G;
  }

  cg::AstPtr decodeAst(const SExpr &S) {
    if (isSym(S, "nil"))
      return nullptr;
    if (S.K != SExpr::Kind::List || S.Items.empty() ||
        S.Items[0].K != SExpr::Kind::Sym)
      fail(S.Loc, "expected an AST node");
    const std::string &Head = S.Items[0].S;
    if (Head == "block") {
      cg::AstPtr N = cg::AstNode::block();
      for (size_t I = 1; I != S.Items.size(); ++I)
        N->Children.push_back(decodeChildAst(S.Items[I]));
      return N;
    }
    if (Head == "loop") {
      if (S.Items.size() < 6)
        fail(S.Loc, "loop expects name, slot, and three bound expressions");
      std::string Name = asStr(S.Items[1]);
      unsigned Slot = asSlot(S.Items[2]);
      cg::Expr LB = decodeValidExpr(S.Items[3]);
      cg::Expr UB = decodeValidExpr(S.Items[4]);
      cg::Expr Step = decodeValidExpr(S.Items[5]);
      cg::AstPtr N = cg::AstNode::loop(std::move(Name), Slot, std::move(LB),
                                       std::move(UB), std::move(Step));
      for (size_t I = 6; I != S.Items.size(); ++I)
        N->Children.push_back(decodeChildAst(S.Items[I]));
      return N;
    }
    if (Head == "if") {
      if (S.Items.size() < 2)
        fail(S.Loc, "if expects a (guards ...) list");
      const SExpr &GL = asList(S.Items[1], "guards", 1);
      std::vector<cg::Guard> Gs;
      for (size_t I = 1; I != GL.Items.size(); ++I)
        Gs.push_back(decodeGuard(GL.Items[I]));
      cg::AstPtr N = cg::AstNode::guarded(std::move(Gs));
      for (size_t I = 2; I != S.Items.size(); ++I)
        N->Children.push_back(decodeChildAst(S.Items[I]));
      return N;
    }
    if (Head == "leaf") {
      if (S.Items.size() != 3)
        fail(S.Loc, "leaf expects an id and a label");
      return cg::AstNode::leaf(static_cast<int>(asInt(S.Items[1])),
                               asStr(S.Items[2]));
    }
    fail(S.Items[0].Loc, "unknown AST node kind '" + Head + "'");
  }

  cg::AstPtr decodeChildAst(const SExpr &S) {
    cg::AstPtr C = decodeAst(S);
    if (!C)
      fail(S.Loc, "nil is not a valid AST child");
    return C;
  }

  //===----------------------------- nodes -------------------------------===//

  std::unique_ptr<SpmdNode> decodeNode(const SExpr &S) {
    if (S.K != SExpr::Kind::List || S.Items.empty() ||
        S.Items[0].K != SExpr::Kind::Sym)
      fail(S.Loc, "expected a program node");
    const std::string &Head = S.Items[0].S;
    if (Head == "seq") {
      auto N = SpmdNode::make(SpmdNode::Kind::Seq);
      for (size_t I = 1; I != S.Items.size(); ++I)
        N->Children.push_back(decodeNode(S.Items[I]));
      return N;
    }
    if (Head == "timeloop") {
      if (S.Items.size() < 5)
        fail(S.Loc, "timeloop expects var, slot, lo, hi");
      auto N = SpmdNode::make(SpmdNode::Kind::TimeLoop);
      N->SeqVar = asStr(S.Items[1]);
      N->SeqSlot = asSlot(S.Items[2]);
      N->SeqLo = decodeValidExpr(S.Items[3]);
      N->SeqHi = decodeValidExpr(S.Items[4]);
      for (size_t I = 5; I != S.Items.size(); ++I)
        N->Children.push_back(decodeNode(S.Items[I]));
      return N;
    }
    if (Head == "compute") {
      if (S.Items.size() != 3)
        fail(S.Loc, "compute expects a name and a loop AST");
      auto N = SpmdNode::make(SpmdNode::Kind::Compute);
      N->NestName = asStr(S.Items[1]);
      N->Loops = decodeChildAst(S.Items[2]);
      return N;
    }
    if (Head == "send" || Head == "recv") {
      if (S.Items.size() != 2)
        fail(S.Loc, Head + " expects an event id");
      auto N = SpmdNode::make(Head == "send" ? SpmdNode::Kind::Send
                                             : SpmdNode::Kind::Recv);
      int64_t Id = asInt(S.Items[1]);
      if (Id < 0 || static_cast<uint64_t>(Id) >= Prog->Events.size())
        fail(S.Items[1].Loc, "event id " + std::to_string(Id) +
                                 " out of range (" +
                                 std::to_string(Prog->Events.size()) +
                                 " events)");
      N->EventId = static_cast<int>(Id);
      return N;
    }
    if (Head == "reduce") {
      if (S.Items.size() != 5)
        fail(S.Loc, "reduce expects op, name, bytes, cost");
      auto N = SpmdNode::make(SpmdNode::Kind::Reduce);
      if (isSym(S.Items[1], "sum"))
        N->RedOp = SpmdNode::ReduceOp::Sum;
      else if (isSym(S.Items[1], "max"))
        N->RedOp = SpmdNode::ReduceOp::Max;
      else
        fail(S.Items[1].Loc, "unknown reduction op");
      N->RedName = asStr(S.Items[2]);
      int64_t Bytes = asInt(S.Items[3]);
      if (Bytes < 0)
        fail(S.Items[3].Loc, "negative reduction byte count");
      N->RedBytes = static_cast<uint64_t>(Bytes);
      N->RedCost = asDouble(S.Items[4]);
      return N;
    }
    fail(S.Items[0].Loc, "unknown program node kind '" + Head + "'");
  }

  void decodeRoot(const SExpr &S) {
    asList(S, "root", 2);
    if (S.Items.size() != 2)
      fail(S.Loc, "root expects exactly one node");
    Prog->Root = decodeNode(S.Items[1]);
  }

  void decodeSource(const SExpr &S) {
    asList(S, "source", 2);
    if (isSym(S.Items[1], "nil"))
      return;
    const std::string &Text = asStr(S.Items[1]);
    Expected<std::unique_ptr<hpf::Program>> R =
        hpf::parseHpfProgram(Text, Diags, File + ":source");
    if (!R)
      fail(S.Items[1].Loc, "malformed embedded source program");
    Prog->OwnedSource = std::shared_ptr<const hpf::Program>(R.take());
    Prog->Source = Prog->OwnedSource.get();
  }

  //===------------------------- cross checks ----------------------------===//

  void checkComputeLeaves(const cg::AstNode &N, SourceLoc Loc) {
    if (N.K == cg::AstNode::Kind::Leaf) {
      if (N.LeafId < 0 ||
          static_cast<size_t>(N.LeafId) >= Prog->Stmts.size() ||
          Prog->Stmts[N.LeafId].Id != N.LeafId)
        fail(Loc, "compute leaf references unknown statement " +
                      std::to_string(N.LeafId));
    }
    for (const cg::AstPtr &C : N.Children)
      checkComputeLeaves(*C, Loc);
  }

  void checkNode(const SpmdNode &N, SourceLoc Loc) {
    if (N.K == SpmdNode::Kind::Compute && N.Loops)
      checkComputeLeaves(*N.Loops, Loc);
    for (const auto &C : N.Children)
      checkNode(*C, Loc);
  }

  void validate(const SExpr &RootSec) {
    if (Prog->Root)
      checkNode(*Prog->Root, RootSec.Loc);
    if (Prog->MySlots.size() != Prog->ProcDims.size() ||
        Prog->CoordSlots.size() != Prog->ProcDims.size())
      fail(RootSec.Loc, "myslots/coordslots must match the processor rank");
  }
};

} // namespace

std::unique_ptr<SpmdProgram>
spmd::parseSpmdProgram(const std::string &Text, DiagnosticEngine &Diags,
                       const std::string &FileName) {
  try {
    Lexer L(Text, Diags, FileName);
    SExpr Top = L.parseTop();
    Decoder D(Diags, FileName);
    return D.decode(Top);
  } catch (ParseFailure &) {
    return nullptr;
  }
}
