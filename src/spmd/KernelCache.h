//===- spmd/KernelCache.h - Compile + dlopen cache for native kernels -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a NativeGen PlanSource into a loaded kernel table, caching at two
/// levels so repeated runs (and the future dhpfd daemon) skip codegen
/// entirely:
///
///  - in memory, per process: one dlopen'd module per cache key, shared by
///    every engine instance (all ranks of an in-process run hit the same
///    module);
///  - on disk, across processes: `dhpf-<key>.c` / `dhpf-<key>.so` pairs in
///    the cache directory, written atomically (pid-suffixed temp + rename)
///    so concurrent ranks never observe a torn file.
///
/// The cache key is FNV-1a over compiler identity (the first line of
/// `$DHPF_CC --version`), DHPF_KERNEL_ABI_VERSION, and the full generated
/// source — so a compiler upgrade, an ABI bump, or any plan change each
/// miss cleanly. Loads are verified against the table the kernel itself
/// baked in (ABI version, sizeof(DhpfCtx), plan fingerprint, function
/// counts); a stale or foreign `.so` is recompiled, never trusted.
///
/// Environment:
///   DHPF_KERNEL_CACHE  cache directory; `off` or `0` disables disk reuse
///                      (kernels are still compiled, via a private temp
///                      file). Default: $XDG_CACHE_HOME/dhpf-kernels, else
///                      $HOME/.cache/dhpf-kernels, else /tmp/dhpf-kernels.
///   DHPF_CC            C compiler to invoke (default `cc`).
///
/// Observability: spans `native:compile` / `native:dlopen` (category
/// "spmd.native") and counters `spmd.kernel.cache.{hits,misses}` plus
/// `spmd.kernel.compile.invocations` (a warm cache shows zero).
///
/// Module handles are intentionally leaked: kernels stay mapped for the
/// process lifetime because engine instances may outlive the cache's view
/// of who uses them.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_KERNELCACHE_H
#define DHPF_SPMD_KERNELCACHE_H

#include "spmd/KernelABI.h"
#include "spmd/NativeGen.h"

#include <map>
#include <mutex>
#include <set>
#include <string>

namespace dhpf {
namespace spmd {
namespace native {

/// One loaded kernel module.
struct Kernel {
  const DhpfKernelTable *Table = nullptr;
  std::string CPath;  ///< on-disk source ("" when disk reuse is off)
  std::string SoPath; ///< on-disk shared object ("" when disk reuse is off)
};

class KernelCache {
public:
  /// The process-global cache (lazily constructed).
  static KernelCache &global();

  KernelCache() = default;
  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// True when a working C compiler answered the version probe.
  bool compilerAvailable();
  /// First line of `$DHPF_CC --version` ("" when unavailable).
  std::string compilerVersion();
  /// The compiler command (DHPF_CC or "cc").
  static std::string compilerCommand();

  /// The resolved on-disk cache directory, or "" when disk reuse is
  /// disabled. Does not create the directory.
  static std::string resolvedDir();

  /// Removes `dhpf-*.tmp<pid>` / `dhpf-*.err<pid>` files in \p Dir whose
  /// writing process is dead — the droppings of a compile that crashed
  /// between temp write and rename. Files owned by live pids are left
  /// alone (a sibling rank mid-compile). Returns the number removed.
  /// get() runs this once per directory per process on first cache open.
  static unsigned sweepStale(const std::string &Dir);

  /// Gets or builds the kernel for \p Src. On failure returns nullptr and
  /// explains in \p Err (missing compiler, compile error with the
  /// compiler's stderr, dlopen failure, verification mismatch).
  const Kernel *get(const PlanSource &Src, std::string *Err);

  /// Test hook: compile an arbitrary C translation unit and resolve one
  /// symbol from it. Bypasses table verification and the disk cache; the
  /// module is leaked like any other.
  void *loadRaw(const std::string &CSrc, const std::string &Symbol,
                std::string *Err);

private:
  std::mutex M;
  std::map<uint64_t, Kernel> Modules; // by cache key
  std::set<std::string> Swept;        // dirs already swept for stale tmps
  int ProbeState = 0;                 // 0 unprobed, 1 ok, -1 missing
  std::string Version;

  bool probeLocked();
};

} // namespace native
} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_KERNELCACHE_H
