//===- spmd/ExecPlan.cpp - Lowered SPMD execution plan --------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/ExecPlan.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "spmd/KernelABI.h"
#include "spmd/KernelCache.h"
#include "spmd/NativeGen.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::hpf;

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

namespace {

/// Collects every loop-variable slot of a generated AST.
void collectLoopSlots(const cg::AstNode &N, std::set<unsigned> &Out) {
  if (N.K == cg::AstNode::Kind::Loop)
    Out.insert(N.VarSlot);
  for (const cg::AstPtr &C : N.Children)
    collectLoopSlots(*C, Out);
}

/// Collects every leaf id of a generated AST.
void collectLeaves(const cg::AstNode &N, std::vector<int> &Out) {
  if (N.K == cg::AstNode::Kind::Leaf)
    Out.push_back(N.LeafId);
  for (const cg::AstPtr &C : N.Children)
    collectLeaves(*C, Out);
}

/// Collects the TimeLoop sequence slots and loop slots of the whole
/// program (the slots rebound between event executions).
void collectRebound(const SpmdNode &N, std::set<unsigned> &Time,
                    std::set<unsigned> &Loops) {
  if (N.K == SpmdNode::Kind::TimeLoop)
    Time.insert(N.SeqSlot);
  if (N.K == SpmdNode::Kind::Compute && N.Loops)
    collectLoopSlots(*N.Loops, Loops);
  for (const auto &C : N.Children)
    collectRebound(*C, Time, Loops);
}

void addUsedSlots(const bc::Prog &P, std::set<unsigned> &Out) {
  for (const bc::Insn &In : P.code())
    if (In.O == bc::Op::PushVar || In.O == bc::Op::PushVarK)
      Out.insert(In.A);
}

void addUsedSlots(const PlanAst &A, std::set<unsigned> &Out) {
  for (const bc::Prog &P : A.Exprs)
    addUsedSlots(P, Out);
  for (const PlanGuard &G : A.Guards)
    for (const auto &Conj : G.AnyOf)
      for (const PlanAtom &At : Conj)
        addUsedSlots(At.E, Out);
}

bool atomHolds(int64_t V, cg::GuardAtom::Kind K, int64_t Mod) {
  switch (K) {
  case cg::GuardAtom::Kind::NonNeg:
    return V >= 0;
  case cg::GuardAtom::Kind::Zero:
    return V == 0;
  case cg::GuardAtom::Kind::ModZero:
    return floorMod(V, Mod) == 0;
  }
  return false;
}

} // namespace

namespace {

/// Lowers one SpmdProgram into a PlanBuild. Stateless beyond the output;
/// extracted from PlanExecutor so rt::RankEngine builds the identical plan
/// (and therefore the identical native kernel source) from its own
/// bindings.
class PlanLowering {
public:
  PlanLowering(const SpmdProgram &Prog, const PlanBuildInputs &In,
               PlanBuild &Out)
      : Prog(Prog), In(In), B(Out), Plan(Out.Plan) {}

  void run();

private:
  const SpmdProgram &Prog;
  const PlanBuildInputs &In;
  PlanBuild &B;
  ExecPlan &Plan;
  int32_t NextComputeId = 0, NextReduceId = 0;

  void noteDepth(const bc::Prog &P);
  bc::Prog flattenExpr(const std::vector<cg::Expr> &Subs, const ArrayStore &A,
                       const bc::SlotConsts &Fixed);
  void lowerInto(PlanAst &Out, const cg::AstNode &N,
                 const bc::SlotConsts &Fixed);
  PlanNode lowerNode(const SpmdNode &N, const bc::SlotConsts &Fixed);
};

void PlanLowering::noteDepth(const bc::Prog &P) {
  if (P.depth() > Plan.StackDepth)
    Plan.StackDepth = P.depth();
}

bc::Prog PlanLowering::flattenExpr(const std::vector<cg::Expr> &Subs,
                                   const ArrayStore &A,
                                   const bc::SlotConsts &Fixed) {
  assert(Subs.size() == A.rank() && "subscript arity mismatch");
  cg::Expr E = cg::Expr::constant(0);
  int64_t Stride = 1, LoOff = 0;
  for (unsigned D = 0; D != A.rank(); ++D) {
    E = cg::Expr::add(E, cg::Expr::mul(Subs[D], Stride));
    LoOff = addOv(LoOff, mulOv(A.lo(D), Stride));
    Stride = mulOv(Stride, A.extent(D));
  }
  E = cg::Expr::add(E, cg::Expr::constant(-LoOff));
  bc::Prog P = bc::compileExpr(E, Fixed);
  noteDepth(P);
  return P;
}

void PlanLowering::lowerInto(PlanAst &Out, const cg::AstNode &N,
                             const bc::SlotConsts &Fixed) {
  switch (N.K) {
  case cg::AstNode::Kind::Block:
    for (const cg::AstPtr &C : N.Children)
      lowerInto(Out, *C, Fixed);
    return;
  case cg::AstNode::Kind::Loop: {
    bc::Prog LB = bc::compileExpr(N.LB, Fixed);
    bc::Prog UB = bc::compileExpr(N.UB, Fixed);
    if (LB.isConst() && UB.isConst() && LB.constVal() > UB.constVal())
      return; // statically empty
    bc::Prog Step = bc::compileExpr(N.Step, Fixed);
    noteDepth(LB);
    noteDepth(UB);
    noteDepth(Step);
    PlanAst::Node Nd;
    Nd.K = PlanAst::Node::Kind::Loop;
    Nd.VarSlot = N.VarSlot;
    Nd.LB = static_cast<int32_t>(Out.Exprs.size());
    Out.Exprs.push_back(std::move(LB));
    Nd.UB = static_cast<int32_t>(Out.Exprs.size());
    Out.Exprs.push_back(std::move(UB));
    if (Step.isConst() && Step.constVal() == 1) {
      Nd.Step = -1;
    } else {
      Nd.Step = static_cast<int32_t>(Out.Exprs.size());
      Out.Exprs.push_back(std::move(Step));
    }
    size_t Me = Out.Nodes.size();
    Out.Nodes.push_back(Nd);
    for (const cg::AstPtr &C : N.Children)
      lowerInto(Out, *C, Fixed);
    if (Out.Nodes.size() == Me + 1) {
      Out.Nodes.pop_back(); // body folded away entirely
      return;
    }
    Out.Nodes[Me].SubtreeEnd = static_cast<uint32_t>(Out.Nodes.size());
    return;
  }
  case cg::AstNode::Kind::If: {
    std::vector<PlanGuard> Kept;
    for (const cg::Guard &G : N.AllOf) {
      if (G.isTrue())
        continue;
      PlanGuard PG;
      bool GuardTrue = false;
      for (const std::vector<cg::GuardAtom> &Conj : G.AnyOf) {
        std::vector<PlanAtom> PC;
        bool ConjFalse = false;
        for (const cg::GuardAtom &At : Conj) {
          bc::Prog E = bc::compileExpr(At.E, Fixed);
          if (E.isConst()) {
            if (!atomHolds(E.constVal(), At.K, At.Mod)) {
              ConjFalse = true;
              break;
            }
            continue; // statically true atom
          }
          noteDepth(E);
          PC.push_back({std::move(E), At.K, At.Mod});
        }
        if (ConjFalse)
          continue;
        if (PC.empty()) { // a statically true conjunct: guard is true
          GuardTrue = true;
          break;
        }
        PG.AnyOf.push_back(std::move(PC));
      }
      if (GuardTrue)
        continue;
      if (PG.AnyOf.empty())
        return; // every conjunct false: the branch is dead
      Kept.push_back(std::move(PG));
    }
    if (Kept.empty()) { // all guards statically true: splice children
      for (const cg::AstPtr &C : N.Children)
        lowerInto(Out, *C, Fixed);
      return;
    }
    PlanAst::Node Nd;
    Nd.K = PlanAst::Node::Kind::If;
    Nd.GuardBegin = static_cast<uint32_t>(Out.Guards.size());
    for (PlanGuard &PG : Kept)
      Out.Guards.push_back(std::move(PG));
    Nd.GuardEnd = static_cast<uint32_t>(Out.Guards.size());
    size_t Me = Out.Nodes.size();
    Out.Nodes.push_back(Nd);
    for (const cg::AstPtr &C : N.Children)
      lowerInto(Out, *C, Fixed);
    if (Out.Nodes.size() == Me + 1) {
      Out.Nodes.pop_back();
      return;
    }
    Out.Nodes[Me].SubtreeEnd = static_cast<uint32_t>(Out.Nodes.size());
    return;
  }
  case cg::AstNode::Kind::Leaf: {
    PlanAst::Node Nd;
    Nd.K = PlanAst::Node::Kind::Leaf;
    Nd.LeafId = N.LeafId;
    Nd.SubtreeEnd = static_cast<uint32_t>(Out.Nodes.size() + 1);
    Out.Nodes.push_back(Nd);
    return;
  }
  }
}

PlanNode PlanLowering::lowerNode(const SpmdNode &N,
                                 const bc::SlotConsts &Fixed) {
  PlanNode P;
  P.K = N.K;
  switch (N.K) {
  case SpmdNode::Kind::Seq:
    break;
  case SpmdNode::Kind::TimeLoop:
    P.SeqSlot = N.SeqSlot;
    P.SeqLo = bc::compileExpr(N.SeqLo, Fixed);
    P.SeqHi = bc::compileExpr(N.SeqHi, Fixed);
    noteDepth(P.SeqLo);
    noteDepth(P.SeqHi);
    break;
  case SpmdNode::Kind::Compute: {
    P.NativeComputeId = NextComputeId++;
    if (!N.Loops)
      break;
    lowerInto(P.Loops, *N.Loops, Fixed);
    // Parallel ranks need full per-element ownership on every written
    // array: unowned or replicated writes land on the same storage from
    // every rank and must replay the tree engine's sequential order.
    P.ParallelSafe = true;
    std::vector<int> Leaves;
    collectLeaves(*N.Loops, Leaves);
    for (int L : Leaves) {
      const ArrayStore &A =
          *B.Stores[B.ArrayIds.at(Prog.Stmts[L].WriteArray)];
      if (A.Owner.empty() ||
          std::any_of(A.Owner.begin(), A.Owner.end(),
                      [](int32_t O) { return O < 0; }))
        P.ParallelSafe = false;
    }
    break;
  }
  case SpmdNode::Kind::Send:
  case SpmdNode::Kind::Recv:
    P.EventId = N.EventId;
    break;
  case SpmdNode::Kind::Reduce:
    P.NativeReduceId = NextReduceId++;
    P.RedOp = N.RedOp;
    P.RedName = N.RedName;
    P.RedBytes = N.RedBytes;
    P.RedCost = N.RedCost;
    break;
  }
  for (const auto &C : N.Children)
    P.Children.push_back(lowerNode(*C, Fixed));
  return P;
}

void PlanLowering::run() {
  // Dense array ids in map order (deterministic).
  for (auto &[Name, Store] : *In.Arrays) {
    B.ArrayIds[Name] = static_cast<uint32_t>(Plan.ArrayNames.size());
    Plan.ArrayNames.push_back(Name);
    B.Stores.push_back(&Store);
  }

  // Slots whose values are fixed for the whole run: named in AllBindings
  // and never rebound by a loop, a TimeLoop, or the per-processor mv*/mc*
  // assignment.
  std::set<unsigned> TimeSlots, LoopSlots;
  if (Prog.Root)
    collectRebound(*Prog.Root, TimeSlots, LoopSlots);
  for (const CommEvent &Ev : Prog.Events) {
    if (Ev.SendLoops)
      collectLoopSlots(*Ev.SendLoops, LoopSlots);
    if (Ev.RecvLoops)
      collectLoopSlots(*Ev.RecvLoops, LoopSlots);
  }
  std::set<unsigned> Rebound = TimeSlots;
  Rebound.insert(LoopSlots.begin(), LoopSlots.end());
  Rebound.insert(Prog.MySlots.begin(), Prog.MySlots.end());
  Rebound.insert(Prog.CoordSlots.begin(), Prog.CoordSlots.end());
  bc::SlotConsts Fixed;
  for (unsigned S = 0; S != Prog.Vars.size(); ++S) {
    if (Rebound.count(S))
      continue;
    auto It = In.AllBindings->find(Prog.Vars.name(S));
    if (It != In.AllBindings->end())
      Fixed[S] = It->second;
  }

  for (const CompiledStmt &S : Prog.Stmts) {
    StmtPlan SP;
    SP.WriteArray = B.ArrayIds.at(S.WriteArray);
    SP.WriteFlat = flattenExpr(S.WriteSubs, *B.Stores[SP.WriteArray], Fixed);
    for (const CompiledStmt::Read &Rd : S.Reads) {
      StmtPlan::Read R;
      R.Array = B.ArrayIds.at(Rd.Array);
      R.Flat = flattenExpr(Rd.Subs, *B.Stores[R.Array], Fixed);
      SP.Reads.push_back(std::move(R));
    }
    SP.Cost = S.Cost;
    SP.SemanticsId = S.SemanticsId;
    Plan.Stmts.push_back(std::move(SP));
  }

  for (unsigned EI = 0; EI != Prog.Events.size(); ++EI) {
    const CommEvent &Ev = Prog.Events[EI];
    EventPlan EP;
    EP.Id = Ev.Id;
    EP.Array = B.ArrayIds.at(Ev.Array);
    EP.PartnerSlots = Ev.PartnerSlots;
    EP.ElemSlots = Ev.ElemSlots;
    EP.ElemBytes = B.Stores[EP.Array]->elemBytes();
    EP.InPlace = (*In.EventInPlace)[EI] != 0;
    if (Ev.SendLoops)
      lowerInto(EP.Send, *Ev.SendLoops, Fixed);
    if (Ev.RecvLoops)
      lowerInto(EP.Recv, *Ev.RecvLoops, Fixed);
    std::vector<cg::Expr> ElemSubs;
    for (unsigned S : Ev.ElemSlots)
      ElemSubs.push_back(cg::Expr::var(S, Prog.Vars.name(S)));
    EP.ElemFlat = flattenExpr(ElemSubs, *B.Stores[EP.Array], Fixed);

    // Cacheable iff no free slot of either nest is a TimeLoop variable:
    // then the enumerated lists are identical every execution.
    std::set<unsigned> Used;
    addUsedSlots(EP.Send, Used);
    addUsedSlots(EP.Recv, Used);
    addUsedSlots(EP.ElemFlat, Used);
    Used.insert(EP.PartnerSlots.begin(), EP.PartnerSlots.end());
    Used.insert(EP.ElemSlots.begin(), EP.ElemSlots.end());
    std::set<unsigned> Bound;
    for (const PlanAst *A : {&EP.Send, &EP.Recv})
      for (const PlanAst::Node &Nd : A->Nodes)
        if (Nd.K == PlanAst::Node::Kind::Loop)
          Bound.insert(Nd.VarSlot);
    EP.Cacheable = true;
    for (unsigned S : Used)
      if (!Bound.count(S) && TimeSlots.count(S))
        EP.Cacheable = false;
    Plan.Events.push_back(std::move(EP));
  }

  for (unsigned D = 0; D != Prog.ProcDims.size(); ++D) {
    const VPDimInfo &Info = Prog.ProcDims[D];
    DimPlan DP;
    DP.Kind = Info.Kind;
    DP.Virtualized = Info.Virtualized;
    DP.TmplLo = Info.TmplLo;
    DP.CyclicK = Info.CyclicK;
    DP.Extent = (*In.ProcShape)[D];
    if (Info.Virtualized && Info.Kind == DistSpec::Kind::Block)
      DP.Block = Info.BlockParam.empty()
                     ? Info.BlockFixed
                     : In.AllBindings->at(Info.BlockParam);
    Plan.Dims.push_back(DP);
  }

  if (Prog.Root)
    Plan.Root = lowerNode(*Prog.Root, Fixed);
}

} // namespace

PlanBuild spmd::buildExecPlan(const SpmdProgram &Prog,
                              const PlanBuildInputs &In) {
  PlanBuild B;
  PlanLowering(Prog, In, B).run();
  return B;
}

PlanExecutor::PlanExecutor(const SpmdProgram &ProgIn, Interpreter &IIn,
                           unsigned Threads, EngineKind Engine)
    : Prog(ProgIn), I(IIn), NP(IIn.NumProcs) {
  {
    PlanBuild B = buildExecPlan(
        Prog, {&I.Arrays, &I.AllBindings, &I.ProcShape, &I.EventInPlace});
    Plan = std::move(B.Plan);
    ArrayIds = std::move(B.ArrayIds);
    Stores = std::move(B.Stores);
  }
  PerProc.resize(NP);
  for (Scratch &S : PerProc) {
    S.Stack.assign(Plan.StackDepth + 1, 0);
    S.PartnerPos.assign(NP, -1);
  }
  SendCache.assign(Plan.Events.size(), std::vector<SideCache>(NP));
  RecvCache.assign(Plan.Events.size(), std::vector<SideCache>(NP));
  OvV.assign(NP, std::vector<std::unordered_map<int64_t, double>>(
                     Plan.ArrayNames.size()));
  PdV.assign(NP, std::vector<std::unordered_map<int64_t, double>>(
                     Plan.ArrayNames.size()));
  if (Threads > 1 && NP > 1)
    Pool = std::make_unique<ThreadPool>(Threads - 1);
  if (Engine == EngineKind::Native)
    setupNative();
}

PlanExecutor::~PlanExecutor() = default;

//===----------------------------------------------------------------------===//
// Native engine state
//===----------------------------------------------------------------------===//

/// The per-executor native state: the loaded kernel table, stable array
/// tables, and one DhpfCtx per processor rank. Kernels call back into the
/// executor through the static trampolines below; Ctx keeps the C context
/// as its first member so a DhpfCtx* converts back to the full record.
struct PlanExecutor::NativeState {
  const native::Kernel *Kern = nullptr;
  const DhpfKernelTable *T = nullptr;

  // Shared per-array tables (pointers into the Interpreter's stores; array
  // shapes are fixed before the executor is constructed).
  std::vector<double *> Data;
  std::vector<const int32_t *> Owner;
  std::vector<int64_t> Size;
  /// Per-leaf Cost * SecPerWork: the kernel adds this one precomputed
  /// product per statement instance, exactly sim::Machine::addCompute's
  /// arithmetic, so simulated clocks stay bit-identical.
  std::vector<double> LeafCostSec;

  struct Ctx {
    DhpfCtx C = {}; // must stay first (standard-layout cast target)
    PlanExecutor *PE = nullptr;
    unsigned P = 0;
  };
  std::vector<Ctx> Procs;
  std::vector<std::vector<double>> ReadBufs; // per proc, MaxReads wide

  static Ctx *of(DhpfCtx *C) { return reinterpret_cast<Ctx *>(C); }

  static double readSlow(DhpfCtx *C, int32_t A, int64_t F) {
    Ctx *X = of(C);
    return X->PE->readFast(X->P, static_cast<uint32_t>(A), F,
                           X->PE->PerProc[X->P]);
  }
  static void writeSlow(DhpfCtx *C, int32_t A, int64_t F, double V) {
    Ctx *X = of(C);
    X->PE->writeFast(X->P, static_cast<uint32_t>(A), F, V);
  }
  static double stmt(DhpfCtx *C, int32_t Leaf, int32_t N) {
    Ctx *X = of(C);
    return X->PE->nativeStmt(X->P, Leaf, N, C->Reads);
  }
  static void progress(DhpfCtx *) {} // in-process: nothing to pump
  static void growPairs(DhpfCtx *C) {
    Ctx *X = of(C);
    Scratch &S = X->PE->PerProc[X->P];
    size_t Cap = S.RawQ.empty() ? 256 : S.RawQ.size() * 2;
    S.RawQ.resize(Cap);
    S.RawF.resize(Cap);
    C->PairQ = S.RawQ.data();
    C->PairF = S.RawF.data();
    C->CapPairs = Cap;
  }
};

double PlanExecutor::nativeStmt(unsigned P, int32_t Leaf, int32_t N,
                                const double *Reads) {
  Scratch &S = PerProc[P];
  S.Reads.assign(Reads, Reads + N);
  const StmtFn *Fn = Sems[Leaf];
  assert(Fn && "statement without semantics");
  return (*Fn)(S.Reads, I.Env[P], I.Accums[P]);
}

void PlanExecutor::setupNative() {
  native::PlanSource Src;
  {
    obs::TraceSpan Span(&obs::TraceBuffer::global(), "native:emit",
                        "spmd.native");
    Src = native::emitPlanSource(Plan);
  }
  std::string Err;
  const native::Kernel *K = native::KernelCache::global().get(Src, &Err);
  if (!K) {
    std::fprintf(stderr,
                 "dhpf: native engine unavailable, falling back to "
                 "bytecode: %s\n",
                 Err.c_str());
    obs::MetricsRegistry::global().counter("spmd.native.fallbacks")->inc();
    return;
  }
  auto NS = std::make_unique<NativeState>();
  NS->Kern = K;
  NS->T = K->Table;
  for (ArrayStore *A : Stores) {
    NS->Data.push_back(A->data());
    NS->Owner.push_back(A->Owner.empty() ? nullptr : A->Owner.data());
    NS->Size.push_back(static_cast<int64_t>(A->size()));
  }
  const double SPW = I.Config.Machine.SecPerWork;
  for (const StmtPlan &SP : Plan.Stmts)
    NS->LeafCostSec.push_back(SP.Cost * SPW);
  NS->ReadBufs.assign(
      NP, std::vector<double>(Src.MaxReads ? Src.MaxReads : 1, 0.0));
  NS->Procs.resize(NP);
  for (unsigned P = 0; P != NP; ++P) {
    NativeState::Ctx &X = NS->Procs[P];
    X.PE = this;
    X.P = P;
    DhpfCtx &C = X.C;
    C.Host = &X;
    C.Me = static_cast<int32_t>(P);
    C.NumArrays = static_cast<int32_t>(Stores.size());
    C.Data = NS->Data.data();
    C.Owner = NS->Owner.data();
    C.Size = NS->Size.data();
    C.Reads = NS->ReadBufs[P].data();
    C.LeafCostSec = NS->LeafCostSec.data();
    C.Clock = &I.Mach.clockRef(P);
    C.Stmts = &PerProc[P].Stmts;
    C.ProgressCtr = 0;
    C.ProgressEvery = ~0ull; // in-process: no transport to pump
    C.ReadSlow = &NativeState::readSlow;
    C.WriteSlow = &NativeState::writeSlow;
    C.Stmt = &NativeState::stmt;
    C.Progress = &NativeState::progress;
    C.PairQ = nullptr; // bound per event enumeration
    C.PairF = nullptr;
    C.NumPairs = 0;
    C.CapPairs = 0;
    C.GrowPairs = &NativeState::growPairs;
  }
  Native = std::move(NS);
}

//===----------------------------------------------------------------------===//
// Plan walking
//===----------------------------------------------------------------------===//

bool PlanExecutor::guardHolds(const PlanGuard &G, const int64_t *Regs,
                              int64_t *Stack) const {
  for (const std::vector<PlanAtom> &Conj : G.AnyOf) {
    bool All = true;
    for (const PlanAtom &At : Conj)
      if (!atomHolds(At.E.eval(Regs, Stack), At.K, At.Mod)) {
        All = false;
        break;
      }
    if (All)
      return true;
  }
  return false;
}

template <typename LeafFn>
void PlanExecutor::walk(const PlanAst &A, uint32_t Idx, int64_t *Regs,
                        int64_t *Stack, const LeafFn &F) const {
  const PlanAst::Node &N = A.Nodes[Idx];
  switch (N.K) {
  case PlanAst::Node::Kind::Loop: {
    int64_t Lo = A.Exprs[N.LB].eval(Regs, Stack);
    int64_t Hi = A.Exprs[N.UB].eval(Regs, Stack);
    int64_t Step = N.Step < 0 ? 1 : A.Exprs[N.Step].eval(Regs, Stack);
    assert(Step > 0 && "loop step must be positive");
    int64_t Saved = Regs[N.VarSlot];
    for (int64_t V = Lo; V <= Hi; V += Step) {
      Regs[N.VarSlot] = V;
      for (uint32_t C = Idx + 1; C != N.SubtreeEnd; C = A.Nodes[C].SubtreeEnd)
        walk(A, C, Regs, Stack, F);
    }
    Regs[N.VarSlot] = Saved;
    return;
  }
  case PlanAst::Node::Kind::If:
    for (uint32_t G = N.GuardBegin; G != N.GuardEnd; ++G)
      if (!guardHolds(A.Guards[G], Regs, Stack))
        return;
    for (uint32_t C = Idx + 1; C != N.SubtreeEnd; C = A.Nodes[C].SubtreeEnd)
      walk(A, C, Regs, Stack, F);
    return;
  case PlanAst::Node::Kind::Leaf:
    F(N.LeafId, Regs);
    return;
  }
}

template <typename LeafFn>
void PlanExecutor::walkAll(const PlanAst &A, int64_t *Regs, int64_t *Stack,
                           const LeafFn &F) const {
  for (uint32_t C = 0; C < A.Nodes.size(); C = A.Nodes[C].SubtreeEnd)
    walk(A, C, Regs, Stack, F);
}

template <typename Fn> void PlanExecutor::forProcs(bool Parallel, Fn &&F) {
  if (Parallel && Pool && NP > 1) {
    Pool->parallelFor(NP, [&](size_t P) { F(static_cast<unsigned>(P)); });
    return;
  }
  for (unsigned P = 0; P != NP; ++P)
    F(P);
}

/// Replays per-processor buffered violations and statement counts into the
/// shared result, in processor order (matching the tree engine's sequential
/// execution order exactly).
void PlanExecutor::mergeScratch() {
  for (unsigned P = 0; P != NP; ++P) {
    Scratch &S = PerProc[P];
    I.Result.StmtInstances += S.Stmts;
    S.Stmts = 0;
    for (const std::string &M : S.Viol)
      I.violation(M);
    S.Viol.clear();
  }
}

//===----------------------------------------------------------------------===//
// Element access
//===----------------------------------------------------------------------===//

double PlanExecutor::readFast(unsigned P, uint32_t AId, int64_t Flat,
                              Scratch &S) {
  ArrayStore &A = *Stores[AId];
  assert(Flat >= 0 && Flat < static_cast<int64_t>(A.size()) &&
         "flat subscript out of bounds");
  if (A.Owner.empty() || A.Owner[Flat] == static_cast<int32_t>(P) ||
      A.Owner[Flat] < 0)
    return A.at(Flat);
  auto &Ov = OvV[P][AId];
  auto It = Ov.find(Flat);
  if (It != Ov.end())
    return It->second;
  auto &Pd = PdV[P][AId];
  auto It2 = Pd.find(Flat);
  if (It2 != Pd.end())
    return It2->second;
  if (I.Config.CheckValidity && S.Viol.size() < 20)
    S.Viol.push_back("proc " + std::to_string(P) + " read unreceived element " +
                     std::to_string(Flat) + " of " + Plan.ArrayNames[AId]);
  return A.at(Flat);
}

void PlanExecutor::writeFast(unsigned P, uint32_t AId, int64_t Flat,
                             double V) {
  ArrayStore &A = *Stores[AId];
  assert(Flat >= 0 && Flat < static_cast<int64_t>(A.size()) &&
         "flat subscript out of bounds");
  if (A.Owner.empty() || A.Owner[Flat] == static_cast<int32_t>(P) ||
      A.Owner[Flat] < 0) {
    A.at(Flat) = V;
    return;
  }
  PdV[P][AId][Flat] = V;
}

//===----------------------------------------------------------------------===//
// Event execution
//===----------------------------------------------------------------------===//

void PlanExecutor::buildLists(const PlanAst &A, const EventPlan &EP,
                              unsigned P, std::vector<PartnerList> &Lists,
                              bool RecvSide) {
  Scratch &S = PerProc[P];
  if (Native && Native->T) {
    // Native enumeration: the kernel folds the realVP check and rank
    // mapping to constants and fills RawQ/RawF through the pair buffer.
    size_t EIdx = static_cast<size_t>(&EP - Plan.Events.data());
    NativeState::Ctx &X = Native->Procs[P];
    if (S.RawQ.empty()) {
      S.RawQ.resize(256);
      S.RawF.resize(256);
    }
    X.C.PairQ = S.RawQ.data();
    X.C.PairF = S.RawF.data();
    X.C.NumPairs = 0;
    X.C.CapPairs = S.RawQ.size();
    DhpfEnumFn Fn =
        RecvSide ? Native->T->EventRecv[EIdx] : Native->T->EventSend[EIdx];
    Fn(&X.C, I.Env[P].data());
    S.RawLen = X.C.NumPairs;
  } else {
    S.RawQ.clear();
    S.RawF.clear();
    const unsigned ND = static_cast<unsigned>(EP.PartnerSlots.size());
    std::vector<int64_t> PT(ND);
    int64_t *Stack = S.Stack.data();
    walkAll(A, I.Env[P].data(), Stack,
            [&](int32_t, const int64_t *Regs) {
              for (unsigned D = 0; D != ND; ++D)
                PT[D] = Regs[EP.PartnerSlots[D]];
              if (!isRealVP(PT.data()))
                return; // fictitious virtual processor
              unsigned Q = rankOfPartner(PT.data());
              if (Q == P)
                return; // VP neighbours on the same physical processor
              S.RawQ.push_back(Q);
              S.RawF.push_back(EP.ElemFlat.eval(Regs, Stack));
            });
    S.RawLen = S.RawQ.size();
  }
  // Group per partner in first-appearance order (the tree engine's message
  // order), then dedup by sort+unique: union conjuncts in the comm sets may
  // enumerate an element twice.
  Lists.clear();
  for (size_t R = 0; R != S.RawLen; ++R) {
    const unsigned Q = S.RawQ[R];
    const int64_t F = S.RawF[R];
    if (S.PartnerPos[Q] < 0) {
      S.PartnerPos[Q] = static_cast<int32_t>(Lists.size());
      PartnerList PL;
      PL.Q = Q;
      PL.Flats = std::make_shared<std::vector<int64_t>>();
      Lists.push_back(std::move(PL));
    }
    Lists[S.PartnerPos[Q]].Flats->push_back(F);
  }
  const ArrayStore &Arr = *Stores[EP.Array];
  for (PartnerList &PL : Lists) {
    S.PartnerPos[PL.Q] = -1;
    std::vector<int64_t> &V = *PL.Flats;
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
    assert(V.front() >= 0 && V.back() < static_cast<int64_t>(Arr.size()) &&
           "flat subscript out of bounds");
    PL.Base = V.front();
    PL.Contig = V.back() - V.front() + 1 == static_cast<int64_t>(V.size());
    bool AnyLocal = false, AnyRemote = false;
    for (int64_t F : V) {
      bool Local =
          RecvSide ? !Arr.Owner.empty() &&
                         Arr.Owner[F] == static_cast<int32_t>(P)
                   : Arr.Owner.empty() || Arr.Owner[F] < 0 ||
                         Arr.Owner[F] == static_cast<int32_t>(P);
      (Local ? AnyLocal : AnyRemote) = true;
      if (AnyLocal && AnyRemote)
        break;
    }
    PL.Own = AnyRemote ? (AnyLocal ? PartnerList::OwnClass::Mixed
                                   : PartnerList::OwnClass::NoneLocal)
                       : PartnerList::OwnClass::AllLocal;
  }
}

void PlanExecutor::runSend(const PlanNode &N) {
  EventPlan &EP = Plan.Events[N.EventId];
  ArrayStore &Arr = *Stores[EP.Array];
  const std::string &ArrName = Plan.ArrayNames[EP.Array];
  forProcs(true, [&](unsigned P) {
    Scratch &S = PerProc[P];
    std::vector<PartnerList> *L;
    if (EP.Cacheable) {
      SideCache &C = SendCache[N.EventId][P];
      if (!C.Built) {
        buildLists(EP.Send, EP, P, C.Partners, /*RecvSide=*/false);
        C.Built = true;
      }
      L = &C.Partners;
    } else {
      buildLists(EP.Send, EP, P, S.Lists, /*RecvSide=*/false);
      L = &S.Lists;
    }
    S.Out.clear();
    S.OutQ.clear();
    for (const PartnerList &PL : *L) {
      const std::vector<int64_t> &F = *PL.Flats;
      Payload Pay;
      Pay.Base = PL.Base;
      Pay.Contig = PL.Contig;
      Pay.Span = PL.Own == PartnerList::OwnClass::AllLocal && PL.Contig;
      Pay.Vals.resize(F.size());
      if (PL.Own == PartnerList::OwnClass::AllLocal && PL.Contig) {
        // Zero-copy span gather: the Section 3.3 analysis promised this
        // shape; memcpy straight out of the store (via the kernel's pack
        // body when the native engine is live).
        if (Native && Native->T)
          Native->T->CopySpan(Pay.Vals.data(), Arr.data() + PL.Base,
                              F.size());
        else
          std::copy_n(Arr.data() + PL.Base, F.size(), Pay.Vals.data());
      } else if (PL.Own == PartnerList::OwnClass::AllLocal) {
        if (Native && Native->T)
          Native->T->Gather(Pay.Vals.data(), Arr.data(), F.data(), F.size());
        else
          for (size_t K = 0; K != F.size(); ++K)
            Pay.Vals[K] = Arr.at(F[K]);
      } else {
        auto &Pd = PdV[P][EP.Array];
        for (size_t K = 0; K != F.size(); ++K) {
          int64_t Fl = F[K];
          if (Arr.Owner.empty() || Arr.Owner[Fl] < 0 ||
              Arr.Owner[Fl] == static_cast<int32_t>(P)) {
            Pay.Vals[K] = Arr.at(Fl); // forwarding data I own (read comm)
            continue;
          }
          auto It = Pd.find(Fl);
          if (It == Pd.end()) {
            if (S.Viol.size() < 20)
              S.Viol.push_back("proc " + std::to_string(P) +
                               " sends unwritten non-local element of " +
                               ArrName);
            Pay.Vals[K] = Arr.at(Fl);
          } else {
            Pay.Vals[K] = It->second; // transmitting a non-local write
          }
        }
      }
      if (!PL.Contig)
        Pay.Flats = PL.Flats;
      S.Out.push_back(std::move(Pay));
      S.OutQ.push_back(PL.Q);
    }
  });
  // Sequential merge in processor order: simulator clocks, message
  // counters and payload queues see exactly the tree engine's sequence.
  for (unsigned P = 0; P != NP; ++P) {
    Scratch &S = PerProc[P];
    for (const std::string &M : S.Viol)
      I.violation(M);
    S.Viol.clear();
    for (size_t K = 0; K != S.Out.size(); ++K) {
      Payload &Pay = S.Out[K];
      if (Pay.Span)
        ++I.Result.SpanCopies;
      else
        ++I.Result.PackedCopies;
      uint64_t Bytes = Pay.count() * Arr.elemBytes();
      uint64_t PackBytes = EP.InPlace ? 0 : Bytes;
      I.Mach.send(P, S.OutQ[K], static_cast<uint64_t>(EP.Id), Bytes,
                  PackBytes);
      Payloads[{P, S.OutQ[K], EP.Id}].push(std::move(Pay));
    }
    S.Out.clear();
    S.OutQ.clear();
  }
}

void PlanExecutor::runRecv(const PlanNode &N) {
  EventPlan &EP = Plan.Events[N.EventId];
  ArrayStore &Arr = *Stores[EP.Array];
  // Phase 1 (parallel): enumerate each receiver's expected element lists.
  forProcs(true, [&](unsigned P) {
    if (EP.Cacheable) {
      SideCache &C = RecvCache[N.EventId][P];
      if (!C.Built) {
        buildLists(EP.Recv, EP, P, C.Partners, /*RecvSide=*/true);
        C.Built = true;
      }
    } else {
      buildLists(EP.Recv, EP, P, PerProc[P].Lists, /*RecvSide=*/true);
    }
  });
  // Phase 2 (sequential): match payloads, advance clocks, apply values.
  for (unsigned P = 0; P != NP; ++P) {
    std::vector<PartnerList> &L = EP.Cacheable
                                      ? RecvCache[N.EventId][P].Partners
                                      : PerProc[P].Lists;
    auto &Ov = OvV[P][EP.Array];
    for (const PartnerList &PL : L) {
      const std::vector<int64_t> &Exp = *PL.Flats;
      auto PIt = Payloads.find({PL.Q, P, EP.Id});
      if (PIt == Payloads.end() || PIt->second.empty()) {
        I.violation("proc " + std::to_string(P) + " expects a message from " +
                    std::to_string(PL.Q) + " for event " +
                    std::to_string(EP.Id) + " that was never sent");
        continue;
      }
      Payload Pay = std::move(PIt->second.front());
      PIt->second.pop();
      if (PIt->second.empty())
        Payloads.erase(PIt);
      I.Mach.recv(PL.Q, P, static_cast<uint64_t>(EP.Id),
                  EP.InPlace ? 0 : Pay.count() * Arr.elemBytes());
      if (Pay.count() != Exp.size())
        I.violation("message size mismatch for event " + std::to_string(EP.Id) +
                    " (" + std::to_string(Pay.count()) + " sent vs " +
                    std::to_string(Exp.size()) + " expected)");
      auto Apply = [&](int64_t F, double V) {
        if (!Arr.Owner.empty() && Arr.Owner[F] == static_cast<int32_t>(P))
          Arr.at(F) = V; // a remote write reaching its owner
        else
          Ov[F] = V;
      };
      auto Missing = [&] {
        I.violation("expected element missing from message (event " +
                    std::to_string(EP.Id) + ")");
      };
      if (Pay.Contig && PL.Contig && Pay.Base == PL.Base &&
          Pay.count() == Exp.size() &&
          PL.Own == PartnerList::OwnClass::AllLocal) {
        // Zero-copy span apply: unpack is a single memcpy into the store.
        if (Native && Native->T)
          Native->T->CopySpan(Arr.data() + PL.Base, Pay.Vals.data(),
                              Pay.count());
        else
          std::copy_n(Pay.Vals.data(), Pay.count(), Arr.data() + PL.Base);
      } else if (Pay.Contig) {
        int64_t Cnt = static_cast<int64_t>(Pay.count());
        for (int64_t F : Exp) {
          int64_t Idx = F - Pay.Base;
          if (Idx < 0 || Idx >= Cnt)
            Missing();
          else
            Apply(F, Pay.Vals[Idx]);
        }
      } else {
        // Merge-join of two sorted lists (expected vs delivered).
        const std::vector<int64_t> &PF = *Pay.Flats;
        size_t J = 0;
        for (int64_t F : Exp) {
          while (J != PF.size() && PF[J] < F)
            ++J;
          if (J == PF.size() || PF[J] != F)
            Missing();
          else
            Apply(F, Pay.Vals[J]);
        }
      }
    }
  }
}

void PlanExecutor::runCompute(const PlanNode &N) {
  if (Native && Native->T && N.NativeComputeId >= 0) {
    // The compiled loop nest performs the identical sequence of reads,
    // statement calls, stores, clock bumps, and instance counts; slow
    // paths (non-local elements) come back through the trampolines.
    const DhpfComputeFn Fn = Native->T->Compute[N.NativeComputeId];
    forProcs(N.ParallelSafe,
             [&](unsigned P) { Fn(&Native->Procs[P].C, I.Env[P].data()); });
    mergeScratch();
    return;
  }
  forProcs(N.ParallelSafe, [&](unsigned P) {
    Scratch &S = PerProc[P];
    int64_t *Regs = I.Env[P].data();
    int64_t *Stack = S.Stack.data();
    walkAll(N.Loops, Regs, Stack, [&](int32_t Leaf, const int64_t *R) {
      const StmtPlan &SP = Plan.Stmts[Leaf];
      S.Reads.clear();
      for (const StmtPlan::Read &Rd : SP.Reads)
        S.Reads.push_back(readFast(P, Rd.Array, Rd.Flat.eval(R, Stack), S));
      const StmtFn *Fn = Sems[Leaf];
      assert(Fn && "statement without semantics");
      double V = (*Fn)(S.Reads, I.Env[P], I.Accums[P]);
      writeFast(P, SP.WriteArray, SP.WriteFlat.eval(R, Stack), V);
      I.Mach.addCompute(P, SP.Cost);
      ++S.Stmts;
    });
  });
  mergeScratch();
}

void PlanExecutor::runReduce(const PlanNode &N) {
  double Combined = N.RedOp == SpmdNode::ReduceOp::Max
                        ? -std::numeric_limits<double>::infinity()
                        : 0.0;
  std::vector<double *> Slot(NP);
  if (Native && Native->T && N.NativeReduceId >= 0) {
    // The kernel combine body folds in processor order with the exact
    // same floating-point operation sequence as the loop below.
    std::vector<double> Vals(NP);
    for (unsigned P = 0; P != NP; ++P) {
      double &V = I.Accums[P][N.RedName];
      Slot[P] = &V;
      Vals[P] = V;
    }
    Combined = Native->T->Reduce[N.NativeReduceId](Vals.data(), NP);
  } else
    for (unsigned P = 0; P != NP; ++P) {
      double &V = I.Accums[P][N.RedName];
      Slot[P] = &V;
      Combined = N.RedOp == SpmdNode::ReduceOp::Max ? std::max(Combined, V)
                                                    : Combined + V;
    }
  for (unsigned P = 0; P != NP; ++P)
    *Slot[P] = Combined;
  I.Mach.allReduce(N.RedBytes);
  I.Mach.addCompute(0, N.RedCost);
  I.Result.FinalAccums[N.RedName] = Combined;
}

void PlanExecutor::runNode(const PlanNode &N) {
  ++Dispatch[static_cast<size_t>(N.K)];
  switch (N.K) {
  case SpmdNode::Kind::Seq:
    for (const PlanNode &C : N.Children)
      runNode(C);
    break;
  case SpmdNode::Kind::TimeLoop: {
    int64_t *Stack = PerProc[0].Stack.data();
    int64_t Lo = N.SeqLo.eval(I.Env[0].data(), Stack);
    int64_t Hi = N.SeqHi.eval(I.Env[0].data(), Stack);
    for (int64_t V = Lo; V <= Hi; ++V) {
      for (unsigned P = 0; P != NP; ++P)
        I.Env[P][N.SeqSlot] = V;
      for (const PlanNode &C : N.Children)
        runNode(C);
    }
    break;
  }
  case SpmdNode::Kind::Compute:
    runCompute(N);
    break;
  case SpmdNode::Kind::Send:
    runSend(N);
    break;
  case SpmdNode::Kind::Recv:
    runRecv(N);
    break;
  case SpmdNode::Kind::Reduce:
    runReduce(N);
    break;
  }
}

RunResult PlanExecutor::run() {
  Sems.assign(Plan.Stmts.size(), nullptr);
  for (size_t K = 0; K != Plan.Stmts.size(); ++K) {
    auto It = I.Semantics.find(Plan.Stmts[K].SemanticsId);
    if (It != I.Semantics.end())
      Sems[K] = &It->second;
  }
  if (Prog.Root)
    runNode(Plan.Root);
  if (!Payloads.empty())
    I.violation("unconsumed messages remain (send/recv sets are not dual)");
  I.Result.ElapsedSeconds = I.Mach.elapsed();
  I.Result.Messages = I.Mach.totalMessages();
  I.Result.Bytes = I.Mach.totalBytes();
  if (obs::compiledIn()) {
    // Flushed once per run — the dispatch loop itself stays probe-free.
    static const char *KindNames[6] = {"seq",  "time_loop", "compute",
                                       "send", "recv",      "reduce"};
    obs::MetricsRegistry &R = obs::MetricsRegistry::global();
    for (size_t K = 0; K != 6; ++K)
      if (Dispatch[K])
        R.counter(std::string("spmd.bytecode.dispatch.") + KindNames[K])
            ->inc(Dispatch[K]);
  }
  return I.Result;
}

//===----------------------------------------------------------------------===//
// Virtual-processor mapping (pre-resolved DimPlan forms)
//===----------------------------------------------------------------------===//

bool PlanExecutor::isRealVP(const int64_t *PT) const {
  for (unsigned D = 0; D != Plan.Dims.size(); ++D) {
    const DimPlan &DP = Plan.Dims[D];
    if (!DP.Virtualized)
      continue;
    int64_t Off = PT[D] - DP.TmplLo;
    switch (DP.Kind) {
    case DistSpec::Kind::Block:
      if (floorMod(Off, DP.Block) != 0 || Off / DP.Block >= DP.Extent)
        return false; // fictitious: not a block start, or past the array
      break;
    case DistSpec::Kind::Cyclic:
      break; // every template cell is a real VP
    case DistSpec::Kind::CyclicK:
      if (floorMod(Off, DP.CyclicK) != 0)
        return false; // not a block start
      break;
    case DistSpec::Kind::Star:
      break;
    }
  }
  return true;
}

unsigned PlanExecutor::rankOfPartner(const int64_t *PT) const {
  int64_t R = 0, M = 1;
  for (unsigned D = 0; D != Plan.Dims.size(); ++D) {
    const DimPlan &DP = Plan.Dims[D];
    int64_t C = 0;
    if (!DP.Virtualized) {
      C = PT[D];
    } else {
      switch (DP.Kind) {
      case DistSpec::Kind::Block:
        C = (PT[D] - DP.TmplLo) / DP.Block;
        break;
      case DistSpec::Kind::Cyclic:
        C = floorMod(PT[D] - DP.TmplLo, DP.Extent);
        break;
      case DistSpec::Kind::CyclicK:
        C = floorMod((PT[D] - DP.TmplLo) / DP.CyclicK, DP.Extent);
        break;
      case DistSpec::Kind::Star:
        break;
      }
    }
    assert(C >= 0 && C < DP.Extent && "partner coordinate out of range");
    R += C * M;
    M *= DP.Extent;
  }
  return static_cast<unsigned>(R);
}
