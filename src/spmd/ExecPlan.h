//===- spmd/ExecPlan.h - Lowered SPMD execution plan ----------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode execution engine: a load-time lowering pass that walks a
/// compiled SpmdProgram once and produces a flat, fully pre-resolved plan,
/// plus the executor that runs it. Lowering resolves array names to dense
/// ids with cached stores and precomputed strides (subscript tuples become
/// one fused flatten expression), compiles every Expr to postfix bytecode
/// (Bytecode.h) with run-constant slots folded, drops statically dead
/// guards and loops, and precomputes the per-dimension virtual-processor
/// mapping with block sizes bound to constants.
///
/// The executor preserves the tree interpreter's observable behaviour
/// bit-for-bit (array state, message traffic, simulated clocks, violation
/// reports) while restructuring the hot paths:
///
///  - per-partner element lists are sorted flat vectors (dedup by
///    sort+unique instead of per-element ordered-set insertion), built once
///    and reused across time steps when the event's loop nest does not
///    depend on a sequential loop variable;
///  - packing is zero-copy where the Section 3.3 analysis proved (or the
///    runtime check upgraded) contiguity: a message is a base + count span
///    of the array store, gathered and applied with std::copy;
///  - independent processor ranks of an event run in parallel on a
///    ThreadPool, with all shared-state mutation (simulator clocks, payload
///    queues, violations) replayed in processor order afterwards, so the
///    result is identical for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_EXECPLAN_H
#define DHPF_SPMD_EXECPLAN_H

#include "spmd/Bytecode.h"
#include "spmd/Interp.h"
#include "spmd/SpmdProgram.h"
#include "support/ThreadPool.h"

#include <map>
#include <memory>
#include <queue>
#include <tuple>
#include <vector>

namespace dhpf {
namespace spmd {

/// One lowered guard atom; Kind/Mod mirror cg::GuardAtom.
struct PlanAtom {
  bc::Prog E;
  cg::GuardAtom::Kind K = cg::GuardAtom::Kind::NonNeg;
  int64_t Mod = 0;
};

/// A guard in DNF; statically true atoms/conjuncts are folded away at
/// lowering time, so an empty AnyOf here means "false" was impossible and
/// the guard was dropped entirely.
struct PlanGuard {
  std::vector<std::vector<PlanAtom>> AnyOf;
};

/// A generated loop nest lowered to a flat preorder array. Each node knows
/// the index one past its subtree, so child iteration needs no pointers.
struct PlanAst {
  struct Node {
    enum class Kind : uint8_t { Loop, If, Leaf };
    Kind K = Kind::Leaf;
    unsigned VarSlot = 0;               // Loop
    int32_t LB = -1, UB = -1, Step = -1; // Loop: Exprs index; Step<0 => 1
    uint32_t GuardBegin = 0, GuardEnd = 0; // If: range in Guards
    int32_t LeafId = -1;                // Leaf
    uint32_t SubtreeEnd = 0;
  };
  std::vector<Node> Nodes; // forest in preorder
  std::vector<bc::Prog> Exprs;
  std::vector<PlanGuard> Guards;
};

/// One compiled statement with subscripts fused into flat-index bytecode.
struct StmtPlan {
  uint32_t WriteArray = 0;
  bc::Prog WriteFlat;
  struct Read {
    uint32_t Array = 0;
    bc::Prog Flat;
  };
  std::vector<Read> Reads;
  double Cost = 1.0;
  int SemanticsId = -1;
};

/// One lowered communication event.
struct EventPlan {
  int Id = -1;
  uint32_t Array = 0;
  PlanAst Send, Recv;
  std::vector<unsigned> PartnerSlots, ElemSlots;
  bc::Prog ElemFlat; // flat element index from the leaf environment
  /// True when neither loop nest reads a sequential-loop variable, so the
  /// enumerated (partner, element) lists are identical every execution.
  bool Cacheable = false;
  /// Effective in-place flag (compile-proven or runtime-upgraded).
  bool InPlace = false;
  unsigned ElemBytes = 8;
};

/// A node of the lowered program tree.
struct PlanNode {
  SpmdNode::Kind K = SpmdNode::Kind::Seq;
  // TimeLoop
  unsigned SeqSlot = 0;
  bc::Prog SeqLo, SeqHi;
  // Compute
  PlanAst Loops;
  /// Every written array has full per-element ownership, so distinct ranks
  /// touch distinct elements and may run concurrently.
  bool ParallelSafe = false;
  // Send/Recv
  int EventId = -1;
  // Reduce
  SpmdNode::ReduceOp RedOp = SpmdNode::ReduceOp::Sum;
  std::string RedName;
  uint64_t RedBytes = 8;
  double RedCost = 1.0;
  /// Native-engine kernel indices, assigned by buildExecPlan in preorder
  /// (every Compute/Reduce node gets one, so the i-th Compute SpmdNode in
  /// preorder maps to compute kernel i — rt::RankEngine relies on this).
  int32_t NativeComputeId = -1; // Compute
  int32_t NativeReduceId = -1;  // Reduce
  std::vector<PlanNode> Children;
};

/// Per-dimension processor mapping with run-time bindings pre-resolved.
struct DimPlan {
  hpf::DistSpec::Kind Kind = hpf::DistSpec::Kind::Block;
  bool Virtualized = false;
  int64_t TmplLo = 1;
  int64_t Block = 1;   // bound block size (Block layouts)
  int64_t CyclicK = 1; // for CyclicK
  int64_t Extent = 1;  // processor-array extent along this dimension
};

/// The complete lowered program.
struct ExecPlan {
  std::vector<std::string> ArrayNames; // dense id -> name
  std::vector<StmtPlan> Stmts;         // indexed by leaf id
  std::vector<EventPlan> Events;       // indexed by EventId
  PlanNode Root;
  std::vector<DimPlan> Dims;
  unsigned StackDepth = 1; // max bytecode stack depth over the whole plan
};

/// Everything lowering needs from an execution context. Both in-process
/// engines (via the Interpreter) and the distributed rank runtime
/// (rt::RankEngine) build plans from the same inputs, so a plan — and the
/// native kernel source generated from it — is identical wherever it is
/// built, which is what lets every rank of a launch share one kernel-cache
/// entry.
struct PlanBuildInputs {
  std::map<std::string, ArrayStore> *Arrays = nullptr;
  const std::map<std::string, int64_t> *AllBindings = nullptr;
  const std::vector<int64_t> *ProcShape = nullptr;
  const std::vector<char> *EventInPlace = nullptr;
};

/// A built plan plus the array-name resolution used to build it.
struct PlanBuild {
  ExecPlan Plan;
  std::map<std::string, uint32_t> ArrayIds;
  std::vector<ArrayStore *> Stores; // by array id
};

/// Lowers \p Prog once against \p In (see PlanBuildInputs). Deterministic:
/// identical inputs produce an identical plan.
PlanBuild buildExecPlan(const SpmdProgram &Prog, const PlanBuildInputs &In);

/// Runs one lowered plan against an Interpreter's state (arrays,
/// environments, simulated machine). Built by the Interpreter constructor
/// when the bytecode engine is selected.
class PlanExecutor {
public:
  /// \p Engine must be Bytecode or Native. Native compiles the plan's hot
  /// loops through the kernel cache at construction time and falls back to
  /// bytecode dispatch (with one stderr note) when no compiler is usable.
  PlanExecutor(const SpmdProgram &Prog, Interpreter &I, unsigned Threads,
               EngineKind Engine = EngineKind::Bytecode);
  ~PlanExecutor();

  RunResult run();

private:
  /// A message payload: sorted unique flat indices plus values. Contiguous
  /// payloads carry no index vector — the span [Base, Base+Vals.size())
  /// is implicit.
  struct Payload {
    std::shared_ptr<const std::vector<int64_t>> Flats; // null when Contig
    std::vector<double> Vals;
    int64_t Base = 0;
    bool Contig = false;
    /// Gathered as a contiguous span of locally-owned storage (the
    /// Section 3.3 shape) — feeds RunResult::SpanCopies.
    bool Span = false;
    size_t count() const { return Vals.size(); }
  };

  /// One partner's cached element list for one (event, proc) side.
  struct PartnerList {
    unsigned Q = 0;
    std::shared_ptr<std::vector<int64_t>> Flats; // sorted, unique
    int64_t Base = 0;
    bool Contig = false;
    enum class OwnClass : uint8_t { AllLocal, NoneLocal, Mixed } Own =
        OwnClass::AllLocal;
  };
  struct SideCache {
    bool Built = false;
    std::vector<PartnerList> Partners;
  };

  /// Per-processor scratch, reused across events (parallel phases write
  /// only their own entry).
  struct Scratch {
    std::vector<int64_t> Stack;
    std::vector<double> Reads;
    /// Raw (partner, flat) enumeration, split into parallel arrays so the
    /// native event kernels can fill them directly through the DhpfCtx
    /// pair buffer. In native mode the vectors are capacity storage and
    /// RawLen is the element count; in bytecode mode RawLen == size().
    std::vector<uint32_t> RawQ;
    std::vector<int64_t> RawF;
    size_t RawLen = 0;
    std::vector<int32_t> PartnerPos;
    std::vector<PartnerList> Lists; // rebuilt lists (uncacheable events)
    std::vector<Payload> Out;
    std::vector<unsigned> OutQ;
    std::vector<std::string> Viol;
    uint64_t Stmts = 0;
    double ComputeWork = 0;
  };

  const SpmdProgram &Prog;
  Interpreter &I;
  unsigned NP; // processor count
  /// Node-dispatch counts by SpmdNode::Kind, flushed to the obs registry
  /// ("spmd.bytecode.dispatch.*") once at the end of run().
  uint64_t Dispatch[6] = {};
  ExecPlan Plan;
  std::unique_ptr<ThreadPool> Pool;
  std::map<std::string, uint32_t> ArrayIds;
  std::vector<ArrayStore *> Stores;   // by array id
  std::vector<const StmtFn *> Sems;   // by stmt id, resolved at run()
  std::vector<Scratch> PerProc;
  std::vector<std::vector<SideCache>> SendCache, RecvCache; // [event][proc]
  /// Engine-private overlay/pending stores indexed [proc][array id]
  /// (the tree engine's string-keyed maps stay untouched).
  std::vector<std::vector<std::unordered_map<int64_t, double>>> OvV, PdV;
  std::map<std::tuple<unsigned, unsigned, int>, std::queue<Payload>>
      Payloads;

  /// Native-engine state: the loaded kernel table plus one DhpfCtx per
  /// processor rank (defined in ExecPlan.cpp; null when the engine is
  /// bytecode or the native setup fell back).
  struct NativeState;
  std::unique_ptr<NativeState> Native;
  void setupNative();
  /// Statement-semantics trampoline target for native kernels (member so
  /// it retains the executor's friend access to the Interpreter).
  double nativeStmt(unsigned P, int32_t Leaf, int32_t N,
                    const double *Reads);

  // Execution.
  void runNode(const PlanNode &N);
  void runCompute(const PlanNode &N);
  void runSend(const PlanNode &N);
  void runRecv(const PlanNode &N);
  void runReduce(const PlanNode &N);
  template <typename Fn> void forProcs(bool Parallel, Fn &&F);
  void mergeScratch();

  template <typename LeafFn>
  void walk(const PlanAst &A, uint32_t Idx, int64_t *Regs, int64_t *Stack,
            const LeafFn &F) const;
  template <typename LeafFn>
  void walkAll(const PlanAst &A, int64_t *Regs, int64_t *Stack,
               const LeafFn &F) const;
  bool guardHolds(const PlanGuard &G, const int64_t *Regs,
                  int64_t *Stack) const;

  bool isRealVP(const int64_t *PT) const;
  unsigned rankOfPartner(const int64_t *PT) const;
  void buildLists(const PlanAst &A, const EventPlan &EP, unsigned P,
                  std::vector<PartnerList> &Lists, bool RecvSide);
  double readFast(unsigned P, uint32_t AId, int64_t Flat, Scratch &S);
  void writeFast(unsigned P, uint32_t AId, int64_t Flat, double V);
};

} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_EXECPLAN_H
