//===- spmd/Bytecode.cpp - Postfix bytecode for generated expressions -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/Bytecode.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::spmd::bc;

int64_t Prog::eval(const int64_t *Regs, int64_t *Stack) const {
  int64_t *SP = Stack;
  for (const Insn &I : Code) {
    switch (I.O) {
    case Op::PushK:
      *SP++ = I.K;
      break;
    case Op::PushVar:
      *SP++ = Regs[I.A];
      break;
    case Op::PushVarK:
      *SP++ = addOv(Regs[I.A], I.K);
      break;
    case Op::Add:
      --SP;
      SP[-1] = addOv(SP[-1], *SP);
      break;
    case Op::AddK:
      SP[-1] = addOv(SP[-1], I.K);
      break;
    case Op::Mul:
      --SP;
      SP[-1] = mulOv(SP[-1], *SP);
      break;
    case Op::MulK:
      SP[-1] = mulOv(SP[-1], I.K);
      break;
    case Op::FloorDivK:
      SP[-1] = floorDiv(SP[-1], I.K);
      break;
    case Op::FloorDivPow2:
      SP[-1] >>= I.A;
      break;
    case Op::CeilDivK:
      SP[-1] = ceilDiv(SP[-1], I.K);
      break;
    case Op::CeilDivPow2:
      SP[-1] = addOv(SP[-1], I.K - 1) >> I.A;
      break;
    case Op::ModK:
      SP[-1] = floorMod(SP[-1], I.K);
      break;
    case Op::ModPow2:
      SP[-1] &= I.K - 1;
      break;
    case Op::FloorDiv:
      --SP;
      SP[-1] = floorDiv(SP[-1], *SP);
      break;
    case Op::Mod:
      --SP;
      SP[-1] = floorMod(SP[-1], *SP);
      break;
    case Op::Min:
      --SP;
      SP[-1] = std::min(SP[-1], *SP);
      break;
    case Op::Max:
      --SP;
      SP[-1] = std::max(SP[-1], *SP);
      break;
    }
  }
  assert(SP == Stack + 1 && "bytecode left an unbalanced stack");
  return SP[-1];
}

namespace {

bool isPow2(int64_t K) { return K > 0 && (K & (K - 1)) == 0; }

uint32_t log2Of(int64_t K) {
  uint32_t S = 0;
  while ((int64_t(1) << S) < K)
    ++S;
  return S;
}

class ExprCompiler {
public:
  explicit ExprCompiler(const SlotConsts &Fixed) : Fixed(Fixed) {}

  Prog take(const cg::Expr &E) {
    emit(E);
    Prog P;
    P.Code = std::move(Code);
    P.Depth = Max;
    return P;
  }

private:
  const SlotConsts &Fixed;
  std::vector<Insn> Code;
  unsigned Cur = 0, Max = 0;

  void push(Insn I) {
    Code.push_back(I);
    if (I.O == Op::PushK || I.O == Op::PushVar || I.O == Op::PushVarK) {
      if (++Cur > Max)
        Max = Cur;
    } else if (I.O == Op::Add || I.O == Op::Mul || I.O == Op::FloorDiv ||
               I.O == Op::Mod || I.O == Op::Min || I.O == Op::Max) {
      --Cur;
    }
  }

  /// Folds \p E to a constant when every leaf is a literal or a Fixed slot.
  bool constOf(const cg::Expr &E, int64_t &Out) const {
    using K = cg::Expr::Kind;
    const std::vector<cg::Expr> &Ops = E.operands();
    int64_t A, B;
    switch (E.kind()) {
    case K::Const:
      Out = E.constVal();
      return true;
    case K::Var: {
      auto It = Fixed.find(E.varSlot());
      if (It == Fixed.end())
        return false;
      Out = It->second;
      return true;
    }
    case K::Add: {
      int64_t S = 0;
      for (const cg::Expr &O : Ops) {
        if (!constOf(O, A))
          return false;
        S = addOv(S, A);
      }
      Out = S;
      return true;
    }
    case K::Mul:
      if (!constOf(Ops[0], A))
        return false;
      Out = mulOv(A, E.constVal());
      return true;
    case K::MulE:
      if (!constOf(Ops[0], A) || !constOf(Ops[1], B))
        return false;
      Out = mulOv(A, B);
      return true;
    case K::FloorDiv:
      if (!constOf(Ops[0], A))
        return false;
      Out = floorDiv(A, E.constVal());
      return true;
    case K::CeilDiv:
      if (!constOf(Ops[0], A))
        return false;
      Out = ceilDiv(A, E.constVal());
      return true;
    case K::Mod:
      if (!constOf(Ops[0], A))
        return false;
      Out = floorMod(A, E.constVal());
      return true;
    case K::FloorDivE:
      if (!constOf(Ops[0], A) || !constOf(Ops[1], B) || B == 0)
        return false;
      Out = floorDiv(A, B);
      return true;
    case K::ModE:
      if (!constOf(Ops[0], A) || !constOf(Ops[1], B) || B <= 0)
        return false;
      Out = floorMod(A, B);
      return true;
    case K::Min:
    case K::Max: {
      if (Ops.empty() || !constOf(Ops[0], A))
        return false;
      for (unsigned I = 1; I != Ops.size(); ++I) {
        if (!constOf(Ops[I], B))
          return false;
        A = E.kind() == K::Min ? std::min(A, B) : std::max(A, B);
      }
      Out = A;
      return true;
    }
    }
    return false;
  }

  void emitFloorDivK(int64_t K) {
    if (K <= 0) { // broken divisor contract: keep the checked runtime form
      push({Op::PushK, 0, K});
      push({Op::FloorDiv, 0, 0});
      return;
    }
    if (K == 1)
      return;
    if (isPow2(K))
      push({Op::FloorDivPow2, log2Of(K), K});
    else
      push({Op::FloorDivK, 0, K});
  }

  void emitCeilDivK(int64_t K) {
    assert(K > 0 && "CeilDiv requires a positive constant divisor");
    if (K == 1)
      return;
    if (isPow2(K))
      push({Op::CeilDivPow2, log2Of(K), K});
    else
      push({Op::CeilDivK, 0, K});
  }

  void emitModK(int64_t K) {
    if (K <= 0) {
      push({Op::PushK, 0, K});
      push({Op::Mod, 0, 0});
      return;
    }
    if (K == 1) { // x mod 1 == 0
      push({Op::MulK, 0, 0});
      return;
    }
    if (isPow2(K))
      push({Op::ModPow2, log2Of(K), K});
    else
      push({Op::ModK, 0, K});
  }

  void emit(const cg::Expr &E) {
    using K = cg::Expr::Kind;
    int64_t KV;
    if (constOf(E, KV)) {
      push({Op::PushK, 0, KV});
      return;
    }
    const std::vector<cg::Expr> &Ops = E.operands();
    switch (E.kind()) {
    case K::Const:
      break; // handled by constOf
    case K::Var:
      push({Op::PushVar, E.varSlot(), 0});
      break;
    case K::Add: {
      // Fold all constant terms into one immediate, fused into the first
      // variable term when possible.
      int64_t Sum = 0;
      std::vector<const cg::Expr *> Rest;
      for (const cg::Expr &O : Ops) {
        int64_t V;
        if (constOf(O, V))
          Sum = addOv(Sum, V);
        else
          Rest.push_back(&O);
      }
      assert(!Rest.empty() && "all-constant sum reached emit");
      bool Fused = false;
      if (Sum != 0 && Rest[0]->kind() == K::Var) {
        push({Op::PushVarK, Rest[0]->varSlot(), Sum});
        Fused = true;
      } else {
        emit(*Rest[0]);
      }
      for (unsigned I = 1; I != Rest.size(); ++I) {
        emit(*Rest[I]);
        push({Op::Add, 0, 0});
      }
      if (Sum != 0 && !Fused)
        push({Op::AddK, 0, Sum});
      break;
    }
    case K::Mul:
      emit(Ops[0]);
      push({Op::MulK, 0, E.constVal()});
      break;
    case K::MulE: {
      int64_t V;
      if (constOf(Ops[0], V)) {
        emit(Ops[1]);
        push({Op::MulK, 0, V});
      } else if (constOf(Ops[1], V)) {
        emit(Ops[0]);
        push({Op::MulK, 0, V});
      } else {
        emit(Ops[0]);
        emit(Ops[1]);
        push({Op::Mul, 0, 0});
      }
      break;
    }
    case K::FloorDiv:
      emit(Ops[0]);
      emitFloorDivK(E.constVal());
      break;
    case K::CeilDiv:
      emit(Ops[0]);
      emitCeilDivK(E.constVal());
      break;
    case K::Mod:
      emit(Ops[0]);
      emitModK(E.constVal());
      break;
    case K::FloorDivE: {
      int64_t V;
      emit(Ops[0]);
      if (constOf(Ops[1], V)) {
        emitFloorDivK(V);
      } else {
        emit(Ops[1]);
        push({Op::FloorDiv, 0, 0});
      }
      break;
    }
    case K::ModE: {
      int64_t V;
      emit(Ops[0]);
      if (constOf(Ops[1], V)) {
        emitModK(V);
      } else {
        emit(Ops[1]);
        push({Op::Mod, 0, 0});
      }
      break;
    }
    case K::Min:
    case K::Max: {
      assert(!Ops.empty() && "empty min/max");
      emit(Ops[0]);
      for (unsigned I = 1; I != Ops.size(); ++I) {
        emit(Ops[I]);
        push({E.kind() == K::Min ? Op::Min : Op::Max, 0, 0});
      }
      break;
    }
    }
  }
};

} // namespace

Prog bc::compileExpr(const cg::Expr &E, const SlotConsts &Fixed) {
  assert(E.isValid() && "compiling an empty expression");
  return ExprCompiler(Fixed).take(E);
}
