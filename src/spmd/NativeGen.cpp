//===- spmd/NativeGen.cpp - ExecPlan -> C kernel source emitter -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/NativeGen.h"

#include "spmd/ExecPlan.h"
#include "spmd/KernelABI.h"

#include <cassert>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::spmd::native;

uint64_t native::fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

/// The ABI declarations, stringized from the same macro KernelABI.h
/// expands for the host — one source of truth for the struct layout.
#define DHPF_STRINGIZE_(...) #__VA_ARGS__
#define DHPF_STRINGIZE(...) DHPF_STRINGIZE_(__VA_ARGS__)
const char *const AbiDecls = DHPF_STRINGIZE(DHPF_KERNEL_ABI_DECLS);

/// The stringized macro collapses to one line; reflow it so the emitted
/// artifact stays readable when uploaded from CI.
std::string reflowAbi() {
  std::string Out;
  for (const char *P = AbiDecls; *P; ++P) {
    Out.push_back(*P);
    if (*P == ';' || *P == '{') {
      Out.push_back('\n');
      if (*(P + 1) == ' ')
        ++P;
    }
  }
  return Out;
}

/// Integer literal with a suffix; INT64_MIN has no literal form in C.
std::string lit(int64_t K) {
  if (K == INT64_MIN)
    return "(-9223372036854775807LL - 1)";
  return std::to_string(K) + "LL";
}

/// Emits `<P> - <Lo>` (a partner offset), folding a zero template base.
std::string offsetOf(const std::string &P, int64_t Lo) {
  if (Lo == 0)
    return P;
  return "(" + P + " - " + lit(Lo) + ")";
}

/// Slot-to-C mapping: loop variables in scope read their C local (so the
/// C compiler sees the full induction structure); everything else reads
/// the register file, which the kernel keeps current for the callbacks.
struct Scope {
  std::string Regs = "R";
  std::map<unsigned, std::string> Locals;

  std::string reg(unsigned A) const {
    auto It = Locals.find(A);
    if (It != Locals.end())
      return It->second;
    return Regs + "[" + std::to_string(A) + "]";
  }
};

std::string exprC(const bc::Prog &P, const Scope &S) {
  std::vector<std::string> Stk;
  auto bin = [&](const char *Op) {
    std::string B = std::move(Stk.back());
    Stk.pop_back();
    std::string A = std::move(Stk.back());
    Stk.back() = "(" + A + " " + Op + " " + B + ")";
  };
  auto call2 = [&](const char *Fn) {
    std::string B = std::move(Stk.back());
    Stk.pop_back();
    std::string A = std::move(Stk.back());
    Stk.back() = std::string(Fn) + "(" + A + ", " + B + ")";
  };
  for (const bc::Insn &In : P.code()) {
    switch (In.O) {
    case bc::Op::PushK:
      Stk.push_back(lit(In.K));
      break;
    case bc::Op::PushVar:
      Stk.push_back(S.reg(In.A));
      break;
    case bc::Op::PushVarK:
      Stk.push_back("(" + S.reg(In.A) + " + " + lit(In.K) + ")");
      break;
    case bc::Op::Add:
      bin("+");
      break;
    case bc::Op::AddK:
      Stk.back() = "(" + Stk.back() + " + " + lit(In.K) + ")";
      break;
    case bc::Op::Mul:
      bin("*");
      break;
    case bc::Op::MulK:
      Stk.back() = "(" + Stk.back() + " * " + lit(In.K) + ")";
      break;
    case bc::Op::FloorDivK:
      Stk.back() = "dhpf_fdiv(" + Stk.back() + ", " + lit(In.K) + ")";
      break;
    case bc::Op::FloorDivPow2:
      Stk.back() = "(" + Stk.back() + " >> " + std::to_string(In.A) + ")";
      break;
    case bc::Op::CeilDivK:
      Stk.back() = "dhpf_cdiv(" + Stk.back() + ", " + lit(In.K) + ")";
      break;
    case bc::Op::CeilDivPow2:
      Stk.back() = "((" + Stk.back() + " + " + lit(In.K - 1) + ") >> " +
                   std::to_string(In.A) + ")";
      break;
    case bc::Op::ModK:
      Stk.back() = "dhpf_fmod(" + Stk.back() + ", " + lit(In.K) + ")";
      break;
    case bc::Op::ModPow2:
      Stk.back() = "(" + Stk.back() + " & " + lit(In.K - 1) + ")";
      break;
    case bc::Op::FloorDiv:
      call2("dhpf_fdiv");
      break;
    case bc::Op::Mod:
      call2("dhpf_fmod");
      break;
    case bc::Op::Min:
      call2("dhpf_min");
      break;
    case bc::Op::Max:
      call2("dhpf_max");
      break;
    }
  }
  assert(Stk.size() == 1 && "malformed bytecode program");
  return Stk.back();
}

std::string atomC(const PlanAtom &At, const Scope &S) {
  std::string E = exprC(At.E, S);
  switch (At.K) {
  case cg::GuardAtom::Kind::NonNeg:
    return "(" + E + " >= 0)";
  case cg::GuardAtom::Kind::Zero:
    return "(" + E + " == 0)";
  case cg::GuardAtom::Kind::ModZero:
    return "(dhpf_fmod(" + E + ", " + lit(At.Mod) + ") == 0)";
  }
  return "(0)";
}

/// One guard in DNF: `((a && b) || (c))`.
std::string guardC(const PlanGuard &G, const Scope &S) {
  std::string Out = "(";
  for (size_t C = 0; C != G.AnyOf.size(); ++C) {
    if (C)
      Out += " || ";
    Out += "(";
    for (size_t A = 0; A != G.AnyOf[C].size(); ++A) {
      if (A)
        Out += " && ";
      Out += atomC(G.AnyOf[C][A], S);
    }
    Out += ")";
  }
  Out += ")";
  return Out;
}

class Emitter {
public:
  explicit Emitter(const ExecPlan &P) : Plan(P) {}

  PlanSource run();

private:
  const ExecPlan &Plan;
  std::string S;
  int Ind = 0;
  unsigned NextId = 0; // loop/temp numbering, per function

  void line(const std::string &L) {
    S.append(static_cast<size_t>(Ind) * 2, ' ');
    S += L;
    S += '\n';
  }
  void open(const std::string &L) {
    line(L);
    ++Ind;
  }
  void close(const std::string &L = "}") {
    --Ind;
    line(L);
  }

  void emitAst(const PlanAst &A, uint32_t Idx, Scope &Sc,
               const std::function<void(int32_t, Scope &)> &Leaf);
  void emitAstAll(const PlanAst &A, Scope &Sc,
                  const std::function<void(int32_t, Scope &)> &Leaf);
  void emitComputeLeaf(int32_t LeafId, Scope &Sc);
  void emitEventLeaf(const EventPlan &EP, Scope &Sc);
  void emitComputeFn(const PlanNode &N);
  void emitEnumFn(const std::string &Name, const PlanAst &A,
                  const EventPlan &EP);
  void emitReduceFn(const PlanNode &N);
  void collect(const PlanNode &N, std::vector<const PlanNode *> &Comp,
               std::vector<const PlanNode *> &Red);
};

void Emitter::emitAst(const PlanAst &A, uint32_t Idx, Scope &Sc,
                      const std::function<void(int32_t, Scope &)> &Leaf) {
  const PlanAst::Node &N = A.Nodes[Idx];
  switch (N.K) {
  case PlanAst::Node::Kind::Loop: {
    unsigned T = NextId++;
    std::string V = "v" + std::to_string(T);
    std::string Slot = Sc.Regs + "[" + std::to_string(N.VarSlot) + "]";
    open("{");
    line("const int64_t lo" + std::to_string(T) + " = " +
         exprC(A.Exprs[N.LB], Sc) + ";");
    line("const int64_t hi" + std::to_string(T) + " = " +
         exprC(A.Exprs[N.UB], Sc) + ";");
    line("const int64_t st" + std::to_string(T) + " = " +
         (N.Step < 0 ? std::string("1") : exprC(A.Exprs[N.Step], Sc)) + ";");
    line("const int64_t sv" + std::to_string(T) + " = " + Slot + ";");
    line("int64_t " + V + ";");
    open("for (" + V + " = lo" + std::to_string(T) + "; " + V + " <= hi" +
         std::to_string(T) + "; " + V + " += st" + std::to_string(T) +
         ") {");
    line(Slot + " = " + V + ";");
    auto Saved = Sc.Locals.emplace(N.VarSlot, V);
    std::string Prev;
    if (!Saved.second) {
      Prev = Saved.first->second;
      Saved.first->second = V;
    }
    for (uint32_t C = Idx + 1; C != N.SubtreeEnd; C = A.Nodes[C].SubtreeEnd)
      emitAst(A, C, Sc, Leaf);
    if (Saved.second)
      Sc.Locals.erase(N.VarSlot);
    else
      Saved.first->second = Prev;
    close();
    line(Slot + " = sv" + std::to_string(T) + ";");
    close();
    return;
  }
  case PlanAst::Node::Kind::If: {
    std::string Cond;
    for (uint32_t G = N.GuardBegin; G != N.GuardEnd; ++G) {
      if (!Cond.empty())
        Cond += " &&\n" + std::string(static_cast<size_t>(Ind) * 2 + 4, ' ');
      Cond += guardC(A.Guards[G], Sc);
    }
    open("if (" + Cond + ") {");
    for (uint32_t C = Idx + 1; C != N.SubtreeEnd; C = A.Nodes[C].SubtreeEnd)
      emitAst(A, C, Sc, Leaf);
    close();
    return;
  }
  case PlanAst::Node::Kind::Leaf:
    Leaf(N.LeafId, Sc);
    return;
  }
}

void Emitter::emitAstAll(const PlanAst &A, Scope &Sc,
                         const std::function<void(int32_t, Scope &)> &Leaf) {
  for (uint32_t C = 0; C < A.Nodes.size(); C = A.Nodes[C].SubtreeEnd)
    emitAst(A, C, Sc, Leaf);
}

void Emitter::emitComputeLeaf(int32_t LeafId, Scope &Sc) {
  const StmtPlan &SP = Plan.Stmts[LeafId];
  open("{ /* stmt " + std::to_string(LeafId) + " -> " +
       Plan.ArrayNames[SP.WriteArray] + " */");
  for (size_t K = 0; K != SP.Reads.size(); ++K)
    line("c->Reads[" + std::to_string(K) + "] = dhpf_load(c, " +
         std::to_string(SP.Reads[K].Array) + ", " +
         exprC(SP.Reads[K].Flat, Sc) + ");");
  unsigned T = NextId++;
  line("const double x" + std::to_string(T) + " = c->Stmt(c, " +
       std::to_string(LeafId) + ", " + std::to_string(SP.Reads.size()) +
       ");");
  line("dhpf_store(c, " + std::to_string(SP.WriteArray) + ", " +
       exprC(SP.WriteFlat, Sc) + ", x" + std::to_string(T) + ");");
  line("*c->Clock += c->LeafCostSec[" + std::to_string(LeafId) + "];");
  line("++*c->Stmts;");
  open("if (++c->ProgressCtr >= c->ProgressEvery) {");
  line("c->ProgressCtr = 0;");
  line("c->Progress(c);");
  close();
  close();
}

void Emitter::emitEventLeaf(const EventPlan &EP, Scope &Sc) {
  // The virtual-processor runtime check and rank mapping with every
  // DimPlan constant folded in (block sizes, extents, template bases are
  // run constants by construction).
  std::string Cond;
  std::string Rank;
  int64_t M = 1;
  for (unsigned D = 0; D != Plan.Dims.size(); ++D) {
    const DimPlan &DP = Plan.Dims[D];
    std::string P = Sc.reg(EP.PartnerSlots[D]);
    std::string Off = offsetOf(P, DP.TmplLo);
    std::string C;
    if (DP.Virtualized) {
      switch (DP.Kind) {
      case hpf::DistSpec::Kind::Block:
        if (!Cond.empty())
          Cond += " && ";
        Cond += "dhpf_fmod(" + Off + ", " + lit(DP.Block) + ") == 0 && " +
                "dhpf_fdiv(" + Off + ", " + lit(DP.Block) + ") < " +
                lit(DP.Extent);
        C = "dhpf_fdiv(" + Off + ", " + lit(DP.Block) + ")";
        break;
      case hpf::DistSpec::Kind::Cyclic:
        C = "dhpf_fmod(" + Off + ", " + lit(DP.Extent) + ")";
        break;
      case hpf::DistSpec::Kind::CyclicK:
        if (!Cond.empty())
          Cond += " && ";
        Cond += "dhpf_fmod(" + Off + ", " + lit(DP.CyclicK) + ") == 0";
        C = "dhpf_fmod(dhpf_fdiv(" + Off + ", " + lit(DP.CyclicK) + "), " +
            lit(DP.Extent) + ")";
        break;
      case hpf::DistSpec::Kind::Star:
        break; // replicated dimension: coordinate 0
      }
    } else {
      C = P;
    }
    if (!C.empty()) {
      if (!Rank.empty())
        Rank += " + ";
      Rank += M == 1 ? C : C + " * " + lit(M);
    }
    M *= DP.Extent;
  }
  if (Rank.empty())
    Rank = "0";
  unsigned T = NextId++;
  open("{");
  if (!Cond.empty())
    open("if (" + Cond + ") {");
  line("const int64_t q" + std::to_string(T) + " = " + Rank + ";");
  open("if (q" + std::to_string(T) + " != (int64_t)c->Me) {");
  line("dhpf_pair(c, q" + std::to_string(T) + ", " + exprC(EP.ElemFlat, Sc) +
       ");");
  close();
  if (!Cond.empty())
    close();
  close();
}

void Emitter::emitComputeFn(const PlanNode &N) {
  NextId = 0;
  line("/* compute node " + std::to_string(N.NativeComputeId) +
       " (one processor rank's loop nest) */");
  open("static void dhpf_compute_" + std::to_string(N.NativeComputeId) +
       "(DhpfCtx *c, int64_t *R) {");
  if (N.Loops.Nodes.empty()) {
    line("(void)c;");
    line("(void)R;");
  } else {
    Scope Sc;
    emitAstAll(N.Loops, Sc,
               [this](int32_t L, Scope &SIn) { emitComputeLeaf(L, SIn); });
  }
  close();
  line("");
}

void Emitter::emitEnumFn(const std::string &Name, const PlanAst &A,
                         const EventPlan &EP) {
  NextId = 0;
  open("static void " + Name + "(DhpfCtx *c, int64_t *R) {");
  if (A.Nodes.empty()) {
    line("(void)c;");
    line("(void)R;");
  } else {
    Scope Sc;
    emitAstAll(A, Sc, [this, &EP](int32_t, Scope &SIn) {
      emitEventLeaf(EP, SIn);
    });
  }
  close();
  line("");
}

void Emitter::emitReduceFn(const PlanNode &N) {
  bool Max = N.RedOp == SpmdNode::ReduceOp::Max;
  line("/* reduce \"" + N.RedName + "\" (" + (Max ? "max" : "sum") +
       "), combined in rank order */");
  open("static double dhpf_reduce_" + std::to_string(N.NativeReduceId) +
       "(const double *v, uint64_t n) {");
  line(Max ? "double acc = -INFINITY;" : "double acc = 0.0;");
  line("uint64_t i;");
  open("for (i = 0; i != n; ++i) {");
  line(Max ? "acc = acc < v[i] ? v[i] : acc;" : "acc = acc + v[i];");
  close();
  line("return acc;");
  close();
  line("");
}

void Emitter::collect(const PlanNode &N, std::vector<const PlanNode *> &Comp,
                      std::vector<const PlanNode *> &Red) {
  if (N.K == SpmdNode::Kind::Compute && N.NativeComputeId >= 0) {
    if (Comp.size() <= static_cast<size_t>(N.NativeComputeId))
      Comp.resize(N.NativeComputeId + 1, nullptr);
    Comp[N.NativeComputeId] = &N;
  }
  if (N.K == SpmdNode::Kind::Reduce && N.NativeReduceId >= 0) {
    if (Red.size() <= static_cast<size_t>(N.NativeReduceId))
      Red.resize(N.NativeReduceId + 1, nullptr);
    Red[N.NativeReduceId] = &N;
  }
  for (const PlanNode &C : N.Children)
    collect(C, Comp, Red);
}

PlanSource Emitter::run() {
  std::vector<const PlanNode *> Comp, Red;
  collect(Plan.Root, Comp, Red);

  line("/* dhpf native kernel (generated by NativeGen; do not edit).");
  line(" * One translation unit per ExecPlan: compute loop nests, comm-");
  line(" * event (partner, element) enumerations, reduction bodies, and");
  line(" * the Section 3.3 contiguous pack/unpack helpers. */");
  line("#include <stdint.h>");
  line("#include <string.h>");
  line("#include <math.h>");
  line("");
  S += reflowAbi();
  line("");
  S += helperPreamble();
  line("");
  // Context-dependent helpers (fast-path element access, pair buffer).
  line("static inline double dhpf_load(DhpfCtx *c, int32_t a, int64_t f) {");
  line("  const int32_t *own = c->Owner[a];");
  line("  if ((uint64_t)f < (uint64_t)c->Size[a] &&");
  line("      (!own || own[f] == c->Me || own[f] < 0))");
  line("    return c->Data[a][f];");
  line("  return c->ReadSlow(c, a, f);");
  line("}");
  line("static inline void dhpf_store(DhpfCtx *c, int32_t a, int64_t f,");
  line("                              double v) {");
  line("  const int32_t *own = c->Owner[a];");
  line("  if ((uint64_t)f < (uint64_t)c->Size[a] &&");
  line("      (!own || own[f] == c->Me || own[f] < 0)) {");
  line("    c->Data[a][f] = v;");
  line("    return;");
  line("  }");
  line("  c->WriteSlow(c, a, f, v);");
  line("}");
  line("static inline void dhpf_pair(DhpfCtx *c, int64_t q, int64_t f) {");
  line("  if (c->NumPairs == c->CapPairs)");
  line("    c->GrowPairs(c);");
  line("  c->PairQ[c->NumPairs] = (uint32_t)q;");
  line("  c->PairF[c->NumPairs] = f;");
  line("  ++c->NumPairs;");
  line("}");
  line("");

  for (const PlanNode *N : Comp) {
    assert(N && "compute id gap");
    emitComputeFn(*N);
  }
  for (size_t E = 0; E != Plan.Events.size(); ++E) {
    const EventPlan &EP = Plan.Events[E];
    line("/* event " + std::to_string(EP.Id) + " on " +
         Plan.ArrayNames[EP.Array] + " */");
    emitEnumFn("dhpf_event_send_" + std::to_string(E), EP.Send, EP);
    emitEnumFn("dhpf_event_recv_" + std::to_string(E), EP.Recv, EP);
  }
  for (const PlanNode *N : Red) {
    assert(N && "reduce id gap");
    emitReduceFn(*N);
  }

  line("/* Section 3.3 pack/unpack bodies */");
  line("static void dhpf_copy_span(double *dst, const double *src,");
  line("                           uint64_t n) {");
  line("  memcpy(dst, src, n * sizeof(double));");
  line("}");
  line("static void dhpf_gather(double *dst, const double *src,");
  line("                        const int64_t *f, uint64_t n) {");
  line("  uint64_t i;");
  line("  for (i = 0; i != n; ++i)");
  line("    dst[i] = src[f[i]];");
  line("}");
  line("");

  auto tab = [&](const std::string &Ty, const std::string &Name, size_t N,
                 const std::function<std::string(size_t)> &Entry) {
    std::string L = "static const " + Ty + " " + Name + "[] = {";
    if (N == 0)
      L += "0";
    for (size_t I = 0; I != N; ++I)
      L += (I ? ", " : "") + Entry(I);
    L += "};";
    line(L);
  };
  tab("DhpfComputeFn", "dhpf_compute_tab", Comp.size(), [](size_t I) {
    return "dhpf_compute_" + std::to_string(I);
  });
  tab("DhpfEnumFn", "dhpf_event_send_tab", Plan.Events.size(), [](size_t I) {
    return "dhpf_event_send_" + std::to_string(I);
  });
  tab("DhpfEnumFn", "dhpf_event_recv_tab", Plan.Events.size(), [](size_t I) {
    return "dhpf_event_recv_" + std::to_string(I);
  });
  tab("DhpfReduceFn", "dhpf_reduce_tab", Red.size(), [](size_t I) {
    return "dhpf_reduce_" + std::to_string(I);
  });
  line("");

  // Everything above is the fingerprinted body; the table below embeds
  // the fingerprint so the loader can verify it got the kernel it asked
  // for (and CtxSize, so a drifting ABI copy fails loudly at dlopen).
  PlanSource Out;
  Out.Fingerprint = fnv1a64(S);
  Out.NumCompute = static_cast<int32_t>(Comp.size());
  Out.NumEvents = static_cast<int32_t>(Plan.Events.size());
  Out.NumReduce = static_cast<int32_t>(Red.size());
  for (const StmtPlan &SP : Plan.Stmts)
    if (SP.Reads.size() > Out.MaxReads)
      Out.MaxReads = static_cast<unsigned>(SP.Reads.size());

  char FP[32];
  std::snprintf(FP, sizeof(FP), "0x%016llx",
                static_cast<unsigned long long>(Out.Fingerprint));
  open("static const DhpfKernelTable dhpf_table = {");
  line(std::to_string(DHPF_KERNEL_ABI_VERSION) + ", " +
       std::to_string(Out.NumCompute) + ", " + std::to_string(Out.NumEvents) +
       ", " + std::to_string(Out.NumReduce) + ",");
  line(std::string(FP) + "ULL, sizeof(DhpfCtx),");
  line("dhpf_compute_tab, dhpf_event_send_tab, dhpf_event_recv_tab,");
  line("dhpf_reduce_tab, dhpf_copy_span, dhpf_gather,");
  close("};");
  line("const DhpfKernelTable *dhpf_kernel_entry(void) { return &dhpf_table; "
       "}");

  Out.C = std::move(S);
  return Out;
}

} // namespace

std::string native::emitExprC(const bc::Prog &P, const std::string &Regs) {
  Scope S;
  S.Regs = Regs;
  return exprC(P, S);
}

std::string native::helperPreamble() {
  // Exact mirrors of support/MathExtras.h floorDiv/ceilDiv/floorMod (the
  // sign-normalizing forms), minus the host-side asserts.
  return "static inline int64_t dhpf_fdiv(int64_t n, int64_t d) {\n"
         "  int64_t q;\n"
         "  if (d < 0) { n = -n; d = -d; }\n"
         "  q = n / d;\n"
         "  if (n % d != 0 && n < 0) --q;\n"
         "  return q;\n"
         "}\n"
         "static inline int64_t dhpf_cdiv(int64_t n, int64_t d) {\n"
         "  int64_t q;\n"
         "  if (d < 0) { n = -n; d = -d; }\n"
         "  q = n / d;\n"
         "  if (n % d != 0 && n > 0) ++q;\n"
         "  return q;\n"
         "}\n"
         "static inline int64_t dhpf_fmod(int64_t n, int64_t d) {\n"
         "  int64_t r = n % d;\n"
         "  if (r < 0) r += d;\n"
         "  return r;\n"
         "}\n"
         "static inline int64_t dhpf_min(int64_t a, int64_t b) {\n"
         "  return b < a ? b : a;\n"
         "}\n"
         "static inline int64_t dhpf_max(int64_t a, int64_t b) {\n"
         "  return a < b ? b : a;\n"
         "}\n";
}

PlanSource native::emitPlanSource(const ExecPlan &Plan) {
  return Emitter(Plan).run();
}
