//===- spmd/Serialize.h - SPMD program round-trip serialization ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A canonical textual form for compiled SPMD programs, so compilation and
/// execution can run in separate processes (dhpfc compile -> .spmd file ->
/// dhpfc run). serializeSpmdProgram renders every component — the variable
/// table, compiled statements, communication events (loop ASTs, in-place
/// analysis relations in the set syntax), and the node tree — as a single
/// s-expression, and embeds the mini-HPF source text (via printHpfProgram)
/// because the interpreter rebuilds layouts and array extents from it.
/// parseSpmdProgram reads the form back; the reparsed program executes
/// bit-identically to the in-memory original.
///
/// The parsed program owns its reconstructed hpf::Program (OwnedSource) and
/// has a null InPlaceRuntimeCheck: this library cannot link the core
/// analysis, so callers that want runtime contiguity checks wire
/// core::checkInPlaceAtRuntime themselves (dhpfc does).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_SERIALIZE_H
#define DHPF_SPMD_SERIALIZE_H

#include "spmd/SpmdProgram.h"
#include "support/Diag.h"

#include <memory>
#include <string>

namespace dhpf {
namespace spmd {

/// Renders \p P in the canonical textual form. Serialization requires
/// P.Source (set by the compiler) for the embedded program text.
std::string serializeSpmdProgram(const SpmdProgram &P);

/// Parses a serialized program, reporting malformed input into \p Diags
/// with line:col locations (works identically in Debug and Release
/// builds). Returns null on failure. On success the result owns its
/// source program and its InPlaceRuntimeCheck is null (see file comment).
std::unique_ptr<SpmdProgram>
parseSpmdProgram(const std::string &Text, DiagnosticEngine &Diags,
                 const std::string &FileName = "<spmd>");

} // namespace spmd
} // namespace dhpf

#endif // DHPF_SPMD_SERIALIZE_H
