//===- spmd/KernelABI.h - C ABI between host and native kernels ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary contract between the host engines (PlanExecutor,
/// rt::RankEngine) and the native kernels NativeGen emits and KernelCache
/// compiles with the system C compiler. The declarations live in the
/// DHPF_KERNEL_ABI_DECLS macro so there is exactly one source of truth:
/// this header expands it for the C++ host, and NativeGen stringizes the
/// same macro into the preamble of every generated translation unit.
///
/// Kernels see the world through DhpfCtx: raw array storage with
/// per-element ownership for the inline fast path, callbacks for the slow
/// paths (overlay/pending reads, pending writes, validity violations),
/// the statement-semantics trampoline, a progress hook (the Figure 4
/// compute/comm overlap window), and a growable (partner, flat) pair
/// buffer for communication-event enumeration.
///
/// Compatibility is verified at load time, not assumed: the kernel bakes
/// DHPF_KERNEL_ABI_VERSION, sizeof(DhpfCtx) as the C compiler saw it, and
/// the plan fingerprint into its DhpfKernelTable, and the loader rejects
/// any mismatch. Fields are append-only; any layout change must bump
/// DHPF_KERNEL_ABI_VERSION (which also invalidates every cached kernel,
/// because the version participates in the cache key).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SPMD_KERNELABI_H
#define DHPF_SPMD_KERNELABI_H

#include <stdint.h>

#define DHPF_KERNEL_ABI_VERSION 1

/// The symbol every kernel exports; resolves to a DhpfEntryFn.
#define DHPF_KERNEL_ENTRY_SYMBOL "dhpf_kernel_entry"

// clang-format off
#define DHPF_KERNEL_ABI_DECLS                                                 \
  typedef struct DhpfCtx DhpfCtx;                                             \
  typedef double (*DhpfReadSlowFn)(DhpfCtx *, int32_t, int64_t);              \
  typedef void (*DhpfWriteSlowFn)(DhpfCtx *, int32_t, int64_t, double);       \
  typedef double (*DhpfStmtCbFn)(DhpfCtx *, int32_t, int32_t);                \
  typedef void (*DhpfHookFn)(DhpfCtx *);                                      \
  struct DhpfCtx {                                                            \
    void *Host;                 /* engine-private trampoline state */         \
    int32_t Me;                 /* executing processor rank */                \
    int32_t NumArrays;                                                        \
    double **Data;              /* [array id] raw storage base */             \
    const int32_t *const *Owner; /* [array id] owner map, 0 = unowned */      \
    const int64_t *Size;        /* [array id] element count */                \
    double *Reads;              /* statement read buffer (>= max arity) */    \
    const double *LeafCostSec;  /* [leaf id] Cost * SecPerWork */             \
    double *Clock;              /* simulated per-proc clock (or a dummy) */   \
    uint64_t *Stmts;            /* statement-instance counter */              \
    uint64_t ProgressCtr;       /* instances since the last Progress() */     \
    uint64_t ProgressEvery;     /* pump period; UINT64_MAX disables */        \
    DhpfReadSlowFn ReadSlow;    /* non-local / out-of-range element read */   \
    DhpfWriteSlowFn WriteSlow;  /* non-local / out-of-range element write */  \
    DhpfStmtCbFn Stmt;          /* statement semantics: (ctx, leaf, n) */     \
    DhpfHookFn Progress;        /* transport progress pump */                 \
    uint32_t *PairQ;            /* event enumeration: partner ranks */        \
    int64_t *PairF;             /* event enumeration: flat elements */        \
    uint64_t NumPairs;                                                        \
    uint64_t CapPairs;                                                        \
    DhpfHookFn GrowPairs;       /* enlarge PairQ/PairF, update CapPairs */    \
  };                                                                          \
  typedef void (*DhpfComputeFn)(DhpfCtx *, int64_t *);                        \
  typedef void (*DhpfEnumFn)(DhpfCtx *, int64_t *);                           \
  typedef double (*DhpfReduceFn)(const double *, uint64_t);                   \
  typedef void (*DhpfCopySpanFn)(double *, const double *, uint64_t);         \
  typedef void (*DhpfGatherFn)(double *, const double *, const int64_t *,     \
                               uint64_t);                                     \
  typedef struct DhpfKernelTable {                                            \
    int32_t AbiVersion;         /* DHPF_KERNEL_ABI_VERSION at emit time */    \
    int32_t NumCompute;                                                       \
    int32_t NumEvents;                                                        \
    int32_t NumReduce;                                                        \
    uint64_t Fingerprint;       /* FNV-1a of the TU body */                   \
    uint64_t CtxSize;           /* sizeof(DhpfCtx) as the C compiler saw */   \
    const DhpfComputeFn *Compute;   /* [NumCompute] */                        \
    const DhpfEnumFn *EventSend;    /* [NumEvents], entries may be 0 */       \
    const DhpfEnumFn *EventRecv;    /* [NumEvents], entries may be 0 */       \
    const DhpfReduceFn *Reduce;     /* [NumReduce] */                         \
    DhpfCopySpanFn CopySpan;    /* Section 3.3 contiguous pack/unpack */      \
    DhpfGatherFn Gather;        /* element-by-element pack */                 \
  } DhpfKernelTable;
// clang-format on

DHPF_KERNEL_ABI_DECLS

typedef const DhpfKernelTable *(*DhpfEntryFn)(void);

#endif // DHPF_SPMD_KERNELABI_H
