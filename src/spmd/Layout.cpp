//===- spmd/Layout.cpp - Rank-independent run setup -----------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/Layout.h"

#include "hpf/Maps.h"
#include "support/MathExtras.h"

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::hpf;

namespace {

int64_t evalAffine(const AffineExpr &E,
                   const std::map<std::string, int64_t> &Bind) {
  int64_t V = E.K;
  for (auto &[Name, Coef] : E.Terms) {
    auto It = Bind.find(Name);
    assert(It != Bind.end() && "unbound parameter in affine expression");
    V = addOv(V, mulOv(Coef, It->second));
  }
  return V;
}

} // namespace

ProgramLayout spmd::resolveLayout(const SpmdProgram &Prog,
                                  const RunConfig &Config) {
  assert(Prog.Source && "compiled program lost its source");
  ProgramLayout L;
  if (!Prog.ProcName.empty()) {
    const ProcArray &PA = Prog.Source->procArray(Prog.ProcName);
    auto It = Config.ProcExtents.find(Prog.ProcName);
    for (unsigned D = 0; D != PA.rank(); ++D) {
      if (PA.Dims[D].isSymbolic()) {
        assert(It != Config.ProcExtents.end() &&
               "symbolic processor array needs extents at run time");
        L.ProcShape.push_back(It->second[D]);
      } else {
        L.ProcShape.push_back(PA.Dims[D].Fixed);
        if (It != Config.ProcExtents.end())
          assert(It->second[D] == PA.Dims[D].Fixed &&
                 "fixed extent overridden inconsistently");
      }
    }
  }
  L.NumProcs = 1;
  for (int64_t E : L.ProcShape)
    L.NumProcs *= E;
  L.AllBindings = MapBuilder(*Prog.Source)
                      .layoutBindings(Config.Params, Config.ProcExtents);
  return L;
}

std::map<std::string, ArrayStore>
spmd::buildArrayStores(const SpmdProgram &Prog, const RunConfig &Config,
                       const ProgramLayout &L) {
  const Program &P = *Prog.Source;
  const std::map<std::string, int64_t> &All = L.AllBindings;
  std::map<std::string, ArrayStore> Arrays;

  for (const auto &[Name, Decl] : P.arrays()) {
    std::vector<int64_t> Lo, Extent;
    for (const DimRange &R : Decl.Dims) {
      int64_t LoV = evalAffine(R.Lo, All), Hi = evalAffine(R.Hi, All);
      Lo.push_back(LoV);
      Extent.push_back(Hi - LoV + 1);
    }
    ArrayStore Store(Lo, Extent, Decl.ElemBytes);

    // Ownership, computed independently of the set framework (direct
    // block/cyclic formulas) so it cross-checks the compiled sets.
    const Align *Al = P.alignOf(Name);
    if (Al) {
      const TemplateDecl &T = P.templateDecl(Al->TemplateName);
      const Distribute &D = P.distributeOf(Al->TemplateName);
      auto ExtIt = Config.ProcExtents.find(D.ProcName);
      const ProcArray &PA = P.procArray(D.ProcName);
      std::vector<int64_t> PExt;
      for (unsigned I = 0; I != PA.rank(); ++I)
        PExt.push_back(PA.Dims[I].isSymbolic() ? ExtIt->second[I]
                                               : PA.Dims[I].Fixed);
      Store.Owner.assign(Store.size(), -1);
      std::vector<int64_t> Idx(Decl.rank());
      for (unsigned DD = 0; DD != Decl.rank(); ++DD)
        Idx[DD] = Lo[DD];
      for (;;) {
        // Owner coordinates along each distributed template dimension.
        int64_t Rank = 0, Mult = 1;
        unsigned PDim = 0;
        bool Known = true;
        for (unsigned TD = 0; TD != T.rank(); ++TD) {
          const DistSpec &Spec = D.Specs[TD];
          if (Spec.K == DistSpec::Kind::Star)
            continue;
          const AlignTerm &AT = Al->Terms[TD];
          assert(AT.K != AlignTerm::Kind::Replicated &&
                 "replicated alignment on a distributed dimension");
          int64_t Tpos = AT.K == AlignTerm::Kind::Constant
                             ? AT.Constant
                             : AT.Stride * Idx[AT.ArrayDim] + AT.Offset;
          int64_t TLo = evalAffine(T.Dims[TD].Lo, All);
          int64_t THi = evalAffine(T.Dims[TD].Hi, All);
          int64_t PN = PExt[PDim];
          int64_t Coord = 0;
          switch (Spec.K) {
          case DistSpec::Kind::Block: {
            int64_t B = ceilDiv(THi - TLo + 1, PN);
            Coord = (Tpos - TLo) / B;
            break;
          }
          case DistSpec::Kind::Cyclic:
            Coord = floorMod(Tpos - TLo, PN);
            break;
          case DistSpec::Kind::CyclicK:
            Coord = floorMod((Tpos - TLo) / Spec.BlockK, PN);
            break;
          case DistSpec::Kind::Star:
            break;
          }
          Rank += Coord * Mult;
          Mult *= PN;
          ++PDim;
        }
        if (Known)
          Store.Owner[Store.flatten(Idx)] = static_cast<int32_t>(Rank);
        unsigned DD = 0;
        while (DD < Decl.rank() && ++Idx[DD] >= Lo[DD] + Extent[DD]) {
          Idx[DD] = Lo[DD];
          ++DD;
        }
        if (DD == Decl.rank())
          break;
      }
    }
    Arrays.emplace(Name, std::move(Store));
  }
  return Arrays;
}

std::vector<int64_t> spmd::initialEnv(const SpmdProgram &Prog,
                                      const ProgramLayout &L, unsigned P) {
  const std::map<std::string, int64_t> &All = L.AllBindings;
  std::vector<int64_t> Env(Prog.Vars.size(), 0);
  // Parameters by name.
  for (unsigned S = 0; S != Prog.Vars.size(); ++S) {
    auto It = All.find(Prog.Vars.name(S));
    if (It != All.end())
      Env[S] = It->second;
  }
  // Representative-processor slots (mv*).
  std::vector<int64_t> Coords(L.ProcShape.size());
  unsigned R = P;
  for (unsigned D = 0; D != L.ProcShape.size(); ++D) {
    Coords[D] = R % L.ProcShape[D];
    R /= L.ProcShape[D];
  }
  for (unsigned D = 0; D != Prog.MySlots.size(); ++D) {
    const VPDimInfo &Info = Prog.ProcDims[D];
    int64_t V = Coords[D];
    if (Info.Virtualized) {
      switch (Info.Kind) {
      case DistSpec::Kind::Block:
        V = All.at(Info.BlockParam) * Coords[D] + Info.TmplLo;
        break;
      case DistSpec::Kind::Cyclic:
        V = Info.TmplLo + Coords[D]; // initial VP; VP loops re-bind
        break;
      case DistSpec::Kind::CyclicK:
        V = Info.TmplLo + Info.CyclicK * Coords[D];
        break;
      case DistSpec::Kind::Star:
        break;
      }
    }
    Env[Prog.MySlots[D]] = V;
  }
  for (unsigned D = 0; D != Prog.CoordSlots.size(); ++D)
    Env[Prog.CoordSlots[D]] = Coords[D];
  return Env;
}

unsigned spmd::linearRank(const std::vector<int64_t> &ProcShape,
                          const std::vector<int64_t> &Coords) {
  int64_t R = 0, M = 1;
  for (unsigned D = 0; D != Coords.size(); ++D) {
    assert(Coords[D] >= 0 && Coords[D] < ProcShape[D]);
    R += Coords[D] * M;
    M *= ProcShape[D];
  }
  return static_cast<unsigned>(R);
}

unsigned spmd::vpPartnerRank(const SpmdProgram &Prog,
                             const std::vector<int64_t> &ProcShape,
                             const std::map<std::string, int64_t> &AllBindings,
                             const std::vector<int64_t> &Partner) {
  std::vector<int64_t> Coords(Partner.size());
  for (unsigned D = 0; D != Partner.size(); ++D) {
    const VPDimInfo &Info = Prog.ProcDims[D];
    if (!Info.Virtualized) {
      Coords[D] = Partner[D];
      continue;
    }
    switch (Info.Kind) {
    case DistSpec::Kind::Block: {
      int64_t B = AllBindings.at(Info.BlockParam);
      Coords[D] = (Partner[D] - Info.TmplLo) / B;
      break;
    }
    case DistSpec::Kind::Cyclic:
      Coords[D] = floorMod(Partner[D] - Info.TmplLo, ProcShape[D]);
      break;
    case DistSpec::Kind::CyclicK:
      Coords[D] =
          floorMod((Partner[D] - Info.TmplLo) / Info.CyclicK, ProcShape[D]);
      break;
    case DistSpec::Kind::Star:
      break;
    }
  }
  return linearRank(ProcShape, Coords);
}

bool spmd::vpIsReal(const SpmdProgram &Prog,
                    const std::vector<int64_t> &ProcShape,
                    const std::map<std::string, int64_t> &AllBindings,
                    const std::vector<int64_t> &Partner) {
  for (unsigned D = 0; D != Partner.size(); ++D) {
    const VPDimInfo &Info = Prog.ProcDims[D];
    if (!Info.Virtualized)
      continue;
    int64_t Off = Partner[D] - Info.TmplLo;
    switch (Info.Kind) {
    case DistSpec::Kind::Block: {
      int64_t B = AllBindings.at(Info.BlockParam);
      if (floorMod(Off, B) != 0 || Off / B >= ProcShape[D])
        return false; // fictitious: not a block start, or past the array
      break;
    }
    case DistSpec::Kind::Cyclic:
      break; // every template cell is a real VP
    case DistSpec::Kind::CyclicK:
      if (floorMod(Off, Info.CyclicK) != 0)
        return false; // not a block start
      break;
    case DistSpec::Kind::Star:
      break;
    }
  }
  return true;
}

std::vector<char> spmd::resolveEventInPlace(const SpmdProgram &Prog,
                                            const ProgramLayout &L,
                                            unsigned &Upgrades) {
  std::vector<char> Flags(Prog.Events.size(), 0);
  for (unsigned EI = 0; EI != Prog.Events.size(); ++EI) {
    const CommEvent &Ev = Prog.Events[EI];
    bool InPlace = Ev.InPlaceProven;
    // The synthesized Section 3.3 runtime check: an undecided compile-time
    // verdict may become contiguous under this run's concrete bindings.
    // Every engine consults the same flags, so pack costs agree.
    if (!InPlace && Prog.InPlaceRuntimeCheck &&
        Ev.InPlace.Verdict == core::InPlaceVerdict::RuntimeCheck &&
        Prog.InPlaceRuntimeCheck(Ev.InPlace, L.AllBindings)) {
      InPlace = true;
      ++Upgrades;
    }
    Flags[EI] = InPlace ? 1 : 0;
  }
  return Flags;
}
