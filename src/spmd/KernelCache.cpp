//===- spmd/KernelCache.cpp - Compile + dlopen cache for native kernels ---===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "spmd/KernelCache.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace dhpf;
using namespace dhpf::spmd;
using namespace dhpf::spmd::native;

namespace {

std::string hex16(uint64_t K) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(K));
  return Buf;
}

/// mkdir -p, permissive about races with sibling ranks.
bool makeDirs(const std::string &Path) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I == Path.size() || Path[I] == '/') {
      if (!Cur.empty() && ::mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
        return false;
    }
    if (I < Path.size())
      Cur.push_back(Path[I]);
  }
  return true;
}

bool writeFileAtomic(const std::string &Path, const std::string &Data,
                     std::string *Err) {
  std::string Tmp = Path + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      *Err = "cannot write " + Tmp;
      return false;
    }
    Out << Data;
    if (!Out.flush()) {
      *Err = "short write to " + Tmp;
      return false;
    }
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    *Err = "rename " + Tmp + " -> " + Path + ": " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

/// Shell-quotes one path for the compile command line.
std::string shq(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out.push_back(C);
  }
  Out += "'";
  return Out;
}

obs::Counter *hitCtr() {
  return obs::MetricsRegistry::global().counter("spmd.kernel.cache.hits");
}
obs::Counter *missCtr() {
  return obs::MetricsRegistry::global().counter("spmd.kernel.cache.misses");
}
obs::Counter *compileCtr() {
  return obs::MetricsRegistry::global().counter(
      "spmd.kernel.compile.invocations");
}

/// Opens \p SoPath and resolves the verified kernel table, or explains why
/// it cannot be trusted. Failure leaves nothing mapped worth reclaiming
/// (dlclose on partial failure, handle leaked on success by design).
const DhpfKernelTable *openVerified(const std::string &SoPath,
                                    const PlanSource &Src, std::string *Err) {
  obs::TraceSpan Span(&obs::TraceBuffer::global(), "native:dlopen",
                      "spmd.native");
  void *H = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    const char *D = ::dlerror();
    *Err = "dlopen " + SoPath + ": " + (D ? D : "unknown error");
    return nullptr;
  }
  auto Entry =
      reinterpret_cast<DhpfEntryFn>(::dlsym(H, DHPF_KERNEL_ENTRY_SYMBOL));
  if (!Entry) {
    *Err = SoPath + ": missing symbol " DHPF_KERNEL_ENTRY_SYMBOL;
    ::dlclose(H);
    return nullptr;
  }
  const DhpfKernelTable *T = Entry();
  if (!T) {
    *Err = SoPath + ": null kernel table";
    ::dlclose(H);
    return nullptr;
  }
  if (T->AbiVersion != DHPF_KERNEL_ABI_VERSION) {
    *Err = SoPath + ": kernel ABI version " + std::to_string(T->AbiVersion) +
           " != host " + std::to_string(DHPF_KERNEL_ABI_VERSION);
    ::dlclose(H);
    return nullptr;
  }
  if (T->CtxSize != sizeof(DhpfCtx)) {
    *Err = SoPath + ": kernel sizeof(DhpfCtx) " + std::to_string(T->CtxSize) +
           " != host " + std::to_string(sizeof(DhpfCtx));
    ::dlclose(H);
    return nullptr;
  }
  if (T->Fingerprint != Src.Fingerprint) {
    *Err = SoPath + ": kernel fingerprint mismatch (stale cache entry)";
    ::dlclose(H);
    return nullptr;
  }
  if (T->NumCompute != Src.NumCompute || T->NumEvents != Src.NumEvents ||
      T->NumReduce != Src.NumReduce) {
    *Err = SoPath + ": kernel table shape mismatch";
    ::dlclose(H);
    return nullptr;
  }
  return T;
}

/// Runs the compiler on \p CPath producing \p SoPath (atomically). Returns
/// false with the compiler's stderr in \p Err on failure.
bool compileTU(const std::string &CPath, const std::string &SoPath,
               std::string *Err) {
  obs::TraceSpan Span(&obs::TraceBuffer::global(), "native:compile",
                      "spmd.native");
  compileCtr()->inc();
  std::string Pid = std::to_string(::getpid());
  std::string TmpSo = SoPath + ".tmp" + Pid;
  std::string ErrFile = SoPath + ".err" + Pid;
  // -fwrapv gives signed overflow two's-complement semantics, matching the
  // host engines' checked-arithmetic value behaviour for in-range programs.
  std::string Cmd = KernelCache::compilerCommand() +
                    " -O2 -fPIC -fwrapv -shared -o " + shq(TmpSo) + " " +
                    shq(CPath) + " 2> " + shq(ErrFile);
  int RC = std::system(Cmd.c_str());
  std::string Diag = readFile(ErrFile);
  ::unlink(ErrFile.c_str());
  if (RC != 0) {
    ::unlink(TmpSo.c_str());
    *Err = "kernel compile failed (" + Cmd + "):\n" + Diag;
    return false;
  }
  if (::rename(TmpSo.c_str(), SoPath.c_str()) != 0) {
    *Err = "rename " + TmpSo + " -> " + SoPath + ": " + std::strerror(errno);
    ::unlink(TmpSo.c_str());
    return false;
  }
  return true;
}

} // namespace

std::string KernelCache::compilerCommand() {
  const char *E = std::getenv("DHPF_CC");
  return (E && *E) ? E : "cc";
}

std::string KernelCache::resolvedDir() {
  const char *E = std::getenv("DHPF_KERNEL_CACHE");
  if (E && (std::strcmp(E, "off") == 0 || std::strcmp(E, "0") == 0))
    return "";
  if (E && *E)
    return E;
  if (const char *X = std::getenv("XDG_CACHE_HOME"))
    if (*X)
      return std::string(X) + "/dhpf-kernels";
  if (const char *H = std::getenv("HOME"))
    if (*H)
      return std::string(H) + "/.cache/dhpf-kernels";
  return "/tmp/dhpf-kernels";
}

KernelCache &KernelCache::global() {
  static KernelCache C;
  return C;
}

unsigned KernelCache::sweepStale(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return 0;
  unsigned Removed = 0;
  while (const dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("dhpf-", 0) != 0)
      continue;
    // Temp droppings look like dhpf-<hex>.c.tmp<pid>, dhpf-<hex>.so.tmp<pid>
    // or dhpf-<hex>.so.err<pid> (see writeFileAtomic / compileTU).
    size_t Mark = Name.rfind(".tmp");
    size_t SuffixLen = 4;
    if (Mark == std::string::npos) {
      Mark = Name.rfind(".err");
      if (Mark == std::string::npos)
        continue;
    }
    std::string PidStr = Name.substr(Mark + SuffixLen);
    if (PidStr.empty() ||
        PidStr.find_first_not_of("0123456789") != std::string::npos)
      continue;
    errno = 0;
    long Pid = std::strtol(PidStr.c_str(), nullptr, 10);
    if (errno != 0 || Pid <= 0)
      continue;
    // A live writer keeps its temp file; only a dead pid's file is a
    // crashed compile's dropping. EPERM means "alive but not ours".
    if (::kill(static_cast<pid_t>(Pid), 0) == 0 || errno != ESRCH)
      continue;
    if (::unlink((Dir + "/" + Name).c_str()) == 0)
      ++Removed;
  }
  ::closedir(D);
  return Removed;
}

bool KernelCache::probeLocked() {
  if (ProbeState == 0) {
    std::string Cmd = compilerCommand() + " --version 2>/dev/null";
    FILE *P = ::popen(Cmd.c_str(), "r");
    if (P) {
      char Line[256] = {0};
      if (std::fgets(Line, sizeof(Line), P)) {
        size_t N = std::strlen(Line);
        while (N && (Line[N - 1] == '\n' || Line[N - 1] == '\r'))
          Line[--N] = 0;
        Version = Line;
      }
      int RC = ::pclose(P);
      ProbeState = (RC == 0 && !Version.empty()) ? 1 : -1;
    } else {
      ProbeState = -1;
    }
  }
  return ProbeState == 1;
}

bool KernelCache::compilerAvailable() {
  std::lock_guard<std::mutex> L(M);
  return probeLocked();
}

std::string KernelCache::compilerVersion() {
  std::lock_guard<std::mutex> L(M);
  probeLocked();
  return Version;
}

const Kernel *KernelCache::get(const PlanSource &Src, std::string *Err) {
  std::lock_guard<std::mutex> L(M);
  if (!probeLocked()) {
    *Err = "no working C compiler: `" + compilerCommand() +
           " --version` failed (set DHPF_CC to override)";
    return nullptr;
  }

  uint64_t Key =
      fnv1a64(Version + '\0' + std::to_string(DHPF_KERNEL_ABI_VERSION) +
              '\0' + Src.C);
  auto It = Modules.find(Key);
  if (It != Modules.end()) {
    hitCtr()->inc();
    return &It->second;
  }

  std::string Dir = resolvedDir();
  bool Disk = !Dir.empty();
  std::string Base;
  if (Disk) {
    if (!makeDirs(Dir)) {
      *Err = "cannot create kernel cache dir " + Dir + ": " +
             std::strerror(errno);
      return nullptr;
    }
    // First open of this directory: clear temp files left by compiles
    // that crashed between write and rename (their pids are dead).
    if (Swept.insert(Dir).second)
      sweepStale(Dir);
    Base = Dir + "/dhpf-" + hex16(Key);
  } else {
    Base = "/tmp/dhpf-kernel-" + std::to_string(::getpid()) + "-" +
           hex16(Key);
  }
  std::string CPath = Base + ".c", SoPath = Base + ".so";

  Kernel K;
  // Warm disk cache: an existing verified .so skips the compiler entirely.
  if (Disk && fileExists(SoPath)) {
    std::string StaleErr;
    if (const DhpfKernelTable *T = openVerified(SoPath, Src, &StaleErr)) {
      K.Table = T;
      K.CPath = fileExists(CPath) ? CPath : std::string();
      K.SoPath = SoPath;
      hitCtr()->inc();
      return &Modules.emplace(Key, std::move(K)).first->second;
    }
    // Stale or foreign: fall through and recompile over it.
  }

  missCtr()->inc();
  if (!writeFileAtomic(CPath, Src.C, Err))
    return nullptr;
  if (!compileTU(CPath, SoPath, Err)) {
    if (!Disk)
      ::unlink(CPath.c_str());
    return nullptr;
  }
  const DhpfKernelTable *T = openVerified(SoPath, Src, Err);
  if (!Disk) {
    // Private temp files: the mapping survives the unlink.
    ::unlink(SoPath.c_str());
    ::unlink(CPath.c_str());
  }
  if (!T)
    return nullptr;
  K.Table = T;
  if (Disk) {
    K.CPath = CPath;
    K.SoPath = SoPath;
  }
  return &Modules.emplace(Key, std::move(K)).first->second;
}

void *KernelCache::loadRaw(const std::string &CSrc, const std::string &Symbol,
                           std::string *Err) {
  std::lock_guard<std::mutex> L(M);
  if (!probeLocked()) {
    *Err = "no working C compiler: `" + compilerCommand() +
           " --version` failed (set DHPF_CC to override)";
    return nullptr;
  }
  std::string Base = "/tmp/dhpf-raw-" + std::to_string(::getpid()) + "-" +
                     hex16(fnv1a64(CSrc));
  std::string CPath = Base + ".c", SoPath = Base + ".so";
  if (!writeFileAtomic(CPath, CSrc, Err))
    return nullptr;
  if (!compileTU(CPath, SoPath, Err)) {
    ::unlink(CPath.c_str());
    return nullptr;
  }
  void *H = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  ::unlink(SoPath.c_str());
  ::unlink(CPath.c_str());
  if (!H) {
    const char *D = ::dlerror();
    *Err = "dlopen " + SoPath + ": " + (D ? D : "unknown error");
    return nullptr;
  }
  void *S = ::dlsym(H, Symbol.c_str());
  if (!S)
    *Err = SoPath + ": missing symbol " + Symbol;
  return S;
}
