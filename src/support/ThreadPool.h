//===- support/ThreadPool.h - Small fixed-size worker pool ---------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the compiler driver to run
/// independent per-nest analyses (partitioning, communication equations,
/// loop splitting) concurrently. The pool is explicit — constructed by its
/// owner, joined in the destructor, no globals — per the repo's
/// no-static-constructor rule. Work is submitted through parallelFor, which
/// hands out indices from an atomic counter so callers keep results in
/// deterministic index order regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SUPPORT_THREADPOOL_H
#define DHPF_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dhpf {

class ThreadPool {
public:
  /// Creates \p NumThreads workers (0 selects hardwareThreads()).
  explicit ThreadPool(unsigned NumThreads = 0) {
    if (NumThreads == 0)
      NumThreads = hardwareThreads();
    Workers.reserve(NumThreads);
    for (unsigned I = 0; I != NumThreads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stopping = true;
    }
    CV.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return Workers.size(); }

  /// Runs Fn(0) .. Fn(N-1) across the pool and the calling thread; returns
  /// when all calls finished. Indices are claimed from an atomic counter,
  /// so every index runs exactly once. Fn must not throw.
  template <typename Fn> void parallelFor(size_t N, Fn &&F) {
    if (N == 0)
      return;
    auto State = std::make_shared<ForState>();
    State->N = N;
    auto Work = [State, &F] {
      for (size_t I = State->Next.fetch_add(1, std::memory_order_relaxed);
           I < State->N;
           I = State->Next.fetch_add(1, std::memory_order_relaxed))
        F(I);
    };
    size_t Helpers = Workers.size() < N ? Workers.size() : N;
    {
      std::lock_guard<std::mutex> Lock(M);
      for (size_t I = 0; I != Helpers; ++I)
        Tasks.push([State, Work] {
          Work();
          if (State->Active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> DoneLock(State->DoneM);
            State->DoneCV.notify_all();
          }
        });
      State->Active.store(Helpers, std::memory_order_relaxed);
    }
    CV.notify_all();
    // The calling thread participates too (and does all the work when the
    // pool is size zero or fully busy).
    Work();
    std::unique_lock<std::mutex> DoneLock(State->DoneM);
    State->DoneCV.wait(DoneLock, [&] {
      return State->Active.load(std::memory_order_acquire) == 0;
    });
  }

  /// The host's hardware concurrency, at least 1.
  static unsigned hardwareThreads() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

private:
  struct ForState {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Active{0};
    size_t N = 0;
    std::mutex DoneM;
    std::condition_variable DoneCV;
  };

  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(M);
        CV.wait(Lock, [&] { return Stopping || !Tasks.empty(); });
        if (Stopping && Tasks.empty())
          return;
        Task = std::move(Tasks.front());
        Tasks.pop();
      }
      Task();
    }
  }

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex M;
  std::condition_variable CV;
  bool Stopping = false;
};

} // namespace dhpf

#endif // DHPF_SUPPORT_THREADPOOL_H
