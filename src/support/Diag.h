//===- support/Diag.h - Source-located diagnostics -----------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable, source-located diagnostics for every textual front end (the
/// mini-HPF parser, the set/relation parser, the SPMD program reader) and
/// for the compiler driver. A DiagnosticEngine collects Diagnostic records
/// (severity, file:line:col, message); producers report and keep going
/// where recovery is possible, and consumers ask hasErrors() afterwards.
/// Reporting works identically in Debug and Release builds — rejecting
/// malformed input never depends on assert().
///
/// Expected<T> is the companion result type: either a value or failure,
/// with the details living in the DiagnosticEngine the producer reported
/// into.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SUPPORT_DIAG_H
#define DHPF_SUPPORT_DIAG_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dhpf {

/// A position in a textual input. Line and column are 1-based; 0 means
/// "unknown" (e.g. a whole-file condition such as an unterminated block).
struct SourceLoc {
  std::string File; ///< display name, e.g. "prog.hpf" or "<string>"
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(std::string File, unsigned Line = 0, unsigned Col = 0)
      : File(std::move(File)), Line(Line), Col(Col) {}

  bool isValid() const { return !File.empty() || Line != 0; }
  /// "file:line:col", omitting unknown trailing parts.
  std::string str() const;
};

enum class Severity : uint8_t { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  Severity S = Severity::Error;
  SourceLoc Loc;
  std::string Message;

  /// "file:line:col: error: message".
  std::string str() const;
};

/// Collects diagnostics for one front-end invocation. Not thread-safe; use
/// one engine per parse/compile.
class DiagnosticEngine {
public:
  void report(Severity S, SourceLoc Loc, std::string Message) {
    if (S == Severity::Error)
      ++NumErrors;
    Diags.push_back({S, std::move(Loc), std::move(Message)});
  }
  void error(SourceLoc Loc, std::string Message) {
    report(Severity::Error, std::move(Loc), std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(Severity::Warning, std::move(Loc), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(Severity::Note, std::move(Loc), std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// All diagnostics formatted one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

/// A value-or-failure result. The failure detail is not stored here: the
/// producer reported it into the DiagnosticEngine it was handed. Cheap to
/// return by value; test with operator bool before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {} // implicit: success
  static Expected failure() { return Expected(); }

  explicit operator bool() const { return Val.has_value(); }
  T &operator*() {
    assert(Val && "dereferencing failed Expected");
    return *Val;
  }
  const T &operator*() const {
    assert(Val && "dereferencing failed Expected");
    return *Val;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }
  /// Moves the value out (success only).
  T take() {
    assert(Val && "taking failed Expected");
    return std::move(*Val);
  }

private:
  Expected() = default;
  std::optional<T> Val;
};

} // namespace dhpf

#endif // DHPF_SUPPORT_DIAG_H
