//===- support/Timer.h - Phase timing for compile-time breakdowns --------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical phase timers used to reproduce the paper's Table 1
/// ("Breakdown of dHPF compilation time"). Phases are identified by name;
/// nested phases accumulate into their own bucket, and a report can print
/// each phase's share of the total, mirroring the paper's table layout.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SUPPORT_TIMER_H
#define DHPF_SUPPORT_TIMER_H

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace dhpf {

/// Accumulates wall-clock time per named phase.
///
/// The registry is explicit (no globals, per the no-static-constructor rule);
/// the compiler driver owns one and threads it through the phases it times.
class PhaseTimers {
public:
  /// RAII scope that charges elapsed wall-clock time to phase \p Name.
  class Scope {
  public:
    Scope(PhaseTimers &Timers, const std::string &Name)
        : Timers(Timers), Name(Name),
          Start(std::chrono::steady_clock::now()) {}
    ~Scope() {
      auto End = std::chrono::steady_clock::now();
      Timers.add(Name, std::chrono::duration<double>(End - Start).count());
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    PhaseTimers &Timers;
    std::string Name;
    std::chrono::steady_clock::time_point Start;
  };

  /// Adds \p Seconds to the accumulated time of phase \p Name.
  void add(const std::string &Name, double Seconds) {
    auto It = Index.find(Name);
    if (It == Index.end()) {
      Index.emplace(Name, Entries.size());
      Entries.push_back({Name, Seconds, 1});
      return;
    }
    Entries[It->second].Seconds += Seconds;
    ++Entries[It->second].Count;
  }

  /// Returns the accumulated seconds for \p Name (0 if never timed).
  double seconds(const std::string &Name) const {
    auto It = Index.find(Name);
    return It == Index.end() ? 0.0 : Entries[It->second].Seconds;
  }

  /// Returns the number of times \p Name was timed.
  unsigned count(const std::string &Name) const {
    auto It = Index.find(Name);
    return It == Index.end() ? 0 : Entries[It->second].Count;
  }

  struct Entry {
    std::string Name;
    double Seconds = 0;
    unsigned Count = 0;
  };

  /// All phases in first-seen order (stable for report printing).
  const std::vector<Entry> &entries() const { return Entries; }

  /// Merges another timer registry into this one.
  void merge(const PhaseTimers &Other) {
    for (const Entry &E : Other.Entries) {
      add(E.Name, E.Seconds);
      // `add` counted one occurrence; adjust to the true count.
      Entries[Index[E.Name]].Count += E.Count - 1;
    }
  }

  void clear() {
    Index.clear();
    Entries.clear();
  }

private:
  std::map<std::string, size_t> Index;
  std::vector<Entry> Entries;
};

} // namespace dhpf

#endif // DHPF_SUPPORT_TIMER_H
