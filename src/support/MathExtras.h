//===- support/MathExtras.h - Checked integer arithmetic helpers ---------===//
//
// Part of dhpf-sets, a reproduction of "Using Integer Sets for Data-Parallel
// Program Analysis and Optimization" (Adve & Mellor-Crummey, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer math helpers used throughout the Presburger set engine:
/// overflow-checked 64-bit arithmetic (128-bit intermediates), gcd/lcm, and
/// the floor/ceil division variants that Fourier-Motzkin elimination needs.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SUPPORT_MATHEXTRAS_H
#define DHPF_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace dhpf {

/// Multiplies two 64-bit integers, asserting that the result fits.
inline int64_t mulOv(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) * B;
  assert(R >= INT64_MIN && R <= INT64_MAX && "integer overflow in mulOv");
  return static_cast<int64_t>(R);
}

/// Adds two 64-bit integers, asserting that the result fits.
inline int64_t addOv(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) + B;
  assert(R >= INT64_MIN && R <= INT64_MAX && "integer overflow in addOv");
  return static_cast<int64_t>(R);
}

/// Subtracts two 64-bit integers, asserting that the result fits.
inline int64_t subOv(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) - B;
  assert(R >= INT64_MIN && R <= INT64_MAX && "integer overflow in subOv");
  return static_cast<int64_t>(R);
}

/// Returns the non-negative greatest common divisor; gcd(0, 0) == 0.
inline int64_t gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Returns the least common multiple of \p A and \p B (non-negative).
inline int64_t lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  return mulOv(A / gcd64(A, B), B < 0 ? -B : B);
}

/// Floor division: largest q with q * D <= N. Requires D != 0.
inline int64_t floorDiv(int64_t N, int64_t D) {
  assert(D != 0 && "division by zero");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t Q = N / D;
  if (N % D != 0 && N < 0)
    --Q;
  return Q;
}

/// Ceiling division: smallest q with q * D >= N. Requires D != 0.
inline int64_t ceilDiv(int64_t N, int64_t D) {
  assert(D != 0 && "division by zero");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t Q = N / D;
  if (N % D != 0 && N > 0)
    ++Q;
  return Q;
}

/// Mathematical modulus: result in [0, D). Requires D > 0.
inline int64_t floorMod(int64_t N, int64_t D) {
  assert(D > 0 && "floorMod requires a positive modulus");
  int64_t R = N % D;
  if (R < 0)
    R += D;
  return R;
}

} // namespace dhpf

#endif // DHPF_SUPPORT_MATHEXTRAS_H
