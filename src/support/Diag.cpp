//===- support/Diag.cpp - Source-located diagnostics ---------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <sstream>

using namespace dhpf;

std::string SourceLoc::str() const {
  std::ostringstream OS;
  OS << (File.empty() ? "<input>" : File);
  if (Line) {
    OS << ':' << Line;
    if (Col)
      OS << ':' << Col;
  }
  return OS.str();
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": ";
  switch (S) {
  case Severity::Note:
    OS << "note: ";
    break;
  case Severity::Warning:
    OS << "warning: ";
    break;
  case Severity::Error:
    OS << "error: ";
    break;
  }
  OS << Message;
  return OS.str();
}

std::string DiagnosticEngine::str() const {
  std::string R;
  for (const Diagnostic &D : Diags) {
    R += D.str();
    R += '\n';
  }
  return R;
}
