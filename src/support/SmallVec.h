//===- support/SmallVec.h - Inline small-vector for coefficient rows -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CoefVec: a vector of int64_t with inline storage for the first
/// kInlineCoefs elements. Constraint rows in the set engine are short (the
/// Figure 7 apps rarely exceed a dozen columns including the constant), so
/// storing them inline removes the per-row heap allocation that dominated
/// the comm-set equation profile. The API is the subset of std::vector the
/// engine uses; growth past the inline capacity spills to the heap.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_SUPPORT_SMALLVEC_H
#define DHPF_SUPPORT_SMALLVEC_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>

namespace dhpf {

/// Rows of up to this many columns (including the constant column) live
/// inline in the owning Row with no heap traffic.
inline constexpr unsigned kInlineCoefs = 12;

class CoefVec {
public:
  using value_type = int64_t;
  using iterator = int64_t *;
  using const_iterator = const int64_t *;

  CoefVec() : Ptr(Inline) {}
  CoefVec(size_t N, int64_t V) : Ptr(Inline) { assign(N, V); }
  CoefVec(std::initializer_list<int64_t> IL) : Ptr(Inline) {
    reserve(IL.size());
    for (int64_t V : IL)
      Ptr[Sz++] = V;
  }

  CoefVec(const CoefVec &O) : Ptr(Inline) {
    reserve(O.Sz);
    std::memcpy(Ptr, O.Ptr, O.Sz * sizeof(int64_t));
    Sz = O.Sz;
  }

  CoefVec(CoefVec &&O) noexcept : Ptr(Inline) {
    if (O.Ptr != O.Inline) {
      // Steal the heap buffer.
      Ptr = O.Ptr;
      Cap = O.Cap;
      Sz = O.Sz;
      O.Ptr = O.Inline;
      O.Cap = kInlineCoefs;
      O.Sz = 0;
      return;
    }
    std::memcpy(Inline, O.Inline, O.Sz * sizeof(int64_t));
    Sz = O.Sz;
    O.Sz = 0;
  }

  CoefVec &operator=(const CoefVec &O) {
    if (this == &O)
      return *this;
    reserve(O.Sz);
    std::memcpy(Ptr, O.Ptr, O.Sz * sizeof(int64_t));
    Sz = O.Sz;
    return *this;
  }

  CoefVec &operator=(CoefVec &&O) noexcept {
    if (this == &O)
      return *this;
    if (O.Ptr != O.Inline) {
      if (Ptr != Inline)
        ::operator delete(Ptr);
      Ptr = O.Ptr;
      Cap = O.Cap;
      Sz = O.Sz;
      O.Ptr = O.Inline;
      O.Cap = kInlineCoefs;
      O.Sz = 0;
      return *this;
    }
    reserve(O.Sz);
    std::memcpy(Ptr, O.Inline, O.Sz * sizeof(int64_t));
    Sz = O.Sz;
    O.Sz = 0;
    return *this;
  }

  ~CoefVec() {
    if (Ptr != Inline)
      ::operator delete(Ptr);
  }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  int64_t &operator[](size_t I) {
    assert(I < Sz);
    return Ptr[I];
  }
  int64_t operator[](size_t I) const {
    assert(I < Sz);
    return Ptr[I];
  }

  int64_t &back() {
    assert(Sz);
    return Ptr[Sz - 1];
  }
  int64_t back() const {
    assert(Sz);
    return Ptr[Sz - 1];
  }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Sz; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Sz; }

  void assign(size_t N, int64_t V) {
    reserve(N);
    std::fill(Ptr, Ptr + N, V);
    Sz = static_cast<uint32_t>(N);
  }

  void resize(size_t N, int64_t V = 0) {
    reserve(N);
    if (N > Sz)
      std::fill(Ptr + Sz, Ptr + N, V);
    Sz = static_cast<uint32_t>(N);
  }

  void push_back(int64_t V) {
    if (Sz == Cap)
      grow(Sz + 1);
    Ptr[Sz++] = V;
  }

  iterator insert(iterator Pos, int64_t V) {
    size_t Idx = static_cast<size_t>(Pos - Ptr);
    assert(Idx <= Sz);
    if (Sz == Cap)
      grow(Sz + 1); // invalidates Pos; recompute from Idx
    std::memmove(Ptr + Idx + 1, Ptr + Idx, (Sz - Idx) * sizeof(int64_t));
    Ptr[Idx] = V;
    ++Sz;
    return Ptr + Idx;
  }

  iterator erase(iterator Pos) {
    size_t Idx = static_cast<size_t>(Pos - Ptr);
    assert(Idx < Sz);
    std::memmove(Ptr + Idx, Ptr + Idx + 1, (Sz - Idx - 1) * sizeof(int64_t));
    --Sz;
    return Ptr + Idx;
  }

  void reserve(size_t N) {
    if (N > Cap)
      grow(N);
  }

  friend bool operator==(const CoefVec &A, const CoefVec &B) {
    return A.Sz == B.Sz &&
           std::memcmp(A.Ptr, B.Ptr, A.Sz * sizeof(int64_t)) == 0;
  }
  friend bool operator!=(const CoefVec &A, const CoefVec &B) {
    return !(A == B);
  }
  friend bool operator<(const CoefVec &A, const CoefVec &B) {
    return std::lexicographical_compare(A.begin(), A.end(), B.begin(),
                                        B.end());
  }

private:
  void grow(size_t MinCap) {
    size_t NewCap = Cap * 2;
    if (NewCap < MinCap)
      NewCap = MinCap;
    int64_t *NewPtr =
        static_cast<int64_t *>(::operator new(NewCap * sizeof(int64_t)));
    std::memcpy(NewPtr, Ptr, Sz * sizeof(int64_t));
    if (Ptr != Inline)
      ::operator delete(Ptr);
    Ptr = NewPtr;
    Cap = static_cast<uint32_t>(NewCap);
  }

  int64_t *Ptr;
  uint32_t Sz = 0;
  uint32_t Cap = kInlineCoefs;
  int64_t Inline[kInlineCoefs];
};

} // namespace dhpf

#endif // DHPF_SUPPORT_SMALLVEC_H
