//===- hpf/HpfPrinter.h - Print a Program in the textual syntax ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of hpf/HpfParser.h: renders a Program in the line-oriented
/// surface syntax, canonically (declarations sorted by name, one canonical
/// spelling per construct), so that
///
///   parseHpfProgram(printHpfProgram(P))
///
/// reproduces P up to that canonical form, and printing the reparsed
/// program is a fixed point. Used to export builder-API programs as .hpf
/// files and to embed the source program in serialized SPMD artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_HPF_HPFPRINTER_H
#define DHPF_HPF_HPFPRINTER_H

#include "hpf/Program.h"

#include <string>

namespace dhpf {
namespace hpf {

/// Renders \p P in the textual mini-HPF syntax.
std::string printHpfProgram(const Program &P);

/// Renders one affine expression (terms then constant), e.g. "2*i+1".
std::string printAffine(const AffineExpr &E);

} // namespace hpf
} // namespace dhpf

#endif // DHPF_HPF_HPFPRINTER_H
