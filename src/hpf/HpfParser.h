//===- hpf/HpfParser.h - Textual front end for the mini-HPF IR -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small line-oriented surface syntax for mini-HPF programs, so compiler
/// inputs can be written as text (examples, tests, fuzzing) instead of only
/// through the builder API. One declaration or statement per line; '!'
/// starts a comment. Keywords:
///
///   program <name>
///   param <name>...
///   processors <name>(<extent|*sym>, ...)
///   template <name>(<lo>:<hi>, ...)
///   array <name>(<lo>:<hi>, ...) [align (<i>,<j>,..) with T(<expr>|*,..)]
///   distribute <T>(block|cyclic|cyclic(k)|*, ...) onto <P>
///   procedure <name> ... endprocedure
///   timeloop <var> = <lo>, <hi> ... endloop
///   nest <name> [vectorize <level>]
///     do <var> = <lo-expr>, <hi-expr>
///     <W>(<subs>) = <R1>(<subs>) [<R2>(...) ...]
///         [onhome <A>(<subs>)] [cost <c>] [sem <id>]
///   endnest
///   reduce sum|max|maxloc <name> [elems <n>]
///
/// Bound and subscript expressions are affine over loop variables and
/// parameters: terms like `2*i`, `i+1`, `N-1`, `pv+1`, constants.
///
/// Malformed input is rejected with recoverable, source-located
/// diagnostics (file:line:col) in Debug and Release builds alike: a bad
/// line is reported and the parser resynchronizes at the next line, so one
/// invocation surfaces every error in the input.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_HPF_HPFPARSER_H
#define DHPF_HPF_HPFPARSER_H

#include "hpf/Program.h"
#include "support/Diag.h"

#include <memory>
#include <string>

namespace dhpf {
namespace hpf {

/// Parses the textual syntax above into a Program, reporting malformed
/// input into \p Diags (locations use \p FileName). Fails — after scanning
/// the whole input for further diagnostics — iff any error was reported.
Expected<std::unique_ptr<Program>>
parseHpfProgram(const std::string &Text, DiagnosticEngine &Diags,
                const std::string &FileName = "<hpf>");

/// Convenience wrapper for trusted input (tests, examples): prints any
/// diagnostics to stderr and aborts on malformed input — unconditionally,
/// not via assert(), so Release builds reject bad input identically.
std::unique_ptr<Program> parseHpfProgram(const std::string &Text);

} // namespace hpf
} // namespace dhpf

#endif // DHPF_HPF_HPFPARSER_H
