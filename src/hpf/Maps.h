//===- hpf/Maps.h - Primitive sets and mappings (paper Figure 2) ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the primitive sets and mappings of the paper's Section 2 from the
/// mini-HPF IR: proc (processor index space), loop (iteration space),
/// Layout : proc -> data (from ALIGN and DISTRIBUTE), and
/// RefMap : loop -> data (from affine subscripts).
///
/// Distributions with symbolic parameters (unknown processor counts or
/// block sizes) cannot be expressed directly — they would need products of
/// unknowns — so this module realizes Section 4.1's *optimized virtual
/// processor model*: the layout maps virtual-processor indices (in template
/// coordinates) to data, and per-dimension VPDimInfo records how physical
/// processors map to virtual ones for code generation (Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_HPF_MAPS_H
#define DHPF_HPF_MAPS_H

#include "hpf/Program.h"
#include "pset/Relation.h"

#include <map>
#include <string>
#include <vector>

namespace dhpf {
namespace hpf {

/// How one processor/VP dimension of a layout maps to physical processors.
struct VPDimInfo {
  DistSpec::Kind Kind = DistSpec::Kind::Block;
  /// True when the layout dimension is a virtual processor index (template
  /// coordinates); false when it is a physical processor index.
  bool Virtualized = false;
  /// Processor-array extent: a constant or a parameter name.
  int64_t ProcFixed = 0;
  std::string ProcSym;
  /// Block size: a constant or a parameter name (ceil(extent/P), bound at
  /// run time). Meaningful for Block.
  int64_t BlockFixed = 0;
  std::string BlockParam;
  int64_t CyclicK = 0; // for CyclicK
  int64_t TmplLo = 1;  // template lower bound (constant required)
  unsigned TemplateDim = 0;
};

/// A layout mapping plus its physical/virtual dimension structure.
struct LayoutResult {
  Relation Map; ///< proc/VP index tuple -> owned array elements
  std::vector<VPDimInfo> Dims;
  std::string ProcName; ///< owning processor array ("" for replicated)
  bool anyVirtual() const {
    for (const VPDimInfo &D : Dims)
      if (D.Virtualized)
        return true;
    return false;
  }
};

/// Builds primitive sets and mappings for one program.
class MapBuilder {
public:
  explicit MapBuilder(const Program &P) : Prog(P) {}

  /// The physical processor index space: { [p0..] : 0 <= pk < extent }.
  /// Symbolic extents appear as parameters.
  Relation procSet(const std::string &ProcName) const;

  /// The index set of an array: { [a0..] : bounds }.
  Relation dataSet(const std::string &ArrayName) const;

  /// Layout_A : proc/VP -> data (paper Figure 2: Dist o Align). Replicated
  /// arrays (no ALIGN) yield a rank-0 domain mapping to all elements.
  LayoutResult layout(const std::string &ArrayName) const;

  /// The iteration space of a nest: { [i0..] : bounds }, with bounds affine
  /// in outer loop variables and parameters.
  Relation loopSet(const ComputeNest &Nest) const;

  /// RefMap_r : loop -> data for one reference of a nest.
  Relation refMap(const ComputeNest &Nest, const Reference &Ref) const;

  /// Computes concrete values for layout parameters (symbolic processor
  /// extents and block sizes B = ceil(extent/P)) given processor-array
  /// extents and program parameter values. Returns Bindings extended with
  /// the block-size parameters.
  std::map<std::string, int64_t>
  layoutBindings(const std::map<std::string, int64_t> &Bindings,
                 const std::map<std::string, std::vector<int64_t>>
                     &ProcExtents) const;

  /// The name of the block-size parameter for a template dimension.
  static std::string blockParamName(const std::string &Tmpl, unsigned Dim) {
    return "B$" + Tmpl + "$" + std::to_string(Dim);
  }

  const Program &program() const { return Prog; }

private:
  const Program &Prog;

  /// Evaluates an AffineExpr to a constant; asserts if it involves names.
  static int64_t constOf(const AffineExpr &E);
};

} // namespace hpf
} // namespace dhpf

#endif // DHPF_HPF_MAPS_H
