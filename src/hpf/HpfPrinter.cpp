//===- hpf/HpfPrinter.cpp - Print a Program in the textual syntax --------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "hpf/HpfPrinter.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace dhpf;
using namespace dhpf::hpf;

namespace {

void printTerm(std::ostringstream &OS, const std::string &Name, int64_t Coef,
               bool First) {
  if (Coef < 0) {
    OS << '-';
    Coef = -Coef;
  } else if (!First) {
    OS << '+';
  }
  if (Coef != 1)
    OS << Coef << '*';
  OS << Name;
}

void printRanges(std::ostringstream &OS, const std::vector<DimRange> &Dims) {
  OS << '(';
  for (unsigned D = 0; D != Dims.size(); ++D) {
    if (D)
      OS << ", ";
    OS << printAffine(Dims[D].Lo) << ':' << printAffine(Dims[D].Hi);
  }
  OS << ')';
}

void printRef(std::ostringstream &OS, const Reference &R) {
  OS << R.Array << '(';
  for (unsigned I = 0; I != R.Subs.size(); ++I) {
    if (I)
      OS << ',';
    OS << printAffine(R.Subs[I]);
  }
  OS << ')';
}

/// Prints a double so a reparse recovers the identical value: integers
/// without a fraction, everything else with round-trip precision.
void printCost(std::ostringstream &OS, double V) {
  if (V == std::floor(V) && std::abs(V) < 1e15) {
    OS << static_cast<int64_t>(V);
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  OS << Buf;
}

void printNest(std::ostringstream &OS, const ComputeNest &N,
               const std::string &Pad) {
  OS << Pad << "nest " << N.Name;
  if (N.VectorizeLevel)
    OS << " vectorize " << N.VectorizeLevel;
  OS << '\n';
  for (const Loop &L : N.Loops)
    OS << Pad << "  do " << L.Var << " = " << printAffine(L.Lo) << ", "
       << printAffine(L.Hi) << '\n';
  for (const Statement &S : N.Stmts) {
    OS << Pad << "  ";
    printRef(OS, S.Write);
    OS << " =";
    for (const Reference &R : S.Reads) {
      OS << ' ';
      printRef(OS, R);
    }
    for (const Reference &R : S.OnHome) {
      OS << " onhome ";
      printRef(OS, R);
    }
    if (S.Cost != 1.0) {
      OS << " cost ";
      printCost(OS, S.Cost);
    }
    if (S.SemanticsId >= 0)
      OS << " sem " << S.SemanticsId;
    OS << '\n';
  }
  OS << Pad << "endnest\n";
}

void printPhase(std::ostringstream &OS, const Phase &Ph,
                const std::string &Pad) {
  switch (Ph.K) {
  case Phase::Kind::Nest:
    printNest(OS, Ph.Nest, Pad);
    break;
  case Phase::Kind::Reduce: {
    const Reduction &R = Ph.Reduce;
    OS << Pad << "reduce "
       << (R.O == Reduction::Op::Sum
               ? "sum"
               : R.O == Reduction::Op::Max ? "max" : "maxloc")
       << ' ' << R.Name;
    if (R.Elems != 1)
      OS << " elems " << R.Elems;
    OS << '\n';
    break;
  }
  case Phase::Kind::SeqLoop:
    OS << Pad << "timeloop " << Ph.SeqVar << " = 1, " << Ph.SeqCount << '\n';
    for (const Phase &Sub : Ph.Body)
      printPhase(OS, Sub, Pad + "  ");
    OS << Pad << "endloop\n";
    break;
  }
}

} // namespace

std::string hpf::printAffine(const AffineExpr &E) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Name, Coef] : E.Terms) {
    if (Coef == 0)
      continue;
    printTerm(OS, Name, Coef, First);
    First = false;
  }
  if (E.K != 0 || First) {
    if (!First && E.K > 0)
      OS << '+';
    OS << E.K;
  }
  return OS.str();
}

std::string hpf::printHpfProgram(const Program &P) {
  std::ostringstream OS;
  OS << "program " << P.name() << '\n';
  if (!P.params().empty()) {
    OS << "param";
    for (const std::string &Pr : P.params())
      OS << ' ' << Pr;
    OS << '\n';
  }
  for (const auto &[Name, PA] : P.procArrays()) {
    OS << "processors " << Name << '(';
    for (unsigned D = 0; D != PA.Dims.size(); ++D) {
      if (D)
        OS << ", ";
      if (PA.Dims[D].isSymbolic())
        OS << '*' << PA.Dims[D].Symbol;
      else
        OS << PA.Dims[D].Fixed;
    }
    OS << ")\n";
  }
  for (const auto &[Name, T] : P.templates()) {
    OS << "template " << Name;
    printRanges(OS, T.Dims);
    OS << '\n';
  }
  for (const auto &[Name, A] : P.arrays()) {
    OS << "array " << Name;
    printRanges(OS, A.Dims);
    if (A.ElemBytes != 8)
      OS << " bytes " << A.ElemBytes;
    if (const Align *Al = P.alignOf(Name)) {
      OS << " align (";
      for (unsigned D = 0; D != A.Dims.size(); ++D)
        OS << (D ? "," : "") << 'a' << D;
      OS << ") with " << Al->TemplateName << '(';
      for (unsigned T = 0; T != Al->Terms.size(); ++T) {
        if (T)
          OS << ',';
        const AlignTerm &AT = Al->Terms[T];
        switch (AT.K) {
        case AlignTerm::Kind::Replicated:
          OS << '*';
          break;
        case AlignTerm::Kind::Constant:
          OS << AT.Constant;
          break;
        case AlignTerm::Kind::ArrayDim: {
          AffineExpr E("a" + std::to_string(AT.ArrayDim), AT.Stride,
                       AT.Offset);
          OS << printAffine(E);
          break;
        }
        }
      }
      OS << ')';
    }
    OS << '\n';
  }
  for (const auto &[Name, D] : P.distributes()) {
    OS << "distribute " << Name << '(';
    for (unsigned I = 0; I != D.Specs.size(); ++I) {
      if (I)
        OS << ", ";
      switch (D.Specs[I].K) {
      case DistSpec::Kind::Star:
        OS << '*';
        break;
      case DistSpec::Kind::Block:
        OS << "block";
        break;
      case DistSpec::Kind::Cyclic:
        OS << "cyclic";
        break;
      case DistSpec::Kind::CyclicK:
        OS << "cyclic(" << D.Specs[I].BlockK << ')';
        break;
      }
    }
    OS << ") onto " << D.ProcName << '\n';
  }
  for (const Procedure &Proc : P.procedures()) {
    OS << "\nprocedure " << Proc.Name << '\n';
    for (const Phase &Ph : Proc.Phases)
      printPhase(OS, Ph, "  ");
    OS << "endprocedure\n";
  }
  return OS.str();
}
