//===- hpf/Maps.cpp - Primitive sets and mappings (paper Figure 2) -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "hpf/Maps.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <utility>

using namespace dhpf;
using namespace dhpf::hpf;

namespace {

/// Collects parameter names referenced by \p E that are not loop variables,
/// preserving first-use order in \p Params.
void collectParams(const AffineExpr &E,
                   const std::vector<std::string> &LoopVars,
                   std::vector<std::string> &Params) {
  for (auto &[Name, Coef] : E.Terms) {
    (void)Coef;
    if (std::find(LoopVars.begin(), LoopVars.end(), Name) != LoopVars.end())
      continue;
    if (std::find(Params.begin(), Params.end(), Name) == Params.end())
      Params.push_back(Name);
  }
}

/// A linear form over conjunct columns: sum(Coef * col) + K.
struct LinTerm {
  std::vector<std::pair<unsigned, int64_t>> Cols;
  int64_t K = 0;

  LinTerm scaled(int64_t S) const {
    LinTerm R;
    for (auto &[C, F] : Cols)
      R.Cols.push_back({C, mulOv(F, S)});
    R.K = mulOv(K, S);
    return R;
  }
  LinTerm plus(const LinTerm &O) const {
    LinTerm R = *this;
    for (auto &T : O.Cols)
      R.Cols.push_back(T);
    R.K = addOv(R.K, O.K);
    return R;
  }
  LinTerm plus(int64_t C) const {
    LinTerm R = *this;
    R.K = addOv(R.K, C);
    return R;
  }
};

/// Resolves an AffineExpr into a LinTerm given loop-variable columns and the
/// relation's parameter list.
LinTerm resolve(const AffineExpr &E, const Conjunct &C,
                const std::vector<std::string> &LoopVars,
                const Space &Sp) {
  LinTerm T;
  T.K = E.K;
  for (auto &[Name, Coef] : E.Terms) {
    auto It = std::find(LoopVars.begin(), LoopVars.end(), Name);
    if (It != LoopVars.end()) {
      unsigned D = It - LoopVars.begin();
      T.Cols.push_back({C.inCol(D), Coef});
      continue;
    }
    int P = Sp.paramIndex(Name);
    assert(P >= 0 && "unresolved name in affine expression");
    T.Cols.push_back({C.paramCol(P), Coef});
  }
  return T;
}

/// Adds constraint: T (>= 0 | = 0).
void addTerm(Conjunct &C, const LinTerm &T, bool IsEq) {
  C.addConstraint(T.Cols, T.K, IsEq);
}

/// Adds A - B >= 0 (A >= B).
void addGE(Conjunct &C, const LinTerm &A, const LinTerm &B) {
  addTerm(C, A.plus(B.scaled(-1)), /*IsEq=*/false);
}

} // namespace

int64_t MapBuilder::constOf(const AffineExpr &E) {
  assert(E.Terms.empty() && "expected a compile-time constant expression");
  return E.K;
}

Relation MapBuilder::procSet(const std::string &ProcName) const {
  const ProcArray &PA = Prog.procArray(ProcName);
  std::vector<std::string> Dims, Params;
  for (unsigned I = 0; I != PA.rank(); ++I) {
    Dims.push_back("p" + std::to_string(I));
    if (PA.Dims[I].isSymbolic())
      Params.push_back(PA.Dims[I].Symbol);
  }
  Relation R(Space::set(Dims, Params));
  Conjunct &C = R.addConjunct();
  for (unsigned I = 0; I != PA.rank(); ++I) {
    C.addConstraint({{C.outCol(I), 1}}, 0, /*IsEq=*/false); // p >= 0
    if (PA.Dims[I].isSymbolic()) {
      int P = R.space().paramIndex(PA.Dims[I].Symbol);
      C.addConstraint({{C.outCol(I), -1}, {C.paramCol(P), 1}}, -1,
                      /*IsEq=*/false); // p <= extent - 1
    } else {
      C.addConstraint({{C.outCol(I), -1}}, PA.Dims[I].Fixed - 1,
                      /*IsEq=*/false);
    }
  }
  return R;
}

Relation MapBuilder::dataSet(const std::string &ArrayName) const {
  const ArrayDecl &A = Prog.array(ArrayName);
  std::vector<std::string> Dims, Params;
  for (unsigned I = 0; I != A.rank(); ++I) {
    Dims.push_back("a" + std::to_string(I));
    collectParams(A.Dims[I].Lo, {}, Params);
    collectParams(A.Dims[I].Hi, {}, Params);
  }
  Relation R(Space::set(Dims, Params));
  Conjunct &C = R.addConjunct();
  for (unsigned I = 0; I != A.rank(); ++I) {
    LinTerm Dim;
    Dim.Cols.push_back({C.outCol(I), 1});
    addGE(C, Dim, resolve(A.Dims[I].Lo, C, {}, R.space()));
    addGE(C, resolve(A.Dims[I].Hi, C, {}, R.space()), Dim);
  }
  return R;
}

LayoutResult MapBuilder::layout(const std::string &ArrayName) const {
  const ArrayDecl &A = Prog.array(ArrayName);
  const Align *Al = Prog.alignOf(ArrayName);
  LayoutResult Res;

  if (!Al) {
    // Replicated array: a rank-0 domain owning every element.
    Relation DS = dataSet(ArrayName);
    Relation Map(Space::map({}, DS.space().outNames(), DS.space().params()));
    for (const Conjunct &C : std::as_const(DS).conjuncts())
      Map.addConjunct(C); // identical column layout (0 in dims)
    Res.Map = std::move(Map);
    return Res;
  }

  const TemplateDecl &T = Prog.templateDecl(Al->TemplateName);
  const Distribute &D = Prog.distributeOf(Al->TemplateName);
  const ProcArray &PA = Prog.procArray(D.ProcName);
  Res.ProcName = D.ProcName;
  assert(Al->Terms.size() == T.rank() && "align terms must cover template");
  assert(D.Specs.size() == T.rank() && "dist specs must cover template");

  // Determine the layout's input dimensions and gather parameters.
  std::vector<std::string> InDims, Params;
  unsigned ProcDim = 0;
  for (unsigned TD = 0; TD != T.rank(); ++TD) {
    collectParams(T.Dims[TD].Lo, {}, Params);
    collectParams(T.Dims[TD].Hi, {}, Params);
    const DistSpec &Spec = D.Specs[TD];
    if (Spec.K == DistSpec::Kind::Star)
      continue;
    const ProcArray::Dim &PD = PA.Dims[ProcDim];
    VPDimInfo Info;
    Info.Kind = Spec.K;
    Info.CyclicK = Spec.BlockK;
    Info.TemplateDim = TD;
    Info.TmplLo = constOf(T.Dims[TD].Lo);
    Info.ProcFixed = PD.Fixed;
    Info.ProcSym = PD.Symbol;
    // Symbolic processor extents never appear in the layout constraints
    // (that is the whole point of the VP model), so they are not layout
    // parameters; VPDimInfo carries them for code generation instead.
    bool SymbolicP = PD.isSymbolic();
    switch (Spec.K) {
    case DistSpec::Kind::Block: {
      bool ConstExtent = T.Dims[TD].Lo.Terms.empty() &&
                         T.Dims[TD].Hi.Terms.empty();
      if (!SymbolicP && ConstExtent) {
        int64_t Extent = constOf(T.Dims[TD].Hi) - Info.TmplLo + 1;
        Info.BlockFixed = ceilDiv(Extent, PD.Fixed);
      } else {
        // Symbolic block size: the product B*p is not representable, so
        // this dimension is virtualized (paper Section 4.1).
        Info.Virtualized = true;
        Info.BlockParam = blockParamName(T.Name, TD);
        Params.push_back(Info.BlockParam);
      }
      break;
    }
    case DistSpec::Kind::Cyclic:
    case DistSpec::Kind::CyclicK:
      if (SymbolicP)
        Info.Virtualized = true;
      break;
    case DistSpec::Kind::Star:
      break;
    }
    InDims.push_back((Info.Virtualized ? "v" : "p") +
                     std::to_string(ProcDim));
    Res.Dims.push_back(Info);
    ++ProcDim;
  }
  assert(ProcDim == PA.rank() &&
         "distributed dims must match the processor array rank");

  std::vector<std::string> OutDims;
  for (unsigned I = 0; I != A.rank(); ++I) {
    OutDims.push_back("a" + std::to_string(I));
    collectParams(A.Dims[I].Lo, {}, Params);
    collectParams(A.Dims[I].Hi, {}, Params);
  }

  Relation Map(Space::map(InDims, OutDims, Params));
  Conjunct &C = Map.addConjunct();
  const Space &Sp = Map.space();

  // Array bounds.
  for (unsigned I = 0; I != A.rank(); ++I) {
    LinTerm Dim;
    Dim.Cols.push_back({C.outCol(I), 1});
    addGE(C, Dim, resolve(A.Dims[I].Lo, C, {}, Sp));
    addGE(C, resolve(A.Dims[I].Hi, C, {}, Sp), Dim);
  }

  // Per template dimension: relate the (virtual) processor index, the
  // template position t (an expression or an existential), and the data.
  unsigned PDim = 0;
  for (unsigned TD = 0; TD != T.rank(); ++TD) {
    const AlignTerm &AT = Al->Terms[TD];
    LinTerm Tpos;
    switch (AT.K) {
    case AlignTerm::Kind::ArrayDim:
      assert(AT.ArrayDim < A.rank());
      Tpos.Cols.push_back({C.outCol(AT.ArrayDim), AT.Stride});
      Tpos.K = AT.Offset;
      break;
    case AlignTerm::Kind::Constant:
      Tpos.K = AT.Constant;
      break;
    case AlignTerm::Kind::Replicated:
      Tpos.Cols.push_back({C.addExistVar(), 1});
      break;
    }
    // Template bounds on t.
    addGE(C, Tpos, resolve(T.Dims[TD].Lo, C, {}, Sp));
    addGE(C, resolve(T.Dims[TD].Hi, C, {}, Sp), Tpos);

    const DistSpec &Spec = D.Specs[TD];
    if (Spec.K == DistSpec::Kind::Star)
      continue;
    const VPDimInfo &Info = Res.Dims[PDim];
    LinTerm P; // the layout input index (physical or virtual)
    P.Cols.push_back({C.inCol(PDim), 1});
    switch (Spec.K) {
    case DistSpec::Kind::Block: {
      if (!Info.Virtualized) {
        // TmplLo + B*p <= t <= TmplLo + B*p + B - 1, 0 <= p < procs.
        LinTerm Base = P.scaled(Info.BlockFixed).plus(Info.TmplLo);
        addGE(C, Tpos, Base);
        addGE(C, Base.plus(Info.BlockFixed - 1), Tpos);
        addGE(C, P, LinTerm());
        addTerm(C, P.scaled(-1).plus(Info.ProcFixed - 1), /*IsEq=*/false);
      } else {
        // VP model: v <= t <= v + B - 1, TmplLo <= v <= TmplHi.
        int BP = Sp.paramIndex(Info.BlockParam);
        assert(BP >= 0);
        LinTerm BTerm;
        BTerm.Cols.push_back({C.paramCol(BP), 1});
        addGE(C, Tpos, P);
        addGE(C, P.plus(BTerm).plus(-1), Tpos);
        addGE(C, P, LinTerm().plus(Info.TmplLo));
        addGE(C, resolve(T.Dims[TD].Hi, C, {}, Sp), P);
      }
      break;
    }
    case DistSpec::Kind::Cyclic: {
      if (!Info.Virtualized) {
        // exists e : t - TmplLo - p = procs * e, 0 <= p < procs.
        unsigned E = C.addExistVar();
        LinTerm Row = Tpos.plus(P.scaled(-1)).plus(-Info.TmplLo);
        Row.Cols.push_back({E, -Info.ProcFixed});
        addTerm(C, Row, /*IsEq=*/true);
        addGE(C, P, LinTerm());
        addTerm(C, P.scaled(-1).plus(Info.ProcFixed - 1), /*IsEq=*/false);
      } else {
        // VP model: t = v (every template cell is a virtual processor).
        addTerm(C, Tpos.plus(P.scaled(-1)), /*IsEq=*/true);
      }
      break;
    }
    case DistSpec::Kind::CyclicK: {
      int64_t K = Spec.BlockK;
      assert(K > 0 && "cyclic(k) requires a constant positive k");
      if (!Info.Virtualized) {
        // exists e : TmplLo + k*p + k*procs*e <= t <= ... + k - 1.
        unsigned E = C.addExistVar();
        LinTerm Base = P.scaled(K).plus(Info.TmplLo);
        Base.Cols.push_back({E, mulOv(K, Info.ProcFixed)});
        addGE(C, Tpos, Base);
        addGE(C, Base.plus(K - 1), Tpos);
        addGE(C, P, LinTerm());
        addTerm(C, P.scaled(-1).plus(Info.ProcFixed - 1), /*IsEq=*/false);
      } else {
        // VP model: v is a block start: exists e : v - TmplLo = k*e,
        // v <= t <= v + k - 1.
        unsigned E = C.addExistVar();
        LinTerm Row = P.plus(-Info.TmplLo);
        Row.Cols.push_back({E, -K});
        addTerm(C, Row, /*IsEq=*/true);
        addGE(C, Tpos, P);
        addGE(C, P.plus(K - 1), Tpos);
        addGE(C, P, LinTerm().plus(Info.TmplLo));
        addGE(C, resolve(T.Dims[TD].Hi, C, {}, Sp), P);
      }
      break;
    }
    case DistSpec::Kind::Star:
      break;
    }
    ++PDim;
  }
  Res.Map = std::move(Map);
  return Res;
}

Relation MapBuilder::loopSet(const ComputeNest &Nest) const {
  std::vector<std::string> Dims, Params;
  for (const Loop &L : Nest.Loops)
    Dims.push_back(L.Var);
  for (const Loop &L : Nest.Loops) {
    collectParams(L.Lo, Dims, Params);
    collectParams(L.Hi, Dims, Params);
  }
  Relation R(Space::set(Dims, Params));
  Conjunct &C = R.addConjunct();
  for (unsigned I = 0; I != Nest.Loops.size(); ++I) {
    // Loop bounds may reference outer loop variables: resolve against the
    // set's own dimensions (as "out" columns).
    auto ResolveSet = [&](const AffineExpr &E) {
      LinTerm T;
      T.K = E.K;
      for (auto &[Name, Coef] : E.Terms) {
        auto It = std::find(Dims.begin(), Dims.end(), Name);
        if (It != Dims.end()) {
          T.Cols.push_back(
              {C.outCol(static_cast<unsigned>(It - Dims.begin())), Coef});
          continue;
        }
        int P = R.space().paramIndex(Name);
        assert(P >= 0 && "unresolved name in loop bound");
        T.Cols.push_back({C.paramCol(P), Coef});
      }
      return T;
    };
    LinTerm Var;
    Var.Cols.push_back({C.outCol(I), 1});
    addGE(C, Var, ResolveSet(Nest.Loops[I].Lo));
    addGE(C, ResolveSet(Nest.Loops[I].Hi), Var);
  }
  return R;
}

Relation MapBuilder::refMap(const ComputeNest &Nest,
                            const Reference &Ref) const {
  const ArrayDecl &A = Prog.array(Ref.Array);
  assert(Ref.Subs.size() == A.rank() && "subscript arity mismatch");
  std::vector<std::string> InDims, OutDims, Params;
  for (const Loop &L : Nest.Loops)
    InDims.push_back(L.Var);
  for (unsigned I = 0; I != A.rank(); ++I)
    OutDims.push_back("a" + std::to_string(I));
  for (const AffineExpr &S : Ref.Subs)
    collectParams(S, InDims, Params);
  Relation R(Space::map(InDims, OutDims, Params));
  Conjunct &C = R.addConjunct();
  for (unsigned I = 0; I != A.rank(); ++I) {
    LinTerm T = resolve(Ref.Subs[I], C, InDims, R.space());
    T.Cols.push_back({C.outCol(I), -1});
    addTerm(C, T, /*IsEq=*/true); // a_i = sub_i(loop vars)
  }
  return R;
}

std::map<std::string, int64_t> MapBuilder::layoutBindings(
    const std::map<std::string, int64_t> &Bindings,
    const std::map<std::string, std::vector<int64_t>> &ProcExtents) const {
  std::map<std::string, int64_t> Out = Bindings;
  auto EvalAffine = [&](const AffineExpr &E) {
    int64_t V = E.K;
    for (auto &[Name, Coef] : E.Terms) {
      auto It = Out.find(Name);
      assert(It != Out.end() && "unbound parameter in layout binding");
      V = addOv(V, mulOv(Coef, It->second));
    }
    return V;
  };
  // Bind symbolic processor extents.
  for (auto &[PName, Ext] : ProcExtents) {
    const ProcArray &PA = Prog.procArray(PName);
    assert(Ext.size() == PA.rank() && "processor extent arity mismatch");
    for (unsigned I = 0; I != PA.rank(); ++I)
      if (PA.Dims[I].isSymbolic())
        Out[PA.Dims[I].Symbol] = Ext[I];
  }
  // Bind block sizes for every distributed template.
  for (const auto &[AName, A] : Prog.arrays()) {
    (void)A;
    const Align *Al = Prog.alignOf(AName);
    if (!Al)
      continue;
    const TemplateDecl &T = Prog.templateDecl(Al->TemplateName);
    const Distribute &D = Prog.distributeOf(Al->TemplateName);
    const ProcArray &PA = Prog.procArray(D.ProcName);
    auto ExtIt = ProcExtents.find(D.ProcName);
    unsigned PDim = 0;
    for (unsigned TD = 0; TD != T.rank(); ++TD) {
      const DistSpec &Spec = D.Specs[TD];
      if (Spec.K == DistSpec::Kind::Star)
        continue;
      if (Spec.K == DistSpec::Kind::Block) {
        int64_t PN;
        if (ExtIt != ProcExtents.end())
          PN = ExtIt->second[PDim];
        else {
          assert(!PA.Dims[PDim].isSymbolic() &&
                 "symbolic processor extent requires run-time extents");
          PN = PA.Dims[PDim].Fixed;
        }
        int64_t Extent =
            EvalAffine(T.Dims[TD].Hi) - EvalAffine(T.Dims[TD].Lo) + 1;
        Out[blockParamName(T.Name, TD)] = ceilDiv(Extent, PN);
      }
      ++PDim;
    }
  }
  return Out;
}
