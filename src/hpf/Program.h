//===- hpf/Program.h - Mini-HPF program model ----------------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input IR of the compiler: a miniature HPF program. It carries the
/// pieces the paper's analyses consume — PROCESSORS arrays (with fixed or
/// symbolic extents), TEMPLATEs, arrays with ALIGN directives, DISTRIBUTE
/// directives (*, BLOCK, CYCLIC, CYCLIC(k)), and a sequence of phases:
/// perfect loop nests whose statements make affine references and carry
/// ON_HOME computation partitionings, global reductions, and sequential
/// (time-step) loops.
///
/// A front end is deliberately out of scope (the paper starts from the
/// primitive sets of Figure 2, which hpf/Maps.h builds from this IR); the
/// benchmark applications in src/apps construct programs with the builder
/// API here.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_HPF_PROGRAM_H
#define DHPF_HPF_PROGRAM_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dhpf {
namespace hpf {

/// A linear expression over named loop variables and symbolic parameters:
/// K + sum(Coef * Name). Names are resolved against enclosing loop
/// variables first, then registered as parameters.
struct AffineExpr {
  int64_t K = 0;
  std::vector<std::pair<std::string, int64_t>> Terms;

  AffineExpr() = default;
  AffineExpr(int64_t Konst) : K(Konst) {} // implicit: plain constants
  AffineExpr(int Konst) : K(Konst) {}     // disambiguates literal 0
  AffineExpr(const std::string &Name, int64_t Coef = 1, int64_t Konst = 0)
      : K(Konst) {
    Terms.push_back({Name, Coef});
  }
  AffineExpr(const char *Name) : AffineExpr(std::string(Name)) {}

  AffineExpr operator+(const AffineExpr &O) const {
    AffineExpr R = *this;
    R.K += O.K;
    for (auto &T : O.Terms)
      R.Terms.push_back(T);
    return R;
  }
  AffineExpr operator+(int64_t C) const {
    AffineExpr R = *this;
    R.K += C;
    return R;
  }
  AffineExpr operator-(int64_t C) const { return *this + (-C); }
  AffineExpr operator-(const AffineExpr &O) const {
    AffineExpr R = *this;
    R.K -= O.K;
    for (auto &T : O.Terms)
      R.Terms.push_back({T.first, -T.second});
    return R;
  }
};

/// An inclusive index range with affine bounds (e.g. 1..N or 0..99).
struct DimRange {
  AffineExpr Lo, Hi;
};
inline DimRange range(AffineExpr Lo, AffineExpr Hi) {
  return {std::move(Lo), std::move(Hi)};
}

/// PROCESSORS array: each dimension's extent is a positive constant or a
/// symbolic parameter (unknown number of processors, paper Section 4).
struct ProcArray {
  std::string Name;
  struct Dim {
    int64_t Fixed = 0;  // > 0 when the extent is a compile-time constant
    std::string Symbol; // parameter name when symbolic
    bool isSymbolic() const { return Fixed == 0; }
  };
  std::vector<Dim> Dims;
  unsigned rank() const { return Dims.size(); }
};

/// TEMPLATE declaration.
struct TemplateDecl {
  std::string Name;
  std::vector<DimRange> Dims;
  unsigned rank() const { return Dims.size(); }
};

/// Distribution of one template dimension.
struct DistSpec {
  enum class Kind : uint8_t { Star, Block, Cyclic, CyclicK };
  Kind K = Kind::Star;
  int64_t BlockK = 0; // for CyclicK
};
inline DistSpec distStar() { return {DistSpec::Kind::Star, 0}; }
inline DistSpec distBlock() { return {DistSpec::Kind::Block, 0}; }
inline DistSpec distCyclic() { return {DistSpec::Kind::Cyclic, 0}; }
inline DistSpec distCyclicK(int64_t K) { return {DistSpec::Kind::CyclicK, K}; }

/// DISTRIBUTE directive: template onto a processor array. The number of
/// non-Star entries must equal the processor array rank.
struct Distribute {
  std::string TemplateName;
  std::string ProcName;
  std::vector<DistSpec> Specs; // one per template dimension
};

/// One template-dimension position of an ALIGN directive.
struct AlignTerm {
  enum class Kind : uint8_t { ArrayDim, Constant, Replicated };
  Kind K = Kind::ArrayDim;
  unsigned ArrayDim = 0; // for ArrayDim: t = Stride*a(ArrayDim) + Offset
  int64_t Stride = 1;
  int64_t Offset = 0;
  int64_t Constant = 0; // for Constant
};
inline AlignTerm alignDim(unsigned ArrayDim, int64_t Stride = 1,
                          int64_t Offset = 0) {
  AlignTerm T;
  T.K = AlignTerm::Kind::ArrayDim;
  T.ArrayDim = ArrayDim;
  T.Stride = Stride;
  T.Offset = Offset;
  return T;
}
inline AlignTerm alignConst(int64_t C) {
  AlignTerm T;
  T.K = AlignTerm::Kind::Constant;
  T.Constant = C;
  return T;
}
inline AlignTerm alignStar() {
  AlignTerm T;
  T.K = AlignTerm::Kind::Replicated;
  return T;
}

/// ALIGN directive: array with template.
struct Align {
  std::string ArrayName;
  std::string TemplateName;
  std::vector<AlignTerm> Terms; // one per template dimension
};

/// Array declaration (distributed via its Align, or fully replicated when
/// it has none).
struct ArrayDecl {
  std::string Name;
  std::vector<DimRange> Dims;
  unsigned ElemBytes = 8;
  unsigned rank() const { return Dims.size(); }
};

/// An array reference with affine subscripts over loop variables/params.
struct Reference {
  std::string Array;
  std::vector<AffineExpr> Subs;
};
inline Reference ref(std::string Array, std::vector<AffineExpr> Subs) {
  return {std::move(Array), std::move(Subs)};
}

/// One assignment statement inside a loop nest.
struct Statement {
  int Id = -1;           // assigned by the Program builder
  Reference Write;
  std::vector<Reference> Reads;
  /// ON_HOME terms; when empty the owner-computes rule applies (the CP is
  /// ON_HOME of the write reference). Paper Section 3.1's general CP model:
  /// a union of arbitrary references.
  std::vector<Reference> OnHome;
  double Cost = 1.0;     // simulator work units per dynamic instance
  int SemanticsId = -1;  // application hook executed by the interpreter
};

/// A counted loop with affine bounds (step 1).
struct Loop {
  std::string Var;
  AffineExpr Lo, Hi;
};
inline Loop loop(std::string Var, AffineExpr Lo, AffineExpr Hi) {
  return {std::move(Var), std::move(Lo), std::move(Hi)};
}

/// A perfect loop nest with statements in its innermost body.
struct ComputeNest {
  std::string Name; // for diagnostics and timing reports
  std::vector<Loop> Loops;
  std::vector<Statement> Stmts;
  /// Communication placement: loops at depth >= VectorizeLevel may carry
  /// dependences, so messages hoist only out of loops deeper than this
  /// level (0 = hoist out of everything; see Section 3.2).
  unsigned VectorizeLevel = 0;
};

/// A global reduction (paper Section 7's maxloc/convergence reductions).
struct Reduction {
  enum class Op : uint8_t { Sum, Max, MaxLoc };
  Op O = Op::Sum;
  std::string Name;   // reduced scalar/array name (for reports)
  uint64_t Elems = 1; // message payload element count
  double Cost = 1.0;  // local work before combining
  int SemanticsId = -1;
};

/// One phase of the (sequentially composed) program.
struct Phase {
  enum class Kind : uint8_t { Nest, Reduce, SeqLoop };
  Kind K = Kind::Nest;
  ComputeNest Nest;   // Kind::Nest
  Reduction Reduce;   // Kind::Reduce
  // Kind::SeqLoop: a replicated sequential loop (e.g. time stepping).
  std::string SeqVar;
  int64_t SeqCount = 0;
  std::vector<Phase> Body;
};

/// A procedure: a named sequence of phases (the NAS SP subject has 30).
struct Procedure {
  std::string Name;
  std::vector<Phase> Phases;
};

/// A complete mini-HPF program.
class Program {
public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  //===------------------------- declarations ----------------------------===//

  void addParam(const std::string &P) { Params.push_back(P); }
  const std::vector<std::string> &params() const { return Params; }

  ProcArray &addProcs(const std::string &N,
                      std::vector<ProcArray::Dim> Dims) {
    ProcArray P;
    P.Name = N;
    P.Dims = std::move(Dims);
    Procs[N] = std::move(P);
    return Procs[N];
  }
  static ProcArray::Dim procDim(int64_t Fixed) { return {Fixed, ""}; }
  static ProcArray::Dim procDimSym(const std::string &S) { return {0, S}; }

  TemplateDecl &addTemplate(const std::string &N, std::vector<DimRange> Dims) {
    TemplateDecl T;
    T.Name = N;
    T.Dims = std::move(Dims);
    Templates[N] = std::move(T);
    return Templates[N];
  }

  ArrayDecl &addArray(const std::string &N, std::vector<DimRange> Dims,
                      unsigned ElemBytes = 8) {
    ArrayDecl A;
    A.Name = N;
    A.Dims = std::move(Dims);
    A.ElemBytes = ElemBytes;
    Arrays[N] = std::move(A);
    return Arrays[N];
  }

  void addAlign(Align A) { Aligns[A.ArrayName] = std::move(A); }
  void addDistribute(Distribute D) {
    Distributes[D.TemplateName] = std::move(D);
  }

  //===--------------------------- structure -----------------------------===//

  Procedure &addProcedure(const std::string &N) {
    Procedures.push_back(Procedure{N, {}});
    return Procedures.back();
  }

  /// Appends a compute-nest phase to \p Proc and numbers its statements.
  ComputeNest &addNest(Procedure &Proc, ComputeNest N) {
    for (Statement &S : N.Stmts)
      S.Id = NextStmtId++;
    Phase Ph;
    Ph.K = Phase::Kind::Nest;
    Ph.Nest = std::move(N);
    Proc.Phases.push_back(std::move(Ph));
    return Proc.Phases.back().Nest;
  }

  void addReduction(Procedure &Proc, Reduction R) {
    Phase Ph;
    Ph.K = Phase::Kind::Reduce;
    Ph.Reduce = std::move(R);
    Proc.Phases.push_back(std::move(Ph));
  }

  /// Opens a sequential (time-step) loop phase; fill its Body directly.
  Phase &addSeqLoop(Procedure &Proc, const std::string &Var, int64_t Count) {
    Phase Ph;
    Ph.K = Phase::Kind::SeqLoop;
    Ph.SeqVar = Var;
    Ph.SeqCount = Count;
    Proc.Phases.push_back(std::move(Ph));
    return Proc.Phases.back();
  }

  /// Appends a nest inside a SeqLoop phase.
  ComputeNest &addNestIn(Phase &Seq, ComputeNest N) {
    assert(Seq.K == Phase::Kind::SeqLoop);
    for (Statement &S : N.Stmts)
      S.Id = NextStmtId++;
    Phase Ph;
    Ph.K = Phase::Kind::Nest;
    Ph.Nest = std::move(N);
    Seq.Body.push_back(std::move(Ph));
    return Seq.Body.back().Nest;
  }
  void addReductionIn(Phase &Seq, Reduction R) {
    assert(Seq.K == Phase::Kind::SeqLoop);
    Phase Ph;
    Ph.K = Phase::Kind::Reduce;
    Ph.Reduce = std::move(R);
    Seq.Body.push_back(std::move(Ph));
  }

  //===---------------------------- lookups ------------------------------===//

  const ProcArray &procArray(const std::string &N) const {
    auto It = Procs.find(N);
    assert(It != Procs.end() && "unknown processor array");
    return It->second;
  }
  const TemplateDecl &templateDecl(const std::string &N) const {
    auto It = Templates.find(N);
    assert(It != Templates.end() && "unknown template");
    return It->second;
  }
  const ArrayDecl &array(const std::string &N) const {
    auto It = Arrays.find(N);
    assert(It != Arrays.end() && "unknown array");
    return It->second;
  }
  const Align *alignOf(const std::string &ArrayName) const {
    auto It = Aligns.find(ArrayName);
    return It == Aligns.end() ? nullptr : &It->second;
  }
  const Distribute &distributeOf(const std::string &TemplateName) const {
    auto It = Distributes.find(TemplateName);
    assert(It != Distributes.end() && "template is not distributed");
    return It->second;
  }
  const std::vector<Procedure> &procedures() const { return Procedures; }
  std::vector<Procedure> &procedures() { return Procedures; }
  const std::map<std::string, ArrayDecl> &arrays() const { return Arrays; }
  const std::map<std::string, ProcArray> &procArrays() const { return Procs; }
  const std::map<std::string, TemplateDecl> &templates() const {
    return Templates;
  }
  const std::map<std::string, Distribute> &distributes() const {
    return Distributes;
  }
  const std::map<std::string, Align> &aligns() const { return Aligns; }

  int numStatements() const { return NextStmtId; }

private:
  std::string Name;
  std::vector<std::string> Params;
  std::map<std::string, ProcArray> Procs;
  std::map<std::string, TemplateDecl> Templates;
  std::map<std::string, ArrayDecl> Arrays;
  std::map<std::string, Align> Aligns;     // keyed by array name
  std::map<std::string, Distribute> Distributes; // keyed by template name
  std::vector<Procedure> Procedures;
  int NextStmtId = 0;
};

} // namespace hpf
} // namespace dhpf

#endif // DHPF_HPF_PROGRAM_H
