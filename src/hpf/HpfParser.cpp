//===- hpf/HpfParser.cpp - Textual front end for the mini-HPF IR ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "hpf/HpfParser.h"

#include <cassert>
#include <cctype>
#include <sstream>
#include <vector>

using namespace dhpf;
using namespace dhpf::hpf;

namespace {

/// A trivial token scanner over one line.
class LineLexer {
public:
  LineLexer(const std::string &Line, unsigned LineNo)
      : S(Line), LineNo(LineNo) {}

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool atEnd() {
    skipWs();
    return Pos >= S.size() || S[Pos] == '!';
  }
  char peek() {
    skipWs();
    return atEnd() ? '\0' : S[Pos];
  }
  bool tryConsume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void expect(char C) {
    bool OK = tryConsume(C);
    assert(OK && "hpf parse error: unexpected character");
    (void)OK;
    (void)LineNo;
  }
  bool atIdent() {
    skipWs();
    return !atEnd() && (std::isalpha(static_cast<unsigned char>(S[Pos])) ||
                        S[Pos] == '_');
  }
  std::string ident() {
    skipWs();
    assert(atIdent() && "hpf parse error: expected identifier");
    size_t B = Pos;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
      ++Pos;
    return S.substr(B, Pos - B);
  }
  bool atNumber() {
    skipWs();
    return !atEnd() && std::isdigit(static_cast<unsigned char>(S[Pos]));
  }
  int64_t number() {
    skipWs();
    assert(atNumber() && "hpf parse error: expected number");
    int64_t V = 0;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      V = V * 10 + (S[Pos++] - '0');
    return V;
  }
  /// Lookahead for a keyword followed by a non-identifier character.
  bool tryKeyword(const std::string &KW) {
    skipWs();
    if (S.compare(Pos, KW.size(), KW) != 0)
      return false;
    size_t After = Pos + KW.size();
    if (After < S.size() &&
        (std::isalnum(static_cast<unsigned char>(S[After])) ||
         S[After] == '_'))
      return false;
    Pos = After;
    return true;
  }

  /// Affine expression: [-] term ((+|-) term)*, term = [k *] ident | k.
  AffineExpr affine() {
    AffineExpr E;
    int64_t Sign = 1;
    if (tryConsume('-'))
      Sign = -1;
    parseTerm(E, Sign);
    for (;;) {
      if (tryConsume('+'))
        parseTerm(E, 1);
      else if (tryConsume('-'))
        parseTerm(E, -1);
      else
        break;
    }
    return E;
  }

private:
  void parseTerm(AffineExpr &E, int64_t Sign) {
    if (atNumber()) {
      int64_t K = Sign * number();
      if (tryConsume('*')) {
        E.Terms.push_back({ident(), K});
        return;
      }
      E.K += K;
      return;
    }
    E.Terms.push_back({ident(), Sign});
  }

  const std::string &S;
  size_t Pos = 0;
  unsigned LineNo;
};

class HpfParser {
public:
  explicit HpfParser(const std::string &Text) : Text(Text) {}

  std::unique_ptr<Program> parse() {
    std::istringstream In(Text);
    std::string Line;
    unsigned LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      LineLexer L(Line, LineNo);
      if (L.atEnd())
        continue;
      dispatch(L);
    }
    assert(Prog && "hpf parse error: missing 'program' line");
    assert(!InNest && !InProc && SeqStack.empty() &&
           "hpf parse error: unterminated block");
    return std::move(Prog);
  }

private:
  const std::string &Text;
  std::unique_ptr<Program> Prog;
  Procedure *CurProc = nullptr;
  std::vector<Phase *> SeqStack; // open timeloops
  bool InProc = false, InNest = false;
  ComputeNest PendingNest;

  void dispatch(LineLexer &L) {
    if (L.tryKeyword("program")) {
      assert(!Prog && "duplicate 'program'");
      Prog = std::make_unique<Program>(L.ident());
      return;
    }
    assert(Prog && "hpf parse error: 'program' must come first");
    if (L.tryKeyword("param")) {
      while (L.atIdent())
        Prog->addParam(L.ident());
      return;
    }
    if (L.tryKeyword("processors")) {
      std::string Name = L.ident();
      L.expect('(');
      std::vector<ProcArray::Dim> Dims;
      do {
        if (L.tryConsume('*'))
          Dims.push_back(Program::procDimSym(L.ident()));
        else
          Dims.push_back(Program::procDim(L.number()));
      } while (L.tryConsume(','));
      L.expect(')');
      Prog->addProcs(Name, Dims);
      return;
    }
    if (L.tryKeyword("template")) {
      std::string Name = L.ident();
      Prog->addTemplate(Name, parseRanges(L));
      return;
    }
    if (L.tryKeyword("array")) {
      std::string Name = L.ident();
      Prog->addArray(Name, parseRanges(L));
      if (L.tryKeyword("align")) {
        // align (i,j,...) with T(expr|*, ...)
        L.expect('(');
        std::vector<std::string> Idx;
        do {
          Idx.push_back(L.ident());
        } while (L.tryConsume(','));
        L.expect(')');
        bool OK = L.tryKeyword("with");
        assert(OK && "hpf parse error: expected 'with'");
        (void)OK;
        std::string T = L.ident();
        L.expect('(');
        Align A;
        A.ArrayName = Name;
        A.TemplateName = T;
        do {
          if (L.tryConsume('*')) {
            A.Terms.push_back(alignStar());
            continue;
          }
          AffineExpr E = L.affine();
          // The expression must be c or s*<align-var>+c.
          if (E.Terms.empty()) {
            A.Terms.push_back(alignConst(E.K));
            continue;
          }
          assert(E.Terms.size() == 1 && "nonlinear align expression");
          unsigned Dim = ~0u;
          for (unsigned I = 0; I != Idx.size(); ++I)
            if (Idx[I] == E.Terms[0].first)
              Dim = I;
          assert(Dim != ~0u && "align uses an unbound index name");
          A.Terms.push_back(alignDim(Dim, E.Terms[0].second, E.K));
        } while (L.tryConsume(','));
        L.expect(')');
        Prog->addAlign(A);
      }
      return;
    }
    if (L.tryKeyword("distribute")) {
      std::string T = L.ident();
      L.expect('(');
      Distribute D;
      D.TemplateName = T;
      do {
        if (L.tryConsume('*')) {
          D.Specs.push_back(distStar());
        } else if (L.tryKeyword("block")) {
          D.Specs.push_back(distBlock());
        } else if (L.tryKeyword("cyclic")) {
          if (L.tryConsume('(')) {
            D.Specs.push_back(distCyclicK(L.number()));
            L.expect(')');
          } else {
            D.Specs.push_back(distCyclic());
          }
        } else {
          assert(false && "hpf parse error: unknown distribution kind");
        }
      } while (L.tryConsume(','));
      L.expect(')');
      bool OK = L.tryKeyword("onto");
      assert(OK && "hpf parse error: expected 'onto'");
      (void)OK;
      D.ProcName = L.ident();
      Prog->addDistribute(D);
      return;
    }
    if (L.tryKeyword("procedure")) {
      assert(!InProc && "nested procedures are not supported");
      CurProc = &Prog->addProcedure(L.ident());
      InProc = true;
      return;
    }
    if (L.tryKeyword("endprocedure")) {
      assert(InProc && SeqStack.empty() && !InNest);
      InProc = false;
      CurProc = nullptr;
      return;
    }
    if (L.tryKeyword("timeloop")) {
      assert(InProc && !InNest);
      std::string Var = L.ident();
      L.expect('=');
      int64_t Lo = L.number();
      L.expect(',');
      int64_t Hi = L.number();
      assert(Lo == 1 && "timeloop must start at 1");
      Phase &Ph = SeqStack.empty()
                      ? Prog->addSeqLoop(*CurProc, Var, Hi)
                      : [&]() -> Phase & {
        Phase Sub;
        Sub.K = Phase::Kind::SeqLoop;
        Sub.SeqVar = Var;
        Sub.SeqCount = Hi;
        SeqStack.back()->Body.push_back(std::move(Sub));
        return SeqStack.back()->Body.back();
      }();
      SeqStack.push_back(&Ph);
      return;
    }
    if (L.tryKeyword("endloop")) {
      assert(!SeqStack.empty() && !InNest);
      SeqStack.pop_back();
      return;
    }
    if (L.tryKeyword("nest")) {
      assert(InProc && !InNest);
      PendingNest = ComputeNest();
      PendingNest.Name = L.ident();
      if (L.tryKeyword("vectorize"))
        PendingNest.VectorizeLevel = static_cast<unsigned>(L.number());
      InNest = true;
      return;
    }
    if (L.tryKeyword("endnest")) {
      assert(InNest);
      if (SeqStack.empty())
        Prog->addNest(*CurProc, PendingNest);
      else
        Prog->addNestIn(*SeqStack.back(), PendingNest);
      InNest = false;
      return;
    }
    if (L.tryKeyword("do")) {
      assert(InNest && "hpf parse error: 'do' outside a nest");
      std::string Var = L.ident();
      L.expect('=');
      AffineExpr Lo = L.affine();
      L.expect(',');
      AffineExpr Hi = L.affine();
      PendingNest.Loops.push_back(loop(Var, Lo, Hi));
      return;
    }
    if (L.tryKeyword("reduce")) {
      assert(InProc && !InNest);
      Reduction R;
      if (L.tryKeyword("sum"))
        R.O = Reduction::Op::Sum;
      else if (L.tryKeyword("maxloc"))
        R.O = Reduction::Op::MaxLoc;
      else if (L.tryKeyword("max"))
        R.O = Reduction::Op::Max;
      else
        assert(false && "hpf parse error: unknown reduction op");
      R.Name = L.ident();
      if (L.tryKeyword("elems"))
        R.Elems = static_cast<uint64_t>(L.number());
      if (SeqStack.empty())
        Prog->addReduction(*CurProc, R);
      else
        Prog->addReductionIn(*SeqStack.back(), R);
      return;
    }
    // Otherwise: an assignment statement  W(subs) = R(subs)... [options].
    assert(InNest && "hpf parse error: statement outside a nest");
    Statement S;
    S.Write = parseRef(L);
    L.expect('=');
    while (L.atIdent() && !peekOption(L))
      S.Reads.push_back(parseRef(L));
    for (;;) {
      if (L.tryKeyword("onhome")) {
        S.OnHome.push_back(parseRef(L));
        continue;
      }
      if (L.tryKeyword("cost")) {
        S.Cost = static_cast<double>(L.number());
        continue;
      }
      if (L.tryKeyword("sem")) {
        S.SemanticsId = static_cast<int>(L.number());
        continue;
      }
      break;
    }
    PendingNest.Stmts.push_back(std::move(S));
  }

  /// True if the next identifier is one of the statement option keywords.
  bool peekOption(LineLexer &L) {
    LineLexer Copy = L;
    return Copy.tryKeyword("onhome") || Copy.tryKeyword("cost") ||
           Copy.tryKeyword("sem");
  }

  Reference parseRef(LineLexer &L) {
    Reference R;
    R.Array = L.ident();
    L.expect('(');
    do {
      R.Subs.push_back(L.affine());
    } while (L.tryConsume(','));
    L.expect(')');
    return R;
  }

  std::vector<DimRange> parseRanges(LineLexer &L) {
    L.expect('(');
    std::vector<DimRange> Ranges;
    do {
      AffineExpr Lo = L.affine();
      L.expect(':');
      AffineExpr Hi = L.affine();
      Ranges.push_back(range(Lo, Hi));
    } while (L.tryConsume(','));
    L.expect(')');
    return Ranges;
  }
};

} // namespace

std::unique_ptr<Program> hpf::parseHpfProgram(const std::string &Text) {
  return HpfParser(Text).parse();
}
