//===- hpf/HpfParser.cpp - Textual front end for the mini-HPF IR ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
// Error handling: every malformed-input condition reports a diagnostic with
// the offending file:line:col and throws ParseFailure, which the per-line
// dispatch loop catches to resynchronize at the next line. Nothing here
// relies on assert(), so Debug and Release builds reject input identically.
//
//===----------------------------------------------------------------------===//

#include "hpf/HpfParser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

using namespace dhpf;
using namespace dhpf::hpf;

namespace {

/// Thrown on a malformed line after the diagnostic is reported; caught by
/// the per-line dispatch loop, which resynchronizes at the next line.
struct ParseFailure {};

/// A trivial token scanner over one line.
class LineLexer {
public:
  LineLexer(const std::string &Line, DiagnosticEngine &Diags,
            const std::string &File, unsigned LineNo)
      : S(Line), Diags(Diags), File(File), LineNo(LineNo) {}

  SourceLoc loc() const {
    return SourceLoc(File, LineNo, static_cast<unsigned>(Pos) + 1);
  }
  [[noreturn]] void fail(const std::string &Msg) {
    Diags.error(loc(), Msg);
    throw ParseFailure();
  }

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool atEnd() {
    skipWs();
    return Pos >= S.size() || S[Pos] == '!';
  }
  char peek() {
    skipWs();
    return atEnd() ? '\0' : S[Pos];
  }
  bool tryConsume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void expect(char C) {
    if (!tryConsume(C))
      fail(std::string("expected '") + C + "'");
  }
  bool atIdent() {
    skipWs();
    return !atEnd() && (std::isalpha(static_cast<unsigned char>(S[Pos])) ||
                        S[Pos] == '_');
  }
  std::string ident() {
    skipWs();
    if (!atIdent())
      fail("expected identifier");
    size_t B = Pos;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
      ++Pos;
    return S.substr(B, Pos - B);
  }
  /// A display name (program / procedure / nest): an identifier that may
  /// also contain '-', '/', and '.' after the first character. These names
  /// never appear in affine expressions, so the extra characters are
  /// unambiguous — and the apps' generated names ("sp-sym", "sub0/rhs")
  /// must survive printHpfProgram -> parseHpfProgram round trips.
  std::string name() {
    skipWs();
    if (!atIdent())
      fail("expected name");
    size_t B = Pos;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '_' || S[Pos] == '-' || S[Pos] == '/' ||
            S[Pos] == '.'))
      ++Pos;
    return S.substr(B, Pos - B);
  }
  bool atNumber() {
    skipWs();
    return !atEnd() && std::isdigit(static_cast<unsigned char>(S[Pos]));
  }
  int64_t number() {
    skipWs();
    if (!atNumber())
      fail("expected number");
    int64_t V = 0;
    unsigned Digits = 0;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos]))) {
      if (++Digits > 18)
        fail("integer literal too large");
      V = V * 10 + (S[Pos++] - '0');
    }
    return V;
  }
  /// A non-negative decimal number, optionally with a fraction (costs).
  double real() {
    skipWs();
    if (!atNumber())
      fail("expected number");
    size_t B = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return std::strtod(S.substr(B, Pos - B).c_str(), nullptr);
  }
  /// Lookahead for a keyword followed by a non-identifier character.
  bool tryKeyword(const std::string &KW) {
    skipWs();
    if (S.compare(Pos, KW.size(), KW) != 0)
      return false;
    size_t After = Pos + KW.size();
    if (After < S.size() &&
        (std::isalnum(static_cast<unsigned char>(S[After])) ||
         S[After] == '_'))
      return false;
    Pos = After;
    return true;
  }

  /// Affine expression: [-] term ((+|-) term)*, term = [k *] ident | k.
  AffineExpr affine() {
    AffineExpr E;
    int64_t Sign = 1;
    if (tryConsume('-'))
      Sign = -1;
    parseTerm(E, Sign);
    for (;;) {
      if (tryConsume('+'))
        parseTerm(E, 1);
      else if (tryConsume('-'))
        parseTerm(E, -1);
      else
        break;
    }
    return E;
  }

private:
  void parseTerm(AffineExpr &E, int64_t Sign) {
    if (atNumber()) {
      int64_t K = Sign * number();
      if (tryConsume('*')) {
        E.Terms.push_back({ident(), K});
        return;
      }
      E.K += K;
      return;
    }
    E.Terms.push_back({ident(), Sign});
  }

  const std::string &S;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  const std::string &File;
  unsigned LineNo;
};

class HpfParser {
public:
  HpfParser(const std::string &Text, DiagnosticEngine &Diags,
            const std::string &File)
      : Text(Text), Diags(Diags), File(File) {}

  Expected<std::unique_ptr<Program>> parse() {
    unsigned ErrorsBefore = Diags.errorCount();
    std::istringstream In(Text);
    std::string Line;
    unsigned LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      LineLexer L(Line, Diags, File, LineNo);
      if (L.atEnd())
        continue;
      try {
        dispatch(L);
        if (!L.atEnd())
          L.fail("unexpected trailing input");
      } catch (ParseFailure &) {
        // Reported; resynchronize at the next line.
      }
    }
    if (!Prog)
      Diags.error(SourceLoc(File), "missing 'program' line");
    else if (InNest)
      Diags.error(SourceLoc(File, LineNo), "unterminated 'nest' block");
    else if (!SeqStack.empty())
      Diags.error(SourceLoc(File, LineNo), "unterminated 'timeloop' block");
    else if (InProc)
      Diags.error(SourceLoc(File, LineNo), "unterminated 'procedure' block");
    if (Diags.errorCount() != ErrorsBefore)
      return Expected<std::unique_ptr<Program>>::failure();
    return std::move(Prog);
  }

private:
  const std::string &Text;
  DiagnosticEngine &Diags;
  const std::string &File;
  std::unique_ptr<Program> Prog;
  Procedure *CurProc = nullptr;
  std::vector<Phase *> SeqStack; // open timeloops
  bool InProc = false, InNest = false;
  ComputeNest PendingNest;

  void dispatch(LineLexer &L) {
    if (L.tryKeyword("program")) {
      if (Prog)
        L.fail("duplicate 'program' line");
      Prog = std::make_unique<Program>(L.name());
      return;
    }
    if (!Prog)
      L.fail("'program' must come first");
    if (L.tryKeyword("param")) {
      while (L.atIdent())
        Prog->addParam(L.ident());
      return;
    }
    if (L.tryKeyword("processors")) {
      std::string Name = L.ident();
      L.expect('(');
      std::vector<ProcArray::Dim> Dims;
      do {
        if (L.tryConsume('*'))
          Dims.push_back(Program::procDimSym(L.ident()));
        else
          Dims.push_back(Program::procDim(L.number()));
      } while (L.tryConsume(','));
      L.expect(')');
      Prog->addProcs(Name, Dims);
      return;
    }
    if (L.tryKeyword("template")) {
      std::string Name = L.ident();
      Prog->addTemplate(Name, parseRanges(L));
      return;
    }
    if (L.tryKeyword("array")) {
      std::string Name = L.ident();
      std::vector<DimRange> Dims = parseRanges(L);
      unsigned ElemBytes = 8;
      if (L.tryKeyword("bytes"))
        ElemBytes = static_cast<unsigned>(L.number());
      Prog->addArray(Name, std::move(Dims), ElemBytes);
      if (L.tryKeyword("align")) {
        // align (i,j,...) with T(expr|*, ...)
        L.expect('(');
        std::vector<std::string> Idx;
        do {
          Idx.push_back(L.ident());
        } while (L.tryConsume(','));
        L.expect(')');
        if (!L.tryKeyword("with"))
          L.fail("expected 'with' after the align index list");
        std::string T = L.ident();
        L.expect('(');
        Align A;
        A.ArrayName = Name;
        A.TemplateName = T;
        do {
          if (L.tryConsume('*')) {
            A.Terms.push_back(alignStar());
            continue;
          }
          AffineExpr E = L.affine();
          // The expression must be c or s*<align-var>+c.
          if (E.Terms.empty()) {
            A.Terms.push_back(alignConst(E.K));
            continue;
          }
          if (E.Terms.size() != 1)
            L.fail("nonlinear align expression");
          unsigned Dim = ~0u;
          for (unsigned I = 0; I != Idx.size(); ++I)
            if (Idx[I] == E.Terms[0].first)
              Dim = I;
          if (Dim == ~0u)
            L.fail("align expression uses unbound index name '" +
                   E.Terms[0].first + "'");
          A.Terms.push_back(alignDim(Dim, E.Terms[0].second, E.K));
        } while (L.tryConsume(','));
        L.expect(')');
        Prog->addAlign(A);
      }
      return;
    }
    if (L.tryKeyword("distribute")) {
      std::string T = L.ident();
      L.expect('(');
      Distribute D;
      D.TemplateName = T;
      do {
        if (L.tryConsume('*')) {
          D.Specs.push_back(distStar());
        } else if (L.tryKeyword("block")) {
          D.Specs.push_back(distBlock());
        } else if (L.tryKeyword("cyclic")) {
          if (L.tryConsume('(')) {
            D.Specs.push_back(distCyclicK(L.number()));
            L.expect(')');
          } else {
            D.Specs.push_back(distCyclic());
          }
        } else {
          L.fail("unknown distribution kind (expected *, block, cyclic, "
                 "or cyclic(k))");
        }
      } while (L.tryConsume(','));
      L.expect(')');
      if (!L.tryKeyword("onto"))
        L.fail("expected 'onto' after the distribution list");
      D.ProcName = L.ident();
      Prog->addDistribute(D);
      return;
    }
    if (L.tryKeyword("procedure")) {
      if (InProc)
        L.fail("nested procedures are not supported");
      CurProc = &Prog->addProcedure(L.name());
      InProc = true;
      return;
    }
    if (L.tryKeyword("endprocedure")) {
      if (!InProc)
        L.fail("'endprocedure' without an open procedure");
      if (InNest)
        L.fail("'endprocedure' inside an open nest");
      if (!SeqStack.empty())
        L.fail("'endprocedure' inside an open timeloop");
      InProc = false;
      CurProc = nullptr;
      return;
    }
    if (L.tryKeyword("timeloop")) {
      if (!InProc || InNest)
        L.fail("'timeloop' must appear inside a procedure, outside nests");
      std::string Var = L.ident();
      L.expect('=');
      int64_t Lo = L.number();
      L.expect(',');
      int64_t Hi = L.number();
      if (Lo != 1)
        L.fail("timeloop must start at 1");
      Phase &Ph = SeqStack.empty()
                      ? Prog->addSeqLoop(*CurProc, Var, Hi)
                      : [&]() -> Phase & {
        Phase Sub;
        Sub.K = Phase::Kind::SeqLoop;
        Sub.SeqVar = Var;
        Sub.SeqCount = Hi;
        SeqStack.back()->Body.push_back(std::move(Sub));
        return SeqStack.back()->Body.back();
      }();
      SeqStack.push_back(&Ph);
      return;
    }
    if (L.tryKeyword("endloop")) {
      if (SeqStack.empty())
        L.fail("'endloop' without an open timeloop");
      if (InNest)
        L.fail("'endloop' inside an open nest");
      SeqStack.pop_back();
      return;
    }
    if (L.tryKeyword("nest")) {
      if (!InProc)
        L.fail("'nest' outside a procedure");
      if (InNest)
        L.fail("nests do not nest; close the previous one with 'endnest'");
      PendingNest = ComputeNest();
      PendingNest.Name = L.name();
      if (L.tryKeyword("vectorize"))
        PendingNest.VectorizeLevel = static_cast<unsigned>(L.number());
      InNest = true;
      return;
    }
    if (L.tryKeyword("endnest")) {
      if (!InNest)
        L.fail("'endnest' without an open nest");
      if (SeqStack.empty())
        Prog->addNest(*CurProc, PendingNest);
      else
        Prog->addNestIn(*SeqStack.back(), PendingNest);
      InNest = false;
      return;
    }
    if (L.tryKeyword("do")) {
      if (!InNest)
        L.fail("'do' outside a nest");
      std::string Var = L.ident();
      L.expect('=');
      AffineExpr Lo = L.affine();
      L.expect(',');
      AffineExpr Hi = L.affine();
      PendingNest.Loops.push_back(loop(Var, Lo, Hi));
      return;
    }
    if (L.tryKeyword("reduce")) {
      if (!InProc || InNest)
        L.fail("'reduce' must appear inside a procedure, outside nests");
      Reduction R;
      if (L.tryKeyword("sum"))
        R.O = Reduction::Op::Sum;
      else if (L.tryKeyword("maxloc"))
        R.O = Reduction::Op::MaxLoc;
      else if (L.tryKeyword("max"))
        R.O = Reduction::Op::Max;
      else
        L.fail("unknown reduction op (expected sum, max, or maxloc)");
      R.Name = L.ident();
      if (L.tryKeyword("elems"))
        R.Elems = static_cast<uint64_t>(L.number());
      if (SeqStack.empty())
        Prog->addReduction(*CurProc, R);
      else
        Prog->addReductionIn(*SeqStack.back(), R);
      return;
    }
    // Otherwise: an assignment statement  W(subs) = R(subs)... [options].
    if (!InNest)
      L.fail("statement outside a nest");
    Statement S;
    S.Write = parseRef(L);
    L.expect('=');
    while (L.atIdent() && !peekOption(L))
      S.Reads.push_back(parseRef(L));
    for (;;) {
      if (L.tryKeyword("onhome")) {
        S.OnHome.push_back(parseRef(L));
        continue;
      }
      if (L.tryKeyword("cost")) {
        S.Cost = L.real();
        continue;
      }
      if (L.tryKeyword("sem")) {
        S.SemanticsId = static_cast<int>(L.number());
        continue;
      }
      break;
    }
    PendingNest.Stmts.push_back(std::move(S));
  }

  /// True if the next identifier is one of the statement option keywords.
  bool peekOption(LineLexer &L) {
    LineLexer Copy = L;
    return Copy.tryKeyword("onhome") || Copy.tryKeyword("cost") ||
           Copy.tryKeyword("sem");
  }

  Reference parseRef(LineLexer &L) {
    Reference R;
    R.Array = L.ident();
    L.expect('(');
    do {
      R.Subs.push_back(L.affine());
    } while (L.tryConsume(','));
    L.expect(')');
    return R;
  }

  std::vector<DimRange> parseRanges(LineLexer &L) {
    L.expect('(');
    std::vector<DimRange> Ranges;
    do {
      AffineExpr Lo = L.affine();
      L.expect(':');
      AffineExpr Hi = L.affine();
      Ranges.push_back(range(Lo, Hi));
    } while (L.tryConsume(','));
    L.expect(')');
    return Ranges;
  }
};

} // namespace

Expected<std::unique_ptr<Program>>
hpf::parseHpfProgram(const std::string &Text, DiagnosticEngine &Diags,
                     const std::string &FileName) {
  return HpfParser(Text, Diags, FileName).parse();
}

std::unique_ptr<Program> hpf::parseHpfProgram(const std::string &Text) {
  DiagnosticEngine Diags;
  Expected<std::unique_ptr<Program>> P = parseHpfProgram(Text, Diags);
  if (!P) {
    std::fputs(Diags.str().c_str(), stderr);
    std::fputs("hpf: malformed program text rejected\n", stderr);
    std::abort();
  }
  return P.take();
}
