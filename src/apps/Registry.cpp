//===- apps/Registry.cpp - Named benchmark registry for dhpfc ------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/Registry.h"

namespace dhpf {
namespace apps {

namespace {

// Canonical sizes match tests/apps_test.cpp, so the exported examples are
// the exact programs the suite validates.
AppInstance makeJacobiCanonical() { return makeJacobi(16, 3); }
AppInstance makeTomcatvCanonical() { return makeTomcatv(18, 3); }
AppInstance makeErlebacherCanonical() { return makeErlebacher(10, 2); }
AppInstance makeGaussCanonical() { return makeGauss(12); }

std::vector<int64_t> shape2Rows(int64_t P) {
  if (P <= 0)
    return {};
  if (P == 1)
    return {1, 1};
  if (P % 2 == 0)
    return {2, P / 2};
  return {1, P};
}

std::vector<int64_t> shape1D(int64_t P) {
  if (P <= 0)
    return {};
  return {P};
}

std::vector<int64_t> shapeNearSquare(int64_t P) {
  if (P <= 0)
    return {};
  int64_t A = 1;
  for (int64_t D = 1; D * D <= P; ++D)
    if (P % D == 0)
      A = D;
  return {A, P / A};
}

} // namespace

const std::vector<RegistryEntry> &appRegistry() {
  static const std::vector<RegistryEntry> Entries = {
      {"jacobi", "4-point stencil, (BLOCK,BLOCK) on 2 x (P/2) (Figure 7(c))",
       &makeJacobiCanonical, &shape2Rows},
      {"tomcatv", "mesh-generation stencils, (BLOCK,*) rows (Figure 7(a))",
       &makeTomcatvCanonical, &shape1D},
      {"erlebacher",
       "3-D compact differencing, (*,*,BLOCK) pipelined z solve "
       "(Figure 7(b))",
       &makeErlebacherCanonical, &shape1D},
      {"gauss", "LU-style elimination, (CYCLIC,CYCLIC) symbolic grid "
                "(Figure 5)",
       &makeGaussCanonical, &shapeNearSquare},
  };
  return Entries;
}

const RegistryEntry *findApp(const std::string &Name) {
  for (const RegistryEntry &E : appRegistry())
    if (E.Name == Name)
      return &E;
  return nullptr;
}

} // namespace apps
} // namespace dhpf
