//===- apps/Jacobi.cpp - JACOBI benchmark (Figure 7(c)) -------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "JACOBI - a simple 4-point stencil kernel with a convergence loop",
/// distributed (BLOCK,BLOCK) on a 2 x (number_of_processors()/2) grid with
/// the processor count left symbolic (Section 7).
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <cmath>
#include <sstream>
#include <vector>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

AppInstance apps::makeJacobi(int64_t N, int64_t Steps) {
  AppInstance App;
  App.Name = "jacobi";
  App.ProcArrayName = "PR";
  App.Prog = std::make_unique<Program>("jacobi");
  Program &P = *App.Prog;

  // A 2 x (number_of_processors()/2) grid, both extents symbolic so the
  // same compiled code runs on any grid (the paper leaves P unspecified).
  P.addProcs("PR", {Program::procDimSym("PV"), Program::procDimSym("PH")});
  P.addTemplate("T", {range(1, N), range(1, N)});
  P.addArray("U", {range(1, N), range(1, N)});
  P.addArray("V", {range(1, N), range(1, N)});
  P.addAlign({"U", "T", {alignDim(0), alignDim(1)}});
  P.addAlign({"V", "T", {alignDim(0), alignDim(1)}});
  P.addDistribute({"T", "PR", {distBlock(), distBlock()}});

  Procedure &Main = P.addProcedure("main");
  Phase &Time = P.addSeqLoop(Main, "t", Steps);
  {
    ComputeNest Nest;
    Nest.Name = "sweep";
    Nest.Loops = {loop("i", 2, N - 1), loop("j", 2, N - 1)};
    Statement S;
    S.Write = ref("V", {"i", "j"});
    S.Reads = {ref("U", {AffineExpr("i") - 1, "j"}),
               ref("U", {AffineExpr("i") + 1, "j"}),
               ref("U", {"i", AffineExpr("j") - 1}),
               ref("U", {"i", AffineExpr("j") + 1}),
               ref("U", {"i", "j"})};
    S.SemanticsId = 0;
    S.Cost = 6; // 4 adds, 1 mul, 1 diff
    Nest.Stmts = {S};
    P.addNestIn(Time, Nest);
  }
  {
    ComputeNest Nest;
    Nest.Name = "copyback";
    Nest.Loops = {loop("i", 2, N - 1), loop("j", 2, N - 1)};
    Statement S;
    S.Write = ref("U", {"i", "j"});
    S.Reads = {ref("V", {"i", "j"})};
    S.SemanticsId = 1;
    S.Cost = 1;
    Nest.Stmts = {S};
    P.addNestIn(Time, Nest);
  }
  Reduction R;
  R.O = Reduction::Op::Max;
  R.Name = "resid";
  P.addReductionIn(Time, R);

  auto Init = [](const std::vector<int64_t> &Idx) {
    return std::sin(0.05 * double(Idx[0])) + std::cos(0.07 * double(Idx[1]));
  };

  App.Setup = [Init](spmd::ProgramHost &I) {
    I.setSemantics(0, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &Acc) {
      double V = 0.25 * (Rd[0] + Rd[1] + Rd[2] + Rd[3]);
      Acc["resid"] = std::max(Acc["resid"], std::abs(V - Rd[4]));
      return V;
    });
    I.setSemantics(1, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &) {
      return Rd[0];
    });
    I.initArray("U", Init);
    I.initArray("V", Init);
  };

  App.Check = [N, Steps, Init](Interpreter &I, std::string &Err) {
    std::vector<std::vector<double>> U(N + 1, std::vector<double>(N + 1)),
        V = U;
    for (int64_t Ii = 1; Ii <= N; ++Ii)
      for (int64_t Jj = 1; Jj <= N; ++Jj)
        U[Ii][Jj] = V[Ii][Jj] = Init({Ii, Jj});
    for (int64_t T = 0; T != Steps; ++T) {
      for (int64_t Ii = 2; Ii <= N - 1; ++Ii)
        for (int64_t Jj = 2; Jj <= N - 1; ++Jj)
          V[Ii][Jj] = 0.25 * (U[Ii - 1][Jj] + U[Ii + 1][Jj] +
                              U[Ii][Jj - 1] + U[Ii][Jj + 1]);
      for (int64_t Ii = 2; Ii <= N - 1; ++Ii)
        for (int64_t Jj = 2; Jj <= N - 1; ++Jj)
          U[Ii][Jj] = V[Ii][Jj];
    }
    const ArrayStore &AU = I.array("U");
    for (int64_t Ii = 1; Ii <= N; ++Ii)
      for (int64_t Jj = 1; Jj <= N; ++Jj) {
        double Got = AU.at(AU.flatten({Ii, Jj}));
        if (std::abs(Got - U[Ii][Jj]) > 1e-10) {
          std::ostringstream OS;
          OS << "jacobi mismatch at (" << Ii << "," << Jj << "): " << Got
             << " vs " << U[Ii][Jj];
          Err = OS.str();
          return false;
        }
      }
    return true;
  };
  return App;
}
