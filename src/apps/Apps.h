//===- apps/Apps.h - Benchmark applications (paper Sections 6-7) ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mini-HPF encodings of the paper's benchmark codes, each with runnable
/// semantics and a serial reference check:
///
///   - JACOBI: 4-point stencil with a convergence reduction, (BLOCK,BLOCK)
///     on a 2 x (P/2) processor grid (Figure 7(c)).
///   - TOMCATV-like: mesh-generation stencils with residual arrays and two
///     max reductions per step, (BLOCK,*) rows (Figure 7(a)).
///   - ERLEBACHER-like: 3-D compact differencing; local x/y sweeps, a
///     vectorized z boundary exchange, and a pipelined z solve, (*,*,BLOCK)
///     (Figure 7(b)).
///   - GAUSS: LU-style elimination on (CYCLIC,CYCLIC) over a symbolic
///     processor grid (the Figure 5 subject).
///   - SP-like: a synthetic multi-procedure code matched to the NAS SP
///     compile-time subject of Table 1 (30 procedures, 3-D/4-D arrays,
///     stencil/pipeline/copy nests, some non-owner CPs).
///
/// All programs leave the number of processors symbolic, as the paper's
/// experiments do.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_APPS_APPS_H
#define DHPF_APPS_APPS_H

#include "hpf/Program.h"
#include "spmd/Interp.h"

#include <functional>
#include <memory>
#include <string>

namespace dhpf {
namespace apps {

/// A benchmark program plus its runnable semantics and validation.
struct AppInstance {
  std::string Name;
  std::unique_ptr<hpf::Program> Prog;
  std::string ProcArrayName;
  /// Registers statement semantics and initializes arrays. Takes the
  /// abstract host surface so the same closure drives the in-process
  /// Interpreter and the distributed rank runtime.
  std::function<void(spmd::ProgramHost &)> Setup;
  /// Compares the final state with a serial reference; returns true on
  /// success and fills \p Err otherwise. Null when no check is provided.
  std::function<bool(spmd::Interpreter &, std::string &Err)> Check;
};

AppInstance makeJacobi(int64_t N, int64_t Steps);
AppInstance makeTomcatv(int64_t N, int64_t Steps);
AppInstance makeErlebacher(int64_t N, int64_t Steps);
AppInstance makeGauss(int64_t N);

/// The synthetic SP-scale compile-time subject. \p SymbolicProcs selects
/// the 2 x (P/2) symbolic grid (sp-sym) versus the fixed 2x2 grid (SP-4).
AppInstance makeSpLike(unsigned Procedures, bool SymbolicProcs,
                       int64_t N = 16);

} // namespace apps
} // namespace dhpf

#endif // DHPF_APPS_APPS_H
