//===- apps/Erlebacher.cpp - ERLEBACHER-like benchmark (Figure 7(b)) ------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the ERLEBACHER 3-D compact-differencing code with the
/// paper's (*,*,BLOCK) distribution: local x and y sweeps, a vectorized
/// z-direction boundary exchange, and a pipelined z recurrence with
/// communication placed inside the k loop ("a pipelined communication
/// pattern with numerous relatively small messages", Section 7), plus a
/// sum reduction per step.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <cmath>
#include <sstream>
#include <vector>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

namespace {
constexpr double CPipe = 0.4;
} // namespace

AppInstance apps::makeErlebacher(int64_t N, int64_t Steps) {
  AppInstance App;
  App.Name = "erlebacher";
  App.ProcArrayName = "P";
  App.Prog = std::make_unique<Program>("erlebacher");
  Program &P = *App.Prog;

  P.addProcs("P", {Program::procDimSym("NP")});
  P.addTemplate("T", {range(1, N), range(1, N), range(1, N)});
  for (const char *A : {"F", "D"}) {
    P.addArray(A, {range(1, N), range(1, N), range(1, N)});
    P.addAlign({A, "T", {alignDim(0), alignDim(1), alignDim(2)}});
  }
  P.addDistribute({"T", "P", {distStar(), distStar(), distBlock()}});

  Procedure &Main = P.addProcedure("main");
  Phase &Time = P.addSeqLoop(Main, "t", Steps);

  // x and y central differences: fully local under (*,*,BLOCK).
  {
    ComputeNest Nest;
    Nest.Name = "xysweep";
    Nest.Loops = {loop("k", 1, N), loop("i", 2, N - 1),
                  loop("j", 2, N - 1)};
    Statement S;
    S.Write = ref("D", {"i", "j", "k"});
    S.Reads = {ref("F", {AffineExpr("i") - 1, "j", "k"}),
               ref("F", {AffineExpr("i") + 1, "j", "k"}),
               ref("F", {"i", AffineExpr("j") - 1, "k"}),
               ref("F", {"i", AffineExpr("j") + 1, "k"})};
    S.SemanticsId = 0;
    S.Cost = 4;
    Nest.Stmts = {S};
    P.addNestIn(Time, Nest);
  }
  // z central difference: nearest-neighbour exchange in the distributed
  // dimension, fully vectorized out of the nest.
  {
    ComputeNest Nest;
    Nest.Name = "zsweep";
    // Full (i,j) planes: the exchanged k-boundary is then a whole plane,
    // contiguous in column-major order (the Section 3.3 in-place case).
    Nest.Loops = {loop("k", 2, N - 1), loop("i", 1, N), loop("j", 1, N)};
    Statement S;
    S.Write = ref("D", {"i", "j", "k"});
    S.Reads = {ref("D", {"i", "j", "k"}),
               ref("F", {"i", "j", AffineExpr("k") - 1}),
               ref("F", {"i", "j", AffineExpr("k") + 1})};
    S.SemanticsId = 1;
    S.Cost = 3;
    Nest.Stmts = {S};
    P.addNestIn(Time, Nest);
  }
  // Pipelined z recurrence: the k-carried dependence keeps communication
  // inside the k loop (VectorizeLevel = 1).
  {
    ComputeNest Nest;
    Nest.Name = "ztri";
    Nest.Loops = {loop("k", 2, N), loop("i", 1, N), loop("j", 1, N)};
    Nest.VectorizeLevel = 1;
    Statement S;
    S.Write = ref("D", {"i", "j", "k"});
    S.Reads = {ref("D", {"i", "j", "k"}),
               ref("D", {"i", "j", AffineExpr("k") - 1})};
    S.SemanticsId = 2;
    S.Cost = 2;
    Nest.Stmts = {S};
    P.addNestIn(Time, Nest);
  }
  Reduction R;
  R.O = Reduction::Op::Sum;
  R.Name = "dsum";
  P.addReductionIn(Time, R);

  auto Init = [](const std::vector<int64_t> &Idx) {
    return std::sin(0.1 * double(Idx[0])) * std::cos(0.1 * double(Idx[1])) +
           0.05 * double(Idx[2]);
  };

  App.Setup = [Init](spmd::ProgramHost &I) {
    I.setSemantics(0, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &) {
      return 0.5 * (Rd[1] - Rd[0]) + 0.5 * (Rd[3] - Rd[2]);
    });
    I.setSemantics(1, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &Acc) {
      double V = Rd[0] + 0.5 * (Rd[2] - Rd[1]);
      Acc["dsum"] += V;
      return V;
    });
    I.setSemantics(2, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &) {
      return Rd[0] - CPipe * Rd[1];
    });
    I.initArray("F", Init);
    I.initArray("D", [](const std::vector<int64_t> &) { return 0.0; });
  };

  App.Check = [N, Steps, Init](Interpreter &I, std::string &Err) {
    auto Flat = [N](int64_t Ii, int64_t Jj, int64_t Kk) {
      return ((Kk - 1) * N + (Jj - 1)) * N + (Ii - 1);
    };
    std::vector<double> F(N * N * N), D(N * N * N, 0.0);
    for (int64_t Kk = 1; Kk <= N; ++Kk)
      for (int64_t Jj = 1; Jj <= N; ++Jj)
        for (int64_t Ii = 1; Ii <= N; ++Ii)
          F[Flat(Ii, Jj, Kk)] = Init({Ii, Jj, Kk});
    for (int64_t T = 0; T != Steps; ++T) {
      for (int64_t Kk = 1; Kk <= N; ++Kk)
        for (int64_t Ii = 2; Ii <= N - 1; ++Ii)
          for (int64_t Jj = 2; Jj <= N - 1; ++Jj)
            D[Flat(Ii, Jj, Kk)] =
                0.5 * (F[Flat(Ii + 1, Jj, Kk)] - F[Flat(Ii - 1, Jj, Kk)]) +
                0.5 * (F[Flat(Ii, Jj + 1, Kk)] - F[Flat(Ii, Jj - 1, Kk)]);
      for (int64_t Kk = 2; Kk <= N - 1; ++Kk)
        for (int64_t Ii = 1; Ii <= N; ++Ii)
          for (int64_t Jj = 1; Jj <= N; ++Jj)
            D[Flat(Ii, Jj, Kk)] += 0.5 * (F[Flat(Ii, Jj, Kk + 1)] -
                                          F[Flat(Ii, Jj, Kk - 1)]);
      for (int64_t Kk = 2; Kk <= N; ++Kk)
        for (int64_t Ii = 1; Ii <= N; ++Ii)
          for (int64_t Jj = 1; Jj <= N; ++Jj)
            D[Flat(Ii, Jj, Kk)] -= CPipe * D[Flat(Ii, Jj, Kk - 1)];
    }
    const ArrayStore &AD = I.array("D");
    for (int64_t Kk = 1; Kk <= N; ++Kk)
      for (int64_t Jj = 1; Jj <= N; ++Jj)
        for (int64_t Ii = 1; Ii <= N; ++Ii) {
          double Got = AD.at(AD.flatten({Ii, Jj, Kk}));
          if (std::abs(Got - D[Flat(Ii, Jj, Kk)]) > 1e-9) {
            std::ostringstream OS;
            OS << "erlebacher mismatch at (" << Ii << "," << Jj << "," << Kk
               << "): " << Got << " vs " << D[Flat(Ii, Jj, Kk)];
            Err = OS.str();
            return false;
          }
        }
    return true;
  };
  return App;
}
