//===- apps/Tomcatv.cpp - TOMCATV-like benchmark (Figure 7(a)) ------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the SPEC92 TOMCATV mesh-generation benchmark with the
/// paper's (BLOCK,*) distribution over a 1-D symbolic processor array:
/// per time step, residual stencils over two coordinate arrays (boundary
/// exchange in the distributed dimension only), two max reductions inside a
/// relatively small main loop (the paper's noted scalability limiter), and
/// a correction sweep.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <cmath>
#include <sstream>
#include <vector>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

namespace {
constexpr double Omega = 0.35;
} // namespace

AppInstance apps::makeTomcatv(int64_t N, int64_t Steps) {
  AppInstance App;
  App.Name = "tomcatv";
  App.ProcArrayName = "P";
  App.Prog = std::make_unique<Program>("tomcatv");
  Program &P = *App.Prog;

  P.addProcs("P", {Program::procDimSym("NP")});
  P.addTemplate("T", {range(1, N), range(1, N)});
  for (const char *A : {"X", "Y", "RX", "RY"}) {
    P.addArray(A, {range(1, N), range(1, N)});
    P.addAlign({A, "T", {alignDim(0), alignDim(1)}});
  }
  P.addDistribute({"T", "P", {distBlock(), distStar()}});

  Procedure &Main = P.addProcedure("main");
  Phase &Time = P.addSeqLoop(Main, "t", Steps);

  // Residual stencils: one statement group (identical owner-computes CPs),
  // two coalesced communication events (X and Y boundary rows).
  {
    ComputeNest Nest;
    Nest.Name = "resid";
    Nest.Loops = {loop("i", 2, N - 1), loop("j", 2, N - 1)};
    Statement SX;
    SX.Write = ref("RX", {"i", "j"});
    SX.Reads = {ref("X", {AffineExpr("i") - 1, "j"}),
                ref("X", {AffineExpr("i") + 1, "j"}),
                ref("X", {"i", AffineExpr("j") - 1}),
                ref("X", {"i", AffineExpr("j") + 1}),
                ref("X", {"i", "j"})};
    SX.SemanticsId = 0;
    SX.Cost = 7;
    Statement SY = SX;
    SY.Write = ref("RY", {"i", "j"});
    for (auto &Rd : SY.Reads)
      Rd.Array = "Y";
    SY.SemanticsId = 0;
    Nest.Stmts = {SX, SY};
    P.addNestIn(Time, Nest);
  }
  // Two maxloc-style reductions (the paper implements these specially;
  // here they are modelled as max all-reduces of the residual magnitudes).
  {
    Reduction R;
    R.O = Reduction::Op::MaxLoc;
    R.Name = "rxm";
    P.addReductionIn(Time, R);
    R.Name = "rym";
    P.addReductionIn(Time, R);
  }
  // Correction sweep: purely local.
  {
    ComputeNest Nest;
    Nest.Name = "update";
    Nest.Loops = {loop("i", 2, N - 1), loop("j", 2, N - 1)};
    Statement SX;
    SX.Write = ref("X", {"i", "j"});
    SX.Reads = {ref("X", {"i", "j"}), ref("RX", {"i", "j"})};
    SX.SemanticsId = 1;
    SX.Cost = 2;
    Statement SY = SX;
    SY.Write = ref("Y", {"i", "j"});
    SY.Reads = {ref("Y", {"i", "j"}), ref("RY", {"i", "j"})};
    Nest.Stmts = {SX, SY};
    P.addNestIn(Time, Nest);
  }

  auto InitX = [](const std::vector<int64_t> &Idx) {
    return 0.01 * double(Idx[0]) + std::sin(0.1 * double(Idx[1]));
  };
  auto InitY = [](const std::vector<int64_t> &Idx) {
    return 0.02 * double(Idx[1]) + std::cos(0.1 * double(Idx[0]));
  };

  App.Setup = [InitX, InitY](spmd::ProgramHost &I) {
    I.setSemantics(0, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &Acc) {
      double R = Rd[0] + Rd[1] + Rd[2] + Rd[3] - 4.0 * Rd[4];
      Acc["rxm"] = std::max(Acc["rxm"], std::abs(R));
      Acc["rym"] = Acc["rxm"];
      return R;
    });
    I.setSemantics(1, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &) {
      return Rd[0] + Omega * Rd[1];
    });
    I.initArray("X", InitX);
    I.initArray("Y", InitY);
  };

  App.Check = [N, Steps, InitX, InitY](Interpreter &I, std::string &Err) {
    using Grid = std::vector<std::vector<double>>;
    Grid X(N + 1, std::vector<double>(N + 1)), Y = X, RX = X, RY = X;
    for (int64_t Ii = 1; Ii <= N; ++Ii)
      for (int64_t Jj = 1; Jj <= N; ++Jj) {
        X[Ii][Jj] = InitX({Ii, Jj});
        Y[Ii][Jj] = InitY({Ii, Jj});
      }
    for (int64_t T = 0; T != Steps; ++T) {
      for (int64_t Ii = 2; Ii <= N - 1; ++Ii)
        for (int64_t Jj = 2; Jj <= N - 1; ++Jj) {
          RX[Ii][Jj] = X[Ii - 1][Jj] + X[Ii + 1][Jj] + X[Ii][Jj - 1] +
                       X[Ii][Jj + 1] - 4.0 * X[Ii][Jj];
          RY[Ii][Jj] = Y[Ii - 1][Jj] + Y[Ii + 1][Jj] + Y[Ii][Jj - 1] +
                       Y[Ii][Jj + 1] - 4.0 * Y[Ii][Jj];
        }
      for (int64_t Ii = 2; Ii <= N - 1; ++Ii)
        for (int64_t Jj = 2; Jj <= N - 1; ++Jj) {
          X[Ii][Jj] += Omega * RX[Ii][Jj];
          Y[Ii][Jj] += Omega * RY[Ii][Jj];
        }
    }
    const ArrayStore &AX = I.array("X");
    const ArrayStore &AY = I.array("Y");
    for (int64_t Ii = 1; Ii <= N; ++Ii)
      for (int64_t Jj = 1; Jj <= N; ++Jj) {
        if (std::abs(AX.at(AX.flatten({Ii, Jj})) - X[Ii][Jj]) > 1e-9 ||
            std::abs(AY.at(AY.flatten({Ii, Jj})) - Y[Ii][Jj]) > 1e-9) {
          std::ostringstream OS;
          OS << "tomcatv mismatch at (" << Ii << "," << Jj << ")";
          Err = OS.str();
          return false;
        }
      }
    return true;
  };
  return App;
}
