//===- apps/Registry.h - Named benchmark registry for dhpfc --------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps the program names embedded in exported .hpf / .spmd files back to
/// the benchmark constructors, so the dhpfc CLI can attach runnable
/// semantics (Setup) and the serial reference check (Check) to a program it
/// parsed from text. The Setup/Check closures only reference semantics ids,
/// array names, and the canonical problem size, so they apply to any
/// structurally identical program — in particular one reconstructed from
/// the serialized form — as long as it was exported at the canonical size.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_APPS_REGISTRY_H
#define DHPF_APPS_REGISTRY_H

#include "apps/Apps.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dhpf {
namespace apps {

/// One registered benchmark (the four Figure 7 applications).
struct RegistryEntry {
  std::string Name;    ///< hpf::Program::name() as exported
  std::string Summary; ///< one-line description for `dhpfc list`
  /// Builds the app at its canonical size (the size `dhpfc export`
  /// writes, and the only size at which Check is valid).
  AppInstance (*MakeCanonical)();
  /// Extents for the app's processor array given a total processor
  /// count; empty when \p NumProcs cannot be mapped onto the grid.
  std::vector<int64_t> (*ProcShape)(int64_t NumProcs);
};

/// All registered benchmarks, in export order.
const std::vector<RegistryEntry> &appRegistry();

/// Finds a benchmark by program name; null if unknown.
const RegistryEntry *findApp(const std::string &Name);

} // namespace apps
} // namespace dhpf

#endif // DHPF_APPS_REGISTRY_H
