//===- apps/SpLike.cpp - Synthetic NAS-SP-scale compile subject -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synthetic stand-in for the paper's NAS SP compile-time subject
/// (Table 1): ~30 procedures over 3-D and 4-D arrays distributed BLOCK in
/// the y and z dimensions, with stencil sweeps (shift communication in one
/// or both distributed dimensions), pipelined solver-like nests, non-owner
/// ON_HOME partitionings, and local copy nests. The paper's SP-4 uses a
/// fixed 2x2 processor grid; sp-sym leaves the total symbolic
/// (2 x number_of_processors()/2). Compile time depends on program
/// *structure*, which this generator matches; the numerics are generic and
/// runnable for validity checks.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

AppInstance apps::makeSpLike(unsigned Procedures, bool SymbolicProcs,
                             int64_t N) {
  AppInstance App;
  App.Name = SymbolicProcs ? "sp-sym" : "sp-4";
  App.ProcArrayName = "PG";
  App.Prog = std::make_unique<Program>(App.Name);
  Program &P = *App.Prog;

  if (SymbolicProcs)
    P.addProcs("PG", {Program::procDim(2), Program::procDimSym("PH")});
  else
    P.addProcs("PG", {Program::procDim(2), Program::procDim(2)});
  P.addTemplate("T", {range(1, N), range(1, N), range(1, N)});
  // Three 3-D state arrays plus one 4-D array (leading free dimension of
  // extent 5, like SP's u(5,N,N,N)).
  for (const char *A : {"U", "V", "W"}) {
    P.addArray(A, {range(1, N), range(1, N), range(1, N)});
    P.addAlign({A, "T", {alignDim(0), alignDim(1), alignDim(2)}});
  }
  P.addArray("Q", {range(1, 5), range(1, N), range(1, N), range(1, N)});
  P.addAlign({"Q", "T", {alignDim(1), alignDim(2), alignDim(3)}});
  P.addDistribute({"T", "PG", {distStar(), distBlock(), distBlock()}});

  const char *Arrays3[] = {"U", "V", "W"};
  for (unsigned Pi = 0; Pi != Procedures; ++Pi) {
    Procedure &Proc = P.addProcedure("sub" + std::to_string(Pi));
    unsigned Kind = Pi % 5;
    const char *Src = Arrays3[Pi % 3];
    const char *Dst = Arrays3[(Pi + 1) % 3];
    switch (Kind) {
    case 0: {
      // compute_rhs-like: 7-point stencil, shifts in both distributed dims.
      ComputeNest Nest;
      Nest.Name = Proc.Name + "/rhs";
      Nest.Loops = {loop("i", 2, N - 1), loop("j", 2, N - 1),
                    loop("k", 2, N - 1)};
      Statement S;
      S.Write = ref(Dst, {"i", "j", "k"});
      S.Reads = {ref(Src, {"i", AffineExpr("j") - 1, "k"}),
                 ref(Src, {"i", AffineExpr("j") + 1, "k"}),
                 ref(Src, {"i", "j", AffineExpr("k") - 1}),
                 ref(Src, {"i", "j", AffineExpr("k") + 1}),
                 ref(Src, {AffineExpr("i") - 1, "j", "k"}),
                 ref(Src, {AffineExpr("i") + 1, "j", "k"})};
      S.SemanticsId = 0;
      S.Cost = 8;
      Nest.Stmts = {S};
      P.addNest(Proc, Nest);
      break;
    }
    case 1: {
      // y_solve-like: pipelined recurrence along the first distributed dim.
      ComputeNest Nest;
      Nest.Name = Proc.Name + "/ysolve";
      Nest.Loops = {loop("j", 2, N), loop("i", 1, N), loop("k", 1, N)};
      Nest.VectorizeLevel = 1;
      Statement S;
      S.Write = ref(Dst, {"i", "j", "k"});
      S.Reads = {ref(Dst, {"i", AffineExpr("j") - 1, "k"}),
                 ref(Src, {"i", "j", "k"})};
      S.SemanticsId = 1;
      S.Cost = 3;
      Nest.Stmts = {S};
      P.addNest(Proc, Nest);
      break;
    }
    case 2: {
      // Non-owner CP (partial replication style): run on the reader's home.
      ComputeNest Nest;
      Nest.Name = Proc.Name + "/nonowner";
      Nest.Loops = {loop("i", 1, N), loop("j", 2, N), loop("k", 1, N)};
      Statement S;
      S.Write = ref(Dst, {"i", "j", "k"});
      S.Reads = {ref(Src, {"i", AffineExpr("j") - 1, "k"})};
      S.OnHome = {ref(Src, {"i", AffineExpr("j") - 1, "k"})};
      S.SemanticsId = 2;
      S.Cost = 2;
      Nest.Stmts = {S};
      P.addNest(Proc, Nest);
      break;
    }
    case 3: {
      // 4-D flux update from the 3-D state, plus a local copy (a two-group
      // nest: differing CPs exercise multi-mapping code generation).
      ComputeNest Nest;
      Nest.Name = Proc.Name + "/flux";
      Nest.Loops = {loop("i", 1, N), loop("j", 1, N),
                    loop("k", 2, N - 1)};
      Statement S1;
      S1.Write = ref("Q", {2, "i", "j", "k"});
      S1.Reads = {ref(Src, {"i", "j", AffineExpr("k") - 1}),
                  ref(Src, {"i", "j", AffineExpr("k") + 1})};
      S1.SemanticsId = 3;
      S1.Cost = 4;
      Statement S2;
      S2.Write = ref(Dst, {"i", "j", "k"});
      S2.Reads = {ref(Src, {"i", "j", "k"})};
      S2.SemanticsId = 4;
      S2.Cost = 1;
      Nest.Stmts = {S1, S2};
      P.addNest(Proc, Nest);
      break;
    }
    default: {
      // add-like local sweep plus a reduction.
      ComputeNest Nest;
      Nest.Name = Proc.Name + "/add";
      Nest.Loops = {loop("i", 1, N), loop("j", 1, N), loop("k", 1, N)};
      Statement S;
      S.Write = ref(Dst, {"i", "j", "k"});
      S.Reads = {ref(Dst, {"i", "j", "k"}), ref(Src, {"i", "j", "k"})};
      S.SemanticsId = 4;
      S.Cost = 2;
      Nest.Stmts = {S};
      P.addNest(Proc, Nest);
      Reduction R;
      R.O = Reduction::Op::Sum;
      R.Name = "rnorm";
      P.addReduction(Proc, R);
      break;
    }
    }
  }

  App.Setup = [](spmd::ProgramHost &I) {
    auto Avg = [](const std::vector<double> &Rd,
                  const std::vector<int64_t> &, AccumMap &) {
      double S = 0;
      for (double V : Rd)
        S += V;
      return S / double(Rd.size());
    };
    for (int Id = 0; Id != 5; ++Id)
      I.setSemantics(Id, Avg);
    for (const char *A : {"U", "V", "W"})
      I.initArray(A, [](const std::vector<int64_t> &Idx) {
        return double(Idx[0] + 2 * Idx[1] + 3 * Idx[2]);
      });
    I.initArray("Q", [](const std::vector<int64_t> &) { return 0.0; });
  };
  // No serial check: this is the compile-time subject. Validity (ownership
  // and message matching) is still verified by the interpreter.
  return App;
}
