//===- apps/Gauss.cpp - Gaussian elimination (the Figure 5 subject) -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LU-style elimination on a (CYCLIC,CYCLIC) distribution over a symbolic
/// P1 x P2 processor grid: the update at pivot step pv reads the pivot row
/// A(pv, j) and pivot column A(i, pv), so only the virtual processors
/// owning pivot elements send while every busy VP receives — the Figure 5
/// active-VP structure, exercised end to end.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <cmath>
#include <sstream>
#include <vector>

using namespace dhpf;
using namespace dhpf::apps;
using namespace dhpf::hpf;
using namespace dhpf::spmd;

AppInstance apps::makeGauss(int64_t N) {
  AppInstance App;
  App.Name = "gauss";
  App.ProcArrayName = "PA";
  App.Prog = std::make_unique<Program>("gauss");
  Program &P = *App.Prog;

  P.addProcs("PA", {Program::procDimSym("P1"), Program::procDimSym("P2")});
  P.addTemplate("T", {range(1, N), range(1, N)});
  P.addArray("A", {range(1, N), range(1, N)});
  P.addAlign({"A", "T", {alignDim(0), alignDim(1)}});
  P.addDistribute({"T", "PA", {distCyclic(), distCyclic()}});

  Procedure &Main = P.addProcedure("main");
  Phase &Piv = P.addSeqLoop(Main, "pv", N - 1);
  ComputeNest Nest;
  Nest.Name = "update";
  Nest.Loops = {loop("i", AffineExpr("pv") + 1, N),
                loop("j", AffineExpr("pv") + 1, N)};
  Statement S;
  S.Write = ref("A", {"i", "j"});
  S.Reads = {ref("A", {"i", "j"}), ref("A", {"i", "pv"}),
             ref("A", {"pv", "j"})};
  S.SemanticsId = 0;
  S.Cost = 2;
  Nest.Stmts = {S};
  P.addNestIn(Piv, Nest);

  auto Init = [N](const std::vector<int64_t> &Idx) {
    // Diagonally dominant so the elimination stays well-conditioned.
    double V = 1.0 / double(1 + std::abs(Idx[0] - Idx[1]));
    if (Idx[0] == Idx[1])
      V += double(N);
    return V;
  };

  App.Setup = [Init](spmd::ProgramHost &I) {
    I.setSemantics(0, [](const std::vector<double> &Rd,
                         const std::vector<int64_t> &, AccumMap &) {
      return Rd[0] - Rd[1] * Rd[2];
    });
    I.initArray("A", Init);
  };

  App.Check = [N, Init](Interpreter &I, std::string &Err) {
    std::vector<std::vector<double>> A(N + 1, std::vector<double>(N + 1));
    for (int64_t Ii = 1; Ii <= N; ++Ii)
      for (int64_t Jj = 1; Jj <= N; ++Jj)
        A[Ii][Jj] = Init({Ii, Jj});
    for (int64_t Pv = 1; Pv <= N - 1; ++Pv)
      for (int64_t Ii = Pv + 1; Ii <= N; ++Ii)
        for (int64_t Jj = Pv + 1; Jj <= N; ++Jj)
          A[Ii][Jj] -= A[Ii][Pv] * A[Pv][Jj];
    const ArrayStore &AA = I.array("A");
    for (int64_t Ii = 1; Ii <= N; ++Ii)
      for (int64_t Jj = 1; Jj <= N; ++Jj) {
        double Got = AA.at(AA.flatten({Ii, Jj}));
        if (std::abs(Got - A[Ii][Jj]) > 1e-8) {
          std::ostringstream OS;
          OS << "gauss mismatch at (" << Ii << "," << Jj << "): " << Got
             << " vs " << A[Ii][Jj];
          Err = OS.str();
          return false;
        }
      }
    return true;
  };
  return App;
}
