//===- obs/Metrics.h - Process-wide metrics registry ---------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead, thread-safe registry of named counters, gauges, and
/// histograms shared by every layer of the system (set engine, compiler
/// driver, SPMD engines, transport, rank runtime). Instruments register a
/// metric once (a mutex-guarded map insert) and keep the returned pointer;
/// the hot-path operations — Counter::inc, Gauge::set,
/// Histogram::observe — are single relaxed atomics with no locking.
///
/// The whole subsystem is compiled behind DHPF_OBS_ENABLED (the DHPF_OBS
/// CMake option). When OFF, every hot-path operation is an empty inline
/// function the optimizer deletes, so an instrumented build with
/// observability disabled is bit-for-bit the uninstrumented program —
/// the "zero overhead when disabled" guarantee the bench verifies.
///
/// Reports come in two shapes: a flat text table (one `name value` line
/// per metric, sorted by name) and a JSON object, both stable across runs
/// of the same workload so they diff cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_OBS_METRICS_H
#define DHPF_OBS_METRICS_H

#ifndef DHPF_OBS_ENABLED
#define DHPF_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dhpf {
namespace obs {

/// True when the observability layer is compiled in (DHPF_OBS=ON). A
/// constexpr so `if (compiledIn())` bodies are dead-code-eliminated in
/// OFF builds.
constexpr bool compiledIn() { return DHPF_OBS_ENABLED != 0; }

/// A monotonically increasing counter.
class Counter {
public:
  void inc(uint64_t N = 1) {
    if (compiledIn())
      V.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const {
    return compiledIn() ? V.load(std::memory_order_relaxed) : 0;
  }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-value-wins signed gauge.
class Gauge {
public:
  void set(int64_t X) {
    if (compiledIn())
      V.store(X, std::memory_order_relaxed);
  }
  int64_t value() const {
    return compiledIn() ? V.load(std::memory_order_relaxed) : 0;
  }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A fixed-bucket histogram. Bucket i counts observations with
/// `value <= Edges[i]` (and greater than the previous edge); one implicit
/// overflow bucket counts everything past the last edge. Edges are fixed
/// at registration, so observe() is a binary search plus one relaxed
/// atomic increment.
class Histogram {
public:
  explicit Histogram(std::vector<int64_t> EdgesIn);

  void observe(int64_t X) {
    if (!compiledIn())
      return;
    size_t Lo = 0, Hi = Edges.size();
    while (Lo < Hi) { // first edge >= X
      size_t Mid = (Lo + Hi) / 2;
      if (Edges[Mid] < X)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    Counts[Lo].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(X, std::memory_order_relaxed);
  }

  const std::vector<int64_t> &edges() const { return Edges; }
  /// Count in bucket \p I (I == edges().size() is the overflow bucket).
  uint64_t bucket(size_t I) const {
    return Counts[I].load(std::memory_order_relaxed);
  }
  uint64_t total() const;
  int64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  void reset();

private:
  std::vector<int64_t> Edges;
  std::unique_ptr<std::atomic<uint64_t>[]> Counts; // Edges.size() + 1
  std::atomic<int64_t> Sum{0};
};

/// The registry: name -> metric, with stable pointers for the lifetime of
/// the registry. Metric names use dotted lower-case paths
/// ("pset.cache.hits", "rt.comm.send.bytes").
class MetricsRegistry {
public:
  /// The process-global registry (lazily constructed; no static
  /// constructors, per the repo rule).
  static MetricsRegistry &global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Finds or creates the named metric. Pointers stay valid for the
  /// registry's lifetime; re-registering a name returns the same object.
  Counter *counter(const std::string &Name);
  Gauge *gauge(const std::string &Name);
  /// \p Edges must be strictly increasing; re-registration ignores the
  /// edges and returns the existing histogram.
  Histogram *histogram(const std::string &Name, std::vector<int64_t> Edges);

  /// Flat text report: `name<space>value`, histograms expanded into
  /// per-bucket lines (`name.le.<edge>` / `name.overflow` / `name.sum`).
  std::string reportText() const;
  /// The same data as one JSON object (metric name -> number, histograms
  /// as nested objects).
  std::string reportJson() const;

  /// Zeroes every registered metric (tests; metrics keep registration).
  void resetAll();

private:
  struct Entry {
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };
  mutable std::mutex M;
  std::map<std::string, Entry> Metrics;
};

} // namespace obs
} // namespace dhpf

#endif // DHPF_OBS_METRICS_H
