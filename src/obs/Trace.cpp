//===- obs/Trace.cpp - Structured tracing with Chrome trace export -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

using namespace dhpf;
using namespace dhpf::obs;

//===----------------------------------------------------------------------===//
// Thread ids
//===----------------------------------------------------------------------===//

namespace {

std::atomic<uint32_t> &nextTid() {
  static std::atomic<uint32_t> N{0};
  return N;
}

thread_local uint32_t TlsTid = UINT32_MAX;

} // namespace

uint32_t obs::threadId() {
  if (TlsTid == UINT32_MAX)
    TlsTid = nextTid().fetch_add(1, std::memory_order_relaxed);
  return TlsTid;
}

void obs::setThreadId(uint32_t Tid) { TlsTid = Tid; }

//===----------------------------------------------------------------------===//
// TraceBuffer
//===----------------------------------------------------------------------===//

TraceBuffer &TraceBuffer::global() {
  static TraceBuffer B;
  return B;
}

void TraceBuffer::start() {
  if (!compiledIn())
    return;
  std::lock_guard<std::mutex> Lock(M);
  Epoch = std::chrono::steady_clock::now();
  Active.store(true, std::memory_order_relaxed);
}

void TraceBuffer::setLane(uint32_t Pid, std::string Name) {
  std::lock_guard<std::mutex> Lock(M);
  Lane = Pid;
  LaneName = std::move(Name);
}

uint64_t TraceBuffer::nowUs() const {
  if (!active())
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void TraceBuffer::complete(std::string Name, std::string Cat, uint64_t TsUs,
                           uint64_t DurUs, std::string Args) {
  if (!active())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.Ph = 'X';
  E.TsUs = TsUs;
  E.DurUs = DurUs;
  E.Tid = threadId();
  E.Args = std::move(Args);
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void TraceBuffer::instant(std::string Name, std::string Cat,
                          std::string Args) {
  if (!active())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.Ph = 'i';
  E.TsUs = nowUs();
  E.Tid = threadId();
  E.Args = std::move(Args);
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

std::string TraceBuffer::chromeJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream OS;
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  // Lane metadata first, so viewers label the lane even when empty.
  OS << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << Lane
     << ", \"tid\": 0, \"args\": {\"name\": \"" << jsonEscape(LaneName)
     << "\"}}";
  for (const TraceEvent &E : Events) {
    OS << ",\n{\"name\": \"" << jsonEscape(E.Name) << "\", \"cat\": \""
       << jsonEscape(E.Cat) << "\", \"ph\": \"" << E.Ph
       << "\", \"ts\": " << E.TsUs;
    if (E.Ph == 'X')
      OS << ", \"dur\": " << E.DurUs;
    if (E.Ph == 'i')
      OS << ", \"s\": \"t\"";
    OS << ", \"pid\": " << Lane << ", \"tid\": " << E.Tid;
    if (!E.Args.empty())
      OS << ", \"args\": {" << E.Args << "}";
    OS << "}";
  }
  OS << "\n]}\n";
  return OS.str();
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events;
}

size_t TraceBuffer::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Events.clear();
}

//===----------------------------------------------------------------------===//
// JSON utilities and the cross-process merge
//===----------------------------------------------------------------------===//

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// Extracts the body (between the brackets, exclusive) of the
/// `"traceEvents": [...]` array of one Chrome trace document. Returns
/// false when the document has no such array. The scan respects string
/// literals and nesting, so event payloads containing brackets are safe.
bool extractEventArray(const std::string &Doc, std::string &Body) {
  size_t Key = Doc.find("\"traceEvents\"");
  if (Key == std::string::npos)
    return false;
  size_t Open = Doc.find('[', Key);
  if (Open == std::string::npos)
    return false;
  int Depth = 0;
  bool InStr = false, Esc = false;
  for (size_t I = Open; I != Doc.size(); ++I) {
    char C = Doc[I];
    if (InStr) {
      if (Esc)
        Esc = false;
      else if (C == '\\')
        Esc = true;
      else if (C == '"')
        InStr = false;
      continue;
    }
    if (C == '"')
      InStr = true;
    else if (C == '[')
      ++Depth;
    else if (C == ']' && --Depth == 0) {
      Body = Doc.substr(Open + 1, I - Open - 1);
      return true;
    }
  }
  return false;
}

bool allWhitespace(const std::string &S) {
  for (char C : S)
    if (C != ' ' && C != '\n' && C != '\t' && C != '\r')
      return false;
  return true;
}

} // namespace

std::string obs::mergeChromeTraces(const std::vector<std::string> &Docs) {
  std::ostringstream OS;
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool First = true;
  for (const std::string &Doc : Docs) {
    std::string Body;
    if (!extractEventArray(Doc, Body) || allWhitespace(Body))
      continue;
    // Trim surrounding whitespace so the joined array stays tidy.
    size_t B = Body.find_first_not_of(" \n\t\r");
    size_t E = Body.find_last_not_of(" \n\t\r");
    OS << (First ? "" : ",\n") << Body.substr(B, E - B + 1);
    First = false;
  }
  OS << "\n]}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Environment activation
//===----------------------------------------------------------------------===//

std::string obs::startTraceFromEnv(uint32_t Lane,
                                   const std::string &LaneName) {
  const char *Path = std::getenv("DHPF_TRACE");
  if (!Path || !*Path)
    return "";
  TraceBuffer &B = TraceBuffer::global();
  B.setLane(Lane, LaneName);
  B.start();
  return Path;
}

std::string obs::metricsPathFromEnv() {
  const char *Path = std::getenv("DHPF_METRICS");
  return Path && *Path ? Path : "";
}
