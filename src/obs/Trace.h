//===- obs/Trace.h - Structured tracing with Chrome trace export ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped wall-clock tracing for the compiler and runtime, exported as
/// Chrome trace-event JSON (the catapult format `chrome://tracing` and
/// Perfetto load directly). A TraceBuffer collects complete ("X") and
/// instant ("i") events with microsecond timestamps relative to the
/// buffer's start; TraceSpan is the RAII probe call sites use:
///
///   obs::TraceSpan S(&obs::TraceBuffer::global(), "pass:comm", "compile");
///
/// A span records *nothing* unless the buffer is active (started), so an
/// idle process pays one relaxed atomic load per probe; with DHPF_OBS=OFF
/// the probe compiles away entirely.
///
/// Lanes: every buffer carries a Chrome `pid` (the lane) plus a process
/// name. The driver traces in lane 0; rank R of a distributed run traces
/// in lane R+1 (`dhpf_rt` sets this from --rank). `mergeChromeTraces`
/// stitches per-rank trace files into one timeline by concatenating their
/// event arrays — lanes keep rank events apart, so the merged file shows
/// the driver plus every rank side by side. Timestamps are per-process
/// (each rank's clock starts at its own buffer start); the merge aligns
/// lanes at t=0, which is what the overlap analysis wants.
///
/// Threads within a lane get small dense `tid`s in first-use order;
/// setThreadId() pins the calling thread's id (the in-process rank
/// executors pin tid = rank so lanes are stable).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_OBS_TRACE_H
#define DHPF_OBS_TRACE_H

#include "obs/Metrics.h"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dhpf {
namespace obs {

struct TraceEvent {
  std::string Name;
  std::string Cat;
  char Ph = 'X';    ///< 'X' complete, 'i' instant
  uint64_t TsUs = 0;  ///< microseconds since buffer start
  uint64_t DurUs = 0; ///< 'X' only
  uint32_t Tid = 0;
  std::string Args; ///< pre-rendered JSON object body ("\"k\":1"), may be ""
};

/// The calling thread's dense trace id (assigned on first use).
uint32_t threadId();
/// Pins the calling thread's trace id (e.g. tid = rank).
void setThreadId(uint32_t Tid);

class TraceBuffer {
public:
  /// The process-global buffer. Idle (inactive) until start() — the
  /// DHPF_TRACE env var or the --trace flag starts it.
  static TraceBuffer &global();

  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer &) = delete;
  TraceBuffer &operator=(const TraceBuffer &) = delete;

  /// Starts (or restarts) recording; resets the clock epoch.
  void start();
  void stop() { Active.store(false, std::memory_order_relaxed); }
  bool active() const {
    return compiledIn() && Active.load(std::memory_order_relaxed);
  }

  /// Chrome `pid` for every event of this buffer, plus the process name
  /// shown in the timeline ("driver", "rank 2").
  void setLane(uint32_t Pid, std::string Name);
  uint32_t lane() const { return Lane; }

  /// Microseconds since start() (0 when inactive).
  uint64_t nowUs() const;

  void complete(std::string Name, std::string Cat, uint64_t TsUs,
                uint64_t DurUs, std::string Args = "");
  void instant(std::string Name, std::string Cat, std::string Args = "");

  /// The whole buffer as one Chrome trace JSON object:
  /// {"displayTimeUnit":"ms","traceEvents":[...]} with a process_name
  /// metadata event for the lane. Valid JSON even when empty or when
  /// DHPF_OBS=OFF (it is then just the metadata).
  std::string chromeJson() const;

  std::vector<TraceEvent> snapshot() const;
  size_t eventCount() const;
  void clear();

private:
  mutable std::mutex M;
  std::vector<TraceEvent> Events;
  std::atomic<bool> Active{false};
  std::chrono::steady_clock::time_point Epoch{};
  uint32_t Lane = 0;
  std::string LaneName = "driver";
};

/// RAII scoped timer: records one complete event over its lifetime.
/// Null buffer or inactive buffer: fully inert.
class TraceSpan {
public:
  TraceSpan(TraceBuffer *Buf, std::string Name, std::string Cat,
            std::string Args = "") {
    if (compiledIn() && Buf && Buf->active()) {
      B = Buf;
      N = std::move(Name);
      C = std::move(Cat);
      A = std::move(Args);
      T0 = B->nowUs();
    }
  }
  ~TraceSpan() {
    if (B)
      B->complete(std::move(N), std::move(C), T0, B->nowUs() - T0,
                  std::move(A));
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceBuffer *B = nullptr;
  std::string N, C, A;
  uint64_t T0 = 0;
};

/// Escapes a string for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Merges several Chrome trace JSON documents (each the chromeJson() of
/// one lane, or a per-rank trace file) into one timeline document by
/// concatenating their traceEvents arrays. Inputs that are empty or lack
/// a traceEvents array are skipped. The result is always valid JSON.
std::string mergeChromeTraces(const std::vector<std::string> &Docs);

/// If DHPF_TRACE names a file, starts the global buffer (lane \p Lane,
/// named \p LaneName) and returns the path; else returns "". The caller
/// writes TraceBuffer::global().chromeJson() there when done.
std::string startTraceFromEnv(uint32_t Lane, const std::string &LaneName);

/// The DHPF_METRICS path, or "".
std::string metricsPathFromEnv();

} // namespace obs
} // namespace dhpf

#endif // DHPF_OBS_TRACE_H
