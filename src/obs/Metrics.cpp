//===- obs/Metrics.cpp - Process-wide metrics registry -------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <sstream>

using namespace dhpf;
using namespace dhpf::obs;

Histogram::Histogram(std::vector<int64_t> EdgesIn)
    : Edges(std::move(EdgesIn)),
      Counts(new std::atomic<uint64_t>[Edges.size() + 1]) {
  for (size_t I = 0; I != Edges.size() + 1; ++I)
    Counts[I].store(0, std::memory_order_relaxed);
}

uint64_t Histogram::total() const {
  uint64_t T = 0;
  for (size_t I = 0; I != Edges.size() + 1; ++I)
    T += Counts[I].load(std::memory_order_relaxed);
  return T;
}

void Histogram::reset() {
  for (size_t I = 0; I != Edges.size() + 1; ++I)
    Counts[I].store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

Counter *MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Metrics[Name];
  if (!E.C)
    E.C = std::make_unique<Counter>();
  return E.C.get();
}

Gauge *MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Metrics[Name];
  if (!E.G)
    E.G = std::make_unique<Gauge>();
  return E.G.get();
}

Histogram *MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<int64_t> Edges) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Metrics[Name];
  if (!E.H)
    E.H = std::make_unique<Histogram>(std::move(Edges));
  return E.H.get();
}

std::string MetricsRegistry::reportText() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream OS;
  for (const auto &[Name, E] : Metrics) {
    if (E.C)
      OS << Name << " " << E.C->value() << "\n";
    if (E.G)
      OS << Name << " " << E.G->value() << "\n";
    if (E.H) {
      for (size_t I = 0; I != E.H->edges().size(); ++I)
        OS << Name << ".le." << E.H->edges()[I] << " " << E.H->bucket(I)
           << "\n";
      OS << Name << ".overflow " << E.H->bucket(E.H->edges().size())
         << "\n";
      OS << Name << ".total " << E.H->total() << "\n";
      OS << Name << ".sum " << E.H->sum() << "\n";
    }
  }
  return OS.str();
}

std::string MetricsRegistry::reportJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  auto Key = [&](const std::string &Name) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n  \"" << Name << "\": ";
  };
  for (const auto &[Name, E] : Metrics) {
    if (E.C)
      Key(Name), OS << E.C->value();
    if (E.G)
      Key(Name), OS << E.G->value();
    if (E.H) {
      Key(Name);
      OS << "{\"buckets\": [";
      for (size_t I = 0; I != E.H->edges().size() + 1; ++I)
        OS << (I ? "," : "") << E.H->bucket(I);
      OS << "], \"edges\": [";
      for (size_t I = 0; I != E.H->edges().size(); ++I)
        OS << (I ? "," : "") << E.H->edges()[I];
      OS << "], \"total\": " << E.H->total() << ", \"sum\": " << E.H->sum()
         << "}";
    }
  }
  OS << "\n}\n";
  return OS.str();
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, E] : Metrics) {
    (void)Name;
    if (E.C)
      E.C->reset();
    if (E.G)
      E.G->reset();
    if (E.H)
      E.H->reset();
  }
}
