//===- pset/OmegaTest.h - Exact integer projection and satisfiability ----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine underneath the set framework: Pugh's Omega test. Provides
/// exact elimination of an existential variable from a conjunct (returning
/// a union of conjuncts: real shadow when Fourier-Motzkin is exact,
/// otherwise dark shadow plus splinters), integer satisfiability, and
/// redundant-constraint removal. See W. Pugh, "A practical algorithm for
/// exact array dependence analysis", CACM 35(8), 1992.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_OMEGATEST_H
#define DHPF_PSET_OMEGATEST_H

#include "pset/Conjunct.h"

#include <vector>

namespace dhpf {
namespace omega {

/// Exactly eliminates existential variable \p ExistIdx (an index into the
/// existential region, not a raw column) from \p C. The result is a union of
/// conjuncts equal to { (params, in, out) : exists e . C }. Each result
/// conjunct may contain fresh existentials introduced by equality reduction.
std::vector<Conjunct> eliminateExist(Conjunct C, unsigned ExistIdx);

/// Normalizes the existential variables of \p C exactly, yielding a union
/// of conjuncts in which every remaining existential is a *lonely
/// divisibility witness*: it occurs in exactly one constraint, an equality
/// of the form  expr + a*e = 0  (i.e. expr ≡ 0 mod |a|), and nowhere else.
/// Existentials that admit an existential-free form are eliminated
/// (substitution or exact Fourier-Motzkin); witnesses that do not (sets
/// such as "i even" have no existential-free Presburger form) are kept.
/// Negation (subtraction) treats the witnessed equalities as modular
/// constraints.
std::vector<Conjunct> normalizeExists(const Conjunct &C);

/// Integer satisfiability of \p C, treating parameters as existentially
/// quantified ("is there any parameter assignment and point in the set?").
bool isSatisfiable(const Conjunct &C);

/// Removes inequality rows implied by the remaining rows (checked with the
/// Omega test). Quadratic in the number of rows; intended for the explicit
/// simplify() entry points the compiler calls between analysis phases.
void removeRedundantRows(Conjunct &C);

/// True if adding constraint row \p R (over C's columns) to \p C leaves it
/// unsatisfiable; used for redundancy and implication tests.
bool impliesRow(const Conjunct &C, const Row &R);

} // namespace omega
} // namespace dhpf

#endif // DHPF_PSET_OMEGATEST_H
