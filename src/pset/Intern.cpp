//===- pset/Intern.cpp - Hash-consed conjunct arena ----------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "pset/Intern.h"

#include "obs/Metrics.h"
#include "pset/Fingerprint.h"

#include <algorithm>

using namespace dhpf;
using namespace dhpf::pset;

Conjunct pset::canonicalConjunct(const Conjunct &C) {
  Conjunct Out = C;
  const unsigned NumVars = Out.numVars();
  // Per-row normalization mirrors Fingerprint.cpp's hashRow exactly, so
  // fingerprint-equal conjuncts canonicalize to the same form: equalities
  // divide through only when the gcd divides the constant and flip so the
  // first nonzero coefficient is positive; inequalities divide and floor.
  for (Row &R : Out.rows()) {
    int64_t G = 0;
    for (unsigned I = 0; I != NumVars; ++I)
      G = gcd64(G, R.Coef[I]);
    if (G > 1) {
      if (R.IsEq) {
        if (R.Coef.back() % G == 0)
          for (int64_t &X : R.Coef)
            X /= G;
      } else {
        for (unsigned I = 0; I != NumVars; ++I)
          R.Coef[I] /= G;
        R.Coef.back() = floorDiv(R.Coef.back(), G);
      }
    }
    if (R.IsEq)
      for (unsigned I = 0; I != NumVars; ++I) {
        if (R.Coef[I] == 0)
          continue;
        if (R.Coef[I] < 0)
          for (int64_t &X : R.Coef)
            X = -X;
        break;
      }
  }
  // Any total order works; the fingerprint hashes the row *multiset*, so
  // duplicates are kept (no dedup — that is normalize()'s job, not ours).
  std::sort(Out.rows().begin(), Out.rows().end(),
            [](const Row &A, const Row &B) {
              if (A.IsEq != B.IsEq)
                return A.IsEq > B.IsEq;
              return A.Coef < B.Coef;
            });
  return Out;
}

namespace {

/// Structural equality of two *canonical* conjuncts.
bool sameStructure(const Conjunct &A, const Conjunct &B) {
  if (A.numParams() != B.numParams() || A.numIn() != B.numIn() ||
      A.numOut() != B.numOut() || A.numExists() != B.numExists() ||
      A.rows().size() != B.rows().size())
    return false;
  for (size_t I = 0, E = A.rows().size(); I != E; ++I) {
    const Row &RA = A.rows()[I], &RB = B.rows()[I];
    if (RA.IsEq != RB.IsEq || RA.Coef != RB.Coef)
      return false;
  }
  return true;
}

} // namespace

InternTable &InternTable::global() {
  static InternTable T;
  return T;
}

const InternedConjunct *InternTable::intern(const Conjunct &C) {
  Conjunct Canon = canonicalConjunct(C);
  // hashRow is idempotent on normalized rows, so this equals the
  // fingerprint of the *original* conjunct — entries agree with the old
  // structural path by construction.
  uint64_t FP = fingerprint(Canon);
  Shard &S = Shards[(FP >> 4) % kNumShards];
  std::lock_guard<std::mutex> Lock(S.M);
  ++S.Lookups;
  std::vector<InternedConjunct *> &Bucket = S.Buckets[FP];
  for (InternedConjunct *E : Bucket)
    if (sameStructure(E->C, Canon)) {
      ++S.Hits;
      return E;
    }
  S.RowCount += Canon.rows().size();
  S.Arena.push_back(
      {std::move(Canon), FP, NextId.fetch_add(1, std::memory_order_relaxed)});
  InternedConjunct *E = &S.Arena.back();
  Bucket.push_back(E);
  return E;
}

size_t InternTable::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Arena.size();
  }
  return N;
}

InternStats InternTable::stats() const {
  InternStats Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Out.Lookups += S.Lookups;
    Out.Hits += S.Hits;
    Out.Entries += S.Arena.size();
    Out.Rows += S.RowCount;
  }
  return Out;
}

std::vector<InternTable::ShardStats> InternTable::perShardStats() const {
  std::vector<ShardStats> Out(kNumShards);
  for (size_t I = 0; I != kNumShards; ++I) {
    const Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.M);
    Out[I].Lookups = S.Lookups;
    Out[I].Hits = S.Hits;
    Out[I].Entries = S.Arena.size();
  }
  return Out;
}

void InternTable::publishMetrics() const {
  using obs::MetricsRegistry;
  if (!obs::compiledIn())
    return;
  MetricsRegistry &R = MetricsRegistry::global();
  InternStats T = stats();
  R.gauge("pset.intern.lookups")->set(static_cast<int64_t>(T.Lookups));
  R.gauge("pset.intern.hits")->set(static_cast<int64_t>(T.Hits));
  R.gauge("pset.intern.entries")->set(static_cast<int64_t>(T.Entries));
  R.gauge("pset.intern.rows")->set(static_cast<int64_t>(T.Rows));
  std::vector<ShardStats> PS = perShardStats();
  for (size_t I = 0; I != PS.size(); ++I) {
    std::string P = "pset.intern.shard." + std::to_string(I);
    R.gauge(P + ".lookups")->set(static_cast<int64_t>(PS[I].Lookups));
    R.gauge(P + ".hits")->set(static_cast<int64_t>(PS[I].Hits));
    R.gauge(P + ".entries")->set(static_cast<int64_t>(PS[I].Entries));
  }
}
