//===- pset/OpCache.cpp - Memoization cache for set operations -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "pset/OpCache.h"

#include "obs/Metrics.h"
#include "pset/Intern.h"
#include "support/Diag.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

using namespace dhpf;
using namespace dhpf::pset;

OpCache &OpCache::global() {
  static OpCache C;
  static bool EnvChecked = [] {
    if (const char *Env = std::getenv("DHPF_PSET_CACHE"))
      if (Env[0] == '0' && Env[1] == '\0')
        C.setEnabled(false);
    return true;
  }();
  (void)EnvChecked;
  return C;
}

OpCache::OpCache(size_t Capacity)
    : PerShardCapacity(Capacity / kNumShards ? Capacity / kNumShards : 1) {}

bool OpCache::lookupImpl(const Key &K, Value &Out) {
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It == S.Map.end()) {
    NMisses.fetch_add(1, std::memory_order_relaxed);
    ++S.Misses;
    return false;
  }
  S.LRU.splice(S.LRU.begin(), S.LRU, It->second);
  Out = It->second->second;
  NHits.fetch_add(1, std::memory_order_relaxed);
  ++S.Hits;
  return true;
}

void OpCache::insertImpl(const Key &K, Value V) {
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Another thread computed the same key first; results for equal keys
    // are identical, so keep the existing entry.
    S.LRU.splice(S.LRU.begin(), S.LRU, It->second);
    return;
  }
  S.LRU.emplace_front(K, std::move(V));
  S.Map.emplace(K, S.LRU.begin());
  while (S.LRU.size() > PerShardCapacity) {
    S.Map.erase(S.LRU.back().first);
    S.LRU.pop_back();
    NEvictions.fetch_add(1, std::memory_order_relaxed);
    ++S.Evictions;
  }
}

bool OpCache::lookup(Op O, uint64_t LhsFP, uint64_t RhsFP, Relation &Out) {
  Value V;
  if (!lookupImpl({static_cast<uint8_t>(O), LhsFP, RhsFP}, V))
    return false;
  Out = std::move(V.R);
  return true;
}

void OpCache::insert(Op O, uint64_t LhsFP, uint64_t RhsFP,
                     const Relation &R) {
  Value V;
  V.R = R;
  insertImpl({static_cast<uint8_t>(O), LhsFP, RhsFP}, std::move(V));
}

bool OpCache::lookupBool(Op O, uint64_t LhsFP, bool &Out) {
  Value V;
  if (!lookupImpl({static_cast<uint8_t>(O), LhsFP, 0}, V))
    return false;
  Out = V.B;
  return true;
}

void OpCache::insertBool(Op O, uint64_t LhsFP, bool B) {
  Value V;
  V.B = B;
  insertImpl({static_cast<uint8_t>(O), LhsFP, 0}, std::move(V));
}

void OpCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.LRU.clear();
    S.Map.clear();
  }
}

size_t OpCache::entryCount() {
  size_t N = 0;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.LRU.size();
  }
  return N;
}

void OpCache::serialize(std::ostream &OS) {
  // Snapshot under the shard locks, emit outside them. Each shard's LRU
  // list is walked back-to-front (least recent first) so that replaying
  // the entries through insertImpl — which pushes to the front — rebuilds
  // the same recency order.
  struct Entry {
    Key K;
    bool IsBool;
    bool B;
    std::string Rel;
  };
  std::vector<Entry> Entries;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (auto It = S.LRU.rbegin(); It != S.LRU.rend(); ++It) {
      Entry E;
      E.K = It->first;
      E.IsBool = It->first.O == static_cast<uint8_t>(Op::IsEmpty);
      if (E.IsBool)
        E.B = It->second.B;
      else
        E.Rel = It->second.R.toString();
      Entries.push_back(std::move(E));
    }
  }
  OS << "dhpf-opcache v1 " << Entries.size() << "\n";
  for (const Entry &E : Entries) {
    if (E.IsBool) {
      OS << "bool " << unsigned(E.K.O) << " " << std::hex << E.K.A
         << std::dec << " " << (E.B ? 1 : 0) << "\n";
    } else {
      OS << "rel " << unsigned(E.K.O) << " " << std::hex << E.K.A << " "
         << E.K.B << std::dec << " " << E.Rel.size() << "\n"
         << E.Rel << "\n";
    }
  }
}

bool OpCache::deserialize(std::istream &IS, std::string *Err) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = "opcache image: " + Why;
    return false;
  };
  std::string Tag, Ver;
  size_t N = 0;
  if (!(IS >> Tag >> Ver >> N) || Tag != "dhpf-opcache")
    return Fail("missing 'dhpf-opcache' header");
  if (Ver != "v1")
    return Fail("unsupported version '" + Ver + "'");
  IS.ignore(1); // the newline after the header
  // Parse everything before touching the cache: a truncated or corrupted
  // image loads nothing rather than a silent prefix.
  std::vector<std::pair<Key, Value>> Entries;
  Entries.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    std::string Kind;
    unsigned O = 0;
    if (!(IS >> Kind >> O) || O > static_cast<unsigned>(Op::IsEmpty))
      return Fail("truncated at entry " + std::to_string(I));
    Key K{static_cast<uint8_t>(O), 0, 0};
    Value V;
    if (Kind == "bool") {
      int B = 0;
      if (!(IS >> std::hex >> K.A >> std::dec >> B))
        return Fail("malformed bool entry " + std::to_string(I));
      V.B = B != 0;
    } else if (Kind == "rel") {
      size_t Len = 0;
      if (!(IS >> std::hex >> K.A >> K.B >> std::dec >> Len))
        return Fail("malformed rel entry " + std::to_string(I));
      IS.ignore(1);
      std::string Text(Len, '\0');
      if (!IS.read(Text.data(), static_cast<std::streamsize>(Len)))
        return Fail("truncated relation text at entry " + std::to_string(I));
      DiagnosticEngine Diags;
      Expected<Relation> R =
          parseRelation(Text, Diags, "<opcache entry " + std::to_string(I) + ">");
      if (!R)
        return Fail("unparsable relation at entry " + std::to_string(I) +
                    ": " + Diags.str());
      V.R = std::move(R).take();
    } else {
      return Fail("unknown entry kind '" + Kind + "'");
    }
    Entries.emplace_back(K, std::move(V));
  }
  for (auto &E : Entries)
    insertImpl(E.first, std::move(E.second));
  return true;
}

std::vector<OpCache::ShardStats> OpCache::perShardStats() {
  std::vector<ShardStats> Out(kNumShards);
  for (size_t I = 0; I != kNumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.M);
    Out[I].Hits = S.Hits;
    Out[I].Misses = S.Misses;
    Out[I].Evictions = S.Evictions;
    Out[I].Entries = S.LRU.size();
  }
  return Out;
}

void OpCache::publishMetrics() {
  using obs::MetricsRegistry;
  if (!obs::compiledIn())
    return;
  MetricsRegistry &R = MetricsRegistry::global();
  CacheStats T = stats();
  R.gauge("pset.cache.hits")->set(static_cast<int64_t>(T.Hits));
  R.gauge("pset.cache.misses")->set(static_cast<int64_t>(T.Misses));
  R.gauge("pset.cache.evictions")->set(static_cast<int64_t>(T.Evictions));
  R.gauge("pset.cache.fast_empty_bbox")
      ->set(static_cast<int64_t>(T.FastEmptyBBox));
  R.gauge("pset.cache.fast_disjoint_bbox")
      ->set(static_cast<int64_t>(T.FastDisjointBBox));
  R.gauge("pset.cache.fast_subset_fp")
      ->set(static_cast<int64_t>(T.FastSubsetFP));
  R.gauge("pset.cache.dup_rows_removed")
      ->set(static_cast<int64_t>(T.DupRowsRemoved));
  R.gauge("pset.cache.fast_implied_atom")
      ->set(static_cast<int64_t>(T.FastImpliedAtom));
  // The intern table publishes its own pset.intern.* family (global and
  // per-shard) next to the cache's.
  InternTable::global().publishMetrics();
  std::vector<ShardStats> PS = perShardStats();
  for (size_t I = 0; I != PS.size(); ++I) {
    std::string P = "pset.cache.shard." + std::to_string(I);
    R.gauge(P + ".hits")->set(static_cast<int64_t>(PS[I].Hits));
    R.gauge(P + ".misses")->set(static_cast<int64_t>(PS[I].Misses));
    R.gauge(P + ".evictions")->set(static_cast<int64_t>(PS[I].Evictions));
    R.gauge(P + ".entries")->set(static_cast<int64_t>(PS[I].Entries));
  }
}

CacheStats OpCache::stats() const {
  CacheStats S;
  S.Hits = NHits.load(std::memory_order_relaxed);
  S.Misses = NMisses.load(std::memory_order_relaxed);
  S.Evictions = NEvictions.load(std::memory_order_relaxed);
  S.FastEmptyBBox = NFastEmpty.load(std::memory_order_relaxed);
  S.FastDisjointBBox = NFastDisjoint.load(std::memory_order_relaxed);
  S.FastSubsetFP = NFastSubset.load(std::memory_order_relaxed);
  S.DupRowsRemoved = NDupRows.load(std::memory_order_relaxed);
  S.FastImpliedAtom = NImpliedAtom.load(std::memory_order_relaxed);
  InternStats IS = InternTable::global().stats();
  S.InternLookups = IS.Lookups;
  S.InternHits = IS.Hits;
  S.InternEntries = IS.Entries;
  S.InternRows = IS.Rows;
  return S;
}
