//===- pset/Relation.h - Presburger sets and mappings --------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Relation is a union of Conjuncts over a Space: the (potentially
/// non-convex) integer tuple sets and mappings of the paper's Section 2
/// framework. Sets are relations with zero input dimensions. The operation
/// set mirrors what the paper lists as required of the underlying integer
/// set package: "intersection, union, difference, domain, range,
/// composition, and projection", plus the satisfiability and hull queries
/// used by the in-place communication analysis (Section 3.3).
///
/// All operations are exact over the integers (existential elimination uses
/// the Omega test's dark shadow + splintering).
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_RELATION_H
#define DHPF_PSET_RELATION_H

#include "pset/Conjunct.h"
#include "pset/Space.h"
#include "support/Diag.h"

#include <atomic>
#include <map>
#include <string>
#include <vector>

namespace dhpf {

/// A union of conjuncts over a space: an integer set or mapping.
class Relation {
public:
  Relation() = default;
  explicit Relation(Space S) : Sp(std::move(S)) {}

  // The memoized fingerprint is an atomic, so copies and moves are spelled
  // out; both carry the memo along (it stays valid for an identical
  // conjunct list).
  Relation(const Relation &O)
      : Sp(O.Sp), Conjs(O.Conjs),
        FPCache(O.FPCache.load(std::memory_order_relaxed)) {}
  Relation(Relation &&O) noexcept
      : Sp(std::move(O.Sp)), Conjs(std::move(O.Conjs)),
        FPCache(O.FPCache.load(std::memory_order_relaxed)) {
    O.FPCache.store(0, std::memory_order_relaxed);
  }
  Relation &operator=(const Relation &O) {
    Sp = O.Sp;
    Conjs = O.Conjs;
    FPCache.store(O.FPCache.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }
  Relation &operator=(Relation &&O) noexcept {
    Sp = std::move(O.Sp);
    Conjs = std::move(O.Conjs);
    FPCache.store(O.FPCache.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    O.FPCache.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// The empty relation over \p S (no conjuncts).
  static Relation empty(Space S) { return Relation(std::move(S)); }

  /// The universe relation over \p S (one unconstrained conjunct).
  static Relation universe(Space S);

  const Space &space() const { return Sp; }
  unsigned numParams() const { return Sp.numParams(); }
  unsigned numIn() const { return Sp.numIn(); }
  unsigned numOut() const { return Sp.numOut(); }
  bool isSet() const { return Sp.isSet(); }

  const std::vector<Conjunct> &conjuncts() const { return Conjs; }
  std::vector<Conjunct> &conjuncts() {
    invalidateFP(); // the caller may mutate through the reference
    return Conjs;
  }

  /// Appends an unconstrained conjunct and returns a reference for adding
  /// constraints.
  Conjunct &addConjunct();
  /// Appends a conjunct (shape must match the space).
  void addConjunct(Conjunct C);

  //===--------------------------------------------------------------------===
  // Core operations (paper Appendix A)
  //===--------------------------------------------------------------------===

  /// Set/relation intersection (dimensions must match).
  Relation intersect(const Relation &O) const;
  /// Set/relation union (dimensions must match).
  Relation unionWith(const Relation &O) const;
  /// Exact difference: this minus \p O.
  Relation subtract(const Relation &O) const;
  /// Composition per the paper's appendix: (this ; Next), i.e. apply this
  /// first, then \p Next. Requires numOut() == Next.numIn().
  Relation composeWith(const Relation &Next) const;
  /// Image of set \p S (over this relation's input space): paper's R1(S1).
  Relation apply(const Relation &S) const;
  /// Swaps input and output tuples.
  Relation inverse() const;
  /// The set of input tuples related to some output tuple.
  Relation domain() const;
  /// The set of output tuples related to some input tuple.
  Relation range() const;
  /// Restricts the input tuple to set \p S (paper's "restrict domain").
  Relation restrictDomain(const Relation &S) const;
  /// Restricts the output tuple to set \p S (paper's \\cap_range).
  Relation restrictRange(const Relation &S) const;
  /// Converts output dimensions [First, First+Count) to existentials
  /// (projection); remaining dims close up.
  Relation projectOutDims(unsigned First, unsigned Count) const;
  /// Projects a set onto a single dimension: the paper's S<i> notation from
  /// Section 3.3 (all other dimensions become existential).
  Relation projectOntoDim(unsigned Dim) const;
  /// Flattens a mapping into a set over (input dims ++ output dims); used
  /// to generate loops that enumerate (partner, element) pairs of a
  /// communication map.
  Relation asSet() const;

  //===--------------------------------------------------------------------===
  // Queries
  //===--------------------------------------------------------------------===

  /// Structural fingerprint of this relation, numerically identical to
  /// pset::fingerprint(*this) but memoized on the object: the first call
  /// interns every conjunct into the global hash-consing arena
  /// (pset/Intern.h) and folds the interned entries' cached hashes;
  /// subsequent calls are a single atomic load. Copies inherit the memo;
  /// every mutation path invalidates it. Only valid while no outstanding
  /// mutable conjuncts()/addConjunct() reference is being used to mutate.
  uint64_t fingerprint() const;

  bool isEmpty() const;
  /// Subset test; short-circuits to true when the operands are
  /// structurally identical (equal fingerprints).
  bool isSubsetOf(const Relation &O) const;
  /// Set equality; short-circuits via fingerprint equality and aligns the
  /// parameter lists once for both containment directions.
  bool isEqualTo(const Relation &O) const;
  /// Membership oracle: is (In -> Out) in the relation under the given
  /// parameter values? For sets pass the tuple as \p Out.
  bool contains(const std::vector<int64_t> &Out,
                const std::vector<int64_t> &ParamVals = {},
                const std::vector<int64_t> &In = {}) const;

  /// The "simple hull": one conjunct made of every constraint (from any
  /// conjunct, after existential elimination) that is valid for the whole
  /// union. Contains the convex hull, so isEmpty(simpleHull() - S) soundly
  /// proves S convex (Section 3.3's IsConvex test).
  Relation simpleHull() const;

  /// True if the set provably equals its simple hull (IsConvex, §3.3).
  bool isConvexProven() const;

  /// True if the set provably contains at most one point per parameter
  /// binding in each dimension-projected sense used by §3.3 (IsSingleton):
  /// implemented as: for the (rank-1) set, x and x' both in S imply x = x'.
  bool isSingletonProven() const;

  //===--------------------------------------------------------------------===
  // Structure and parameters
  //===--------------------------------------------------------------------===

  /// Re-targets the relation onto a parameter list that must contain all
  /// current parameters (by name); new parameters are unconstrained.
  Relation alignParams(const std::vector<std::string> &NewParams) const;

  /// Substitutes concrete values for the named parameters, dropping them.
  Relation bindParams(const std::map<std::string, int64_t> &Values) const;

  /// Turns the input dimensions into new parameters with the given names
  /// (appended to the parameter list); the result is a set over the old
  /// output dimensions. This realizes the paper's "fixed processor m"
  /// device: e.g. Layout({m}) as a data set parametric in m.
  Relation bindDomainToParams(const std::vector<std::string> &Names) const;

  /// Adds the constraint (out[Dim] == V) to every conjunct.
  Relation fixOutDim(unsigned Dim, int64_t V) const;

  /// Equates out[Dim] with parameter \p Name (added if absent).
  Relation equateOutDimToParam(unsigned Dim, const std::string &Name) const;

  /// Normalizes conjuncts, removes redundant constraints and unsatisfiable
  /// or duplicate conjuncts.
  Relation simplify() const;

  /// simplify() plus removal of conjuncts subsumed by other conjuncts.
  Relation coalesce() const;

  /// Normalizes existential variables exactly: eliminates every
  /// existential that admits an existential-free form; the rest remain as
  /// lonely divisibility witnesses (sets such as "i even" have no
  /// witness-free Presburger form). May multiply conjuncts.
  Relation normalizeExists() const;

  /// Renders in the parser's syntax, e.g.
  ///   "[N] -> { [i,j] -> [p] : 1 <= i && i <= N }".
  std::string toString() const;

private:
  Space Sp;
  std::vector<Conjunct> Conjs;

  /// Memoized fingerprint(); 0 means "not computed" (a genuinely zero hash
  /// is remapped to a fixed nonzero constant, consistently for all equal
  /// relations). Atomic so concurrent readers of a shared relation race
  /// benignly (both store the same value).
  mutable std::atomic<uint64_t> FPCache{0};
  void invalidateFP() const { FPCache.store(0, std::memory_order_relaxed); }

  /// Aligns the parameter lists of A and B by name (union of both lists).
  static void alignPair(Relation &A, Relation &B);

  // Uncached operation bodies. The public entry points consult the global
  // pset::OpCache (pset/OpCache.h) and fall through to these on a miss;
  // with the cache disabled they are called directly.
  Relation intersectImpl(const Relation &O) const;
  Relation subtractImpl(const Relation &O) const;
  Relation composeImpl(const Relation &Next) const;
  Relation simplifyImpl() const;
  Relation coalesceImpl() const;
  bool isEmptyImpl() const;
};

/// Parses the textual relation syntax (see pset/Parser.cpp for the
/// grammar), reporting malformed input into \p Diags with line:col
/// locations (named \p FileName). Works identically in Debug and Release
/// builds.
Expected<Relation> parseRelation(const std::string &Text,
                                 DiagnosticEngine &Diags,
                                 const std::string &FileName = "<set>");

/// Convenience wrapper for trusted input (tests, examples, internal
/// construction of layouts): prints diagnostics to stderr and aborts on
/// malformed input — unconditionally, not via assert().
Relation parseRelation(const std::string &Text);

} // namespace dhpf

#endif // DHPF_PSET_RELATION_H
