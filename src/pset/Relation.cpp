//===- pset/Relation.cpp - Presburger sets and mappings ------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "pset/Relation.h"

#include "pset/Fingerprint.h"
#include "pset/Intern.h"
#include "pset/OmegaTest.h"
#include "pset/OpCache.h"

#include <algorithm>
#include <sstream>

using namespace dhpf;

//===----------------------------------------------------------------------===//
// Operation-cache plumbing
//===----------------------------------------------------------------------===//

namespace {

template <typename Fn>
Relation cachedBinaryOp(pset::Op O, const Relation &A, const Relation &B,
                        Fn Compute) {
  pset::OpCache &C = pset::OpCache::global();
  if (!C.enabled())
    return Compute();
  // Memoized, intern-table-backed keys: O(1) after each operand's first use.
  uint64_t FA = A.fingerprint(), FB = B.fingerprint();
  Relation R;
  if (C.lookup(O, FA, FB, R))
    return R;
  R = Compute();
  // Validate the result's memo before inserting, so every future cache hit
  // hands back a relation that already knows its own fingerprint.
  R.fingerprint();
  C.insert(O, FA, FB, R);
  return R;
}

template <typename Fn>
Relation cachedUnaryOp(pset::Op O, const Relation &A, Fn Compute) {
  pset::OpCache &C = pset::OpCache::global();
  if (!C.enabled())
    return Compute();
  uint64_t FA = A.fingerprint();
  Relation R;
  if (C.lookup(O, FA, 0, R))
    return R;
  R = Compute();
  R.fingerprint();
  C.insert(O, FA, 0, R);
  return R;
}

/// True when the performance layer's cheap-reject fast paths are active
/// (tied to the cache's global switch so DHPF_PSET_CACHE=0 restores the
/// seed engine exactly).
bool fastPathsOn() { return pset::OpCache::global().enabled(); }

/// Drops rows that are exact syntactic duplicates (same kind, same
/// coefficients); returns the number removed. Sound for any conjunct.
unsigned dedupRowsSyntactic(Conjunct &C) {
  std::vector<Row> &Rows = C.rows();
  unsigned Removed = 0;
  for (size_t I = 0; I < Rows.size(); ++I)
    for (size_t J = Rows.size(); J-- > I + 1;)
      if (Rows[J].IsEq == Rows[I].IsEq && Rows[J].Coef == Rows[I].Coef) {
        Rows.erase(Rows.begin() + J);
        ++Removed;
      }
  return Removed;
}

} // namespace

Relation Relation::universe(Space S) {
  Relation R(std::move(S));
  R.addConjunct();
  return R;
}

Conjunct &Relation::addConjunct() {
  invalidateFP();
  Conjs.emplace_back(Sp.numParams(), Sp.numIn(), Sp.numOut());
  return Conjs.back();
}

void Relation::addConjunct(Conjunct C) {
  assert(C.numParams() == Sp.numParams() && C.numIn() == Sp.numIn() &&
         C.numOut() == Sp.numOut() && "conjunct shape mismatch");
  invalidateFP();
  Conjs.push_back(std::move(C));
}

uint64_t Relation::fingerprint() const {
  uint64_t H = FPCache.load(std::memory_order_relaxed);
  if (H != 0)
    return H;
  // Same formula as pset::fingerprint(*this): the interned entry's FP is
  // the conjunct's structural fingerprint (interning canonicalizes with the
  // exact row normalization the structural hash applies).
  H = pset::fingerprintSpace(Sp);
  H = pset::fingerprintCombine(H, Conjs.size());
  pset::InternTable &T = pset::InternTable::global();
  for (const Conjunct &C : Conjs)
    H = pset::fingerprintCombine(H, T.intern(C)->FP);
  if (H == 0)
    H = 0x9e3779b97f4a7c15ULL; // 0 is reserved as the "invalid" sentinel
  FPCache.store(H, std::memory_order_relaxed);
  return H;
}

//===----------------------------------------------------------------------===//
// Parameter alignment
//===----------------------------------------------------------------------===//

Relation Relation::alignParams(const std::vector<std::string> &NewParams) const {
  Space NS = Space::map(Sp.inNames(), Sp.outNames(), NewParams);
  Relation R(NS);
  unsigned NP = NewParams.size(), NI = Sp.numIn(), NO = Sp.numOut();
  // Positions of the old parameters within the new list.
  std::vector<int> ParamPos(Sp.numParams());
  for (unsigned P = 0; P != Sp.numParams(); ++P) {
    ParamPos[P] = NS.paramIndex(Sp.paramName(P));
    assert(ParamPos[P] >= 0 && "alignParams must keep existing parameters");
  }
  for (const Conjunct &C : Conjs) {
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != Sp.numParams(); ++P)
      Map[C.paramCol(P)] = ParamPos[P];
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = NP + I;
    for (unsigned O = 0; O != NO; ++O)
      Map[C.outCol(O)] = NP + NI + O;
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NI + NO + E;
    R.Conjs.push_back(Conjunct::remap(C, NP, NI, NO, C.numExists(), Map));
  }
  return R;
}

void Relation::alignPair(Relation &A, Relation &B) {
  if (A.Sp.params() == B.Sp.params())
    return;
  std::vector<std::string> Merged = A.Sp.params();
  for (const std::string &P : B.Sp.params())
    if (std::find(Merged.begin(), Merged.end(), P) == Merged.end())
      Merged.push_back(P);
  A = A.alignParams(Merged);
  B = B.alignParams(Merged);
}

//===----------------------------------------------------------------------===//
// Core operations
//===----------------------------------------------------------------------===//

Relation Relation::intersect(const Relation &O) const {
  return cachedBinaryOp(pset::Op::Intersect, *this, O,
                        [&] { return intersectImpl(O); });
}

Relation Relation::intersectImpl(const Relation &O) const {
  // Deep-copy the operands only when parameter alignment actually has to
  // rewrite them; identical parameter lists (the common case inside the
  // comm-set chains) read straight from the originals.
  Relation StoreA, StoreB;
  const Relation *PA = this, *PB = &O;
  if (Sp.params() != O.Sp.params()) {
    StoreA = *this;
    StoreB = O;
    alignPair(StoreA, StoreB);
    PA = &StoreA;
    PB = &StoreB;
  }
  const Relation &A = *PA, &B = *PB;
  assert(A.Sp.sameDims(B.Sp) && "intersect requires matching dimensions");
  bool Fast = fastPathsOn();
  // Cheap-reject: conjunct pairs with disjoint bounding boxes conjoin to
  // an unsatisfiable conjunct; skip them without running the Omega test.
  std::vector<pset::BBox> BoxA, BoxB;
  if (Fast) {
    BoxA.reserve(A.Conjs.size());
    for (const Conjunct &CA : A.Conjs)
      BoxA.push_back(pset::bboxOf(CA));
    BoxB.reserve(B.Conjs.size());
    for (const Conjunct &CB : B.Conjs)
      BoxB.push_back(pset::bboxOf(CB));
  }
  Relation R(A.Sp);
  R.Conjs.reserve(A.Conjs.size() * B.Conjs.size());
  unsigned Dups = 0;
  for (unsigned I = 0; I != A.Conjs.size(); ++I)
    for (unsigned J = 0; J != B.Conjs.size(); ++J) {
      if (Fast && pset::bboxDisjoint(BoxA[I], BoxB[J])) {
        pset::OpCache::global().noteFastDisjoint();
        continue;
      }
      // §5 guard factoring: conjoining with an unconstrained conjunct (a
      // loop-invariant guard that imposes nothing) reproduces the other
      // operand exactly — skip the per-row renumbering walk.
      const bool SkipA =
          Fast && A.Conjs[I].isUniverse() && A.Conjs[I].numExists() == 0;
      const bool SkipB = !SkipA && Fast && B.Conjs[J].isUniverse() &&
                         B.Conjs[J].numExists() == 0;
      Conjunct C = SkipA ? B.Conjs[J] : A.Conjs[I];
      if (!SkipA && !SkipB)
        C.conjoin(B.Conjs[J]);
      if (Fast)
        Dups += dedupRowsSyntactic(C);
      R.Conjs.push_back(std::move(C));
    }
  if (Dups)
    pset::OpCache::global().noteDupRows(Dups);
  return R;
}

Relation Relation::unionWith(const Relation &O) const {
  if (Sp.params() == O.Sp.params()) {
    Relation A = *this;
    A.invalidateFP();
    A.Conjs.insert(A.Conjs.end(), O.Conjs.begin(), O.Conjs.end());
    return A;
  }
  Relation A = *this, B = O;
  alignPair(A, B);
  assert(A.Sp.sameDims(B.Sp) && "union requires matching dimensions");
  A.invalidateFP();
  for (Conjunct &C : B.Conjs)
    A.Conjs.push_back(std::move(C));
  return A;
}

namespace {

/// One atom of a conjunct being negated: either an ordinary inequality
/// (expr >= 0) over the visible columns, or a divisibility constraint
/// (expr ≡ 0 mod M). Rows are stored over width P+I+O+1.
struct NegAtom {
  Row R;
  int64_t Mod = 0; // 0: ordinary inequality; else divisibility modulus
};

/// Appends atom \p A (positively) to conjunct \p C, padding existentials;
/// divisibility atoms get a fresh witness with residue \p Residue (0 for
/// the positive form, 1..M-1 for the negated branches).
void addAtom(Conjunct &C, const NegAtom &A, int64_t Residue, bool Negated) {
  unsigned Base = C.numParams() + C.numIn() + C.numOut();
  assert(A.R.Coef.size() == Base + 1 && "unexpected atom width");
  if (A.Mod == 0) {
    Row NR;
    NR.IsEq = false;
    NR.Coef.assign(C.width(), 0);
    for (unsigned I = 0; I != Base; ++I)
      NR.Coef[I] = Negated ? -A.R.Coef[I] : A.R.Coef[I];
    NR.Coef[C.width() - 1] =
        Negated ? subOv(-A.R.constant(), 1) : A.R.constant();
    C.rows().push_back(std::move(NR));
    return;
  }
  // expr ≡ Residue (mod M): exists e . expr - Residue - M*e = 0.
  unsigned ECol = C.addExistVar();
  Row NR;
  NR.IsEq = true;
  NR.Coef.assign(C.width(), 0);
  for (unsigned I = 0; I != Base; ++I)
    NR.Coef[I] = A.R.Coef[I];
  NR.Coef[ECol] = -A.Mod;
  NR.constant() = subOv(A.R.constant(), Residue);
  C.rows().push_back(std::move(NR));
}

/// True when conjunct \p C syntactically implies the ordinary-inequality
/// atom (existential-free, width Base+1): some existential-free row of C
/// with the same visible coefficients forces the atom. Used to prune
/// subtract branches whose negated atom the Omega test would reject anyway.
bool impliedAtomSyntactically(const Conjunct &C, const Row &Atom) {
  const unsigned Base = C.numParams() + C.numIn() + C.numOut();
  assert(Atom.Coef.size() == Base + 1 && "unexpected atom width");
  for (const Row &R : C.rows()) {
    bool UsesExist = false;
    for (unsigned E = 0; E != C.numExists(); ++E)
      if (R.Coef[C.existCol(E)] != 0) {
        UsesExist = true;
        break;
      }
    if (UsesExist)
      continue;
    bool SameCoef = true, NegCoef = true;
    for (unsigned I = 0; I != Base && (SameCoef || NegCoef); ++I) {
      SameCoef &= R.Coef[I] == Atom.Coef[I];
      NegCoef &= R.Coef[I] == -Atom.Coef[I];
    }
    const int64_t K = R.Coef[C.width() - 1];
    if (R.IsEq) {
      // expr + K = 0 forces expr = -K; the atom expr + k >= 0 holds iff
      // -K >= -k, i.e. K <= k (mirrored for the negated orientation).
      if ((SameCoef && K <= Atom.constant()) ||
          (NegCoef && K >= -Atom.constant()))
        return true;
    } else if (SameCoef && K <= Atom.constant()) {
      // expr + K >= 0 with K <= k implies expr + k >= 0.
      return true;
    }
  }
  return false;
}

} // namespace

Relation Relation::subtract(const Relation &O) const {
  return cachedBinaryOp(pset::Op::Subtract, *this, O,
                        [&] { return subtractImpl(O); });
}

Relation Relation::subtractImpl(const Relation &O) const {
  Relation StoreA, StoreB;
  const Relation *PA = this, *PB = &O;
  if (Sp.params() != O.Sp.params()) {
    StoreA = *this;
    StoreB = O;
    alignPair(StoreA, StoreB);
    PA = &StoreA;
    PB = &StoreB;
  }
  const Relation &A = *PA, &B = *PB;
  assert(A.Sp.sameDims(B.Sp) && "subtract requires matching dimensions");
  bool Fast = fastPathsOn();

  // Pre-expand each conjunct of B into atom lists: ordinary inequalities
  // (equalities become two) plus divisibility constraints from the
  // normalized existential witnesses. Each list keeps the bounding box of
  // its source conjunct for the disjointness cheap-reject below.
  std::vector<std::vector<NegAtom>> NegForms;
  std::vector<pset::BBox> NegBoxes;
  for (const Conjunct &CB : B.Conjs) {
    for (Conjunct &Flat : omega::normalizeExists(CB)) {
      if (!Flat.normalize())
        continue; // unsatisfiable: subtracting nothing
      if (Fast)
        NegBoxes.push_back(pset::bboxOf(Flat));
      unsigned Base = Flat.numParams() + Flat.numIn() + Flat.numOut();
      std::vector<NegAtom> Atoms;
      for (const Row &R : Flat.rows()) {
        // Detect the divisibility witness, if any.
        int WitCol = -1;
        for (unsigned E = 0; E != Flat.numExists(); ++E)
          if (R.Coef[Flat.existCol(E)] != 0) {
            assert(WitCol < 0 && "two witnesses in one normalized row");
            WitCol = static_cast<int>(Flat.existCol(E));
          }
        if (WitCol >= 0) {
          assert(R.IsEq && "witness in an inequality after normalization");
          NegAtom A2;
          A2.Mod = R.Coef[WitCol] < 0 ? -R.Coef[WitCol] : R.Coef[WitCol];
          A2.R.IsEq = true;
          A2.R.Coef.assign(Base + 1, 0);
          for (unsigned I = 0; I != Base; ++I)
            A2.R.Coef[I] = R.Coef[I];
          A2.R.constant() = R.constant();
          Atoms.push_back(std::move(A2));
          continue;
        }
        Row Visible;
        Visible.IsEq = false;
        Visible.Coef.assign(Base + 1, 0);
        for (unsigned I = 0; I != Base; ++I)
          Visible.Coef[I] = R.Coef[I];
        Visible.constant() = R.constant();
        if (!R.IsEq) {
          Atoms.push_back({std::move(Visible), 0});
          continue;
        }
        Row NegR = Visible;
        for (int64_t &X : NegR.Coef)
          X = -X;
        Atoms.push_back({std::move(Visible), 0});
        Atoms.push_back({std::move(NegR), 0});
      }
      NegForms.push_back(std::move(Atoms));
    }
  }

  // §5 disjunct-combination ordering: process subtrahend conjuncts with the
  // fewest atoms first. Each form multiplies the working list by up to its
  // branch count, so putting the narrow forms first keeps every
  // intermediate list (and the Omega tests run on it) as small as possible;
  // atom-free forms (subtracting the universe) empty the list immediately.
  if (Fast) {
    std::vector<size_t> Order(NegForms.size());
    for (size_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
      return NegForms[X].size() < NegForms[Y].size();
    });
    std::vector<std::vector<NegAtom>> SortedForms;
    std::vector<pset::BBox> SortedBoxes;
    SortedForms.reserve(NegForms.size());
    SortedBoxes.reserve(NegBoxes.size());
    for (size_t I : Order) {
      SortedForms.push_back(std::move(NegForms[I]));
      SortedBoxes.push_back(std::move(NegBoxes[I]));
    }
    NegForms = std::move(SortedForms);
    NegBoxes = std::move(SortedBoxes);
  }

  Relation Res(A.Sp);
  for (const Conjunct &CA : A.Conjs) {
    std::vector<Conjunct> List = {CA};
    pset::BBox BoxA;
    if (Fast)
      BoxA = pset::bboxOf(CA);
    for (unsigned FormIdx = 0; FormIdx != NegForms.size(); ++FormIdx) {
      const std::vector<NegAtom> &Atoms = NegForms[FormIdx];
      // Every element of List is a subset of CA; when CA's bounding box is
      // disjoint from this subtrahend conjunct, X - CB = X for all of them.
      if (Fast && pset::bboxDisjoint(BoxA, NegBoxes[FormIdx])) {
        pset::OpCache::global().noteFastDisjoint();
        continue;
      }
      std::vector<Conjunct> Next;
      for (const Conjunct &C : List) {
        // C - conj(atoms) = union over j of (C && a_0..a_{j-1} && !a_j),
        // where !a_j for a divisibility atom branches over residues.
        for (unsigned J = 0, E = Atoms.size(); J != E; ++J) {
          // §5 implied-guard pruning: when C syntactically implies an
          // ordinary atom, C && !atom is unsatisfiable — the Omega test
          // below would reject the branch, so skip building it.
          if (Fast && Atoms[J].Mod == 0 &&
              impliedAtomSyntactically(C, Atoms[J].R)) {
            pset::OpCache::global().noteImpliedAtom();
            continue;
          }
          int64_t NumBranches = Atoms[J].Mod == 0 ? 1 : Atoms[J].Mod - 1;
          for (int64_t Br = 1; Br <= NumBranches; ++Br) {
            Conjunct CJ = C;
            for (unsigned K = 0; K != J; ++K)
              addAtom(CJ, Atoms[K], 0, /*Negated=*/false);
            if (Atoms[J].Mod == 0)
              addAtom(CJ, Atoms[J], 0, /*Negated=*/true);
            else
              addAtom(CJ, Atoms[J], Br, /*Negated=*/false);
            if (!CJ.normalize())
              continue;
            if (!omega::isSatisfiable(CJ))
              continue;
            Next.push_back(std::move(CJ));
          }
        }
      }
      List = std::move(Next);
      if (List.empty())
        break;
    }
    for (Conjunct &C : List)
      Res.Conjs.push_back(std::move(C));
  }
  return Res;
}

Relation Relation::composeWith(const Relation &Next) const {
  return cachedBinaryOp(pset::Op::Compose, *this, Next,
                        [&] { return composeImpl(Next); });
}

Relation Relation::composeImpl(const Relation &Next) const {
  Relation StoreA, StoreB;
  const Relation *PA = this, *PB = &Next;
  if (Sp.params() != Next.Sp.params()) {
    StoreA = *this;
    StoreB = Next;
    alignPair(StoreA, StoreB);
    PA = &StoreA;
    PB = &StoreB;
  }
  const Relation &A = *PA, &B = *PB;
  assert(A.numOut() == B.numIn() && "compose: intermediate dims must match");
  unsigned NP = A.numParams(), NI = A.numIn(), NM = A.numOut(),
           NO = B.numOut();
  Space RS = Space::map(A.Sp.inNames(), B.Sp.outNames(), A.Sp.params());
  Relation R(RS);
  for (const Conjunct &CA : A.Conjs)
    for (const Conjunct &CB : B.Conjs) {
      unsigned EA = CA.numExists(), EB = CB.numExists();
      unsigned NE = EA + EB + NM;     // exist layout: [EA][EB][mid dims]
      unsigned Base = NP + NI + NO;   // result's existential base column
      // Map CA's columns.
      std::vector<int> MapA(CA.numVars());
      for (unsigned P = 0; P != NP; ++P)
        MapA[CA.paramCol(P)] = P;
      for (unsigned I = 0; I != NI; ++I)
        MapA[CA.inCol(I)] = NP + I;
      for (unsigned M = 0; M != NM; ++M)
        MapA[CA.outCol(M)] = Base + EA + EB + M;
      for (unsigned E = 0; E != EA; ++E)
        MapA[CA.existCol(E)] = Base + E;
      Conjunct RA = Conjunct::remap(CA, NP, NI, NO, NE, MapA);
      // Map CB's columns into the same shape.
      std::vector<int> MapB(CB.numVars());
      for (unsigned P = 0; P != NP; ++P)
        MapB[CB.paramCol(P)] = P;
      for (unsigned M = 0; M != NM; ++M)
        MapB[CB.inCol(M)] = Base + EA + EB + M;
      for (unsigned O = 0; O != NO; ++O)
        MapB[CB.outCol(O)] = NP + NI + O;
      for (unsigned E = 0; E != EB; ++E)
        MapB[CB.existCol(E)] = Base + EA + E;
      Conjunct RB = Conjunct::remap(CB, NP, NI, NO, NE, MapB);
      for (Row &Rw : RB.rows())
        RA.rows().push_back(std::move(Rw));
      R.Conjs.push_back(std::move(RA));
    }
  return R;
}

Relation Relation::apply(const Relation &S) const {
  assert(S.isSet() && S.numOut() == numIn() &&
         "apply expects a set over the input space");
  return S.composeWith(*this);
}

Relation Relation::inverse() const {
  Space NS = Space::map(Sp.outNames(), Sp.inNames(), Sp.params());
  Relation R(NS);
  unsigned NP = numParams(), NI = numIn(), NO = numOut();
  for (const Conjunct &C : Conjs) {
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != NP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = NP + NO + I; // old in -> new out
    for (unsigned O = 0; O != NO; ++O)
      Map[C.outCol(O)] = NP + O; // old out -> new in
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NI + NO + E;
    R.Conjs.push_back(Conjunct::remap(C, NP, NO, NI, C.numExists(), Map));
  }
  return R;
}

Relation Relation::domain() const {
  Space NS = Space::set(Sp.inNames(), Sp.params());
  Relation R(NS);
  unsigned NP = numParams(), NI = numIn(), NO = numOut();
  for (const Conjunct &C : Conjs) {
    unsigned NE = C.numExists() + NO;
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != NP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = NP + I; // becomes a set (output) dim
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NI + E;
    for (unsigned O = 0; O != NO; ++O)
      Map[C.outCol(O)] = NP + NI + C.numExists() + O;
    R.Conjs.push_back(Conjunct::remap(C, NP, 0, NI, NE, Map));
  }
  return R;
}

Relation Relation::range() const {
  Space NS = Space::set(Sp.outNames(), Sp.params());
  Relation R(NS);
  unsigned NP = numParams(), NI = numIn(), NO = numOut();
  for (const Conjunct &C : Conjs) {
    unsigned NE = C.numExists() + NI;
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != NP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned O = 0; O != NO; ++O)
      Map[C.outCol(O)] = NP + O;
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NO + E;
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = NP + NO + C.numExists() + I;
    R.Conjs.push_back(Conjunct::remap(C, NP, 0, NO, NE, Map));
  }
  return R;
}

Relation Relation::restrictDomain(const Relation &S) const {
  assert(S.isSet() && S.numOut() == numIn() &&
         "restrictDomain expects a set over the input space");
  Relation StoreA, StoreB;
  const Relation *PA = this, *PB = &S;
  if (Sp.params() != S.Sp.params()) {
    StoreA = *this;
    StoreB = S;
    alignPair(StoreA, StoreB);
    PA = &StoreA;
    PB = &StoreB;
  }
  const Relation &A = *PA, &B = *PB;
  unsigned NP = A.numParams(), NI = A.numIn(), NO = A.numOut();
  Relation R(A.Sp);
  for (const Conjunct &CA : A.Conjs)
    for (const Conjunct &CB : B.Conjs) {
      // Embed CB (set over the in dims) into A's shape, then conjoin.
      std::vector<int> Map(CB.numVars());
      for (unsigned P = 0; P != NP; ++P)
        Map[CB.paramCol(P)] = P;
      for (unsigned I = 0; I != NI; ++I)
        Map[CB.outCol(I)] = NP + I; // set dim -> relation in dim
      for (unsigned E = 0; E != CB.numExists(); ++E)
        Map[CB.existCol(E)] = NP + NI + NO + E;
      Conjunct Emb = Conjunct::remap(CB, NP, NI, NO, CB.numExists(), Map);
      Conjunct C = CA;
      C.conjoin(Emb);
      R.Conjs.push_back(std::move(C));
    }
  return R;
}

Relation Relation::restrictRange(const Relation &S) const {
  assert(S.isSet() && S.numOut() == numOut() &&
         "restrictRange expects a set over the output space");
  Relation StoreA, StoreB;
  const Relation *PA = this, *PB = &S;
  if (Sp.params() != S.Sp.params()) {
    StoreA = *this;
    StoreB = S;
    alignPair(StoreA, StoreB);
    PA = &StoreA;
    PB = &StoreB;
  }
  const Relation &A = *PA, &B = *PB;
  unsigned NP = A.numParams(), NI = A.numIn(), NO = A.numOut();
  Relation R(A.Sp);
  for (const Conjunct &CA : A.Conjs)
    for (const Conjunct &CB : B.Conjs) {
      std::vector<int> Map(CB.numVars());
      for (unsigned P = 0; P != NP; ++P)
        Map[CB.paramCol(P)] = P;
      for (unsigned O = 0; O != NO; ++O)
        Map[CB.outCol(O)] = NP + NI + O;
      for (unsigned E = 0; E != CB.numExists(); ++E)
        Map[CB.existCol(E)] = NP + NI + NO + E;
      Conjunct Emb = Conjunct::remap(CB, NP, NI, NO, CB.numExists(), Map);
      Conjunct C = CA;
      C.conjoin(Emb);
      R.Conjs.push_back(std::move(C));
    }
  return R;
}

Relation Relation::projectOutDims(unsigned First, unsigned Count) const {
  assert(First + Count <= numOut() && "projected dims out of range");
  std::vector<std::string> NewOut;
  for (unsigned O = 0; O != numOut(); ++O)
    if (O < First || O >= First + Count)
      NewOut.push_back(Sp.outNames()[O]);
  Space NS = Space::map(Sp.inNames(), NewOut, Sp.params());
  Relation R(NS);
  unsigned NP = numParams(), NI = numIn(), NO = numOut() - Count;
  for (const Conjunct &C : Conjs) {
    unsigned NE = C.numExists() + Count;
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != NP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = NP + I;
    unsigned Kept = 0, Dropped = 0;
    for (unsigned O = 0; O != numOut(); ++O) {
      if (O < First || O >= First + Count)
        Map[C.outCol(O)] = NP + NI + Kept++;
      else
        Map[C.outCol(O)] = NP + NI + NO + C.numExists() + Dropped++;
    }
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NI + NO + E;
    R.Conjs.push_back(Conjunct::remap(C, NP, NI, NO, NE, Map));
  }
  return R;
}

Relation Relation::projectOntoDim(unsigned Dim) const {
  assert(isSet() && Dim < numOut() && "projectOntoDim expects a set");
  Relation R = *this;
  if (Dim + 1 < numOut())
    R = R.projectOutDims(Dim + 1, numOut() - Dim - 1);
  if (Dim > 0)
    R = R.projectOutDims(0, Dim);
  return R;
}

Relation Relation::asSet() const {
  if (isSet())
    return *this;
  std::vector<std::string> Dims = Sp.inNames();
  Dims.insert(Dims.end(), Sp.outNames().begin(), Sp.outNames().end());
  Space NS = Space::set(Dims, Sp.params());
  Relation R(NS);
  unsigned NP = numParams(), NI = numIn(), NO = numOut();
  for (const Conjunct &C : Conjs) {
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != NP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = NP + I;
    for (unsigned O = 0; O != NO; ++O)
      Map[C.outCol(O)] = NP + NI + O;
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NI + NO + E;
    R.Conjs.push_back(Conjunct::remap(C, NP, 0, NI + NO, C.numExists(), Map));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

bool Relation::isEmpty() const {
  if (Conjs.empty())
    return true;
  pset::OpCache &C = pset::OpCache::global();
  if (!C.enabled())
    return isEmptyImpl();
  uint64_t F = fingerprint();
  bool V;
  if (C.lookupBool(pset::Op::IsEmpty, F, V))
    return V;
  V = isEmptyImpl();
  C.insertBool(pset::Op::IsEmpty, F, V);
  return V;
}

bool Relation::isEmptyImpl() const {
  bool Fast = fastPathsOn();
  for (const Conjunct &C : Conjs) {
    // Cheap-reject: a conjunct whose interval bounds contradict is
    // unsatisfiable without the Omega test.
    if (Fast && pset::bboxOf(C).ProvenEmpty) {
      pset::OpCache::global().noteFastEmpty();
      continue;
    }
    if (omega::isSatisfiable(C))
      return false;
  }
  return true;
}

bool Relation::isSubsetOf(const Relation &O) const {
  pset::OpCache &C = pset::OpCache::global();
  if (C.enabled() && fingerprint() == O.fingerprint()) {
    C.noteFastSubset();
    return true;
  }
  return subtract(O).isEmpty();
}

bool Relation::isEqualTo(const Relation &O) const {
  pset::OpCache &C = pset::OpCache::global();
  if (C.enabled() && fingerprint() == O.fingerprint()) {
    C.noteFastSubset();
    return true;
  }
  if (Sp.params() == O.Sp.params())
    return subtract(O).isEmpty() && O.subtract(*this).isEmpty();
  // Align the parameter lists once; subtract() sees identical parameter
  // lists on both calls and skips its own re-alignment.
  Relation A = *this, B = O;
  alignPair(A, B);
  return A.subtract(B).isEmpty() && B.subtract(A).isEmpty();
}

bool Relation::contains(const std::vector<int64_t> &Out,
                        const std::vector<int64_t> &ParamVals,
                        const std::vector<int64_t> &In) const {
  assert(Out.size() == numOut() && ParamVals.size() == numParams() &&
         In.size() == numIn() && "point arity mismatch");
  for (const Conjunct &C : Conjs) {
    if (C.numExists() == 0) {
      // Existential-free conjuncts evaluate directly — no per-probe
      // Conjunct materialization inside the comm loop.
      bool Holds = true;
      for (const Row &R : C.rows()) {
        __int128 V = R.constant();
        for (unsigned P = 0; P != numParams(); ++P)
          V += static_cast<__int128>(R.Coef[C.paramCol(P)]) * ParamVals[P];
        for (unsigned I = 0; I != numIn(); ++I)
          V += static_cast<__int128>(R.Coef[C.inCol(I)]) * In[I];
        for (unsigned O = 0; O != numOut(); ++O)
          V += static_cast<__int128>(R.Coef[C.outCol(O)]) * Out[O];
        if (R.IsEq ? V != 0 : V < 0) {
          Holds = false;
          break;
        }
      }
      if (Holds)
        return true;
      continue;
    }
    if (omega::isSatisfiable(C.bindAllDims(ParamVals, In, Out)))
      return true;
  }
  return false;
}

Relation Relation::simpleHull() const {
  // Work on witness-normalized conjuncts so ordinary constraints carry no
  // existential columns; candidate constraints come from those rows only
  // (divisibility witnesses cannot appear in a single-conjunct hull).
  Relation Flat = normalizeExists().simplify();
  if (Flat.Conjs.empty())
    return Flat;
  if (Flat.Conjs.size() == 1)
    return Flat;
  unsigned Base = numParams() + numIn() + numOut();
  // Candidates are stored existential-free (width Base+1).
  std::vector<Row> Candidates;
  auto PushVisible = [&](const Conjunct &C, const Row &R) {
    for (unsigned E = 0; E != C.numExists(); ++E)
      if (R.Coef[C.existCol(E)] != 0)
        return; // witnessed divisibility: not a hull candidate
    Row V;
    V.IsEq = false;
    V.Coef.assign(Base + 1, 0);
    for (unsigned I = 0; I != Base; ++I)
      V.Coef[I] = R.Coef[I];
    V.constant() = R.constant();
    if (R.IsEq) {
      Row Neg = V;
      for (int64_t &X : Neg.Coef)
        X = -X;
      Candidates.push_back(std::move(Neg));
    }
    Candidates.push_back(std::move(V));
  };
  for (const Conjunct &C : Flat.Conjs)
    for (const Row &R : C.rows())
      PushVisible(C, R);
  Conjunct Hull(numParams(), numIn(), numOut());
  for (const Row &Cand : Candidates) {
    bool ValidForAll = true;
    for (const Conjunct &C : Flat.Conjs) {
      // Pad the candidate to C's width for the implication test.
      Row Padded;
      Padded.IsEq = false;
      Padded.Coef.assign(C.width(), 0);
      for (unsigned I = 0; I != Base; ++I)
        Padded.Coef[I] = Cand.Coef[I];
      Padded.Coef[C.width() - 1] = Cand.constant();
      if (!omega::impliesRow(C, Padded)) {
        ValidForAll = false;
        break;
      }
    }
    if (ValidForAll)
      Hull.rows().push_back(Cand);
  }
  Hull.normalize();
  Relation R(Sp);
  R.Conjs.push_back(std::move(Hull));
  return R;
}

bool Relation::isConvexProven() const {
  return simpleHull().subtract(*this).isEmpty();
}

bool Relation::isSingletonProven() const {
  assert(isSet() && "isSingleton expects a set");
  unsigned K = numOut(), NP = numParams();
  if (Conjs.empty())
    return true;
  // Build { [x, x'] : S(x) && S(x') } and test whether any dimension can
  // differ (one direction suffices by symmetry).
  std::vector<std::string> Dims;
  for (unsigned I = 0; I != K; ++I)
    Dims.push_back("a" + std::to_string(I));
  for (unsigned I = 0; I != K; ++I)
    Dims.push_back("b" + std::to_string(I));
  Relation Cross(Space::set(Dims, Sp.params()));
  for (const Conjunct &C1 : Conjs)
    for (const Conjunct &C2 : Conjs) {
      unsigned E1 = C1.numExists(), E2 = C2.numExists();
      std::vector<int> Map1(C1.numVars());
      for (unsigned P = 0; P != NP; ++P)
        Map1[C1.paramCol(P)] = P;
      for (unsigned O = 0; O != K; ++O)
        Map1[C1.outCol(O)] = NP + O;
      for (unsigned E = 0; E != E1; ++E)
        Map1[C1.existCol(E)] = NP + 2 * K + E;
      Conjunct R1 = Conjunct::remap(C1, NP, 0, 2 * K, E1 + E2, Map1);
      std::vector<int> Map2(C2.numVars());
      for (unsigned P = 0; P != NP; ++P)
        Map2[C2.paramCol(P)] = P;
      for (unsigned O = 0; O != K; ++O)
        Map2[C2.outCol(O)] = NP + K + O;
      for (unsigned E = 0; E != E2; ++E)
        Map2[C2.existCol(E)] = NP + 2 * K + E1 + E;
      Conjunct R2 = Conjunct::remap(C2, NP, 0, 2 * K, E1 + E2, Map2);
      for (Row &Rw : R2.rows())
        R1.rows().push_back(std::move(Rw));
      Cross.Conjs.push_back(std::move(R1));
    }
  for (unsigned D = 0; D != K; ++D) {
    for (const Conjunct &C : Cross.Conjs) {
      Conjunct Test = C;
      Row &R = Test.addZeroRow(/*IsEq=*/false); // a_D - b_D - 1 >= 0
      R.Coef[Test.outCol(D)] = 1;
      R.Coef[Test.outCol(K + D)] = -1;
      R.constant() = -1;
      if (omega::isSatisfiable(Test))
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Structure and parameters
//===----------------------------------------------------------------------===//

Relation Relation::bindParams(const std::map<std::string, int64_t> &Values) const {
  // Keep parameters not being bound.
  std::vector<std::string> Kept;
  for (const std::string &P : Sp.params())
    if (!Values.count(P))
      Kept.push_back(P);
  Space NS = Space::map(Sp.inNames(), Sp.outNames(), Kept);
  Relation R(NS);
  unsigned NP = Kept.size(), NI = numIn(), NO = numOut();
  for (const Conjunct &C : Conjs) {
    Conjunct NC(NP, NI, NO, C.numExists());
    for (const Row &Rw : C.rows()) {
      Row NR;
      NR.IsEq = Rw.IsEq;
      NR.Coef.assign(NC.width(), 0);
      __int128 K = Rw.constant();
      unsigned KeptIdx = 0;
      for (unsigned P = 0; P != numParams(); ++P) {
        auto It = Values.find(Sp.paramName(P));
        if (It != Values.end())
          K += static_cast<__int128>(Rw.Coef[C.paramCol(P)]) * It->second;
        else
          NR.Coef[KeptIdx++] = Rw.Coef[C.paramCol(P)];
      }
      assert(K >= INT64_MIN && K <= INT64_MAX && "overflow binding params");
      for (unsigned I = 0; I != NI; ++I)
        NR.Coef[NP + I] = Rw.Coef[C.inCol(I)];
      for (unsigned O = 0; O != NO; ++O)
        NR.Coef[NP + NI + O] = Rw.Coef[C.outCol(O)];
      for (unsigned E = 0; E != C.numExists(); ++E)
        NR.Coef[NP + NI + NO + E] = Rw.Coef[C.existCol(E)];
      NR.constant() = static_cast<int64_t>(K);
      NC.rows().push_back(std::move(NR));
    }
    R.Conjs.push_back(std::move(NC));
  }
  return R;
}

Relation Relation::bindDomainToParams(const std::vector<std::string> &Names) const {
  assert(Names.size() == numIn() && "one parameter per input dimension");
  std::vector<std::string> NewParams = Sp.params();
  for (const std::string &N : Names) {
    assert(Sp.paramIndex(N) < 0 && "parameter already exists");
    NewParams.push_back(N);
  }
  Space NS = Space::set(Sp.outNames(), NewParams);
  Relation R(NS);
  unsigned OldNP = numParams(), NI = numIn(), NO = numOut();
  unsigned NP = NewParams.size();
  for (const Conjunct &C : Conjs) {
    std::vector<int> Map(C.numVars());
    for (unsigned P = 0; P != OldNP; ++P)
      Map[C.paramCol(P)] = P;
    for (unsigned I = 0; I != NI; ++I)
      Map[C.inCol(I)] = OldNP + I; // in dim -> new parameter
    for (unsigned O = 0; O != NO; ++O)
      Map[C.outCol(O)] = NP + O;
    for (unsigned E = 0; E != C.numExists(); ++E)
      Map[C.existCol(E)] = NP + NO + E;
    R.Conjs.push_back(Conjunct::remap(C, NP, 0, NO, C.numExists(), Map));
  }
  return R;
}

Relation Relation::fixOutDim(unsigned Dim, int64_t V) const {
  assert(Dim < numOut());
  Relation R = *this;
  R.invalidateFP();
  for (Conjunct &C : R.Conjs) {
    Row &Rw = C.addZeroRow(/*IsEq=*/true);
    Rw.Coef[C.outCol(Dim)] = 1;
    Rw.constant() = -V;
  }
  return R;
}

Relation Relation::equateOutDimToParam(unsigned Dim,
                                       const std::string &Name) const {
  Relation R = *this;
  if (Sp.paramIndex(Name) < 0) {
    std::vector<std::string> NewParams = Sp.params();
    NewParams.push_back(Name);
    R = R.alignParams(NewParams);
  }
  unsigned P = R.Sp.paramIndex(Name);
  R.invalidateFP();
  for (Conjunct &C : R.Conjs) {
    Row &Rw = C.addZeroRow(/*IsEq=*/true);
    Rw.Coef[C.outCol(Dim)] = 1;
    Rw.Coef[C.paramCol(P)] = -1;
  }
  return R;
}

Relation Relation::simplify() const {
  return cachedUnaryOp(pset::Op::Simplify, *this,
                       [&] { return simplifyImpl(); });
}

Relation Relation::simplifyImpl() const {
  bool Fast = fastPathsOn();
  Relation R(Sp);
  for (Conjunct C : Conjs) {
    if (!C.normalize())
      continue;
    if (Fast && pset::bboxOf(C).ProvenEmpty) {
      pset::OpCache::global().noteFastEmpty();
      continue;
    }
    if (!omega::isSatisfiable(C))
      continue;
    omega::removeRedundantRows(C);
    C.normalize();
    // Drop duplicates (rows are sorted by normalize()).
    bool Dup = false;
    for (const Conjunct &Prev : R.Conjs)
      if (Prev.numExists() == C.numExists() && Prev.rows().size() == C.rows().size()) {
        bool Same = true;
        for (unsigned I = 0, E = C.rows().size(); I != E; ++I)
          if (C.rows()[I].IsEq != Prev.rows()[I].IsEq ||
              C.rows()[I].Coef != Prev.rows()[I].Coef) {
            Same = false;
            break;
          }
        if (Same) {
          Dup = true;
          break;
        }
      }
    if (!Dup)
      R.Conjs.push_back(std::move(C));
  }
  return R;
}

Relation Relation::coalesce() const {
  return cachedUnaryOp(pset::Op::Coalesce, *this,
                       [&] { return coalesceImpl(); });
}

Relation Relation::coalesceImpl() const {
  Relation R = simplify();
  // Remove conjuncts subsumed by another conjunct.
  std::vector<bool> Dead(R.Conjs.size(), false);
  for (unsigned I = 0; I != R.Conjs.size(); ++I) {
    if (Dead[I])
      continue;
    for (unsigned J = 0; J != R.Conjs.size(); ++J) {
      if (I == J || Dead[J])
        continue;
      Relation A(R.Sp), B(R.Sp);
      A.Conjs.push_back(R.Conjs[I]);
      B.Conjs.push_back(R.Conjs[J]);
      if (A.isSubsetOf(B)) {
        Dead[I] = true;
        break;
      }
    }
  }
  Relation Out(R.Sp);
  for (unsigned I = 0; I != R.Conjs.size(); ++I)
    if (!Dead[I])
      Out.Conjs.push_back(std::move(R.Conjs[I]));
  return Out;
}

Relation Relation::normalizeExists() const {
  Relation R(Sp);
  for (const Conjunct &C : Conjs)
    for (Conjunct &F : omega::normalizeExists(C))
      R.Conjs.push_back(std::move(F));
  return R;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

void appendTerm(std::ostringstream &OS, bool &First, int64_t C,
                const std::string &Name) {
  if (C == 0)
    return;
  if (First) {
    if (C == -1)
      OS << '-';
    else if (C != 1)
      OS << C << '*';
  } else {
    OS << (C > 0 ? " + " : " - ");
    int64_t A = C > 0 ? C : -C;
    if (A != 1)
      OS << A << '*';
  }
  OS << Name;
  First = false;
}

std::string rowToString(const Row &R, const std::vector<std::string> &Names) {
  // Split into LHS (positive) and RHS (negated negative) for readability.
  std::ostringstream L, Rh;
  bool FL = true, FR = true;
  for (unsigned I = 0, E = Names.size(); I != E; ++I) {
    int64_t C = R.Coef[I];
    if (C > 0)
      appendTerm(L, FL, C, Names[I]);
    else if (C < 0)
      appendTerm(Rh, FR, -C, Names[I]);
  }
  int64_t K = R.constant();
  if (K > 0) {
    if (!FL)
      L << " + ";
    L << K;
    FL = false;
  }
  if (K < 0) {
    if (!FR)
      Rh << " + ";
    Rh << -K;
    FR = false;
  }
  if (FL)
    L << 0;
  if (FR)
    Rh << 0;
  return L.str() + (R.IsEq ? " = " : " >= ") + Rh.str();
}

} // namespace

std::string Relation::toString() const {
  std::ostringstream OS;
  if (numParams()) {
    OS << '[';
    for (unsigned P = 0; P != numParams(); ++P)
      OS << (P ? "," : "") << Sp.paramName(P);
    OS << "] -> ";
  }
  OS << "{ ";
  auto PrintTuple = [&](const std::vector<std::string> &Names) {
    OS << '[';
    for (unsigned I = 0; I != Names.size(); ++I)
      OS << (I ? "," : "") << Names[I];
    OS << ']';
  };
  if (!isSet()) {
    PrintTuple(Sp.inNames());
    OS << " -> ";
  }
  PrintTuple(Sp.outNames());
  if (Conjs.empty()) {
    OS << " : false }";
    return OS.str();
  }
  bool NeedsColon = false;
  for (const Conjunct &C : Conjs)
    if (!C.rows().empty())
      NeedsColon = true;
  if (!NeedsColon) {
    OS << " }";
    return OS.str();
  }
  OS << " : ";
  for (unsigned CI = 0; CI != Conjs.size(); ++CI) {
    const Conjunct &C = Conjs[CI];
    if (CI)
      OS << " or ";
    std::vector<std::string> Names;
    for (const std::string &P : Sp.params())
      Names.push_back(P);
    for (const std::string &N : Sp.inNames())
      Names.push_back(N);
    for (const std::string &N : Sp.outNames())
      Names.push_back(N);
    for (unsigned E = 0; E != C.numExists(); ++E)
      Names.push_back("e" + std::to_string(E));
    if (C.numExists()) {
      OS << "exists(";
      for (unsigned E = 0; E != C.numExists(); ++E)
        OS << (E ? "," : "") << "e" << E;
      OS << " : ";
    }
    if (C.rows().empty())
      OS << "true";
    for (unsigned RI = 0; RI != C.rows().size(); ++RI) {
      if (RI)
        OS << " && ";
      OS << rowToString(C.rows()[RI], Names);
    }
    if (C.numExists())
      OS << ')';
  }
  OS << " }";
  return OS.str();
}
