//===- pset/Fingerprint.h - Structural hashing and interval bounds -------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cheap pre-analysis layer under the set engine's operation cache:
///
///  * fingerprint(): a canonical 64-bit structural hash of a Conjunct or
///    Relation. Rows are GCD-normalized and hashed order-insensitively, so
///    two conjuncts that differ only in row order or a common row factor
///    collide on purpose; conjunct order and every Space name (parameters
///    and tuple dimensions) are part of the hash, because operations align
///    parameters by name and propagate dimension names into results.
///    Equal fingerprints are treated as "structurally identical" by the
///    operation cache and by the isSubsetOf/isEqualTo short-circuits.
///
///  * BBox: per-column integer interval bounds extracted from the
///    single-variable constraints of a conjunct. A bounding box can prove
///    a conjunct empty (lo > hi, or a unit equality with a non-dividing
///    modulus) or two conjuncts disjoint without running Fourier-Motzkin
///    elimination — the cheap-reject fast paths of intersect/subtract/
///    isEmpty.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_FINGERPRINT_H
#define DHPF_PSET_FINGERPRINT_H

#include "pset/Conjunct.h"

#include <cstdint>
#include <vector>

namespace dhpf {

class Relation;
class Space;

namespace pset {

/// Canonical structural hash of one conjunct (row-order-insensitive,
/// GCD-normalized; includes the region shape and existential count).
uint64_t fingerprint(const Conjunct &C);

/// Canonical structural hash of a relation: the Space (all names) plus the
/// conjunct fingerprints in order.
uint64_t fingerprint(const Relation &R);

/// The Space-name prefix of the relation fingerprint. Exposed so
/// Relation::fingerprint() (the memoized, intern-table-backed path) can
/// reproduce fingerprint(Relation) exactly without a structural walk.
uint64_t fingerprintSpace(const Space &S);

/// The mixing step used to fold sizes and conjunct hashes into a relation
/// fingerprint.
uint64_t fingerprintCombine(uint64_t Seed, uint64_t V);

/// Inclusive per-column integer bounds over the visible columns
/// (parameters, input dims, output dims) of a conjunct, derived from rows
/// that constrain exactly one visible column and no existential.
struct BBox {
  std::vector<int64_t> Lo, Hi;
  std::vector<uint8_t> HasLo, HasHi;
  /// The interval analysis alone proved the conjunct unsatisfiable.
  bool ProvenEmpty = false;
};

/// Computes the bounding box of \p C over its visible columns.
BBox bboxOf(const Conjunct &C);

/// True if the boxes provably share no point (some column's intervals are
/// disjoint, or either conjunct is proven empty). Both boxes must be over
/// the same column layout (operands are parameter-aligned first).
bool bboxDisjoint(const BBox &A, const BBox &B);

} // namespace pset
} // namespace dhpf

#endif // DHPF_PSET_FINGERPRINT_H
