//===- pset/Fingerprint.cpp - Structural hashing and interval bounds -----===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "pset/Fingerprint.h"

#include "pset/Relation.h"

#include <algorithm>

using namespace dhpf;
using namespace dhpf::pset;

namespace {

/// splitmix64: a fast, well-distributed 64-bit mixer.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

inline uint64_t combine(uint64_t Seed, uint64_t V) {
  return mix64(Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

uint64_t hashString(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL; // FNV-1a
  for (char C : S)
    H = (H ^ static_cast<unsigned char>(C)) * 0x100000001b3ULL;
  return H;
}

/// Hash of one row after GCD normalization (on a scratch copy; the caller's
/// row is untouched). Mirrors Conjunct::normalize: equalities divide
/// through only when the gcd divides the constant and flip so the first
/// nonzero coefficient is positive; inequalities divide and floor the
/// constant.
uint64_t hashRow(const Row &R, unsigned NumVars) {
  int64_t G = 0;
  for (unsigned I = 0; I != NumVars; ++I)
    G = gcd64(G, R.Coef[I]);
  CoefVec C = R.Coef;
  if (G > 1) {
    if (R.IsEq) {
      if (C.back() % G == 0)
        for (int64_t &X : C)
          X /= G;
    } else {
      for (unsigned I = 0; I != NumVars; ++I)
        C[I] /= G;
      C.back() = floorDiv(C.back(), G);
    }
  }
  if (R.IsEq)
    for (unsigned I = 0; I != NumVars; ++I) {
      if (C[I] == 0)
        continue;
      if (C[I] < 0)
        for (int64_t &X : C)
          X = -X;
      break;
    }
  uint64_t H = R.IsEq ? 0x51ed270b90a6c2f3ULL : 0x2545f4914f6cdd1dULL;
  for (int64_t X : C)
    H = combine(H, static_cast<uint64_t>(X));
  return H;
}

} // namespace

uint64_t pset::fingerprint(const Conjunct &C) {
  uint64_t H = combine(combine(C.numParams(), C.numIn()),
                       combine(C.numOut(), C.numExists()));
  // Row order must not matter: hash rows individually, sort the hashes.
  std::vector<uint64_t> RowHashes;
  RowHashes.reserve(C.rows().size());
  for (const Row &R : C.rows())
    RowHashes.push_back(hashRow(R, C.numVars()));
  std::sort(RowHashes.begin(), RowHashes.end());
  for (uint64_t RH : RowHashes)
    H = combine(H, RH);
  return H;
}

uint64_t pset::fingerprintSpace(const Space &S) {
  uint64_t H = 0x6a09e667f3bcc908ULL;
  for (const std::string &P : S.params())
    H = combine(H, hashString(P));
  H = combine(H, 0x3c6ef372fe94f82bULL);
  for (const std::string &N : S.inNames())
    H = combine(H, hashString(N));
  H = combine(H, 0xa54ff53a5f1d36f1ULL);
  for (const std::string &N : S.outNames())
    H = combine(H, hashString(N));
  return H;
}

uint64_t pset::fingerprintCombine(uint64_t Seed, uint64_t V) {
  return combine(Seed, V);
}

uint64_t pset::fingerprint(const Relation &R) {
  uint64_t H = fingerprintSpace(R.space());
  H = combine(H, R.conjuncts().size());
  for (const Conjunct &C : R.conjuncts())
    H = combine(H, fingerprint(C));
  return H;
}

BBox pset::bboxOf(const Conjunct &C) {
  unsigned NumVis = C.numParams() + C.numIn() + C.numOut();
  BBox B;
  B.Lo.assign(NumVis, 0);
  B.Hi.assign(NumVis, 0);
  B.HasLo.assign(NumVis, 0);
  B.HasHi.assign(NumVis, 0);
  auto Lower = [&](unsigned Col, int64_t V) {
    if (!B.HasLo[Col] || V > B.Lo[Col]) {
      B.Lo[Col] = V;
      B.HasLo[Col] = 1;
    }
  };
  auto Upper = [&](unsigned Col, int64_t V) {
    if (!B.HasHi[Col] || V < B.Hi[Col]) {
      B.Hi[Col] = V;
      B.HasHi[Col] = 1;
    }
  };
  for (const Row &R : C.rows()) {
    // Only rows over exactly one visible column and no existential.
    bool UsesExist = false;
    for (unsigned E = 0; E != C.numExists(); ++E)
      if (R.Coef[C.existCol(E)] != 0) {
        UsesExist = true;
        break;
      }
    if (UsesExist)
      continue;
    int Col = -1;
    bool Single = true;
    for (unsigned I = 0; I != NumVis; ++I)
      if (R.Coef[I] != 0) {
        if (Col >= 0) {
          Single = false;
          break;
        }
        Col = static_cast<int>(I);
      }
    if (!Single || Col < 0)
      continue;
    int64_t A = R.Coef[Col], K = R.constant();
    if (R.IsEq) {
      // A*x + K = 0: integral solution required.
      if (K % A != 0) {
        B.ProvenEmpty = true;
        return B;
      }
      int64_t V = -K / A;
      Lower(Col, V);
      Upper(Col, V);
    } else if (A > 0) {
      // A*x >= -K  =>  x >= ceil(-K / A).
      Lower(Col, ceilDiv(-K, A));
    } else {
      // A*x >= -K with A < 0  =>  x <= floor(K / -A).
      Upper(Col, floorDiv(K, -A));
    }
  }
  for (unsigned I = 0; I != NumVis; ++I)
    if (B.HasLo[I] && B.HasHi[I] && B.Lo[I] > B.Hi[I]) {
      B.ProvenEmpty = true;
      return B;
    }
  return B;
}

bool pset::bboxDisjoint(const BBox &A, const BBox &B) {
  if (A.ProvenEmpty || B.ProvenEmpty)
    return true;
  unsigned N = std::min(A.Lo.size(), B.Lo.size());
  for (unsigned I = 0; I != N; ++I) {
    if (A.HasHi[I] && B.HasLo[I] && A.Hi[I] < B.Lo[I])
      return true;
    if (B.HasHi[I] && A.HasLo[I] && B.Hi[I] < A.Lo[I])
      return true;
  }
  return false;
}
