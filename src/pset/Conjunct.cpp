//===- pset/Conjunct.cpp - Conjunction of affine constraints -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "pset/Conjunct.h"

#include <algorithm>
#include <sstream>

using namespace dhpf;

unsigned Conjunct::addExistVar() {
  unsigned NewCol = numVars(); // insert before the constant column
  for (Row &R : Rows)
    R.Coef.insert(R.Coef.begin() + NewCol, 0);
  ++NumExists;
  return NewCol;
}

bool Conjunct::normalize() {
  std::vector<Row> Out;
  Out.reserve(Rows.size());
  for (Row &R : Rows) {
    unsigned NV = numVars();
    int64_t G = 0;
    for (unsigned I = 0; I != NV; ++I)
      G = gcd64(G, R.Coef[I]);
    if (G == 0) {
      // Constant-only row.
      if (R.IsEq ? R.constant() != 0 : R.constant() < 0)
        return false; // trivially unsatisfiable
      continue;       // trivially true; drop
    }
    if (G > 1) {
      if (R.IsEq) {
        if (R.constant() % G != 0)
          return false; // gcd does not divide the constant: no solution
        for (int64_t &C : R.Coef)
          C /= G;
      } else {
        for (unsigned I = 0; I != NV; ++I)
          R.Coef[I] /= G;
        // Tighten: sum >= -c  =>  sum >= ceil(-c/G)  =>  const' = floor(c/G).
        R.constant() = floorDiv(R.constant(), G);
      }
    }
    Out.push_back(std::move(R));
  }
  // Canonicalize equalities so the first nonzero coefficient is positive,
  // then drop exact duplicates.
  for (Row &R : Out) {
    if (!R.IsEq)
      continue;
    for (int64_t C : R.Coef) {
      if (C == 0)
        continue;
      if (C < 0)
        for (int64_t &X : R.Coef)
          X = -X;
      break;
    }
  }
  std::sort(Out.begin(), Out.end(), [](const Row &A, const Row &B) {
    if (A.IsEq != B.IsEq)
      return A.IsEq > B.IsEq;
    return A.Coef < B.Coef;
  });
  Out.erase(std::unique(Out.begin(), Out.end(),
                        [](const Row &A, const Row &B) {
                          return A.IsEq == B.IsEq && A.Coef == B.Coef;
                        }),
            Out.end());
  // Detect the direct contradiction pair e >= k and -e >= -k+1 etc. is left
  // to the Omega test; here we only catch eq rows contradicting duplicates
  // cheaply: e = c1 and e = c2 with c1 != c2 after canonicalization differ
  // in the constant only.
  for (size_t I = 1; I < Out.size(); ++I) {
    const Row &A = Out[I - 1], &B = Out[I];
    if (A.IsEq && B.IsEq &&
        std::equal(A.Coef.begin(), A.Coef.end() - 1, B.Coef.begin()) &&
        A.constant() != B.constant())
      return false;
  }
  Rows = std::move(Out);
  return true;
}

void Conjunct::substituteUsingEq(unsigned EqIdx, unsigned Col) {
  assert(EqIdx < Rows.size() && Rows[EqIdx].IsEq && "not an equality row");
  Row Eq = Rows[EqIdx];
  int64_t A = Eq.Coef[Col];
  assert((A == 1 || A == -1) && "substitution needs a unit coefficient");
  Rows.erase(Rows.begin() + EqIdx);
  // From Eq:  A*x + rest = 0  =>  x = -A*rest  (since A*A == 1).
  // For a row R with coefficient CAtCol at x:
  //   R' = R - CAtCol*A*Eq   (zeroes the x column).
  for (Row &R : Rows) {
    int64_t CAtCol = R.Coef[Col];
    if (CAtCol == 0)
      continue;
    int64_t F = mulOv(CAtCol, A);
    for (unsigned I = 0, E = width(); I != E; ++I)
      R.Coef[I] = subOv(R.Coef[I], mulOv(F, Eq.Coef[I]));
    assert(R.Coef[Col] == 0 && "substitution failed to zero the column");
  }
  removeCol(Col);
}

void Conjunct::removeCol(unsigned Col) {
  assert(Col < numVars() && "cannot remove the constant column");
  for (Row &R : Rows)
    R.Coef.erase(R.Coef.begin() + Col);
  if (Col < NumParams)
    --NumParams;
  else if (Col < NumParams + NumIn)
    --NumIn;
  else if (Col < NumParams + NumIn + NumOut)
    --NumOut;
  else
    --NumExists;
}

Conjunct Conjunct::allVarsExistential() const {
  Conjunct C(0, 0, 0, numVars());
  C.Rows = Rows;
  return C;
}

Conjunct Conjunct::remap(const Conjunct &Src, unsigned NP, unsigned NI,
                         unsigned NO, unsigned NE,
                         const std::vector<int> &ColMap) {
  assert(ColMap.size() == Src.numVars() && "column map size mismatch");
  Conjunct Dst(NP, NI, NO, NE);
  unsigned DstW = Dst.width();
  for (const Row &R : Src.Rows) {
    Row NR;
    NR.Coef.assign(DstW, 0);
    NR.IsEq = R.IsEq;
    for (unsigned C = 0, E = Src.numVars(); C != E; ++C) {
      if (R.Coef[C] == 0)
        continue;
      assert(ColMap[C] >= 0 && "row uses a dropped column");
      assert(static_cast<unsigned>(ColMap[C]) < DstW - 1);
      NR.Coef[ColMap[C]] = addOv(NR.Coef[ColMap[C]], R.Coef[C]);
    }
    NR.Coef[DstW - 1] = R.constant();
    Dst.Rows.push_back(std::move(NR));
  }
  return Dst;
}

void Conjunct::conjoin(const Conjunct &Other) {
  assert(NumParams == Other.NumParams && NumIn == Other.NumIn &&
         NumOut == Other.NumOut && "conjoin requires identical shapes");
  unsigned MyE = NumExists;
  // Grow our width to accommodate Other's existentials.
  for (unsigned I = 0; I != Other.NumExists; ++I)
    addExistVar();
  unsigned Base = NumParams + NumIn + NumOut;
  for (const Row &R : Other.Rows) {
    Row NR;
    NR.Coef.assign(width(), 0);
    NR.IsEq = R.IsEq;
    for (unsigned C = 0; C != Base; ++C)
      NR.Coef[C] = R.Coef[C];
    for (unsigned E = 0; E != Other.NumExists; ++E)
      NR.Coef[Base + MyE + E] = R.Coef[Base + E];
    NR.constant() = R.constant();
    Rows.push_back(std::move(NR));
  }
}

Conjunct Conjunct::bindAllDims(const std::vector<int64_t> &ParamVals,
                               const std::vector<int64_t> &InVals,
                               const std::vector<int64_t> &OutVals) const {
  assert(ParamVals.size() == NumParams && InVals.size() == NumIn &&
         OutVals.size() == NumOut && "binding size mismatch");
  Conjunct C(0, 0, 0, NumExists);
  unsigned Base = NumParams + NumIn + NumOut;
  for (const Row &R : Rows) {
    Row NR;
    NR.Coef.assign(NumExists + 1, 0);
    NR.IsEq = R.IsEq;
    __int128 K = R.constant();
    for (unsigned I = 0; I != NumParams; ++I)
      K += static_cast<__int128>(R.Coef[I]) * ParamVals[I];
    for (unsigned I = 0; I != NumIn; ++I)
      K += static_cast<__int128>(R.Coef[NumParams + I]) * InVals[I];
    for (unsigned I = 0; I != NumOut; ++I)
      K += static_cast<__int128>(R.Coef[NumParams + NumIn + I]) * OutVals[I];
    assert(K >= INT64_MIN && K <= INT64_MAX && "overflow binding dims");
    for (unsigned E = 0; E != NumExists; ++E)
      NR.Coef[E] = R.Coef[Base + E];
    NR.constant() = static_cast<int64_t>(K);
    C.Rows.push_back(std::move(NR));
  }
  return C;
}

std::string Conjunct::dump() const {
  std::ostringstream OS;
  OS << "conjunct(P=" << NumParams << ",I=" << NumIn << ",O=" << NumOut
     << ",E=" << NumExists << ")\n";
  for (const Row &R : Rows) {
    OS << "  ";
    for (int64_t C : R.Coef)
      OS << C << ' ';
    OS << (R.IsEq ? "= 0" : ">= 0") << '\n';
  }
  return OS.str();
}
