//===- pset/Parser.cpp - Textual syntax for sets and relations -----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses an isl-flavoured textual syntax for integer sets and relations:
///
///   relation := [ '[' params ']' '->' ] '{' tuple [ '->' tuple ]
///               [ ':' disj ] '}'
///   tuple    := '[' [ ident (',' ident)* ] ']'
///   disj     := conj ( ('or' | '||') conj )*
///   conj     := 'true' | 'false' | item ( ('and' | '&&') item )*
///   item     := 'exists' '(' ids ':' conj ')' | chain
///   chain    := expr ( ('<=' | '<' | '>=' | '>' | '=' | '==') expr )+
///   expr     := ['-'] term ( ('+' | '-') term )*
///   term     := number [ '*' ] [ factor ] | factor [ '*' number ]
///   factor   := ident | '(' expr ')'
///
/// Undeclared identifiers are registered as symbolic parameters in order of
/// first use, so "{ [i] : 1 <= i <= N }" works without a prefix. Malformed
/// input is rejected with a source-located diagnostic (line:col within the
/// text) in Debug and Release builds alike; the asserting entry point is a
/// thin wrapper that prints the diagnostics and aborts unconditionally.
///
//===----------------------------------------------------------------------===//

#include "pset/Relation.h"

#include "support/Diag.h"
#include "support/MathExtras.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace dhpf;

namespace {

/// A linear expression over named variables, used during parsing.
struct SymExpr {
  std::map<std::string, int64_t> Coef;
  int64_t K = 0;

  void addVar(const std::string &N, int64_t C) {
    Coef[N] = addOv(Coef[N], C);
    if (Coef[N] == 0)
      Coef.erase(N);
  }
  void addExpr(const SymExpr &O, int64_t Scale) {
    for (auto &[N, C] : O.Coef)
      addVar(N, mulOv(C, Scale));
    K = addOv(K, mulOv(O.K, Scale));
  }
};

/// One parsed constraint: Expr (= | >=) 0.
struct SymRow {
  SymExpr E;
  bool IsEq;
};

/// One parsed disjunct.
struct SymConj {
  std::vector<SymRow> Rows;
  std::vector<std::string> Exists; // names bound in this conjunct
  bool IsFalse = false;
};

/// Thrown on malformed input after the diagnostic is reported; caught by
/// the entry points.
struct ParseFailure {};

class Parser {
public:
  Parser(const std::string &Text, DiagnosticEngine &Diags,
         const std::string &File)
      : S(Text), Diags(Diags), File(File) {}

  Relation parse() {
    skipWs();
    if (peek() == '[') {
      DeclaredParams = parseIdentList();
      expect("->");
    }
    expect("{");
    std::vector<std::string> T1 = parseIdentList();
    std::vector<std::string> T2;
    bool IsMap = false;
    skipWs();
    if (lookahead("->")) {
      expect("->");
      T2 = parseIdentList();
      IsMap = true;
    }
    InNames = IsMap ? T1 : std::vector<std::string>{};
    OutNames = IsMap ? T2 : T1;
    skipWs();
    std::vector<SymConj> Disjuncts;
    if (peek() == ':') {
      get();
      for (;;) {
        Disjuncts.push_back(parseConj());
        skipWs();
        if ((lookahead("or") && !isalnumAt(Pos + 2)) || lookahead("||")) {
          eatWord();
          continue;
        }
        break;
      }
    } else {
      Disjuncts.push_back(SymConj{}); // universe
    }
    expect("}");
    skipWs();
    if (Pos < S.size())
      fail("trailing input after '}'");
    return build(Disjuncts);
  }

private:
  const std::string &S;
  DiagnosticEngine &Diags;
  const std::string &File;
  size_t Pos = 0;
  std::vector<std::string> DeclaredParams;
  std::vector<std::string> InNames, OutNames;
  std::vector<std::string> AutoParams; // undeclared identifiers, first use
  const SymConj *CurConj = nullptr;    // for exist-name scoping

  //===---------------------------- lexing -------------------------------===//

  /// The 1-based line:col of byte offset \p At within the text.
  SourceLoc locAt(size_t At) const {
    unsigned Line = 1, Col = 1;
    for (size_t I = 0; I != At && I < S.size(); ++I) {
      if (S[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    return SourceLoc(File, Line, Col);
  }
  [[noreturn]] void fail(const std::string &Msg) {
    Diags.error(locAt(Pos), Msg);
    throw ParseFailure();
  }

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  char peek() {
    skipWs();
    return Pos < S.size() ? S[Pos] : '\0';
  }
  char get() {
    skipWs();
    if (Pos >= S.size())
      fail("unexpected end of input");
    return S[Pos++];
  }
  bool lookahead(const std::string &Tok) {
    skipWs();
    return S.compare(Pos, Tok.size(), Tok) == 0;
  }
  void expect(const std::string &Tok) {
    skipWs();
    if (S.compare(Pos, Tok.size(), Tok) != 0)
      fail("expected '" + Tok + "'");
    Pos += Tok.size();
  }
  /// Consumes the next word or operator token ("or", "&&", ...).
  void eatWord() {
    skipWs();
    if (!std::isalpha(static_cast<unsigned char>(S[Pos]))) {
      Pos += 2; // "||" or "&&"
      return;
    }
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_' ||
            S[Pos] == '$'))
      ++Pos;
  }
  bool atIdent() {
    skipWs();
    return Pos < S.size() &&
           (std::isalpha(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_');
  }
  std::string parseIdent() {
    skipWs();
    if (!atIdent())
      fail("expected identifier");
    size_t B = Pos;
    // '$' appears in compiler-generated names (block-size parameters like
    // B$T$0); accepting it keeps every toString() output reparsable.
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_' ||
            S[Pos] == '\'' || S[Pos] == '$'))
      ++Pos;
    return S.substr(B, Pos - B);
  }
  /// True if the next token is a keyword (which terminates expressions).
  bool atKeyword() {
    if (!atIdent())
      return false;
    size_t P = Pos, B = Pos;
    while (P < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[P])) || S[P] == '_' ||
            S[P] == '$'))
      ++P;
    std::string W = S.substr(B, P - B);
    return W == "or" || W == "and" || W == "exists" || W == "true" ||
           W == "false";
  }
  bool atNumber() {
    skipWs();
    return Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos]));
  }
  int64_t parseNumber() {
    skipWs();
    if (!atNumber())
      fail("expected number");
    int64_t V = 0;
    unsigned Digits = 0;
    while (Pos < S.size() &&
           std::isdigit(static_cast<unsigned char>(S[Pos]))) {
      if (++Digits > 18)
        fail("integer literal too large");
      V = addOv(mulOv(V, 10), S[Pos++] - '0');
    }
    return V;
  }
  std::vector<std::string> parseIdentList() {
    expect("[");
    std::vector<std::string> Ids;
    if (peek() != ']') {
      Ids.push_back(parseIdent());
      while (peek() == ',') {
        get();
        Ids.push_back(parseIdent());
      }
    }
    expect("]");
    return Ids;
  }

  //===---------------------------- grammar ------------------------------===//

  SymConj parseConj() {
    SymConj C;
    for (;;) {
      skipWs();
      if (lookahead("true") && !isalnumAt(Pos + 4)) {
        eatWord();
      } else if (lookahead("false") && !isalnumAt(Pos + 5)) {
        eatWord();
        C.IsFalse = true;
      } else if (lookahead("exists") && !isalnumAt(Pos + 6)) {
        eatWord();
        expect("(");
        // exists(a,b : ...)
        C.Exists.push_back(parseIdent());
        while (peek() == ',') {
          get();
          C.Exists.push_back(parseIdent());
        }
        expect(":");
        parseChainList(C, /*UntilParen=*/true);
        expect(")");
      } else {
        parseChain(C);
      }
      skipWs();
      if (lookahead("&&") || (lookahead("and") && !isalnumAt(Pos + 3))) {
        eatWord();
        continue;
      }
      break;
    }
    return C;
  }

  bool isalnumAt(size_t P) {
    return P < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[P])) || S[P] == '_');
  }

  /// Parses "c1 && c2 && ..." into \p C, stopping at ')' if \p UntilParen.
  void parseChainList(SymConj &C, bool UntilParen) {
    for (;;) {
      parseChain(C);
      skipWs();
      if (lookahead("&&") || (lookahead("and") && !isalnumAt(Pos + 3))) {
        eatWord();
        continue;
      }
      break;
    }
    (void)UntilParen;
  }

  void parseChain(SymConj &C) {
    SymExpr L = parseExpr();
    bool AnyOp = false;
    for (;;) {
      skipWs();
      int Op; // 0: <=, 1: <, 2: >=, 3: >, 4: =
      if (lookahead("<=")) {
        Op = 0;
        Pos += 2;
      } else if (lookahead(">=")) {
        Op = 2;
        Pos += 2;
      } else if (lookahead("==")) {
        Op = 4;
        Pos += 2;
      } else if (lookahead("<")) {
        Op = 1;
        Pos += 1;
      } else if (lookahead(">")) {
        Op = 3;
        Pos += 1;
      } else if (lookahead("=")) {
        Op = 4;
        Pos += 1;
      } else {
        break;
      }
      AnyOp = true;
      SymExpr R = parseExpr();
      SymRow Row;
      Row.IsEq = (Op == 4);
      // a <= b  ->  b - a >= 0 ; a < b -> b - a - 1 >= 0 ; etc.
      switch (Op) {
      case 0:
        Row.E.addExpr(R, 1);
        Row.E.addExpr(L, -1);
        break;
      case 1:
        Row.E.addExpr(R, 1);
        Row.E.addExpr(L, -1);
        Row.E.K = subOv(Row.E.K, 1);
        break;
      case 2:
        Row.E.addExpr(L, 1);
        Row.E.addExpr(R, -1);
        break;
      case 3:
        Row.E.addExpr(L, 1);
        Row.E.addExpr(R, -1);
        Row.E.K = subOv(Row.E.K, 1);
        break;
      case 4:
        Row.E.addExpr(L, 1);
        Row.E.addExpr(R, -1);
        break;
      }
      C.Rows.push_back(std::move(Row));
      L = std::move(R);
    }
    if (!AnyOp)
      fail("constraint without a comparison operator");
  }

  SymExpr parseExpr() {
    SymExpr E;
    int64_t Sign = 1;
    skipWs();
    if (peek() == '-') {
      get();
      Sign = -1;
    }
    parseTermInto(E, Sign);
    for (;;) {
      skipWs();
      char Ch = peek();
      if (Ch != '+' && Ch != '-')
        break;
      get();
      parseTermInto(E, Ch == '+' ? 1 : -1);
    }
    return E;
  }

  void parseTermInto(SymExpr &E, int64_t Sign) {
    skipWs();
    if (atNumber()) {
      int64_t V = mulOv(parseNumber(), Sign);
      skipWs();
      if (peek() == '*') {
        get();
        SymExpr F = parseFactor();
        E.addExpr(F, V);
        return;
      }
      if ((atIdent() && !atKeyword()) || peek() == '(') { // "2i" or "2(i+j)"
        SymExpr F = parseFactor();
        E.addExpr(F, V);
        return;
      }
      E.K = addOv(E.K, V);
      return;
    }
    SymExpr F = parseFactor();
    E.addExpr(F, Sign);
  }

  SymExpr parseFactor() {
    skipWs();
    SymExpr E;
    if (peek() == '(') {
      get();
      E = parseExpr();
      expect(")");
      return E;
    }
    E.addVar(parseIdent(), 1);
    return E;
  }

  //===---------------------------- building -----------------------------===//

  /// Resolves a name to a column kind: 0 in, 1 out, 2 exist, 3 param.
  int resolveKind(const std::string &N, const SymConj &C, unsigned &Idx) {
    for (unsigned I = 0; I != InNames.size(); ++I)
      if (InNames[I] == N) {
        Idx = I;
        return 0;
      }
    for (unsigned I = 0; I != OutNames.size(); ++I)
      if (OutNames[I] == N) {
        Idx = I;
        return 1;
      }
    for (unsigned I = 0; I != C.Exists.size(); ++I)
      if (C.Exists[I] == N) {
        Idx = I;
        return 2;
      }
    for (unsigned I = 0; I != DeclaredParams.size(); ++I)
      if (DeclaredParams[I] == N) {
        Idx = I;
        return 3;
      }
    for (unsigned I = 0; I != AutoParams.size(); ++I)
      if (AutoParams[I] == N) {
        Idx = DeclaredParams.size() + I;
        return 3;
      }
    AutoParams.push_back(N);
    Idx = DeclaredParams.size() + AutoParams.size() - 1;
    return 3;
  }

  Relation build(const std::vector<SymConj> &Disjuncts) {
    // Duplicate declared parameters would trip Space's invariants.
    for (unsigned I = 0; I != DeclaredParams.size(); ++I)
      for (unsigned J = I + 1; J != DeclaredParams.size(); ++J)
        if (DeclaredParams[I] == DeclaredParams[J])
          fail("duplicate parameter '" + DeclaredParams[I] + "'");
    // Register all names first so the parameter list is complete.
    for (const SymConj &C : Disjuncts)
      for (const SymRow &R : C.Rows)
        for (auto &[N, Coef] : R.E.Coef) {
          unsigned Idx;
          (void)resolveKind(N, C, Idx);
          (void)Coef;
        }
    std::vector<std::string> Params = DeclaredParams;
    Params.insert(Params.end(), AutoParams.begin(), AutoParams.end());
    Space Sp = InNames.empty() ? Space::set(OutNames, Params)
                               : Space::map(InNames, OutNames, Params);
    Relation Rel(Sp);
    for (const SymConj &C : Disjuncts) {
      if (C.IsFalse)
        continue;
      Conjunct Conj(Params.size(), InNames.size(), OutNames.size(),
                    C.Exists.size());
      for (const SymRow &R : C.Rows) {
        Row Rw;
        Rw.IsEq = R.IsEq;
        Rw.Coef.assign(Conj.width(), 0);
        for (auto &[N, Coef] : R.E.Coef) {
          unsigned Idx;
          switch (resolveKind(N, C, Idx)) {
          case 0:
            Rw.Coef[Conj.inCol(Idx)] = Coef;
            break;
          case 1:
            Rw.Coef[Conj.outCol(Idx)] = Coef;
            break;
          case 2:
            Rw.Coef[Conj.existCol(Idx)] = Coef;
            break;
          default:
            Rw.Coef[Conj.paramCol(Idx)] = Coef;
            break;
          }
        }
        Rw.constant() = R.E.K;
        Conj.rows().push_back(std::move(Rw));
      }
      Rel.addConjunct(std::move(Conj));
    }
    return Rel;
  }
};

} // namespace

Expected<Relation> dhpf::parseRelation(const std::string &Text,
                                       DiagnosticEngine &Diags,
                                       const std::string &FileName) {
  try {
    return Parser(Text, Diags, FileName).parse();
  } catch (ParseFailure &) {
    return Expected<Relation>::failure();
  }
}

Relation dhpf::parseRelation(const std::string &Text) {
  DiagnosticEngine Diags;
  Expected<Relation> R = parseRelation(Text, Diags);
  if (!R) {
    std::fputs(Diags.str().c_str(), stderr);
    std::fputs("pset: malformed set/relation text rejected\n", stderr);
    std::abort();
  }
  return R.take();
}
