//===- pset/Conjunct.h - Conjunction of affine constraints ---------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Conjunct is a conjunction of affine equality and inequality constraints
/// over the columns [params | input dims | output dims | existentials | 1].
/// A Relation (pset/Relation.h) is a union of Conjuncts; together they
/// represent the (potentially non-convex) Presburger sets and mappings the
/// paper's equational framework manipulates.
///
/// Existential variables express both projected-away dimensions (from
/// compose/domain/range) and stride constraints such as
/// `exists a : i = 2a + 1`.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_CONJUNCT_H
#define DHPF_PSET_CONJUNCT_H

#include "support/MathExtras.h"
#include "support/SmallVec.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace dhpf {

/// One affine constraint: sum(Coef[i] * v_i) + Coef.back() (= 0 | >= 0).
/// Coefficients live inline (support/SmallVec.h) up to kInlineCoefs
/// columns, so typical rows never touch the heap.
struct Row {
  CoefVec Coef;
  bool IsEq = false;

  int64_t constant() const { return Coef.back(); }
  int64_t &constant() { return Coef.back(); }
};

/// A conjunction of affine constraints over parameter, tuple, and
/// existential variables. Column layout:
///
///   [0, P)            parameters
///   [P, P+I)          input tuple dimensions
///   [P+I, P+I+O)      output tuple dimensions
///   [P+I+O, P+I+O+E)  existential variables (conjunct-local)
///   P+I+O+E           the constant term
class Conjunct {
public:
  Conjunct(unsigned NumParams, unsigned NumIn, unsigned NumOut,
           unsigned NumExists = 0)
      : NumParams(NumParams), NumIn(NumIn), NumOut(NumOut),
        NumExists(NumExists) {}

  unsigned numParams() const { return NumParams; }
  unsigned numIn() const { return NumIn; }
  unsigned numOut() const { return NumOut; }
  unsigned numExists() const { return NumExists; }

  /// Number of variable columns (excluding the constant column).
  unsigned numVars() const { return NumParams + NumIn + NumOut + NumExists; }
  /// Total row width including the constant column.
  unsigned width() const { return numVars() + 1; }

  unsigned paramCol(unsigned I) const {
    assert(I < NumParams);
    return I;
  }
  unsigned inCol(unsigned I) const {
    assert(I < NumIn);
    return NumParams + I;
  }
  unsigned outCol(unsigned I) const {
    assert(I < NumOut);
    return NumParams + NumIn + I;
  }
  unsigned existCol(unsigned I) const {
    assert(I < NumExists);
    return NumParams + NumIn + NumOut + I;
  }
  unsigned constCol() const { return numVars(); }

  bool isParamCol(unsigned C) const { return C < NumParams; }
  bool isExistCol(unsigned C) const {
    return C >= NumParams + NumIn + NumOut && C < numVars();
  }

  const std::vector<Row> &rows() const { return Rows; }
  std::vector<Row> &rows() { return Rows; }

  /// Appends a constraint. \p Coef must have width() entries.
  void addRow(CoefVec Coef, bool IsEq) {
    assert(Coef.size() == width() && "row width mismatch");
    Rows.push_back({std::move(Coef), IsEq});
  }

  /// Appends a zero row and returns a mutable reference to it.
  Row &addZeroRow(bool IsEq) {
    Rows.push_back({CoefVec(width(), 0), IsEq});
    return Rows.back();
  }

  /// Convenience: adds constraint sum(Terms) + K (= 0 | >= 0) where Terms
  /// are (column, coefficient) pairs.
  void addConstraint(const std::vector<std::pair<unsigned, int64_t>> &Terms,
                     int64_t K, bool IsEq) {
    Row &R = addZeroRow(IsEq);
    for (auto &[Col, C] : Terms) {
      assert(Col < numVars());
      R.Coef[Col] = addOv(R.Coef[Col], C);
    }
    R.constant() = K;
  }

  /// Appends a fresh existential variable column; returns its column index.
  unsigned addExistVar();

  /// Normalizes all rows (gcd reduction, duplicate/trivial removal).
  /// Returns false if a constraint is unsatisfiable on its face (e.g. an
  /// equality whose gcd does not divide its constant, or 0 >= 1).
  bool normalize();

  /// True if this conjunct has no constraints (the universe).
  bool isUniverse() const { return Rows.empty(); }

  /// Substitutes variable \p Col away using equality row \p EqIdx, which
  /// must have coefficient +/-1 at \p Col. Removes the equality and the
  /// column. Counts are adjusted according to the column's region.
  void substituteUsingEq(unsigned EqIdx, unsigned Col);

  /// Removes column \p Col from every row (the caller must ensure no row
  /// uses it, or that dropping it is semantically intended). Adjusts counts.
  void removeCol(unsigned Col);

  /// Returns a copy of this conjunct where every variable column has been
  /// moved into the existential region (used for pure satisfiability tests
  /// where parameters are treated as existentially quantified).
  Conjunct allVarsExistential() const;

  /// Builds a conjunct with new region sizes, copying each source column
  /// \p C of \p Src to \p ColMap[C] (or dropping it if ColMap[C] < 0).
  /// The constant column is copied implicitly. Rows referencing a dropped
  /// column are asserted not to exist unless \p AllowDropUsed.
  static Conjunct remap(const Conjunct &Src, unsigned NP, unsigned NI,
                        unsigned NO, unsigned NE,
                        const std::vector<int> &ColMap);

  /// Conjoins \p Other (same P/I/O shape) into this conjunct, renumbering
  /// Other's existentials past this conjunct's.
  void conjoin(const Conjunct &Other);

  /// Evaluates all rows after fixing every param/in/out column to the given
  /// values (sizes must match); returns a conjunct over the existentials
  /// only. Used by the membership oracle.
  Conjunct bindAllDims(const std::vector<int64_t> &ParamVals,
                       const std::vector<int64_t> &InVals,
                       const std::vector<int64_t> &OutVals) const;

  /// Renders the conjunct for debugging (raw column form).
  std::string dump() const;

private:
  unsigned NumParams, NumIn, NumOut, NumExists;
  std::vector<Row> Rows;
};

} // namespace dhpf

#endif // DHPF_PSET_CONJUNCT_H
