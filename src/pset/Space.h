//===- pset/Space.h - Tuple spaces for integer sets and relations --------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Space describes the variables of an integer relation: named symbolic
/// parameters (global constants such as N or the processor count), input
/// tuple dimensions, and output tuple dimensions. Following the paper's
/// framework (Section 2), a *set* of integer k-tuples is represented as a
/// relation with zero input dimensions whose tuple variables are the output
/// dimensions; a *mapping* has both input and output dimensions.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_SPACE_H
#define DHPF_PSET_SPACE_H

#include <cassert>
#include <string>
#include <vector>

namespace dhpf {

/// Describes the parameter and tuple dimensions of a relation.
///
/// Parameters are identified by name and shared across operations;
/// operations on two relations first align their parameter lists by name.
/// Tuple dimensions carry optional names used only for printing.
class Space {
public:
  Space() = default;

  /// Creates the space of a set with tuple dimensions \p Dims and symbolic
  /// parameters \p Params. Set dimensions are stored as output dimensions.
  static Space set(std::vector<std::string> Dims,
                   std::vector<std::string> Params = {}) {
    Space S;
    S.OutNames = std::move(Dims);
    S.Params = std::move(Params);
    return S;
  }

  /// Creates the space of a mapping from \p In tuples to \p Out tuples.
  static Space map(std::vector<std::string> In, std::vector<std::string> Out,
                   std::vector<std::string> Params = {}) {
    Space S;
    S.InNames = std::move(In);
    S.OutNames = std::move(Out);
    S.Params = std::move(Params);
    return S;
  }

  unsigned numParams() const { return Params.size(); }
  unsigned numIn() const { return InNames.size(); }
  unsigned numOut() const { return OutNames.size(); }

  /// True if this is a set space (no input dimensions).
  bool isSet() const { return InNames.empty(); }

  const std::vector<std::string> &params() const { return Params; }
  const std::vector<std::string> &inNames() const { return InNames; }
  const std::vector<std::string> &outNames() const { return OutNames; }

  const std::string &paramName(unsigned I) const {
    assert(I < Params.size());
    return Params[I];
  }

  /// Returns the index of parameter \p Name, or -1 if absent.
  int paramIndex(const std::string &Name) const {
    for (unsigned I = 0, E = Params.size(); I != E; ++I)
      if (Params[I] == Name)
        return static_cast<int>(I);
    return -1;
  }

  /// Appends a parameter (must not already exist). Returns its index.
  unsigned addParam(const std::string &Name) {
    assert(paramIndex(Name) < 0 && "duplicate parameter");
    Params.push_back(Name);
    return Params.size() - 1;
  }

  /// True if dimension counts match (parameter lists may differ; they are
  /// aligned by name before operations).
  bool sameDims(const Space &O) const {
    return numIn() == O.numIn() && numOut() == O.numOut();
  }

  bool operator==(const Space &O) const {
    return Params == O.Params && InNames.size() == O.InNames.size() &&
           OutNames.size() == O.OutNames.size();
  }

private:
  std::vector<std::string> Params;
  std::vector<std::string> InNames;
  std::vector<std::string> OutNames;
};

} // namespace dhpf

#endif // DHPF_PSET_SPACE_H
