//===- pset/OmegaTest.cpp - Exact integer projection and satisfiability --===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "pset/OmegaTest.h"

#include <algorithm>
#include <limits>

using namespace dhpf;

namespace {

/// Symmetric modulus: the representative of A mod M in (-M/2, M/2].
int64_t symMod(int64_t A, int64_t M) {
  int64_t R = floorMod(A, M);
  if (2 * R > M)
    R -= M;
  return R;
}

/// Picks the cheapest variable of the existential region to eliminate:
/// prefer one with a unit equality coefficient (free substitution), then
/// one unbounded on a side (constraints just drop), then the smallest
/// Fourier-Motzkin pair count, penalizing inexact (splintering) pairs.
int pickExist(const Conjunct &C) {
  if (C.numExists() == 0)
    return -1;
  int Best = -1;
  int64_t BestCost = std::numeric_limits<int64_t>::max();
  for (unsigned E = 0, NE = C.numExists(); E != NE; ++E) {
    unsigned Col = C.existCol(E);
    unsigned NumL = 0, NumU = 0;
    bool HasUnitEq = false, HasEq = false;
    bool AllUnitL = true, AllUnitU = true;
    for (const Row &R : C.rows()) {
      int64_t A = R.Coef[Col];
      if (A == 0)
        continue;
      if (R.IsEq) {
        HasEq = true;
        if (A == 1 || A == -1)
          HasUnitEq = true;
        continue;
      }
      if (A > 0) {
        ++NumL;
        if (A != 1)
          AllUnitL = false;
      } else {
        ++NumU;
        if (A != -1)
          AllUnitU = false;
      }
    }
    int64_t Cost;
    if (HasUnitEq)
      Cost = 0;
    else if (HasEq)
      Cost = 1;
    else if (NumL == 0 || NumU == 0)
      Cost = 2;
    else {
      Cost = 3 + static_cast<int64_t>(NumL) * NumU;
      if (!AllUnitL && !AllUnitU)
        Cost += 1000; // splintering likely; defer
    }
    if (Cost < BestCost) {
      BestCost = Cost;
      Best = static_cast<int>(E);
    }
    if (BestCost == 0)
      break;
  }
  return Best;
}

bool satisfiableRec(Conjunct C, unsigned Depth);

} // namespace

std::vector<Conjunct> omega::eliminateExist(Conjunct C, unsigned ExistIdx) {
  assert(ExistIdx < C.numExists() && "not an existential variable");
  if (!C.normalize())
    return {};
  unsigned Col = C.existCol(ExistIdx);

  // Equality path: reduce the target coefficient to a unit, substitute.
  for (;;) {
    int EqIdx = -1;
    int64_t MinA = 0;
    for (unsigned I = 0, E = C.rows().size(); I != E; ++I) {
      const Row &R = C.rows()[I];
      if (!R.IsEq || R.Coef[Col] == 0)
        continue;
      int64_t A = R.Coef[Col] < 0 ? -R.Coef[Col] : R.Coef[Col];
      if (EqIdx < 0 || A < MinA) {
        EqIdx = static_cast<int>(I);
        MinA = A;
      }
    }
    if (EqIdx < 0)
      break;
    if (MinA == 1) {
      C.substituteUsingEq(EqIdx, Col);
      return {std::move(C)};
    }
    // Pugh's modular reduction: from  sum(a_i v_i) + c = 0  derive the
    // implied equality  sum(symMod(a_i, m) v_i) + symMod(c, m) = m * sigma
    // with m = a_col + 1, so the target column gets coefficient -1.
    Row Eq = C.rows()[EqIdx];
    if (Eq.Coef[Col] < 0)
      for (int64_t &X : Eq.Coef)
        X = -X;
    int64_t M = Eq.Coef[Col] + 1;
    unsigned SigmaCol = C.addExistVar(); // appended after Col; Col unchanged
    Row N;
    N.IsEq = true;
    N.Coef.assign(C.width(), 0);
    for (unsigned I = 0, E = Eq.Coef.size() - 1; I != E; ++I)
      N.Coef[I] = symMod(Eq.Coef[I], M);
    N.constant() = symMod(Eq.constant(), M);
    N.Coef[SigmaCol] = -M;
    assert(N.Coef[Col] == -1 && "modular reduction must yield a unit");
    C.rows().push_back(std::move(N));
    C.substituteUsingEq(C.rows().size() - 1, Col);
    return {std::move(C)};
  }

  // Fourier-Motzkin path over inequalities.
  std::vector<unsigned> Lower, Upper;
  std::vector<Row> Unrelated;
  for (unsigned I = 0, E = C.rows().size(); I != E; ++I) {
    const Row &R = C.rows()[I];
    int64_t A = R.Coef[Col];
    if (A == 0) {
      Unrelated.push_back(R);
      continue;
    }
    assert(!R.IsEq && "equalities were eliminated above");
    (A > 0 ? Lower : Upper).push_back(I);
  }
  if (Lower.empty() || Upper.empty()) {
    // Unbounded on one side: the projection simply drops the constraints.
    Conjunct Res(C.numParams(), C.numIn(), C.numOut(), C.numExists());
    Res.rows() = std::move(Unrelated);
    Res.removeCol(Col);
    return {std::move(Res)};
  }

  bool Exact = true;
  for (unsigned LI : Lower) {
    int64_t A = C.rows()[LI].Coef[Col];
    if (A == 1)
      continue;
    for (unsigned UI : Upper) {
      int64_t B = -C.rows()[UI].Coef[Col];
      if (B != 1) {
        Exact = false;
        break;
      }
    }
    if (!Exact)
      break;
  }

  // Combines lower row L (coeff a > 0) and upper row U (coeff -b < 0) into
  // b*L + a*U - Slack >= 0; the target column cancels.
  auto makeShadow = [&](bool Dark) {
    Conjunct Res(C.numParams(), C.numIn(), C.numOut(), C.numExists());
    Res.rows() = Unrelated;
    for (unsigned LI : Lower) {
      const Row &L = C.rows()[LI];
      int64_t A = L.Coef[Col];
      for (unsigned UI : Upper) {
        const Row &U = C.rows()[UI];
        int64_t B = -U.Coef[Col];
        Row NR;
        NR.IsEq = false;
        NR.Coef.resize(C.width());
        for (unsigned I = 0, E = C.width(); I != E; ++I)
          NR.Coef[I] = addOv(mulOv(B, L.Coef[I]), mulOv(A, U.Coef[I]));
        assert(NR.Coef[Col] == 0 && "column failed to cancel");
        if (Dark)
          NR.constant() = subOv(NR.constant(), mulOv(A - 1, B - 1));
        Res.rows().push_back(std::move(NR));
      }
    }
    Res.removeCol(Col);
    return Res;
  };

  if (Exact)
    return {makeShadow(/*Dark=*/false)};

  // Inexact: dark shadow plus splinters (Pugh 1992). A solution outside the
  // dark shadow must sit within (a*bhat - a - bhat)/bhat of some lower
  // bound a*x >= alpha, so we enumerate a*x = alpha + i for those i.
  std::vector<Conjunct> Results;
  Results.push_back(makeShadow(/*Dark=*/true));

  int64_t BHat = 0;
  for (unsigned UI : Upper)
    BHat = std::max(BHat, -C.rows()[UI].Coef[Col]);
  for (unsigned LI : Lower) {
    int64_t A = C.rows()[LI].Coef[Col];
    if (A <= 1)
      continue;
    int64_t MaxI = floorDiv(mulOv(A, BHat) - A - BHat, BHat);
    assert(MaxI < 4096 && "splinter explosion; coefficients too large");
    for (int64_t I = 0; I <= MaxI; ++I) {
      Conjunct S = C;
      Row EqR = S.rows()[LI]; // rest + a*x >= 0  ==>  rest + a*x - i = 0
      EqR.IsEq = true;
      EqR.constant() = subOv(EqR.constant(), I);
      S.rows().push_back(std::move(EqR));
      std::vector<Conjunct> Sub = eliminateExist(std::move(S), ExistIdx);
      for (Conjunct &SC : Sub)
        Results.push_back(std::move(SC));
    }
  }
  return Results;
}

namespace {

/// Occurrence summary for one existential column.
struct ExistInfo {
  unsigned EqCount = 0;   // equalities mentioning it
  unsigned IneqCount = 0; // inequalities mentioning it
  int OnlyEqRow = -1;     // the row index when EqCount == 1
  int64_t MinEqCoef = 0;  // min |coefficient| over equalities
};

ExistInfo summarizeExist(const Conjunct &C, unsigned Col) {
  ExistInfo Info;
  for (unsigned I = 0, E = C.rows().size(); I != E; ++I) {
    const Row &R = C.rows()[I];
    int64_t A = R.Coef[Col];
    if (A == 0)
      continue;
    if (A < 0)
      A = -A;
    if (R.IsEq) {
      ++Info.EqCount;
      Info.OnlyEqRow = static_cast<int>(I);
      if (Info.MinEqCoef == 0 || A < Info.MinEqCoef)
        Info.MinEqCoef = A;
    } else {
      ++Info.IneqCount;
    }
  }
  return Info;
}

/// True if existential \p Col is a lonely divisibility witness: it occurs in
/// exactly one constraint, an equality, and no *other* existential of that
/// equality occurs elsewhere ambiguously (other lonely witnesses in the same
/// equality are merged by normalizeExists before this is final).
bool isLonelyWitness(const Conjunct &C, unsigned Col, const ExistInfo &Info) {
  (void)C;
  (void)Col;
  return Info.EqCount == 1 && Info.IneqCount == 0;
}

} // namespace

std::vector<Conjunct> omega::normalizeExists(const Conjunct &C) {
  std::vector<Conjunct> Work = {C}, Done;
  unsigned Fuel = 0;
  while (!Work.empty()) {
    Conjunct W = std::move(Work.back());
    Work.pop_back();
    assert(++Fuel < 100000 && "existential normalization diverged");
    if (!W.normalize())
      continue;

    // Merge lonely witnesses sharing one equality:  a*e1 + b*e2  takes
    // exactly the values of gcd(a,b)*Z, so keep a single witness.
    bool Restart = false;
    for (unsigned RI = 0, RE = W.rows().size(); RI != RE && !Restart; ++RI) {
      Row &R = W.rows()[RI];
      if (!R.IsEq)
        continue;
      std::vector<unsigned> Witnesses;
      for (unsigned EI = 0; EI != W.numExists(); ++EI) {
        unsigned Col = W.existCol(EI);
        if (R.Coef[Col] == 0)
          continue;
        ExistInfo Info = summarizeExist(W, Col);
        if (Info.EqCount == 1 && Info.IneqCount == 0)
          Witnesses.push_back(Col);
      }
      if (Witnesses.size() < 2)
        continue;
      int64_t G = 0;
      for (unsigned Col : Witnesses)
        G = gcd64(G, R.Coef[Col]);
      for (unsigned I = 1; I != Witnesses.size(); ++I)
        R.Coef[Witnesses[I]] = 0;
      R.Coef[Witnesses[0]] = G;
      Restart = true; // unused columns are dropped below
    }
    if (Restart) {
      Work.push_back(std::move(W));
      continue;
    }

    // Find an action for some non-final existential, in a strict priority
    // order chosen for termination:
    //   0 drop an unused column;
    //   1 substitute a variable with a unit equality coefficient;
    //   (lonely witnesses are final: divisibility normal form)
    //   2 make lonely by scaling, only when its equality contains no other
    //     existential (otherwise occurrences ping-pong between the two);
    //   3 mod-trick elimination (creates a unit coefficient next round);
    //   4 exact Fourier-Motzkin for inequality-only variables.
    int Action = -1;
    unsigned Target = 0; // exist index (actions 1-4) or column (action 0)
    int EqRow = -1;
    auto ConsiderAction = [&](int NewAction, unsigned NewTarget, int NewEq) {
      if (Action < 0 || NewAction < Action) {
        Action = NewAction;
        Target = NewTarget;
        EqRow = NewEq;
      }
    };
    for (unsigned EI = 0; EI != W.numExists() && Action != 0; ++EI) {
      unsigned Col = W.existCol(EI);
      ExistInfo Info = summarizeExist(W, Col);
      if (Info.EqCount == 0 && Info.IneqCount == 0) {
        ConsiderAction(0, Col, -1);
        continue;
      }
      if (Info.EqCount > 0 && Info.MinEqCoef == 1) {
        int Eq = -1;
        for (unsigned RI = 0, RE = W.rows().size(); RI != RE; ++RI) {
          const Row &R = W.rows()[RI];
          if (R.IsEq && (R.Coef[Col] == 1 || R.Coef[Col] == -1)) {
            Eq = static_cast<int>(RI);
            break;
          }
        }
        ConsiderAction(1, EI, Eq);
        continue;
      }
      if (isLonelyWitness(W, Col, Info))
        continue; // final: divisibility normal form (expr ≡ 0 mod a)
      if (Info.EqCount > 0) {
        // Find the minimum-coefficient equality for Col; if it has no other
        // existential, cancel Col from every other row by exact positive
        // scaling (action 2); otherwise fall back to mod-trick elimination.
        int BestEq = -1;
        int64_t Best = 0;
        for (unsigned RI = 0, RE = W.rows().size(); RI != RE; ++RI) {
          const Row &R = W.rows()[RI];
          if (!R.IsEq || R.Coef[Col] == 0)
            continue;
          int64_t A = R.Coef[Col] < 0 ? -R.Coef[Col] : R.Coef[Col];
          if (BestEq < 0 || A < Best) {
            BestEq = static_cast<int>(RI);
            Best = A;
          }
        }
        bool OtherExist = false;
        for (unsigned EJ = 0; EJ != W.numExists(); ++EJ)
          if (EJ != EI && W.rows()[BestEq].Coef[W.existCol(EJ)] != 0)
            OtherExist = true;
        if (!OtherExist)
          ConsiderAction(2, EI, BestEq);
        else
          ConsiderAction(3, EI, BestEq);
        continue;
      }
      ConsiderAction(4, EI, -1);
    }
    if (Action < 0) {
      Done.push_back(std::move(W));
      continue;
    }
    switch (Action) {
    case 0:
      W.removeCol(Target);
      Work.push_back(std::move(W));
      break;
    case 1:
      W.substituteUsingEq(EqRow, W.existCol(Target));
      Work.push_back(std::move(W));
      break;
    case 2: {
      unsigned Col = W.existCol(Target);
      const Row Eq = W.rows()[EqRow]; // copy: rows vector is edited below
      int64_t A = Eq.Coef[Col];
      for (unsigned RI = 0, RE = W.rows().size(); RI != RE; ++RI) {
        if (static_cast<int>(RI) == EqRow)
          continue;
        Row &R = W.rows()[RI];
        int64_t C = R.Coef[Col];
        if (C == 0)
          continue;
        // Scale R by s = |A|/g > 0 (exact for both eq and ineq rows), then
        // subtract (s*C/A) * Eq to cancel the column.
        int64_t G = gcd64(A, C);
        int64_t S = (A < 0 ? -A : A) / G;
        int64_t F = mulOv(S, C) / A;
        for (unsigned K = 0, KE = W.width(); K != KE; ++K)
          R.Coef[K] = subOv(mulOv(S, R.Coef[K]), mulOv(F, Eq.Coef[K]));
        assert(R.Coef[Col] == 0 && "scaling failed to cancel the column");
      }
      Work.push_back(std::move(W));
      break;
    }
    default:
      // Mod-trick elimination (action 3) or exact Fourier-Motzkin with
      // splinters (action 4); both are eliminateExist on this variable.
      // Fresh existentials introduced along the way are re-processed.
      for (Conjunct &R : eliminateExist(std::move(W), Target))
        Work.push_back(std::move(R));
      break;
    }
  }
  return Done;
}

namespace {

bool satisfiableRec(Conjunct C, unsigned Depth) {
  assert(Depth < 10000 && "omega test diverged");
  if (!C.normalize())
    return false;
  if (C.rows().empty())
    return true;
  int E = pickExist(C);
  if (E < 0)
    return true; // no variables left; normalize() validated constants
  for (Conjunct &R : omega::eliminateExist(std::move(C), E))
    if (satisfiableRec(std::move(R), Depth + 1))
      return true;
  return false;
}

} // namespace

bool omega::isSatisfiable(const Conjunct &C) {
  return satisfiableRec(C.allVarsExistential(), 0);
}

bool omega::impliesRow(const Conjunct &C, const Row &R) {
  assert(R.Coef.size() == C.width() && "row width mismatch");
  if (R.IsEq) {
    Row A = R, B = R;
    A.IsEq = B.IsEq = false;
    for (int64_t &X : B.Coef)
      X = -X;
    return impliesRow(C, A) && impliesRow(C, B);
  }
  // C implies (R >= 0) iff C && (R <= -1) is unsatisfiable.
  Conjunct S = C;
  Row Neg = R;
  for (int64_t &X : Neg.Coef)
    X = -X;
  Neg.constant() = subOv(Neg.constant(), 1);
  S.rows().push_back(std::move(Neg));
  return !isSatisfiable(S);
}

void omega::removeRedundantRows(Conjunct &C) {
  for (unsigned I = 0; I < C.rows().size();) {
    if (C.rows()[I].IsEq) {
      ++I;
      continue;
    }
    Conjunct Rest(C.numParams(), C.numIn(), C.numOut(), C.numExists());
    Row Target = C.rows()[I];
    for (unsigned J = 0, E = C.rows().size(); J != E; ++J)
      if (J != I)
        Rest.rows().push_back(C.rows()[J]);
    if (impliesRow(Rest, Target))
      C.rows().erase(C.rows().begin() + I);
    else
      ++I;
  }
}
