//===- pset/Intern.h - Hash-consed conjunct arena ------------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing for the set engine: every Conjunct can be *interned* into a
/// process-global, append-only arena keyed by its canonical structural form
/// (rows GCD-normalized, equalities sign-canonicalized, rows sorted — the
/// same equivalence the structural fingerprint of pset/Fingerprint.h
/// collapses on purpose). Interning the same structure twice returns the
/// same InternedConjunct pointer, so:
///
///   * structural equality of canonical forms is pointer equality;
///   * the structural fingerprint is computed once per canonical form and
///     then read off the entry (no re-walk per operation);
///   * operation-cache keys derive from interned entries instead of
///     re-hashed structures (see Relation::fingerprint()).
///
/// The arena is sharded (mutex per shard) so parallel per-nest analysis
/// threads do not serialize, and append-only: entries are never moved or
/// freed, so returned pointers stay valid for the process lifetime. The
/// table is purely an accelerator — entries never influence results, only
/// how fast equal structures are recognized.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_INTERN_H
#define DHPF_PSET_INTERN_H

#include "pset/Conjunct.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dhpf {
namespace pset {

/// One canonical conjunct in the arena. Immutable after construction.
struct InternedConjunct {
  Conjunct C;    ///< canonical form (normalized, sorted rows)
  uint64_t FP;   ///< structural fingerprint, computed once at intern time
  uint32_t Id;   ///< dense process-wide id (allocation order)
};

/// Cumulative intern-table counters (process lifetime; benchmarks snapshot
/// and subtract).
struct InternStats {
  uint64_t Lookups = 0; ///< intern() calls
  uint64_t Hits = 0;    ///< calls resolved to an existing entry
  uint64_t Entries = 0; ///< live canonical conjuncts in the arena
  uint64_t Rows = 0;    ///< total constraint rows stored in the arena

  double hitRate() const {
    return Lookups == 0 ? 0.0
                        : static_cast<double>(Hits) /
                              static_cast<double>(Lookups);
  }
  InternStats operator-(const InternStats &O) const {
    InternStats R;
    R.Lookups = Lookups - O.Lookups;
    R.Hits = Hits - O.Hits;
    R.Entries = Entries; // sizes are levels, not deltas
    R.Rows = Rows;
    return R;
  }
};

class InternTable {
public:
  /// The process-global table shared by every compilation phase and
  /// analysis thread.
  static InternTable &global();

  /// Interns the canonical form of \p C; returns the unique entry for that
  /// form. Two conjuncts that differ only in row order, a common row
  /// factor, or equality sign receive the same entry.
  const InternedConjunct *intern(const Conjunct &C);

  /// Number of canonical conjuncts in the arena.
  size_t size() const;

  InternStats stats() const;

  /// Per-shard occupancy/traffic, mirroring OpCache::perShardStats.
  struct ShardStats {
    uint64_t Lookups = 0;
    uint64_t Hits = 0;
    uint64_t Entries = 0;
  };
  static constexpr size_t numShards() { return kNumShards; }
  std::vector<ShardStats> perShardStats() const;

  /// Mirrors the counters into obs::MetricsRegistry under "pset.intern.*"
  /// (gauges: repeated publication overwrites).
  void publishMetrics() const;

private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex M;
    /// Canonical-hash -> candidate entries (chained on rare collisions).
    std::unordered_map<uint64_t, std::vector<InternedConjunct *>> Buckets;
    /// Append-only storage; deque growth never moves existing entries.
    std::deque<InternedConjunct> Arena;
    uint64_t Lookups = 0;
    uint64_t Hits = 0;
    uint64_t RowCount = 0;
  };

  Shard Shards[kNumShards];
  std::atomic<uint32_t> NextId{0};
};

/// The canonical structural form interning collapses to: rows
/// GCD-normalized (equalities divide through only when the gcd divides the
/// constant, inequalities floor the constant), equalities flipped so the
/// first nonzero coefficient is positive, rows sorted. Exposed for tests.
Conjunct canonicalConjunct(const Conjunct &C);

} // namespace pset
} // namespace dhpf

#endif // DHPF_PSET_INTERN_H
