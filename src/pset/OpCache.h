//===- pset/OpCache.h - Memoization cache for set operations -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, sharded memoization cache for the hot Presburger operations
/// (simplify, coalesce, subtract, intersect, compose, isEmpty). Entries are
/// keyed on (operation, fingerprint(lhs), fingerprint(rhs)); the cached
/// value is the full operation result, so a hit replays the exact Relation
/// (or bool) the engine computed the first time — replayed results are
/// bit-identical to a recomputation on the same operands, which keeps
/// parallel and sequential compilations deterministic.
///
/// The cache is process-global (the compiler's phases and the parallel
/// nest analyses all share it) and mutex-striped across shards so
/// concurrent analysis threads do not serialize on one lock. Each shard
/// evicts in LRU order at a fixed capacity. `setEnabled(false)` (or the
/// environment variable DHPF_PSET_CACHE=0) turns the whole performance
/// layer off — the cache *and* the cheap-reject fast paths — restoring the
/// seed engine's exact behavior for debugging.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_PSET_OPCACHE_H
#define DHPF_PSET_OPCACHE_H

#include "pset/Relation.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dhpf {
namespace pset {

/// The cached operations. Unary operations hash only the lhs fingerprint.
enum class Op : uint8_t {
  Simplify,
  Coalesce,
  Subtract,
  Intersect,
  Compose,
  IsEmpty,
};

/// Hit/miss/eviction counters plus fast-path trip counts. All counters are
/// cumulative for the process; benchmarks snapshot and subtract.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  /// Conjuncts proven unsatisfiable by interval (bounding-box) analysis
  /// alone, skipping the Omega test (isEmpty / simplify fast path).
  uint64_t FastEmptyBBox = 0;
  /// Conjunct pairs skipped in intersect/subtract because their bounding
  /// boxes are disjoint.
  uint64_t FastDisjointBBox = 0;
  /// isSubsetOf/isEqualTo calls short-circuited by fingerprint equality.
  uint64_t FastSubsetFP = 0;
  /// Syntactically duplicate constraint rows dropped after intersection.
  uint64_t DupRowsRemoved = 0;
  /// Subtract branches skipped because the minuend conjunct syntactically
  /// implied the atom being negated (the branch is provably empty).
  uint64_t FastImpliedAtom = 0;
  // Intern-table (pset/Intern.h) traffic, mirrored here so driver
  // snapshots and bench tables report the hash-consing layer alongside the
  // cache. Lookups/Hits are cumulative; Entries/Rows are current levels.
  uint64_t InternLookups = 0;
  uint64_t InternHits = 0;
  uint64_t InternEntries = 0;
  uint64_t InternRows = 0;

  double hitRate() const {
    uint64_t T = Hits + Misses;
    return T == 0 ? 0.0 : static_cast<double>(Hits) / static_cast<double>(T);
  }
  CacheStats operator-(const CacheStats &O) const {
    CacheStats R;
    R.Hits = Hits - O.Hits;
    R.Misses = Misses - O.Misses;
    R.Evictions = Evictions - O.Evictions;
    R.FastEmptyBBox = FastEmptyBBox - O.FastEmptyBBox;
    R.FastDisjointBBox = FastDisjointBBox - O.FastDisjointBBox;
    R.FastSubsetFP = FastSubsetFP - O.FastSubsetFP;
    R.DupRowsRemoved = DupRowsRemoved - O.DupRowsRemoved;
    R.FastImpliedAtom = FastImpliedAtom - O.FastImpliedAtom;
    R.InternLookups = InternLookups - O.InternLookups;
    R.InternHits = InternHits - O.InternHits;
    R.InternEntries = InternEntries; // levels, not deltas
    R.InternRows = InternRows;
    return R;
  }
};

class OpCache {
public:
  /// The process-global cache instance (lazily constructed; honors
  /// DHPF_PSET_CACHE=0 at first use).
  static OpCache &global();

  explicit OpCache(size_t Capacity = kDefaultCapacity);

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }

  /// Looks up a Relation-valued operation; copies the cached result into
  /// \p Out on a hit. Counts a hit or miss.
  bool lookup(Op O, uint64_t LhsFP, uint64_t RhsFP, Relation &Out);
  /// Inserts a Relation-valued result (evicting LRU entries at capacity).
  void insert(Op O, uint64_t LhsFP, uint64_t RhsFP, const Relation &R);

  /// Bool-valued variant (isEmpty).
  bool lookupBool(Op O, uint64_t LhsFP, bool &Out);
  void insertBool(Op O, uint64_t LhsFP, bool V);

  /// Drops all entries (counters are kept; see statsReset).
  void clear();

  /// Writes every resident entry as versioned text (relations in the
  /// parser's own syntax, length-prefixed). Shards are walked LRU-first so
  /// a deserialize() replays insertions in recency order and reproduces
  /// each shard's eviction order exactly.
  void serialize(std::ostream &OS);

  /// Reloads a serialize() image into the cache (on top of whatever is
  /// resident; normal capacity eviction applies). Hit/miss counters are
  /// untouched — a reloaded cache scores its first post-reload lookups
  /// exactly like the process that wrote the image would have. Returns
  /// false with \p Err set on a malformed or version-mismatched image,
  /// loading nothing.
  bool deserialize(std::istream &IS, std::string *Err);

  /// Total resident entries across all shards.
  size_t entryCount();

  CacheStats stats() const;

  /// Per-shard traffic, for load-balance diagnostics. Entries is the
  /// shard's current resident count.
  struct ShardStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0;
  };
  static constexpr size_t numShards() { return kNumShards; }
  std::vector<ShardStats> perShardStats();

  /// Mirrors the cumulative counters (global and per shard) into the
  /// process-global obs::MetricsRegistry under "pset.cache.*". Gauges, so
  /// repeated publication overwrites rather than double-counts.
  void publishMetrics();

  // Fast-path accounting (the fast paths live in Relation.cpp).
  void noteFastEmpty() { NFastEmpty.fetch_add(1, std::memory_order_relaxed); }
  void noteFastDisjoint() {
    NFastDisjoint.fetch_add(1, std::memory_order_relaxed);
  }
  void noteFastSubset() {
    NFastSubset.fetch_add(1, std::memory_order_relaxed);
  }
  void noteDupRows(uint64_t N) {
    NDupRows.fetch_add(N, std::memory_order_relaxed);
  }
  void noteImpliedAtom() {
    NImpliedAtom.fetch_add(1, std::memory_order_relaxed);
  }

private:
  static constexpr size_t kNumShards = 16;
  static constexpr size_t kDefaultCapacity = 8192;

  struct Key {
    uint8_t O;
    uint64_t A;
    uint64_t B;
    bool operator==(const Key &K) const {
      return O == K.O && A == K.A && B == K.B;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = K.A * 0x9e3779b97f4a7c15ULL;
      H ^= K.B + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      return static_cast<size_t>(H ^ (static_cast<uint64_t>(K.O) << 56));
    }
  };
  struct Value {
    Relation R;
    bool B = false;
  };
  struct Shard {
    std::mutex M;
    /// Front = most recently used.
    std::list<std::pair<Key, Value>> LRU;
    std::unordered_map<Key, std::list<std::pair<Key, Value>>::iterator,
                       KeyHash>
        Map;
    // Per-shard traffic, bumped under M (plain fields, no atomics needed).
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  Shard &shardFor(const Key &K) {
    return Shards[KeyHash()(K) % kNumShards];
  }
  bool lookupImpl(const Key &K, Value &Out);
  void insertImpl(const Key &K, Value V);

  Shard Shards[kNumShards];
  size_t PerShardCapacity;
  std::atomic<bool> Enabled{true};
  std::atomic<uint64_t> NHits{0}, NMisses{0}, NEvictions{0};
  std::atomic<uint64_t> NFastEmpty{0}, NFastDisjoint{0}, NFastSubset{0},
      NDupRows{0}, NImpliedAtom{0};
};

} // namespace pset
} // namespace dhpf

#endif // DHPF_PSET_OPCACHE_H
