//===- net/Stream.cpp - Shared fd-stream transport engine ----------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Stream.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

using namespace dhpf;
using namespace dhpf::net;
using namespace dhpf::net::detail;

namespace {

std::string errnoStr() { return std::strerror(errno); }

/// Hello exchanged on connect: the frame magic plus the connector's rank.
struct Hello {
  uint32_t Magic;
  uint32_t Rank;
};

} // namespace

int64_t StreamTransport::nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void StreamTransport::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

StreamTransport::StreamTransport(unsigned Rank, unsigned NP)
    : Transport(Rank, NP), Fds(NP, -1), Out(NP), OutOff(NP, 0), In(NP),
      InOff(NP, 0) {}

StreamTransport::~StreamTransport() {
  for (int Fd : Fds)
    if (Fd >= 0)
      ::close(Fd);
  if (ListenFd >= 0)
    ::close(ListenFd);
}

void StreamTransport::adoptConnected(unsigned Q, int Fd) {
  Hello H{FrameMagic, rank()};
  if (::send(Fd, &H, sizeof(H), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(H))) {
    ::close(Fd);
    throw TransportError(where() + ": hello to rank " + std::to_string(Q) +
                         " failed: " + errnoStr());
  }
  Fds[Q] = Fd;
}

void StreamTransport::acceptPeers(int TimeoutMs) {
  unsigned Want = size() - 1 - rank();
  int64_t Deadline = nowMs() + TimeoutMs;
  while (Want != 0) {
    int64_t Left = Deadline - nowMs();
    if (Left <= 0)
      throw TransportError(where() + ": timed out waiting for " +
                           std::to_string(Want) +
                           " higher rank(s) to connect");
    pollfd P{ListenFd, POLLIN, 0};
    if (::poll(&P, 1, static_cast<int>(Left < 100 ? Left : 100)) <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    Hello H{};
    ssize_t N = ::recv(Fd, &H, sizeof(H), MSG_WAITALL);
    if (N != static_cast<ssize_t>(sizeof(H)) || H.Magic != FrameMagic ||
        H.Rank <= rank() || H.Rank >= size() || Fds[H.Rank] >= 0) {
      ::close(Fd);
      throw TransportError(where() + ": bad hello from a connecting peer");
    }
    Fds[H.Rank] = Fd;
    --Want;
  }
}

void StreamTransport::finishWiring() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  for (unsigned Q = 0; Q != size(); ++Q)
    if (Fds[Q] >= 0)
      setNonBlocking(Fds[Q]);
}

void StreamTransport::noteWrite(size_t N, bool ComputeContext) {
  if (ComputeContext)
    Stats.BytesFlushedDuringCompute += N;
}

/// Flushes as much of peer \p Q's buffered output as the kernel takes.
bool StreamTransport::drainOut(unsigned Q, bool ComputeContext) {
  bool Any = false;
  while (OutOff[Q] < Out[Q].size()) {
    ssize_t N = ::send(Fds[Q], Out[Q].data() + OutOff[Q],
                       Out[Q].size() - OutOff[Q], MSG_NOSIGNAL);
    if (N > 0) {
      OutOff[Q] += static_cast<size_t>(N);
      noteWrite(static_cast<size_t>(N), ComputeContext);
      Any = true;
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    markPeerDead(Q, "send failed: " + errnoStr());
    break;
  }
  if (OutOff[Q] == Out[Q].size()) {
    Out[Q].clear();
    OutOff[Q] = 0;
  } else if (OutOff[Q] > (1u << 20)) {
    Out[Q].erase(Out[Q].begin(), Out[Q].begin() + OutOff[Q]);
    OutOff[Q] = 0;
  }
  return Any;
}

void StreamTransport::sendFrame(unsigned Dst, const ByteSpan *Parts,
                                size_t NumParts, bool ComputeContext) {
  if (Fds[Dst] < 0)
    throw TransportError(where() + ": send to dead rank " +
                         std::to_string(Dst));
  size_t Skip = 0;
  if (Out[Dst].empty()) {
    // Nothing queued: write straight from the caller's spans (for a
    // proven-contiguous section this is array storage — zero copy).
    std::vector<iovec> IoV(NumParts);
    size_t Total = 0;
    for (size_t I = 0; I != NumParts; ++I) {
      IoV[I].iov_base = const_cast<void *>(Parts[I].Data);
      IoV[I].iov_len = Parts[I].Len;
      Total += Parts[I].Len;
    }
    msghdr Msg{};
    Msg.msg_iov = IoV.data();
    Msg.msg_iovlen = NumParts;
    ssize_t N = ::sendmsg(Fds[Dst], &Msg, MSG_NOSIGNAL);
    if (N > 0) {
      Skip = static_cast<size_t>(N);
      noteWrite(Skip, ComputeContext);
      if (Skip == Total)
        return;
    } else if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      markPeerDead(Dst, "send failed: " + errnoStr());
      throw TransportError(where() + ": send to rank " +
                           std::to_string(Dst) + " failed: " + errnoStr());
    }
  }
  // Buffer the remainder; progress()/flush() finishes it.
  for (size_t I = 0; I != NumParts; ++I) {
    const uint8_t *D = static_cast<const uint8_t *>(Parts[I].Data);
    size_t L = Parts[I].Len;
    if (Skip >= L) {
      Skip -= L;
      continue;
    }
    Out[Dst].insert(Out[Dst].end(), D + Skip, D + L);
    Skip = 0;
  }
}

/// Extracts complete frames from peer \p Q's inbound stream.
void StreamTransport::parseIn(unsigned Q) {
  std::vector<uint8_t> &B = In[Q];
  for (;;) {
    size_t Have = B.size() - InOff[Q];
    if (Have < FrameHeaderBytes)
      break;
    FrameHeader H = decodeHeader(B.data() + InOff[Q]);
    if (H.Magic != FrameMagic)
      throw TransportError(where() + ": garbled frame stream from rank " +
                           std::to_string(Q) +
                           " (bad magic — prior frame truncated?)");
    if (H.PayloadLen > MaxFramePayload)
      throw TransportError(where() + ": garbled frame length from rank " +
                           std::to_string(Q));
    if (Have < FrameHeaderBytes + H.PayloadLen)
      break;
    deliverFrame(Q, B.data() + InOff[Q], FrameHeaderBytes + H.PayloadLen);
    InOff[Q] += FrameHeaderBytes + H.PayloadLen;
  }
  if (InOff[Q] == B.size()) {
    B.clear();
    InOff[Q] = 0;
  } else if (InOff[Q] > (1u << 20)) {
    B.erase(B.begin(), B.begin() + InOff[Q]);
    InOff[Q] = 0;
  }
}

bool StreamTransport::pump(int TimeoutMs, bool ComputeContext) {
  std::vector<pollfd> PFds;
  std::vector<unsigned> Who;
  for (unsigned Q = 0; Q != size(); ++Q) {
    if (Fds[Q] < 0)
      continue;
    short Ev = POLLIN;
    if (OutOff[Q] < Out[Q].size())
      Ev |= POLLOUT;
    PFds.push_back({Fds[Q], Ev, 0});
    Who.push_back(Q);
  }
  if (PFds.empty())
    return false;
  int R = ::poll(PFds.data(), PFds.size(), TimeoutMs);
  if (R <= 0)
    return false;
  bool Any = false;
  char Buf[65536];
  for (size_t I = 0; I != PFds.size(); ++I) {
    unsigned Q = Who[I];
    if (PFds[I].revents & POLLOUT)
      Any |= drainOut(Q, ComputeContext);
    if (PFds[I].revents & (POLLIN | POLLHUP | POLLERR)) {
      for (;;) {
        ssize_t N = ::recv(Fds[Q], Buf, sizeof(Buf), 0);
        if (N > 0) {
          In[Q].insert(In[Q].end(), Buf, Buf + N);
          Any = true;
          continue;
        }
        if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
          break;
        // EOF or a hard error: the peer is gone. Whether that is fatal
        // is decided by whoever ends up waiting on this rank.
        markPeerDead(Q, N == 0 ? "connection closed (EOF)"
                               : "recv failed: " + errnoStr());
        ::close(Fds[Q]);
        Fds[Q] = -1;
        break;
      }
      parseIn(Q);
    }
  }
  return Any;
}

bool StreamTransport::allFlushed() const {
  for (unsigned Q = 0; Q != size(); ++Q)
    if (OutOff[Q] < Out[Q].size())
      return false;
  return true;
}
