//===- net/Tcp.cpp - TCP transport mesh -----------------------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Tcp.h"

#include "net/Stream.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

using namespace dhpf;
using namespace dhpf::net;

namespace {

std::string errnoStr() { return std::strerror(errno); }

void setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

/// Resolves `Host` to an IPv4 sockaddr with the given port. Throws on
/// resolution failure; resolution errors are configuration errors, never
/// retried.
sockaddr_in resolve(const HostPort &HP, const std::string &Who) {
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int E = ::getaddrinfo(HP.Host.c_str(), nullptr, &Hints, &Res);
  if (E != 0 || !Res)
    throw TransportError(Who + ": cannot resolve host \"" + HP.Host +
                         "\": " + ::gai_strerror(E));
  sockaddr_in Addr{};
  std::memcpy(&Addr, Res->ai_addr, sizeof(Addr));
  Addr.sin_port = htons(HP.Port);
  ::freeaddrinfo(Res);
  return Addr;
}

/// TCP wiring over the shared stream engine: same connect-lower /
/// accept-higher protocol as the Unix-domain mesh, with nonblocking
/// connect so the per-peer retry loop honours the global deadline even
/// when SYNs blackhole.
class TcpTransport final : public detail::StreamTransport {
public:
  TcpTransport(unsigned Rank, unsigned NP, const TcpOptions &Opts)
      : StreamTransport(Rank, NP) {
    if (NP <= 1)
      return;
    std::vector<HostPort> Spec = loadRankSpec(Opts.HostsPath);
    if (Spec.size() != NP)
      throw TransportError(where() + ": rank spec " + Opts.HostsPath +
                           " lists " + std::to_string(Spec.size()) +
                           " endpoints for a " + std::to_string(NP) +
                           "-rank mesh");
    int ConnectMs = Opts.ConnectTimeoutMs;
    if (ConnectMs <= 0)
      ConnectMs = envMs("DHPF_NET_CONNECT_MS", 5000);
    listenOn(Spec[Rank]);
    for (unsigned Q = 0; Q != Rank; ++Q)
      connectTo(Q, Spec[Q], ConnectMs);
    acceptPeers(ConnectMs);
    finishWiring();
  }

private:
  void listenOn(const HostPort &HP) {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      throw TransportError(where() + ": socket(): " + errnoStr());
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    // Bind the wildcard address at the spec'd port: the host column names
    // how *peers* reach this rank, which need not be a local address
    // string (NAT, multiple interfaces).
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
    Addr.sin_port = htons(HP.Port);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      throw TransportError(where() + ": bind(port " +
                           std::to_string(HP.Port) + "): " + errnoStr());
    if (::listen(ListenFd, static_cast<int>(size())) != 0)
      throw TransportError(where() + ": listen(): " + errnoStr());
  }

  /// One nonblocking connect attempt; true on success, false on a
  /// retryable refusal/timeout, throws on a hard error.
  bool tryConnect(unsigned Q, const sockaddr_in &Addr, int WaitMs) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      throw TransportError(where() + ": socket(): " + errnoStr());
    setNonBlocking(Fd);
    int R = ::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                      sizeof(Addr));
    if (R != 0 && errno != EINPROGRESS) {
      int E = errno;
      ::close(Fd);
      if (E == ECONNREFUSED || E == ETIMEDOUT || E == EHOSTUNREACH ||
          E == ENETUNREACH)
        return false;
      throw TransportError(where() + ": connect to rank " +
                           std::to_string(Q) + ": " + std::strerror(E));
    }
    if (R != 0) {
      pollfd P{Fd, POLLOUT, 0};
      if (::poll(&P, 1, WaitMs) <= 0) {
        ::close(Fd); // still in SYN — treat like a refused attempt
        return false;
      }
      int Err = 0;
      socklen_t Len = sizeof(Err);
      ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len);
      if (Err != 0) {
        ::close(Fd);
        if (Err == ECONNREFUSED || Err == ETIMEDOUT ||
            Err == EHOSTUNREACH || Err == ENETUNREACH)
          return false;
        throw TransportError(where() + ": connect to rank " +
                             std::to_string(Q) + ": " +
                             std::strerror(Err));
      }
    }
    // Connected: back to blocking for the hello (finishWiring() flips all
    // peers nonblocking once the mesh is wired).
    int Flags = ::fcntl(Fd, F_GETFL, 0);
    if (Flags >= 0)
      ::fcntl(Fd, F_SETFL, Flags & ~O_NONBLOCK);
    setNoDelay(Fd);
    adoptConnected(Q, Fd);
    return true;
  }

  void connectTo(unsigned Q, const HostPort &HP, int TimeoutMs) {
    sockaddr_in Addr = resolve(HP, where());
    int64_t Deadline = nowMs() + TimeoutMs;
    int BackoffUs = 1000;
    for (;;) {
      int64_t Left = Deadline - nowMs();
      if (Left <= 0)
        throw TransportError(
            where() + ": timed out connecting to rank " + std::to_string(Q) +
            " at " + HP.Host + ":" + std::to_string(HP.Port) + " after " +
            std::to_string(TimeoutMs) + " ms — rank never started "
            "listening");
      if (tryConnect(Q, Addr, static_cast<int>(Left < 250 ? Left : 250)))
        return;
      ::usleep(BackoffUs);
      BackoffUs = BackoffUs * 3 / 2;
      if (BackoffUs > 100000)
        BackoffUs = 100000;
    }
  }
};

} // namespace

std::vector<HostPort> net::parseRankSpec(const std::string &Text,
                                         const std::string &What) {
  std::vector<HostPort> Out;
  std::istringstream IS(Text);
  std::string Line;
  int LineNo = 0;
  auto Fail = [&](const std::string &Why) -> TransportError {
    return TransportError("rank spec " + What + " line " +
                          std::to_string(LineNo) + ": " + Why);
  };
  while (std::getline(IS, Line)) {
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.erase(Hash);
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);
    size_t Colon = Line.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Line.size())
      throw Fail("expected host:port, got \"" + Line + "\"");
    HostPort HP;
    HP.Host = Line.substr(0, Colon);
    const std::string PortS = Line.substr(Colon + 1);
    char *End = nullptr;
    long Port = std::strtol(PortS.c_str(), &End, 10);
    if (!End || *End != '\0' || Port <= 0 || Port > 65535)
      throw Fail("bad port \"" + PortS + "\"");
    HP.Port = static_cast<uint16_t>(Port);
    Out.push_back(std::move(HP));
  }
  if (Out.empty())
    throw TransportError("rank spec " + What + ": no endpoints");
  return Out;
}

std::vector<HostPort> net::loadRankSpec(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    throw TransportError("cannot read rank spec " + Path + ": " +
                         errnoStr());
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseRankSpec(SS.str(), Path);
}

std::vector<HostPort> net::writeLocalRankSpec(const std::string &Path,
                                              unsigned NP) {
  std::vector<HostPort> Spec;
  std::vector<int> Held; // keep every reservation until all are distinct
  for (unsigned R = 0; R != NP; ++R) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      throw TransportError("writeLocalRankSpec: socket(): " + errnoStr());
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = 0; // kernel-assigned
    socklen_t Len = sizeof(Addr);
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0 ||
        ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
      std::string E = errnoStr();
      ::close(Fd);
      for (int H : Held)
        ::close(H);
      throw TransportError("writeLocalRankSpec: cannot reserve port: " + E);
    }
    Held.push_back(Fd);
    Spec.push_back({"127.0.0.1", ntohs(Addr.sin_port)});
  }
  for (int H : Held)
    ::close(H);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << "# dhpf rank spec: line r = rank r's host:port\n";
  for (const HostPort &HP : Spec)
    Out << HP.Host << ":" << HP.Port << "\n";
  Out.close();
  if (!Out)
    throw TransportError("writeLocalRankSpec: cannot write " + Path);
  return Spec;
}

std::unique_ptr<Transport> net::connectTcpMesh(unsigned Rank, unsigned NP,
                                               const TcpOptions &Opts) {
  return std::make_unique<TcpTransport>(Rank, NP, Opts);
}
