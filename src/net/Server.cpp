//===- net/Server.cpp - Framed request/response server + client ----------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dhpf;
using namespace dhpf::net;

namespace {

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string errnoStr() { return std::strerror(errno); }

sockaddr_un mkAddr(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    throw TransportError("server socket path too long: " + Path);
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  return Addr;
}

} // namespace

//===----------------------------------------------------------------------===//
// MsgStream
//===----------------------------------------------------------------------===//

MsgStream::MsgStream(int FdIn, int TimeoutMs, unsigned SelfId,
                     unsigned PeerId)
    : Fd(FdIn),
      Watchdog(TimeoutMs > 0 ? TimeoutMs : envMs("DHPF_NET_TIMEOUT_MS",
                                                 10000)),
      Self(SelfId), Peer(PeerId) {}

MsgStream::~MsgStream() {
  if (Fd >= 0)
    ::close(Fd);
}

void MsgStream::writeFully(const uint8_t *Buf, size_t Len) {
  int64_t Deadline = nowMs() + Watchdog;
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Buf + Off, Len - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int64_t Left = Deadline - nowMs();
      if (Left <= 0)
        throw TransportError("message send: watchdog timeout (" +
                             std::to_string(Watchdog) +
                             " ms) — peer not reading");
      pollfd P{Fd, POLLOUT, 0};
      ::poll(&P, 1, static_cast<int>(Left < 100 ? Left : 100));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    throw TransportError("message send failed: " + errnoStr());
  }
}

void MsgStream::readFully(uint8_t *Buf, size_t Len, bool &SawEof) {
  int64_t Deadline = nowMs() + Watchdog;
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::recv(Fd, Buf + Off, Len - Off, 0);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N == 0) {
      if (Off == 0 && SawEof) {
        // Caller treats EOF-before-any-byte as a clean close.
        return;
      }
      throw TransportError("connection closed mid-frame (got " +
                           std::to_string(Off) + " of " +
                           std::to_string(Len) + " bytes)");
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int64_t Left = Deadline - nowMs();
      if (Left <= 0)
        throw TransportError("message recv: watchdog timeout (" +
                             std::to_string(Watchdog) + " ms)");
      pollfd P{Fd, POLLIN, 0};
      ::poll(&P, 1, static_cast<int>(Left < 100 ? Left : 100));
      continue;
    }
    throw TransportError("message recv failed: " + errnoStr());
  }
  SawEof = false;
}

void MsgStream::send(uint64_t Tag, const std::string &Payload) {
  if (Payload.size() > MaxFramePayload)
    throw TransportError("message payload too large (" +
                         std::to_string(Payload.size()) + " bytes)");
  FrameHeader H;
  H.PayloadLen = static_cast<uint32_t>(Payload.size());
  H.Src = Self;
  H.Dst = Peer;
  H.Tag = Tag;
  H.Seq = NextSendSeq++;
  H.Checksum = fnv1aAccum(fnv1aInit(), Payload.data(), Payload.size());
  uint8_t Hdr[FrameHeaderBytes];
  encodeHeader(H, Hdr);
  writeFully(Hdr, FrameHeaderBytes);
  writeFully(reinterpret_cast<const uint8_t *>(Payload.data()),
             Payload.size());
}

bool MsgStream::recv(uint64_t &Tag, std::string &Payload) {
  uint8_t Hdr[FrameHeaderBytes];
  bool SawEof = true; // EOF before any header byte is a clean close
  readFully(Hdr, FrameHeaderBytes, SawEof);
  if (SawEof)
    return false;
  FrameHeader H = decodeHeader(Hdr);
  if (H.Magic != FrameMagic)
    throw TransportError("garbled message stream (bad magic)");
  if (H.PayloadLen > MaxFramePayload)
    throw TransportError("garbled message length (" +
                         std::to_string(H.PayloadLen) + " bytes)");
  if (H.Seq != NextRecvSeq)
    throw TransportError("message sequence break (expected seq " +
                         std::to_string(NextRecvSeq) + ", got " +
                         std::to_string(H.Seq) + ")");
  ++NextRecvSeq;
  Payload.resize(H.PayloadLen);
  if (H.PayloadLen) {
    bool MidEof = false;
    readFully(reinterpret_cast<uint8_t *>(Payload.data()), H.PayloadLen,
              MidEof);
  }
  uint64_t Sum = fnv1aAccum(fnv1aInit(), Payload.data(), Payload.size());
  if (Sum != H.Checksum)
    throw TransportError("corrupted message (tag " + std::to_string(H.Tag) +
                         ", bad checksum)");
  Tag = H.Tag;
  return true;
}

//===----------------------------------------------------------------------===//
// MsgServer
//===----------------------------------------------------------------------===//

MsgServer::~MsgServer() { stop(); }

void MsgServer::start(const std::string &SocketPath, Handler H, Closer C) {
  if (Running.load())
    throw TransportError("server already running on " + Path);
  Path = SocketPath;
  Handle = std::move(H);
  Close = std::move(C);
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    throw TransportError("server socket(): " + errnoStr());
  ::unlink(Path.c_str());
  sockaddr_un Addr = mkAddr(Path);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    std::string E = errnoStr();
    ::close(ListenFd);
    ListenFd = -1;
    throw TransportError("server bind(" + Path + "): " + E);
  }
  if (::listen(ListenFd, 64) != 0) {
    std::string E = errnoStr();
    ::close(ListenFd);
    ListenFd = -1;
    throw TransportError("server listen(): " + E);
  }
  Running.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
}

void MsgServer::acceptLoop() {
  while (Running.load(std::memory_order_relaxed)) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 100);
    if (R <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    unsigned Id =
        static_cast<unsigned>(Accepted.fetch_add(1, std::memory_order_relaxed)) + 1;
    Active.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> L(WorkersM);
    Workers.emplace_back([this, Fd, Id] { serveOne(Fd, Id); });
  }
}

void MsgServer::serveOne(int Fd, unsigned ClientId) {
  // The stream owns Fd and closes it when this scope exits, on every path.
  MsgStream Stream(Fd, /*TimeoutMs=*/0, /*Self=*/0, /*Peer=*/ClientId);
  try {
    uint64_t Tag;
    std::string Payload;
    bool Keep = true;
    while (Keep && Running.load(std::memory_order_relaxed)) {
      // Idle connections are fine: wait for the next request without the
      // per-message watchdog, but wake periodically to honor stop().
      pollfd P{Fd, POLLIN, 0};
      int R = ::poll(&P, 1, 100);
      if (R <= 0)
        continue;
      if (!Stream.recv(Tag, Payload))
        break; // clean EOF
      Keep = Handle(ClientId, Tag, Payload, Stream);
    }
  } catch (const std::exception &) {
    // A torn frame or a handler failure kills this connection only; the
    // client sees the closed socket and diagnoses it on its side.
  }
  Active.fetch_sub(1, std::memory_order_relaxed);
  if (Close)
    Close(ClientId);
}

void MsgServer::stop() {
  if (!Running.exchange(false))
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  std::vector<std::thread> Ws;
  {
    std::lock_guard<std::mutex> L(WorkersM);
    Ws.swap(Workers);
  }
  for (std::thread &W : Ws)
    if (W.joinable())
      W.join();
  if (!Path.empty())
    ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Client connect
//===----------------------------------------------------------------------===//

std::unique_ptr<MsgStream> net::connectClient(const std::string &SocketPath,
                                              int ConnectTimeoutMs,
                                              int IoTimeoutMs) {
  int TimeoutMs = ConnectTimeoutMs > 0 ? ConnectTimeoutMs
                                       : envMs("DHPF_NET_CONNECT_MS", 5000);
  int64_t Deadline = nowMs() + TimeoutMs;
  int BackoffUs = 1000;
  for (;;) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      throw TransportError("client socket(): " + errnoStr());
    sockaddr_un Addr = mkAddr(SocketPath);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return std::make_unique<MsgStream>(Fd, IoTimeoutMs, /*Self=*/0,
                                         /*Peer=*/0);
    int E = errno;
    ::close(Fd);
    if (E != ECONNREFUSED && E != ENOENT)
      throw TransportError("connect to server " + SocketPath + ": " +
                           std::strerror(E));
    if (nowMs() >= Deadline)
      throw TransportError("timed out connecting to server " + SocketPath +
                           " after " + std::to_string(TimeoutMs) +
                           " ms — is dhpfd running?");
    ::usleep(BackoffUs);
    BackoffUs = BackoffUs * 3 / 2;
    if (BackoffUs > 100000)
      BackoffUs = 100000;
  }
}
