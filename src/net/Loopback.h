//===- net/Loopback.h - In-process loopback transport mesh ---------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process transport backend: NP rank threads in one address space
/// exchanging fully-encoded frames through locked queues. Every frame
/// still passes through the shared encode / fault-inject / validate path
/// of net::Transport, so loopback is a genuine differential oracle for
/// the socket backend — identical framing, identical diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_NET_LOOPBACK_H
#define DHPF_NET_LOOPBACK_H

#include "net/Net.h"

#include <condition_variable>
#include <memory>
#include <mutex>

namespace dhpf {
namespace net {

/// The shared state of an NP-rank loopback mesh. Create one, then hand
/// each rank thread its transport(). Destroying a rank's transport marks
/// it dead to the others (the loopback analogue of a closed socket).
class LoopbackMesh {
public:
  explicit LoopbackMesh(unsigned NP);
  ~LoopbackMesh();

  unsigned size() const { return NP; }
  std::unique_ptr<Transport> transport(unsigned Rank);

  struct Shared; ///< opaque; defined in Loopback.cpp

private:
  unsigned NP;
  std::shared_ptr<Shared> S;
};

} // namespace net
} // namespace dhpf

#endif // DHPF_NET_LOOPBACK_H
