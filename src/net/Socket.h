//===- net/Socket.h - Unix-domain socket transport mesh ------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real inter-process backend: each rank owns one Unix-domain stream
/// socket pair per peer, wired at startup from a shared mesh directory.
/// Rank r listens on `<dir>/rank<r>.sock`; every rank first connects to
/// all lower ranks (with bounded retry-and-backoff, so start order does
/// not matter), then accepts from all higher ranks; a hello frame carries
/// the connector's rank. All descriptors run nonblocking afterwards: a
/// poll()-based progress engine drains arrivals and flushes buffered
/// sends, and posted frames are written straight from the caller's spans
/// (writev) when the kernel accepts them immediately — only the unsent
/// remainder is copied.
///
/// EOF / ECONNRESET marks the peer dead; the error surfaces (naming the
/// rank) only when something actually waits on that peer, so a normal
/// shutdown race never kills a run but a genuinely dead peer never hangs
/// one.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_NET_SOCKET_H
#define DHPF_NET_SOCKET_H

#include "net/Net.h"

#include <memory>

namespace dhpf {
namespace net {

struct SocketOptions {
  std::string MeshDir;      ///< directory holding the rank sockets
  int ConnectTimeoutMs = 0; ///< 0: DHPF_NET_CONNECT_MS or 5000
};

/// Creates rank \p Rank's transport and wires the full mesh (blocking,
/// bounded by the connect timeout). Throws TransportError if any peer
/// cannot be reached in time.
std::unique_ptr<Transport> connectSocketMesh(unsigned Rank, unsigned NP,
                                             const SocketOptions &Opts);

} // namespace net
} // namespace dhpf

#endif // DHPF_NET_SOCKET_H
