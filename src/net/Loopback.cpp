//===- net/Loopback.cpp - In-process loopback transport mesh -------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Loopback.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <deque>

using namespace dhpf;
using namespace dhpf::net;

struct LoopbackMesh::Shared {
  std::mutex M;
  std::condition_variable CV;
  /// Per-destination queues of (source rank, encoded frame).
  std::vector<std::deque<std::pair<unsigned, std::vector<uint8_t>>>> Queues;
  std::vector<char> Exited;

  explicit Shared(unsigned NP) : Queues(NP), Exited(NP, 0) {}
};

namespace {

class LoopbackTransport final : public Transport {
public:
  LoopbackTransport(unsigned Rank, unsigned NP,
                    std::shared_ptr<LoopbackMesh::Shared> SIn)
      : Transport(Rank, NP), S(std::move(SIn)) {}

  ~LoopbackTransport() override {
    std::lock_guard<std::mutex> L(S->M);
    S->Exited[rank()] = 1;
    S->CV.notify_all();
  }

private:
  std::shared_ptr<LoopbackMesh::Shared> S;

  void sendFrame(unsigned Dst, const ByteSpan *Parts, size_t NumParts,
                 bool /*ComputeContext*/) override {
    std::vector<uint8_t> Frame;
    size_t Total = 0;
    for (size_t I = 0; I != NumParts; ++I)
      Total += Parts[I].Len;
    Frame.resize(Total);
    size_t Off = 0;
    for (size_t I = 0; I != NumParts; ++I) {
      std::memcpy(Frame.data() + Off, Parts[I].Data, Parts[I].Len);
      Off += Parts[I].Len;
    }
    std::lock_guard<std::mutex> L(S->M);
    S->Queues[Dst].emplace_back(rank(), std::move(Frame));
    S->CV.notify_all();
  }

  bool pump(int TimeoutMs, bool /*ComputeContext*/) override {
    std::deque<std::pair<unsigned, std::vector<uint8_t>>> Got;
    {
      std::unique_lock<std::mutex> L(S->M);
      auto Ready = [&] {
        if (!S->Queues[rank()].empty())
          return true;
        for (unsigned Q = 0; Q != size(); ++Q)
          if (Q != rank() && S->Exited[Q] && !peerDead(Q))
            return true;
        return false;
      };
      if (!Ready() && TimeoutMs > 0)
        S->CV.wait_for(L, std::chrono::milliseconds(TimeoutMs), Ready);
      Got.swap(S->Queues[rank()]);
      for (unsigned Q = 0; Q != size(); ++Q)
        if (Q != rank() && S->Exited[Q])
          markPeerDead(Q, "rank exited");
    }
    for (auto &[Src, Frame] : Got)
      deliverFrame(Src, Frame.data(), Frame.size());
    return !Got.empty();
  }

  // Delivery into the mesh queue is synchronous inside sendFrame.
  bool allFlushed() const override { return true; }
};

} // namespace

LoopbackMesh::LoopbackMesh(unsigned NPIn)
    : NP(NPIn), S(std::make_shared<Shared>(NPIn)) {}

LoopbackMesh::~LoopbackMesh() = default;

std::unique_ptr<Transport> LoopbackMesh::transport(unsigned Rank) {
  assert(Rank < NP);
  return std::make_unique<LoopbackTransport>(Rank, NP, S);
}
