//===- net/Socket.cpp - Unix-domain socket transport mesh ----------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include "net/Stream.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dhpf;
using namespace dhpf::net;

namespace {

std::string sockPath(const std::string &Dir, unsigned Rank) {
  return Dir + "/rank" + std::to_string(Rank) + ".sock";
}

std::string errnoStr() { return std::strerror(errno); }

/// Unix-domain wiring over the shared stream engine: rank r listens on
/// `<dir>/rank<r>.sock`, dials every lower rank with retry-and-backoff,
/// then accepts every higher rank.
class SocketTransport final : public detail::StreamTransport {
public:
  SocketTransport(unsigned Rank, unsigned NP, const SocketOptions &Opts)
      : StreamTransport(Rank, NP) {
    if (NP <= 1)
      return;
    int ConnectMs = Opts.ConnectTimeoutMs;
    if (ConnectMs <= 0)
      ConnectMs = envMs("DHPF_NET_CONNECT_MS", 5000);
    listenOn(sockPath(Opts.MeshDir, Rank));
    // Connect to every lower rank (retry/backoff: listeners may not have
    // bound yet), then accept every higher rank.
    for (unsigned Q = 0; Q != Rank; ++Q)
      connectTo(Q, sockPath(Opts.MeshDir, Q), ConnectMs);
    acceptPeers(ConnectMs);
    finishWiring();
  }

private:
  void listenOn(const std::string &Path) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      throw TransportError(where() + ": socket(): " + errnoStr());
    ::unlink(Path.c_str());
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      throw TransportError(where() + ": mesh path too long: " + Path);
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      throw TransportError(where() + ": bind(" + Path +
                           "): " + errnoStr());
    if (::listen(ListenFd, static_cast<int>(size())) != 0)
      throw TransportError(where() + ": listen(): " + errnoStr());
  }

  void connectTo(unsigned Q, const std::string &Path, int TimeoutMs) {
    int64_t Deadline = nowMs() + TimeoutMs;
    int BackoffUs = 1000;
    for (;;) {
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd < 0)
        throw TransportError(where() + ": socket(): " + errnoStr());
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
      if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof(Addr)) == 0) {
        adoptConnected(Q, Fd);
        return;
      }
      int E = errno;
      ::close(Fd);
      if (E != ECONNREFUSED && E != ENOENT)
        throw TransportError(where() + ": connect to rank " +
                             std::to_string(Q) + ": " + std::strerror(E));
      if (nowMs() >= Deadline)
        throw TransportError(
            where() + ": timed out connecting to rank " + std::to_string(Q) +
            " after " + std::to_string(TimeoutMs) +
            " ms — rank never started listening");
      ::usleep(BackoffUs);
      BackoffUs = BackoffUs * 3 / 2;
      if (BackoffUs > 100000)
        BackoffUs = 100000;
    }
  }
};

} // namespace

std::unique_ptr<Transport> net::connectSocketMesh(unsigned Rank, unsigned NP,
                                                  const SocketOptions &Opts) {
  return std::make_unique<SocketTransport>(Rank, NP, Opts);
}
