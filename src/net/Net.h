//===- net/Net.h - Message transport for the distributed runtime ---------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-moving layer under the distributed rank runtime (src/rt): a
/// Transport abstraction with two backends that share one framing format,
/// one receive-side validation path, and one fault-injection hook, so the
/// in-process loopback mesh is a true differential oracle for the socket
/// backend.
///
/// Framing: every message is one frame — a fixed 40-byte header
///
///   u32 magic 'DHPF'  u32 payloadLen  u32 src  u32 dst
///   u64 tag           u64 seq         u64 checksum (FNV-1a over payload)
///
/// followed by the payload. `seq` numbers the src->dst stream from 0, so
/// the receiver detects dropped (sequence gap) and duplicated frames;
/// the checksum catches payload corruption; the magic word catches stream
/// desynchronization after a truncated frame. Every detection is a thrown
/// TransportError naming the peer rank — never a silent hang; blocking
/// waits are bounded by a watchdog (DHPF_NET_TIMEOUT_MS, default 10 s).
///
/// Sends are nonblocking: post() frames the message and opportunistically
/// hands bytes to the peer; whatever the OS does not accept immediately is
/// buffered and flushed by progress(), which the rank runtime calls from
/// inside compute nodes — the Figure 4 overlap window. post() takes the
/// payload as scatter/gather spans so a contiguous section proven by the
/// Section 3.3 analysis is written straight from array storage (writev);
/// only the unsent remainder is copied before post() returns.
///
/// DHPF_NET_FAULT="drop=P,dup=P,trunc=P,corrupt=P,seed=S,after=N" makes
/// the send side probabilistically drop / duplicate / truncate / corrupt
/// frames (deterministically per seed and rank) — the test hook proving
/// receive-side validation catches every corruption.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_NET_NET_H
#define DHPF_NET_NET_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dhpf {
namespace net {

constexpr uint32_t FrameMagic = 0x44485046; // "DHPF" big-endian spelling
constexpr size_t FrameHeaderBytes = 40;
/// Sanity cap on a single frame's payload; a garbled length field past
/// this is diagnosed instead of attempting a multi-gigabyte read.
constexpr uint32_t MaxFramePayload = 1u << 30;

struct FrameHeader {
  uint32_t Magic = FrameMagic;
  uint32_t PayloadLen = 0;
  uint32_t Src = 0;
  uint32_t Dst = 0;
  uint64_t Tag = 0;
  uint64_t Seq = 0;
  uint64_t Checksum = 0;
};

void encodeHeader(const FrameHeader &H, uint8_t Out[FrameHeaderBytes]);
FrameHeader decodeHeader(const uint8_t In[FrameHeaderBytes]);

/// Incremental FNV-1a; seed the first call with fnv1aInit().
constexpr uint64_t fnv1aInit() { return 0xcbf29ce484222325ull; }
uint64_t fnv1aAccum(uint64_t H, const void *Data, size_t Len);

/// Reads a positive millisecond count from environment variable \p Name.
/// Unset or empty returns \p Def. A malformed value — non-numeric text,
/// trailing junk, zero, negative, or out of int range — is a
/// TransportError naming the variable, never a silent fallback to the
/// default (a typo in a timeout must not quietly change test deadlines).
int envMs(const char *Name, int Def);

/// One piece of a scatter/gather payload. The memory only needs to stay
/// valid for the duration of the post() call.
struct ByteSpan {
  const void *Data = nullptr;
  size_t Len = 0;
};

/// Every transport failure: corrupted/dropped/duplicated frames, peer
/// death, watchdog timeouts, wiring errors. The message names the peer
/// rank involved.
class TransportError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct TransportStats {
  uint64_t FramesSent = 0;
  uint64_t FramesRecvd = 0;
  uint64_t WireBytesSent = 0;
  uint64_t WireBytesRecvd = 0;
  /// Wire bytes handed to the peer from progress() calls made during
  /// computation — the numerator of the overlap ratio.
  uint64_t BytesFlushedDuringCompute = 0;
  uint64_t ProgressCalls = 0;
  uint64_t FaultsInjected = 0;
};

/// The DHPF_NET_FAULT hook: a deterministic per-rank stream of frame
/// fates. Probabilities are independent; `after` skips the first N frames
/// so the mesh wiring itself stays reliable in fault tests.
class FaultInjector {
public:
  enum class Action : uint8_t { None, Drop, Duplicate, Truncate, Corrupt };

  FaultInjector() = default;
  /// Parses the spec ("drop=0.5,seed=7,after=2"); an unparsable spec is a
  /// TransportError (tests must not silently run fault-free).
  static FaultInjector parse(const std::string &Spec, unsigned Rank);
  static FaultInjector fromEnv(unsigned Rank);

  bool enabled() const { return Drop + Dup + Trunc + Corrupt > 0; }
  Action next();

private:
  double Drop = 0, Dup = 0, Trunc = 0, Corrupt = 0;
  uint64_t After = 0;
  uint64_t Sent = 0;
  uint64_t State = 0x9e3779b97f4a7c15ull;
  double uniform();
};

/// Abstract point-to-point transport among NP ranks. One instance per
/// rank; instances are single-threaded. Framing, sequence tracking,
/// receive-side validation, tag-matched delivery queues, the watchdog,
/// and fault injection all live here; backends only move bytes.
class Transport {
public:
  virtual ~Transport();

  unsigned rank() const { return Rank; }
  unsigned size() const { return NP; }

  /// Nonblocking send of one framed message assembled from \p Parts.
  /// Bytes not handed to the peer before return are buffered internally,
  /// so the spans (which may point into array storage) are reusable
  /// immediately after the call.
  void post(unsigned Dst, uint64_t Tag, const ByteSpan *Parts,
            size_t NumParts);

  /// Blocking matched receive: the next payload posted by \p Src under
  /// \p Tag, in posting order. Throws on watchdog expiry, peer death, or
  /// any validation failure.
  std::vector<uint8_t> recv(unsigned Src, uint64_t Tag);

  /// True if a payload from \p Src under \p Tag is already deliverable
  /// without blocking (drives opportunistic receives).
  bool canRecv(unsigned Src, uint64_t Tag);

  /// Nonblocking progress pump — the overlap window. The rank runtime
  /// calls this from inside compute nodes so posted sends complete while
  /// computation proceeds.
  void progress();

  /// Blocks until every posted byte has been handed to the peer (bounded
  /// by the watchdog).
  void flush();

  /// True when some frame sits undelivered in the tag-matched queues —
  /// at shutdown this means the send/recv sets were not dual.
  bool hasUndelivered() const { return !Inbox.empty(); }

  const TransportStats &stats() const { return Stats; }
  int watchdogMs() const { return Watchdog; }

protected:
  Transport(unsigned Rank, unsigned NP);

  /// Queues/writes one encoded frame. Span memory is only valid during
  /// the call. \p ComputeContext attributes immediately-flushed bytes.
  virtual void sendFrame(unsigned Dst, const ByteSpan *Parts,
                         size_t NumParts, bool ComputeContext) = 0;
  /// Drives I/O for at most \p TimeoutMs (0 = poll only), delivering
  /// complete frames via deliverFrame(). Returns true if any byte moved
  /// or frame arrived.
  virtual bool pump(int TimeoutMs, bool ComputeContext) = 0;
  /// True when no posted bytes remain buffered.
  virtual bool allFlushed() const = 0;

  /// Validates one complete received frame (header + payload) arriving on
  /// \p FromChannel and queues its payload for recv(). Throws
  /// TransportError on any mismatch.
  void deliverFrame(unsigned FromChannel, const uint8_t *Frame, size_t Len);

  void markPeerDead(unsigned Peer, const std::string &Why);
  bool peerDead(unsigned Peer) const { return Dead[Peer] != 0; }
  const std::string &deadWhy(unsigned Peer) const { return DeadWhy[Peer]; }

  std::string where() const; ///< "rank R" prefix for diagnostics

  TransportStats Stats;

private:
  unsigned Rank, NP;
  int Watchdog;
  FaultInjector Faults;
  std::vector<uint64_t> NextSendSeq, NextRecvSeq;
  std::map<std::pair<unsigned, uint64_t>, std::deque<std::vector<uint8_t>>>
      Inbox;
  std::vector<char> Dead;
  std::vector<std::string> DeadWhy;
};

} // namespace net
} // namespace dhpf

#endif // DHPF_NET_NET_H
