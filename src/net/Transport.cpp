//===- net/Transport.cpp - Shared framing, validation, fault injection ---===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Net.h"

#include "obs/Trace.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

using namespace dhpf;
using namespace dhpf::net;

//===----------------------------------------------------------------------===//
// Frame encoding
//===----------------------------------------------------------------------===//

namespace {

void put32(uint8_t *&P, uint32_t V) {
  std::memcpy(P, &V, 4);
  P += 4;
}
void put64(uint8_t *&P, uint64_t V) {
  std::memcpy(P, &V, 8);
  P += 8;
}
uint32_t get32(const uint8_t *&P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  P += 4;
  return V;
}
uint64_t get64(const uint8_t *&P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  P += 8;
  return V;
}

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

void net::encodeHeader(const FrameHeader &H, uint8_t Out[FrameHeaderBytes]) {
  uint8_t *P = Out;
  put32(P, H.Magic);
  put32(P, H.PayloadLen);
  put32(P, H.Src);
  put32(P, H.Dst);
  put64(P, H.Tag);
  put64(P, H.Seq);
  put64(P, H.Checksum);
}

FrameHeader net::decodeHeader(const uint8_t In[FrameHeaderBytes]) {
  const uint8_t *P = In;
  FrameHeader H;
  H.Magic = get32(P);
  H.PayloadLen = get32(P);
  H.Src = get32(P);
  H.Dst = get32(P);
  H.Tag = get64(P);
  H.Seq = get64(P);
  H.Checksum = get64(P);
  return H;
}

uint64_t net::fnv1aAccum(uint64_t H, const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

int net::envMs(const char *Name, int Def) {
  const char *S = std::getenv(Name);
  if (!S || !*S)
    return Def;
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(S, &End, 10);
  if (errno != 0 || End == S || *End != '\0' || V <= 0 || V > 1000000000)
    throw TransportError(std::string("malformed ") + Name + "='" + S +
                         "' (expected a positive integer millisecond "
                         "count)");
  return static_cast<int>(V);
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

FaultInjector FaultInjector::parse(const std::string &Spec, unsigned Rank) {
  FaultInjector F;
  uint64_t Seed = 1;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      throw TransportError("bad DHPF_NET_FAULT item '" + Item +
                           "' (want key=value)");
    std::string Key = Item.substr(0, Eq), Val = Item.substr(Eq + 1);
    char *End = nullptr;
    double D = std::strtod(Val.c_str(), &End);
    if (End != Val.c_str() + Val.size() || Val.empty())
      throw TransportError("bad DHPF_NET_FAULT value '" + Item + "'");
    if (Key == "drop")
      F.Drop = D;
    else if (Key == "dup")
      F.Dup = D;
    else if (Key == "trunc")
      F.Trunc = D;
    else if (Key == "corrupt")
      F.Corrupt = D;
    else if (Key == "seed")
      Seed = static_cast<uint64_t>(D);
    else if (Key == "after")
      F.After = static_cast<uint64_t>(D);
    else
      throw TransportError("unknown DHPF_NET_FAULT key '" + Key + "'");
  }
  // splitmix-style per-rank stream seeding: independent ranks draw
  // independent (but reproducible) fates.
  F.State = (Seed + 1) * 0x9e3779b97f4a7c15ull + Rank * 0xbf58476d1ce4e5b9ull;
  if (F.State == 0)
    F.State = 1;
  return F;
}

FaultInjector FaultInjector::fromEnv(unsigned Rank) {
  const char *S = std::getenv("DHPF_NET_FAULT");
  return S ? parse(S, Rank) : FaultInjector();
}

double FaultInjector::uniform() {
  // xorshift64*: deterministic across platforms, no <random> state size
  // concerns.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return double((State * 0x2545f4914f6cdd1dull) >> 11) / double(1ull << 53);
}

FaultInjector::Action FaultInjector::next() {
  uint64_t N = Sent++;
  if (!enabled() || N < After)
    return Action::None;
  double U = uniform();
  if (U < Drop)
    return Action::Drop;
  if (U < Drop + Dup)
    return Action::Duplicate;
  if (U < Drop + Dup + Trunc)
    return Action::Truncate;
  if (U < Drop + Dup + Trunc + Corrupt)
    return Action::Corrupt;
  return Action::None;
}

//===----------------------------------------------------------------------===//
// Transport
//===----------------------------------------------------------------------===//

Transport::Transport(unsigned RankIn, unsigned NPIn)
    : Rank(RankIn), NP(NPIn),
      Watchdog(envMs("DHPF_NET_TIMEOUT_MS", 10000)),
      Faults(FaultInjector::fromEnv(RankIn)), NextSendSeq(NPIn, 0),
      NextRecvSeq(NPIn, 0), Dead(NPIn, 0), DeadWhy(NPIn) {}

Transport::~Transport() = default;

std::string Transport::where() const {
  return "rank " + std::to_string(Rank);
}

void Transport::post(unsigned Dst, uint64_t Tag, const ByteSpan *Parts,
                     size_t NumParts) {
  if (Dst >= NP || Dst == Rank)
    throw TransportError(where() + ": post to invalid rank " +
                         std::to_string(Dst));
  if (peerDead(Dst))
    throw TransportError(where() + ": post to dead rank " +
                         std::to_string(Dst) + " (" + DeadWhy[Dst] + ")");

  FrameHeader H;
  H.Src = Rank;
  H.Dst = Dst;
  H.Tag = Tag;
  H.Seq = NextSendSeq[Dst]++;
  uint64_t Sum = fnv1aInit();
  size_t PayloadLen = 0;
  for (size_t I = 0; I != NumParts; ++I) {
    Sum = fnv1aAccum(Sum, Parts[I].Data, Parts[I].Len);
    PayloadLen += Parts[I].Len;
  }
  if (PayloadLen > MaxFramePayload)
    throw TransportError(where() + ": frame payload too large");
  H.PayloadLen = static_cast<uint32_t>(PayloadLen);
  H.Checksum = Sum;
  uint8_t Hdr[FrameHeaderBytes];
  encodeHeader(H, Hdr);

  FaultInjector::Action Fate = FaultInjector::Action::None;
  if (Faults.enabled()) {
    Fate = Faults.next();
    if (Fate != FaultInjector::Action::None) {
      ++Stats.FaultsInjected;
      static const char *ActionNames[] = {"none", "drop", "duplicate",
                                          "truncate", "corrupt"};
      obs::TraceBuffer::global().instant(
          "fault", "net",
          "\"rank\": " + std::to_string(Rank) + ", \"dst\": " +
              std::to_string(Dst) + ", \"action\": \"" +
              ActionNames[static_cast<size_t>(Fate)] + "\"");
    }
  }
  if (Fate == FaultInjector::Action::Drop) {
    // The sequence number was consumed: the receiver sees a gap.
    return;
  }
  if (Fate == FaultInjector::Action::None) {
    std::vector<ByteSpan> All(NumParts + 1);
    All[0] = {Hdr, FrameHeaderBytes};
    for (size_t I = 0; I != NumParts; ++I)
      All[I + 1] = Parts[I];
    sendFrame(Dst, All.data(), All.size(), /*ComputeContext=*/false);
  } else {
    // Materialize the frame so the fault can mutate it.
    std::vector<uint8_t> Buf(FrameHeaderBytes + PayloadLen);
    std::memcpy(Buf.data(), Hdr, FrameHeaderBytes);
    size_t Off = FrameHeaderBytes;
    for (size_t I = 0; I != NumParts; ++I) {
      std::memcpy(Buf.data() + Off, Parts[I].Data, Parts[I].Len);
      Off += Parts[I].Len;
    }
    switch (Fate) {
    case FaultInjector::Action::Duplicate: {
      ByteSpan S{Buf.data(), Buf.size()};
      sendFrame(Dst, &S, 1, false);
      sendFrame(Dst, &S, 1, false); // same seq twice: receiver diagnoses
      break;
    }
    case FaultInjector::Action::Truncate: {
      // Keep the header intact but cut payload bytes: a length-framed
      // stream either stalls (watchdog) or desynchronizes (bad magic).
      size_t Cut = PayloadLen > 0 ? (PayloadLen + 1) / 2 : 0;
      ByteSpan S{Buf.data(), Buf.size() - Cut};
      sendFrame(Dst, &S, 1, false);
      break;
    }
    case FaultInjector::Action::Corrupt: {
      if (PayloadLen > 0)
        Buf[FrameHeaderBytes + PayloadLen / 2] ^= 0x40;
      else
        Buf[8] ^= 0x01; // no payload: damage the src field instead
      ByteSpan S{Buf.data(), Buf.size()};
      sendFrame(Dst, &S, 1, false);
      break;
    }
    default:
      break;
    }
  }
  ++Stats.FramesSent;
  Stats.WireBytesSent += FrameHeaderBytes + PayloadLen;
}

void Transport::deliverFrame(unsigned FromChannel, const uint8_t *Frame,
                             size_t Len) {
  std::string From = " from rank " + std::to_string(FromChannel);
  if (Len < FrameHeaderBytes)
    throw TransportError(where() + ": truncated frame header" + From);
  FrameHeader H = decodeHeader(Frame);
  if (H.Magic != FrameMagic)
    throw TransportError(where() + ": garbled frame stream" + From +
                         " (bad magic)");
  if (H.PayloadLen != Len - FrameHeaderBytes)
    throw TransportError(where() + ": truncated frame" + From + " (header "
                         "promises " + std::to_string(H.PayloadLen) +
                         " payload bytes, got " +
                         std::to_string(Len - FrameHeaderBytes) + ")");
  if (H.Src != FromChannel || H.Dst != Rank)
    throw TransportError(where() + ": misrouted frame" + From + " (header "
                         "says " + std::to_string(H.Src) + " -> " +
                         std::to_string(H.Dst) + ")");
  uint64_t Sum =
      fnv1aAccum(fnv1aInit(), Frame + FrameHeaderBytes, H.PayloadLen);
  if (Sum != H.Checksum)
    throw TransportError(where() + ": corrupted frame" + From + " (tag " +
                         std::to_string(H.Tag) + ", bad checksum)");
  uint64_t &Expect = NextRecvSeq[FromChannel];
  if (H.Seq < Expect)
    throw TransportError(where() + ": duplicated frame" + From + " (tag " +
                         std::to_string(H.Tag) + ", seq " +
                         std::to_string(H.Seq) + " seen again)");
  if (H.Seq > Expect)
    throw TransportError(
        where() + ": sequence gap" + From + " (expected seq " +
        std::to_string(Expect) + ", got " + std::to_string(H.Seq) +
        " — a frame was dropped)");
  ++Expect;
  ++Stats.FramesRecvd;
  Stats.WireBytesRecvd += Len;
  Inbox[{FromChannel, H.Tag}].emplace_back(Frame + FrameHeaderBytes,
                                           Frame + Len);
}

void Transport::markPeerDead(unsigned Peer, const std::string &Why) {
  if (!Dead[Peer]) {
    Dead[Peer] = 1;
    DeadWhy[Peer] = Why;
  }
}

bool Transport::canRecv(unsigned Src, uint64_t Tag) {
  pump(0, /*ComputeContext=*/false);
  auto It = Inbox.find({Src, Tag});
  return It != Inbox.end() && !It->second.empty();
}

std::vector<uint8_t> Transport::recv(unsigned Src, uint64_t Tag) {
  if (Src >= NP || Src == Rank)
    throw TransportError(where() + ": recv from invalid rank " +
                         std::to_string(Src));
  int64_t Deadline = nowMs() + Watchdog;
  for (;;) {
    auto It = Inbox.find({Src, Tag});
    if (It != Inbox.end() && !It->second.empty()) {
      std::vector<uint8_t> Payload = std::move(It->second.front());
      It->second.pop_front();
      if (It->second.empty())
        Inbox.erase(It);
      return Payload;
    }
    // Peer death only matters once we are actually waiting on that peer:
    // an EOF seen while idly pumping is a normal shutdown race.
    if (peerDead(Src))
      throw TransportError(where() + ": rank " + std::to_string(Src) +
                           " died before sending tag " +
                           std::to_string(Tag) + " (" + DeadWhy[Src] + ")");
    int64_t Left = Deadline - nowMs();
    if (Left <= 0)
      throw TransportError(
          where() + ": watchdog timeout (" + std::to_string(Watchdog) +
          " ms) waiting for tag " + std::to_string(Tag) + " from rank " +
          std::to_string(Src) + " — message lost or peer hung");
    pump(static_cast<int>(Left < 50 ? Left : 50), false);
  }
}

void Transport::progress() {
  ++Stats.ProgressCalls;
  pump(0, /*ComputeContext=*/true);
}

void Transport::flush() {
  int64_t Deadline = nowMs() + Watchdog;
  while (!allFlushed()) {
    if (nowMs() >= Deadline)
      throw TransportError(where() + ": watchdog timeout (" +
                           std::to_string(Watchdog) +
                           " ms) flushing posted sends — peer not reading");
    pump(20, false);
  }
}
