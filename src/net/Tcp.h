//===- net/Tcp.h - TCP transport mesh -------------------------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-host backend: the same framed/checksummed protocol (and the
/// same stream engine, wiring order, fault-injection hooks, and watchdog)
/// as the Unix-domain socket mesh, but over TCP so the P ranks can span
/// machines. Who listens where comes from a *rank-spec file*: line r is
/// rank r's `host:port` (blank lines and `#` comments allowed). Every rank
/// reads the same file, listens on its own entry, dials every lower rank
/// with nonblocking connect + bounded retry (peers may not have bound
/// yet), and accepts every higher rank. Nagle is disabled on every stream
/// (TCP_NODELAY) — the runtime already batches into frames, and delayed
/// ACKs would serialize the reduce round trips.
///
/// `writeLocalRankSpec` reserves NP distinct loopback ports and writes a
/// spec for them, so a single-machine launch (`dhpfc launch --hosts=auto`
/// and the tests) exercises the exact code path a real multi-host run
/// uses.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_NET_TCP_H
#define DHPF_NET_TCP_H

#include "net/Net.h"

#include <memory>

namespace dhpf {
namespace net {

/// One rank's endpoint from a rank-spec file.
struct HostPort {
  std::string Host;
  uint16_t Port = 0;
};

struct TcpOptions {
  std::string HostsPath;    ///< rank-spec file: line r = "host:port"
  int ConnectTimeoutMs = 0; ///< 0: DHPF_NET_CONNECT_MS or 5000
};

/// Parses rank-spec text: one `host:port` per line, rank order; `#` starts
/// a comment. Throws TransportError (naming \p What and the line) on any
/// malformed entry — a typo in a host map must not silently re-rank the
/// mesh.
std::vector<HostPort> parseRankSpec(const std::string &Text,
                                    const std::string &What);

/// Reads and parses a rank-spec file; throws TransportError if unreadable.
std::vector<HostPort> loadRankSpec(const std::string &Path);

/// Reserves \p NP distinct 127.0.0.1 ports (kernel-assigned, immediately
/// released) and writes the spec file to \p Path. The released ports are
/// re-bound by the ranks with SO_REUSEADDR; the reservation window is the
/// standard ephemeral-port handoff.
std::vector<HostPort> writeLocalRankSpec(const std::string &Path,
                                         unsigned NP);

/// Creates rank \p Rank's transport and wires the full mesh over TCP
/// (blocking, bounded by the connect timeout). The spec must list exactly
/// \p NP endpoints. Throws TransportError if any peer cannot be reached in
/// time.
std::unique_ptr<Transport> connectTcpMesh(unsigned Rank, unsigned NP,
                                          const TcpOptions &Opts);

} // namespace net
} // namespace dhpf

#endif // DHPF_NET_TCP_H
