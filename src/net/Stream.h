//===- net/Stream.h - Shared fd-stream transport engine ------------------===//
//
// Part of dhpf-sets (PLDI 1998 dHPF reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-moving engine shared by every file-descriptor stream mesh
/// (Unix-domain sockets and TCP): per-peer duplex fds with buffered
/// nonblocking sends, a poll()-based progress pump, frame extraction, and
/// the connect-lower/accept-higher wiring protocol (a hello frame carries
/// the connector's rank). Backends contribute only address handling —
/// creating the listening socket and dialing a peer — so the TCP mesh
/// inherits the exact send/receive/validation behaviour the socket mesh is
/// differentially tested against.
///
//===----------------------------------------------------------------------===//

#ifndef DHPF_NET_STREAM_H
#define DHPF_NET_STREAM_H

#include "net/Net.h"

namespace dhpf {
namespace net {
namespace detail {

/// Transport over one stream fd per peer. Subclasses wire the mesh in
/// their constructor: create a listening socket into ListenFd, dial every
/// lower rank and hand the fd to adoptConnected(), then call
/// acceptPeers() and finishWiring().
class StreamTransport : public Transport {
public:
  ~StreamTransport() override;

protected:
  StreamTransport(unsigned Rank, unsigned NP);

  /// Milliseconds on the steady clock, for connect/accept deadlines.
  static int64_t nowMs();
  static void setNonBlocking(int Fd);

  int ListenFd = -1; ///< owned; closed by finishWiring()/destructor

  /// Records \p Fd as the duplex stream to peer \p Q and sends the hello
  /// identifying this rank. Throws TransportError if the hello cannot be
  /// written.
  void adoptConnected(unsigned Q, int Fd);

  /// Accepts one connection per higher rank on ListenFd, validating each
  /// hello, until every higher rank is wired or \p TimeoutMs expires.
  void acceptPeers(int TimeoutMs);

  /// Ends the wiring phase: closes ListenFd and switches every peer fd
  /// nonblocking for the pump.
  void finishWiring();

  // Transport hooks — the engine proper.
  void sendFrame(unsigned Dst, const ByteSpan *Parts, size_t NumParts,
                 bool ComputeContext) override;
  bool pump(int TimeoutMs, bool ComputeContext) override;
  bool allFlushed() const override;

private:
  std::vector<int> Fds;                  ///< per-peer duplex stream
  std::vector<std::vector<uint8_t>> Out; ///< unsent bytes per peer
  std::vector<size_t> OutOff;            ///< consumed prefix of Out
  std::vector<std::vector<uint8_t>> In;  ///< partial inbound stream
  std::vector<size_t> InOff;             ///< consumed prefix of In

  void noteWrite(size_t N, bool ComputeContext);
  bool drainOut(unsigned Q, bool ComputeContext);
  void parseIn(unsigned Q);
};

} // namespace detail
} // namespace net
} // namespace dhpf

#endif // DHPF_NET_STREAM_H
